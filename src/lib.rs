//! # S2TA — Structured Sparse Tensor Accelerator (reproduction)
//!
//! A full-system reproduction of *"S2TA: Exploiting Structured Sparsity
//! for Energy-Efficient Mobile CNN Acceleration"* (Liu, Whatmough, Zhu,
//! Mattina — HPCA 2022). This facade crate re-exports the workspace:
//!
//! * [`tensor`] — INT8 tensors, conv-to-GEMM lowering, reference kernels.
//! * [`dbb`] — Density Bound Block format, W-DBB pruning, DAP.
//! * [`sim`] — cycle-level systolic array / TPE / SMT simulation.
//! * [`energy`] — 16nm/65nm energy, area and power models.
//! * [`models`] — CNN workload definitions and sparsity profiles.
//! * [`nn`] — training substrate for DBB-aware fine-tuning experiments.
//! * [`core`] — the accelerator API: configure, plan, run, report.
//! * [`serve`] — batched request serving across a fleet of simulated
//!   accelerators.
//!
//! # Quickstart
//!
//! ```
//! use s2ta::core::{Accelerator, ArchKind};
//! use s2ta::models::alexnet;
//!
//! let acc = Accelerator::preset(ArchKind::S2taAw);
//! let base = Accelerator::preset(ArchKind::SaZvcg);
//! let report = acc.run_model(&alexnet(), 42);
//! let baseline = base.run_model(&alexnet(), 42);
//! let speedup = baseline.total_cycles as f64 / report.total_cycles as f64;
//! assert!(speedup > 1.5, "S2TA-AW should beat SA-ZVCG, got {speedup:.2}x");
//! ```

pub use s2ta_core as core;
pub use s2ta_dbb as dbb;
pub use s2ta_energy as energy;
pub use s2ta_models as models;
pub use s2ta_nn as nn;
pub use s2ta_serve as serve;
pub use s2ta_sim as sim;
pub use s2ta_tensor as tensor;
