//! Architecture configurations: the paper's evaluated design points.

use s2ta_dbb::DbbConfig;
use s2ta_sim::smt::SmtConfig;
use s2ta_sim::ArrayGeometry;
use std::fmt;

/// The accelerator architectures the paper evaluates (Sec. 7),
/// all normalized to 2048 INT8 MACs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchKind {
    /// Dense systolic array, no sparsity exploitation.
    Sa,
    /// Systolic array with zero-value clock gating (the paper's primary
    /// normalization baseline).
    SaZvcg,
    /// SMT-SA with 2 threads and depth-2 staging FIFOs.
    SaSmtT2Q2,
    /// SMT-SA with 2 threads and depth-4 staging FIFOs.
    SaSmtT2Q4,
    /// S2TA exploiting 4/8 W-DBB only (dense activations, DP4M8 TPEs);
    /// also the A100-featured comparison point (Sec. 3.2).
    S2taW,
    /// The optimal time-unrolled S2TA with joint A/W-DBB (DP1M4 TPEs).
    S2taAw,
}

impl ArchKind {
    /// All evaluated architectures, in the paper's presentation order.
    pub const ALL: [ArchKind; 6] = [
        ArchKind::Sa,
        ArchKind::SaZvcg,
        ArchKind::SaSmtT2Q2,
        ArchKind::SaSmtT2Q4,
        ArchKind::S2taW,
        ArchKind::S2taAw,
    ];

    /// Whether this architecture consumes DBB-compressed weights.
    pub fn uses_wdbb(&self) -> bool {
        matches!(self, ArchKind::S2taW | ArchKind::S2taAw)
    }

    /// Whether this architecture applies DAP to activations.
    pub fn uses_adbb(&self) -> bool {
        matches!(self, ArchKind::S2taAw)
    }
}

impl fmt::Display for ArchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArchKind::Sa => "SA",
            ArchKind::SaZvcg => "SA-ZVCG",
            ArchKind::SaSmtT2Q2 => "SA-SMT-T2Q2",
            ArchKind::SaSmtT2Q4 => "SA-SMT-T2Q4",
            ArchKind::S2taW => "S2TA-W",
            ArchKind::S2taAw => "S2TA-AW",
        };
        write!(f, "{s}")
    }
}

/// A fully resolved architecture configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchConfig {
    /// Which datapath family.
    pub kind: ArchKind,
    /// Array geometry (`A x B x C _ M x N`).
    pub geometry: ArrayGeometry,
    /// SMT parameters (used by the SMT kinds only).
    pub smt: SmtConfig,
    /// Weight DBB configuration for the DBB kinds (4/8 by default).
    pub wdbb: DbbConfig,
    /// Number of SMT tiles to simulate exactly before extrapolating
    /// timing (cost control for full-model runs).
    pub smt_sample_tiles: usize,
    /// DMA bandwidth in bytes per cycle, used to clamp memory-bound
    /// layers (FC/depthwise at batch 1, paper Sec. 8.3).
    pub dma_bytes_per_cycle: u64,
}

impl ArchConfig {
    /// The paper's design point for `kind` (Sec. 7 "Baselines").
    pub fn preset(kind: ArchKind) -> Self {
        let geometry = match kind {
            ArchKind::Sa | ArchKind::SaZvcg | ArchKind::SaSmtT2Q2 | ArchKind::SaSmtT2Q4 => {
                ArrayGeometry::sa_baseline()
            }
            ArchKind::S2taW => ArrayGeometry::s2ta_w(),
            ArchKind::S2taAw => ArrayGeometry::s2ta_aw(),
        };
        let smt = match kind {
            ArchKind::SaSmtT2Q4 => SmtConfig::t2q4(),
            _ => SmtConfig::t2q2(),
        };
        Self {
            kind,
            geometry,
            smt,
            wdbb: DbbConfig::w_default(),
            smt_sample_tiles: 2,
            dma_bytes_per_cycle: 16,
        }
    }

    /// Physical MAC count of the configuration.
    pub fn macs(&self) -> usize {
        match self.kind {
            ArchKind::S2taW => self.geometry.macs_dot_product(),
            _ => self.geometry.macs_scalar(),
        }
    }

    /// Peak dense throughput in TOPS at `clock_hz` (2 ops per MAC).
    pub fn peak_dense_tops(&self, clock_hz: f64) -> f64 {
        self.macs() as f64 * 2.0 * clock_hz / 1e12
    }

    /// Peak *effective* throughput in TOPS at `clock_hz` given DBB
    /// sparsity: S2TA-W doubles via 4/8 weights; S2TA-AW scales by
    /// `BZ / activation_nnz` (paper: up to 8x).
    pub fn peak_effective_tops(&self, clock_hz: f64, act_nnz: usize) -> f64 {
        let dense = self.peak_dense_tops(clock_hz);
        match self.kind {
            ArchKind::S2taW => dense * self.geometry.bz as f64 / self.geometry.b as f64,
            ArchKind::S2taAw => dense * self.geometry.bz as f64 / act_nnz.max(1) as f64,
            _ => dense,
        }
    }
}

impl fmt::Display for ArchConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.kind, self.geometry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_2048_macs() {
        for kind in ArchKind::ALL {
            assert_eq!(ArchConfig::preset(kind).macs(), 2048, "{kind}");
        }
    }

    #[test]
    fn peak_tops_at_1ghz() {
        // 2048 MACs * 2 ops * 1 GHz = 4.1 TOPS dense (paper: "4 TOPS").
        let cfg = ArchConfig::preset(ArchKind::SaZvcg);
        assert!((cfg.peak_dense_tops(1e9) - 4.096).abs() < 1e-9);
        // S2TA-W: 2x with 4/8 weights (paper Table 4: 8 TOPS).
        let w = ArchConfig::preset(ArchKind::S2taW);
        assert!((w.peak_effective_tops(1e9, 8) - 8.192).abs() < 1e-9);
        // S2TA-AW at 2/8 acts: 4x (16 TOPS, Table 4 footnote 6).
        let aw = ArchConfig::preset(ArchKind::S2taAw);
        assert!((aw.peak_effective_tops(1e9, 2) - 16.384).abs() < 1e-9);
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(ArchKind::SaZvcg.to_string(), "SA-ZVCG");
        assert_eq!(ArchKind::S2taAw.to_string(), "S2TA-AW");
        assert!(ArchConfig::preset(ArchKind::S2taAw).to_string().contains("8x4x4_8x8"));
    }

    #[test]
    fn dbb_usage_flags() {
        assert!(ArchKind::S2taAw.uses_wdbb() && ArchKind::S2taAw.uses_adbb());
        assert!(ArchKind::S2taW.uses_wdbb() && !ArchKind::S2taW.uses_adbb());
        assert!(!ArchKind::SaZvcg.uses_wdbb());
    }
}
