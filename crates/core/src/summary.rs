//! The qualitative design-space summary (paper Table 5).

use std::fmt;

/// One row of Table 5: how an architecture relates to sparsity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SummaryRow {
    /// Architecture name.
    pub name: &'static str,
    /// Weight sparsity handling.
    pub weight_sparsity: &'static str,
    /// Activation sparsity handling.
    pub act_sparsity: &'static str,
    /// Hardware overhead class (gather / scatter / none).
    pub overhead: &'static str,
    /// Whether zero-value clock gating applies.
    pub zvcg: bool,
    /// Whether variable DBB via time-unrolling is supported.
    pub variable_dbb: bool,
}

/// The full Table 5 contents: prior work plus our designs.
pub fn table5() -> Vec<SummaryRow> {
    vec![
        SummaryRow {
            name: "SA",
            weight_sparsity: "-",
            act_sparsity: "-",
            overhead: "-",
            zvcg: false,
            variable_dbb: false,
        },
        SummaryRow {
            name: "SA-ZVCG",
            weight_sparsity: "-",
            act_sparsity: "-",
            overhead: "-",
            zvcg: true,
            variable_dbb: false,
        },
        SummaryRow {
            name: "SA-SMT",
            weight_sparsity: "Random",
            act_sparsity: "Random",
            overhead: "Gather",
            zvcg: false,
            variable_dbb: false,
        },
        SummaryRow {
            name: "SCNN",
            weight_sparsity: "Random",
            act_sparsity: "Random",
            overhead: "Scatter",
            zvcg: false,
            variable_dbb: false,
        },
        SummaryRow {
            name: "SparTen",
            weight_sparsity: "Random",
            act_sparsity: "Random",
            overhead: "Gather",
            zvcg: false,
            variable_dbb: false,
        },
        SummaryRow {
            name: "Kang",
            weight_sparsity: "2/8 DBB",
            act_sparsity: "-",
            overhead: "-",
            zvcg: false,
            variable_dbb: false,
        },
        SummaryRow {
            name: "STA",
            weight_sparsity: "4/8 DBB",
            act_sparsity: "-",
            overhead: "-",
            zvcg: false,
            variable_dbb: false,
        },
        SummaryRow {
            name: "A100",
            weight_sparsity: "2/4 DBB",
            act_sparsity: "-",
            overhead: "-",
            zvcg: false,
            variable_dbb: false,
        },
        SummaryRow {
            name: "S2TA-W",
            weight_sparsity: "4/8 DBB",
            act_sparsity: "-",
            overhead: "-",
            zvcg: true,
            variable_dbb: false,
        },
        SummaryRow {
            name: "S2TA-AW",
            weight_sparsity: "4/8 DBB",
            act_sparsity: "(1-5)/8 DBB",
            overhead: "-",
            zvcg: true,
            variable_dbb: true,
        },
    ]
}

impl fmt::Display for SummaryRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} | {:<9} | {:<12} | {:<8} | {:^4} | {:^8}",
            self.name,
            self.weight_sparsity,
            self.act_sparsity,
            self.overhead,
            if self.zvcg { "yes" } else { "-" },
            if self.variable_dbb { "yes" } else { "-" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_s2ta_aw_has_variable_dbb() {
        let rows = table5();
        let variable: Vec<_> = rows.iter().filter(|r| r.variable_dbb).collect();
        assert_eq!(variable.len(), 1);
        assert_eq!(variable[0].name, "S2TA-AW");
    }

    #[test]
    fn unstructured_designs_have_overhead() {
        for r in table5() {
            if r.weight_sparsity == "Random" {
                assert_ne!(r.overhead, "-", "{} should carry gather/scatter overhead", r.name);
            }
            if r.weight_sparsity.contains("DBB") {
                assert_eq!(r.overhead, "-", "{} DBB designs are overhead-free", r.name);
            }
        }
    }

    #[test]
    fn rows_render() {
        for r in table5() {
            assert!(!r.to_string().is_empty());
        }
    }
}
