//! Per-lane scratch arenas: reusable host-side buffers for the
//! execution hot loop.
//!
//! The profiled (matrix-free) execution path is almost allocation-free
//! by construction — events are derived from cached strip profiles —
//! but three host costs remained per request: regenerating activation
//! matrices (the SMT sampled path and every cold profile side), the
//! DAP staging block, and the per-layer report vector. A [`Scratch`]
//! arena owns recycled backing storage for all of them; after the first
//! batch warms its buffers (and the fleet's plan/profile caches), a
//! steady-state request allocates nothing.
//!
//! Scratch lifetime (one serving lane):
//!
//! ```text
//!   ScratchPool ── checkout ──> Scratch ──┐
//!        ^                               batch: every layer reuses
//!        │                               acts / dap_block capacity
//!        └────────── restore <───────────┘
//! ```
//!
//! A [`ScratchPool`] shares arenas across whatever executes batches —
//! lane threads, calibration probes, speculative bursts — so the warm
//! capacity survives between bursts regardless of which worker runs
//! the next one.

use std::sync::{Arc, Mutex};

/// Reusable host buffers for one in-flight batch execution.
///
/// All fields keep their *capacity* across uses; contents are
/// overwritten per use and carry no information between requests (the
/// generated data is a pure function of `(layer, seed)`, so recycling
/// can never change simulated results).
#[derive(Debug, Default)]
pub struct Scratch {
    /// Backing storage for regenerated activation matrices
    /// (`Matrix::into_data` / `LayerSpec::gen_acts_into` recycling).
    pub(crate) acts: Vec<i8>,
    /// DAP per-block staging buffer (`dap_col_profile_with`).
    pub(crate) dap_block: Vec<i8>,
    /// SMT FIFO-timing buffers (`smt::run_sampled_profiled_into`).
    pub(crate) smt: s2ta_sim::smt::SmtScratch,
}

impl Scratch {
    /// A fresh, empty arena (buffers grow to steady size on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Total capacity currently retained, in bytes — diagnostic only.
    pub fn retained_bytes(&self) -> usize {
        self.acts.capacity() + self.dap_block.capacity() + self.smt.retained_bytes()
    }
}

/// A shared pool of [`Scratch`] arenas.
///
/// `checkout` hands out a warm arena when one is idle (LIFO, so the
/// hottest capacity is reused first) and a fresh one otherwise;
/// `restore` returns it. The pool never shrinks — arenas are small
/// (one activation matrix plus one DBB block) and bounded by the number
/// of concurrent batches ever in flight.
#[derive(Debug, Clone, Default)]
pub struct ScratchPool {
    idle: Arc<Mutex<Vec<Scratch>>>,
}

impl ScratchPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes an idle arena, or creates a fresh one if none is idle.
    pub fn checkout(&self) -> Scratch {
        self.idle.lock().expect("scratch pool poisoned").pop().unwrap_or_default()
    }

    /// Returns an arena to the pool for the next checkout.
    pub fn restore(&self, scratch: Scratch) {
        self.idle.lock().expect("scratch pool poisoned").push(scratch);
    }

    /// Number of idle arenas currently pooled.
    pub fn idle_len(&self) -> usize {
        self.idle.lock().expect("scratch pool poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_restore_recycles_capacity() {
        let pool = ScratchPool::new();
        let mut s = pool.checkout();
        assert_eq!(s.retained_bytes(), 0);
        s.acts.reserve(1024);
        let cap = s.acts.capacity();
        pool.restore(s);
        assert_eq!(pool.idle_len(), 1);
        let s2 = pool.checkout();
        assert!(s2.acts.capacity() >= cap, "warm capacity survives the pool");
        assert_eq!(pool.idle_len(), 0);
    }

    #[test]
    fn empty_pool_hands_out_fresh_arenas() {
        let pool = ScratchPool::new();
        assert_eq!(pool.idle_len(), 0);
        let a = pool.checkout();
        let b = pool.checkout();
        assert_eq!(a.retained_bytes() + b.retained_bytes(), 0);
    }
}
