//! Compiled execution plans: the per-layer weight state an
//! [`Accelerator`] needs at run time, built **once** and reused across
//! runs.
//!
//! Running a model involves two very different kinds of work: compiling
//! the weights (W-DBB pruning + compression — a property of the model,
//! not of the request) and executing the datapath on a concrete
//! activation input. The original runner redid both per call; this
//! module splits them so weight compilation can be memoized:
//!
//! * [`LayerPlan`] / [`ModelPlan`] — the compiled weight state for one
//!   layer / every layer of a model, for a fixed architecture and
//!   weight seed.
//! * [`WeightPlanCache`] — a thread-safe memo table of [`ModelPlan`]s,
//!   shared by every clone of an [`Accelerator`] and by the serving
//!   fleet's workers (`s2ta-serve`).
//!
//! Planned runs are bit-exact with the unplanned paths: `run_model` is
//! itself routed through the cache.

use crate::scratch::Scratch;
use crate::{Accelerator, ArchConfig, ArchKind, LayerReport};
use s2ta_dbb::dap::{dap_col_profile, dap_col_profile_with, DapEvents, LayerNnz};
use s2ta_dbb::{DbbConfig, DbbMatrix};
use s2ta_models::{LayerSpec, ModelSpec};
use s2ta_sim::{ColStripProfile, RowStripProfile};
use s2ta_tensor::Matrix;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Weights compiled for a specific architecture: dense architectures
/// keep the raw matrix, DBB architectures store the pruned + compressed
/// form.
#[derive(Debug, Clone, PartialEq)]
pub enum PlannedWeights {
    /// Raw weights for the scalar-datapath architectures (SA, SA-ZVCG,
    /// SA-SMT).
    Dense(Matrix),
    /// DBB-compressed weights for the TPE architectures (S2TA-W,
    /// S2TA-AW); dense-compressed on the unpruned first layer.
    Dbb(DbbMatrix),
}

/// Whether a layer's weights must stream from DRAM for this run or are
/// already resident in the weight SRAM.
///
/// Memory-bound layers (FC / depthwise at batch 1, paper Sec. 8.3) are
/// clamped to DMA time. When a batched server runs the same layer for
/// several requests back-to-back, only the first request pays the
/// weight transfer — the rest find the weights resident. Activations
/// always stream (they differ per request).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightResidency {
    /// Weights stream from DRAM (the batch-1 semantics of `run_layer`).
    Streamed,
    /// Weights are already on chip; only activations pay DMA time.
    Resident,
}

/// The compiled per-layer state: weights in their datapath format plus
/// the run-time decisions that depend only on the layer, not the input.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerPlan {
    pub(crate) weights: PlannedWeights,
    /// The A-DBB decision for this layer (dense on layer 0).
    pub(crate) adbb: LayerNnz,
    /// DRAM bytes one weight transfer costs (compressed estimate for
    /// DBB architectures, matching the runner's memory-bound clamp).
    pub(crate) dma_weight_bytes: u64,
    /// Row-strip non-zero profile of the (effective, post-pruning)
    /// weights at the architecture's tile height — a pure function of
    /// the compiled weights, baked in here so the matrix-free event
    /// path never re-derives (or re-decompresses) it per request.
    pub(crate) wprofile: RowStripProfile,
}

impl LayerPlan {
    /// The compiled weights.
    pub fn weights(&self) -> &PlannedWeights {
        &self.weights
    }

    /// The A-DBB decision this plan runs with.
    pub fn adbb(&self) -> LayerNnz {
        self.adbb
    }

    /// DRAM bytes one streamed weight transfer costs.
    pub fn dma_weight_bytes(&self) -> u64 {
        self.dma_weight_bytes
    }

    /// The compiled weights' row-strip non-zero profile (strip height =
    /// the compiling architecture's output-tile rows).
    pub fn weight_profile(&self) -> &RowStripProfile {
        &self.wprofile
    }
}

/// A whole model compiled for one architecture and weight seed:
/// layer plans in execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelPlan {
    pub(crate) model: String,
    pub(crate) fingerprint: u64,
    pub(crate) weight_seed: u64,
    pub(crate) layers: Vec<LayerPlan>,
}

impl ModelPlan {
    /// Name of the planned model.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// The weight seed the plan was compiled from.
    pub fn weight_seed(&self) -> u64 {
        self.weight_seed
    }

    /// Per-layer plans, in execution order.
    pub fn layers(&self) -> &[LayerPlan] {
        &self.layers
    }

    /// `true` if this plan was compiled from `model` (same name and
    /// structural fingerprint).
    pub fn matches(&self, model: &ModelSpec) -> bool {
        self.model == model.name && self.fingerprint == model_fingerprint(model)
    }

    /// A deterministic estimate of the plan's resident bytes: per
    /// layer, the weight storage (raw bytes for dense plans, compressed
    /// DBB storage otherwise) plus the baked-in row-strip profile's
    /// `u32` counts. This is the unit [`WeightPlanCache`] byte budgets
    /// are accounted in — a pure function of the compiled shapes, so
    /// budget accounting can never vary with host timing.
    pub fn approx_bytes(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| {
                let weights = match &l.weights {
                    PlannedWeights::Dense(m) => m.len() as u64,
                    PlannedWeights::Dbb(d) => d.storage_bytes() as u64,
                };
                let profile: u64 =
                    (0..l.wprofile.strips()).map(|s| l.wprofile.strip(s).len() as u64 * 4).sum();
                weights + profile
            })
            .sum()
    }

    /// Splits the plan's layer list into at most `stages` contiguous,
    /// non-empty ranges that **minimize the maximum per-stage cost**,
    /// where `layer_cost(i)` prices layer `i` (cycles, MACs — any
    /// additive cost). The ranges cover every layer in order, so
    /// executing them back-to-back with [`Accelerator::run_stage`]
    /// recomposes [`Accelerator::run_model_planned`] exactly.
    ///
    /// The split is deterministic: exact dynamic programming over
    /// prefix sums, ties resolved toward the earliest cut. When the
    /// plan has fewer layers than `stages`, every layer becomes its own
    /// stage.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is zero or the plan has no layers.
    pub fn stage_split(
        &self,
        stages: usize,
        layer_cost: impl Fn(usize) -> u64,
    ) -> Vec<Range<usize>> {
        let n = self.layers.len();
        assert!(stages > 0, "a pipeline needs at least one stage");
        assert!(n > 0, "cannot stage-split an empty plan");
        let k = stages.min(n);
        // Prefix sums: cost of layers [a, b) = prefix[b] - prefix[a].
        let mut prefix = vec![0u64; n + 1];
        for i in 0..n {
            prefix[i + 1] = prefix[i].saturating_add(layer_cost(i));
        }
        let span = |a: usize, b: usize| prefix[b] - prefix[a];
        // dp[s][i]: minimum possible max-stage-cost covering the first
        // `i` layers with exactly `s` stages; cut[s][i] the first cut
        // achieving it (earliest optimal cut for determinism).
        let mut dp = vec![vec![u64::MAX; n + 1]; k + 1];
        let mut cut = vec![vec![0usize; n + 1]; k + 1];
        for (i, slot) in dp[1].iter_mut().enumerate().skip(1) {
            *slot = span(0, i);
        }
        for s in 2..=k {
            for i in s..=n {
                for j in (s - 1)..i {
                    let cost = dp[s - 1][j].max(span(j, i));
                    if cost < dp[s][i] {
                        dp[s][i] = cost;
                        cut[s][i] = j;
                    }
                }
            }
        }
        // Walk the cuts back into ranges.
        let mut bounds = vec![n];
        let mut i = n;
        for s in (2..=k).rev() {
            i = cut[s][i];
            bounds.push(i);
        }
        bounds.push(0);
        bounds.reverse();
        bounds.windows(2).map(|w| w[0]..w[1]).collect()
    }
}

/// Bytes of activation data handed from layer `boundary - 1` into layer
/// `boundary`: the `K x N` input activation matrix of the receiving
/// layer (one byte per INT8 element). This is what an inter-stage
/// pipeline handoff must move between lanes.
///
/// # Panics
///
/// Panics if `boundary` is not an interior layer index (`1..layers`).
pub fn stage_handoff_bytes(model: &ModelSpec, boundary: usize) -> u64 {
    assert!(
        boundary >= 1 && boundary < model.layers.len(),
        "boundary {boundary} is not interior to {} layers",
        model.layers.len()
    );
    let gemm = &model.layers[boundary].gemm;
    (gemm.k * gemm.n) as u64
}

/// A stable fingerprint of a model's structure, so cached plans can
/// never be served for a *different* model that reuses a name.
pub(crate) fn model_fingerprint(model: &ModelSpec) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        h = (h ^ v).wrapping_mul(0x0000_0100_0000_01b3);
    };
    for b in model.name.bytes() {
        mix(b as u64);
    }
    for l in &model.layers {
        for b in l.name.bytes() {
            mix(b as u64);
        }
        mix(match l.kind {
            s2ta_tensor::LayerKind::Conv => 1,
            s2ta_tensor::LayerKind::Depthwise => 2,
            s2ta_tensor::LayerKind::FullyConnected => 3,
        });
        mix(l.gemm.m as u64);
        mix(l.gemm.k as u64);
        mix(l.gemm.n as u64);
        mix(l.weight_sparsity.to_bits());
        mix(l.act_sparsity.to_bits());
    }
    h
}

/// A fingerprint of the **entire** accelerator configuration, so two
/// accelerators only ever share a cache entry when their configs are
/// identical. Deliberately conservative: plan compilation today reads
/// only `kind.uses_wdbb()`, the W-DBB bound and `geometry.bz`, but
/// hashing every field (via the derived `Debug` form, which includes
/// any field added later) means a future plan-relevant knob can never
/// silently alias two different configs onto one plan — at worst, two
/// configs differing only in plan-irrelevant fields compile the same
/// plan twice. The cache is in-memory only, so the fingerprint never
/// needs to be stable across builds.
pub(crate) fn plan_scope_fingerprint(config: &ArchConfig) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in format!("{config:?}").bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// (arch kind, plan-scope fingerprint, model structure fingerprint,
// weight seed). The model *name* is not part of the key — the structure
// fingerprint already mixes it in (see [`model_fingerprint`]) — so key
// construction is `Copy`-only and a steady-state lookup allocates
// nothing.
type PlanKey = (ArchKind, u64, u64, u64);

/// Monotonic lookup counters of a [`WeightPlanCache`], shared (like the
/// memo table itself) by every accelerator pointed at the cache.
#[derive(Debug, Default)]
struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    bypasses: AtomicU64,
    evictions: AtomicU64,
    bytes_evicted: AtomicU64,
}

/// A point-in-time snapshot of a [`WeightPlanCache`]'s lookup counters.
///
/// * `hits` — lookups answered from the table (dense or DBB).
/// * `misses` — lookups that had to compile a **DBB** plan.
/// * `bypasses` — lookups that had to compile a **dense** (non-W-DBB)
///   plan. Dense plans are memoized like any other since the
///   allocation-free refactor (regenerating raw weights per batch was
///   the dominant host cost of dense lanes); the separate counter keeps
///   DBB compile counts comparable across versions and lets tests
///   assert that dense compiles stop once the fleet is warm.
/// * `evictions` / `bytes_evicted` — entries (and their estimated
///   bytes) an LRU byte budget pushed out; always zero on unbounded
///   caches.
///
/// Counters only ever grow; per-run deltas come from
/// [`CacheStats::since`]. On a budgeted cache the hit/miss/eviction
/// *counters* may vary with host-thread interleaving (which lane
/// touches an entry first decides recency), while the cached values
/// themselves are pure recomputations — so simulated results stay
/// byte-identical under any eviction schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Memoized lookups served from the table.
    pub hits: u64,
    /// Memoized lookups that compiled a new plan.
    pub misses: u64,
    /// Dense-architecture lookups that compiled a new plan.
    pub bypasses: u64,
    /// Entries evicted to stay within a byte budget.
    pub evictions: u64,
    /// Estimated bytes those evictions released.
    pub bytes_evicted: u64,
}

impl CacheStats {
    /// The activity between `earlier` and `self` (both snapshots of the
    /// same cache, `self` taken later). Saturating: a stale or swapped
    /// `earlier` (e.g. a snapshot kept across a cache replacement)
    /// clamps to zero instead of underflowing — deltas are diagnostics,
    /// and a debug-build panic deep in a monitoring path is worse than
    /// a conservative zero.
    pub fn since(self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            bypasses: self.bypasses.saturating_sub(earlier.bypasses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            bytes_evicted: self.bytes_evicted.saturating_sub(earlier.bytes_evicted),
        }
    }

    /// Total memoized lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of memoized lookups served from the table (0 before the
    /// first lookup).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// One resident plan plus its LRU bookkeeping.
#[derive(Debug)]
struct PlanEntry {
    plan: Arc<ModelPlan>,
    /// Estimated resident bytes ([`ModelPlan::approx_bytes`]), frozen
    /// at insert so insert/evict accounting always balances.
    bytes: u64,
    last_used: u64,
}

/// The lock-protected state of a [`WeightPlanCache`].
#[derive(Debug, Default)]
struct PlanTable {
    map: HashMap<PlanKey, PlanEntry>,
    /// LRU clock, bumped on every touch.
    tick: u64,
    resident_bytes: u64,
}

/// A thread-safe memo table of compiled [`ModelPlan`]s.
///
/// The cache is keyed by `(arch, model, weight seed)` — the
/// architecture kind plus a fingerprint of its plan-relevant
/// configuration, a structural fingerprint of the model (which mixes in
/// its name), and the weight seed — so one table can be shared by
/// accelerators of *different* architectures (a heterogeneous serving
/// fleet) without ever serving a mismatched plan. Every clone of an
/// [`Accelerator`] shares its cache, so repeated `run_model` calls —
/// and every lane of a serving fleet — compile each
/// `(arch, model, seed)` triple's layers exactly once (ever when
/// unbounded, per residency when a byte budget evicts).
///
/// [`WeightPlanCache::with_byte_budget`] bounds the table: when the
/// estimated resident bytes exceed the budget, least-recently-used
/// plans are evicted (never the one just inserted — a budget smaller
/// than a single plan still serves it, it just can't keep it). Evicted
/// plans recompile on next use to byte-identical values, so a budget
/// changes host time and the eviction counters, never simulated
/// results.
#[derive(Debug, Clone, Default)]
pub struct WeightPlanCache {
    inner: Arc<Mutex<PlanTable>>,
    counters: Arc<CacheCounters>,
    /// LRU byte budget; `None` = unbounded.
    budget: Option<u64>,
}

impl WeightPlanCache {
    /// An empty unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache that evicts least-recently-used plans whenever
    /// the estimated resident bytes exceed `budget`.
    pub fn with_byte_budget(budget: u64) -> Self {
        Self { budget: Some(budget), ..Self::default() }
    }

    /// Returns the cached plan for `(model, weight_seed)`, compiling it
    /// with `acc` on first use.
    ///
    /// Every architecture is memoized, dense ones included. Dense
    /// "plans" are just the regenerable raw weight matrices, but
    /// regenerating them once per batch was the dominant steady-state
    /// host cost of dense lanes — caching them trades resident bytes
    /// (bounded by [`WeightPlanCache::with_byte_budget`], which can
    /// still evict them under pressure) for an allocation-free hot
    /// loop. Dense compiles count as `bypasses`, DBB compiles as
    /// `misses`; hits are counted uniformly.
    pub fn get_or_plan(
        &self,
        acc: &Accelerator,
        model: &ModelSpec,
        weight_seed: u64,
    ) -> Arc<ModelPlan> {
        let key = (
            acc.config().kind,
            plan_scope_fingerprint(acc.config()),
            model_fingerprint(model),
            weight_seed,
        );
        {
            let mut table = self.inner.lock().expect("plan cache poisoned");
            table.tick += 1;
            let tick = table.tick;
            if let Some(entry) = table.map.get_mut(&key) {
                entry.last_used = tick;
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(&entry.plan);
            }
        }
        if acc.config().kind.uses_wdbb() {
            self.counters.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.counters.bypasses.fetch_add(1, Ordering::Relaxed);
        }
        // Compile outside the lock: plans can be large and compilation
        // is the expensive part. A racing thread may compile the same
        // plan; the first insert wins and the duplicate is dropped.
        let plan = Arc::new(acc.plan_model_uncached(model, weight_seed));
        let mut table = self.inner.lock().expect("plan cache poisoned");
        table.tick += 1;
        let tick = table.tick;
        if let Some(entry) = table.map.get_mut(&key) {
            entry.last_used = tick;
            return Arc::clone(&entry.plan);
        }
        let bytes = plan.approx_bytes();
        table.resident_bytes += bytes;
        table.map.insert(key, PlanEntry { plan: Arc::clone(&plan), bytes, last_used: tick });
        if let Some(budget) = self.budget {
            self.evict_locked(&mut table, budget, &key);
        }
        plan
    }

    /// Evicts least-recently-used entries (never `keep`, the one just
    /// inserted) until the table fits `budget`. The victim scan is
    /// linear in the table size — fine for a model-zoo-scale plan
    /// population, where eviction cost is dwarfed by one compile.
    fn evict_locked(&self, table: &mut PlanTable, budget: u64, keep: &PlanKey) {
        while table.resident_bytes > budget && table.map.len() > 1 {
            let victim = table
                .map
                .iter()
                .filter(|(k, _)| *k != keep)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            let Some(k) = victim else { break };
            let e = table.map.remove(&k).expect("victim is resident");
            table.resident_bytes -= e.bytes;
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
            self.counters.bytes_evicted.fetch_add(e.bytes, Ordering::Relaxed);
        }
    }

    /// A snapshot of the cache's lookup counters (hits / misses /
    /// dense bypasses / evictions). Counters are monotone; diff two
    /// snapshots with [`CacheStats::since`] to scope them to one run.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            bypasses: self.counters.bypasses.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            bytes_evicted: self.counters.bytes_evicted.load(Ordering::Relaxed),
        }
    }

    /// Estimated bytes of the currently resident plans.
    pub fn resident_bytes(&self) -> u64 {
        self.inner.lock().expect("plan cache poisoned").resident_bytes
    }

    /// The LRU byte budget (`None` = unbounded).
    pub fn byte_budget(&self) -> Option<u64> {
        self.budget
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("plan cache poisoned").map.len()
    }

    /// `true` if nothing has been planned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan (not counted as evictions).
    pub fn clear(&self) {
        let mut table = self.inner.lock().expect("plan cache poisoned");
        table.map.clear();
        table.resident_bytes = 0;
    }
}

/// A stable fingerprint of everything a layer's synthetic activation
/// matrix depends on (`LayerSpec::gen_acts` reads the layer name, the
/// `K x N` shape and the activation sparsity), so cached activation
/// profiles can never be served for a different layer.
fn layer_act_fingerprint(layer: &LayerSpec) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        h = (h ^ v).wrapping_mul(0x0000_0100_0000_01b3);
    };
    for b in layer.name.bytes() {
        mix(b as u64);
    }
    mix(layer.gemm.k as u64);
    mix(layer.gemm.n as u64);
    mix(layer.act_sparsity.to_bits());
    h
}

// (layer activation fingerprint, act seed, column-strip width, DBB
// block size, A-DBB decision)
type ActKey = (u64, u64, usize, usize, LayerNnz);

/// The post-DAP side of an [`ActProfile`]: the pruned activation's
/// column-strip profile plus the DAP decision and its hardware events.
#[derive(Debug, Clone)]
pub(crate) struct PostDapProfile {
    pub(crate) profile: ColStripProfile,
    /// The DBB configuration DAP compresses under at this `(bz, adbb)`.
    pub(crate) config: DbbConfig,
    /// DAP hardware events of the pruning pass.
    pub(crate) events: DapEvents,
}

/// The compiled activation-side operand state for one `(layer, act
/// seed)` under one `(strip width, bz, adbb)` scope: everything the
/// matrix-free event paths need, with the dense `K x N` matrix itself
/// discarded after profiling.
///
/// Each side compiles **lazily on first use** (a blocking
/// `OnceLock::get_or_init`, so concurrent users compute it exactly
/// once): the raw-activation profile serves the dense-activation
/// datapaths (SA, SA-ZVCG, SA-SMT, S2TA-W), the post-DAP profile the
/// A-DBB datapath (S2TA-AW). A fleet without one of the families never
/// pays for the side it doesn't read; fleets whose lanes share a cache
/// key (the SA baseline and S2TA-AW tile identically) fill in both
/// sides of one entry between them.
#[derive(Debug)]
pub struct ActProfile {
    /// The generating layer plus the scope parameters — the recipe the
    /// lazy sides regenerate the activation matrix from.
    layer: LayerSpec,
    act_seed: u64,
    strip_cols: usize,
    bz: usize,
    adbb: LayerNnz,
    dense: std::sync::OnceLock<ColStripProfile>,
    postdap: std::sync::OnceLock<PostDapProfile>,
}

impl ActProfile {
    fn new(layer: LayerSpec, act_seed: u64, strip_cols: usize, bz: usize, adbb: LayerNnz) -> Self {
        Self {
            layer,
            act_seed,
            strip_cols,
            bz,
            adbb,
            dense: std::sync::OnceLock::new(),
            postdap: std::sync::OnceLock::new(),
        }
    }

    /// The profiled activation's `(K, N)` shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.layer.gemm.k, self.layer.gemm.n)
    }

    /// A deterministic estimate of the entry's resident bytes with
    /// **both** lazy sides compiled: two column-strip profiles of
    /// `ceil(N / strip_cols)` strips × `K` `u32` counts each. The unit
    /// [`ActProfileCache`] byte budgets are accounted in — deliberately
    /// independent of which sides happen to be compiled yet, so budget
    /// accounting can never vary with host timing.
    pub fn approx_bytes(&self) -> u64 {
        let (k, n) = self.shape();
        2 * n.div_ceil(self.strip_cols) as u64 * k as u64 * 4
    }

    /// Column-strip profile of the raw activation (compiled on first
    /// use: one matrix generation + one profiling pass, ever).
    pub fn dense(&self) -> &ColStripProfile {
        self.dense.get_or_init(|| {
            ColStripProfile::new(&self.layer.gen_acts(self.act_seed), self.strip_cols)
        })
    }

    /// Like [`ActProfile::dense`], but profiles `acts` — the caller's
    /// already-materialized copy of this entry's activation matrix —
    /// when the side is cold, skipping the regeneration. Used by the
    /// SMT path, which needs the matrix for its sampled FIFO timing
    /// anyway.
    pub(crate) fn dense_from(&self, acts: &Matrix) -> &ColStripProfile {
        debug_assert_eq!((acts.rows(), acts.cols()), self.shape());
        self.dense.get_or_init(|| ColStripProfile::new(acts, self.strip_cols))
    }

    /// Column-strip profile of the DAP-pruned activation, derived
    /// without materializing the pruned matrix (compiled on first use:
    /// one matrix generation + one DAP pass, ever).
    pub fn postdap(&self) -> &ColStripProfile {
        &self.postdap_side().profile
    }

    pub(crate) fn postdap_side(&self) -> &PostDapProfile {
        self.postdap.get_or_init(|| {
            let acts = self.layer.gen_acts(self.act_seed);
            let dap = dap_col_profile(&acts, self.bz, self.adbb, self.strip_cols);
            PostDapProfile {
                profile: ColStripProfile::from_flat(dap.counts, dap.strips, dap.k),
                config: dap.config,
                events: dap.events,
            }
        })
    }

    /// Like [`ActProfile::dense`], but a cold compile stages the
    /// regenerated activation matrix in `scratch` (returning the
    /// storage afterwards), so a warm arena makes even the cold side
    /// allocation-light and the warm side allocation-free.
    pub fn dense_with(&self, scratch: &mut Scratch) -> &ColStripProfile {
        self.dense.get_or_init(|| {
            let acts = self.layer.gen_acts_into(self.act_seed, std::mem::take(&mut scratch.acts));
            let profile = ColStripProfile::new(&acts, self.strip_cols);
            scratch.acts = acts.into_data();
            profile
        })
    }

    /// [`ActProfile::postdap_side`] through a [`Scratch`] arena: the
    /// activation matrix and the DAP staging block both reuse the
    /// arena's capacity on a cold compile.
    pub(crate) fn postdap_side_with(&self, scratch: &mut Scratch) -> &PostDapProfile {
        self.postdap.get_or_init(|| {
            let acts = self.layer.gen_acts_into(self.act_seed, std::mem::take(&mut scratch.acts));
            let dap = dap_col_profile_with(
                &acts,
                self.bz,
                self.adbb,
                self.strip_cols,
                &mut scratch.dap_block,
            );
            scratch.acts = acts.into_data();
            PostDapProfile {
                profile: ColStripProfile::from_flat(dap.counts, dap.strips, dap.k),
                config: dap.config,
                events: dap.events,
            }
        })
    }
}

/// A thread-safe memo table of compiled [`ActProfile`]s — the
/// activation-side analog of [`WeightPlanCache`].
///
/// Activations are a pure function of `(layer, act seed)`, and their
/// strip profiles additionally of the array's column-strip width and
/// the `(bz, adbb)` DAP scope — all host-knowable, so the profile is
/// compiled **once** and every re-simulation of the same request
/// (speculative execution on each distinct lane scope, pipeline
/// calibration probes, warm/cold residency variants that differ only
/// in DMA accounting) replays it without regenerating, pruning or
/// profiling the dense matrix. Shared fleet-wide like the weight-plan
/// cache: lanes whose geometries agree on `(tile_cols, bz)` — e.g. the
/// paper's SA baseline and S2TA-AW design points — share entries even
/// across architecture kinds.
///
/// [`ActProfileCache::with_byte_budget`] bounds the table with the same
/// LRU story as the weight-plan cache: estimated resident bytes over
/// budget evict the least-recently-used entries (never the one just
/// inserted). Evicted profiles recompile byte-identically on next use.
#[derive(Debug, Clone, Default)]
pub struct ActProfileCache {
    inner: Arc<Mutex<ActTable>>,
    counters: Arc<CacheCounters>,
    /// LRU byte budget; `None` = unbounded.
    budget: Option<u64>,
}

/// One resident activation profile plus its LRU bookkeeping.
#[derive(Debug)]
struct ActEntry {
    profile: Arc<ActProfile>,
    /// Estimated resident bytes ([`ActProfile::approx_bytes`]).
    bytes: u64,
    last_used: u64,
}

/// The lock-protected state of an [`ActProfileCache`].
#[derive(Debug, Default)]
struct ActTable {
    map: HashMap<ActKey, ActEntry>,
    /// LRU clock, bumped on every touch.
    tick: u64,
    resident_bytes: u64,
}

impl ActProfileCache {
    /// An empty unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache that evicts least-recently-used profiles whenever
    /// the estimated resident bytes exceed `budget`.
    pub fn with_byte_budget(budget: u64) -> Self {
        Self { budget: Some(budget), ..Self::default() }
    }

    /// Returns the cached profile for `(layer, act_seed)` under the
    /// `(strip_cols, bz, adbb)` scope, creating the entry on first use
    /// (entry creation is cheap — the profile sides compile lazily, see
    /// [`ActProfile`]).
    ///
    /// On an **unbounded** cache the hit/miss counters are
    /// deterministic for a deterministic lookup sequence regardless of
    /// host threading: the entry is created inside the lock (exactly
    /// one miss per key, ever) and concurrent first users of a side
    /// block on its `OnceLock` rather than double-compiling — so
    /// counter assertions in tests and examples can be exact. A byte
    /// budget gives that exactness up: which entry is least recent
    /// depends on host-thread interleaving, so a once-evicted key can
    /// re-miss — the profiles themselves are still pure, so simulated
    /// results never change.
    ///
    /// # Panics
    ///
    /// Panics if `strip_cols` or `bz` is zero (on first side use).
    pub fn get_or_profile(
        &self,
        layer: &LayerSpec,
        act_seed: u64,
        strip_cols: usize,
        bz: usize,
        adbb: LayerNnz,
    ) -> Arc<ActProfile> {
        let key = (layer_act_fingerprint(layer), act_seed, strip_cols, bz, adbb);
        let mut table = self.inner.lock().expect("act profile cache poisoned");
        table.tick += 1;
        let tick = table.tick;
        if let Some(entry) = table.map.get_mut(&key) {
            entry.last_used = tick;
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(&entry.profile);
        }
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        let profile = Arc::new(ActProfile::new(layer.clone(), act_seed, strip_cols, bz, adbb));
        let bytes = profile.approx_bytes();
        table.resident_bytes += bytes;
        table.map.insert(key, ActEntry { profile: Arc::clone(&profile), bytes, last_used: tick });
        if let Some(budget) = self.budget {
            while table.resident_bytes > budget && table.map.len() > 1 {
                let victim = table
                    .map
                    .iter()
                    .filter(|(k, _)| **k != key)
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| *k);
                let Some(k) = victim else { break };
                let e = table.map.remove(&k).expect("victim is resident");
                table.resident_bytes -= e.bytes;
                self.counters.evictions.fetch_add(1, Ordering::Relaxed);
                self.counters.bytes_evicted.fetch_add(e.bytes, Ordering::Relaxed);
            }
        }
        profile
    }

    /// A snapshot of the cache's lookup counters; every lookup is
    /// memoized, so `bypasses` is always zero. Diff snapshots with
    /// [`CacheStats::since`] to scope them to one run.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            bypasses: self.counters.bypasses.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            bytes_evicted: self.counters.bytes_evicted.load(Ordering::Relaxed),
        }
    }

    /// Estimated bytes of the currently resident profiles.
    pub fn resident_bytes(&self) -> u64 {
        self.inner.lock().expect("act profile cache poisoned").resident_bytes
    }

    /// The LRU byte budget (`None` = unbounded).
    pub fn byte_budget(&self) -> Option<u64> {
        self.budget
    }

    /// Number of cached profiles.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("act profile cache poisoned").map.len()
    }

    /// `true` if nothing has been profiled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached profile (not counted as evictions).
    pub fn clear(&self) {
        let mut table = self.inner.lock().expect("act profile cache poisoned");
        table.map.clear();
        table.resident_bytes = 0;
    }
}

impl Accelerator {
    /// Compiles one layer's weights for this architecture.
    ///
    /// `layer_index` 0 selects the dense-weight fall-back (the paper
    /// leaves layer 1 unpruned, Table 3 note 2) and a dense A-DBB
    /// decision.
    pub fn plan_layer(&self, layer: &LayerSpec, layer_index: usize, weight_seed: u64) -> LayerPlan {
        let w = layer.gen_weights(weight_seed);
        let first_layer = layer_index == 0;
        let dma_weight_bytes = if self.config().kind.uses_wdbb() && !first_layer {
            (w.len() as f64 * self.config().wdbb.block_bytes() as f64
                / self.config().wdbb.bz() as f64) as u64
        } else {
            w.len() as u64
        };
        let weights = if self.config().kind.uses_wdbb() {
            PlannedWeights::Dbb(self.compress_weights(&w, first_layer))
        } else {
            PlannedWeights::Dense(w)
        };
        // Bake the row-strip profile of the *effective* weights (after
        // any W-DBB pruning) at compile time: it rides the plan cache,
        // so the events-only path replays it for free.
        let tile_rows = self.config().geometry.tile_rows();
        let wprofile = match &weights {
            PlannedWeights::Dense(m) => RowStripProfile::new(m, tile_rows),
            // Straight off the compressed masks — no decompressed copy.
            PlannedWeights::Dbb(d) => RowStripProfile::of_dbb(d, tile_rows),
        };
        let adbb = if first_layer { LayerNnz::Dense } else { layer.suggested_adbb() };
        LayerPlan { weights, adbb, dma_weight_bytes, wprofile }
    }

    /// Compiles every layer of `model` (no cache). Prefer
    /// [`Accelerator::plan_model`], which memoizes.
    pub(crate) fn plan_model_uncached(&self, model: &ModelSpec, weight_seed: u64) -> ModelPlan {
        let layers = model
            .layers
            .iter()
            .enumerate()
            .map(|(i, l)| self.plan_layer(l, i, weight_seed))
            .collect();
        ModelPlan {
            model: model.name.to_string(),
            fingerprint: model_fingerprint(model),
            weight_seed,
            layers,
        }
    }

    /// Returns this accelerator's compiled plan for `(model,
    /// weight_seed)`, memoized in the shared [`WeightPlanCache`].
    pub fn plan_model(&self, model: &ModelSpec, weight_seed: u64) -> Arc<ModelPlan> {
        self.plans().get_or_plan(self, model, weight_seed)
    }

    /// Runs one layer from its compiled plan on a fresh activation
    /// input drawn from `act_seed`.
    ///
    /// With [`WeightResidency::Streamed`] this is bit-exact with
    /// [`Accelerator::run_layer`] when `act_seed` equals the weight
    /// seed the plan was compiled from.
    pub fn run_layer_planned(
        &self,
        plan: &LayerPlan,
        layer: &LayerSpec,
        act_seed: u64,
        residency: WeightResidency,
    ) -> LayerReport {
        let a = layer.gen_acts(act_seed);
        let mut events = self.run_gemm_planned(&plan.weights, &a, plan.adbb);
        if layer.is_memory_bound() {
            events.cycles =
                events.cycles.max(self.dma_clamp_cycles(plan, a.len() as u64, residency));
        }
        LayerReport { name: layer.name.clone(), macs: layer.macs(), events }
    }

    /// DMA cycles one streaming pass of a memory-bound layer's operands
    /// costs: weights (unless already resident) plus the `a_bytes`
    /// activation footprint, at the configured DMA rate. A sub-rate
    /// tail still occupies a full bus cycle (`div_ceil` — a truncating
    /// division here priced partial transfers at zero).
    pub(crate) fn dma_clamp_cycles(
        &self,
        plan: &LayerPlan,
        a_bytes: u64,
        residency: WeightResidency,
    ) -> u64 {
        // SRAM re-read counts in the datapath events already cover
        // on-chip traffic; this bounds *time*. Resident weights were
        // paid for by an earlier request in the batch.
        let w_bytes = match residency {
            WeightResidency::Streamed => plan.dma_weight_bytes,
            WeightResidency::Resident => 0,
        };
        (w_bytes + a_bytes).div_ceil(self.config().dma_bytes_per_cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArchKind, ModelReport};
    use s2ta_models::{lenet5, mobilenet_v1};

    #[test]
    fn planned_run_is_bit_exact_with_unplanned() {
        for kind in [ArchKind::SaZvcg, ArchKind::S2taW, ArchKind::S2taAw] {
            let acc = Accelerator::preset(kind);
            let m = lenet5();
            let plan = acc.plan_model(&m, 17);
            let planned: Vec<LayerReport> = m
                .layers
                .iter()
                .enumerate()
                .map(|(i, l)| {
                    acc.run_layer_planned(&plan.layers[i], l, 17, WeightResidency::Streamed)
                })
                .collect();
            let direct = acc.run_model(&m, 17);
            assert_eq!(
                ModelReport::from_layers(m.name, kind.to_string(), planned),
                direct,
                "{kind}"
            );
        }
    }

    #[test]
    fn cache_compiles_once_and_is_shared_by_clones() {
        let acc = Accelerator::preset(ArchKind::S2taAw);
        let m = lenet5();
        assert!(acc.plans().is_empty());
        let p1 = acc.plan_model(&m, 3);
        let p2 = acc.clone().plan_model(&m, 3);
        assert!(Arc::ptr_eq(&p1, &p2), "clone must share the cache");
        assert_eq!(acc.plans().len(), 1);
        acc.plan_model(&m, 4);
        assert_eq!(acc.plans().len(), 2, "different seed, different plan");
    }

    #[test]
    fn run_model_populates_the_cache() {
        let acc = Accelerator::preset(ArchKind::S2taAw);
        let m = lenet5();
        let r1 = acc.run_model(&m, 5);
        assert_eq!(acc.plans().len(), 1);
        let r2 = acc.run_model(&m, 5);
        assert_eq!(acc.plans().len(), 1, "second run must reuse the plan");
        assert_eq!(r1, r2);
    }

    #[test]
    #[should_panic(expected = "plan was compiled for")]
    fn mismatched_plan_is_rejected() {
        let acc = Accelerator::preset(ArchKind::S2taAw);
        let plan = acc.plan_model(&lenet5(), 3);
        // Same layer count as LeNet-5 would not save this: the check is
        // structural, not positional.
        let other = mobilenet_v1();
        acc.run_model_planned(&plan, &other, 3);
    }

    /// A single cache shared by accelerators of *different*
    /// architectures must key plans by arch: each kind compiles its own
    /// plan exactly once, and neither is served the other's.
    #[test]
    fn shared_cache_keys_plans_by_architecture() {
        let cache = WeightPlanCache::new();
        let w = Accelerator::preset(ArchKind::S2taW).sharing_plans(cache.clone());
        let aw = Accelerator::preset(ArchKind::S2taAw).sharing_plans(cache.clone());
        let m = lenet5();
        let pw = w.plan_model(&m, 3);
        let paw = aw.plan_model(&m, 3);
        assert_eq!(cache.len(), 2, "each arch compiles its own plan");
        assert!(!Arc::ptr_eq(&pw, &paw), "kinds must not share a plan");
        // Second lane of the same kind hits the memo.
        let aw2 = Accelerator::preset(ArchKind::S2taAw).sharing_plans(cache.clone());
        assert!(Arc::ptr_eq(&paw, &aw2.plan_model(&m, 3)));
        assert_eq!(cache.len(), 2);
        // Shared-cache plans are the same plans a private cache builds.
        assert_eq!(*paw, *Accelerator::preset(ArchKind::S2taAw).plan_model(&m, 3));
    }

    /// Same kind, different W-DBB bound: the scope fingerprint keeps
    /// the plans apart even inside one shared cache.
    #[test]
    fn scope_fingerprint_separates_configs_of_one_kind() {
        let cache = WeightPlanCache::new();
        let a = Accelerator::preset(ArchKind::S2taAw).sharing_plans(cache.clone());
        let mut cfg = *Accelerator::preset(ArchKind::S2taAw).config();
        cfg.wdbb = s2ta_dbb::DbbConfig::new(2, 8);
        let b = Accelerator::new(cfg).sharing_plans(cache.clone());
        let m = lenet5();
        let pa = a.plan_model(&m, 3);
        let pb = b.plan_model(&m, 3);
        assert_eq!(cache.len(), 2, "different bounds must not collide");
        assert_ne!(*pa, *pb, "2/8 and 4/8 plans differ");
    }

    #[test]
    fn fingerprint_separates_structures() {
        let a = lenet5();
        let b = mobilenet_v1();
        assert_ne!(model_fingerprint(&a), model_fingerprint(&b));
        let mut c = lenet5();
        c.layers[1].weight_sparsity = 0.9;
        assert_ne!(model_fingerprint(&a), model_fingerprint(&c));
        assert_eq!(model_fingerprint(&a), model_fingerprint(&lenet5()));
    }

    /// Concatenated `run_stage` reports over **every** contiguous
    /// partition of LeNet-5 must reproduce `run_model_planned` (and
    /// therefore `run_model`) byte-for-byte — the golden identity the
    /// serving pipeline relies on.
    #[test]
    fn stage_runs_recompose_run_model_for_every_partition() {
        for kind in [ArchKind::SaZvcg, ArchKind::S2taAw] {
            let acc = Accelerator::preset(kind);
            let m = lenet5();
            let n = m.layers.len();
            let plan = acc.plan_model(&m, 23);
            let direct = acc.run_model(&m, 23);
            // All 2-stage partitions, plus the full per-layer split.
            let mut partitions: Vec<Vec<std::ops::Range<usize>>> =
                (1..n).map(|cut| vec![0..cut, cut..n]).collect();
            partitions.push((0..n).map(|i| i..i + 1).collect());
            partitions.push(std::iter::once(0..n).collect());
            for partition in partitions {
                let layers: Vec<LayerReport> = partition
                    .iter()
                    .flat_map(|r| {
                        acc.run_stage(&plan, &m, r.clone(), 23, WeightResidency::Streamed)
                    })
                    .collect();
                let composed = ModelReport::from_layers(m.name, kind.to_string(), layers);
                assert_eq!(composed, direct, "{kind} partition {partition:?}");
            }
        }
    }

    #[test]
    fn stage_split_balances_and_covers() {
        let acc = Accelerator::preset(ArchKind::S2taAw);
        let m = mobilenet_v1();
        let plan = acc.plan_model(&m, 3);
        let macs: Vec<u64> = m.layers.iter().map(|l| l.macs()).collect();
        for stages in [1usize, 2, 3, 4, 7] {
            let split = plan.stage_split(stages, |i| macs[i]);
            assert_eq!(split.len(), stages.min(m.layers.len()));
            // Contiguous cover in order, every stage non-empty.
            assert_eq!(split[0].start, 0);
            assert_eq!(split.last().unwrap().end, m.layers.len());
            for pair in split.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "stages must tile the layer list");
            }
            assert!(split.iter().all(|r| !r.is_empty()));
        }
        // The DP is optimal: for uniform costs the 4-way split of 28
        // layers is exactly balanced (max stage = 7 layers).
        let even = plan.stage_split(4, |_| 1);
        assert!(even.iter().all(|r| r.len() == 7), "{even:?}");
        // And it actually balances skewed costs better than a naive
        // equal-count split would: one huge layer gets its own stage.
        let skew = plan.stage_split(2, |i| if i == 0 { 1_000 } else { 1 });
        assert_eq!(skew[0], 0..1, "the expensive head layer must sit alone: {skew:?}");
    }

    #[test]
    fn more_stages_never_worsen_the_bottleneck() {
        let acc = Accelerator::preset(ArchKind::S2taAw);
        let m = mobilenet_v1();
        let plan = acc.plan_model(&m, 3);
        let macs: Vec<u64> = m.layers.iter().map(|l| l.macs()).collect();
        let bottleneck = |split: &[std::ops::Range<usize>]| {
            split.iter().map(|r| r.clone().map(|i| macs[i]).sum::<u64>()).max().unwrap()
        };
        let mut prev = u64::MAX;
        for stages in 1..=8 {
            let b = bottleneck(&plan.stage_split(stages, |i| macs[i]));
            assert!(b <= prev, "stage {stages} bottleneck {b} worse than {prev}");
            prev = b;
        }
    }

    #[test]
    fn handoff_bytes_price_the_receiving_activation() {
        let m = lenet5();
        for boundary in 1..m.layers.len() {
            let gemm = &m.layers[boundary].gemm;
            assert_eq!(stage_handoff_bytes(&m, boundary), (gemm.k * gemm.n) as u64);
        }
    }

    #[test]
    #[should_panic(expected = "not interior")]
    fn handoff_bytes_reject_exterior_boundaries() {
        stage_handoff_bytes(&lenet5(), 0);
    }

    #[test]
    fn cache_counts_hits_misses_and_bypasses() {
        let cache = WeightPlanCache::new();
        assert_eq!(cache.stats(), CacheStats::default());
        let aw = Accelerator::preset(ArchKind::S2taAw).sharing_plans(cache.clone());
        let m = lenet5();
        aw.plan_model(&m, 3);
        aw.plan_model(&m, 3);
        aw.plan_model(&m, 4);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.bypasses), (1, 2, 0));
        // Dense architectures are memoized too; their compiles count as
        // bypasses, their warm lookups as plain hits.
        let zv = Accelerator::preset(ArchKind::SaZvcg).sharing_plans(cache.clone());
        let d1 = zv.plan_model(&m, 3);
        let d2 = zv.plan_model(&m, 3);
        assert!(Arc::ptr_eq(&d1, &d2), "dense plans are served from the table");
        let s2 = cache.stats();
        assert_eq!((s2.hits, s2.misses, s2.bypasses), (2, 2, 1));
        // Deltas and rates.
        let delta = s2.since(s);
        assert_eq!((delta.hits, delta.misses, delta.bypasses), (1, 0, 1));
        assert_eq!(s2.lookups(), 4);
        assert!((s2.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    /// `since` must saturate instead of underflowing: a snapshot kept
    /// across a cache replacement sees *smaller* counters afterwards,
    /// and the delta should clamp to zero rather than panic (debug) or
    /// wrap to ~2^64 (release).
    #[test]
    fn stats_delta_saturates_when_counters_go_backwards() {
        let m = lenet5();
        let old_cache = WeightPlanCache::new();
        let acc = Accelerator::preset(ArchKind::S2taAw).sharing_plans(old_cache.clone());
        acc.plan_model(&m, 1);
        acc.plan_model(&m, 1);
        acc.plan_model(&m, 2);
        let stale = old_cache.stats();
        assert_eq!((stale.hits, stale.misses), (1, 2));
        // The fleet swaps in a fresh cache; a monitor diffing its new
        // stats against the pre-swap snapshot sees counters go backwards.
        let new_cache = WeightPlanCache::new();
        let acc = Accelerator::preset(ArchKind::S2taAw).sharing_plans(new_cache.clone());
        acc.plan_model(&m, 1);
        let fresh = new_cache.stats();
        assert!(fresh.hits < stale.hits && fresh.misses < stale.misses, "counters went backwards");
        let d = fresh.since(stale);
        assert_eq!(d, CacheStats::default(), "backwards counters clamp to zero, field by field");
        // Mixed directions clamp per-field, not globally.
        let later = CacheStats { hits: 5, misses: 1, ..CacheStats::default() };
        let earlier = CacheStats { hits: 2, misses: 4, ..CacheStats::default() };
        let d = later.since(earlier);
        assert_eq!((d.hits, d.misses), (3, 0));
    }

    #[test]
    fn byte_budget_evicts_the_lru_plan_exactly() {
        let m = lenet5();
        // Size three seeds' plans through a scratch unbounded cache.
        let scratch = Accelerator::preset(ArchKind::S2taAw);
        let b: Vec<u64> = (1..=3).map(|s| scratch.plan_model(&m, s).approx_bytes()).collect();
        assert!(b.iter().all(|&x| x > 0));
        // A budget one byte short of all three forces exactly one
        // eviction when the third plan lands.
        let cache = WeightPlanCache::with_byte_budget(b[0] + b[1] + b[2] - 1);
        let acc = Accelerator::preset(ArchKind::S2taAw).sharing_plans(cache.clone());
        let p1 = acc.plan_model(&m, 1);
        let p2 = acc.plan_model(&m, 2);
        assert_eq!((cache.len(), cache.stats().evictions), (2, 0));
        assert_eq!(cache.resident_bytes(), b[0] + b[1]);
        // Touch seed 1 so seed 2 is least recent, then overflow.
        acc.plan_model(&m, 1);
        acc.plan_model(&m, 3);
        let s = cache.stats();
        assert_eq!(cache.len(), 2, "third plan evicted one");
        assert_eq!((s.evictions, s.bytes_evicted), (1, b[1]));
        assert_eq!(cache.resident_bytes(), b[0] + b[2]);
        // Seed 1 survived (hit, same Arc); seed 2 must recompile — to a
        // byte-identical plan.
        let before = cache.stats();
        assert!(Arc::ptr_eq(&p1, &acc.plan_model(&m, 1)));
        assert_eq!(cache.stats().since(before).hits, 1);
        let before = cache.stats();
        let p2b = acc.plan_model(&m, 2);
        assert_eq!(cache.stats().since(before).misses, 1);
        assert!(!Arc::ptr_eq(&p2, &p2b), "evicted plan is a fresh compilation");
        assert_eq!(*p2, *p2b, "recompilation is byte-identical");
    }

    #[test]
    fn tiny_budget_never_evicts_the_just_inserted_plan() {
        let cache = WeightPlanCache::with_byte_budget(0);
        let acc = Accelerator::preset(ArchKind::S2taAw).sharing_plans(cache.clone());
        let m = lenet5();
        acc.plan_model(&m, 1);
        assert_eq!(cache.len(), 1, "a zero budget still serves the working plan");
        assert_eq!(cache.stats().evictions, 0);
        acc.plan_model(&m, 2);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 1, "the older plan paid for the new one");
        assert_eq!(cache.byte_budget(), Some(0));
        assert_eq!(WeightPlanCache::new().byte_budget(), None);
    }

    #[test]
    fn act_cache_byte_budget_evicts_lru_and_recounts() {
        let m = lenet5();
        let layer = &m.layers[0];
        let probe = ActProfileCache::new();
        let b = probe.get_or_profile(layer, 1, 8, 8, LayerNnz::Dense).approx_bytes();
        assert!(b > 0);
        // Same layer and scope: every entry costs exactly `b`, so a
        // two-entry budget is exact.
        let cache = ActProfileCache::with_byte_budget(2 * b);
        for seed in [1u64, 2, 1, 3] {
            cache.get_or_profile(layer, seed, 8, 8, LayerNnz::Dense);
        }
        let s = cache.stats();
        assert_eq!(cache.len(), 2);
        assert_eq!((s.hits, s.misses, s.evictions, s.bytes_evicted), (1, 3, 1, b));
        assert_eq!(cache.resident_bytes(), 2 * b);
        // Seed 2 was least recent and got evicted: 1 and 3 hit, 2
        // re-misses (and evicts the next LRU in turn).
        let before = cache.stats();
        cache.get_or_profile(layer, 1, 8, 8, LayerNnz::Dense);
        cache.get_or_profile(layer, 3, 8, 8, LayerNnz::Dense);
        let d = cache.stats().since(before);
        assert_eq!((d.hits, d.misses), (2, 0));
        let before = cache.stats();
        cache.get_or_profile(layer, 2, 8, 8, LayerNnz::Dense);
        let d = cache.stats().since(before);
        assert_eq!((d.hits, d.misses, d.evictions), (0, 1, 1));
    }

    #[test]
    fn resident_weights_drop_dma_clamp() {
        // LeNet's FC layers are memory bound: a resident-weight run can
        // never be slower, and is strictly faster when DMA dominated.
        let acc = Accelerator::preset(ArchKind::S2taAw);
        let m = lenet5();
        let plan = acc.plan_model(&m, 7);
        let fc = m.layers.iter().position(|l| l.is_memory_bound()).expect("lenet has FC");
        let streamed =
            acc.run_layer_planned(&plan.layers[fc], &m.layers[fc], 7, WeightResidency::Streamed);
        let resident =
            acc.run_layer_planned(&plan.layers[fc], &m.layers[fc], 7, WeightResidency::Resident);
        assert!(resident.events.cycles <= streamed.events.cycles);
        assert_eq!(resident.events.macs_active, streamed.events.macs_active);
    }
}
