//! The S2TA accelerator — the paper's primary contribution, as a
//! configurable simulated accelerator with a small public API.
//!
//! [`Accelerator`] wraps an architecture configuration ([`ArchKind`] /
//! [`ArchConfig`]) and runs CNN layers or whole models through the
//! appropriate simulated datapath, applying the DBB toolchain where the
//! architecture calls for it (W-DBB weight pruning, per-layer DAP for
//! activations). Reports carry cycle counts, event tallies and derived
//! energy/power/efficiency for both technology nodes.
//!
//! ```
//! use s2ta_core::{Accelerator, ArchKind};
//! use s2ta_models::lenet5;
//!
//! let aw = Accelerator::preset(ArchKind::S2taAw);
//! let report = aw.run_model(&lenet5(), 7);
//! assert!(report.total_cycles > 0);
//! let e = report.energy(&s2ta_energy::TechParams::tsmc16());
//! assert!(e.total_uj() > 0.0);
//! ```
#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod arch;
mod report;
mod runner;

pub mod buffers;
pub mod infer;
pub mod memory;
pub mod microbench;
pub mod plan;
pub mod pool;
pub mod ring;
pub mod scratch;
pub mod summary;
pub mod sweep;

pub use arch::{ArchConfig, ArchKind};
pub use plan::{
    stage_handoff_bytes, ActProfile, ActProfileCache, CacheStats, LayerPlan, ModelPlan,
    PlannedWeights, WeightPlanCache, WeightResidency,
};
pub use report::{LayerReport, ModelReport};
pub use ring::Ring;
pub use runner::{Accelerator, ExecPath};
pub use scratch::{Scratch, ScratchPool};
