//! Performance/energy reports for layers and whole models.

use s2ta_energy::{EnergyBreakdown, TechParams};
use s2ta_sim::EventCounts;
use std::fmt;

/// The outcome of running one layer on an accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// Dense MAC count of the layer.
    pub macs: u64,
    /// Simulated event counts.
    pub events: EventCounts,
}

impl LayerReport {
    /// Energy of this layer under `tech`.
    pub fn energy(&self, tech: &TechParams) -> EnergyBreakdown {
        EnergyBreakdown::of(&self.events, tech)
    }

    /// Effective throughput in (dense-equivalent) MACs per cycle.
    pub fn macs_per_cycle(&self) -> f64 {
        if self.events.cycles == 0 {
            0.0
        } else {
            self.macs as f64 / self.events.cycles as f64
        }
    }
}

impl fmt::Display for LayerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.2} MMAC in {} cycles ({:.0} MAC/cyc)",
            self.name,
            self.macs as f64 / 1e6,
            self.events.cycles,
            self.macs_per_cycle()
        )
    }
}

/// The outcome of running a whole model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelReport {
    /// Model name.
    pub model: String,
    /// Architecture name the model ran on.
    pub arch: String,
    /// Per-layer reports, in execution order.
    pub layers: Vec<LayerReport>,
    /// Total cycles over all layers.
    pub total_cycles: u64,
    /// Aggregate events over all layers.
    pub total_events: EventCounts,
}

impl ModelReport {
    /// Builds the aggregate report from per-layer results.
    pub fn from_layers(
        model: impl Into<String>,
        arch: impl Into<String>,
        layers: Vec<LayerReport>,
    ) -> Self {
        let total_events: EventCounts = layers.iter().map(|l| l.events).sum();
        Self {
            model: model.into(),
            arch: arch.into(),
            total_cycles: total_events.cycles,
            total_events,
            layers,
        }
    }

    /// Total dense MACs of the model run.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Total energy under `tech`.
    pub fn energy(&self, tech: &TechParams) -> EnergyBreakdown {
        EnergyBreakdown::of(&self.total_events, tech)
    }

    /// Inference latency in seconds at `tech`'s clock.
    pub fn seconds(&self, tech: &TechParams) -> f64 {
        self.total_cycles as f64 / tech.clock_hz
    }

    /// Inferences per second at `tech`'s clock.
    pub fn inferences_per_second(&self, tech: &TechParams) -> f64 {
        1.0 / self.seconds(tech)
    }

    /// Inferences per joule under `tech`.
    pub fn inferences_per_joule(&self, tech: &TechParams) -> f64 {
        1.0 / (self.energy(tech).total_pj() * 1e-12)
    }

    /// Effective TOPS: dense-equivalent ops per second of this run.
    pub fn effective_tops(&self, tech: &TechParams) -> f64 {
        self.total_macs() as f64 * 2.0 / self.seconds(tech) / 1e12
    }

    /// Effective TOPS per watt under `tech`.
    pub fn tops_per_watt(&self, tech: &TechParams) -> f64 {
        let joules = self.energy(tech).total_pj() * 1e-12;
        self.total_macs() as f64 * 2.0 / joules / 1e12
    }

    /// Speedup of this run relative to `baseline` (cycle ratio).
    pub fn speedup_vs(&self, baseline: &ModelReport) -> f64 {
        baseline.total_cycles as f64 / self.total_cycles as f64
    }

    /// Energy reduction factor relative to `baseline` under `tech`.
    pub fn energy_reduction_vs(&self, baseline: &ModelReport, tech: &TechParams) -> f64 {
        baseline.energy(tech).total_pj() / self.energy(tech).total_pj()
    }
}

impl fmt::Display for ModelReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}: {:.2} GMAC, {:.2} Mcycles",
            self.model,
            self.arch,
            self.total_macs() as f64 / 1e9,
            self.total_cycles as f64 / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(name: &str, macs: u64, cycles: u64) -> LayerReport {
        LayerReport {
            name: name.into(),
            macs,
            events: EventCounts { cycles, macs_active: macs / 2, ..Default::default() },
        }
    }

    #[test]
    fn aggregation() {
        let r =
            ModelReport::from_layers("m", "a", vec![layer("l1", 1000, 10), layer("l2", 2000, 20)]);
        assert_eq!(r.total_cycles, 30);
        assert_eq!(r.total_macs(), 3000);
        assert_eq!(r.total_events.macs_active, 1500);
    }

    #[test]
    fn derived_metrics() {
        let r = ModelReport::from_layers("m", "a", vec![layer("l", 2_000_000, 1000)]);
        let tech = TechParams::tsmc16();
        assert!((r.seconds(&tech) - 1e-6).abs() < 1e-15);
        assert!((r.inferences_per_second(&tech) - 1e6).abs() < 1.0);
        // 2 MMAC * 2 ops / 1us = 4 TOPS.
        assert!((r.effective_tops(&tech) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn comparisons() {
        let fast = ModelReport::from_layers("m", "fast", vec![layer("l", 1000, 10)]);
        let slow = ModelReport::from_layers("m", "slow", vec![layer("l", 1000, 40)]);
        assert!((fast.speedup_vs(&slow) - 4.0).abs() < 1e-12);
        let tech = TechParams::tsmc16();
        assert!(fast.energy_reduction_vs(&slow, &tech) > 0.0);
    }

    #[test]
    fn layer_display() {
        let l = layer("conv1", 1_000_000, 500);
        assert!(l.to_string().contains("conv1"));
        assert!((l.macs_per_cycle() - 2000.0).abs() < 1e-9);
    }
}
