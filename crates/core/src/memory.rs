//! On-chip memory residency and DMA analysis (paper Sec. 6.3).
//!
//! S2TA keeps a 512 KB weight buffer (WB) and a 2 MB activation buffer
//! (AB), both double-buffered so DMA overlaps compute. This module
//! answers, per layer: do the (possibly DBB-compressed) weights and
//! activations fit? How many DRAM bytes move, and does the layer end up
//! compute-bound or DMA-bound? Compression pays twice here — smaller
//! SRAM footprints (fewer spills) *and* less DRAM bandwidth, which is
//! where S2TA's wins on memory-bound FC/depthwise layers come from.

use crate::ArchConfig;
use s2ta_models::{LayerSpec, ModelSpec};
use std::fmt;

/// On-chip memory configuration (defaults are the paper's Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryConfig {
    /// Weight buffer capacity in bytes (per double-buffer half).
    pub weight_buffer_bytes: usize,
    /// Activation buffer capacity in bytes.
    pub act_buffer_bytes: usize,
    /// DMA bandwidth in bytes per accelerator cycle.
    pub dma_bytes_per_cycle: u64,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        Self {
            weight_buffer_bytes: 512 * 1024,
            act_buffer_bytes: 2 * 1024 * 1024,
            dma_bytes_per_cycle: 16,
        }
    }
}

/// Residency and traffic analysis of one layer on one architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerResidency {
    /// Weight footprint in bytes (compressed for DBB architectures).
    pub weight_bytes: u64,
    /// Input activation footprint in bytes (compressed for A-DBB).
    pub act_in_bytes: u64,
    /// Output activation footprint in bytes.
    pub act_out_bytes: u64,
    /// Whether the weights fit the WB (one DMA pass if so).
    pub weights_resident: bool,
    /// Whether input + output activations fit the AB together (no DRAM
    /// spill between layers if so).
    pub acts_resident: bool,
    /// Total DRAM traffic for the layer in bytes.
    pub dram_bytes: u64,
    /// DMA transfer cycles at the configured bandwidth.
    pub dma_cycles: u64,
}

impl LayerResidency {
    /// Whether the layer is DMA-bound given its compute cycles.
    pub fn dma_bound(&self, compute_cycles: u64) -> bool {
        self.dma_cycles > compute_cycles
    }

    /// Effective layer cycles under double buffering (compute and DMA
    /// overlap; the longer one wins).
    pub fn overlapped_cycles(&self, compute_cycles: u64) -> u64 {
        self.dma_cycles.max(compute_cycles)
    }
}

impl fmt::Display for LayerResidency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "w {:.1} KB ({}), a {:.1}+{:.1} KB ({}), DRAM {:.1} KB",
            self.weight_bytes as f64 / 1024.0,
            if self.weights_resident { "resident" } else { "streamed" },
            self.act_in_bytes as f64 / 1024.0,
            self.act_out_bytes as f64 / 1024.0,
            if self.acts_resident { "resident" } else { "spilled" },
            self.dram_bytes as f64 / 1024.0,
        )
    }
}

/// Compression ratios the architecture applies to each operand class.
fn compression(config: &ArchConfig, layer_index: usize, layer: &LayerSpec) -> (f64, f64) {
    let w_ratio = if config.kind.uses_wdbb() && layer_index != 0 {
        config.wdbb.block_bytes() as f64 / config.wdbb.bz() as f64
    } else {
        1.0
    };
    let a_ratio = if config.kind.uses_adbb() && layer_index != 0 {
        let nnz = layer.suggested_adbb().bound(config.geometry.bz).min(config.geometry.bz);
        (nnz + 1) as f64 / config.geometry.bz as f64
    } else {
        1.0
    };
    (w_ratio, a_ratio)
}

/// Analyzes one layer's residency on `config` under `mem`.
pub fn analyze_layer(
    config: &ArchConfig,
    mem: &MemoryConfig,
    layer: &LayerSpec,
    layer_index: usize,
) -> LayerResidency {
    let g = &layer.gemm;
    let (w_ratio, a_ratio) = compression(config, layer_index, layer);
    let weight_bytes = ((g.m * g.k) as f64 * w_ratio) as u64;
    let act_in_bytes = ((g.k * g.n) as f64 * a_ratio) as u64;
    let act_out_bytes = ((g.m * g.n) as f64 * a_ratio) as u64;

    let weights_resident = weight_bytes <= mem.weight_buffer_bytes as u64;
    let acts_resident = act_in_bytes + act_out_bytes <= mem.act_buffer_bytes as u64;

    // Weight DRAM traffic: one pass if resident, otherwise re-streamed
    // once per output-column strip of the tiling.
    let col_strips = config.geometry.tile_walk(g.m, g.n).col_strips() as u64;
    let w_dram = if weights_resident { weight_bytes } else { weight_bytes * col_strips };
    // Activation DRAM traffic: zero if both maps stay in the AB (the
    // input was produced on-chip by the previous layer); read + write if
    // spilled. The first layer's input always comes from DRAM.
    let a_dram = if acts_resident {
        if layer_index == 0 {
            act_in_bytes
        } else {
            0
        }
    } else {
        act_in_bytes + act_out_bytes
    };
    let dram_bytes = w_dram + a_dram;
    LayerResidency {
        weight_bytes,
        act_in_bytes,
        act_out_bytes,
        weights_resident,
        acts_resident,
        dram_bytes,
        dma_cycles: dram_bytes / mem.dma_bytes_per_cycle,
    }
}

/// Whole-model residency summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelResidency {
    /// Per-layer analyses in execution order.
    pub layers: Vec<LayerResidency>,
}

impl ModelResidency {
    /// Analyzes every layer of `model` on `config`.
    pub fn of(config: &ArchConfig, mem: &MemoryConfig, model: &ModelSpec) -> Self {
        let layers = model
            .layers
            .iter()
            .enumerate()
            .map(|(i, l)| analyze_layer(config, mem, l, i))
            .collect();
        Self { layers }
    }

    /// Total DRAM traffic in bytes.
    pub fn total_dram_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.dram_bytes).sum()
    }

    /// Number of layers whose weights do not fit the WB.
    pub fn streamed_weight_layers(&self) -> usize {
        self.layers.iter().filter(|l| !l.weights_resident).count()
    }

    /// Number of layers whose activations spill to DRAM.
    pub fn spilled_act_layers(&self) -> usize {
        self.layers.iter().filter(|l| !l.acts_resident).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArchKind;
    use s2ta_models::{alexnet, mobilenet_v1, vgg16};

    fn cfg(kind: ArchKind) -> ArchConfig {
        ArchConfig::preset(kind)
    }

    #[test]
    fn mobilenet_mostly_fits() {
        // All MobileNetV1 conv weights fit the 512 KB WB except the
        // final 1024x1024 point-wise layer (1 MB dense).
        let mem = MemoryConfig::default();
        let model = mobilenet_v1();
        let r = ModelResidency::of(&cfg(ArchKind::SaZvcg), &mem, &model);
        let conv_spills: Vec<&str> = model
            .layers
            .iter()
            .zip(&r.layers)
            .filter(|(l, res)| !l.is_memory_bound() && !res.weights_resident)
            .map(|(l, _)| l.name.as_str())
            .collect();
        assert_eq!(conv_spills, vec!["pw13"], "only the 1 MB final point-wise streams");
        // With 4/8 W-DBB compression even pw13 fits (1 MB * 5/8 = 640 KB
        // ... still over; but the compressed footprint shrinks).
        let aw = ModelResidency::of(&cfg(ArchKind::S2taAw), &mem, &model);
        let pw13 = model.layers.iter().position(|l| l.name == "pw13").expect("pw13");
        assert!(aw.layers[pw13].weight_bytes < r.layers[pw13].weight_bytes);
    }

    #[test]
    fn alexnet_fc_weights_do_not_fit() {
        let mem = MemoryConfig::default();
        let model = alexnet();
        let r = ModelResidency::of(&cfg(ArchKind::SaZvcg), &mem, &model);
        let fc6 = model.layers.iter().position(|l| l.name == "fc6").expect("fc6");
        assert!(!r.layers[fc6].weights_resident, "37 MB of fc6 weights exceed 512 KB");
        assert!(r.layers[fc6].dma_cycles > 0);
    }

    #[test]
    fn compression_cuts_dram_traffic() {
        let mem = MemoryConfig::default();
        let model = vgg16();
        let dense = ModelResidency::of(&cfg(ArchKind::SaZvcg), &mem, &model);
        let aw = ModelResidency::of(&cfg(ArchKind::S2taAw), &mem, &model);
        assert!(
            aw.total_dram_bytes() < dense.total_dram_bytes(),
            "DBB compression must reduce DRAM traffic: {} vs {}",
            aw.total_dram_bytes(),
            dense.total_dram_bytes()
        );
    }

    #[test]
    fn vgg_early_activations_spill() {
        // VGG16 conv1_2: 64ch x 224^2 im2col inputs exceed 2 MB.
        let mem = MemoryConfig::default();
        let model = vgg16();
        let r = ModelResidency::of(&cfg(ArchKind::SaZvcg), &mem, &model);
        assert!(r.spilled_act_layers() > 0, "early VGG feature maps exceed the AB");
    }

    #[test]
    fn overlap_picks_the_longer_side() {
        let res = LayerResidency {
            weight_bytes: 0,
            act_in_bytes: 0,
            act_out_bytes: 0,
            weights_resident: true,
            acts_resident: true,
            dram_bytes: 1600,
            dma_cycles: 100,
        };
        assert_eq!(res.overlapped_cycles(50), 100);
        assert_eq!(res.overlapped_cycles(500), 500);
        assert!(res.dma_bound(50) && !res.dma_bound(500));
        assert!(!res.to_string().is_empty());
    }

    #[test]
    fn first_layer_input_comes_from_dram() {
        let mem = MemoryConfig::default();
        let model = mobilenet_v1();
        let r0 = analyze_layer(&cfg(ArchKind::SaZvcg), &mem, &model.layers[0], 0);
        assert!(r0.dram_bytes >= r0.act_in_bytes, "image must be DMA'd in");
        let r1 = analyze_layer(&cfg(ArchKind::SaZvcg), &mem, &model.layers[2], 2);
        if r1.acts_resident {
            assert!(r1.dram_bytes < r1.act_in_bytes + r1.weight_bytes + 1);
        }
    }
}
