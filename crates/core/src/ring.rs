//! A fixed-capacity drop-oldest ring buffer.
//!
//! [`Ring`] preallocates its full capacity up front and never grows:
//! once full, every further push overwrites the oldest element and
//! bumps an `overwritten` tally. This is the storage discipline behind
//! the serving flight recorder: recording an event in the steady state
//! costs one slot write and zero heap allocations, no matter how long
//! the run is or how often the ring wraps.

/// A preallocated drop-oldest ring buffer.
///
/// * `push` never allocates after construction: below capacity it
///   appends; at capacity it overwrites the oldest element in place.
/// * A zero-capacity ring accepts pushes and drops every one of them
///   (counting each in [`Ring::overwritten`]) — the disabled-recorder
///   degenerate case.
/// * [`Ring::iter`] walks the retained elements oldest → newest.
///
/// Equality compares the *logical* content (the oldest → newest
/// sequence), the capacity, and the overwrite tally — two rings that
/// saw the same pushes compare equal regardless of their internal
/// rotation.
#[derive(Debug, Clone)]
pub struct Ring<T> {
    buf: Vec<T>,
    capacity: usize,
    /// Index of the oldest element once the ring is full; 0 before.
    head: usize,
    overwritten: u64,
}

impl<T> Ring<T> {
    /// An empty ring holding at most `capacity` elements, with the
    /// whole backing store allocated immediately.
    pub fn new(capacity: usize) -> Self {
        Self { buf: Vec::with_capacity(capacity), capacity, head: 0, overwritten: 0 }
    }

    /// Appends `value`, overwriting the oldest element (and counting
    /// it as dropped) when the ring is already full. Never allocates.
    pub fn push(&mut self, value: T) {
        if self.capacity == 0 {
            self.overwritten += 1;
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(value);
        } else {
            self.buf[self.head] = value;
            self.head = (self.head + 1) % self.capacity;
            self.overwritten += 1;
        }
    }

    /// Elements currently retained (at most the capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The fixed capacity chosen at construction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many pushed elements have been dropped to make room (or
    /// dropped outright, for a zero-capacity ring).
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Iterates the retained elements oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let (tail, front) = self.buf.split_at(self.head.min(self.buf.len()));
        front.iter().chain(tail.iter())
    }
}

impl<T: PartialEq> PartialEq for Ring<T> {
    fn eq(&self, other: &Self) -> bool {
        self.capacity == other.capacity
            && self.overwritten == other.overwritten
            && self.len() == other.len()
            && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contents(r: &Ring<u32>) -> Vec<u32> {
        r.iter().copied().collect()
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut r = Ring::new(0);
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.len(), 0);
        assert!(r.is_empty());
        assert_eq!(r.overwritten(), 5);
        assert_eq!(contents(&r), Vec::<u32>::new());
    }

    #[test]
    fn capacity_one_keeps_only_the_newest() {
        let mut r = Ring::new(1);
        r.push(7);
        assert_eq!(contents(&r), vec![7]);
        assert_eq!(r.overwritten(), 0);
        r.push(8);
        r.push(9);
        assert_eq!(contents(&r), vec![9]);
        assert_eq!(r.overwritten(), 2);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn exact_fit_retains_everything_in_order() {
        let mut r = Ring::new(4);
        for i in 0..4 {
            r.push(i);
        }
        assert_eq!(contents(&r), vec![0, 1, 2, 3]);
        assert_eq!(r.overwritten(), 0);
        assert_eq!(r.len(), 4);
        assert_eq!(r.capacity(), 4);
    }

    #[test]
    fn overflow_drops_oldest_first() {
        let mut r = Ring::new(3);
        for i in 0..7 {
            r.push(i);
        }
        // 0..4 were overwritten oldest-first; 4, 5, 6 remain.
        assert_eq!(contents(&r), vec![4, 5, 6]);
        assert_eq!(r.overwritten(), 4);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn never_allocates_past_construction() {
        let mut r = Ring::new(8);
        let cap_before = r.buf.capacity();
        for i in 0..1_000 {
            r.push(i);
        }
        assert_eq!(r.buf.capacity(), cap_before, "ring backing store must never grow");
    }

    #[test]
    fn equality_ignores_internal_rotation() {
        // Same logical pushes through different construction orders.
        let mut a = Ring::new(3);
        let mut b = Ring::new(3);
        for i in 0..9 {
            a.push(i);
            b.push(i);
        }
        assert_eq!(a, b);
        b.push(9);
        assert_ne!(a, b);
        // Different capacity is a different ring even when the
        // retained oldest -> newest contents happen to match.
        let mut c = Ring::new(3);
        let mut d = Ring::new(5);
        for i in 0..3 {
            c.push(i);
            d.push(i);
        }
        assert_eq!(contents(&c), contents(&d));
        assert_ne!(c, d);
    }
}
