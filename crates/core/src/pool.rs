//! Order-preserving parallel fan-out primitives.
//!
//! Both the design-space sweep ([`crate::sweep`]) and the serving fleet
//! (`s2ta-serve`) need the same primitive: run an embarrassingly
//! parallel batch of jobs on N OS threads and get the results back **in
//! input order**, so parallel output is byte-identical to the serial
//! path.
//!
//! Two implementations live here:
//!
//! - [`Executor`] — the hot-loop one. A **persistent** work-stealing
//!   pool (std threads over the in-tree `crossbeam` injector/steal
//!   deques) whose workers are spawned once and reused by every burst,
//!   so steady-state fan-out performs no thread spawns and no channel
//!   allocation. [`Executor::global`] is the process-wide instance
//!   shared by `Fleet`, `Cluster`, and the bench fan-outs.
//! - [`parallel_map`] — the original spawn-per-burst implementation,
//!   kept as the reference the executor is differentially tested
//!   against (and for one-shot callers that never repeat).
//!
//! Both pull job indices from a shared atomic cursor (self-balancing
//! for uneven job costs) and write results into per-index slots, so the
//! output order is fixed by construction at every worker count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex, OnceLock};
use std::thread;

/// The number of workers to use when the caller has no preference: the
/// machine's available parallelism (1 if it cannot be queried).
pub fn default_workers() -> usize {
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The worker count for a fan-out over `jobs` jobs: `cap` (or the
/// machine's parallelism when `cap` is `None`), never more workers
/// than jobs, and **at least one** — a tick that formed zero jobs must
/// not request a zero-worker pool.
pub fn worker_count_for(jobs: usize, cap: Option<usize>) -> usize {
    cap.unwrap_or_else(default_workers).min(jobs).max(1)
}

/// Applies `f` to every item on a pool of `workers` OS threads and
/// returns the results in input order.
///
/// `workers <= 1` (or a batch of one) runs serially on the calling
/// thread with no pool at all, so the serial path stays allocation- and
/// thread-free. The output is identical for every worker count.
pub fn parallel_map<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, U)>();
    thread::scope(|scope| {
        for _ in 0..workers.min(items.len()) {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                if tx.send((i, f(&items[i]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
        for (i, u) in rx {
            out[i] = Some(u);
        }
        out.into_iter().map(|o| o.expect("worker produced every index")).collect()
    })
}

/// A persistent work-stealing executor for order-preserving fan-outs.
///
/// Worker threads are spawned once (at construction, or lazily for
/// [`Executor::global`]) and parked between bursts; each
/// [`Executor::map`] call publishes one batch to the shared injector
/// and the calling thread works alongside the stolen-in helpers. The
/// result vector is assembled by index, so output is byte-identical to
/// the serial path and to [`parallel_map`] at every worker count.
pub struct Executor {
    pool: crossbeam::pool::Pool,
}

impl Executor {
    /// An executor with `workers` total parallelism: the calling thread
    /// plus `workers - 1` persistent helper threads. `workers <= 1`
    /// spawns no threads at all and every map runs serially.
    pub fn new(workers: usize) -> Self {
        Self { pool: crossbeam::pool::Pool::new(workers.saturating_sub(1)) }
    }

    /// The process-wide executor, sized to [`default_workers`] and
    /// spawned on first use. `Fleet`, `Cluster`, the sweep, and the
    /// bench fan-outs all share it, so the whole process keeps one set
    /// of persistent workers no matter how many fleets exist.
    pub fn global() -> &'static Executor {
        static GLOBAL: OnceLock<Executor> = OnceLock::new();
        GLOBAL.get_or_init(|| Executor::new(default_workers()))
    }

    /// Total parallelism (helper threads + the calling thread).
    pub fn workers(&self) -> usize {
        self.pool.threads() + 1
    }

    /// Applies `f` to every item using all available workers; results
    /// in input order. See [`Executor::map_capped`].
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.map_capped(items, None, f)
    }

    /// Applies `f` to every item on at most `cap` workers (`None` =
    /// all) and returns the results in input order.
    ///
    /// An effective worker count of one — `cap == Some(1)`, a batch of
    /// one, or a one-worker executor — runs serially inline on the
    /// calling thread, touching no locks and waking no threads, so
    /// serial fleets keep deterministic side-effect order (e.g. LRU
    /// counters) and the serial path stays thread-free.
    pub fn map_capped<T, U, F>(&self, items: &[T], cap: Option<usize>, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        let workers = worker_count_for(items.len(), cap).min(self.workers());
        if workers <= 1 || items.len() <= 1 {
            return items.iter().map(&f).collect();
        }
        let slots: Vec<Mutex<Option<U>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
        self.pool.run(items.len(), workers - 1, &|i| {
            let u = f(&items[i]);
            *slots[i].lock().expect("executor result slot poisoned") = Some(u);
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("executor result slot poisoned")
                    .expect("executor produced every index")
            })
            .collect()
    }

    /// Runs `f` on every item **in place**, each item visited exactly
    /// once on some worker — the mutating sibling of
    /// [`Executor::map_capped`] for fan-outs over owned state (e.g.
    /// cluster shards advancing between arrival barriers).
    ///
    /// Items are disjoint, so there is no cross-item synchronization
    /// beyond the per-index handoff; an effective worker count of one
    /// (or a batch of at most one) runs serially inline on the calling
    /// thread, exactly like the map path.
    pub fn for_each_mut<T, F>(&self, items: &mut [T], cap: Option<usize>, f: F)
    where
        T: Send,
        F: Fn(&mut T) + Sync,
    {
        let workers = worker_count_for(items.len(), cap).min(self.workers());
        if workers <= 1 || items.len() <= 1 {
            for item in items.iter_mut() {
                f(item);
            }
            return;
        }
        // Each cell is locked exactly once, by whichever worker claims
        // its index — the mutex is the safe per-index handoff of the
        // `&mut T`, never contended.
        let cells: Vec<Mutex<&mut T>> = items.iter_mut().map(Mutex::new).collect();
        self.pool.run(cells.len(), workers - 1, &|i| {
            let mut item = cells[i].lock().expect("executor item slot poisoned");
            f(&mut item);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..500).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 3, 8, 64] {
            assert_eq!(parallel_map(&items, workers, |&x| x * x), serial, "{workers} workers");
        }
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..137).collect();
        let out = parallel_map(&items, 7, |&i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), items.len());
        assert_eq!(out, items);
    }

    #[test]
    fn handles_empty_and_tiny_batches() {
        let none: Vec<u32> = Vec::new();
        assert!(parallel_map(&none, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[9u32], 4, |&x| x + 1), vec![10]);
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn executor_matches_serial_and_parallel_map() {
        let items: Vec<u64> = (0..300).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for workers in [1, 2, 7, default_workers()] {
            let ex = Executor::new(workers);
            assert_eq!(ex.map(&items, |&x| x * 3 + 1), serial, "{workers} workers");
            assert_eq!(
                parallel_map(&items, workers, |&x| x * 3 + 1),
                serial,
                "{workers} workers (reference)"
            );
        }
    }

    #[test]
    fn executor_guards_zero_and_single_job() {
        let ex = Executor::new(4);
        let none: Vec<u32> = Vec::new();
        assert!(ex.map(&none, |&x| x).is_empty());
        assert_eq!(ex.map(&[7u32], |&x| x + 1), vec![8]);
        assert_eq!(ex.map_capped(&[1u32, 2, 3], Some(1), |&x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn executor_is_reusable_and_global_is_shared() {
        let ex = Executor::new(3);
        for _ in 0..20 {
            let items: Vec<usize> = (0..50).collect();
            assert_eq!(ex.map(&items, |&i| i + 1), (1..=50).collect::<Vec<_>>());
        }
        let a = Executor::global() as *const Executor;
        let b = Executor::global() as *const Executor;
        assert_eq!(a, b);
        assert!(Executor::global().workers() >= 1);
    }

    #[test]
    fn for_each_mut_matches_serial_at_every_worker_count() {
        let reference: Vec<u64> = (0..211u64).map(|x| x * x + 3).collect();
        for workers in [1, 2, 7, default_workers()] {
            let ex = Executor::new(workers);
            let mut items: Vec<u64> = (0..211).collect();
            ex.for_each_mut(&mut items, None, |x| *x = *x * *x + 3);
            assert_eq!(items, reference, "{workers} workers");
        }
    }

    #[test]
    fn for_each_mut_visits_every_item_exactly_once() {
        let ex = Executor::new(4);
        let visits = AtomicUsize::new(0);
        let mut items: Vec<usize> = (0..97).collect();
        ex.for_each_mut(&mut items, None, |_| {
            visits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(visits.load(Ordering::Relaxed), 97);
        // Capped to one worker it runs inline, still once per item.
        visits.store(0, Ordering::Relaxed);
        ex.for_each_mut(&mut items, Some(1), |_| {
            visits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(visits.load(Ordering::Relaxed), 97);
        let mut empty: Vec<u32> = Vec::new();
        ex.for_each_mut(&mut empty, None, |_| unreachable!("no items"));
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(32))]
        /// [`Executor::map`] is byte-identical to a serial `iter().map`
        /// and to the spawn-per-burst [`parallel_map`] it replaced, at
        /// every interesting worker count — including the empty and
        /// single-job batches the executor short-circuits serially.
        #[test]
        fn prop_executor_map_is_order_and_value_identical(
            items in proptest::collection::vec(proptest::arbitrary::any::<u64>(), 0..200),
        ) {
            let f = |x: &u64| x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(7);
            let serial: Vec<u64> = items.iter().map(f).collect();
            for workers in [1, 2, 7, default_workers()] {
                let ex = Executor::new(workers);
                proptest::prop_assert_eq!(&ex.map(&items, f), &serial, "{} workers", workers);
                proptest::prop_assert_eq!(
                    &parallel_map(&items, workers, f),
                    &serial,
                    "{} workers (parallel_map)",
                    workers
                );
            }
        }
    }

    /// Regression guard for the fleet's sizing expression: an empty
    /// batch list used to compute `default_workers().min(0) == 0`
    /// workers. The helper must never return zero, and `parallel_map`
    /// must tolerate a zero worker request anyway (serial fall-back).
    #[test]
    fn worker_count_never_zero_and_zero_workers_still_run() {
        assert_eq!(worker_count_for(0, None), 1);
        assert_eq!(worker_count_for(0, Some(8)), 1);
        assert_eq!(worker_count_for(3, Some(8)), 3);
        assert_eq!(worker_count_for(100, Some(4)), 4);
        assert!(worker_count_for(100, None) >= 1);
        let none: Vec<u32> = Vec::new();
        assert!(parallel_map(&none, 0, |&x| x).is_empty());
        assert_eq!(parallel_map(&[1u32, 2], 0, |&x| x * 2), vec![2, 4]);
    }
}
