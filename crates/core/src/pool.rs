//! A small order-preserving worker pool (`std::thread` + channels).
//!
//! Both the design-space sweep ([`crate::sweep`]) and the serving fleet
//! (`s2ta-serve`) need the same primitive: run an embarrassingly
//! parallel batch of jobs on N OS threads and get the results back **in
//! input order**, so parallel output is byte-identical to the serial
//! path. Workers pull job indices from a shared atomic counter
//! (self-balancing for uneven job costs) and push `(index, result)`
//! pairs through an [`std::sync::mpsc`] channel; the caller reassembles
//! them by index.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

/// The number of workers to use when the caller has no preference: the
/// machine's available parallelism (1 if it cannot be queried).
pub fn default_workers() -> usize {
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The worker count for a fan-out over `jobs` jobs: `cap` (or the
/// machine's parallelism when `cap` is `None`), never more workers
/// than jobs, and **at least one** — a tick that formed zero jobs must
/// not request a zero-worker pool.
pub fn worker_count_for(jobs: usize, cap: Option<usize>) -> usize {
    cap.unwrap_or_else(default_workers).min(jobs).max(1)
}

/// Applies `f` to every item on a pool of `workers` OS threads and
/// returns the results in input order.
///
/// `workers <= 1` (or a batch of one) runs serially on the calling
/// thread with no pool at all, so the serial path stays allocation- and
/// thread-free. The output is identical for every worker count.
pub fn parallel_map<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, U)>();
    thread::scope(|scope| {
        for _ in 0..workers.min(items.len()) {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                if tx.send((i, f(&items[i]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
        for (i, u) in rx {
            out[i] = Some(u);
        }
        out.into_iter().map(|o| o.expect("worker produced every index")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..500).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 3, 8, 64] {
            assert_eq!(parallel_map(&items, workers, |&x| x * x), serial, "{workers} workers");
        }
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..137).collect();
        let out = parallel_map(&items, 7, |&i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), items.len());
        assert_eq!(out, items);
    }

    #[test]
    fn handles_empty_and_tiny_batches() {
        let none: Vec<u32> = Vec::new();
        assert!(parallel_map(&none, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[9u32], 4, |&x| x + 1), vec![10]);
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    /// Regression guard for the fleet's sizing expression: an empty
    /// batch list used to compute `default_workers().min(0) == 0`
    /// workers. The helper must never return zero, and `parallel_map`
    /// must tolerate a zero worker request anyway (serial fall-back).
    #[test]
    fn worker_count_never_zero_and_zero_workers_still_run() {
        assert_eq!(worker_count_for(0, None), 1);
        assert_eq!(worker_count_for(0, Some(8)), 1);
        assert_eq!(worker_count_for(3, Some(8)), 3);
        assert_eq!(worker_count_for(100, Some(4)), 4);
        assert!(worker_count_for(100, None) >= 1);
        let none: Vec<u32> = Vec::new();
        assert!(parallel_map(&none, 0, |&x| x).is_empty());
        assert_eq!(parallel_map(&[1u32, 2], 0, |&x| x * 2), vec![2, 4]);
    }
}
