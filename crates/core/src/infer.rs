//! Functional end-to-end INT8 inference through the simulated
//! accelerator — the whole system working as an inference engine.
//!
//! A [`Pipeline`] is a small CNN (conv / FC layers with ReLU,
//! requantization and pooling — the MCU post-processing of Sec. 6.3).
//! [`Pipeline::run`] executes it **through the functional datapaths** of
//! the configured architecture: conv layers are im2col-lowered, weights
//! are W-DBB pruned (except layer 1), activations pass through DAP with
//! the per-layer density tuning, the simulated mux/serialization logic
//! computes every accumulator, and the MCU model requantizes between
//! layers. [`Pipeline::run_reference`] computes the same semantics with
//! the golden kernels; the two are asserted bit-identical by tests —
//! layer by layer, logits included.

use crate::{Accelerator, ArchKind};
use s2ta_dbb::dap::{choose_layer_nnz, dap_matrix, LayerNnz};
use s2ta_dbb::{prune, BlockAxis, DbbConfig, DbbMatrix};
use s2ta_sim::{smt, systolic, tpe, EventCounts};
use s2ta_tensor::postproc::{maxpool2x2, relu_requant, requant, Requant};
use s2ta_tensor::{gemm_ref, im2col, AccMatrix, ConvShape, Matrix, Tensor4};

/// The operation a pipeline layer performs.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerOp {
    /// A convolution with the given geometry.
    Conv(ConvShape),
    /// A fully-connected layer (`out_features x in_features` weights).
    Fc {
        /// Input features (must equal the flattened previous output).
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
}

/// One layer of a functional inference pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineLayer {
    /// Layer name.
    pub name: String,
    /// The operation.
    pub op: LayerOp,
    /// Weights in GEMM form (`M x K`, channel-innermost reduction).
    pub weights: Matrix,
    /// Apply ReLU before requantization.
    pub relu: bool,
    /// Apply 2x2/2 max-pooling after requantization (conv layers only).
    pub pool: bool,
}

/// A runnable multi-layer network.
#[derive(Debug, Clone, PartialEq)]
pub struct Pipeline {
    /// Layers in execution order.
    pub layers: Vec<PipelineLayer>,
}

/// The activation state flowing between layers.
#[derive(Debug, Clone, PartialEq)]
pub struct Feature {
    /// `channels x (h*w)` activation matrix.
    pub data: Matrix,
    /// Spatial height.
    pub h: usize,
    /// Spatial width.
    pub w: usize,
}

impl Feature {
    /// Wraps an input image / feature map.
    ///
    /// # Panics
    ///
    /// Panics if the matrix width is not `h * w`.
    pub fn new(data: Matrix, h: usize, w: usize) -> Self {
        assert_eq!(data.cols(), h * w, "feature width must equal h*w");
        Self { data, h, w }
    }

    /// Flattens to a `K x 1` column for FC layers (channel-major).
    pub fn flatten(&self) -> Matrix {
        Matrix::from_vec(self.data.len(), 1, self.data.data().to_vec())
    }

    fn as_tensor(&self) -> Tensor4 {
        Tensor4::from_vec([1, self.data.rows(), self.h, self.w], self.data.data().to_vec())
    }
}

/// The result of one pipeline execution.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceRun {
    /// Per-layer output features (after post-processing).
    pub features: Vec<Feature>,
    /// Final logits.
    pub logits: Vec<i8>,
    /// Predicted class (argmax of logits, lowest index on ties).
    pub prediction: usize,
    /// Aggregate simulated events (zero for the reference path).
    pub events: EventCounts,
}

/// The operands a layer actually executed with (post-pruning), so the
/// reference path can replay identical semantics.
struct EffectiveOperands {
    w: Matrix,
    a: Matrix,
}

impl Pipeline {
    /// Validates inter-layer shape compatibility.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message if any layer's weights disagree
    /// with its op, or consecutive layers do not fit.
    pub fn validate(&self, input_channels: usize) {
        let mut channels = input_channels;
        for l in &self.layers {
            match &l.op {
                LayerOp::Conv(s) => {
                    assert_eq!(s.c, channels, "{}: input channels mismatch", l.name);
                    assert_eq!(
                        (l.weights.rows(), l.weights.cols()),
                        (s.k, s.c * s.r * s.s),
                        "{}: weight dims mismatch",
                        l.name
                    );
                    channels = s.k;
                }
                LayerOp::Fc { in_features, out_features } => {
                    assert_eq!(
                        (l.weights.rows(), l.weights.cols()),
                        (*out_features, *in_features),
                        "{}: weight dims mismatch",
                        l.name
                    );
                    channels = *out_features;
                }
            }
        }
    }

    /// Runs the pipeline through `acc`'s functional datapath.
    pub fn run(&self, acc: &Accelerator, input: &Feature) -> InferenceRun {
        self.execute(input, |idx, layer, a| self.layer_on_arch(acc, idx, layer, a))
    }

    /// Runs the pipeline with golden kernels under the same DBB
    /// semantics `kind` would apply (pruning, DAP) — the bit-exact
    /// reference for [`Pipeline::run`].
    pub fn run_reference(&self, kind: ArchKind, input: &Feature) -> InferenceRun {
        self.execute(input, |idx, layer, a| {
            let eff = self.effective_operands(kind, idx, layer, a);
            (gemm_ref(&eff.w, &eff.a), EventCounts::default())
        })
    }

    fn execute(
        &self,
        input: &Feature,
        mut layer_fn: impl FnMut(usize, &PipelineLayer, &Matrix) -> (AccMatrix, EventCounts),
    ) -> InferenceRun {
        self.validate(input.data.rows());
        let mut feature = input.clone();
        let mut features = Vec::with_capacity(self.layers.len());
        let mut events = EventCounts::default();
        for (idx, layer) in self.layers.iter().enumerate() {
            let (a_matrix, out_hw) = match &layer.op {
                LayerOp::Conv(s) => (im2col(s, &feature.as_tensor()), (s.out_h(), s.out_w())),
                LayerOp::Fc { .. } => (feature.flatten(), (1, 1)),
            };
            let (acc, ev) = layer_fn(idx, layer, &a_matrix);
            events += ev;
            let rq = Requant::fit(&acc);
            let out = if layer.relu { relu_requant(&acc, rq) } else { requant(&acc, rq) };
            let mut next = Feature::new(out, out_hw.0, out_hw.1);
            if layer.pool {
                let (pooled, oh, ow) = maxpool2x2(&next.data, next.h, next.w);
                next = Feature::new(pooled, oh, ow);
            }
            features.push(next.clone());
            feature = next;
        }
        let logits: Vec<i8> = feature.data.data().to_vec();
        let prediction = logits
            .iter()
            .enumerate()
            .max_by_key(|&(i, &v)| (v, std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .unwrap_or(0);
        InferenceRun { features, logits, prediction, events }
    }

    /// The pruned/DAP'd operands layer `idx` executes with on `kind`.
    fn effective_operands(
        &self,
        kind: ArchKind,
        idx: usize,
        layer: &PipelineLayer,
        a: &Matrix,
    ) -> EffectiveOperands {
        let w = if kind.uses_wdbb() && idx != 0 {
            prune::prune_matrix(&layer.weights, BlockAxis::Rows, DbbConfig::w_default())
        } else {
            layer.weights.clone()
        };
        let a_eff = if kind.uses_adbb() {
            let (adbb, _) = dap_matrix(a, 8, self.layer_nnz(idx, a));
            adbb.decompress()
        } else {
            a.clone()
        };
        EffectiveOperands { w, a: a_eff }
    }

    /// Per-layer A-DBB tuning: layer 0 (image) runs dense; others keep
    /// 95% of activation magnitude (Sec. 5.2 per-layer tuning).
    fn layer_nnz(&self, idx: usize, a: &Matrix) -> LayerNnz {
        if idx == 0 {
            LayerNnz::Dense
        } else {
            choose_layer_nnz(a, 8, 0.95)
        }
    }

    fn layer_on_arch(
        &self,
        acc: &Accelerator,
        idx: usize,
        layer: &PipelineLayer,
        a: &Matrix,
    ) -> (AccMatrix, EventCounts) {
        let cfg = acc.config();
        let geom = &cfg.geometry;
        match cfg.kind {
            ArchKind::Sa => {
                let run = systolic::run(geom, false, &layer.weights, a);
                (run.result, run.events)
            }
            ArchKind::SaZvcg => {
                let run = systolic::run(geom, true, &layer.weights, a);
                (run.result, run.events)
            }
            ArchKind::SaSmtT2Q2 | ArchKind::SaSmtT2Q4 => {
                let run = smt::run(geom, cfg.smt, &layer.weights, a);
                (run.result, run.events)
            }
            ArchKind::S2taW => {
                let w = self.compress_weights(cfg.kind, idx, layer);
                let run = tpe::run_wdbb(geom, &w, a);
                (run.result, run.events)
            }
            ArchKind::S2taAw => {
                let w = self.compress_weights(cfg.kind, idx, layer);
                let (adbb, dap_ev) = dap_matrix(a, geom.bz, self.layer_nnz(idx, a));
                let run = tpe::run_aw(geom, &w, &adbb);
                let mut events = run.events;
                events.dap_stages += dap_ev.stages;
                events.dap_comparisons += dap_ev.comparisons;
                (run.result, events)
            }
        }
    }

    fn compress_weights(&self, kind: ArchKind, idx: usize, layer: &PipelineLayer) -> DbbMatrix {
        debug_assert!(kind.uses_wdbb());
        if idx == 0 {
            DbbMatrix::compress(&layer.weights, BlockAxis::Rows, DbbConfig::dense(8))
                .expect("dense bound always satisfiable")
        } else {
            prune::prune_and_compress(&layer.weights, DbbConfig::w_default())
        }
    }
}

/// Builds a LeNet-5-shaped pipeline with random INT8 weights, plus a
/// random 32x32 single-channel input — the standard smoke-test network.
pub fn random_lenet(seed: u64) -> (Pipeline, Feature) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use s2ta_tensor::sparsity::SparseSpec;

    let mut rng = StdRng::seed_from_u64(seed);
    let conv = |name: &str, shape: ConvShape, pool: bool, rng: &mut StdRng| PipelineLayer {
        name: name.into(),
        weights: SparseSpec::random(0.2).matrix(shape.k, shape.c * shape.r * shape.s, rng),
        op: LayerOp::Conv(shape),
        relu: true,
        pool,
    };
    let c1 = conv("conv1", ConvShape::new(6, 1, 32, 32, 5, 5, 1, 0), true, &mut rng);
    let c2 = conv("conv2", ConvShape::new(16, 6, 14, 14, 5, 5, 1, 0), true, &mut rng);
    let fc = |name: &str, inf: usize, outf: usize, relu: bool, rng: &mut StdRng| PipelineLayer {
        name: name.into(),
        weights: SparseSpec::random(0.2).matrix(outf, inf, rng),
        op: LayerOp::Fc { in_features: inf, out_features: outf },
        relu,
        pool: false,
    };
    let f3 = fc("fc3", 16 * 5 * 5, 120, true, &mut rng);
    let f4 = fc("fc4", 120, 84, true, &mut rng);
    let f5 = fc("fc5", 84, 10, false, &mut rng);
    let pipeline = Pipeline { layers: vec![c1, c2, f3, f4, f5] };
    let input = Feature::new(SparseSpec::random(0.1).matrix(1, 32 * 32, &mut rng), 32, 32);
    (pipeline, input)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lenet_shapes_flow() {
        let (p, input) = random_lenet(1);
        let acc = Accelerator::preset(ArchKind::SaZvcg);
        let run = p.run(&acc, &input);
        assert_eq!(run.features[0].data.rows(), 6);
        assert_eq!((run.features[0].h, run.features[0].w), (14, 14));
        assert_eq!((run.features[1].h, run.features[1].w), (5, 5));
        assert_eq!(run.logits.len(), 10);
        assert!(run.prediction < 10);
        assert!(run.events.cycles > 0);
    }

    #[test]
    fn every_arch_matches_its_reference_bit_exactly() {
        let (p, input) = random_lenet(2);
        for kind in ArchKind::ALL {
            let acc = Accelerator::preset(kind);
            let sim = p.run(&acc, &input);
            let golden = p.run_reference(kind, &input);
            assert_eq!(sim.logits, golden.logits, "{kind}: logits diverge");
            for (i, (s, g)) in sim.features.iter().zip(&golden.features).enumerate() {
                assert_eq!(s, g, "{kind}: layer {i} features diverge");
            }
        }
    }

    #[test]
    fn dbb_pruning_changes_numerics_but_not_wildly() {
        let (p, input) = random_lenet(3);
        let dense = p.run(&Accelerator::preset(ArchKind::SaZvcg), &input);
        let pruned = p.run(&Accelerator::preset(ArchKind::S2taAw), &input);
        // Logit vectors differ (lossy pruning) but stay correlated: the
        // top logit of the dense run stays within the top half.
        let dense_top = dense.prediction;
        let mut order: Vec<usize> = (0..pruned.logits.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(pruned.logits[i]));
        let rank = order.iter().position(|&i| i == dense_top).expect("class present");
        assert!(rank < pruned.logits.len() / 2, "pruning destroyed the prediction entirely");
    }

    #[test]
    fn aw_is_faster_end_to_end() {
        let (p, input) = random_lenet(4);
        let zvcg = p.run(&Accelerator::preset(ArchKind::SaZvcg), &input);
        let aw = p.run(&Accelerator::preset(ArchKind::S2taAw), &input);
        assert!(
            aw.events.cycles < zvcg.events.cycles,
            "AW {} vs ZVCG {}",
            aw.events.cycles,
            zvcg.events.cycles
        );
    }

    #[test]
    #[should_panic(expected = "input channels mismatch")]
    fn validation_catches_bad_wiring() {
        let (mut p, input) = random_lenet(5);
        if let LayerOp::Conv(s) = &mut p.layers[1].op {
            s.c = 3; // conv1 produces 6 channels
        }
        let _ = p.run(&Accelerator::preset(ArchKind::Sa), &input);
    }
}
