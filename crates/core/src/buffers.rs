//! PE buffer accounting — the paper's Table 1 ("Comparison of PE buffer
//! sizes per INT8 MAC") and the hardware inventory fed to the area model.
//!
//! The buffer-per-MAC numbers are the paper's central overhead argument:
//! unstructured gather/scatter architectures need hundreds of bytes to
//! kilobytes of buffering per MAC, a systolic array needs 6 B, and the
//! TPE organizations shrink that to below a byte by sharing staged
//! operands among `A x C` MAC groups.

use crate::{ArchConfig, ArchKind};
use s2ta_energy::area::HwSpec;

/// Buffer capacity per MAC, split as in Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferPerMac {
    /// Operand staging bytes per MAC (registers or FIFOs).
    pub operands_bytes: f64,
    /// Accumulator bytes per MAC.
    pub accumulator_bytes: f64,
}

impl BufferPerMac {
    /// Total bytes per MAC.
    pub fn total_bytes(&self) -> f64 {
        self.operands_bytes + self.accumulator_bytes
    }

    /// Buffer sizing for one of our architectures.
    ///
    /// * Scalar SA: 2 B operands (one W, one A register) + 4 B
    ///   accumulator.
    /// * SMT: the per-PE staging FIFOs (double-buffered `T*Q` 2-byte
    ///   pairs) replace the operand registers.
    /// * Dot-product TPE (S2TA-W): `C` staged weight blocks of
    ///   `B + mask` bytes shared by `A*C*B` MACs; accumulators shared by
    ///   the `B`-MAC adder tree.
    /// * Time-unrolled TPE (S2TA-AW): the same staged weight blocks
    ///   shared by `A*C` single-MAC units; a private 4 B accumulator
    ///   each.
    pub fn of(config: &ArchConfig) -> Self {
        let g = &config.geometry;
        match config.kind {
            ArchKind::Sa | ArchKind::SaZvcg => {
                BufferPerMac { operands_bytes: 2.0, accumulator_bytes: 4.0 }
            }
            ArchKind::SaSmtT2Q2 | ArchKind::SaSmtT2Q4 => {
                let fifo = 4.0 * (config.smt.threads * config.smt.queue_depth) as f64;
                BufferPerMac { operands_bytes: fifo, accumulator_bytes: 4.0 }
            }
            ArchKind::S2taW => {
                let staged = (g.c * (g.b + 1)) as f64;
                let macs = (g.a * g.c * g.b) as f64;
                BufferPerMac { operands_bytes: staged / macs, accumulator_bytes: 4.0 / g.b as f64 }
            }
            ArchKind::S2taAw => {
                let staged = (g.c * (g.b + 1)) as f64;
                let units = (g.a * g.c) as f64;
                BufferPerMac { operands_bytes: staged / units, accumulator_bytes: 4.0 }
            }
        }
    }
}

/// Published Table 1 rows for the prior-work architectures (bytes/MAC),
/// as `(name, operands, accumulators)`.
pub const PUBLISHED_BUFFERS: [(&str, f64, f64); 3] =
    [("SCNN", 1280.0, 384.0), ("SparTen", 864.0, 128.0), ("Eyeriss v2", 165.0, 40.0)];

/// Builds the hardware inventory for the area model (Table 2 / Table 4).
pub fn hw_spec(config: &ArchConfig) -> HwSpec {
    let macs = config.macs() as u64;
    let per_mac = BufferPerMac::of(config);
    let (ff_bytes, fifo_bytes) = match config.kind {
        ArchKind::SaSmtT2Q2 | ArchKind::SaSmtT2Q4 => {
            // FIFOs counted separately (denser layout than discrete FFs);
            // keep the 2 B forwarding registers + 4 B accumulator as FF.
            (6 * macs, (per_mac.operands_bytes * macs as f64) as u64)
        }
        _ => ((per_mac.total_bytes() * macs as f64).round() as u64, 0),
    };
    let mux_ways = match config.kind {
        ArchKind::S2taW => macs * config.geometry.bz as u64,
        ArchKind::S2taAw => macs * config.geometry.b as u64,
        _ => 0,
    };
    let dap_comparators = if config.kind.uses_adbb() {
        // One DAP unit per activation write lane: N TPE columns x A
        // blocks, each with 5 stages of BZ-1 comparators (Fig. 8).
        (config.geometry.n * config.geometry.a) as u64 * 5 * (config.geometry.bz as u64 - 1)
    } else {
        0
    };
    HwSpec {
        macs,
        ff_bytes,
        fifo_bytes,
        mux_ways,
        weight_sram_kb: 512.0,
        act_sram_kb: 2048.0,
        mcus: 4,
        dap_comparators,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2ta_energy::area::{AreaBreakdown, AreaParams};

    #[test]
    fn table1_ordering_reproduced() {
        // SA 6 B > S2TA-AW ~4.6 B > S2TA-W ~0.9 B; SMT largest of ours.
        let sa = BufferPerMac::of(&ArchConfig::preset(ArchKind::Sa)).total_bytes();
        let smt = BufferPerMac::of(&ArchConfig::preset(ArchKind::SaSmtT2Q2)).total_bytes();
        let w = BufferPerMac::of(&ArchConfig::preset(ArchKind::S2taW)).total_bytes();
        let aw = BufferPerMac::of(&ArchConfig::preset(ArchKind::S2taAw)).total_bytes();
        assert!(smt > sa, "SMT {smt} should exceed SA {sa}");
        assert!(w < 2.0, "S2TA-W {w} should be near-byte (paper: 0.875 B)");
        assert!(aw < sa, "S2TA-AW {aw} below SA {sa} (paper: 4.75 B)");
        assert!(w < aw, "dot-product shares accumulators; time-unrolled does not");
        // And all far below the published gather/scatter designs.
        for (name, op, acc) in PUBLISHED_BUFFERS {
            assert!(op + acc > smt, "{name} should dwarf all systolic variants");
        }
    }

    #[test]
    fn paper_values_close() {
        // Paper Table 1: S2TA-W 0.875 B total; S2TA-AW 4.75 B total.
        let w = BufferPerMac::of(&ArchConfig::preset(ArchKind::S2taW)).total_bytes();
        let aw = BufferPerMac::of(&ArchConfig::preset(ArchKind::S2taAw)).total_bytes();
        assert!((w - 0.875).abs() < 0.5, "S2TA-W {w}");
        assert!((aw - 4.75).abs() < 0.5, "S2TA-AW {aw}");
        // SMT T2Q2: paper 20 B.
        let smt = BufferPerMac::of(&ArchConfig::preset(ArchKind::SaSmtT2Q2)).total_bytes();
        assert!((smt - 20.0).abs() < 1.0, "SMT {smt}");
    }

    #[test]
    fn area_ordering_matches_table4() {
        // 16nm areas, paper Table 4: SMT (4.2) > AW (3.8) ~ ZVCG (3.7)
        // > W (3.4).
        let p = AreaParams::tsmc16();
        let area = |k| AreaBreakdown::of(&hw_spec(&ArchConfig::preset(k)), &p).total_mm2();
        let zvcg = area(ArchKind::SaZvcg);
        let smt = area(ArchKind::SaSmtT2Q4);
        let w = area(ArchKind::S2taW);
        let aw = area(ArchKind::S2taAw);
        assert!(smt > zvcg, "SMT {smt:.2} > ZVCG {zvcg:.2}");
        assert!(w < zvcg, "W {w:.2} < ZVCG {zvcg:.2}");
        assert!(aw < smt, "AW {aw:.2} < SMT {smt:.2}");
        for a in [zvcg, smt, w, aw] {
            assert!((3.0..5.0).contains(&a), "area {a:.2} outside Table 4 band");
        }
    }
}
