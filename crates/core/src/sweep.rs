//! Design-space exploration (paper Sec. 7 "Automatic RTL Generation"):
//! sweep the `A x B x C _ M x N` space at the 4-TOPS / 2048-MAC
//! constraint and locate the area-vs-power frontier from which the
//! paper picks the `8x4x4_8x8` S2TA-AW design point.

use crate::{buffers, Accelerator, ArchConfig, ArchKind};
use s2ta_dbb::DbbConfig;
use s2ta_energy::area::{AreaBreakdown, AreaParams};
use s2ta_energy::{EnergyBreakdown, TechParams};
use s2ta_sim::smt::SmtConfig;
use s2ta_sim::ArrayGeometry;

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// The geometry evaluated.
    pub geometry: ArrayGeometry,
    /// Estimated area (16nm).
    pub area_mm2: f64,
    /// Average power on the calibration workload (mW, 16nm).
    pub power_mw: f64,
    /// Cycles on the calibration workload.
    pub cycles: u64,
}

impl DesignPoint {
    /// `true` if `other` is at least as good on both axes and better on
    /// one (Pareto dominance).
    pub fn dominated_by(&self, other: &DesignPoint) -> bool {
        other.area_mm2 <= self.area_mm2
            && other.power_mw <= self.power_mw
            && (other.area_mm2 < self.area_mm2 || other.power_mw < self.power_mw)
    }
}

/// Enumerates time-unrolled S2TA-AW geometries with exactly 2048 MACs
/// (`a*c*m*n = 2048`, `b = 4`, BZ = 8) over power-of-two dims, with the
/// TPE dimensions capped at realistic wiring limits (`a, c <= 16`).
pub fn enumerate_aw_geometries() -> Vec<ArrayGeometry> {
    let mut out = Vec::new();
    let pows = [1usize, 2, 4, 8, 16];
    for &a in &pows {
        for &c in &pows {
            for &m in &[1usize, 2, 4, 8, 16, 32, 64] {
                let rest = 2048 / (a * c * m);
                if a * c * m * rest != 2048 || rest == 0 || rest > 64 {
                    continue;
                }
                let n = rest;
                // Keep aspect ratios an implementable systolic grid.
                if m > 64 || n > 64 || m * n < 4 {
                    continue;
                }
                out.push(ArrayGeometry::new(a, 4, c, m, n, 8));
            }
        }
    }
    out.sort_by_key(|g| (g.a, g.c, g.m, g.n));
    out.dedup();
    out
}

/// Evaluates one AW geometry on the calibration workload (the typical
/// conv at 50% weight / 50% activation sparsity, paper Sec. 7) and
/// returns its design point.
pub fn evaluate_aw(geometry: ArrayGeometry, seed: u64) -> DesignPoint {
    let config = ArchConfig {
        kind: ArchKind::S2taAw,
        geometry,
        smt: SmtConfig::t2q2(),
        wdbb: DbbConfig::w_default(),
        smt_sample_tiles: 1,
        dma_bytes_per_cycle: 16,
    };
    let acc = Accelerator::new(config);
    let shape = crate::microbench::typical_conv();
    let w = crate::microbench::dbb_structured_matrix(shape.m, shape.k, 4, true, seed);
    let a = crate::microbench::dbb_structured_matrix(shape.k, shape.n, 4, false, seed ^ 1);
    let events = acc.run_gemm(&w, &a, s2ta_dbb::dap::LayerNnz::Prune(4), false);
    let tech = TechParams::tsmc16();
    let energy = EnergyBreakdown::of(&events, &tech);
    // First-order wiring penalty on the datapath: operand fan-out inside
    // a TPE grows with A and C (each staged operand drives more MAC
    // inputs), which the event model does not see. ~2% added datapath
    // energy per fan-out step.
    let fanout_penalty = 0.02 * ((geometry.a + geometry.c) as f64 - 2.0);
    let adjusted_pj =
        energy.total_pj() + fanout_penalty * (energy.mac_datapath_pj + energy.pe_buffers_pj);
    // Iso-throughput power: all candidates share the 4-TOPS constraint,
    // so compare energy over the workload's ideal (fully utilized)
    // runtime rather than each design's own tile-quantized runtime —
    // otherwise slow designs would look artificially low-power.
    let shape = crate::microbench::typical_conv();
    let ideal_cycles = shape.macs() as f64 / (2048.0 * 2.0); // 4/8 acts: 2x
    let ref_seconds = ideal_cycles / tech.clock_hz;
    let area = AreaBreakdown::of(&buffers::hw_spec(&config), &AreaParams::tsmc16());
    DesignPoint {
        geometry,
        area_mm2: area.total_mm2(),
        power_mw: adjusted_pj * 1e-12 / ref_seconds * 1e3,
        cycles: events.cycles,
    }
}

/// Sweeps the whole AW space and returns `(all_points, frontier)`,
/// frontier sorted by area.
///
/// Candidate evaluation is spread over the machine's cores (the same
/// worker pool the serving fleet uses); results are identical to the
/// serial path for any worker count (see [`sweep_aw_with_workers`]).
pub fn sweep_aw(seed: u64) -> (Vec<DesignPoint>, Vec<DesignPoint>) {
    sweep_aw_with_workers(seed, crate::pool::default_workers())
}

/// [`sweep_aw`] with an explicit worker count (`1` = fully serial).
///
/// Each geometry evaluates independently on the persistent
/// [`crate::pool::Executor`], which preserves input order, so
/// `all_points` and the derived Pareto frontier are byte-identical for
/// every worker count.
pub fn sweep_aw_with_workers(seed: u64, workers: usize) -> (Vec<DesignPoint>, Vec<DesignPoint>) {
    let geometries = enumerate_aw_geometries();
    let all = crate::pool::Executor::global()
        .map_capped(&geometries, Some(workers), |&g| evaluate_aw(g, seed));
    let mut frontier: Vec<DesignPoint> =
        all.iter().filter(|p| !all.iter().any(|q| p.dominated_by(q))).cloned().collect();
    frontier.sort_by(|x, y| x.area_mm2.partial_cmp(&y.area_mm2).expect("finite"));
    (all, frontier)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_nonempty_and_valid() {
        let geoms = enumerate_aw_geometries();
        assert!(geoms.len() >= 10, "only {} geometries", geoms.len());
        for g in &geoms {
            assert_eq!(g.macs_scalar(), 2048, "{g}");
        }
        assert!(geoms.contains(&ArrayGeometry::s2ta_aw()), "paper point must be in the space");
    }

    #[test]
    fn paper_design_point_is_near_the_frontier() {
        let (all, frontier) = sweep_aw(3);
        assert!(!frontier.is_empty());
        let paper = all
            .iter()
            .find(|p| p.geometry == ArrayGeometry::s2ta_aw())
            .expect("paper point evaluated");
        // The paper picks 8x4x4_8x8 as the lowest-power frontier design;
        // our model must agree it is within 10% of the sweep's minimum
        // power.
        let min_power = all.iter().map(|p| p.power_mw).fold(f64::INFINITY, f64::min);
        assert!(
            paper.power_mw <= min_power * 1.10,
            "paper point {:.1} mW vs sweep min {:.1} mW",
            paper.power_mw,
            min_power
        );
    }

    #[test]
    fn parallel_sweep_matches_serial_exactly() {
        let serial = sweep_aw_with_workers(7, 1);
        for workers in [2, 4, 16] {
            let parallel = sweep_aw_with_workers(7, workers);
            assert_eq!(serial, parallel, "{workers} workers");
        }
    }

    #[test]
    fn dominance_is_strict() {
        let g = ArrayGeometry::s2ta_aw();
        let a = DesignPoint { geometry: g, area_mm2: 1.0, power_mw: 1.0, cycles: 1 };
        let b = DesignPoint { geometry: g, area_mm2: 2.0, power_mw: 2.0, cycles: 1 };
        assert!(b.dominated_by(&a));
        assert!(!a.dominated_by(&b));
        assert!(!a.dominated_by(&a));
    }
}
