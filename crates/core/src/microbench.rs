//! Synthetic microbenchmarks (paper Sec. 8.2, Fig. 9 / Fig. 10): a
//! "typical convolution" at controlled weight/activation sparsity.
//!
//! DBB sweeps need *structured* sparsity at exact per-block densities
//! (the x-axes of Fig. 9c/9d are DBB sparsities); unstructured baselines
//! get random sparsity at the same fractions.

use crate::{Accelerator, ArchKind, LayerReport};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use s2ta_dbb::dap::LayerNnz;
use s2ta_tensor::sparsity::SparseSpec;
use s2ta_tensor::{GemmShape, Matrix};

/// The "typical convolution layer" used in the paper's microbenchmarks:
/// a mid-network 3x3 conv (256 output channels, 128 input channels,
/// 16x16 output — output pixels chosen tile-aligned so speedup ratios
/// are not polluted by edge-tile quantization).
pub fn typical_conv() -> GemmShape {
    GemmShape::new(256, 128 * 9, 16 * 16)
}

/// Generates a matrix with **exact DBB-structured sparsity**: every
/// 8-element block along `axis_rows ? rows : cols` has exactly
/// `nnz_per_block` non-zeros at random positions.
///
/// # Panics
///
/// Panics if `nnz_per_block` is 0 or exceeds 8.
pub fn dbb_structured_matrix(
    rows: usize,
    cols: usize,
    nnz_per_block: usize,
    block_rows: bool,
    seed: u64,
) -> Matrix {
    assert!((1..=8).contains(&nnz_per_block), "nnz/block must be 1..=8");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Matrix::zeros(rows, cols);
    let mut positions: Vec<usize> = (0..8).collect();
    let vecs = if block_rows { rows } else { cols };
    let len = if block_rows { cols } else { rows };
    for v in 0..vecs {
        let mut start = 0;
        while start < len {
            let bz = (len - start).min(8);
            positions.shuffle(&mut rng);
            for &pos in positions.iter().filter(|&&p| p < bz).take(nnz_per_block) {
                let val = loop {
                    let x = rng.gen_range(-127i8..=127);
                    if x != 0 {
                        break x;
                    }
                };
                let idx = start + pos;
                if block_rows {
                    m.set(v, idx, val);
                } else {
                    m.set(idx, v, val);
                }
            }
            start += bz;
        }
    }
    m
}

/// One microbenchmark measurement point.
#[derive(Debug, Clone, PartialEq)]
pub struct MicrobenchPoint {
    /// Weight sparsity fraction of the point.
    pub weight_sparsity: f64,
    /// Activation sparsity fraction of the point.
    pub act_sparsity: f64,
    /// The layer run.
    pub report: LayerReport,
}

/// Runs the typical conv on `arch` at the given sparsities.
///
/// DBB architectures receive structured operands (exact per-block NNZ of
/// `8 * (1 - sparsity)`, rounded); unstructured baselines receive random
/// sparsity. The A-DBB serialization depth follows the activation NNZ
/// (clamped to the 5-stage DAP, dense above it).
pub fn run_point(
    arch: ArchKind,
    weight_sparsity: f64,
    act_sparsity: f64,
    seed: u64,
) -> MicrobenchPoint {
    let shape = typical_conv();
    let acc = Accelerator::preset(arch);
    let structured = arch.uses_wdbb();
    let w_nnz = nnz_for(weight_sparsity);
    let a_nnz = nnz_for(act_sparsity);

    let w = if structured {
        dbb_structured_matrix(shape.m, shape.k, w_nnz, true, seed ^ W_SEED_XOR)
    } else {
        let mut rng = StdRng::seed_from_u64(seed ^ W_SEED_XOR);
        SparseSpec::random(weight_sparsity).matrix(shape.m, shape.k, &mut rng)
    };
    let a = if arch.uses_adbb() {
        dbb_structured_matrix(shape.k, shape.n, a_nnz, false, seed ^ A_SEED_XOR)
    } else {
        let mut rng = StdRng::seed_from_u64(seed ^ A_SEED_XOR);
        SparseSpec::random(act_sparsity).matrix(shape.k, shape.n, &mut rng)
    };

    // The time-unrolled datapath serializes any density 1..8; densities
    // above the 5-stage DAP cap rely on the operands already satisfying
    // the bound (true here: they are generated DBB-structured).
    let adbb = if a_nnz >= 8 { LayerNnz::Dense } else { LayerNnz::Prune(a_nnz) };
    // Weight sparsity below the 4/8 bound cannot be DBB-compressed:
    // S2TA runs such layers in the dense-weight fall-back.
    let first_layer_fallback = structured && w_nnz > 4;
    let events = acc.run_gemm(&w, &a, adbb, first_layer_fallback);
    MicrobenchPoint {
        weight_sparsity,
        act_sparsity,
        report: LayerReport {
            name: format!("{arch}@w{weight_sparsity}/a{act_sparsity}"),
            macs: shape.macs(),
            events,
        },
    }
}

const W_SEED_XOR: u64 = 0x5745;
const A_SEED_XOR: u64 = 0x4143;

fn nnz_for(sparsity: f64) -> usize {
    ((8.0 * (1.0 - sparsity)).round() as usize).clamp(1, 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2ta_tensor::sparsity::BlockDensity;

    #[test]
    fn structured_matrix_has_exact_block_nnz() {
        let m = dbb_structured_matrix(16, 64, 3, true, 42);
        let d = BlockDensity::of_rows(&m, 8);
        assert_eq!(d.histogram[3], d.blocks());
    }

    #[test]
    fn structured_cols_too() {
        let m = dbb_structured_matrix(64, 10, 2, false, 7);
        let d = BlockDensity::of_cols(&m, 8);
        assert_eq!(d.histogram[2], d.blocks());
    }

    #[test]
    fn fig9d_speedup_steps() {
        // S2TA-AW speedup vs activation sparsity: 50% -> 2x, 75% -> 4x,
        // 87.5% -> 8x (relative to its own dense-activation point).
        let dense = run_point(ArchKind::S2taAw, 0.5, 0.0, 1).report.events.cycles as f64;
        for (sp, expect) in [(0.5, 2.0), (0.75, 4.0), (0.875, 8.0)] {
            let c = run_point(ArchKind::S2taAw, 0.5, sp, 1).report.events.cycles as f64;
            let got = dense / c;
            assert!(
                (got - expect).abs() / expect < 0.1,
                "act sparsity {sp}: expected {expect}x, got {got:.2}x"
            );
        }
    }

    #[test]
    fn fig9c_wdbb_speedup_caps_at_2x() {
        // S2TA-W: 2x once weights reach 50% DBB sparsity, flat beyond.
        let dense_w = run_point(ArchKind::S2taW, 0.0, 0.5, 2).report.events.cycles as f64;
        let at50 = run_point(ArchKind::S2taW, 0.5, 0.5, 2).report.events.cycles as f64;
        let at75 = run_point(ArchKind::S2taW, 0.75, 0.5, 2).report.events.cycles as f64;
        assert!((dense_w / at50 - 2.0).abs() < 0.1);
        assert!((at50 - at75).abs() / at50 < 0.01, "no further speedup beyond 50%");
    }

    #[test]
    fn zvcg_has_no_speedup() {
        let a = run_point(ArchKind::SaZvcg, 0.0, 0.5, 3).report.events.cycles;
        let b = run_point(ArchKind::SaZvcg, 0.875, 0.8, 3).report.events.cycles;
        assert_eq!(a, b);
    }
}
