//! The accelerator runner: layers and models through the simulated
//! datapaths, with the DBB toolchain applied where configured.

use crate::plan::{ActProfileCache, LayerPlan, PlannedWeights, WeightPlanCache, WeightResidency};
use crate::scratch::Scratch;
use crate::{ArchConfig, ArchKind, LayerReport, ModelReport};
use s2ta_dbb::dap::{dap_matrix, LayerNnz};
use s2ta_dbb::{prune, BlockAxis, DbbConfig, DbbMatrix};
use s2ta_models::{LayerSpec, ModelSpec};
use s2ta_sim::{smt, systolic, tpe, EventCounts};
use s2ta_tensor::Matrix;

/// Which host-side execution path planned runs
/// ([`Accelerator::run_stage`] and everything built on it) take.
///
/// Both paths produce **byte-identical** [`EventCounts`] (golden- and
/// property-tested per architecture); they differ only in host work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecPath {
    /// Materialize the dense activation operands per call and re-derive
    /// their sparsity structure (the original path, kept as the golden
    /// reference and for one-off runs where caching cannot pay off).
    Reference,
    /// Replay precompiled strip profiles — the weight profile baked
    /// into the [`LayerPlan`], the activation profile memoized in the
    /// shared [`ActProfileCache`] — so a repeated `(layer, act seed)`
    /// simulation is an `O(K)`-per-tile profile dot product with no
    /// matrix materialization (the serving hot loop).
    #[default]
    Profiled,
}

/// A configured accelerator instance.
///
/// Construction is cheap; per-run state lives in the inputs, so one
/// instance can be reused across layers, models and seeds. The instance
/// additionally carries a shared [`WeightPlanCache`] (so repeated model
/// runs compile each model's weights — W-DBB pruning + compression —
/// exactly once) and a shared [`ActProfileCache`] (so repeated
/// simulations of one `(layer, act seed)` reuse its strip profiles);
/// clones share both caches. Equality compares the configuration only.
#[derive(Debug, Clone)]
pub struct Accelerator {
    config: ArchConfig,
    plans: WeightPlanCache,
    act_profiles: ActProfileCache,
    exec_path: ExecPath,
}

/// Borrowed view of weights in either datapath format, so the unplanned
/// `run_gemm` path avoids cloning dense operands.
#[derive(Debug, Clone, Copy)]
enum WeightsRef<'a> {
    Dense(&'a Matrix),
    Dbb(&'a DbbMatrix),
}

impl PartialEq for Accelerator {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config
    }
}

impl Accelerator {
    /// Creates an accelerator from an explicit configuration.
    pub fn new(config: ArchConfig) -> Self {
        Self {
            config,
            plans: WeightPlanCache::new(),
            act_profiles: ActProfileCache::new(),
            exec_path: ExecPath::default(),
        }
    }

    /// Creates the paper's preset design point for `kind`.
    pub fn preset(kind: ArchKind) -> Self {
        Self::new(ArchConfig::preset(kind))
    }

    /// The configuration.
    pub fn config(&self) -> &ArchConfig {
        &self.config
    }

    /// The shared weight-plan cache.
    pub fn plans(&self) -> &WeightPlanCache {
        &self.plans
    }

    /// Replaces this accelerator's plan cache with `plans`, so a set of
    /// accelerators — possibly of **different** architectures, such as
    /// the lanes of a heterogeneous serving fleet — share one memo
    /// table. The cache is keyed by `(arch, model, seed)`, so sharing
    /// across kinds can never serve a mismatched plan.
    pub fn sharing_plans(mut self, plans: WeightPlanCache) -> Self {
        self.plans = plans;
        self
    }

    /// The shared activation-profile cache.
    pub fn act_profiles(&self) -> &ActProfileCache {
        &self.act_profiles
    }

    /// Replaces this accelerator's activation-profile cache, so a set
    /// of accelerators (e.g. a fleet's lanes) share one memo table.
    /// Entries are keyed by `(layer, act seed, strip width, bz, adbb)`,
    /// so sharing across architecture kinds can never serve a
    /// mismatched profile — kinds whose geometries agree simply reuse
    /// each other's work.
    pub fn sharing_act_profiles(mut self, act_profiles: ActProfileCache) -> Self {
        self.act_profiles = act_profiles;
        self
    }

    /// The host-side execution path planned runs take (default:
    /// [`ExecPath::Profiled`]).
    pub fn exec_path(&self) -> ExecPath {
        self.exec_path
    }

    /// Selects the host-side execution path for planned runs. Simulated
    /// results are byte-identical either way; [`ExecPath::Reference`]
    /// re-materializes operands per call and exists as the golden
    /// oracle (and baseline for host-throughput benchmarking).
    pub fn with_exec_path(mut self, path: ExecPath) -> Self {
        self.exec_path = path;
        self
    }

    /// Runs one GEMM with explicit operands and an explicit A-DBB
    /// decision. `first_layer` selects the dense weight fall-back (the
    /// paper leaves layer 1 unpruned, Table 3 note 2).
    ///
    /// Returns the event counts (fast path — no functional result).
    ///
    /// # Panics
    ///
    /// Panics if operand dimensions disagree with each other.
    pub fn run_gemm(
        &self,
        w: &Matrix,
        a: &Matrix,
        adbb: LayerNnz,
        first_layer: bool,
    ) -> EventCounts {
        if self.config.kind.uses_wdbb() {
            let wdbb = self.compress_weights(w, first_layer);
            self.run_gemm_planned(&PlannedWeights::Dbb(wdbb), a, adbb)
        } else {
            self.dispatch(WeightsRef::Dense(w), a, adbb)
        }
    }

    /// Runs one GEMM with weights already compiled to the datapath
    /// format (see [`crate::plan`]). This is the hot path the plan
    /// cache amortizes: no pruning or compression happens here.
    pub fn run_gemm_planned(&self, w: &PlannedWeights, a: &Matrix, adbb: LayerNnz) -> EventCounts {
        let w = match w {
            PlannedWeights::Dense(m) => WeightsRef::Dense(m),
            PlannedWeights::Dbb(d) => WeightsRef::Dbb(d),
        };
        self.dispatch(w, a, adbb)
    }

    /// Dispatches compiled operands to the architecture's datapath.
    ///
    /// # Panics
    ///
    /// Panics if the weight format does not match the architecture
    /// (dense weights on a TPE datapath or vice versa).
    fn dispatch(&self, w: WeightsRef<'_>, a: &Matrix, adbb: LayerNnz) -> EventCounts {
        let geom = &self.config.geometry;
        match (self.config.kind, w) {
            (ArchKind::Sa, WeightsRef::Dense(w)) => systolic::run_perf(geom, false, w, a),
            (ArchKind::SaZvcg, WeightsRef::Dense(w)) => systolic::run_perf(geom, true, w, a),
            (ArchKind::SaSmtT2Q2 | ArchKind::SaSmtT2Q4, WeightsRef::Dense(w)) => {
                smt::run_sampled(geom, self.config.smt, w, a, self.config.smt_sample_tiles).events
            }
            (ArchKind::S2taW, WeightsRef::Dbb(wdbb)) => tpe::run_wdbb_perf(geom, wdbb, a),
            (ArchKind::S2taAw, WeightsRef::Dbb(wdbb)) => {
                let (adbb_m, dap_events) = dap_matrix(a, geom.bz, adbb);
                let mut events = tpe::run_aw_perf(geom, wdbb, &adbb_m);
                events.dap_stages += dap_events.stages;
                events.dap_comparisons += dap_events.comparisons;
                events
            }
            (kind, _) => panic!("weight plan format does not match architecture {kind}"),
        }
    }

    /// Runs one layer from its compiled plan on activation inputs drawn
    /// from `act_seed`, **without materializing the activation matrix**
    /// for the profile-factorizable datapaths: the weight strip profile
    /// comes baked into the [`LayerPlan`], the activation strip profile
    /// from the shared [`ActProfileCache`], and the per-tile event
    /// counts from the `O(K)` profile dot product. Byte-identical to
    /// [`Accelerator::run_layer_planned`] (golden- and property-tested
    /// per architecture).
    ///
    /// The SMT architectures are the one exception: their FIFO
    /// backpressure timing depends on the joint non-zero *positions* of
    /// both operands, which no per-strip profile determines, so their
    /// sampled tiles still regenerate the activation matrix — the
    /// event counting is profile-driven regardless.
    ///
    /// # Panics
    ///
    /// Panics if `plan` was not compiled for this architecture.
    pub fn run_layer_profiled(
        &self,
        plan: &LayerPlan,
        layer: &LayerSpec,
        act_seed: u64,
        residency: WeightResidency,
    ) -> LayerReport {
        let geom = &self.config.geometry;
        let prof = self.act_profiles.get_or_profile(
            layer,
            act_seed,
            geom.tile_cols(),
            geom.bz,
            plan.adbb(),
        );
        let (k, n) = prof.shape();
        let wp = plan.weight_profile();
        let mut events = match (self.config.kind, plan.weights()) {
            (ArchKind::Sa, PlannedWeights::Dense(w)) => {
                systolic::run_perf_profiled(geom, false, w.rows(), k, n, wp, prof.dense())
            }
            (ArchKind::SaZvcg, PlannedWeights::Dense(w)) => {
                systolic::run_perf_profiled(geom, true, w.rows(), k, n, wp, prof.dense())
            }
            (ArchKind::SaSmtT2Q2 | ArchKind::SaSmtT2Q4, PlannedWeights::Dense(w)) => {
                let a = layer.gen_acts(act_seed);
                smt::run_sampled_profiled(
                    geom,
                    self.config.smt,
                    w,
                    &a,
                    self.config.smt_sample_tiles,
                    wp,
                    prof.dense_from(&a),
                )
            }
            (ArchKind::S2taW, PlannedWeights::Dbb(wdbb)) => {
                tpe::run_wdbb_perf_profiled(geom, wdbb, n, wp, prof.dense())
            }
            (ArchKind::S2taAw, PlannedWeights::Dbb(wdbb)) => {
                let postdap = prof.postdap_side();
                let mut events =
                    tpe::run_aw_perf_profiled(geom, wdbb, n, postdap.config, wp, &postdap.profile);
                events.dap_stages += postdap.events.stages;
                events.dap_comparisons += postdap.events.comparisons;
                events
            }
            (kind, _) => panic!("weight plan format does not match architecture {kind}"),
        };
        if layer.is_memory_bound() {
            let clamp = self.dma_clamp_cycles(plan, (k * n) as u64, residency);
            events.cycles = events.cycles.max(clamp);
        }
        LayerReport { name: layer.name.clone(), macs: layer.macs(), events }
    }

    /// Prunes+compresses weights to the configured W-DBB bound, or
    /// compresses densely for the unpruned first layer.
    pub(crate) fn compress_weights(&self, w: &Matrix, first_layer: bool) -> DbbMatrix {
        if first_layer {
            DbbMatrix::compress(w, BlockAxis::Rows, DbbConfig::dense(self.config.geometry.bz))
                .expect("dense bound always satisfiable")
        } else {
            prune::prune_and_compress(w, self.config.wdbb)
        }
    }

    /// Runs one layer: generates the profiled synthetic operands and
    /// dispatches to the datapath. `layer_index` 0 selects the
    /// unpruned-weights fall-back.
    ///
    /// FC and depthwise layers are **memory bound** at batch 1 (paper
    /// Sec. 8.3): their weights stream from DRAM without reuse, so the
    /// layer latency is clamped to the DMA transfer time of the
    /// (possibly compressed) operands. DBB architectures still gain on
    /// these layers — from bandwidth compression, not compute.
    pub fn run_layer(&self, layer: &LayerSpec, layer_index: usize, seed: u64) -> LayerReport {
        let plan = self.plan_layer(layer, layer_index, seed);
        self.run_layer_planned(&plan, layer, seed, WeightResidency::Streamed)
    }

    /// Runs a whole model (all layers, including memory-bound FC and
    /// depthwise layers, as in the paper's full-model results).
    ///
    /// Weights are compiled through the shared [`WeightPlanCache`], so
    /// repeated invocations for the same `(model, seed)` skip the
    /// W-DBB pruning/compression work entirely.
    pub fn run_model(&self, model: &ModelSpec, seed: u64) -> ModelReport {
        let plan = self.plan_model(model, seed);
        self.run_model_planned(&plan, model, seed)
    }

    /// Runs a whole model from a compiled plan on activation inputs
    /// drawn from `act_seed` (which may differ from the plan's weight
    /// seed: one set of weights, many inputs).
    ///
    /// # Panics
    ///
    /// Panics if `plan` was not compiled from this `model`.
    pub fn run_model_planned(
        &self,
        plan: &crate::plan::ModelPlan,
        model: &ModelSpec,
        act_seed: u64,
    ) -> ModelReport {
        let layers =
            self.run_stage(plan, model, 0..model.layers.len(), act_seed, WeightResidency::Streamed);
        ModelReport::from_layers(model.name, self.config.kind.to_string(), layers)
    }

    /// Runs a **contiguous layer range** of a compiled plan — one
    /// pipeline stage — on activation inputs drawn from `act_seed`,
    /// returning the per-layer reports in execution order.
    ///
    /// The stage hands its intermediate activations forward implicitly:
    /// activations are a pure function of `(layer, act_seed)`, so the
    /// next stage resumes from the same seed at `layers.end` and the
    /// cross-stage boundary carries no extra state (the *bytes* a real
    /// handoff would move are priced by
    /// [`crate::plan::stage_handoff_bytes`]). Concatenating the reports
    /// of any partition of `0..model.layers.len()` is **byte-identical**
    /// to [`Accelerator::run_model_planned`], which is itself the
    /// single-stage special case.
    ///
    /// `residency` is the weight residency of every layer in the stage:
    /// [`WeightResidency::Streamed`] for a cold stage,
    /// [`WeightResidency::Resident`] when the executing lane just ran
    /// the same stage of the same plan and the stage's weights are
    /// still in its weight SRAM (the pinned-stage reuse a layer
    /// pipeline exists to harvest).
    ///
    /// # Panics
    ///
    /// Panics if `plan` was not compiled from this `model`, or the
    /// range exceeds the model's layer list.
    pub fn run_stage(
        &self,
        plan: &crate::plan::ModelPlan,
        model: &ModelSpec,
        layers: std::ops::Range<usize>,
        act_seed: u64,
        residency: WeightResidency,
    ) -> Vec<LayerReport> {
        assert!(
            plan.matches(model),
            "plan was compiled for '{}', not for '{}' (or the model structure changed)",
            plan.model(),
            model.name
        );
        assert!(
            layers.end <= model.layers.len(),
            "stage {layers:?} exceeds the model's {} layers",
            model.layers.len()
        );
        model.layers[layers.clone()]
            .iter()
            .zip(&plan.layers[layers])
            .map(|(l, lp)| match self.exec_path {
                ExecPath::Reference => self.run_layer_planned(lp, l, act_seed, residency),
                ExecPath::Profiled => self.run_layer_profiled(lp, l, act_seed, residency),
            })
            .collect()
    }

    /// Runs a contiguous layer range of a compiled plan and returns the
    /// stage's **summed** [`EventCounts`] — the allocation-free serving
    /// hot loop.
    ///
    /// Semantically `run_stage(..).iter().map(|l| l.events).sum()`
    /// (byte-identical on the profiled path, which this always takes),
    /// but without building the per-layer report vector or cloning
    /// layer names, and with every transient buffer (the SMT path's
    /// regenerated activation matrix, cold profile compiles, the DAP
    /// staging block) drawn from `scratch`. After the caches and the
    /// arena are warm, a call allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics if `plan` was not compiled from this `model`, the range
    /// exceeds the model's layer list, or the plan's weight format does
    /// not match the architecture.
    pub fn run_stage_events(
        &self,
        plan: &crate::plan::ModelPlan,
        model: &ModelSpec,
        layers: std::ops::Range<usize>,
        act_seed: u64,
        residency: WeightResidency,
        scratch: &mut Scratch,
    ) -> EventCounts {
        assert!(
            plan.matches(model),
            "plan was compiled for '{}', not for '{}' (or the model structure changed)",
            plan.model(),
            model.name
        );
        assert!(
            layers.end <= model.layers.len(),
            "stage {layers:?} exceeds the model's {} layers",
            model.layers.len()
        );
        let mut total = EventCounts::default();
        for (l, lp) in model.layers[layers.clone()].iter().zip(&plan.layers[layers]) {
            total += self.layer_events_profiled(lp, l, act_seed, residency, scratch);
        }
        total
    }

    /// One layer of [`Accelerator::run_stage_events`]: the profiled
    /// event derivation of [`Accelerator::run_layer_profiled`], routed
    /// through the `_into` datapath entry points and the caller's
    /// [`Scratch`] arena instead of per-call allocations.
    fn layer_events_profiled(
        &self,
        plan: &LayerPlan,
        layer: &LayerSpec,
        act_seed: u64,
        residency: WeightResidency,
        scratch: &mut Scratch,
    ) -> EventCounts {
        let geom = &self.config.geometry;
        let prof = self.act_profiles.get_or_profile(
            layer,
            act_seed,
            geom.tile_cols(),
            geom.bz,
            plan.adbb(),
        );
        let (k, n) = prof.shape();
        let wp = plan.weight_profile();
        let mut events = EventCounts::default();
        match (self.config.kind, plan.weights()) {
            (ArchKind::Sa, PlannedWeights::Dense(w)) => systolic::run_perf_profiled_into(
                geom,
                false,
                w.rows(),
                k,
                n,
                wp,
                prof.dense_with(scratch),
                &mut events,
            ),
            (ArchKind::SaZvcg, PlannedWeights::Dense(w)) => systolic::run_perf_profiled_into(
                geom,
                true,
                w.rows(),
                k,
                n,
                wp,
                prof.dense_with(scratch),
                &mut events,
            ),
            (ArchKind::SaSmtT2Q2 | ArchKind::SaSmtT2Q4, PlannedWeights::Dense(w)) => {
                let a = layer.gen_acts_into(act_seed, std::mem::take(&mut scratch.acts));
                smt::run_sampled_profiled_into(
                    geom,
                    self.config.smt,
                    w,
                    &a,
                    self.config.smt_sample_tiles,
                    wp,
                    prof.dense_from(&a),
                    &mut events,
                    &mut scratch.smt,
                );
                scratch.acts = a.into_data();
            }
            (ArchKind::S2taW, PlannedWeights::Dbb(wdbb)) => tpe::run_wdbb_perf_profiled_into(
                geom,
                wdbb,
                n,
                wp,
                prof.dense_with(scratch),
                &mut events,
            ),
            (ArchKind::S2taAw, PlannedWeights::Dbb(wdbb)) => {
                let postdap = prof.postdap_side_with(scratch);
                tpe::run_aw_perf_profiled_into(
                    geom,
                    wdbb,
                    n,
                    postdap.config,
                    wp,
                    &postdap.profile,
                    &mut events,
                );
                events.dap_stages += postdap.events.stages;
                events.dap_comparisons += postdap.events.comparisons;
            }
            (kind, _) => panic!("weight plan format does not match architecture {kind}"),
        }
        if layer.is_memory_bound() {
            let clamp = self.dma_clamp_cycles(plan, (k * n) as u64, residency);
            events.cycles = events.cycles.max(clamp);
        }
        events
    }

    /// Runs only the convolution layers (the paper's "Conv only" rows).
    ///
    /// Plans per layer without touching the model cache: a cached
    /// full-model plan would compile the (often enormous) FC weights
    /// this path deliberately skips.
    pub fn run_model_conv_only(&self, model: &ModelSpec, seed: u64) -> ModelReport {
        let layers = model
            .layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.kind == s2ta_tensor::LayerKind::Conv)
            .map(|(i, l)| {
                let plan = self.plan_layer(l, i, seed);
                self.run_layer_planned(&plan, l, seed, WeightResidency::Streamed)
            })
            .collect();
        ModelReport::from_layers(
            format!("{} (conv)", model.name),
            self.config.kind.to_string(),
            layers,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use s2ta_models::lenet5;
    use s2ta_tensor::sparsity::SparseSpec;

    fn typical_operands(seed: u64, wsp: f64, asp: f64) -> (Matrix, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        (
            SparseSpec::random(wsp).matrix(64, 144, &mut rng),
            SparseSpec::random(asp).matrix(144, 100, &mut rng),
        )
    }

    #[test]
    fn all_archs_run_a_gemm() {
        let (w, a) = typical_operands(1, 0.5, 0.5);
        for kind in ArchKind::ALL {
            let acc = Accelerator::preset(kind);
            let ev = acc.run_gemm(&w, &a, LayerNnz::Prune(4), false);
            assert!(ev.cycles > 0, "{kind} produced no cycles");
            assert!(ev.macs_active > 0, "{kind} produced no active MACs");
        }
    }

    #[test]
    fn s2ta_aw_is_fastest_on_sparse_work() {
        let (w, a) = typical_operands(2, 0.5, 0.625);
        let zvcg = Accelerator::preset(ArchKind::SaZvcg).run_gemm(&w, &a, LayerNnz::Dense, false);
        let aw = Accelerator::preset(ArchKind::S2taAw).run_gemm(&w, &a, LayerNnz::Prune(3), false);
        let speedup = zvcg.cycles as f64 / aw.cycles as f64;
        // 3/8 activations: ~8/3 = 2.67x (paper Fig. 9d), minus skew.
        assert!(speedup > 2.0, "expected >2x, got {speedup:.2}");
    }

    #[test]
    fn zvcg_matches_sa_cycles() {
        let (w, a) = typical_operands(3, 0.5, 0.5);
        let sa = Accelerator::preset(ArchKind::Sa).run_gemm(&w, &a, LayerNnz::Dense, false);
        let zv = Accelerator::preset(ArchKind::SaZvcg).run_gemm(&w, &a, LayerNnz::Dense, false);
        assert_eq!(sa.cycles, zv.cycles);
    }

    #[test]
    fn model_run_aggregates_layers() {
        let acc = Accelerator::preset(ArchKind::SaZvcg);
        let m = lenet5();
        let r = acc.run_model(&m, 11);
        assert_eq!(r.layers.len(), m.layers.len());
        assert_eq!(r.total_cycles, r.layers.iter().map(|l| l.events.cycles).sum::<u64>());
        let conv = acc.run_model_conv_only(&m, 11);
        assert_eq!(conv.layers.len(), 2);
    }

    #[test]
    fn deterministic_across_runs() {
        let acc = Accelerator::preset(ArchKind::S2taAw);
        let m = lenet5();
        assert_eq!(acc.run_model(&m, 5), acc.run_model(&m, 5));
    }

    /// The allocation-free summed-events hot loop is byte-identical to
    /// summing the per-layer report path, on every architecture, for
    /// both residencies, cold and warm arenas alike.
    #[test]
    fn stage_events_match_summed_reports_on_all_archs() {
        let m = lenet5();
        let pool = crate::scratch::ScratchPool::new();
        for kind in ArchKind::ALL {
            let acc = Accelerator::preset(kind);
            let plan = acc.plan_model(&m, 23);
            let n = m.layers.len();
            for residency in [WeightResidency::Streamed, WeightResidency::Resident] {
                for range in [0..n, 1..n.min(3), 0..1] {
                    let reports = acc.run_stage(&plan, &m, range.clone(), 7, residency);
                    let expected =
                        reports.iter().fold(EventCounts::default(), |acc, l| acc + l.events);
                    let mut scratch = pool.checkout();
                    let got =
                        acc.run_stage_events(&plan, &m, range.clone(), 7, residency, &mut scratch);
                    pool.restore(scratch);
                    assert_eq!(got, expected, "{kind} {residency:?} {range:?}");
                }
            }
        }
    }

    #[test]
    fn first_layer_uses_dense_weights() {
        // On layer 0, S2TA-W falls back to dense weight blocks: cycles
        // per block double vs a pruned layer of the same shape.
        let (w, a) = typical_operands(4, 0.1, 0.1);
        let acc = Accelerator::preset(ArchKind::S2taW);
        let first = acc.run_gemm(&w, &a, LayerNnz::Dense, true);
        let pruned = acc.run_gemm(&w, &a, LayerNnz::Dense, false);
        assert!(first.cycles > pruned.cycles);
    }
}
