//! Training substrate for the DBB accuracy experiments (paper Sec. 8.1,
//! Table 3).
//!
//! The paper fine-tunes ImageNet CNNs with (a) progressive in-block
//! magnitude pruning for W-DBB and (b) DAP inserted before convolutions
//! with a straight-through gradient for A-DBB, then reports the
//! accuracy cost of each sparsity mode. ImageNet training is out of
//! scope offline, so we reproduce the *experiment* — same pruning
//! schedules, same fine-tuning recipe, same report rows — on a
//! procedurally generated classification task (see DESIGN.md Sec. 5 for
//! why the trend transfers): DBB pruning without fine-tuning hurts,
//! fine-tuning recovers to within ~1%, tighter bounds cost more.
//!
//! * [`data`] — the synthetic pattern-classification dataset.
//! * [`mlp`] — a two-layer ReLU MLP with in-block weight masks and an
//!   optional DAP layer on the hidden activations.
//! * [`train`] — SGD training, progressive DBB pruning schedules,
//!   DAP-aware fine-tuning, INT8 post-training-quantization evaluation.
//! * [`table3`] — the harness that produces the Table-3-shaped rows.
//!
//! # Example
//!
//! ```no_run
//! use s2ta_nn::table3::{run_table3, Table3Config};
//!
//! let rows = run_table3(&Table3Config::fast());
//! for r in &rows {
//!     println!("{r}");
//! }
//! ```
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod data;
pub mod mlp;
pub mod table3;
pub mod train;

mod mat;

pub use mat::Mat;
