//! SGD training, progressive DBB pruning, DAP fine-tuning and INT8
//! evaluation.

use crate::data::Dataset;
use crate::mlp::{softmax_xent, Mlp};
use crate::Mat;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use s2ta_tensor::quant::QuantParams;

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Epochs to run.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 30, lr: 0.02, momentum: 0.9, seed: 17 }
    }
}

/// Trains `model` on `data` with per-sample SGD + momentum, respecting
/// the model's current W-DBB masks (projected SGD: masked weights stay
/// zero) and its DAP layer (straight-through gradient).
pub fn train(model: &mut Mlp, data: &Dataset, cfg: &TrainConfig) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut v_w1 = vec![0.0f32; model.w1.data().len()];
    let mut v_w2 = vec![0.0f32; model.w2.data().len()];
    let mut v_b1 = vec![0.0f32; model.b1.len()];
    let mut v_b2 = vec![0.0f32; model.b2.len()];

    for _ in 0..cfg.epochs {
        order.shuffle(&mut rng);
        for &i in &order {
            let (x, label) = data.sample(i);
            let fwd = model.forward(x);
            let (_, dlogits) = softmax_xent(&fwd.logits, label);

            // Backprop through w2.
            let dhidden_raw = model.w2.matvec_t(&dlogits);
            // Straight-through ReLU+DAP mask.
            let dhidden: Vec<f32> =
                dhidden_raw.iter().zip(&fwd.hidden_mask).map(|(d, m)| d * m).collect();

            // Updates (SGD + momentum), masked.
            step_outer(&mut model.w2, &mut v_w2, &model.mask2, &dlogits, &fwd.hidden, cfg);
            step_bias(&mut model.b2, &mut v_b2, &dlogits, cfg);
            step_outer(&mut model.w1, &mut v_w1, &model.mask1, &dhidden, x, cfg);
            step_bias(&mut model.b1, &mut v_b1, &dhidden, cfg);
        }
    }
    model.apply_masks();
}

fn step_outer(
    w: &mut Mat,
    vel: &mut [f32],
    mask: &[bool],
    dout: &[f32],
    input: &[f32],
    cfg: &TrainConfig,
) {
    let cols = w.cols();
    for (r, &d) in dout.iter().enumerate() {
        if d == 0.0 {
            continue;
        }
        let row = w.row_mut(r);
        let vrow = &mut vel[r * cols..(r + 1) * cols];
        let mrow = &mask[r * cols..(r + 1) * cols];
        for c in 0..cols {
            if !mrow[c] {
                continue;
            }
            let g = d * input[c];
            vrow[c] = cfg.momentum * vrow[c] - cfg.lr * g;
            row[c] += vrow[c];
        }
    }
}

fn step_bias(b: &mut [f32], vel: &mut [f32], dout: &[f32], cfg: &TrainConfig) {
    for ((bi, vi), &d) in b.iter_mut().zip(vel.iter_mut()).zip(dout) {
        *vi = cfg.momentum * *vi - cfg.lr * d;
        *bi += *vi;
    }
}

/// Classification accuracy on a dataset (f32 inference).
pub fn accuracy(model: &Mlp, data: &Dataset) -> f64 {
    let correct = (0..data.len())
        .filter(|&i| {
            let (x, y) = data.sample(i);
            model.predict(x) == y
        })
        .count();
    correct as f64 / data.len() as f64
}

/// Classification accuracy with INT8 post-training quantization of
/// weights and activations (symmetric per-tensor, the paper's INT8
/// deployment scheme).
pub fn accuracy_int8(model: &Mlp, data: &Dataset) -> f64 {
    let q = |m: &Mat| -> Mat {
        let p = QuantParams::fit(m.data());
        Mat::from_vec(
            m.rows(),
            m.cols(),
            m.data().iter().map(|&v| p.dequantize(p.quantize(v))).collect(),
        )
    };
    let mut qm = model.clone();
    qm.w1 = q(&model.w1);
    qm.w2 = q(&model.w2);
    // Quantize inputs per-dataset.
    let px = QuantParams::fit(&data.x);
    let correct = (0..data.len())
        .filter(|&i| {
            let (x, y) = data.sample(i);
            let xq: Vec<f32> = x.iter().map(|&v| px.dequantize(px.quantize(v))).collect();
            qm.predict(&xq) == y
        })
        .count();
    correct as f64 / data.len() as f64
}

/// The paper's progressive W-DBB pruning schedule (Sec. 8.1:
/// "progressively pruning small-magnitude weights within each DBB block
/// until the desired DBB sparsity constraint is met"): tightens the
/// per-block bound one step per stage, fine-tuning in between.
pub fn progressive_wdbb(
    model: &mut Mlp,
    data: &Dataset,
    target_nnz: usize,
    epochs_per_stage: usize,
    cfg: &TrainConfig,
) {
    let mut stage_cfg = TrainConfig { epochs: epochs_per_stage, ..*cfg };
    let mut nnz = crate::mlp::BZ;
    while nnz > target_nnz {
        nnz -= 1;
        model.set_wdbb_masks(nnz);
        stage_cfg.seed = cfg.seed.wrapping_add(nnz as u64);
        train(model, data, &stage_cfg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::generate;

    fn quick_setup() -> (Mlp, Dataset, Dataset) {
        let (train_set, test_set) = generate(32, 4, 30, 20, 0.25, 5);
        (Mlp::new(32, 32, 4, 7), train_set, test_set)
    }

    #[test]
    fn training_reaches_high_accuracy() {
        let (mut model, train_set, test_set) = quick_setup();
        let before = accuracy(&model, &test_set);
        train(&mut model, &train_set, &TrainConfig { epochs: 15, ..Default::default() });
        let after = accuracy(&model, &test_set);
        assert!(after > 0.85, "accuracy {after:.2} too low");
        assert!(after > before, "training must improve on random init");
    }

    #[test]
    fn int8_quantization_costs_little() {
        let (mut model, train_set, test_set) = quick_setup();
        train(&mut model, &train_set, &TrainConfig { epochs: 15, ..Default::default() });
        let f32_acc = accuracy(&model, &test_set);
        let i8_acc = accuracy_int8(&model, &test_set);
        assert!(f32_acc - i8_acc < 0.05, "INT8 dropped {f32_acc:.2} -> {i8_acc:.2}");
    }

    #[test]
    fn masked_weights_stay_zero_through_training() {
        let (mut model, train_set, _) = quick_setup();
        model.set_wdbb_masks(3);
        train(&mut model, &train_set, &TrainConfig { epochs: 3, ..Default::default() });
        for (w, &m) in model.w1.data().iter().zip(&model.mask1) {
            if !m {
                assert_eq!(*w, 0.0);
            }
        }
    }

    #[test]
    fn progressive_pruning_recovers_accuracy() {
        let (mut model, train_set, test_set) = quick_setup();
        train(&mut model, &train_set, &TrainConfig { epochs: 15, ..Default::default() });
        let base = accuracy(&model, &test_set);

        // One-shot pruning without fine-tuning (for comparison).
        let mut oneshot = model.clone();
        oneshot.set_wdbb_masks(2);
        let oneshot_acc = accuracy(&oneshot, &test_set);

        progressive_wdbb(&mut model, &train_set, 2, 4, &TrainConfig::default());
        let finetuned = accuracy(&model, &test_set);
        assert!(
            finetuned >= oneshot_acc,
            "fine-tuned {finetuned:.2} must not trail one-shot {oneshot_acc:.2}"
        );
        assert!(base - finetuned < 0.12, "fine-tuning should keep loss small");
    }
}
