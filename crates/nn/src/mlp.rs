//! A two-layer ReLU MLP with DBB weight masks and an optional DAP layer
//! on the hidden activations.
//!
//! The network is intentionally the smallest thing that exercises both
//! pruning modes the way the paper does:
//!
//! * **W-DBB** — binary masks over both weight matrices, blocked along
//!   the input (channel) dimension in groups of `BZ = 8`; masked
//!   weights stay zero through training (projected SGD).
//! * **A-DBB / DAP** — a Top-NNZ-per-block pruning layer on the hidden
//!   activations, with the paper's straight-through gradient: the
//!   backward pass multiplies by the forward-pass binary mask
//!   (Sec. 8.1, "the gradient of DAP ... is a binary mask tensor").

use crate::Mat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// DBB block size used by the trainer (matches the hardware).
pub const BZ: usize = 8;

/// The MLP: `dim -> hidden (ReLU, optional DAP) -> classes`.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    /// First layer weights (`hidden x dim`).
    pub w1: Mat,
    /// First layer bias.
    pub b1: Vec<f32>,
    /// Second layer weights (`classes x hidden`).
    pub w2: Mat,
    /// Second layer bias.
    pub b2: Vec<f32>,
    /// W-DBB mask for `w1` (`true` = weight may be non-zero).
    pub mask1: Vec<bool>,
    /// W-DBB mask for `w2`.
    pub mask2: Vec<bool>,
    /// DAP bound on the hidden activations (`None` = no DAP).
    pub dap_nnz: Option<usize>,
}

/// Intermediate state of one forward pass, kept for backprop.
#[derive(Debug, Clone)]
pub struct Forward {
    /// Hidden activations after ReLU and (optionally) DAP.
    pub hidden: Vec<f32>,
    /// Straight-through mask: 1.0 where the hidden unit survived ReLU
    /// and DAP, 0.0 otherwise.
    pub hidden_mask: Vec<f32>,
    /// Output logits.
    pub logits: Vec<f32>,
}

impl Mlp {
    /// Random (He-ish) initialization.
    pub fn new(dim: usize, hidden: usize, classes: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let init = |rows: usize, cols: usize, rng: &mut StdRng| {
            let scale = (2.0 / cols as f32).sqrt();
            Mat::from_vec(
                rows,
                cols,
                (0..rows * cols).map(|_| (rng.gen::<f32>() - 0.5) * 2.0 * scale).collect(),
            )
        };
        let w1 = init(hidden, dim, &mut rng);
        let w2 = init(classes, hidden, &mut rng);
        Self {
            mask1: vec![true; w1.data().len()],
            mask2: vec![true; w2.data().len()],
            w1,
            b1: vec![0.0; hidden],
            w2,
            b2: vec![0.0; classes],
            dap_nnz: None,
        }
    }

    /// Forward pass for one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the input dimension.
    pub fn forward(&self, x: &[f32]) -> Forward {
        let mut hidden = self.w1.matvec(x);
        for (h, b) in hidden.iter_mut().zip(&self.b1) {
            *h = (*h + b).max(0.0);
        }
        let mut hidden_mask: Vec<f32> =
            hidden.iter().map(|&h| if h > 0.0 { 1.0 } else { 0.0 }).collect();
        if let Some(nnz) = self.dap_nnz {
            dap_f32(&mut hidden, &mut hidden_mask, nnz);
        }
        let mut logits = self.w2.matvec(&hidden);
        for (l, b) in logits.iter_mut().zip(&self.b2) {
            *l += b;
        }
        Forward { hidden, hidden_mask, logits }
    }

    /// Predicted class for one sample.
    pub fn predict(&self, x: &[f32]) -> usize {
        let f = self.forward(x);
        argmax(&f.logits)
    }

    /// Applies the current W-DBB masks (zeroes masked weights).
    pub fn apply_masks(&mut self) {
        for (w, &m) in self.w1.data_mut().iter_mut().zip(&self.mask1) {
            if !m {
                *w = 0.0;
            }
        }
        for (w, &m) in self.w2.data_mut().iter_mut().zip(&self.mask2) {
            if !m {
                *w = 0.0;
            }
        }
    }

    /// Recomputes both masks so every `BZ`-block (along the input
    /// dimension of each row) keeps only its `nnz` largest-magnitude
    /// weights — one step of the progressive pruning schedule.
    pub fn set_wdbb_masks(&mut self, nnz: usize) {
        set_mask(&self.w1, &mut self.mask1, nnz);
        set_mask(&self.w2, &mut self.mask2, nnz);
        self.apply_masks();
    }

    /// Fraction of weights currently allowed to be non-zero.
    pub fn mask_density(&self) -> f64 {
        let kept = self.mask1.iter().chain(&self.mask2).filter(|&&m| m).count();
        kept as f64 / (self.mask1.len() + self.mask2.len()) as f64
    }
}

fn set_mask(w: &Mat, mask: &mut [bool], nnz: usize) {
    for r in 0..w.rows() {
        let row = w.row(r);
        for (bi, chunk) in row.chunks(BZ).enumerate() {
            let mags: Vec<f64> = chunk.iter().map(|&v| v.abs() as f64).collect();
            let keep = s2ta_dbb::prune::top_magnitude_indices(&mags, nnz);
            let base = r * w.cols() + bi * BZ;
            for i in 0..chunk.len() {
                mask[base + i] = keep.contains(&i);
            }
        }
    }
}

/// DAP on an `f32` activation vector: Top-`nnz` magnitude per `BZ`
/// block; zeroed positions also clear the straight-through mask.
pub fn dap_f32(act: &mut [f32], mask: &mut [f32], nnz: usize) {
    for bi in 0..act.len().div_ceil(BZ) {
        let range = bi * BZ..((bi + 1) * BZ).min(act.len());
        let mags: Vec<f64> = act[range.clone()].iter().map(|&v| v.abs() as f64).collect();
        let keep = s2ta_dbb::prune::top_magnitude_indices(&mags, nnz);
        for (off, i) in range.enumerate() {
            if !keep.contains(&off) {
                act[i] = 0.0;
                mask[i] = 0.0;
            }
        }
    }
}

/// Index of the maximum element (first on ties).
pub fn argmax(v: &[f32]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite logits"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Numerically stable softmax cross-entropy; returns
/// `(loss, dloss/dlogits)`.
pub fn softmax_xent(logits: &[f32], label: usize) -> (f32, Vec<f32>) {
    let max = logits.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
    let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    let mut grad: Vec<f32> = exps.iter().map(|&e| e / sum).collect();
    let loss = -(grad[label].max(1e-12)).ln();
    grad[label] -= 1.0;
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let m = Mlp::new(16, 8, 4, 1);
        let f = m.forward(&[0.5; 16]);
        assert_eq!(f.hidden.len(), 8);
        assert_eq!(f.logits.len(), 4);
        assert!(m.predict(&[0.5; 16]) < 4);
    }

    #[test]
    fn masks_enforce_block_bound() {
        let mut m = Mlp::new(16, 8, 4, 2);
        m.set_wdbb_masks(4);
        for r in 0..m.w1.rows() {
            for chunk in m.w1.row(r).chunks(BZ) {
                assert!(chunk.iter().filter(|&&w| w != 0.0).count() <= 4);
            }
        }
        assert!((m.mask_density() - 0.5).abs() < 0.05);
    }

    #[test]
    fn dap_zeroes_and_masks() {
        let mut act = vec![0.1, 3.0, 0.2, 2.0, 0.0, 1.0, 0.5, 0.4];
        let mut mask = vec![1.0f32; 8];
        dap_f32(&mut act, &mut mask, 2);
        assert_eq!(act.iter().filter(|&&v| v != 0.0).count(), 2);
        assert_eq!(act[1], 3.0);
        assert_eq!(act[3], 2.0);
        assert_eq!(mask.iter().filter(|&&v| v == 0.0).count(), 6);
    }

    #[test]
    fn softmax_xent_gradient_sums_to_zero() {
        let (loss, grad) = softmax_xent(&[1.0, 2.0, 0.5], 1);
        assert!(loss > 0.0);
        assert!(grad.iter().sum::<f32>().abs() < 1e-6);
        assert!(grad[1] < 0.0, "true-class gradient must be negative");
    }

    #[test]
    fn dap_layer_changes_forward() {
        let mut m = Mlp::new(16, 16, 4, 3);
        let x = vec![1.0; 16];
        let dense = m.forward(&x);
        m.dap_nnz = Some(2);
        let pruned = m.forward(&x);
        assert!(pruned.hidden.iter().filter(|&&h| h != 0.0).count() <= 4); // 2 blocks * 2
        assert_ne!(dense.logits, pruned.logits);
    }
}
