//! The Table 3 harness: accuracy of baseline / A-DBB / W-DBB / joint
//! DBB variants on the synthetic task (substituting for ImageNet — see
//! crate docs).

use crate::data::{generate, Dataset};
use crate::mlp::Mlp;
use crate::train::{accuracy_int8, progressive_wdbb, train, TrainConfig};
use std::fmt;

/// Configuration of one Table 3 reproduction run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Config {
    /// Feature dimensionality (a multiple of 8 keeps blocks aligned).
    pub dim: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Class count.
    pub classes: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Feature noise level.
    pub noise: f32,
    /// Base-training epochs.
    pub base_epochs: usize,
    /// Fine-tuning epochs per pruning stage.
    pub finetune_epochs: usize,
    /// Master seed.
    pub seed: u64,
}

impl Table3Config {
    /// A configuration sized for CI: runs in a few seconds.
    pub fn fast() -> Self {
        Self {
            dim: 48,
            hidden: 48,
            classes: 6,
            train_per_class: 40,
            test_per_class: 30,
            noise: 0.3,
            base_epochs: 20,
            finetune_epochs: 6,
            seed: 11,
        }
    }

    /// The full configuration used by the Table 3 bench: sized so the
    /// task is hard enough that pruning visibly hurts before
    /// fine-tuning (baseline lands in the low 90s).
    pub fn full() -> Self {
        Self {
            dim: 64,
            hidden: 24,
            classes: 12,
            train_per_class: 20,
            test_per_class: 30,
            noise: 0.65,
            base_epochs: 30,
            finetune_epochs: 8,
            seed: 11,
        }
    }
}

/// One row of the reproduced Table 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Variant label (mirrors the paper's row naming).
    pub label: String,
    /// A-DBB bound (`None` = dense activations).
    pub adbb: Option<usize>,
    /// W-DBB bound (`None` = dense weights).
    pub wdbb: Option<usize>,
    /// INT8 test accuracy of the fine-tuned variant, percent.
    pub accuracy_pct: f64,
    /// INT8 test accuracy *before* fine-tuning (the drop DAP causes),
    /// percent. Equal to `accuracy_pct` for the baseline row.
    pub pre_finetune_pct: f64,
}

impl fmt::Display for Table3Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_bound = |b: Option<usize>| match b {
            Some(n) => format!("{n}/8"),
            None => "-".to_string(),
        };
        write!(
            f,
            "{:<22} A-DBB {:<4} W-DBB {:<4} acc {:5.1}% (pre-finetune {:5.1}%)",
            self.label,
            fmt_bound(self.adbb),
            fmt_bound(self.wdbb),
            self.accuracy_pct,
            self.pre_finetune_pct
        )
    }
}

fn trained_baseline(cfg: &Table3Config, data: &Dataset) -> Mlp {
    let mut model = Mlp::new(cfg.dim, cfg.hidden, cfg.classes, cfg.seed);
    train(
        &mut model,
        data,
        &TrainConfig { epochs: cfg.base_epochs, seed: cfg.seed, ..Default::default() },
    );
    model
}

/// One pruning variant of the Table 3 study (everything but the shared
/// baseline row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Variant {
    /// A-DBB only at `nnz`/8: enable DAP, measure the drop, fine-tune
    /// with DAP in the loop (paper: MobileNet 71% -> 56.1% -> 70.2%).
    /// The 2/8 row shows the drop more clearly (ReLU activations are
    /// already fairly sparse, so 4/8 DAP prunes little).
    Adbb(usize),
    /// W-DBB only at `nnz`/8 (progressive pruning + fine-tuning).
    Wdbb(usize),
    /// Joint A/W-DBB 4/8 + 4/8.
    Joint,
}

/// Runs one variant from the shared trained baseline. Each variant
/// clones the baseline and fine-tunes independently with its own
/// deterministic seed, so the rows are embarrassingly parallel.
fn run_variant(
    v: Variant,
    base: &Mlp,
    train_set: &Dataset,
    test_set: &Dataset,
    finetune_stages: usize,
    ft: &TrainConfig,
) -> Table3Row {
    match v {
        Variant::Adbb(nnz) => {
            let mut m = base.clone();
            m.dap_nnz = Some(nnz);
            let pre = accuracy_int8(&m, test_set) * 100.0;
            train(&mut m, train_set, ft);
            Table3Row {
                label: format!("A-DBB {nnz}/8"),
                adbb: Some(nnz),
                wdbb: None,
                accuracy_pct: accuracy_int8(&m, test_set) * 100.0,
                pre_finetune_pct: pre,
            }
        }
        Variant::Wdbb(nnz) => {
            let mut m = base.clone();
            let mut oneshot = base.clone();
            oneshot.set_wdbb_masks(nnz);
            let pre = accuracy_int8(&oneshot, test_set) * 100.0;
            progressive_wdbb(&mut m, train_set, nnz, finetune_stages, ft);
            Table3Row {
                label: format!("W-DBB {nnz}/8"),
                adbb: None,
                wdbb: Some(nnz),
                accuracy_pct: accuracy_int8(&m, test_set) * 100.0,
                pre_finetune_pct: pre,
            }
        }
        Variant::Joint => {
            let mut m = base.clone();
            progressive_wdbb(&mut m, train_set, 4, finetune_stages, ft);
            m.dap_nnz = Some(4);
            let pre = accuracy_int8(&m, test_set) * 100.0;
            train(&mut m, train_set, ft);
            Table3Row {
                label: "A/W-DBB 4/8 + 4/8".into(),
                adbb: Some(4),
                wdbb: Some(4),
                accuracy_pct: accuracy_int8(&m, test_set) * 100.0,
                pre_finetune_pct: pre,
            }
        }
    }
}

/// Runs the full Table 3 experiment: baseline, A-DBB only, W-DBB only,
/// joint, and a tighter 2/8 W-DBB row (the paper's ResNet 4/8 vs 3/8 vs
/// 2/8 trend).
///
/// Every variant fine-tunes independently from one shared baseline, so
/// the five studies fan out over the persistent host executor
/// (`s2ta_core::pool::Executor`, order-preserving) — byte-identical to
/// the serial loops they replace, because each variant's training is a
/// pure function of `(baseline, variant, seeds)`.
pub fn run_table3(cfg: &Table3Config) -> Vec<Table3Row> {
    let (train_set, test_set) = generate(
        cfg.dim,
        cfg.classes,
        cfg.train_per_class,
        cfg.test_per_class,
        cfg.noise,
        cfg.seed,
    );
    let base = trained_baseline(cfg, &train_set);
    let base_acc = accuracy_int8(&base, &test_set) * 100.0;
    let ft =
        TrainConfig { epochs: cfg.finetune_epochs, seed: cfg.seed ^ 0xf17e, ..Default::default() };

    let mut rows = vec![Table3Row {
        label: "Baseline (INT8)".into(),
        adbb: None,
        wdbb: None,
        accuracy_pct: base_acc,
        pre_finetune_pct: base_acc,
    }];

    let variants =
        [Variant::Adbb(4), Variant::Adbb(2), Variant::Wdbb(4), Variant::Wdbb(2), Variant::Joint];
    rows.extend(s2ta_core::pool::Executor::global().map(&variants, |&v| {
        run_variant(v, &base, &train_set, &test_set, cfg.finetune_epochs, &ft)
    }));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_trend_reproduced() {
        let rows = run_table3(&Table3Config::fast());
        assert_eq!(rows.len(), 6);
        let baseline = rows[0].accuracy_pct;
        assert!(baseline > 85.0, "baseline too weak: {baseline:.1}%");

        for r in &rows[1..] {
            // Fine-tuning must recover most of the pruning loss
            // (paper: DBB variants within ~1% of baseline; we allow a
            // wider band on the small synthetic task).
            assert!(
                baseline - r.accuracy_pct < 10.0,
                "{}: fine-tuned accuracy {:.1}% too far below baseline {:.1}%",
                r.label,
                r.accuracy_pct,
                baseline
            );
            assert!(
                r.accuracy_pct >= r.pre_finetune_pct - 1.0,
                "{}: fine-tuning should not hurt ({:.1}% -> {:.1}%)",
                r.label,
                r.pre_finetune_pct,
                r.accuracy_pct
            );
        }

        // Tighter W-DBB costs at least as much before fine-tuning.
        let w48 = rows.iter().find(|r| r.label == "W-DBB 4/8").expect("row");
        let w28 = rows.iter().find(|r| r.label == "W-DBB 2/8").expect("row");
        assert!(
            w28.pre_finetune_pct <= w48.pre_finetune_pct + 1.0,
            "2/8 one-shot ({:.1}%) should not beat 4/8 one-shot ({:.1}%)",
            w28.pre_finetune_pct,
            w48.pre_finetune_pct
        );
    }

    #[test]
    fn rows_render() {
        let r = Table3Row {
            label: "x".into(),
            adbb: Some(4),
            wdbb: None,
            accuracy_pct: 71.0,
            pre_finetune_pct: 56.1,
        };
        let s = r.to_string();
        assert!(s.contains("4/8") && s.contains("71.0"));
    }
}
