//! A minimal `f32` matrix for the trainer.

/// Dense row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// Zero-filled `rows x cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dim is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dims must be non-zero");
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds from row-major data.
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        assert!(rows > 0 && cols > 0, "matrix dims must be non-zero");
        Self { rows, cols, data }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrowed row.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `y = self * x` for a dense vector `x` (`cols`-long), returning a
    /// `rows`-long vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "matvec dim mismatch");
        self.data
            .chunks(self.cols)
            .map(|row| row.iter().zip(x).map(|(&w, &v)| w * v).sum())
            .collect()
    }

    /// `y = self^T * x` for a dense vector `x` (`rows`-long).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.rows, "matvec_t dim mismatch");
        let mut out = vec![0.0f32; self.cols];
        for (row, &xv) in self.data.chunks(self.cols).zip(x) {
            if xv != 0.0 {
                for (o, &w) in out.iter_mut().zip(row) {
                    *o += w * xv;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_known() {
        let m = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 0.0, -1.0, 1.0]);
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![6.0, 0.0]);
        assert_eq!(m.matvec_t(&[1.0, 2.0]), vec![1.0, 0.0, 5.0]);
    }

    #[test]
    fn roundtrip() {
        let mut m = Mat::zeros(2, 2);
        m.set(1, 0, 5.0);
        assert_eq!(m.get(1, 0), 5.0);
        assert_eq!(m.row(1), &[5.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "dim mismatch")]
    fn matvec_checks_dims() {
        let m = Mat::zeros(2, 3);
        let _ = m.matvec(&[1.0, 2.0]);
    }
}
