//! A procedurally generated classification task.
//!
//! Each class is a random dense prototype vector; samples are the
//! prototype plus Gaussian noise, passed through a ReLU-like rectifier
//! so the features have CNN-activation-like statistics (non-negative,
//! many small values). The task is hard enough that pruning visibly
//! hurts and fine-tuning visibly recovers — which is all Table 3 needs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A labelled dataset split.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Flattened samples, `samples x dim` row-major.
    pub x: Vec<f32>,
    /// Labels in `0..classes`.
    pub y: Vec<usize>,
    /// Feature dimensionality.
    pub dim: usize,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the split is empty.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Borrowed sample `i`.
    pub fn sample(&self, i: usize) -> (&[f32], usize) {
        (&self.x[i * self.dim..(i + 1) * self.dim], self.y[i])
    }
}

/// Generates `(train, test)` splits of the synthetic task.
///
/// # Panics
///
/// Panics if any size parameter is zero or `noise < 0`.
pub fn generate(
    dim: usize,
    classes: usize,
    train_per_class: usize,
    test_per_class: usize,
    noise: f32,
    seed: u64,
) -> (Dataset, Dataset) {
    assert!(dim > 0 && classes > 1 && train_per_class > 0 && test_per_class > 0);
    assert!(noise >= 0.0, "noise must be non-negative");
    let mut rng = StdRng::seed_from_u64(seed);
    // Class prototypes: sparse-ish positive patterns.
    let prototypes: Vec<Vec<f32>> = (0..classes)
        .map(|_| {
            (0..dim)
                .map(|_| {
                    if rng.gen_bool(0.5) {
                        rng.gen_range(0.4f32..1.6)
                    } else {
                        rng.gen_range(0.0f32..0.2)
                    }
                })
                .collect()
        })
        .collect();

    let make = |per_class: usize, rng: &mut StdRng| {
        let mut x = Vec::with_capacity(per_class * classes * dim);
        let mut y = Vec::with_capacity(per_class * classes);
        for (c, proto) in prototypes.iter().enumerate() {
            for _ in 0..per_class {
                for &p in proto {
                    // Box-Muller gaussian noise, rectified like a ReLU
                    // feature map.
                    let u1: f32 = rng.gen_range(1e-6f32..1.0);
                    let u2: f32 = rng.gen_range(0.0f32..1.0);
                    let g = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
                    x.push((p + noise * g).max(0.0));
                }
                y.push(c);
            }
        }
        Dataset { x, y, dim, classes }
    };
    let train = make(train_per_class, &mut rng);
    let test = make(test_per_class, &mut rng);
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_labels() {
        let (train, test) = generate(32, 4, 10, 5, 0.3, 1);
        assert_eq!(train.len(), 40);
        assert_eq!(test.len(), 20);
        assert_eq!(train.x.len(), 40 * 32);
        assert!(train.y.iter().all(|&c| c < 4));
        let (s, label) = test.sample(7);
        assert_eq!(s.len(), 32);
        assert!(label < 4);
    }

    #[test]
    fn features_are_nonnegative() {
        let (train, _) = generate(16, 3, 20, 5, 0.5, 2);
        assert!(train.x.iter().all(|&v| v >= 0.0));
        assert!(!train.is_empty());
    }

    #[test]
    fn deterministic() {
        let a = generate(8, 2, 5, 5, 0.2, 3);
        let b = generate(8, 2, 5, 5, 0.2, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn classes_are_separable_with_low_noise() {
        // Nearest-prototype classification sanity: with tiny noise the
        // task should be nearly perfectly separable.
        let (train, test) = generate(32, 4, 20, 20, 0.05, 4);
        // Estimate class means from train, classify test by nearest mean.
        let mut means = vec![vec![0.0f32; 32]; 4];
        let mut counts = [0usize; 4];
        for i in 0..train.len() {
            let (s, c) = train.sample(i);
            counts[c] += 1;
            for (m, &v) in means[c].iter_mut().zip(s) {
                *m += v;
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c as f32;
            }
        }
        let mut correct = 0;
        for i in 0..test.len() {
            let (s, c) = test.sample(i);
            let best = (0..4)
                .min_by(|&a, &b| {
                    let da: f32 = means[a].iter().zip(s).map(|(m, v)| (m - v).powi(2)).sum();
                    let db: f32 = means[b].iter().zip(s).map(|(m, v)| (m - v).powi(2)).sum();
                    da.partial_cmp(&db).expect("finite")
                })
                .expect("nonempty");
            if best == c {
                correct += 1;
            }
        }
        assert!(correct as f64 / test.len() as f64 > 0.95);
    }
}
