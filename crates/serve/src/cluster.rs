//! Cluster-scale sharded serving: a router tier over N independent
//! fleet shards.
//!
//! A [`Cluster`] scales the serving simulation past one fleet: N
//! [`Fleet`] **shards** — each with its own lanes, queues, batching
//! policy and admission bound — sit behind a **router** that assigns
//! every arriving request to exactly one shard under a pluggable
//! [`RoutingPolicy`]:
//!
//! * [`RoutingPolicy::Random`] — uniform random spray (the baseline
//!   every load-balancing paper beats),
//! * [`RoutingPolicy::JoinShortestQueue`] — probe every shard's
//!   queued depth (requests admitted but not yet sealed into a
//!   batch), join the global minimum (the omniscient upper bound),
//! * [`RoutingPolicy::PowerOfTwo`] — probe two random shards, join the
//!   shallower (Mitzenmacher's "power of two choices": nearly JSQ's
//!   tail at two probes' cost).
//!
//! Random probes come from the same deterministic LCG family the
//! workload generators use, seeded by [`Cluster::with_router_seed`], so
//! a cluster run is bit-reproducible: a fixed `(stream, routing, seed,
//! shard specs)` always produces the identical [`ClusterReport`].
//!
//! The router is exact, not approximate: before routing an arrival at
//! time `t`, every shard engine is advanced through its internal events
//! up to `t`, so the queued depths the policy probes are precisely what
//! a request arriving at `t` would observe. (Probes read the *queued*
//! depth, not the full queued+in-flight backlog: in-flight batch mass
//! is common-mode across shards and drains at already-committed times
//! no routing decision can change, so including it dilutes the
//! differential signal the probing policies steer on. The autoscaler,
//! by contrast, thresholds the full backlog — it sizes capacity, and a
//! shard booked solid with in-flight work is not idle.) Shards stay
//! fully independent otherwise — no work stealing, no cross-shard
//! batching — which is what makes the tail-latency gap between routing
//! policies attributable to routing alone.
//!
//! That same independence makes the cluster a textbook conservative
//! parallel discrete-event simulation, with the **arrival stream as
//! the synchronization barrier**: between two router decisions no
//! shard can affect another, so [`Cluster::serve`] runs a
//! **shard-parallel driver** on the persistent
//! [`s2ta_core::pool::Executor`] that is byte-identical to the serial
//! loop ([`Cluster::serve_serial`]) in two tiers:
//!
//! 1. **Pre-routed** ([`RoutingPolicy::Random`] — probe-free): the
//!    router consumes exactly one LCG draw per request and never looks
//!    at a backlog, so the whole routing sequence is pre-drawn, the
//!    arrival stream is partitioned per shard up front, and every
//!    shard simulates its complete substream (arrivals, autoscaler
//!    evaluations, drain) independently in parallel with a single
//!    join.
//! 2. **Arrival-barrier** ([`RoutingPolicy::JoinShortestQueue`] /
//!    [`RoutingPolicy::PowerOfTwo`] — backlog-probing): route+inject
//!    stays serial (the probed depths feed the LCG-deterministic
//!    decision), but the advance of all shards to each barrier runs in
//!    parallel, with a fast path that skips shards whose next internal
//!    event (a non-mutating timer-wheel peek) lies beyond the barrier
//!    — typically only one or two shards have work per inter-arrival
//!    gap.
//!
//! "Byte-identical" covers the full [`ClusterReport`] equality —
//! outcomes, percentiles, routing tallies, scale events. Host-side
//! cache counters are excluded from report equality by design (see
//! [`crate::PlanCacheActivity`]): shards racing on the shared plan
//! caches can interleave lookups differently, but cached values are
//! pure, so simulated results never change.
//!
//! An optional [`AutoscalePolicy`] adds per-shard **lane autoscaling**:
//! at a fixed simulated cadence each shard's backlog is compared
//! against scale-up/-down thresholds and the shard's active-lane count
//! grows or shrinks by one lane (within `[min_lanes, lanes]`), with
//! every change recorded as a [`ScaleEvent`] in the report. Work
//! already in flight on a deactivated lane drains normally; the lane
//! just stops receiving new batches — the simulated analogue of
//! cordoning a replica before teardown.
//!
//! [`ClusterReport`] rolls the per-shard [`ServeReport`]s up into
//! cluster-global metrics. Global latency percentiles are computed by
//! **merging the per-shard exact latency histograms** — byte-identical
//! to pooling every per-request sample — and taking the nearest-rank
//! percentile over the merged population, never by
//! averaging per-shard percentiles, which is statistically meaningless
//! for tail quantiles (a shard with 1% of traffic and a terrible p99
//! would be diluted 4× in a 4-shard average, yet its requests are fully
//! present in the true global tail).

use crate::fault::{FaultConfig, FaultPlan};
use crate::fleet::{ArrivalSource, Engine, Fleet};
use crate::policy::{BatchPolicy, FixedPolicy};
use crate::report::{
    render_table, Col, FaultStats, HistogramCell, LatencyHistogram, ModelServeStats, ServeReport,
};
use crate::trace::{Trace, TraceConfig};
use crate::workload::{Lcg, Request};
use s2ta_core::pool::Executor;
use s2ta_energy::{EnergyBreakdown, TechParams};
use s2ta_models::ModelSpec;
use s2ta_sim::EventCounts;
use std::fmt;

/// How the router assigns each arriving request to a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingPolicy {
    /// Uniform random shard choice (one LCG draw per request).
    Random,
    /// Probe every shard's queued depth (requests admitted but not
    /// yet sealed into a batch), join the global minimum; ties break
    /// to the lowest shard index. Consumes no randomness.
    JoinShortestQueue,
    /// Probe two uniform random shards, join the shallower; a tie
    /// (including probing the same shard twice) breaks to the lower
    /// shard index. Two LCG draws per request.
    #[default]
    PowerOfTwo,
}

impl RoutingPolicy {
    /// Short label for reports and artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Random => "random",
            Self::JoinShortestQueue => "jsq",
            Self::PowerOfTwo => "p2c",
        }
    }

    /// Picks the shard for one arrival given the current queue depths.
    /// Deterministic for a fixed RNG state and depth vector.
    pub(crate) fn route(
        &self,
        shards: usize,
        rng: &mut Lcg,
        depth: impl Fn(usize) -> usize,
    ) -> usize {
        debug_assert!(shards > 0);
        match self {
            Self::Random => (rng.next_u64() % shards as u64) as usize,
            Self::JoinShortestQueue => {
                (0..shards).min_by_key(|&s| (depth(s), s)).expect("at least one shard")
            }
            Self::PowerOfTwo => {
                let a = (rng.next_u64() % shards as u64) as usize;
                let b = (rng.next_u64() % shards as u64) as usize;
                // Join the shallower probed queue — never the deeper —
                // with ties (and a == b) resolving to the lower index.
                std::cmp::min((depth(a), a), (depth(b), b)).1
            }
        }
    }

    /// Whether routing decisions read shard backlogs. Probe-free
    /// policies consume a fixed number of LCG draws per request and
    /// ignore the depth callback entirely, so their whole routing
    /// sequence can be pre-drawn — the tier-1 parallel driver's
    /// enabling property.
    pub(crate) fn probes_backlog(&self) -> bool {
        match self {
            Self::Random => false,
            Self::JoinShortestQueue | Self::PowerOfTwo => true,
        }
    }
}

/// One shard's complete driver-side state: its engine, the dummy
/// open-loop arrival source (the router injects arrivals itself; the
/// source only answers closed-loop callbacks, as no-ops), and its
/// batching policy. This is the unit the parallel driver moves across
/// executor threads between barriers — `Send` by the compile-time
/// assertion next to [`Engine`].
struct ShardState<'a> {
    engine: Engine<'a>,
    source: ArrivalSource<'a>,
    policy: FixedPolicy,
}

impl<'a> ShardState<'a> {
    fn new(fleet: &'a Fleet, models: &'a [ModelSpec]) -> Self {
        Self {
            engine: Engine::new(fleet, models),
            source: ArrivalSource::open(&[]),
            policy: fleet.fixed_policy(),
        }
    }

    /// Advances the engine through every internal event preceding an
    /// arrival at `t`.
    fn advance(&mut self, t: u64) {
        self.engine.advance_to_arrival(t, &mut self.source, &mut self.policy);
    }

    /// Injects one routed arrival.
    fn inject(&mut self, r: Request) {
        self.engine.inject(r, None, &mut self.source, &mut self.policy);
    }

    /// Drains every remaining internal event.
    fn drain(&mut self) {
        self.engine.drain(&mut self.source, &mut self.policy);
    }

    /// Finishes the shard into its [`ServeReport`].
    fn finish(self) -> ServeReport {
        let Self { engine, policy, .. } = self;
        engine.into_report(policy.name())
    }
}

impl fmt::Display for RoutingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-shard lane autoscaling: at a fixed simulated cadence, each
/// shard's queue backlog is compared against hysteresis thresholds and
/// the shard grows or shrinks its active-lane count by one lane.
///
/// `scale_down_depth` must be strictly below `scale_up_depth` — the
/// gap is the hysteresis band that keeps the scaler from oscillating
/// on a backlog sitting exactly at one threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoscalePolicy {
    /// Simulated cycles between evaluations of every shard.
    pub eval_interval_cycles: u64,
    /// Backlog at or above which a shard activates one more lane (up
    /// to its fleet's lane count).
    pub scale_up_depth: usize,
    /// Backlog at or below which a shard deactivates one lane (down
    /// to `min_lanes`).
    pub scale_down_depth: usize,
    /// Floor on active lanes per shard (at least 1).
    pub min_lanes: usize,
}

impl AutoscalePolicy {
    /// Panics unless the policy is internally consistent.
    fn validate(&self) {
        assert!(self.eval_interval_cycles > 0, "autoscale interval must be positive");
        assert!(self.min_lanes >= 1, "a shard keeps at least one active lane");
        assert!(
            self.scale_down_depth < self.scale_up_depth,
            "scale-down threshold must sit strictly below scale-up (hysteresis)"
        );
    }
}

/// One autoscaler action: a shard changed its active-lane count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleEvent {
    /// Simulated cycle of the evaluation that triggered the change.
    pub time: u64,
    /// Shard that scaled.
    pub shard: usize,
    /// Active lanes before.
    pub from_lanes: usize,
    /// Active lanes after.
    pub to_lanes: usize,
    /// The shard's backlog (queued + in-flight requests) at
    /// evaluation time (the trigger).
    pub backlog: usize,
}

/// N independent [`Fleet`] shards behind a routing tier.
///
/// # Example
///
/// ```
/// use s2ta_core::ArchKind;
/// use s2ta_models::lenet5;
/// use s2ta_serve::{Cluster, Fleet, RoutingPolicy, WorkloadSpec};
///
/// let models = [lenet5()];
/// let requests = WorkloadSpec::uniform(7, 64, 4_000.0, models.len()).generate();
/// let shards = (0..2).map(|_| Fleet::new(ArchKind::S2taAw, 2)).collect();
/// let cluster = Cluster::new(shards).with_routing(RoutingPolicy::PowerOfTwo);
/// let report = cluster.serve(&models, &requests);
/// assert_eq!(report.total_requests(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct Cluster {
    shards: Vec<Fleet>,
    routing: RoutingPolicy,
    router_seed: u64,
    autoscale: Option<AutoscalePolicy>,
    fault: Option<(FaultConfig, FaultPlan)>,
}

impl Cluster {
    /// A cluster over `shards` with the default routing
    /// ([`RoutingPolicy::PowerOfTwo`]) and router seed 0.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty.
    pub fn new(shards: Vec<Fleet>) -> Self {
        assert!(!shards.is_empty(), "a cluster needs at least one shard");
        Self {
            shards,
            routing: RoutingPolicy::default(),
            router_seed: 0,
            autoscale: None,
            fault: None,
        }
    }

    /// Replaces the routing policy.
    pub fn with_routing(mut self, routing: RoutingPolicy) -> Self {
        self.routing = routing;
        self
    }

    /// Replaces the router's LCG seed (the only randomness in a
    /// cluster run).
    pub fn with_router_seed(mut self, seed: u64) -> Self {
        self.router_seed = seed;
        self
    }

    /// Re-points every shard's lanes at one **cluster-wide** shared
    /// [`s2ta_core::WeightPlanCache`] and
    /// [`s2ta_core::ActProfileCache`]: each weight plan is compiled
    /// and each activation profiled once for the whole cluster instead
    /// of once per shard. Cached values are pure, so this changes host
    /// time and cache counters — never simulated results.
    pub fn with_shared_caches(mut self) -> Self {
        let plans = s2ta_core::WeightPlanCache::new();
        let acts = s2ta_core::ActProfileCache::new();
        self.shards = self
            .shards
            .into_iter()
            .map(|f| f.sharing_caches(plans.clone(), acts.clone()))
            .collect();
        self
    }

    /// Enables per-shard lane autoscaling.
    ///
    /// # Panics
    ///
    /// Panics if the policy is inconsistent (zero interval, zero
    /// `min_lanes`, or thresholds without a hysteresis gap).
    pub fn with_autoscale(mut self, policy: AutoscalePolicy) -> Self {
        policy.validate();
        self.autoscale = Some(policy);
        self
    }

    /// Enables deterministic fault injection across the cluster: the
    /// config's [`crate::FaultSpec`] expands once — over the full
    /// cluster topology, so lane and shard draws see every shard — and
    /// each shard fleet receives its own slice of the plan. When
    /// [`FaultConfig::failover`] is set the router also becomes
    /// health-aware: no probing policy joins a shard inside one of its
    /// outage windows, and [`RoutingPolicy::Random`] re-draws onto the
    /// healthy set (still exactly one LCG draw per request, and still a
    /// pure function of the pre-drawn state — so the probe-free
    /// parallel driver stays byte-identical).
    ///
    /// # Panics
    ///
    /// Panics if the spec's horizon is zero.
    pub fn with_faults(mut self, config: FaultConfig) -> Self {
        let lanes_per_shard: Vec<usize> = self.shards.iter().map(Fleet::workers).collect();
        let plan = config.spec.schedule(&lanes_per_shard);
        self.shards = self
            .shards
            .into_iter()
            .enumerate()
            .map(|(s, f)| f.with_fault_timeline(config.clone(), plan.shard_timeline(s)))
            .collect();
        self.fault = Some((config, plan));
        self
    }

    /// Attaches an observability trace to **every shard**: each shard
    /// engine records its own flight-recorder events and metrics
    /// series, and [`ClusterReport::merged_trace`] merges them by
    /// `(cycle, shard)` — the same discipline as scale events, so the
    /// merged trace is byte-identical for the serial and parallel
    /// drivers.
    ///
    /// # Panics
    ///
    /// Panics if `config.metrics_interval_cycles` is zero.
    pub fn with_trace(mut self, config: TraceConfig) -> Self {
        config.validate();
        self.shards = self.shards.into_iter().map(|f| f.with_trace(config)).collect();
        self
    }

    /// The shards, in routing-index order.
    pub fn shards(&self) -> &[Fleet] {
        &self.shards
    }

    /// The active routing policy.
    pub fn routing(&self) -> RoutingPolicy {
        self.routing
    }

    /// Serves an open-loop request stream across the shards and rolls
    /// the per-shard reports up into a [`ClusterReport`].
    ///
    /// Each arrival is routed to exactly one shard (after every shard
    /// engine has been advanced to the arrival time, so probed queue
    /// depths are exact), injected there, and from then on lives
    /// entirely inside that shard: admission, batching, placement and
    /// execution are the shard fleet's own. Requests keep their global
    /// stream ids, so the union of per-shard outcomes covers the input
    /// stream exactly once.
    ///
    /// Runs the **shard-parallel driver** on the process-wide
    /// [`Executor`] (see the module docs for the two tiers); the
    /// result is byte-identical to [`Cluster::serve_serial`] for every
    /// routing policy.
    ///
    /// # Panics
    ///
    /// Panics if a request names a model index outside `models`, or if
    /// arrivals are unsorted.
    pub fn serve(&self, models: &[ModelSpec], requests: &[Request]) -> ClusterReport {
        self.serve_on(Executor::global(), models, requests)
    }

    /// [`Cluster::serve`] on an explicit executor — the hook that lets
    /// tests pin the parallel driver to specific worker counts (a
    /// one-worker executor runs the same code path fully inline).
    pub fn serve_on(
        &self,
        executor: &Executor,
        models: &[ModelSpec],
        requests: &[Request],
    ) -> ClusterReport {
        if self.routing.probes_backlog() {
            self.serve_barrier(executor, models, requests)
        } else {
            self.serve_prerouted(executor, models, requests)
        }
    }

    /// Routes one arrival at time `t`, avoiding shards inside an
    /// outage window when health-aware failover is enabled. Returns
    /// `(shard, failed_over)` where the flag records that the choice
    /// was diverted away from a down shard.
    ///
    /// Health never adds or removes LCG draws: [`RoutingPolicy::
    /// Random`] re-uses its single draw to index the healthy set, and
    /// [`RoutingPolicy::PowerOfTwo`] re-uses each of its two probe
    /// draws — so the routing sequence stays a pure function of
    /// `(seed, arrival times, fault plan)` and the probe-free parallel
    /// driver can still pre-draw it. When **every** shard is down the
    /// router falls back to unrestricted routing: requests queue on a
    /// down shard and execute after it recovers.
    fn route_healthy(
        &self,
        n: usize,
        rng: &mut Lcg,
        t: u64,
        depth: impl Fn(usize) -> usize,
    ) -> (usize, bool) {
        let plan = match &self.fault {
            Some((config, plan)) if config.failover => plan,
            _ => return (self.routing.route(n, rng, depth), false),
        };
        if !plan.any_shard_down(t) {
            return (self.routing.route(n, rng, depth), false);
        }
        let healthy: Vec<usize> = (0..n).filter(|&s| plan.is_shard_up(s, t)).collect();
        if healthy.is_empty() {
            return (self.routing.route(n, rng, depth), false);
        }
        let h = healthy.len() as u64;
        match self.routing {
            RoutingPolicy::Random => {
                let draw = rng.next_u64();
                let naive = (draw % n as u64) as usize;
                if plan.is_shard_up(naive, t) {
                    (naive, false)
                } else {
                    (healthy[(draw % h) as usize], true)
                }
            }
            RoutingPolicy::JoinShortestQueue => {
                let unrestricted =
                    (0..n).min_by_key(|&s| (depth(s), s)).expect("at least one shard");
                let pick = healthy
                    .iter()
                    .copied()
                    .min_by_key(|&s| (depth(s), s))
                    .expect("healthy set is non-empty");
                (pick, !plan.is_shard_up(unrestricted, t))
            }
            RoutingPolicy::PowerOfTwo => {
                let draw_a = rng.next_u64();
                let draw_b = rng.next_u64();
                let naive_a = (draw_a % n as u64) as usize;
                let naive_b = (draw_b % n as u64) as usize;
                let a = if plan.is_shard_up(naive_a, t) {
                    naive_a
                } else {
                    healthy[(draw_a % h) as usize]
                };
                let b = if plan.is_shard_up(naive_b, t) {
                    naive_b
                } else {
                    healthy[(draw_b % h) as usize]
                };
                let failed_over = a != naive_a || b != naive_b;
                (std::cmp::min((depth(a), a), (depth(b), b)).1, failed_over)
            }
        }
    }

    /// The serial reference driver: one loop advancing every shard to
    /// every arrival. This is what [`Cluster::serve`] is differentially
    /// tested against (and what the bench times the parallel driver's
    /// speedup over); prefer [`Cluster::serve`] everywhere else.
    ///
    /// # Panics
    ///
    /// As [`Cluster::serve`].
    pub fn serve_serial(&self, models: &[ModelSpec], requests: &[Request]) -> ClusterReport {
        let n = self.shards.len();
        let mut states: Vec<ShardState> =
            self.shards.iter().map(|f| ShardState::new(f, models)).collect();
        let mut rng = Lcg::new(self.router_seed);
        let mut routed = vec![0usize; n];
        let mut scale_events: Vec<ScaleEvent> = Vec::new();
        let mut next_eval = self.autoscale.map(|a| a.eval_interval_cycles);

        for r in requests {
            let t = r.arrival;
            // Autoscaler evaluations due before this arrival fire
            // first, in simulated-time order.
            if let Some(auto) = self.autoscale {
                while next_eval.expect("set when autoscaling") <= t {
                    let eval = next_eval.expect("checked");
                    for (s, state) in states.iter_mut().enumerate() {
                        state.advance(eval);
                        self.autoscale_shard(&mut state.engine, s, eval, auto, &mut scale_events);
                    }
                    next_eval = Some(eval + auto.eval_interval_cycles);
                }
            }
            // Advance every shard to the arrival so the probed depths
            // are exactly what a request arriving at `t` observes.
            for state in states.iter_mut() {
                state.advance(t);
            }
            let (shard, failed_over) =
                self.route_healthy(n, &mut rng, t, |s| states[s].engine.queued_depth());
            routed[shard] += 1;
            if failed_over {
                states[shard].engine.note_failover(r);
            }
            states[shard].inject(*r);
        }
        for state in states.iter_mut() {
            state.drain();
        }
        self.assemble(states, routed, scale_events)
    }

    /// Tier-1 parallel driver for probe-free routing: pre-draw the
    /// entire routing sequence (Random consumes exactly one LCG draw
    /// per request and never reads a backlog), partition the arrivals
    /// per shard, and run every shard's complete lifetime — arrivals,
    /// autoscaler evaluations, final drain — independently on the
    /// executor with a single join. Embarrassingly parallel: the only
    /// serial work is the pre-draw and the report merge.
    fn serve_prerouted(
        &self,
        executor: &Executor,
        models: &[ModelSpec],
        requests: &[Request],
    ) -> ClusterReport {
        let n = self.shards.len();
        let mut rng = Lcg::new(self.router_seed);
        // Pre-draw the full routing sequence, carrying each request's
        // failover flag alongside it so the shard replay can record the
        // diversion at the exact point the serial driver would.
        let mut per_shard: Vec<Vec<(Request, bool)>> = vec![Vec::new(); n];
        for r in requests {
            let (shard, failed_over) =
                self.route_healthy(n, &mut rng, r.arrival, |_| unreachable!("probe-free routing"));
            per_shard[shard].push((*r, failed_over));
        }
        let routed: Vec<usize> = per_shard.iter().map(Vec::len).collect();
        // Autoscaler evaluations fire serially up to the last arrival
        // of the *global* stream, regardless of where it was routed;
        // every shard replays the same horizon.
        let horizon = requests.last().map(|r| r.arrival);
        let shard_ids: Vec<usize> = (0..n).collect();
        let results =
            executor.map(&shard_ids, |&s| self.run_shard(s, models, &per_shard[s], horizon));
        let mut states = Vec::with_capacity(n);
        let mut scale_events: Vec<ScaleEvent> = Vec::new();
        for (state, events) in results {
            states.push(state);
            scale_events.extend(events);
        }
        // Each shard's events are in time order and at most one event
        // exists per (eval time, shard); sorting by (time, shard)
        // reproduces the serial driver's emission order exactly.
        scale_events.sort_by_key(|e| (e.time, e.shard));
        self.assemble(states, routed, scale_events)
    }

    /// One shard's full tier-1 lifetime over its own substream.
    ///
    /// Replaying only the shard's own arrivals is exact because the
    /// engine is event-driven: advancing a shard to *another* shard's
    /// arrival time (as the serial driver does) processes the same
    /// internal events in the same `(time, kind)` order as advancing
    /// it later, so the host call boundaries are behavior-neutral.
    /// Autoscaler evaluations are the one cross-stream coupling — they
    /// fire at stream-global times — so they replay against the global
    /// `horizon`.
    fn run_shard<'a>(
        &'a self,
        shard: usize,
        models: &'a [ModelSpec],
        own: &[(Request, bool)],
        horizon: Option<u64>,
    ) -> (ShardState<'a>, Vec<ScaleEvent>) {
        let mut state = ShardState::new(&self.shards[shard], models);
        let mut events: Vec<ScaleEvent> = Vec::new();
        let mut next_eval = self.autoscale.map(|a| a.eval_interval_cycles);
        let mut fire_evals_through = |state: &mut ShardState<'_>, t: u64| {
            let Some(auto) = self.autoscale else { return };
            while next_eval.expect("set when autoscaling") <= t {
                let eval = next_eval.expect("checked");
                state.advance(eval);
                self.autoscale_shard(&mut state.engine, shard, eval, auto, &mut events);
                next_eval = Some(eval + auto.eval_interval_cycles);
            }
        };
        for (r, failed_over) in own {
            fire_evals_through(&mut state, r.arrival);
            state.advance(r.arrival);
            if *failed_over {
                state.engine.note_failover(r);
            }
            state.inject(*r);
        }
        if let Some(horizon) = horizon {
            fire_evals_through(&mut state, horizon);
        }
        state.drain();
        (state, events)
    }

    /// Tier-2 parallel driver for backlog-probing routing: the
    /// route+inject step stays serial (probed depths feed each
    /// LCG-deterministic decision), but between decisions all shards
    /// advance to the arrival barrier in parallel. The fast path asks
    /// each shard — via a non-mutating timer-wheel peek — whether any
    /// internal event precedes the barrier at all; shards with none
    /// (most of them, in a typical inter-arrival gap) skip executor
    /// dispatch entirely, and a single busy shard advances inline.
    fn serve_barrier(
        &self,
        executor: &Executor,
        models: &[ModelSpec],
        requests: &[Request],
    ) -> ClusterReport {
        let n = self.shards.len();
        let mut states: Vec<ShardState> =
            self.shards.iter().map(|f| ShardState::new(f, models)).collect();
        let mut rng = Lcg::new(self.router_seed);
        let mut routed = vec![0usize; n];
        let mut scale_events: Vec<ScaleEvent> = Vec::new();
        let mut next_eval = self.autoscale.map(|a| a.eval_interval_cycles);

        for r in requests {
            let t = r.arrival;
            if let Some(auto) = self.autoscale {
                while next_eval.expect("set when autoscaling") <= t {
                    let eval = next_eval.expect("checked");
                    Self::advance_all(executor, &mut states, eval);
                    for (s, state) in states.iter_mut().enumerate() {
                        self.autoscale_shard(&mut state.engine, s, eval, auto, &mut scale_events);
                    }
                    next_eval = Some(eval + auto.eval_interval_cycles);
                }
            }
            Self::advance_all(executor, &mut states, t);
            let (shard, failed_over) =
                self.route_healthy(n, &mut rng, t, |s| states[s].engine.queued_depth());
            routed[shard] += 1;
            if failed_over {
                states[shard].engine.note_failover(r);
            }
            states[shard].inject(*r);
        }
        executor.for_each_mut(&mut states, None, |state| state.drain());
        self.assemble(states, routed, scale_events)
    }

    /// Advances every shard with pending work to the barrier at `t`,
    /// in parallel when more than one shard is busy.
    fn advance_all(executor: &Executor, states: &mut [ShardState], t: u64) {
        let mut busy: Vec<&mut ShardState> =
            states.iter_mut().filter_map(|s| s.engine.has_event_before(t).then_some(s)).collect();
        match busy.len() {
            0 => {}
            1 => busy[0].advance(t),
            _ => executor.for_each_mut(&mut busy, None, |s| s.advance(t)),
        }
    }

    /// Rolls finished shard states up into the [`ClusterReport`].
    fn assemble(
        &self,
        states: Vec<ShardState>,
        routed: Vec<usize>,
        scale_events: Vec<ScaleEvent>,
    ) -> ClusterReport {
        let shards: Vec<ServeReport> = states.into_iter().map(ShardState::finish).collect();
        ClusterReport {
            routing: self.routing.label().to_string(),
            shards,
            routed,
            scale_events,
            latency_hist: HistogramCell::default(),
        }
    }

    /// One autoscaler evaluation of one shard.
    fn autoscale_shard(
        &self,
        engine: &mut Engine,
        shard: usize,
        time: u64,
        auto: AutoscalePolicy,
        events: &mut Vec<ScaleEvent>,
    ) {
        // Metrics boundaries `<= time` close before the decision can
        // resize the active-lane set, so every driver's samples see
        // the pre-decision lane count.
        engine.trace_autoscale_eval(time);
        let depth = engine.backlog();
        let active = engine.active_lanes();
        let max = self.shards[shard].workers();
        let floor = auto.min_lanes.min(max);
        let target = if depth >= auto.scale_up_depth {
            (active + 1).min(max)
        } else if depth <= auto.scale_down_depth {
            active.saturating_sub(1).max(floor)
        } else {
            active
        };
        if target != active {
            engine.set_active_lanes(target);
            engine.trace_autoscale_decision(time, active, target, depth);
            events.push(ScaleEvent {
                time,
                shard,
                from_lanes: active,
                to_lanes: target,
                backlog: depth,
            });
        }
    }
}

/// A compact per-shard row of a cluster run, for tables and artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSummary {
    /// Shard index (routing order).
    pub shard: usize,
    /// The shard fleet's composition label.
    pub arch: String,
    /// Requests the router sent to this shard.
    pub routed: usize,
    /// Requests the shard served.
    pub served: usize,
    /// Requests the shard tail-dropped at admission.
    pub dropped: usize,
    /// The shard's own p99 latency in cycles.
    pub p99_cycles: u64,
    /// The shard's makespan in cycles.
    pub makespan_cycles: u64,
}

/// Everything a cluster run produced: the per-shard [`ServeReport`]s
/// plus the routing/autoscaling decisions, rolled up into global
/// metrics.
///
/// Global latency percentiles merge the **per-request samples** of
/// every shard before taking the nearest-rank quantile — they are the
/// percentiles of the cluster's request population, not an average of
/// per-shard percentiles.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Routing policy label (see [`RoutingPolicy::label`]).
    pub routing: String,
    /// Per-shard serving reports, in shard order.
    pub shards: Vec<ServeReport>,
    /// Requests the router assigned to each shard (sums to the input
    /// stream length).
    pub routed: Vec<usize>,
    /// Autoscaler actions, in simulated-time order (empty without an
    /// [`AutoscalePolicy`]).
    pub scale_events: Vec<ScaleEvent>,
    /// Memoized merged-latency histogram (host-side; excluded from
    /// equality, empty on clones — see [`HistogramCell`]).
    pub(crate) latency_hist: HistogramCell,
}

impl ClusterReport {
    /// Requests in the input stream (served + dropped + failed over
    /// all shards).
    pub fn total_requests(&self) -> usize {
        self.shards.iter().map(|s| s.outcomes.len()).sum()
    }

    /// Requests that exhausted their retry budget (or became
    /// non-SLO-meetable after a crash) across all shards.
    pub fn failed_count(&self) -> usize {
        self.shards.iter().map(ServeReport::failed_count).sum()
    }

    /// Aggregate fault accounting over every shard; per-lane vectors
    /// concatenate in shard order, mirroring the cluster's global lane
    /// numbering. All-zero for a fault-free run.
    pub fn fault_stats(&self) -> FaultStats {
        let mut total = FaultStats::default();
        for s in &self.shards {
            total.merge(&s.fault);
        }
        total
    }

    /// Fraction of issued requests that did **not** fail: `1 -
    /// failed/total` (1.0 for an empty run). Drops are an admission
    /// decision, not a failure, and do not reduce availability.
    pub fn availability(&self) -> f64 {
        let total = self.total_requests();
        if total == 0 {
            return 1.0;
        }
        1.0 - self.failed_count() as f64 / total as f64
    }

    /// Requests served across all shards.
    pub fn served_count(&self) -> usize {
        self.shards.iter().map(ServeReport::served_count).sum()
    }

    /// Requests tail-dropped across all shards.
    pub fn dropped_count(&self) -> usize {
        self.shards.iter().map(ServeReport::dropped_count).sum()
    }

    /// Dropped fraction of the whole stream (0 for an empty run).
    pub fn drop_rate(&self) -> f64 {
        let total = self.total_requests();
        if total == 0 {
            return 0.0;
        }
        self.dropped_count() as f64 / total as f64
    }

    /// The merged served-latency histogram over every shard — the
    /// merged population global percentiles are taken over. Built once
    /// (a cheap sorted-bin merge of the per-shard histograms, never a
    /// re-sort of the million-sample population) and memoized.
    pub fn latency_histogram(&self) -> &LatencyHistogram {
        self.latency_hist.get_or_build(|| {
            let mut merged = LatencyHistogram::default();
            for shard in &self.shards {
                merged.merge(shard.latency_histogram());
            }
            merged
        })
    }

    /// Global `pct`-th percentile latency in cycles over the merged
    /// per-request samples of every shard (0 when nothing was served).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < pct <= 100.0`.
    pub fn latency_percentile_cycles(&self, pct: f64) -> u64 {
        self.latency_histogram().percentile(pct)
    }

    /// Global median latency in cycles.
    pub fn p50_cycles(&self) -> u64 {
        self.latency_percentile_cycles(50.0)
    }

    /// Global 95th-percentile latency in cycles.
    pub fn p95_cycles(&self) -> u64 {
        self.latency_percentile_cycles(95.0)
    }

    /// Global 99th-percentile latency in cycles.
    pub fn p99_cycles(&self) -> u64 {
        self.latency_percentile_cycles(99.0)
    }

    /// Cluster makespan: the last completion over all shards.
    pub fn makespan_cycles(&self) -> u64 {
        self.shards.iter().map(|s| s.makespan_cycles).max().unwrap_or(0)
    }

    /// Cluster goodput: served inferences per second at `tech`'s clock
    /// over the cluster makespan.
    pub fn goodput_ips(&self, tech: &TechParams) -> f64 {
        let makespan = self.makespan_cycles();
        if makespan == 0 {
            return 0.0;
        }
        self.served_count() as f64 / (makespan as f64 / tech.clock_hz)
    }

    /// Aggregate simulated events over every shard.
    pub fn total_events(&self) -> EventCounts {
        let mut total = EventCounts::default();
        for s in &self.shards {
            total += s.total_events;
        }
        total
    }

    /// Aggregate cluster energy under `tech`.
    pub fn energy(&self, tech: &TechParams) -> EnergyBreakdown {
        EnergyBreakdown::of(&self.total_events(), tech)
    }

    /// Per-model drop and deadline-miss counts aggregated over every
    /// shard (model order follows the shards' shared models list).
    pub fn per_model(&self) -> Vec<ModelServeStats> {
        let mut agg: Vec<ModelServeStats> = Vec::new();
        for shard in &self.shards {
            for (i, m) in shard.per_model.iter().enumerate() {
                if agg.len() <= i {
                    agg.push(ModelServeStats {
                        model: m.model.clone(),
                        dropped: 0,
                        deadline_misses: 0,
                        failed: 0,
                    });
                }
                agg[i].dropped += m.dropped;
                agg[i].deadline_misses += m.deadline_misses;
                agg[i].failed += m.failed;
            }
        }
        agg
    }

    /// The cluster-wide trace, merged from the per-shard traces by
    /// `(cycle, shard)` — exactly how scale events merge, so serial
    /// and parallel drivers produce byte-identical merged traces.
    /// `None` unless **every** shard ran with a recorder attached
    /// (see [`Cluster::with_trace`]).
    pub fn merged_trace(&self) -> Option<Trace> {
        let traces: Vec<Trace> =
            self.shards.iter().map(|s| s.trace().cloned()).collect::<Option<_>>()?;
        Trace::merge_shards(traces)
    }

    /// One compact row per shard.
    pub fn shard_summaries(&self) -> Vec<ShardSummary> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardSummary {
                shard: i,
                arch: s.arch.clone(),
                routed: self.routed[i],
                served: s.served_count(),
                dropped: s.dropped_count(),
                p99_cycles: s.p99_cycles(),
                makespan_cycles: s.makespan_cycles,
            })
            .collect()
    }

    /// A multi-line human-readable cluster summary under `tech`:
    /// global rollup, then one row per shard, then the scale events.
    pub fn summary(&self, tech: &TechParams) -> String {
        let mut s = format!(
            "ClusterReport [{} | {} shards]: {} served / {} dropped\n",
            self.routing,
            self.shards.len(),
            self.served_count(),
            self.dropped_count()
        );
        s.push_str(&format!(
            "  goodput {:.1} inf/s, drop rate {:.2}%, energy {:.1} uJ\n",
            self.goodput_ips(tech),
            self.drop_rate() * 100.0,
            self.energy(tech).total_pj() * 1e-6,
        ));
        s.push_str(&format!(
            "  global latency p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms (merged samples)\n",
            ServeReport::cycles_to_ms(tech, self.p50_cycles()),
            ServeReport::cycles_to_ms(tech, self.p95_cycles()),
            ServeReport::cycles_to_ms(tech, self.p99_cycles()),
        ));
        let faults = self.fault_stats();
        if !faults.is_quiet() {
            s.push_str(&format!(
                "  faults: {} crashes, {} retries, {} hedges, {} failovers, {} failed, \
                 {} shed, availability {:.4}\n",
                faults.lane_crashes,
                faults.retries,
                faults.hedges,
                faults.failovers,
                faults.failed,
                faults.shed,
                self.availability(),
            ));
        }
        let cols = [
            Col::left("shard", 6),
            Col::left("arch", 22),
            Col::right("routed", 8),
            Col::right("served", 8),
            Col::right("dropped", 8),
            Col::right("p99 cyc", 12),
            Col::right("makespan", 12),
        ];
        let rows: Vec<Vec<String>> = self
            .shard_summaries()
            .into_iter()
            .map(|row| {
                vec![
                    format!("S{}", row.shard),
                    row.arch,
                    row.routed.to_string(),
                    row.served.to_string(),
                    row.dropped.to_string(),
                    row.p99_cycles.to_string(),
                    row.makespan_cycles.to_string(),
                ]
            })
            .collect();
        s.push_str(&render_table(&cols, &rows));
        if !self.scale_events.is_empty() {
            s.push_str(&format!("  {} scale events:", self.scale_events.len()));
            for e in &self.scale_events {
                s.push_str(&format!(
                    " [@{} S{} {}->{} depth {}]",
                    e.time, e.shard, e.from_lanes, e.to_lanes, e.backlog
                ));
            }
            s.push('\n');
        }
        s
    }
}

impl fmt::Display for ClusterReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cluster [{}]: {} shards, {} served, {} dropped, {} scale events, {} cycles makespan",
            self.routing,
            self.shards.len(),
            self.served_count(),
            self.dropped_count(),
            self.scale_events.len(),
            self.makespan_cycles()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn depths(d: &[usize]) -> impl Fn(usize) -> usize + '_ {
        move |s| d[s]
    }

    #[test]
    fn jsq_joins_global_minimum_with_lowest_index_ties() {
        let mut rng = Lcg::new(1);
        let policy = RoutingPolicy::JoinShortestQueue;
        assert_eq!(policy.route(4, &mut rng, depths(&[3, 1, 2, 1])), 1);
        assert_eq!(policy.route(4, &mut rng, depths(&[0, 0, 0, 0])), 0);
        assert_eq!(policy.route(4, &mut rng, depths(&[5, 4, 4, 9])), 1);
        // JSQ consumes no randomness: the RNG state is untouched.
        let mut fresh = Lcg::new(1);
        assert_eq!(rng.next_u64(), fresh.next_u64());
    }

    #[test]
    fn p2c_never_routes_to_the_deeper_probed_queue() {
        let d = [7usize, 0, 3, 12, 3, 1, 9, 2];
        let n = d.len();
        let mut rng = Lcg::new(99);
        // Mirror the policy's two probe draws with a shadow RNG so the
        // probed pair is known, then check the choice is the shallower
        // of exactly that pair (lower index on ties).
        let mut shadow = Lcg::new(99);
        for _ in 0..2_000 {
            let a = (shadow.next_u64() % n as u64) as usize;
            let b = (shadow.next_u64() % n as u64) as usize;
            let pick = RoutingPolicy::PowerOfTwo.route(n, &mut rng, depths(&d));
            assert!(pick == a || pick == b, "p2c must pick a probed shard");
            assert!(
                d[pick] <= d[a] && d[pick] <= d[b],
                "p2c routed to the deeper probe: picked {pick} of ({a},{b}) with depths {d:?}"
            );
            assert_eq!(pick, std::cmp::min((d[a], a), (d[b], b)).1, "deterministic tie-break");
        }
    }

    #[test]
    fn random_routing_is_seed_deterministic_and_covers_shards() {
        let route_all = |seed: u64| -> Vec<usize> {
            let mut rng = Lcg::new(seed);
            (0..256).map(|_| RoutingPolicy::Random.route(5, &mut rng, |_| 0)).collect()
        };
        assert_eq!(route_all(7), route_all(7), "same seed, same routes");
        assert_ne!(route_all(7), route_all(8), "different seed, different routes");
        let picks = route_all(7);
        for s in 0..5 {
            assert!(picks.contains(&s), "shard {s} never picked in 256 draws");
        }
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn autoscale_rejects_inverted_thresholds() {
        AutoscalePolicy {
            eval_interval_cycles: 1_000,
            scale_up_depth: 4,
            scale_down_depth: 4,
            min_lanes: 1,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn empty_cluster_rejected() {
        Cluster::new(Vec::new());
    }
}
