//! Deterministic fault injection and recovery for the serving tier.
//!
//! A [`FaultSpec`] is a **pure, seeded description** of everything
//! that will go wrong during a run: lane crashes, lane slowdowns and
//! whole-shard outages, all scheduled on the simulated clock by the
//! same LCG family that drives workloads and routing. Expanding the
//! spec with [`FaultSpec::schedule`] yields a [`FaultPlan`] — merged
//! per-lane down/slow windows plus per-shard outage windows — that
//! both the cluster router (health tracking / failover) and each shard
//! engine (crash cancellation, retries, degraded mode) consume. The
//! plan is a pure function of `(spec, shard count, lane counts)`, so
//! the serial and shard-parallel cluster drivers see byte-identical
//! fault schedules and produce byte-identical reports.
//!
//! Recovery machinery configured alongside the schedule:
//!
//! * [`RetryPolicy`] — bounded attempts with exponential backoff in
//!   simulated cycles; a retry that can no longer meet its deadline is
//!   abandoned as [`crate::RequestOutcome::Failed`] instead of wasting
//!   capacity.
//! * [`HedgePolicy`] — duplicate dispatch for batches whose queueing
//!   age exceeds a multiple of the learned service estimate.
//! * [`DegradedMode`] — under sustained capacity loss, shed
//!   best-effort models at admission so strict classes keep their p99.
//!
//! Bundle them with [`FaultConfig`] and attach via
//! [`crate::Fleet::with_faults`] or [`crate::Cluster::with_faults`].

use crate::report::FaultStats;
use crate::timewheel::TimerWheel;
use crate::workload::{Lcg, Request};

/// One typed fault, as named by the schedule. The expanded
/// [`FaultPlan`] works in merged windows; this enum is the
/// user-facing vocabulary of what a [`FaultSpec`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// A lane dies for `down_for` cycles: its in-flight batches are
    /// cancelled (and retried under the [`RetryPolicy`]) and it
    /// accepts no work until it recovers — **cold**, with its warm
    /// weight/activation cache residency gone.
    LaneCrash {
        /// Cycles the lane stays down.
        down_for: u64,
    },
    /// A lane runs degraded for `duration` cycles: every batch
    /// started on it during the window pays `factor`× its service
    /// cycles.
    LaneSlowdown {
        /// Effective-clock multiplier (≥ 2) applied to service cycles.
        factor: u64,
        /// Cycles the slowdown lasts.
        duration: u64,
    },
    /// A whole shard goes dark for `down_for` cycles: every lane of
    /// the shard crashes, and a health-aware router steers new
    /// arrivals to surviving shards.
    ShardOutage {
        /// Cycles the shard stays out.
        down_for: u64,
    },
}

/// A seeded, deterministic fault schedule over one cluster run.
///
/// The spec is pure data: expanding it with [`FaultSpec::schedule`]
/// against a `(shard count, lanes per shard)` topology produces the
/// same [`FaultPlan`] every time, on every driver. Counts of zero
/// disable the corresponding fault class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// LCG seed the schedule is drawn from.
    pub seed: u64,
    /// Lane crashes to inject across the cluster.
    pub lane_crashes: usize,
    /// Lane slowdowns to inject across the cluster.
    pub lane_slowdowns: usize,
    /// Whole-shard outages to inject across the cluster.
    pub shard_outages: usize,
    /// Fault start times are drawn uniformly from `[0, horizon)`.
    pub horizon_cycles: u64,
    /// Mean lane-crash / lane-slowdown duration; each window lasts
    /// `mean/2 + draw % mean` cycles (uniform in `[mean/2, 3*mean/2)`).
    pub mean_down_cycles: u64,
    /// Mean whole-shard outage duration, drawn the same way. `0`
    /// falls back to [`FaultSpec::mean_down_cycles`]. Outages and
    /// lane faults live on very different time scales in practice —
    /// a worker process restarts in moments, a rack stays dark — and
    /// the chaos gates need both at once.
    pub mean_outage_cycles: u64,
    /// Effective-clock multiplier for slowdown windows (clamped ≥ 2).
    pub slowdown_factor: u64,
}

impl FaultSpec {
    /// A spec that injects nothing (useful as a protected-run baseline
    /// carrier for retry/hedge/degraded settings alone).
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            lane_crashes: 0,
            lane_slowdowns: 0,
            shard_outages: 0,
            horizon_cycles: 1,
            mean_down_cycles: 1,
            mean_outage_cycles: 0,
            slowdown_factor: 2,
        }
    }

    /// Expands the spec into the concrete per-shard fault plan for a
    /// cluster of `lanes_per_shard.len()` shards. Pure: same spec +
    /// topology → byte-identical plan.
    ///
    /// # Panics
    ///
    /// Panics on an empty topology or a zero horizon.
    pub fn schedule(&self, lanes_per_shard: &[usize]) -> FaultPlan {
        assert!(!lanes_per_shard.is_empty(), "fault plan needs at least one shard");
        assert!(self.horizon_cycles > 0, "fault horizon must be positive");
        let shards = lanes_per_shard.len();
        let mean = self.mean_down_cycles.max(2);
        let outage_mean =
            if self.mean_outage_cycles == 0 { mean } else { self.mean_outage_cycles.max(2) };
        let mut rng = Lcg::new(self.seed);
        let draw_window = |rng: &mut Lcg, mean: u64| {
            let start = rng.next_u64() % self.horizon_cycles;
            let len = mean / 2 + rng.next_u64() % mean;
            (start, start.saturating_add(len.max(1)))
        };
        // Raw windows per (shard, lane): crash and slow separately.
        let mut crash: Vec<Vec<Vec<(u64, u64)>>> =
            lanes_per_shard.iter().map(|&l| vec![Vec::new(); l.max(1)]).collect();
        let mut slow: Vec<Vec<Vec<(u64, u64, u64)>>> =
            lanes_per_shard.iter().map(|&l| vec![Vec::new(); l.max(1)]).collect();
        let mut outages: Vec<Vec<(u64, u64)>> = vec![Vec::new(); shards];
        for _ in 0..self.lane_crashes {
            let (start, end) = draw_window(&mut rng, mean);
            let shard = (rng.next_u64() % shards as u64) as usize;
            let lane = (rng.next_u64() % crash[shard].len() as u64) as usize;
            crash[shard][lane].push((start, end));
        }
        for _ in 0..self.lane_slowdowns {
            let (start, end) = draw_window(&mut rng, mean);
            let shard = (rng.next_u64() % shards as u64) as usize;
            let lane = (rng.next_u64() % slow[shard].len() as u64) as usize;
            slow[shard][lane].push((start, end, self.slowdown_factor.max(2)));
        }
        for _ in 0..self.shard_outages {
            let (start, end) = draw_window(&mut rng, outage_mean);
            let shard = (rng.next_u64() % shards as u64) as usize;
            outages[shard].push((start, end));
            // An outage is a simultaneous crash of every lane.
            for lane_windows in &mut crash[shard] {
                lane_windows.push((start, end));
            }
        }
        let timelines = lanes_per_shard
            .iter()
            .zip(crash)
            .zip(slow)
            .map(|((&lanes, c), s)| FaultTimeline::build(lanes.max(1), c, s))
            .collect();
        for w in &mut outages {
            merge_windows(w);
        }
        FaultPlan { timelines, outages }
    }
}

/// Merges overlapping or touching `[start, end)` windows in place,
/// leaving a sorted, pairwise-disjoint, non-touching set.
fn merge_windows(windows: &mut Vec<(u64, u64)>) {
    windows.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(windows.len());
    for &(s, e) in windows.iter() {
        match merged.last_mut() {
            Some((_, le)) if s <= *le => *le = (*le).max(e),
            _ => merged.push((s, e)),
        }
    }
    *windows = merged;
}

/// The expanded fault schedule for a whole cluster: one
/// [`FaultTimeline`] per shard plus the merged per-shard outage
/// windows the health-aware router consults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    timelines: Vec<FaultTimeline>,
    outages: Vec<Vec<(u64, u64)>>,
}

impl FaultPlan {
    /// Number of shards the plan covers.
    pub fn shards(&self) -> usize {
        self.timelines.len()
    }

    /// The fault timeline of one shard (cloned; a timeline is owned by
    /// the shard engine that consumes it).
    pub fn shard_timeline(&self, shard: usize) -> FaultTimeline {
        self.timelines[shard].clone()
    }

    /// The merged `[start, end)` outage windows of one shard.
    pub fn outage_windows(&self, shard: usize) -> &[(u64, u64)] {
        &self.outages[shard]
    }

    /// Whether `shard` is outside all of its outage windows at `t`.
    pub fn is_shard_up(&self, shard: usize, t: u64) -> bool {
        !inside(&self.outages[shard], t)
    }

    /// Whether **any** shard is inside an outage window at `t` — the
    /// router's cheap "all healthy" fast path.
    pub fn any_shard_down(&self, t: u64) -> bool {
        (0..self.shards()).any(|s| !self.is_shard_up(s, t))
    }
}

/// Binary search: is `t` inside any of the sorted, disjoint
/// `[start, end)` windows?
fn inside(windows: &[(u64, u64)], t: u64) -> bool {
    match windows.partition_point(|&(s, _)| s <= t) {
        0 => false,
        i => t < windows[i - 1].1,
    }
}

/// Which edge of a fault window a [`TimelineEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WindowEdge {
    /// A crash window opens: the lane dies, in-flight work cancels.
    CrashStart,
    /// A crash window closes: the lane returns, **cold**.
    CrashEnd,
    /// A slowdown window opens.
    SlowStart,
    /// A slowdown window closes.
    SlowEnd,
}

/// One edge of a fault window on one lane, in engine-consumable form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Simulated cycle the edge fires at.
    pub time: u64,
    /// The lane the window belongs to.
    pub lane: usize,
    /// Which edge this is.
    pub edge: WindowEdge,
    /// Full window length in cycles (same value on both edges).
    pub duration: u64,
    /// Slowdown factor (0 for crash windows).
    pub factor: u64,
}

/// One shard's fault schedule: merged per-lane crash and slowdown
/// windows, plus the flattened edge-event stream the engine steps
/// through with a cursor. Immutable once built; all queries are
/// allocation-free binary searches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultTimeline {
    lanes: usize,
    /// Per-lane merged crash windows, sorted and disjoint.
    down: Vec<Vec<(u64, u64)>>,
    /// Per-lane merged slowdown windows `(start, end, factor)`.
    slow: Vec<Vec<(u64, u64, u64)>>,
    /// Every window edge, sorted by `(time, lane, edge)`.
    events: Vec<TimelineEvent>,
}

impl FaultTimeline {
    /// A timeline with no faults at all, for `lanes` lanes.
    pub fn quiet(lanes: usize) -> Self {
        Self::build(lanes.max(1), vec![Vec::new(); lanes.max(1)], vec![Vec::new(); lanes.max(1)])
    }

    fn build(
        lanes: usize,
        mut crash: Vec<Vec<(u64, u64)>>,
        raw_slow: Vec<Vec<(u64, u64, u64)>>,
    ) -> Self {
        for w in &mut crash {
            merge_windows(w);
        }
        // Merge overlapping slowdowns, keeping the worst factor.
        let slow: Vec<Vec<(u64, u64, u64)>> = raw_slow
            .into_iter()
            .map(|mut windows| {
                windows.sort_unstable();
                let mut merged: Vec<(u64, u64, u64)> = Vec::with_capacity(windows.len());
                for (s, e, f) in windows {
                    match merged.last_mut() {
                        Some((_, le, lf)) if s <= *le => {
                            *le = (*le).max(e);
                            *lf = (*lf).max(f);
                        }
                        _ => merged.push((s, e, f)),
                    }
                }
                merged
            })
            .collect();
        let mut events = Vec::new();
        for (lane, windows) in crash.iter().enumerate() {
            for &(s, e) in windows {
                let duration = e - s;
                events.push(TimelineEvent {
                    time: s,
                    lane,
                    edge: WindowEdge::CrashStart,
                    duration,
                    factor: 0,
                });
                events.push(TimelineEvent {
                    time: e,
                    lane,
                    edge: WindowEdge::CrashEnd,
                    duration,
                    factor: 0,
                });
            }
        }
        for (lane, windows) in slow.iter().enumerate() {
            for &(s, e, f) in windows {
                let duration = e - s;
                events.push(TimelineEvent {
                    time: s,
                    lane,
                    edge: WindowEdge::SlowStart,
                    duration,
                    factor: f,
                });
                events.push(TimelineEvent {
                    time: e,
                    lane,
                    edge: WindowEdge::SlowEnd,
                    duration,
                    factor: f,
                });
            }
        }
        events.sort_by_key(|e| (e.time, e.lane, e.edge));
        Self { lanes, down: crash, slow, events }
    }

    /// Lane count the timeline was built for.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The full edge-event stream, sorted by `(time, lane, edge)`.
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// The merged `[start, end)` crash windows of `lane` (shard
    /// outages included) — what the chaos property test replays to
    /// check that no served batch overlapped a down window.
    pub fn lane_down_windows(&self, lane: usize) -> &[(u64, u64)] {
        &self.down[lane]
    }

    /// Whether `lane` is inside a crash window at `t`.
    pub fn is_lane_down(&self, lane: usize, t: u64) -> bool {
        inside(&self.down[lane], t)
    }

    /// The earliest cycle `>= t` at which `lane` is up: `t` itself
    /// outside every crash window, else the end of the window
    /// containing `t` (windows are merged, so the end is up).
    pub fn next_up_time(&self, lane: usize, t: u64) -> u64 {
        match self.down[lane].partition_point(|&(s, _)| s <= t) {
            0 => t,
            i if t < self.down[lane][i - 1].1 => self.down[lane][i - 1].1,
            _ => t,
        }
    }

    /// The slowdown multiplier in effect on `lane` at `t` (1 outside
    /// every slowdown window).
    pub fn slow_factor_at(&self, lane: usize, t: u64) -> u64 {
        let windows = &self.slow[lane];
        match windows.partition_point(|&(s, _, _)| s <= t) {
            0 => 1,
            i if t < windows[i - 1].1 => windows[i - 1].2.max(1),
            _ => 1,
        }
    }
}

/// Bounded-attempt, deadline-aware retry for crash-cancelled requests.
///
/// A request whose batch is cancelled by a lane crash has consumed one
/// dispatch attempt; the policy either schedules another attempt after
/// an exponential backoff (`backoff_base << (attempts - 1)` cycles) or
/// abandons the request as [`crate::RequestOutcome::Failed`] — when
/// attempts are exhausted, or when the retry could not start before
/// the request's deadline anyway (wasted capacity helps nobody).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum total dispatch attempts per request (0 disables
    /// retries entirely: every cancelled request fails).
    pub max_attempts: u32,
    /// Backoff before retry `n` is `base << (n-1)` simulated cycles.
    pub backoff_base_cycles: u64,
    /// Per-request deadline in cycles after arrival; a retry scheduled
    /// past `arrival + deadline` is abandoned. 0 disables the check.
    pub deadline_cycles: u64,
}

impl Default for RetryPolicy {
    /// Three attempts, 1k-cycle base backoff, no deadline.
    fn default() -> Self {
        Self { max_attempts: 3, backoff_base_cycles: 1_000, deadline_cycles: 0 }
    }
}

impl RetryPolicy {
    /// Decides the fate of a request whose batch was cancelled at
    /// `now` after `attempts` consumed dispatch attempts: `Some(t)`
    /// schedules the retry at `t`, `None` abandons the request.
    pub fn next_retry(&self, now: u64, arrival: u64, attempts: u32) -> Option<u64> {
        if attempts >= self.max_attempts {
            return None;
        }
        let shift = attempts.saturating_sub(1).min(32);
        let t = now.saturating_add(self.backoff_base_cycles << shift);
        if self.deadline_cycles > 0 && t > arrival.saturating_add(self.deadline_cycles) {
            return None;
        }
        Some(t)
    }
}

/// Hedged dispatch: when a batch's queueing age exceeds
/// `age_factor ×` the learned service estimate for its model, the
/// engine dispatches it on **two** lanes and keeps the faster copy.
/// The loser's lane time is charged as wasted capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HedgePolicy {
    /// Hedge when `age > age_factor * predicted_service` (and a
    /// second active lane exists).
    pub age_factor: u64,
}

/// Graceful degradation under sustained capacity loss: while at least
/// one lane is down **and** the backlog has built past the threshold,
/// arrivals for best-effort models are shed at admission so strict
/// models keep their latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedMode {
    /// Enter degraded mode when `backlog >= backlog_threshold` with a
    /// lane down; leave it when either condition clears.
    pub backlog_threshold: usize,
    /// Model indexes (into the run's model list) shed while degraded.
    pub best_effort: Vec<usize>,
}

/// Everything fault-related one run is configured with: the schedule
/// plus the recovery machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultConfig {
    /// The seeded fault schedule.
    pub spec: FaultSpec,
    /// Retry policy for crash-cancelled requests.
    pub retry: RetryPolicy,
    /// Optional hedged dispatch for aged batches.
    pub hedge: Option<HedgePolicy>,
    /// Optional degraded-mode load shedding.
    pub degraded: Option<DegradedMode>,
    /// Whether the cluster router tracks shard health and fails
    /// arrivals over to surviving shards during outages.
    pub failover: bool,
}

impl FaultConfig {
    /// A fully protected configuration over `spec`: default retries,
    /// failover on, no hedging, no degraded mode.
    pub fn protected(spec: FaultSpec) -> Self {
        Self { spec, retry: RetryPolicy::default(), hedge: None, degraded: None, failover: true }
    }

    /// An unprotected configuration over `spec`: no retries (every
    /// cancelled request fails), no failover, no hedging, no
    /// degraded mode — the chaos baseline that must visibly hurt.
    pub fn unprotected(spec: FaultSpec) -> Self {
        Self {
            spec,
            retry: RetryPolicy { max_attempts: 0, backoff_base_cycles: 1, deadline_cycles: 0 },
            hedge: None,
            degraded: None,
            failover: false,
        }
    }
}

/// The engine's pending-retry queue: crash-cancelled requests waiting
/// out their backoff, popping in `(retry time, insertion slot)` order.
///
/// Entries live in a slab with a free list, so steady-state churn
/// (schedule → pop → schedule) allocates nothing once the slab has
/// grown to the high-water mark — pinned by the counting-allocator
/// test alongside the rest of the fault bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct RetryQueue {
    wheel: TimerWheel<usize>,
    slab: Vec<(Request, u32)>,
    free: Vec<usize>,
}

impl RetryQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pending retries.
    pub fn len(&self) -> usize {
        self.wheel.len()
    }

    /// Whether no retries are pending.
    pub fn is_empty(&self) -> bool {
        self.wheel.is_empty()
    }

    /// Slab slots currently allocated (the high-water mark).
    pub fn capacity(&self) -> usize {
        self.slab.len()
    }

    /// Schedules `request` for another dispatch attempt at `time`,
    /// with `attempts` dispatch attempts already consumed.
    pub fn schedule(&mut self, time: u64, request: Request, attempts: u32) {
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = (request, attempts);
                slot
            }
            None => {
                self.slab.push((request, attempts));
                self.slab.len() - 1
            }
        };
        self.wheel.push(time, slot);
    }

    /// The earliest pending retry time, without mutating the queue.
    pub fn peek_time(&self) -> Option<u64> {
        self.wheel.peek_next_event_cycle()
    }

    /// Removes and returns the earliest pending retry as
    /// `(time, request, consumed attempts)`.
    pub fn pop(&mut self) -> Option<(u64, Request, u32)> {
        let (time, slot) = self.wheel.pop()?;
        let (request, attempts) = self.slab[slot];
        self.free.push(slot);
        Some((time, request, attempts))
    }
}

/// Live per-engine fault state: the timeline cursor, the retry queue,
/// per-request attempt counts, the per-lane health table and the
/// accumulating [`FaultStats`]. Owned by the engine; every mutation
/// happens at a simulated event, keeping serial and parallel drivers
/// byte-identical.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    pub(crate) config: FaultConfig,
    pub(crate) timeline: FaultTimeline,
    /// Next unconsumed index into `timeline.events()`.
    pub(crate) cursor: usize,
    pub(crate) retries: RetryQueue,
    /// Dispatch attempts consumed, indexed by request id.
    pub(crate) attempts: Vec<u32>,
    /// Batch ids dispatched and not yet completed/cancelled, per lane.
    pub(crate) lane_active: Vec<Vec<usize>>,
    /// Requests abandoned as `Failed`, per model.
    pub(crate) failed_per_model: Vec<u64>,
    /// Health table: whether each lane is currently inside a crash
    /// window.
    pub(crate) down: Vec<bool>,
    pub(crate) down_count: usize,
    /// When the current degraded interval opened, if degraded now.
    pub(crate) degraded_since: Option<u64>,
    pub(crate) stats: FaultStats,
}

impl FaultState {
    pub(crate) fn new(config: FaultConfig, timeline: FaultTimeline, models: usize) -> Self {
        let lanes = timeline.lanes();
        let stats = FaultStats {
            lane_downtime_cycles: vec![0; lanes],
            lane_recovery_counts: vec![0; lanes],
            ..FaultStats::default()
        };
        Self {
            config,
            timeline,
            cursor: 0,
            retries: RetryQueue::new(),
            attempts: Vec::new(),
            lane_active: vec![Vec::new(); lanes],
            failed_per_model: vec![0; models],
            down: vec![false; lanes],
            down_count: 0,
            degraded_since: None,
            stats,
        }
    }

    /// The next unconsumed timeline edge's time, if any remain.
    pub(crate) fn next_fault_time(&self) -> Option<u64> {
        self.timeline.events().get(self.cursor).map(|e| e.time)
    }

    /// Whether a best-effort `model` should be shed at admission right
    /// now (degraded mode active and the model listed).
    pub(crate) fn sheds(&self, model: usize) -> bool {
        self.degraded_since.is_some()
            && self.config.degraded.as_ref().is_some_and(|d| d.best_effort.contains(&model))
    }

    /// Re-evaluates degraded mode against the current backlog at
    /// `now`, accumulating degraded cycles on transitions. Call at the
    /// top of every simulated-event handler.
    pub(crate) fn update_degraded(&mut self, now: u64, backlog: usize) {
        let Some(degraded) = &self.config.degraded else {
            return;
        };
        let active = self.down_count > 0 && backlog >= degraded.backlog_threshold;
        match (self.degraded_since, active) {
            (None, true) => self.degraded_since = Some(now),
            (Some(since), false) => {
                self.stats.degraded_cycles += now.saturating_sub(since);
                self.degraded_since = None;
            }
            _ => {}
        }
    }

    /// Closes any open degraded interval at `end` and returns the
    /// finished stats (called once, at report assembly).
    pub(crate) fn finish(mut self, end: u64) -> FaultStats {
        if let Some(since) = self.degraded_since.take() {
            self.stats.degraded_cycles += end.saturating_sub(since);
        }
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            lane_crashes: 6,
            lane_slowdowns: 4,
            shard_outages: 2,
            horizon_cycles: 1_000_000,
            mean_down_cycles: 50_000,
            mean_outage_cycles: 0,
            slowdown_factor: 3,
        }
    }

    #[test]
    fn schedule_is_pure_and_seed_sensitive() {
        let topo = [2usize, 3];
        let a = spec(7).schedule(&topo);
        let b = spec(7).schedule(&topo);
        assert_eq!(a, b, "same seed + topology must reproduce the plan");
        let c = spec(8).schedule(&topo);
        assert_ne!(a, c, "a different seed must move the schedule");
    }

    #[test]
    fn windows_merge_disjoint_and_sorted() {
        let mut w = vec![(50, 60), (10, 20), (15, 30), (30, 40), (90, 95)];
        merge_windows(&mut w);
        assert_eq!(w, vec![(10, 40), (50, 60), (90, 95)]);
    }

    #[test]
    fn timeline_edges_alternate_per_lane() {
        let plan = spec(3).schedule(&[2, 2, 2]);
        for shard in 0..plan.shards() {
            let tl = plan.shard_timeline(shard);
            for lane in 0..tl.lanes() {
                let mut down = false;
                for e in tl.events().iter().filter(|e| e.lane == lane && e.factor == 0) {
                    match e.edge {
                        WindowEdge::CrashStart => {
                            assert!(!down, "CrashStart on an already-down lane");
                            down = true;
                        }
                        WindowEdge::CrashEnd => {
                            assert!(down, "CrashEnd on an up lane");
                            down = false;
                        }
                        _ => {}
                    }
                }
                assert!(!down, "every crash window must close");
            }
        }
    }

    #[test]
    fn down_queries_match_windows() {
        let plan = spec(11).schedule(&[3]);
        let tl = plan.shard_timeline(0);
        for lane in 0..tl.lanes() {
            for &(s, e) in tl.lane_down_windows(lane) {
                assert!(tl.is_lane_down(lane, s));
                assert!(tl.is_lane_down(lane, e - 1));
                assert!(!tl.is_lane_down(lane, e));
                assert_eq!(tl.next_up_time(lane, s), e);
                assert_eq!(tl.next_up_time(lane, e), e);
                if s > 0 {
                    assert_eq!(tl.next_up_time(lane, s - 1), s - 1);
                }
            }
        }
    }

    #[test]
    fn outage_downs_every_lane_of_the_shard() {
        let mut s = spec(5);
        s.lane_crashes = 0;
        s.lane_slowdowns = 0;
        s.shard_outages = 1;
        let plan = s.schedule(&[2, 2]);
        let hit: Vec<usize> = (0..2).filter(|&sh| !plan.outage_windows(sh).is_empty()).collect();
        assert_eq!(hit.len(), 1, "exactly one shard drew the outage");
        let shard = hit[0];
        let (start, end) = plan.outage_windows(shard)[0];
        let tl = plan.shard_timeline(shard);
        for lane in 0..tl.lanes() {
            assert!(tl.is_lane_down(lane, start));
            assert!(!tl.is_lane_down(lane, end));
        }
        assert!(!plan.is_shard_up(shard, start));
        assert!(plan.is_shard_up(shard, end));
        assert!(plan.any_shard_down(start));
    }

    /// Outages draw their duration from `mean_outage_cycles` when it
    /// is set, without disturbing the lane-fault draws: same seed,
    /// same start times, same crash/slowdown windows — only the
    /// outage window lengths stretch.
    #[test]
    fn outage_mean_decouples_from_lane_fault_mean() {
        let mut short = spec(5);
        short.shard_outages = 2;
        let mut long = short.clone();
        long.mean_outage_cycles = short.mean_down_cycles * 40;
        let a = short.schedule(&[2, 2]);
        let b = long.schedule(&[2, 2]);
        for shard in 0..2 {
            let wa = a.outage_windows(shard);
            let wb = b.outage_windows(shard);
            assert_eq!(wa.len(), wb.len(), "outage placement must not move");
            for (&(sa, ea), &(sb, eb)) in wa.iter().zip(wb) {
                assert_eq!(sa, sb, "outage start times share the draw sequence");
                assert!(eb - sb > ea - sa, "long outage mean must stretch the window");
            }
        }
        // `0` keeps today's behaviour: fall back to the lane mean.
        let mut explicit = short.clone();
        explicit.mean_outage_cycles = short.mean_down_cycles;
        assert_eq!(short.schedule(&[2, 2]), explicit.schedule(&[2, 2]));
    }

    #[test]
    fn slow_factor_applies_inside_windows_only() {
        let tl = FaultTimeline::build(
            2,
            vec![Vec::new(), Vec::new()],
            vec![vec![(100, 200, 3), (150, 300, 4)], Vec::new()],
        );
        assert_eq!(tl.slow_factor_at(0, 99), 1);
        assert_eq!(tl.slow_factor_at(0, 100), 4, "overlap keeps the worst factor");
        assert_eq!(tl.slow_factor_at(0, 299), 4);
        assert_eq!(tl.slow_factor_at(0, 300), 1);
        assert_eq!(tl.slow_factor_at(1, 150), 1);
    }

    #[test]
    fn retry_policy_backoff_and_deadline() {
        let p = RetryPolicy { max_attempts: 3, backoff_base_cycles: 100, deadline_cycles: 0 };
        assert_eq!(p.next_retry(1_000, 0, 1), Some(1_100));
        assert_eq!(p.next_retry(1_000, 0, 2), Some(1_200));
        assert_eq!(p.next_retry(1_000, 0, 3), None, "attempt budget exhausted");
        let d = RetryPolicy { max_attempts: 5, backoff_base_cycles: 100, deadline_cycles: 500 };
        assert_eq!(d.next_retry(300, 0, 1), Some(400));
        assert_eq!(d.next_retry(450, 0, 1), None, "retry would land past the deadline");
        let off = RetryPolicy { max_attempts: 0, backoff_base_cycles: 1, deadline_cycles: 0 };
        assert_eq!(off.next_retry(0, 0, 1), None, "max_attempts 0 disables retries");
    }

    #[test]
    fn retry_queue_pops_in_time_order_and_reuses_slots() {
        let mut q = RetryQueue::new();
        let r = |id| Request { id, model: 0, arrival: 0, act_seed: 0 };
        q.schedule(300, r(3), 1);
        q.schedule(100, r(1), 1);
        q.schedule(200, r(2), 2);
        assert_eq!(q.peek_time(), Some(100));
        assert_eq!(q.pop().map(|(t, req, a)| (t, req.id, a)), Some((100, 1, 1)));
        let high_water = q.capacity();
        q.schedule(50, r(4), 3);
        assert_eq!(q.capacity(), high_water, "freed slot is reused, no slab growth");
        assert_eq!(q.pop().map(|(t, req, _)| (t, req.id)), Some((50, 4)));
        assert_eq!(q.pop().map(|(t, req, _)| (t, req.id)), Some((200, 2)));
        assert_eq!(q.pop().map(|(t, req, _)| (t, req.id)), Some((300, 3)));
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
