//! Layer-pipelined execution plans: SCNN-style stage dataflow across
//! lanes.
//!
//! A monolithic serving fleet executes every inference as one
//! lane-occupancy block, so a deep model serializes a whole lane per
//! batch and a mixed fleet idles while a long model hogs its lane. A
//! [`PipelinePlan`] instead partitions a model into K contiguous layer
//! **stages**, pins each stage to a distinct lane, and lets a batch
//! flow through the stage lanes in order — stage `s` of batch `b`
//! overlaps stage `s+1` of batch `b-1`, the tiled dataflow SCNN
//! (Parashar et al., ISCA'17) uses to keep heterogeneous compute
//! saturated.
//!
//! The partitioner works in two deterministic steps:
//!
//! 1. **Calibrate** — every distinct lane configuration simulates each
//!    layer once at batch 1 (a pure probe: the cycle numbers feed the
//!    cost model, nothing enters the serving report), and the
//!    measurements seed the run's [`ServiceEstimator`] under per-stage
//!    keys.
//! 2. **Split + place jointly** — an exact dynamic program over
//!    `(layers covered, lanes consumed per scope)` cuts the layer list
//!    into at most K contiguous ranges *and* picks each range's lane
//!    scope at once, minimizing the bottleneck stage (the steady-state
//!    pipeline period). Sizing each stage to the speed of the lane
//!    that will run it is what makes the **cross-arch** pipeline fall
//!    out: dense-leaning early convs land on the SA-ZVCG lanes while
//!    the sparse-heavy tail lands on S2TA-AW. (Splitting first and
//!    placing after — e.g. with the single-cost-vector
//!    [`s2ta_core::ModelPlan::stage_split`], the right tool on a
//!    homogeneous fleet — plants balanced stages on slow lanes and
//!    the bottleneck blows up.)
//!
//! Stage boundaries also carry a cost: the receiving layer's `K x N`
//! activation matrix must move between lanes, priced at the receiving
//! lane's DMA rate ([`PipelinePlan::handoff_cycles`]). The serving
//! engine bounds the activations queued at each boundary
//! ([`crate::Fleet::with_pipeline_queue_capacity`]), so an upstream
//! stage stalls instead of running unboundedly ahead of a slow
//! consumer.

use crate::fleet::Lane;
use crate::scheduler::ServiceEstimator;
use s2ta_core::{pool, stage_handoff_bytes, WeightResidency};
use s2ta_models::ModelSpec;
use std::ops::Range;

/// One pipeline stage: a contiguous layer range pinned to a lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageAssignment {
    /// The layers this stage executes, in order.
    pub layers: Range<usize>,
    /// The fleet lane the stage is pinned to.
    pub lane: usize,
}

/// A model's layer-pipeline: K contiguous stages, each pinned to a
/// distinct lane, plus the inter-stage activation handoff costs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelinePlan {
    model: usize,
    stages: Vec<StageAssignment>,
    /// `handoff_cycles[s]`: DMA cycles to move stage `s`'s output
    /// activations onto stage `s+1`'s lane (len = stages - 1).
    handoff_cycles: Vec<u64>,
}

impl PipelinePlan {
    /// Partitions `model` into at most `stages` stages over `lanes`,
    /// balanced and assigned by calibrated per-stage service estimates
    /// (see the module docs for the three steps). The calibration
    /// measurements are recorded into `estimator` under per-stage keys,
    /// so the run's own completions refine them later.
    ///
    /// The stage count is clamped to the lane count (stages occupy
    /// distinct lanes) and the layer count (a stage is never empty).
    ///
    /// # Panics
    ///
    /// Panics if `stages` is zero, `lanes` is empty, or the model has
    /// no layers.
    pub(crate) fn partition(
        lanes: &[Lane],
        model_index: usize,
        model: &ModelSpec,
        stages: usize,
        weight_seed: u64,
        estimator: &mut ServiceEstimator,
        host_parallelism: Option<usize>,
    ) -> Self {
        assert!(stages > 0, "a pipeline needs at least one stage");
        assert!(!lanes.is_empty(), "a pipeline needs at least one lane");
        let k = stages.min(lanes.len()).min(model.layers.len());

        // 1. Calibrate: one batch-1 probe of every layer per distinct
        // lane configuration. Probes are pure simulations; only their
        // cycle counts survive, as estimator seeds. They run through
        // the allocation-free `run_stage_events` hot loop (arenas from
        // the fleet's scratch pool), so the probes also warm the
        // fleet's shared activation-profile cache for the calibration
        // seed, and the `(scope, layer)` grid fans out over the
        // persistent host executor — capped at the fleet's host
        // parallelism, so a serial fleet probes serially and its cache
        // counters stay exactly reproducible. Layers are probed at
        // **resident** weight residency — the pipeline's steady state:
        // a pinned stage lane streams its weights once and then keeps
        // them in SRAM across the whole run, so pricing memory-bound
        // FC/depthwise layers at their cold streamed cost would wildly
        // over-weight them in the split.
        let mut scope_reps: Vec<usize> = Vec::new();
        for (l, lane) in lanes.iter().enumerate() {
            let config = lane.accelerator().config();
            if !scope_reps.iter().any(|&r| lanes[r].accelerator().config() == config) {
                scope_reps.push(l);
            }
        }
        let plans: Vec<_> = scope_reps
            .iter()
            .map(|&r| lanes[r].accelerator().plan_model(model, weight_seed))
            .collect();
        let n_layers = model.layers.len();
        let jobs: Vec<usize> = (0..scope_reps.len() * n_layers).collect();
        let cycles = pool::Executor::global().map_capped(&jobs, host_parallelism, |&j| {
            let (s, i) = (j / n_layers, j % n_layers);
            let lane = &lanes[scope_reps[s]];
            let mut scratch = lane.scratch().checkout();
            let events = lane.accelerator().run_stage_events(
                &plans[s],
                model,
                i..i + 1,
                weight_seed,
                WeightResidency::Resident,
                &mut scratch,
            );
            lane.scratch().restore(scratch);
            events.cycles
        });
        let probes: Vec<Vec<u64>> = cycles.chunks(n_layers).map(<[u64]>::to_vec).collect();

        // 2+3. Split and place **jointly**: an exact DP over (layers
        // covered, lanes consumed per scope) that minimizes the
        // bottleneck stage — the steady-state pipeline period — with
        // total service and stage count as lexicographic tie-breaks.
        // Splitting first and placing after (e.g. balancing by the
        // best-arch cost) plants balanced stages on slow lanes and the
        // bottleneck blows up; the joint DP instead sizes each stage to
        // the speed of the lane that will run it, which is where the
        // cross-arch pipeline (dense-leaning stages on SA lanes,
        // sparse-heavy stages on S2TA lanes) falls out.
        let (split, scope_of_stage) = joint_split(&probes, &scope_counts(lanes, &scope_reps), k);

        // Seed the estimator with the calibrated per-stage costs.
        for (scope, &rep) in scope_reps.iter().enumerate() {
            let arch = lanes[rep].arch();
            for range in &split {
                let cycles: u64 = range.clone().map(|i| probes[scope][i]).sum();
                estimator.record_stage(arch, model_index, range, 1, cycles);
            }
        }

        // Materialize scopes into concrete lanes, in lane-index order
        // within each scope (deterministic).
        let mut next_of_scope: Vec<usize> = vec![0; scope_reps.len()];
        let lane_of: Vec<usize> = scope_of_stage
            .iter()
            .map(|&scope| {
                let config = lanes[scope_reps[scope]].accelerator().config();
                let lane = lanes
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| l.accelerator().config() == config)
                    .map(|(i, _)| i)
                    .nth(next_of_scope[scope])
                    .expect("DP never over-consumes a scope");
                next_of_scope[scope] += 1;
                lane
            })
            .collect();

        // Boundary handoffs: the receiving layer's activation matrix at
        // the receiving lane's DMA rate.
        let handoff_cycles = (1..split.len())
            .map(|s| {
                let bytes = stage_handoff_bytes(model, split[s].start);
                let rate = lanes[lane_of[s]].accelerator().config().dma_bytes_per_cycle;
                bytes.div_ceil(rate.max(1))
            })
            .collect();

        let stages = split
            .into_iter()
            .zip(lane_of)
            .map(|(layers, lane)| StageAssignment { layers, lane })
            .collect();
        Self { model: model_index, stages, handoff_cycles }
    }

    /// The model index (into the fleet's model list) this plan
    /// partitions.
    pub fn model(&self) -> usize {
        self.model
    }

    /// The stages, in execution order. Every stage holds a distinct
    /// lane, and the layer ranges tile `0..layers` in order.
    pub fn stages(&self) -> &[StageAssignment] {
        &self.stages
    }

    /// DMA cycles to hand stage `s`'s output activations to stage
    /// `s+1`'s lane (`len == stages - 1`).
    pub fn handoff_cycles(&self) -> &[u64] {
        &self.handoff_cycles
    }
}

/// How many lanes of each distinct scope the fleet has, aligned with
/// `scope_reps`.
fn scope_counts(lanes: &[Lane], scope_reps: &[usize]) -> Vec<usize> {
    scope_reps
        .iter()
        .map(|&r| {
            let config = lanes[r].accelerator().config();
            lanes.iter().filter(|l| l.accelerator().config() == config).count()
        })
        .collect()
}

/// Jointly splits `0..n` layers into at most `max_stages` contiguous
/// stages **and** sizes each stage to the lane scope that will run it:
/// exact dynamic programming over `(layers covered, lanes consumed per
/// scope)`, minimizing `(bottleneck stage cycles, total cycles, stage
/// count)` lexicographically. `probes[scope][layer]` prices each layer
/// on each scope; `counts[scope]` bounds how many stages a scope can
/// host (one lane each).
///
/// Returns the stage ranges (tiling `0..n` in order) and each stage's
/// scope. Deterministic: state iteration order is fixed and ties keep
/// the first (lowest-encoded) solution.
fn joint_split(
    probes: &[Vec<u64>],
    counts: &[usize],
    max_stages: usize,
) -> (Vec<Range<usize>>, Vec<usize>) {
    let n = probes[0].len();
    let scopes = probes.len();
    let prefix: Vec<Vec<u64>> = probes
        .iter()
        .map(|p| {
            let mut pre = vec![0u64; n + 1];
            for (i, &c) in p.iter().enumerate() {
                pre[i + 1] = pre[i].saturating_add(c);
            }
            pre
        })
        .collect();
    // Mixed-radix encoding of per-scope consumption.
    let mut stride = vec![1usize; scopes];
    for s in 1..scopes {
        stride[s] = stride[s - 1] * (counts[s - 1] + 1);
    }
    let states: usize = stride[scopes - 1] * (counts[scopes - 1] + 1);
    // (bottleneck, total service, stages used); lexicographic order is
    // exactly the preference order.
    const INF: (u64, u64, usize) = (u64::MAX, u64::MAX, usize::MAX);
    let mut dp = vec![vec![INF; states]; n + 1];
    // (previous layer boundary, previous state, scope of the stage).
    let mut parent = vec![vec![(0usize, 0usize, 0usize); states]; n + 1];
    dp[0][0] = (0, 0, 0);
    for i in 0..n {
        for state in 0..states {
            let cur = dp[i][state];
            if cur == INF || cur.2 == max_stages {
                continue;
            }
            for scope in 0..scopes {
                let used = state / stride[scope] % (counts[scope] + 1);
                if used == counts[scope] {
                    continue;
                }
                let nstate = state + stride[scope];
                for j in (i + 1)..=n {
                    let cost = prefix[scope][j] - prefix[scope][i];
                    let cand = (cur.0.max(cost), cur.1.saturating_add(cost), cur.2 + 1);
                    if cand < dp[j][nstate] {
                        dp[j][nstate] = cand;
                        parent[j][nstate] = (i, state, scope);
                    }
                }
            }
        }
    }
    let mut state = (0..states)
        .filter(|&s| dp[n][s] != INF)
        .min_by_key(|&s| (dp[n][s], s))
        .expect("one stage always covers the whole model");
    let mut i = n;
    let mut rev: Vec<(Range<usize>, usize)> = Vec::new();
    while i > 0 {
        let (pi, ps, scope) = parent[i][state];
        rev.push((pi..i, scope));
        i = pi;
        state = ps;
    }
    rev.reverse();
    rev.into_iter().unzip()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetSpec;
    use crate::Fleet;
    use s2ta_core::ArchKind;
    use s2ta_models::{lenet5, mobilenet_v1};

    fn partition(
        fleet: &Fleet,
        model: &ModelSpec,
        stages: usize,
    ) -> (PipelinePlan, ServiceEstimator) {
        let mut estimator = ServiceEstimator::new();
        let plan =
            PipelinePlan::partition(fleet.lanes(), 0, model, stages, 42, &mut estimator, None);
        (plan, estimator)
    }

    #[test]
    fn stages_tile_the_model_on_distinct_lanes() {
        let fleet =
            Fleet::from_spec(FleetSpec::mixed(&[(ArchKind::S2taAw, 2), (ArchKind::SaZvcg, 2)]));
        let model = mobilenet_v1();
        for stages in [1usize, 2, 4] {
            let (plan, estimator) = partition(&fleet, &model, stages);
            let k = plan.stages().len();
            assert!(
                (1..=stages).contains(&k),
                "the DP may use fewer stages, never more: {k} vs {stages}"
            );
            assert_eq!(plan.handoff_cycles().len(), k - 1);
            assert_eq!(plan.stages()[0].layers.start, 0);
            assert_eq!(plan.stages().last().unwrap().layers.end, model.layers.len());
            for pair in plan.stages().windows(2) {
                assert_eq!(pair[0].layers.end, pair[1].layers.start);
            }
            let mut lanes: Vec<usize> = plan.stages().iter().map(|s| s.lane).collect();
            lanes.sort_unstable();
            lanes.dedup();
            assert_eq!(lanes.len(), k, "stages must occupy distinct lanes");
            // Calibration seeded per-stage estimates for both archs.
            assert!(!estimator.is_empty());
            for stage in plan.stages() {
                for arch in [ArchKind::S2taAw, ArchKind::SaZvcg] {
                    assert!(
                        estimator.predict_stage(arch, 0, &stage.layers, 1).is_some(),
                        "calibration must seed {arch} for {:?}",
                        stage.layers
                    );
                }
            }
        }
        // One stage is always exactly one stage.
        let (single, _) = partition(&fleet, &model, 1);
        assert_eq!(single.stages().len(), 1);
        assert_eq!(single.stages()[0].layers, 0..model.layers.len());
    }

    #[test]
    fn stage_count_clamps_to_lanes_and_layers() {
        let fleet = Fleet::new(ArchKind::S2taAw, 2);
        let (plan, _) = partition(&fleet, &lenet5(), 8);
        assert!(plan.stages().len() <= 2, "stages clamp to the lane count");
        let wide = Fleet::new(ArchKind::S2taAw, 16);
        let (plan, _) = partition(&wide, &lenet5(), 16);
        assert!(plan.stages().len() <= 5, "stages clamp to the layer count");
        assert!(plan.stages().len() >= 2, "splitting strictly reduces the bottleneck here");
    }

    #[test]
    fn partition_is_deterministic() {
        let mk =
            || Fleet::from_spec(FleetSpec::mixed(&[(ArchKind::S2taAw, 2), (ArchKind::SaZvcg, 2)]));
        let model = mobilenet_v1();
        let (a, _) = partition(&mk(), &model, 4);
        let (b, _) = partition(&mk(), &model, 4);
        assert_eq!(a, b);
    }

    /// The joint DP on synthetic probe matrices: bottleneck-optimal,
    /// scope-aware sizing.
    #[test]
    fn joint_split_sizes_stages_to_their_scope() {
        // One scope, uniform costs: an even split.
        let uniform = vec![vec![1u64; 8]];
        let (ranges, scopes) = joint_split(&uniform, &[4], 4);
        assert_eq!(ranges.len(), 4);
        assert!(ranges.iter().all(|r| r.len() == 2), "{ranges:?}");
        assert!(scopes.iter().all(|&s| s == 0));

        // Two scopes, the second 3x slower, one lane each, uniform
        // work: the slow lane must get a smaller range. Optimum of 8
        // units over speeds (1x, 3x): 6 on the fast lane, 2 on the slow
        // one (bottleneck 6 = max(6*1, 2*3)).
        let fast = vec![1u64; 8];
        let slow = vec![3u64; 8];
        let (ranges, scopes) = joint_split(&[fast, slow], &[1, 1], 2);
        assert_eq!(ranges.len(), 2);
        let slow_stage = scopes.iter().position(|&s| s == 1).expect("slow lane used");
        assert_eq!(ranges[slow_stage].len(), 2, "{ranges:?} on {scopes:?}");

        // A dominant layer gets isolated.
        let (ranges, _) = joint_split(&[vec![100, 1, 1, 1]], &[4], 4);
        assert_eq!(ranges[0], 0..1, "{ranges:?}");

        // max_stages 1: one range, and the cheaper scope wins it.
        let (ranges, scopes) = joint_split(&[vec![2u64; 4], vec![1u64; 4]], &[1, 1], 1);
        assert_eq!(ranges, vec![0..4]);
        assert_eq!(scopes, vec![1], "the whole model goes to the faster scope");
    }

    /// Per-layer costs that *differ in shape* across scopes: the DP
    /// routes each region to the scope that is relatively fast on it —
    /// the cross-arch pipeline in miniature.
    #[test]
    fn joint_split_exploits_comparative_advantage() {
        // Scope 0 is fast on the tail, scope 1 on the head.
        let scope0 = vec![9, 9, 1, 1];
        let scope1 = vec![1, 1, 9, 9];
        let (ranges, scopes) = joint_split(&[scope0, scope1], &[1, 1], 2);
        assert_eq!(ranges, vec![0..2, 2..4]);
        assert_eq!(scopes, vec![1, 0], "each half runs where it is cheap");
    }

    /// On the real mixed fleet the same comparative advantage shows up:
    /// the sparse-heavy tail runs on S2TA-AW lanes, and the realized
    /// bottleneck never exceeds what a best-cost split naively placed
    /// on distinct lanes would suffer.
    #[test]
    fn mixed_fleet_pipeline_is_cross_arch() {
        let fleet =
            Fleet::from_spec(FleetSpec::mixed(&[(ArchKind::S2taAw, 2), (ArchKind::SaZvcg, 2)]));
        let model = mobilenet_v1();
        let (plan, estimator) = partition(&fleet, &model, 4);
        let arch_of = |lane: usize| fleet.lanes()[lane].arch();
        assert!(
            plan.stages().iter().any(|s| arch_of(s.lane) == ArchKind::S2taAw),
            "some stage must use the sparse lanes"
        );
        // Every stage runs within the bottleneck implied by its own
        // assigned-arch estimate; the bottleneck stage itself runs on
        // the architecture that is fastest *for it* among lanes its
        // scope had free — with both archs available, the DP never
        // assigns the bottleneck stage an arch that a free faster lane
        // beats by construction (it would have lowered the optimum).
        let cost = |s: &StageAssignment| {
            estimator.predict_stage(arch_of(s.lane), 0, &s.layers, 1).expect("calibrated")
        };
        let bottleneck = plan.stages().iter().map(cost).max().expect("has stages");
        // Whole-model cost on the fastest arch = the monolithic
        // bottleneck (one batch occupies one lane for the full model).
        let whole: u64 = plan
            .stages()
            .iter()
            .map(|s| {
                estimator.predict_stage(ArchKind::S2taAw, 0, &s.layers, 1).expect("calibrated")
            })
            .sum();
        assert!(
            bottleneck < whole,
            "pipelining must beat the best single-lane bottleneck: {bottleneck} vs {whole}"
        );
    }

    #[test]
    fn handoffs_price_the_boundary_activations() {
        let fleet = Fleet::new(ArchKind::S2taAw, 4);
        let model = lenet5();
        let (plan, _) = partition(&fleet, &model, 3);
        for (s, &cycles) in plan.handoff_cycles().iter().enumerate() {
            let boundary = plan.stages()[s + 1].layers.start;
            let bytes = s2ta_core::stage_handoff_bytes(&model, boundary);
            let rate =
                fleet.lanes()[plan.stages()[s + 1].lane].accelerator().config().dma_bytes_per_cycle;
            assert_eq!(cycles, bytes.div_ceil(rate));
        }
    }
}
