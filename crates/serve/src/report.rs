//! The serving report: per-request outcomes and fleet-level metrics.

use s2ta_energy::{EnergyBreakdown, TechParams};
use s2ta_sim::EventCounts;
use std::fmt;

/// The fate of one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestOutcome {
    /// Request id (dense, in arrival order).
    pub id: u64,
    /// Name of the model served.
    pub model: String,
    /// Arrival cycle.
    pub arrival: u64,
    /// Cycle the request's batch started executing.
    pub start: u64,
    /// Cycle the request's batch completed.
    pub completion: u64,
    /// Batch the request rode in.
    pub batch: usize,
    /// Worker lane that served the batch.
    pub worker: usize,
}

impl RequestOutcome {
    /// End-to-end latency in cycles (queueing + batching + service).
    pub fn latency_cycles(&self) -> u64 {
        self.completion - self.arrival
    }

    /// Cycles spent waiting before execution started.
    pub fn wait_cycles(&self) -> u64 {
        self.start - self.arrival
    }
}

/// Per-worker occupancy statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerStats {
    /// Cycles the lane spent executing batches.
    pub busy_cycles: u64,
    /// Batches the lane served.
    pub batches: usize,
    /// Requests the lane served.
    pub requests: usize,
}

impl WorkerStats {
    /// Busy fraction of the fleet makespan.
    pub fn utilization(&self, makespan_cycles: u64) -> f64 {
        if makespan_cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / makespan_cycles as f64
        }
    }
}

/// Everything a serving run produced.
///
/// The per-request outcomes and the placement-derived numbers (latency
/// percentiles, makespan, utilization) are deterministic for a fixed
/// `(workload seed, policy, worker count)`. The aggregate simulation
/// outputs — request count, batch set and [`ServeReport::total_events`]
/// (hence energy) — are additionally **independent of the worker
/// count**, because batch formation never looks at the fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Architecture the fleet ran.
    pub arch: String,
    /// Outcomes indexed by request id.
    pub outcomes: Vec<RequestOutcome>,
    /// Number of batches formed.
    pub batches: usize,
    /// Per-worker occupancy.
    pub workers: Vec<WorkerStats>,
    /// Aggregate simulated events over every batch.
    pub total_events: EventCounts,
    /// Cycle the last batch completed (0 for an empty run).
    pub makespan_cycles: u64,
}

impl ServeReport {
    /// Latency of the `pct`-th percentile request in cycles (nearest-rank
    /// on the sorted latencies).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < pct <= 100.0`.
    pub fn latency_percentile_cycles(&self, pct: f64) -> u64 {
        assert!(pct > 0.0 && pct <= 100.0, "percentile out of range: {pct}");
        if self.outcomes.is_empty() {
            return 0;
        }
        let mut lat: Vec<u64> = self.outcomes.iter().map(RequestOutcome::latency_cycles).collect();
        lat.sort_unstable();
        let rank = (pct / 100.0 * lat.len() as f64).ceil() as usize;
        lat[rank.clamp(1, lat.len()) - 1]
    }

    /// Median latency in cycles.
    pub fn p50_cycles(&self) -> u64 {
        self.latency_percentile_cycles(50.0)
    }

    /// 95th-percentile latency in cycles.
    pub fn p95_cycles(&self) -> u64 {
        self.latency_percentile_cycles(95.0)
    }

    /// 99th-percentile latency in cycles.
    pub fn p99_cycles(&self) -> u64 {
        self.latency_percentile_cycles(99.0)
    }

    /// Mean latency in cycles.
    pub fn mean_latency_cycles(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        let total: u64 = self.outcomes.iter().map(RequestOutcome::latency_cycles).sum();
        total as f64 / self.outcomes.len() as f64
    }

    /// Converts cycles to milliseconds at `tech`'s clock.
    pub fn cycles_to_ms(tech: &TechParams, cycles: u64) -> f64 {
        cycles as f64 / tech.clock_hz * 1e3
    }

    /// Completed inferences per second at `tech`'s clock.
    pub fn throughput_ips(&self, tech: &TechParams) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        self.outcomes.len() as f64 / (self.makespan_cycles as f64 / tech.clock_hz)
    }

    /// Aggregate energy of the run under `tech`.
    pub fn energy(&self, tech: &TechParams) -> EnergyBreakdown {
        EnergyBreakdown::of(&self.total_events, tech)
    }

    /// Mean energy per inference in microjoules under `tech`.
    pub fn uj_per_inference(&self, tech: &TechParams) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.energy(tech).total_pj() * 1e-6 / self.outcomes.len() as f64
    }

    /// Mean worker utilization over the makespan.
    pub fn mean_utilization(&self) -> f64 {
        if self.workers.is_empty() {
            return 0.0;
        }
        self.workers.iter().map(|w| w.utilization(self.makespan_cycles)).sum::<f64>()
            / self.workers.len() as f64
    }

    /// Mean requests per batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.outcomes.len() as f64 / self.batches as f64
    }

    /// A multi-line human-readable summary under `tech`.
    pub fn summary(&self, tech: &TechParams) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "ServeReport [{}]: {} requests in {} batches on {} workers\n",
            self.arch,
            self.outcomes.len(),
            self.batches,
            self.workers.len()
        ));
        s.push_str(&format!(
            "  throughput      {:>10.1} inf/s   (makespan {:.3} ms, mean batch {:.2})\n",
            self.throughput_ips(tech),
            Self::cycles_to_ms(tech, self.makespan_cycles),
            self.mean_batch_size()
        ));
        s.push_str(&format!(
            "  latency p50     {:>10.3} ms      (p95 {:.3} ms, p99 {:.3} ms, mean {:.3} ms)\n",
            Self::cycles_to_ms(tech, self.p50_cycles()),
            Self::cycles_to_ms(tech, self.p95_cycles()),
            Self::cycles_to_ms(tech, self.p99_cycles()),
            self.mean_latency_cycles() / tech.clock_hz * 1e3
        ));
        s.push_str(&format!(
            "  energy          {:>10.1} uJ      ({:.2} uJ/inference)\n",
            self.energy(tech).total_pj() * 1e-6,
            self.uj_per_inference(tech)
        ));
        s.push_str(&format!(
            "  utilization     {:>10.1} %       per worker:",
            self.mean_utilization() * 100.0
        ));
        for (i, w) in self.workers.iter().enumerate() {
            s.push_str(&format!(" w{i} {:.0}%", w.utilization(self.makespan_cycles) * 100.0));
        }
        s.push('\n');
        s
    }
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} requests, {} batches, {} workers, {} cycles makespan",
            self.arch,
            self.outcomes.len(),
            self.batches,
            self.workers.len(),
            self.makespan_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: u64, arrival: u64, completion: u64) -> RequestOutcome {
        RequestOutcome {
            id,
            model: "m".into(),
            arrival,
            start: arrival,
            completion,
            batch: id as usize,
            worker: 0,
        }
    }

    fn report(latencies: &[u64]) -> ServeReport {
        ServeReport {
            arch: "TEST".into(),
            outcomes: latencies.iter().enumerate().map(|(i, &l)| outcome(i as u64, 0, l)).collect(),
            batches: latencies.len(),
            workers: vec![WorkerStats { busy_cycles: 50, batches: 1, requests: 1 }],
            total_events: EventCounts { cycles: 100, ..Default::default() },
            makespan_cycles: 100,
        }
    }

    #[test]
    fn percentiles_nearest_rank() {
        let r = report(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(r.p50_cycles(), 50);
        assert_eq!(r.latency_percentile_cycles(10.0), 10);
        assert_eq!(r.p99_cycles(), 100);
        assert_eq!(r.latency_percentile_cycles(100.0), 100);
        assert!((r.mean_latency_cycles() - 55.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_calm() {
        let r = ServeReport {
            arch: "TEST".into(),
            outcomes: vec![],
            batches: 0,
            workers: vec![],
            total_events: EventCounts::default(),
            makespan_cycles: 0,
        };
        assert_eq!(r.p50_cycles(), 0);
        assert_eq!(r.mean_utilization(), 0.0);
        assert_eq!(r.mean_batch_size(), 0.0);
        let tech = TechParams::tsmc16();
        assert_eq!(r.throughput_ips(&tech), 0.0);
        assert_eq!(r.uj_per_inference(&tech), 0.0);
    }

    #[test]
    fn utilization_and_throughput() {
        let r = report(&[100]);
        assert!((r.workers[0].utilization(100) - 0.5).abs() < 1e-12);
        let tech = TechParams::tsmc16();
        // 1 request / (100 cycles / clock)
        let expect = tech.clock_hz / 100.0;
        assert!((r.throughput_ips(&tech) - expect).abs() < 1e-3);
        assert!(r.summary(&tech).contains("throughput"));
    }
}
