//! The serving report: per-request outcomes and fleet-level metrics.

use crate::trace::{Trace, TraceCell};
use s2ta_core::{ArchKind, CacheStats};
use s2ta_energy::{EnergyBreakdown, TechParams};
use s2ta_sim::EventCounts;
use std::fmt;
use std::sync::OnceLock;

/// One column of a [`render_table`] report table: header label, pad
/// width, and alignment (mirroring `format!`'s `{:<w}` / `{:>w}`).
pub(crate) struct Col {
    header: &'static str,
    width: usize,
    right: bool,
}

impl Col {
    /// A left-aligned column (`{:<width}`).
    pub(crate) const fn left(header: &'static str, width: usize) -> Self {
        Self { header, width, right: false }
    }

    /// A right-aligned column (`{:>width}`).
    pub(crate) const fn right(header: &'static str, width: usize) -> Self {
        Self { header, width, right: true }
    }
}

/// Renders the header plus every row as a two-space-indented,
/// space-separated fixed-width table — the one formatter behind
/// [`ServeReport::lane_breakdown`], [`ServeReport::pipeline_breakdown`]
/// and the cluster shard table. Numeric cells arrive pre-formatted
/// (precision is the caller's), so a column's padding is exactly
/// `format!`'s: content wider than the column overflows, never
/// truncates.
pub(crate) fn render_table(cols: &[Col], rows: &[Vec<String>]) -> String {
    let mut s = String::new();
    let header: Vec<String> = cols.iter().map(|c| c.header.to_string()).collect();
    push_table_row(&mut s, cols, &header);
    for row in rows {
        push_table_row(&mut s, cols, row);
    }
    s
}

fn push_table_row(s: &mut String, cols: &[Col], cells: &[String]) {
    debug_assert_eq!(cols.len(), cells.len(), "row arity must match the column set");
    s.push_str("  ");
    for (i, (col, cell)) in cols.iter().zip(cells).enumerate() {
        if i > 0 {
            s.push(' ');
        }
        let pad = col.width.saturating_sub(cell.len());
        if col.right {
            s.extend(std::iter::repeat_n(' ', pad));
            s.push_str(cell);
        } else {
            s.push_str(cell);
            s.extend(std::iter::repeat_n(' ', pad));
        }
    }
    s.push('\n');
}

/// The fate of one request: it was admitted, batched and executed
/// ([`RequestOutcome::Served`]); admission control refused it because
/// its model lane was at capacity or degraded-mode shedding turned it
/// away ([`RequestOutcome::Dropped`]); or fault handling abandoned it
/// after its batch was lost to a lane crash and the retry policy ran
/// out of road ([`RequestOutcome::Failed`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestOutcome {
    /// The request was admitted and executed.
    Served(ServedRequest),
    /// The request was tail-dropped at admission; it never queued and
    /// consumed no accelerator time.
    Dropped(DroppedRequest),
    /// The request was admitted but lost to a lane crash, and the
    /// [`crate::RetryPolicy`] gave up on it — either the attempt
    /// budget ran out or the next retry could no longer meet its
    /// deadline.
    Failed(FailedRequest),
}

/// A request that was admitted, batched, and executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServedRequest {
    /// Request id (dense, in arrival order).
    pub id: u64,
    /// Name of the model served.
    pub model: String,
    /// Arrival cycle.
    pub arrival: u64,
    /// Cycle the request's batch started executing.
    pub start: u64,
    /// Cycle the request's batch completed.
    pub completion: u64,
    /// Batch the request rode in.
    pub batch: usize,
    /// Worker lane that served the batch.
    pub worker: usize,
}

/// A request refused at admission (its model lane was full).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DroppedRequest {
    /// Request id (dense, in arrival order).
    pub id: u64,
    /// Name of the model requested.
    pub model: String,
    /// Arrival cycle (which is also the drop cycle: tail drop refuses
    /// the request immediately).
    pub arrival: u64,
}

/// A request abandoned by fault handling: its batch was cancelled by a
/// lane crash and the retry policy could not place it again in time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedRequest {
    /// Request id (dense, in arrival order).
    pub id: u64,
    /// Name of the model requested.
    pub model: String,
    /// Arrival cycle.
    pub arrival: u64,
    /// Dispatch attempts the request consumed before giving up (its
    /// initial dispatch plus every retry that reached a lane).
    pub attempts: u32,
}

impl ServedRequest {
    /// End-to-end latency in cycles (queueing + batching + service).
    pub fn latency_cycles(&self) -> u64 {
        self.completion - self.arrival
    }

    /// Cycles spent waiting before execution started.
    pub fn wait_cycles(&self) -> u64 {
        self.start - self.arrival
    }
}

impl RequestOutcome {
    /// The request id.
    pub fn id(&self) -> u64 {
        match self {
            Self::Served(s) => s.id,
            Self::Dropped(d) => d.id,
            Self::Failed(f) => f.id,
        }
    }

    /// The requested model's name.
    pub fn model(&self) -> &str {
        match self {
            Self::Served(s) => &s.model,
            Self::Dropped(d) => &d.model,
            Self::Failed(f) => &f.model,
        }
    }

    /// Arrival cycle.
    pub fn arrival(&self) -> u64 {
        match self {
            Self::Served(s) => s.arrival,
            Self::Dropped(d) => d.arrival,
            Self::Failed(f) => f.arrival,
        }
    }

    /// `true` if the request was served.
    pub fn is_served(&self) -> bool {
        matches!(self, Self::Served(_))
    }

    /// The served record, if the request was neither dropped nor
    /// failed.
    pub fn served(&self) -> Option<&ServedRequest> {
        match self {
            Self::Served(s) => Some(s),
            Self::Dropped(_) | Self::Failed(_) => None,
        }
    }

    /// End-to-end latency, `None` for dropped requests.
    pub fn latency_cycles(&self) -> Option<u64> {
        self.served().map(ServedRequest::latency_cycles)
    }
}

/// The 1-based nearest-rank of the `pct`-th percentile in a population
/// of `count` samples: `ceil(pct/100 * count)`, clamped into
/// `[1, count]`. The **single** clamp implementation behind every
/// percentile view — the histogram walk, the sorted-slice helper, and
/// through them all report-level percentiles.
///
/// # Panics
///
/// Panics unless `0.0 < pct <= 100.0`.
pub(crate) fn nearest_rank_position(count: u64, pct: f64) -> u64 {
    assert!(pct > 0.0 && pct <= 100.0, "percentile out of range: {pct}");
    let rank = (pct / 100.0 * count as f64).ceil() as u64;
    rank.clamp(1, count)
}

/// Nearest-rank percentile over an already-sorted latency slice (see
/// [`nearest_rank_position`]). Shared by the SLO-aware policy's
/// observation window; report-level percentiles go through
/// [`LatencyHistogram`] instead.
///
/// # Panics
///
/// Panics if the slice is empty or `pct` is out of `(0, 100]`.
pub(crate) fn nearest_rank(sorted_latencies: &[u64], pct: f64) -> u64 {
    sorted_latencies[nearest_rank_position(sorted_latencies.len() as u64, pct) as usize - 1]
}

/// An exact sparse cycle-count histogram over served latencies: sorted
/// `(latency, count)` bins, one per **distinct** latency value.
///
/// This is the report tier's percentile engine. It is *exact* — a
/// percentile query walks the bins to the same nearest-rank position
/// [`nearest_rank`] would find in the fully-sorted sample vector, so
/// every answer is an actually-observed latency — and it is *mergeable*:
/// shard histograms combine bin-by-bin, letting
/// [`crate::ClusterReport`] compute global percentiles without
/// re-collecting (or re-sorting) the merged million-sample population
/// on every call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// `(latency_cycles, count)`, strictly ascending in latency.
    bins: Vec<(u64, u64)>,
    /// Total sample count across all bins.
    total: u64,
}

impl LatencyHistogram {
    /// Builds the histogram of `samples` (one sort of the sample set —
    /// the last sort percentile queries ever need).
    pub fn collect(samples: impl IntoIterator<Item = u64>) -> Self {
        let mut lat: Vec<u64> = samples.into_iter().collect();
        lat.sort_unstable();
        let mut bins: Vec<(u64, u64)> = Vec::new();
        for value in lat {
            match bins.last_mut() {
                Some((last, count)) if *last == value => *count += 1,
                _ => bins.push((value, 1)),
            }
        }
        let total = bins.iter().map(|&(_, count)| count).sum();
        Self { bins, total }
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether the histogram holds no samples.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Folds `other` into `self` (sorted bin merge: linear in the
    /// number of distinct latencies, independent of sample counts).
    pub fn merge(&mut self, other: &Self) {
        let mine = std::mem::take(&mut self.bins);
        self.bins = Vec::with_capacity(mine.len().max(other.bins.len()));
        let (mut a, mut b) = (mine.into_iter().peekable(), other.bins.iter().copied().peekable());
        loop {
            let next = match (a.peek(), b.peek()) {
                (Some(&(va, ca)), Some(&(vb, cb))) => {
                    if va == vb {
                        a.next();
                        b.next();
                        (va, ca + cb)
                    } else if va < vb {
                        a.next();
                        (va, ca)
                    } else {
                        b.next();
                        (vb, cb)
                    }
                }
                (Some(_), None) => a.next().expect("peeked"),
                (None, Some(_)) => b.next().expect("peeked"),
                (None, None) => break,
            };
            self.bins.push(next);
        }
        self.total += other.total;
    }

    /// The `pct`-th percentile sample (nearest-rank, an observed
    /// value); 0 when the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < pct <= 100.0`.
    pub fn percentile(&self, pct: f64) -> u64 {
        let target = nearest_rank_position(self.total.max(1), pct);
        if self.total == 0 {
            return 0;
        }
        let mut seen = 0u64;
        for &(value, count) in &self.bins {
            seen += count;
            if seen >= target {
                return value;
            }
        }
        unreachable!("nearest-rank position is clamped into the population")
    }
}

/// A lazily-built [`LatencyHistogram`] memo attached to a report.
///
/// Like [`PlanCacheActivity`], the cell is **excluded from report
/// equality** (memoization state is host-side, never part of a run's
/// simulated identity) and clones start empty. The memo assumes the
/// report's outcomes stop changing once the first percentile is
/// queried — reports are immutable after construction everywhere in
/// the engine.
#[derive(Debug, Default)]
pub struct HistogramCell(OnceLock<LatencyHistogram>);

impl HistogramCell {
    /// The memoized histogram, building it on first use.
    pub(crate) fn get_or_build(
        &self,
        build: impl FnOnce() -> LatencyHistogram,
    ) -> &LatencyHistogram {
        self.0.get_or_init(build)
    }
}

impl Clone for HistogramCell {
    /// Clones start unmemoized (the clone may mutate outcomes before
    /// its first query).
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl PartialEq for HistogramCell {
    /// Always `true`: memoization state is a host-side detail (see the
    /// type docs).
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for HistogramCell {}

/// Per-lane occupancy statistics: which architecture the lane runs,
/// how busy it was, and the simulated events (hence energy) its
/// batches produced. In a heterogeneous fleet each lane may run a
/// different [`ArchKind`], so the per-lane split is where utilization
/// and energy skew between architectures becomes visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStats {
    /// Architecture this lane simulates.
    pub arch: ArchKind,
    /// Cycles the lane spent executing batches.
    pub busy_cycles: u64,
    /// Batch executions on this lane. Under monolithic placement a
    /// batch runs on exactly one lane, so these sum to the fleet's
    /// batch count; under [`crate::PlacementStrategy::Pipelined`] a
    /// batch executes one **stage** per lane, so every stage lane
    /// counts it and the per-lane sum exceeds the fleet total.
    pub batches: usize,
    /// Requests that executed (a stage) on this lane — same counting
    /// rule as [`WorkerStats::batches`].
    pub requests: usize,
    /// Simulated events of the batches this lane executed.
    pub events: EventCounts,
}

impl WorkerStats {
    /// A fresh (all-zero) record for a lane of `arch`.
    pub fn new(arch: ArchKind) -> Self {
        Self { arch, busy_cycles: 0, batches: 0, requests: 0, events: EventCounts::default() }
    }

    /// Busy fraction of the fleet makespan.
    pub fn utilization(&self, makespan_cycles: u64) -> f64 {
        if makespan_cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / makespan_cycles as f64
        }
    }

    /// Cycles the lane sat idle over the fleet makespan.
    pub fn idle_cycles(&self, makespan_cycles: u64) -> u64 {
        makespan_cycles.saturating_sub(self.busy_cycles)
    }

    /// Energy this lane's batches consumed under `tech`.
    pub fn energy(&self, tech: &TechParams) -> EnergyBreakdown {
        EnergyBreakdown::of(&self.events, tech)
    }
}

/// The fleet-wide compile-cache activity one serving run produced, for
/// **both** host-side memo tables: the
/// [`s2ta_core::WeightPlanCache`] (W-DBB plan compilation — hits,
/// compiles, dense bypasses) and the [`s2ta_core::ActProfileCache`]
/// (activation strip-profile compilation for the matrix-free event
/// path — every lookup is memoized, so its bypasses are always zero).
///
/// **Excluded from report equality.** Two runs with byte-identical
/// *simulated* results may take different cache paths on the host — the
/// vectorized open-loop path warms every plan once up front, while the
/// event-driven engine re-warms per dispatch burst — so cache traffic
/// is a host-side diagnostic, not a simulated outcome. `PartialEq`
/// therefore always answers `true`, keeping the engine-vs-vectorized
/// equivalence guarantees about what was *computed*, not how it was
/// memoized.
#[derive(Debug, Clone, Copy, Default, Eq)]
pub struct PlanCacheActivity {
    /// The run's weight-plan-cache counter delta (hits / misses /
    /// dense bypasses). Also reachable through `Deref`, so
    /// `report.plan_cache.hits` keeps reading the weight-plan side.
    pub weights: CacheStats,
    /// The run's activation-profile-cache counter delta.
    pub acts: CacheStats,
}

impl PlanCacheActivity {
    /// Bundles the two cache deltas of one run.
    pub fn new(weights: CacheStats, acts: CacheStats) -> Self {
        Self { weights, acts }
    }
}

impl std::ops::Deref for PlanCacheActivity {
    type Target = CacheStats;

    /// The weight-plan counters read straight through
    /// ([`CacheStats::hits`], [`CacheStats::hit_rate`], ...), keeping
    /// the pre-existing `report.plan_cache.hits` call sites; the
    /// activation side is explicit at `plan_cache.acts`.
    fn deref(&self) -> &CacheStats {
        &self.weights
    }
}

impl PartialEq for PlanCacheActivity {
    /// Always `true`: cache traffic is a host-side diagnostic (see the
    /// type docs), never part of a run's simulated identity.
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

/// Occupancy of one pipeline stage over a serving run: which layers it
/// owned, which lane (and architecture) it was pinned to, and where its
/// time went — busy executing, idle between executions (**bubbles**),
/// or waiting on inter-stage activation **handoffs**.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineStageStats {
    /// Name of the pipelined model.
    pub model: String,
    /// Stage index within the model's pipeline (execution order).
    pub stage: usize,
    /// The contiguous layer range the stage executes (`[start, end)`).
    pub layers: (usize, usize),
    /// The fleet lane the stage is pinned to.
    pub lane: usize,
    /// Architecture of the pinned lane.
    pub arch: ArchKind,
    /// Batches the stage executed.
    pub batches: usize,
    /// Requests that flowed through the stage.
    pub requests: usize,
    /// Cycles the stage spent executing.
    pub busy_cycles: u64,
    /// Idle cycles between the stage's consecutive executions — the
    /// pipeline bubbles upstream stalls or thin traffic left.
    pub bubble_cycles: u64,
    /// Total activation-handoff latency paid entering this stage
    /// (zero for every stage 0).
    pub handoff_cycles: u64,
}

impl PipelineStageStats {
    /// Busy fraction of the stage's own active span (first dispatch to
    /// last completion); 0 before the stage ever ran.
    pub fn occupancy(&self) -> f64 {
        let span = self.busy_cycles + self.bubble_cycles;
        if span == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / span as f64
        }
    }
}

/// One model's admission and deadline accounting for a serving run —
/// the per-model granularity the global [`ServeReport::dropped_count`]
/// flattens away.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelServeStats {
    /// The model's name.
    pub model: String,
    /// Requests of this model tail-dropped at admission (including
    /// degraded-mode shedding).
    pub dropped: u64,
    /// Requests of this model dispatched in **timeout-sealed** batches
    /// — each waited out the policy's full `max_wait` instead of its
    /// batch filling, the deadline-miss unit an SLO audit counts.
    pub deadline_misses: u64,
    /// Requests of this model abandoned by fault handling (see
    /// [`RequestOutcome::Failed`]).
    pub failed: u64,
}

/// Fault-injection and recovery accounting for one serving run.
///
/// Unlike the host-side memo cells, every field here is a **simulated
/// outcome**: the fault schedule, retries, hedges and degraded-mode
/// decisions all run on the simulated clock, so the struct sits
/// **inside report equality** — serial and shard-parallel cluster
/// drivers must agree on it byte-for-byte. A fault-free run carries
/// the all-zero default (with empty per-lane vectors), which keeps the
/// engine-vs-vectorized equivalence untouched.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Lane-crash windows that began during the run.
    pub lane_crashes: u64,
    /// Lane-crash windows that ended (the lane came back, cold)
    /// before the run finished.
    pub lane_recoveries: u64,
    /// Lane-slowdown windows that began during the run.
    pub slowdowns: u64,
    /// Requests re-queued for another dispatch attempt after their
    /// batch was cancelled by a lane crash.
    pub retries: u64,
    /// Batches dispatched twice under the hedging policy (the faster
    /// copy wins; the loser's lane time is wasted capacity).
    pub hedges: u64,
    /// Requests the router re-routed away from an out shard.
    pub failovers: u64,
    /// Requests abandoned as [`RequestOutcome::Failed`].
    pub failed: u64,
    /// Requests shed at admission by degraded mode (counted inside
    /// the regular dropped totals as well).
    pub shed: u64,
    /// Simulated cycles the engine spent in degraded mode.
    pub degraded_cycles: u64,
    /// Per-lane cycles spent down (crash windows observed by the
    /// engine), indexed by lane; empty when faults are disabled.
    pub lane_downtime_cycles: Vec<u64>,
    /// Per-lane completed recovery count, indexed by lane; empty when
    /// faults are disabled.
    pub lane_recovery_counts: Vec<u64>,
}

impl FaultStats {
    /// `true` when the run saw no fault activity at all (the
    /// fault-free default).
    pub fn is_quiet(&self) -> bool {
        *self == Self::default()
    }

    /// Mean time to recovery for `lane` in cycles — observed downtime
    /// over completed recoveries — or `None` when the lane never
    /// recovered during the run.
    pub fn lane_mttr_cycles(&self, lane: usize) -> Option<u64> {
        let recoveries = *self.lane_recovery_counts.get(lane)?;
        if recoveries == 0 {
            return None;
        }
        Some(self.lane_downtime_cycles.get(lane).copied().unwrap_or(0) / recoveries)
    }

    /// Folds `other` into `self` (lane vectors concatenate: cluster
    /// aggregation keeps shard lanes distinct, in shard order).
    pub fn merge(&mut self, other: &Self) {
        self.lane_crashes += other.lane_crashes;
        self.lane_recoveries += other.lane_recoveries;
        self.slowdowns += other.slowdowns;
        self.retries += other.retries;
        self.hedges += other.hedges;
        self.failovers += other.failovers;
        self.failed += other.failed;
        self.shed += other.shed;
        self.degraded_cycles += other.degraded_cycles;
        self.lane_downtime_cycles.extend_from_slice(&other.lane_downtime_cycles);
        self.lane_recovery_counts.extend_from_slice(&other.lane_recovery_counts);
    }
}

/// Everything a serving run produced.
///
/// The per-request outcomes and the placement-derived numbers (latency
/// percentiles, makespan, utilization) are deterministic for a fixed
/// `(workload seed, policy, worker count)` — this holds for the
/// open-loop, closed-loop and adaptive-policy client modes alike. For
/// the **open-loop fixed-policy** path, the aggregate simulation
/// outputs — request count, batch set, drop set and
/// [`ServeReport::total_events`] (hence energy) — are additionally
/// **independent of the worker count**, because batch formation and
/// admission never look at the fleet. Closed-loop and adaptive runs
/// give up that independence by design: arrivals (closed loop) and
/// batch bounds (adaptive) both react to completions, which depend on
/// how many lanes are serving.
///
/// Latency statistics ([`ServeReport::latency_percentile_cycles`],
/// [`ServeReport::mean_latency_cycles`]) are computed over **served**
/// requests only; dropped requests are reported through
/// [`ServeReport::dropped_count`] / [`ServeReport::drop_rate`] and
/// excluded from percentiles (a drop has no latency). Throughput of
/// successfully served requests is [`ServeReport::goodput_ips`];
/// [`ServeReport::throughput_ips`] is its alias kept for the open-loop
/// no-drop setting where the two coincide.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Architecture the fleet ran.
    pub arch: String,
    /// Batching policy that formed the batches (see
    /// [`crate::BatchPolicy::name`]).
    pub policy: String,
    /// Outcomes indexed by request id (dense: served and dropped
    /// together cover every issued request).
    pub outcomes: Vec<RequestOutcome>,
    /// Number of batches formed.
    pub batches: usize,
    /// Per-worker occupancy.
    pub workers: Vec<WorkerStats>,
    /// Aggregate simulated events over every batch.
    pub total_events: EventCounts,
    /// Cycle the last batch completed (0 for an empty or drop-only
    /// run).
    pub makespan_cycles: u64,
    /// Per-stage occupancy breakdown of pipelined execution (empty for
    /// the monolithic placement modes).
    pub pipeline_stages: Vec<PipelineStageStats>,
    /// Per-model admission/deadline accounting, in `models`-list
    /// order. Part of report equality: every serving path (vectorized,
    /// engine, cluster shard) must agree on it byte-for-byte.
    pub per_model: Vec<ModelServeStats>,
    /// Fault-injection and recovery accounting (all-zero for
    /// fault-free runs; **inside** report equality — see
    /// [`FaultStats`]).
    pub fault: FaultStats,
    /// Weight-plan-cache activity during this run (host-side
    /// diagnostic; excluded from equality — see [`PlanCacheActivity`]).
    pub plan_cache: PlanCacheActivity,
    /// Memoized served-latency histogram (host-side; excluded from
    /// equality, empty on clones — see [`HistogramCell`]).
    pub(crate) latency_hist: HistogramCell,
    /// The run's observability trace, when a recorder was attached
    /// (excluded from equality, empty on clones — see
    /// [`TraceCell`]).
    pub(crate) trace: TraceCell,
}

impl ServeReport {
    /// Served outcomes, in id order.
    pub fn served_outcomes(&self) -> impl Iterator<Item = &ServedRequest> {
        self.outcomes.iter().filter_map(RequestOutcome::served)
    }

    /// Requests that were admitted and executed.
    pub fn served_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_served()).count()
    }

    /// Requests refused at admission (capacity tail drops plus
    /// degraded-mode shedding).
    pub fn dropped_count(&self) -> usize {
        self.outcomes.iter().filter(|o| matches!(o, RequestOutcome::Dropped(_))).count()
    }

    /// Requests abandoned by fault handling (see
    /// [`RequestOutcome::Failed`]).
    pub fn failed_count(&self) -> usize {
        self.outcomes.iter().filter(|o| matches!(o, RequestOutcome::Failed(_))).count()
    }

    /// Fraction of issued requests that were **not** lost to faults:
    /// `1 - failed/issued` (1.0 for an empty or fault-free run).
    /// Admission drops are a load-shedding decision, not
    /// unavailability, so they do not lower this number.
    pub fn availability(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 1.0;
        }
        1.0 - self.failed_count() as f64 / self.outcomes.len() as f64
    }

    /// The run's observability trace, when the fleet had a recorder
    /// attached (see [`crate::Fleet::with_trace`]); `None` for
    /// untraced runs and on clones.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.get()
    }

    /// Total requests dispatched in timeout-sealed batches, summed
    /// over [`ServeReport::per_model`].
    pub fn deadline_miss_count(&self) -> u64 {
        self.per_model.iter().map(|m| m.deadline_misses).sum()
    }

    /// Dropped fraction of all issued requests (0 for an empty run).
    pub fn drop_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.dropped_count() as f64 / self.outcomes.len() as f64
    }

    /// Latency of the `pct`-th percentile **served** request in cycles
    /// (nearest-rank on the sorted latencies). Returns 0 when no
    /// request was served (empty or drop-only runs).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < pct <= 100.0`.
    pub fn latency_percentile_cycles(&self, pct: f64) -> u64 {
        self.latency_histogram().percentile(pct)
    }

    /// The served-latency histogram, built once per report and shared
    /// by every subsequent percentile query (p50/p95/p99 on a
    /// million-request report used to re-sort the samples three
    /// times). Cluster shards merge through exactly this view.
    pub fn latency_histogram(&self) -> &LatencyHistogram {
        self.latency_hist.get_or_build(|| {
            LatencyHistogram::collect(self.served_outcomes().map(ServedRequest::latency_cycles))
        })
    }

    /// Latency of the `pct`-th percentile **served** request of the
    /// named model (nearest-rank). Returns 0 when no request of that
    /// model was served. Per-model [`crate::SloClass`] targets are
    /// checked against exactly this number.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < pct <= 100.0`.
    pub fn latency_percentile_for_model(&self, model: &str, pct: f64) -> u64 {
        self.percentile_where(pct, |o| o.model == model)
    }

    /// Nearest-rank percentile over the served requests `keep` admits
    /// (0 when none match): a fresh filtered histogram per call —
    /// per-model views are queried rarely and over small subsets, so
    /// only the all-request histogram is memoized.
    fn percentile_where(&self, pct: f64, keep: impl Fn(&ServedRequest) -> bool) -> u64 {
        LatencyHistogram::collect(
            self.served_outcomes().filter(|o| keep(o)).map(ServedRequest::latency_cycles),
        )
        .percentile(pct)
    }

    /// Median latency in cycles.
    pub fn p50_cycles(&self) -> u64 {
        self.latency_percentile_cycles(50.0)
    }

    /// 95th-percentile latency in cycles.
    pub fn p95_cycles(&self) -> u64 {
        self.latency_percentile_cycles(95.0)
    }

    /// 99th-percentile latency in cycles.
    pub fn p99_cycles(&self) -> u64 {
        self.latency_percentile_cycles(99.0)
    }

    /// Mean served latency in cycles (0 when nothing was served).
    pub fn mean_latency_cycles(&self) -> f64 {
        let served = self.served_count();
        if served == 0 {
            return 0.0;
        }
        let total: u64 = self.served_outcomes().map(ServedRequest::latency_cycles).sum();
        total as f64 / served as f64
    }

    /// Converts cycles to milliseconds at `tech`'s clock.
    pub fn cycles_to_ms(tech: &TechParams, cycles: u64) -> f64 {
        cycles as f64 / tech.clock_hz * 1e3
    }

    /// Successfully served inferences per second at `tech`'s clock —
    /// the goodput. Dropped requests do not count.
    pub fn goodput_ips(&self, tech: &TechParams) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        self.served_count() as f64 / (self.makespan_cycles as f64 / tech.clock_hz)
    }

    /// Completed inferences per second at `tech`'s clock. Alias of
    /// [`ServeReport::goodput_ips`] (the two coincide because only
    /// served requests complete).
    pub fn throughput_ips(&self, tech: &TechParams) -> f64 {
        self.goodput_ips(tech)
    }

    /// Aggregate energy of the run under `tech`.
    pub fn energy(&self, tech: &TechParams) -> EnergyBreakdown {
        EnergyBreakdown::of(&self.total_events, tech)
    }

    /// Mean energy per **served** inference in microjoules under
    /// `tech`.
    pub fn uj_per_inference(&self, tech: &TechParams) -> f64 {
        let served = self.served_count();
        if served == 0 {
            return 0.0;
        }
        self.energy(tech).total_pj() * 1e-6 / served as f64
    }

    /// Mean worker utilization over the makespan.
    pub fn mean_utilization(&self) -> f64 {
        if self.workers.is_empty() {
            return 0.0;
        }
        self.workers.iter().map(|w| w.utilization(self.makespan_cycles)).sum::<f64>()
            / self.workers.len() as f64
    }

    /// Mean served requests per batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.served_count() as f64 / self.batches as f64
    }

    /// A multi-line human-readable summary under `tech`.
    pub fn summary(&self, tech: &TechParams) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "ServeReport [{} | {}]: {} served / {} dropped / {} failed in {} batches on {} workers\n",
            self.arch,
            self.policy,
            self.served_count(),
            self.dropped_count(),
            self.failed_count(),
            self.batches,
            self.workers.len()
        ));
        if !self.fault.is_quiet() {
            s.push_str(&format!(
                "  faults          {:>10} crashes ({} recoveries, {} slowdowns, {} retries, {} hedges, {} shed, availability {:.4})\n",
                self.fault.lane_crashes,
                self.fault.lane_recoveries,
                self.fault.slowdowns,
                self.fault.retries,
                self.fault.hedges,
                self.fault.shed,
                self.availability()
            ));
        }
        s.push_str(&format!(
            "  goodput         {:>10.1} inf/s   (makespan {:.3} ms, mean batch {:.2}, drop rate {:.1}%)\n",
            self.goodput_ips(tech),
            Self::cycles_to_ms(tech, self.makespan_cycles),
            self.mean_batch_size(),
            self.drop_rate() * 100.0
        ));
        s.push_str(&format!(
            "  latency p50     {:>10.3} ms      (p95 {:.3} ms, p99 {:.3} ms, mean {:.3} ms)\n",
            Self::cycles_to_ms(tech, self.p50_cycles()),
            Self::cycles_to_ms(tech, self.p95_cycles()),
            Self::cycles_to_ms(tech, self.p99_cycles()),
            self.mean_latency_cycles() / tech.clock_hz * 1e3
        ));
        s.push_str(&format!(
            "  energy          {:>10.1} uJ      ({:.2} uJ/inference)\n",
            self.energy(tech).total_pj() * 1e-6,
            self.uj_per_inference(tech)
        ));
        s.push_str(&format!(
            "  utilization     {:>10.1} %       per worker:",
            self.mean_utilization() * 100.0
        ));
        for (i, w) in self.workers.iter().enumerate() {
            s.push_str(&format!(" w{i} {:.0}%", w.utilization(self.makespan_cycles) * 100.0));
        }
        s.push('\n');
        s
    }

    /// A per-stage pipeline table: model, stage, layer range, pinned
    /// lane/arch, busy/bubble/handoff split and occupancy. Empty string
    /// when the run was not pipelined.
    pub fn pipeline_breakdown(&self) -> String {
        if self.pipeline_stages.is_empty() {
            return String::new();
        }
        let cols = [
            Col::left("model", 18),
            Col::left("stage", 6),
            Col::left("layers", 8),
            Col::left("lane", 6),
            Col::left("arch", 12),
            Col::right("batches", 7),
            Col::right("busy cyc", 10),
            Col::right("bubble cyc", 10),
            Col::right("handoff", 9),
            Col::right("occ %", 7),
        ];
        let rows: Vec<Vec<String>> = self
            .pipeline_stages
            .iter()
            .map(|st| {
                vec![
                    st.model.clone(),
                    st.stage.to_string(),
                    format!("{}..{}", st.layers.0, st.layers.1),
                    format!("L{}", st.lane),
                    st.arch.to_string(),
                    st.batches.to_string(),
                    st.busy_cycles.to_string(),
                    st.bubble_cycles.to_string(),
                    st.handoff_cycles.to_string(),
                    format!("{:.1}", st.occupancy() * 100.0),
                ]
            })
            .collect();
        render_table(&cols, &rows)
    }

    /// A per-lane table under `tech`: architecture, busy/idle split,
    /// batches, requests and energy — the view that makes utilization
    /// skew across a heterogeneous fleet visible.
    pub fn lane_breakdown(&self, tech: &TechParams) -> String {
        let cols = [
            Col::left("lane", 6),
            Col::left("arch", 12),
            Col::right("busy cyc", 10),
            Col::right("idle cyc", 10),
            Col::right("util %", 7),
            Col::right("batches", 8),
            Col::right("requests", 8),
            Col::right("uJ", 10),
        ];
        let rows: Vec<Vec<String>> = self
            .workers
            .iter()
            .enumerate()
            .map(|(i, w)| {
                vec![
                    format!("L{i}"),
                    w.arch.to_string(),
                    w.busy_cycles.to_string(),
                    w.idle_cycles(self.makespan_cycles).to_string(),
                    format!("{:.1}", w.utilization(self.makespan_cycles) * 100.0),
                    w.batches.to_string(),
                    w.requests.to_string(),
                    format!("{:.2}", w.energy(tech).total_pj() * 1e-6),
                ]
            })
            .collect();
        render_table(&cols, &rows)
    }
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}]: {} served, {} dropped, {} failed, {} batches, {} workers, {} cycles makespan",
            self.arch,
            self.policy,
            self.served_count(),
            self.dropped_count(),
            self.failed_count(),
            self.batches,
            self.workers.len(),
            self.makespan_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: u64, arrival: u64, completion: u64) -> RequestOutcome {
        RequestOutcome::Served(ServedRequest {
            id,
            model: "m".into(),
            arrival,
            start: arrival,
            completion,
            batch: id as usize,
            worker: 0,
        })
    }

    fn dropped(id: u64, arrival: u64) -> RequestOutcome {
        RequestOutcome::Dropped(DroppedRequest { id, model: "m".into(), arrival })
    }

    fn report(latencies: &[u64]) -> ServeReport {
        ServeReport {
            arch: "TEST".into(),
            policy: "fixed".into(),
            outcomes: latencies.iter().enumerate().map(|(i, &l)| outcome(i as u64, 0, l)).collect(),
            batches: latencies.len(),
            workers: vec![WorkerStats {
                busy_cycles: 50,
                batches: 1,
                requests: 1,
                events: EventCounts { cycles: 50, macs_active: 1_000, ..Default::default() },
                ..WorkerStats::new(ArchKind::S2taAw)
            }],
            total_events: EventCounts { cycles: 100, ..Default::default() },
            makespan_cycles: 100,
            pipeline_stages: vec![],
            per_model: vec![],
            fault: FaultStats::default(),
            plan_cache: PlanCacheActivity::default(),
            latency_hist: HistogramCell::default(),
            trace: TraceCell::default(),
        }
    }

    #[test]
    fn percentiles_nearest_rank() {
        let r = report(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(r.p50_cycles(), 50);
        assert_eq!(r.latency_percentile_cycles(10.0), 10);
        assert_eq!(r.p99_cycles(), 100);
        assert_eq!(r.latency_percentile_cycles(100.0), 100);
        assert!((r.mean_latency_cycles() - 55.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_edge_cases() {
        // Single served request: every percentile is that request.
        let single = report(&[42]);
        for pct in [0.001, 0.5, 1.0, 50.0, 99.0, 99.999, 100.0] {
            assert_eq!(single.latency_percentile_cycles(pct), 42, "pct {pct}");
        }
        // Percentiles near the ends of a larger set hit the extremes.
        let r = report(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(r.latency_percentile_cycles(0.001), 10, "near-zero pct is the minimum");
        assert_eq!(r.latency_percentile_cycles(99.999), 100, "near-100 pct is the maximum");
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_zero_rejected() {
        report(&[1]).latency_percentile_cycles(0.0);
    }

    #[test]
    fn drop_only_run_has_zero_latency_stats() {
        let r = ServeReport {
            arch: "TEST".into(),
            policy: "fixed".into(),
            outcomes: (0..5).map(|i| dropped(i, i * 10)).collect(),
            batches: 0,
            workers: vec![WorkerStats::new(ArchKind::S2taAw)],
            total_events: EventCounts::default(),
            makespan_cycles: 0,
            pipeline_stages: vec![],
            per_model: vec![],
            fault: FaultStats::default(),
            plan_cache: PlanCacheActivity::default(),
            latency_hist: HistogramCell::default(),
            trace: TraceCell::default(),
        };
        assert_eq!(r.served_count(), 0);
        assert_eq!(r.dropped_count(), 5);
        assert!((r.drop_rate() - 1.0).abs() < 1e-12);
        for pct in [0.001, 50.0, 99.0, 100.0] {
            assert_eq!(r.latency_percentile_cycles(pct), 0, "drop-only run must report 0");
        }
        assert_eq!(r.mean_latency_cycles(), 0.0);
        let tech = TechParams::tsmc16();
        assert_eq!(r.goodput_ips(&tech), 0.0);
        assert_eq!(r.uj_per_inference(&tech), 0.0);
        assert!(r.summary(&tech).contains("drop rate 100.0%"));
    }

    #[test]
    fn mixed_outcomes_split_metrics() {
        let mut r = report(&[10, 20, 30, 40]);
        r.outcomes.push(dropped(4, 5));
        r.outcomes.push(dropped(5, 6));
        assert_eq!(r.served_count(), 4);
        assert_eq!(r.dropped_count(), 2);
        assert!((r.drop_rate() - 2.0 / 6.0).abs() < 1e-12);
        // Percentiles ignore drops entirely.
        assert_eq!(r.latency_percentile_cycles(100.0), 40);
        let tech = TechParams::tsmc16();
        // Goodput counts the 4 served requests over the makespan.
        let expect = 4.0 / (100.0 / tech.clock_hz);
        assert!((r.goodput_ips(&tech) - expect).abs() < 1e-3);
        assert_eq!(r.goodput_ips(&tech), r.throughput_ips(&tech));
    }

    #[test]
    fn empty_report_is_calm() {
        let r = ServeReport {
            arch: "TEST".into(),
            policy: "fixed".into(),
            outcomes: vec![],
            batches: 0,
            workers: vec![],
            total_events: EventCounts::default(),
            makespan_cycles: 0,
            pipeline_stages: vec![],
            per_model: vec![],
            fault: FaultStats::default(),
            plan_cache: PlanCacheActivity::default(),
            latency_hist: HistogramCell::default(),
            trace: TraceCell::default(),
        };
        assert_eq!(r.p50_cycles(), 0);
        assert_eq!(r.mean_utilization(), 0.0);
        assert_eq!(r.mean_batch_size(), 0.0);
        assert_eq!(r.drop_rate(), 0.0);
        let tech = TechParams::tsmc16();
        assert_eq!(r.throughput_ips(&tech), 0.0);
        assert_eq!(r.uj_per_inference(&tech), 0.0);
    }

    #[test]
    fn per_model_percentiles_split_by_model_name() {
        let mut r = report(&[10, 20, 30, 40]);
        // Rename two outcomes to a second model with slower latencies.
        for (i, o) in r.outcomes.iter_mut().enumerate() {
            if let RequestOutcome::Served(s) = o {
                if i >= 2 {
                    s.model = "heavy".into();
                }
            }
        }
        assert_eq!(r.latency_percentile_for_model("m", 100.0), 20);
        assert_eq!(r.latency_percentile_for_model("heavy", 100.0), 40);
        assert_eq!(r.latency_percentile_for_model("heavy", 50.0), 30);
        assert_eq!(r.latency_percentile_for_model("absent", 99.0), 0, "unknown model is calm");
        // The all-model percentile is unchanged by the split.
        assert_eq!(r.latency_percentile_cycles(100.0), 40);
    }

    #[test]
    fn lane_stats_carry_arch_idle_and_energy() {
        let r = report(&[100]);
        let w = &r.workers[0];
        assert_eq!(w.arch, ArchKind::S2taAw);
        assert_eq!(w.idle_cycles(r.makespan_cycles), 50);
        assert_eq!(w.idle_cycles(10), 0, "idle saturates below busy");
        let tech = TechParams::tsmc16();
        assert!(w.energy(&tech).total_pj() > 0.0);
        let table = r.lane_breakdown(&tech);
        assert!(table.contains("S2TA-AW"), "breakdown names the lane arch:\n{table}");
        assert!(table.contains("L0"), "breakdown lists each lane:\n{table}");
    }

    #[test]
    fn histogram_edge_cases() {
        // Empty: every valid percentile is calm.
        let empty = LatencyHistogram::collect(std::iter::empty());
        assert!(empty.is_empty());
        assert_eq!(empty.total(), 0);
        for pct in [0.001, 50.0, 100.0] {
            assert_eq!(empty.percentile(pct), 0, "pct {pct}");
        }
        // Single sample: every percentile is that sample.
        let single = LatencyHistogram::collect([42]);
        for pct in [0.001, 0.5, 50.0, 99.999, 100.0] {
            assert_eq!(single.percentile(pct), 42, "pct {pct}");
        }
        // Heavy ties collapse into sparse bins but stay exact.
        let ties = LatencyHistogram::collect([7, 7, 7, 7, 9]);
        assert_eq!(ties.total(), 5);
        assert_eq!(ties.percentile(80.0), 7);
        assert_eq!(ties.percentile(80.001), 9);
        assert_eq!(ties.percentile(100.0), 9);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn histogram_rejects_zero_percentile() {
        LatencyHistogram::collect([1]).percentile(0.0);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn histogram_rejects_oversized_percentile() {
        LatencyHistogram::collect([1]).percentile(100.5);
    }

    #[test]
    fn histogram_merge_equals_concatenation() {
        let a = [5u64, 1, 9, 5, 5];
        let b = [2u64, 9, 9, 40];
        let mut merged = LatencyHistogram::collect(a);
        merged.merge(&LatencyHistogram::collect(b));
        let whole = LatencyHistogram::collect(a.iter().chain(b.iter()).copied());
        assert_eq!(merged, whole);
        assert_eq!(merged.total(), 9);
        // Merging an empty histogram either way is the identity.
        let mut id = whole.clone();
        id.merge(&LatencyHistogram::default());
        assert_eq!(id, whole);
        let mut from_empty = LatencyHistogram::default();
        from_empty.merge(&whole);
        assert_eq!(from_empty, whole);
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(64))]
        /// The histogram percentile is byte-identical to the
        /// [`nearest_rank`] sorted-slice path it replaced, on random
        /// sample sets and random split points (exercising merge).
        #[test]
        fn prop_histogram_matches_nearest_rank(
            samples in proptest::collection::vec(0u64..500, 1..300),
            split in proptest::arbitrary::any::<u16>(),
            pct_mil in 1u64..=100_000,
        ) {
            let pct = pct_mil as f64 / 1_000.0;
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            let split = split as usize % (samples.len() + 1);
            let mut hist = LatencyHistogram::collect(samples[..split].iter().copied());
            hist.merge(&LatencyHistogram::collect(samples[split..].iter().copied()));
            proptest::prop_assert_eq!(hist.percentile(pct), nearest_rank(&sorted, pct));
            proptest::prop_assert_eq!(hist.total(), sorted.len() as u64);
        }
    }

    #[test]
    fn histogram_cell_is_equality_neutral_and_clone_fresh() {
        let r = report(&[10, 20, 30]);
        let before = r.clone();
        assert_eq!(r.latency_histogram().total(), 3);
        // Building the memo changes nothing observable.
        assert_eq!(r, before);
        // Clones drop the memo and rebuild consistently.
        assert_eq!(r.clone().latency_histogram(), r.latency_histogram());
    }

    #[test]
    fn utilization_and_throughput() {
        let r = report(&[100]);
        assert!((r.workers[0].utilization(100) - 0.5).abs() < 1e-12);
        let tech = TechParams::tsmc16();
        // 1 request / (100 cycles / clock)
        let expect = tech.clock_hz / 100.0;
        assert!((r.throughput_ips(&tech) - expect).abs() < 1e-3);
        assert!(r.summary(&tech).contains("goodput"));
    }
}
