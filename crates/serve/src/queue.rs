//! The request queue: per-model FIFO lanes feeding the batch scheduler,
//! with optional per-lane admission bounds.

use crate::workload::Request;
use std::collections::VecDeque;

/// Pending requests, FIFO per model.
///
/// Keeping one lane per model makes the scheduler's batching rule ("a
/// batch holds one model's requests in arrival order") a structural
/// property instead of an invariant to re-check: a lane can only ever
/// hand out compatible, ordered requests.
///
/// A queue built with [`RequestQueue::bounded`] additionally enforces
/// **admission control**: each lane holds at most `capacity` pending
/// requests, and [`RequestQueue::try_push`] refuses (tail-drops) the
/// incoming request when its lane is full. Tail drop is deterministic —
/// whether a request is admitted depends only on the arrival stream and
/// the batch-closure history, never on host timing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RequestQueue {
    lanes: Vec<VecDeque<Request>>,
    len: usize,
    capacity: Option<usize>,
}

impl RequestQueue {
    /// An empty unbounded queue with one FIFO lane per model.
    pub fn new(models: usize) -> Self {
        Self { lanes: (0..models).map(|_| VecDeque::new()).collect(), len: 0, capacity: None }
    }

    /// An empty queue admitting at most `capacity` pending requests per
    /// model lane. A capacity of zero drops every request.
    pub fn bounded(models: usize, capacity: usize) -> Self {
        Self { capacity: Some(capacity), ..Self::new(models) }
    }

    /// The per-lane admission bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Offers a request to its model's lane: `true` if admitted,
    /// `false` if the lane was at capacity and the request was dropped.
    ///
    /// # Panics
    ///
    /// Panics if the request names a model the queue has no lane for.
    pub fn try_push(&mut self, request: Request) -> bool {
        assert!(
            request.model < self.lanes.len(),
            "request {} names model {} but the queue has {} lanes",
            request.id,
            request.model,
            self.lanes.len()
        );
        let lane = &mut self.lanes[request.model];
        if self.capacity.is_some_and(|cap| lane.len() >= cap) {
            return false;
        }
        lane.push_back(request);
        self.len += 1;
        true
    }

    /// Enqueues a request on its model's lane.
    ///
    /// # Panics
    ///
    /// Panics if the request names a model the queue has no lane for,
    /// or if the lane is at capacity (use [`RequestQueue::try_push`]
    /// when drops are expected).
    pub fn push(&mut self, request: Request) {
        let id = request.id;
        assert!(self.try_push(request), "request {id} dropped: lane at capacity");
    }

    /// The oldest pending request for `model`, if any.
    pub fn front(&self, model: usize) -> Option<&Request> {
        self.lanes.get(model).and_then(VecDeque::front)
    }

    /// Dequeues up to `max` requests from `model`'s lane, preserving
    /// arrival order.
    pub fn pop_batch(&mut self, model: usize, max: usize) -> Vec<Request> {
        let lane = &mut self.lanes[model];
        let take = max.min(lane.len());
        let batch: Vec<Request> = lane.drain(..take).collect();
        self.len -= batch.len();
        batch
    }

    /// Dequeues every **full** batch of exactly `max_batch` requests
    /// from `model`'s lane, preserving arrival order, and leaves the
    /// sub-`max_batch` remainder queued. Equivalent to calling
    /// [`RequestQueue::pop_batch`] while `pending >= max_batch` — the
    /// engine's size-trigger burst when an adaptive policy shrinks
    /// `max_batch` below a lane's backlog.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn pop_full_batches(&mut self, model: usize, max_batch: usize) -> Vec<Vec<Request>> {
        assert!(max_batch > 0, "max_batch must be non-zero");
        let mut batches = Vec::new();
        while self.pending(model) >= max_batch {
            batches.push(self.pop_batch(model, max_batch));
        }
        batches
    }

    /// Pending requests for one model.
    pub fn pending(&self, model: usize) -> usize {
        self.lanes.get(model).map_or(0, VecDeque::len)
    }

    /// Total pending requests.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no request is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of model lanes.
    pub fn models(&self) -> usize {
        self.lanes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, model: usize, arrival: u64) -> Request {
        Request { id, model, arrival, act_seed: id ^ 0xabcd }
    }

    #[test]
    fn fifo_per_lane() {
        let mut q = RequestQueue::new(2);
        for (i, m) in [(0, 0), (1, 1), (2, 0), (3, 0), (4, 1)] {
            q.push(req(i, m, i));
        }
        assert_eq!(q.len(), 5);
        assert_eq!(q.pending(0), 3);
        let batch = q.pop_batch(0, 2);
        assert_eq!(batch.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(q.front(0).map(|r| r.id), Some(3));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop_batch(1, 10).len(), 2);
        assert_eq!(q.pop_batch(0, 10).len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "lanes")]
    fn unknown_model_rejected() {
        RequestQueue::new(1).push(req(0, 3, 0));
    }

    #[test]
    fn pop_full_batches_drains_whole_chunks_and_keeps_the_remainder() {
        let mut q = RequestQueue::new(1);
        for i in 0..7 {
            q.push(req(i, 0, i));
        }
        let batches = q.pop_full_batches(0, 3);
        assert_eq!(batches.len(), 2, "7 pending at max_batch 3 -> two full batches");
        assert_eq!(batches[0].iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(batches[1].iter().map(|r| r.id).collect::<Vec<_>>(), vec![3, 4, 5]);
        assert_eq!(q.pending(0), 1, "sub-max_batch remainder stays queued");
        assert_eq!(q.front(0).map(|r| r.id), Some(6));
        assert!(q.pop_full_batches(0, 3).is_empty(), "remainder below max_batch seals nothing");
    }

    /// Exact-multiple occupancy: every request drains into full
    /// batches and nothing lingers.
    #[test]
    fn pop_full_batches_with_exact_multiple_occupancy_leaves_nothing() {
        let mut q = RequestQueue::new(1);
        for i in 0..6 {
            q.push(req(i, 0, i));
        }
        let batches = q.pop_full_batches(0, 3);
        assert_eq!(batches.len(), 2, "6 pending at max_batch 3 -> exactly two full batches");
        assert!(batches.iter().all(|b| b.len() == 3));
        assert!(q.is_empty(), "an exact multiple must drain the lane completely");
        assert_eq!(q.front(0), None);
        assert_eq!(q.pending(0), 0);
        // An empty lane seals nothing, and max_batch == 1 drains each
        // request as its own batch.
        assert!(q.pop_full_batches(0, 1).is_empty());
        q.push(req(6, 0, 6));
        q.push(req(7, 0, 7));
        let singles = q.pop_full_batches(0, 1);
        assert_eq!(singles.len(), 2);
        assert!(singles.iter().all(|b| b.len() == 1));
    }

    #[test]
    #[should_panic(expected = "max_batch must be non-zero")]
    fn pop_full_batches_rejects_zero_max_batch() {
        RequestQueue::new(1).pop_full_batches(0, 0);
    }

    /// Capacity 1 is the tail-drop boundary: one request occupies the
    /// lane, the next drops, and draining reopens exactly one slot.
    #[test]
    fn capacity_one_admits_exactly_one_pending_request() {
        let mut q = RequestQueue::bounded(2, 1);
        assert!(q.try_push(req(0, 0, 0)));
        assert!(!q.try_push(req(1, 0, 1)), "second request must tail-drop at capacity 1");
        // The sibling lane has its own slot.
        assert!(q.try_push(req(2, 1, 2)));
        assert!(!q.try_push(req(3, 1, 3)));
        assert_eq!(q.len(), 2);
        // Popping the single pending request reopens exactly one slot.
        assert_eq!(q.pop_batch(0, 8).len(), 1);
        assert!(q.try_push(req(4, 0, 4)));
        assert!(!q.try_push(req(5, 0, 5)));
        assert_eq!(q.pending(0), 1);
        assert_eq!(q.capacity(), Some(1));
    }

    /// Capacity 0 at the fleet level: every request is refused at
    /// admission and the report stays calm (drop-only run).
    #[test]
    fn capacity_zero_queue_reports_every_push_refused() {
        let mut q = RequestQueue::bounded(3, 0);
        for i in 0..10 {
            assert!(!q.try_push(req(i, (i % 3) as usize, i)));
        }
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        for m in 0..3 {
            assert_eq!(q.front(m), None);
            assert!(q.pop_full_batches(m, 1).is_empty());
            assert!(q.pop_batch(m, 4).is_empty());
        }
    }

    #[test]
    fn bounded_lane_tail_drops_at_capacity() {
        let mut q = RequestQueue::bounded(2, 2);
        assert!(q.try_push(req(0, 0, 0)));
        assert!(q.try_push(req(1, 0, 1)));
        assert!(!q.try_push(req(2, 0, 2)), "third request must tail-drop");
        // The other lane is unaffected.
        assert!(q.try_push(req(3, 1, 3)));
        assert_eq!(q.len(), 3);
        // Draining the lane re-opens admission.
        q.pop_batch(0, 2);
        assert!(q.try_push(req(4, 0, 4)));
        assert_eq!(q.pending(0), 1);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut q = RequestQueue::bounded(1, 0);
        assert!(!q.try_push(req(0, 0, 0)));
        assert!(q.is_empty());
    }

    #[test]
    fn unbounded_queue_never_drops() {
        let mut q = RequestQueue::new(1);
        for i in 0..10_000 {
            assert!(q.try_push(req(i, 0, i)));
        }
        assert_eq!(q.len(), 10_000);
        assert_eq!(q.capacity(), None);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn push_panics_on_full_bounded_lane() {
        let mut q = RequestQueue::bounded(1, 1);
        q.push(req(0, 0, 0));
        q.push(req(1, 0, 1));
    }
}
