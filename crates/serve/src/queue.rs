//! The request queue: per-model FIFO lanes feeding the batch scheduler.

use crate::workload::Request;
use std::collections::VecDeque;

/// Pending requests, FIFO per model.
///
/// Keeping one lane per model makes the scheduler's batching rule ("a
/// batch holds one model's requests in arrival order") a structural
/// property instead of an invariant to re-check: a lane can only ever
/// hand out compatible, ordered requests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RequestQueue {
    lanes: Vec<VecDeque<Request>>,
    len: usize,
}

impl RequestQueue {
    /// An empty queue with one FIFO lane per model.
    pub fn new(models: usize) -> Self {
        Self { lanes: (0..models).map(|_| VecDeque::new()).collect(), len: 0 }
    }

    /// Enqueues a request on its model's lane.
    ///
    /// # Panics
    ///
    /// Panics if the request names a model the queue has no lane for.
    pub fn push(&mut self, request: Request) {
        assert!(
            request.model < self.lanes.len(),
            "request {} names model {} but the queue has {} lanes",
            request.id,
            request.model,
            self.lanes.len()
        );
        self.lanes[request.model].push_back(request);
        self.len += 1;
    }

    /// The oldest pending request for `model`, if any.
    pub fn front(&self, model: usize) -> Option<&Request> {
        self.lanes.get(model).and_then(VecDeque::front)
    }

    /// Dequeues up to `max` requests from `model`'s lane, preserving
    /// arrival order.
    pub fn pop_batch(&mut self, model: usize, max: usize) -> Vec<Request> {
        let lane = &mut self.lanes[model];
        let take = max.min(lane.len());
        let batch: Vec<Request> = lane.drain(..take).collect();
        self.len -= batch.len();
        batch
    }

    /// Pending requests for one model.
    pub fn pending(&self, model: usize) -> usize {
        self.lanes.get(model).map_or(0, VecDeque::len)
    }

    /// Total pending requests.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no request is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of model lanes.
    pub fn models(&self) -> usize {
        self.lanes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, model: usize, arrival: u64) -> Request {
        Request { id, model, arrival, act_seed: id ^ 0xabcd }
    }

    #[test]
    fn fifo_per_lane() {
        let mut q = RequestQueue::new(2);
        for (i, m) in [(0, 0), (1, 1), (2, 0), (3, 0), (4, 1)] {
            q.push(req(i, m, i));
        }
        assert_eq!(q.len(), 5);
        assert_eq!(q.pending(0), 3);
        let batch = q.pop_batch(0, 2);
        assert_eq!(batch.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(q.front(0).map(|r| r.id), Some(3));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop_batch(1, 10).len(), 2);
        assert_eq!(q.pop_batch(0, 10).len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "lanes")]
    fn unknown_model_rejected() {
        RequestQueue::new(1).push(req(0, 3, 0));
    }
}
