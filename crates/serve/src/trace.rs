//! Flight recorder + deterministic metrics time-series for the serving
//! engine.
//!
//! Observability for the simulator comes in two strictly separated
//! halves:
//!
//! * **Deterministic** (part of [`Trace`] equality): the typed
//!   [`TraceEvent`] stream held in a preallocated drop-oldest
//!   [`FlightRecorder`] ring, and the fixed-interval
//!   [`MetricsSample`]/per-model-p99 time-series. Both are pure
//!   functions of the simulated run — the serial and shard-parallel
//!   cluster drivers produce byte-identical traces, and running the
//!   same scenario twice reproduces the trace exactly.
//! * **Host-side** (excluded from [`Trace`] equality, like
//!   [`crate::PlanCacheActivity`]): shared-cache counter samples
//!   ([`CacheSample`] — shards race on the cluster-wide plan caches,
//!   so deltas depend on host interleaving) and wall-clock
//!   [`HostSpan`] accumulators around plan compilation / pipeline
//!   calibration / engine advance.
//!
//! Recording is allocation-free in the steady state: the event ring is
//! preallocated at [`TraceConfig::event_capacity`] and overwrites its
//! oldest entry under overflow (counted in [`Trace::dropped_events`]),
//! never growing — pinned by the debug counting-allocator test in
//! `crates/bench/tests/steady_state_alloc.rs`.
//!
//! The finished [`Trace`] lives on [`crate::ServeReport`] inside an
//! equality-neutral [`TraceCell`], so report `PartialEq` semantics —
//! every engine-vs-vectorized and serial-vs-parallel byte-identity
//! guarantee in the test suite — are unchanged by attaching a
//! recorder. Export to the Chrome `trace_events` JSON consumed by
//! `chrome://tracing` / [Perfetto](https://ui.perfetto.dev) with
//! [`Trace::chrome_trace_json`], and to a compact metrics JSON with
//! [`Trace::metrics_json`].

use crate::report::nearest_rank;
use s2ta_core::{CacheStats, Ring};
use std::sync::OnceLock;
use std::time::Duration;

/// How a run's recorder is sized and sampled. Attach with
/// [`crate::Fleet::with_trace`] / [`crate::Cluster::with_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Flight-recorder ring capacity in events; the ring is fully
    /// preallocated and drops its **oldest** event on overflow. A
    /// capacity of 0 records nothing (every event counts as dropped).
    pub event_capacity: usize,
    /// Simulated cycles between metrics samples (must be positive).
    /// Boundaries sit at `k * interval` for `k >= 1`, and the sample
    /// at boundary `b` reflects engine state after exactly the events
    /// with simulated time `< b`.
    pub metrics_interval_cycles: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self { event_capacity: 65_536, metrics_interval_cycles: 10_000 }
    }
}

impl TraceConfig {
    /// Panics unless the configuration is usable.
    pub(crate) fn validate(&self) {
        assert!(self.metrics_interval_cycles > 0, "metrics interval must be positive");
    }
}

/// What happened at one [`TraceEvent`]. The fixed `(lane, model,
/// stage, a, b)` payload fields are interpreted per kind — see each
/// variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceEventKind {
    /// A batch was sealed (by size or by deadline): `cycle` = the
    /// batch's ready time, `a` = batch id, `b` = requests in the batch.
    BatchSealed,
    /// A sealed batch began executing on its lane: `cycle` = start,
    /// `a` = batch id, `b` = requests in the batch.
    BatchStarted,
    /// A batch finished: `cycle` = completion, `a` = batch id, `b` =
    /// requests in the batch.
    BatchCompleted,
    /// A request was refused admission at a full bounded queue:
    /// `cycle` = arrival, `a` = request id, `b` = queued depth at the
    /// drop.
    RequestDropped,
    /// A batching deadline fired and sealed a partial batch — every
    /// member waited out the full batching window: `cycle` = the
    /// deadline, `a` = requests in the timed-out batch, `b` = 0.
    DeadlineMiss,
    /// One pipeline stage of a batch was dispatched: `cycle` = stage
    /// start, `stage` = stage index, `a` = batch id, `b` = stage
    /// service cycles.
    StageDispatch,
    /// Backpressure from the bounded inter-stage queue delayed a stage
    /// start: `cycle` = the delayed start, `stage` = stage index,
    /// `a` = batch id, `b` = cycles the start was pushed back.
    StageStall,
    /// The autoscaler changed a shard's active-lane count: `cycle` =
    /// evaluation time, `lane` = active lanes **before**, `stage` =
    /// active lanes **after**, `a` = the triggering backlog, `b` = 0.
    AutoscaleDecision,
    /// A fault window opened on a lane: `cycle` = failure time,
    /// `lane` = the lane, `a` = the window's duration in cycles, `b` =
    /// 0 for a crash or the slowdown factor for a slowdown.
    LaneFailed,
    /// A fault window closed and the lane came back (cold, for a
    /// crash): `cycle` = recovery time, `lane` = the lane, `a` = the
    /// window's duration in cycles, `b` = 0 for a crash or the
    /// slowdown factor for a slowdown.
    LaneRecovered,
    /// A crash-cancelled request was re-queued for another attempt:
    /// `cycle` = the scheduled retry time, `a` = request id, `b` =
    /// the attempt number being scheduled.
    RequestRetried,
    /// A batch was dispatched twice under the hedging policy: `cycle`
    /// = hedged start, `lane` = the winning lane, `a` = batch id,
    /// `b` = the losing lane.
    RequestHedged,
    /// The router steered a request away from an out shard: `cycle` =
    /// arrival, `a` = request id, `b` = 0.
    ShardFailedOver,
}

impl TraceEventKind {
    /// Stable lowercase label, used in artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            Self::BatchSealed => "batch_sealed",
            Self::BatchStarted => "batch_started",
            Self::BatchCompleted => "batch_completed",
            Self::RequestDropped => "request_dropped",
            Self::DeadlineMiss => "deadline_miss",
            Self::StageDispatch => "stage_dispatch",
            Self::StageStall => "stage_stall",
            Self::AutoscaleDecision => "autoscale",
            Self::LaneFailed => "lane_failed",
            Self::LaneRecovered => "lane_recovered",
            Self::RequestRetried => "request_retried",
            Self::RequestHedged => "request_hedged",
            Self::ShardFailedOver => "shard_failed_over",
        }
    }
}

/// One recorded engine event, stamped with simulated time and
/// `(shard, lane, model, stage)` identity. `Copy` and fixed-size so
/// recording is a single ring-slot write.
///
/// `shard` is 0 while a fleet records and is stamped by
/// [`crate::ClusterReport::merged_trace`] when per-shard traces are
/// merged. The meaning of `lane`, `stage`, `a` and `b` depends on
/// [`TraceEvent::kind`] — see [`TraceEventKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle the event is stamped with.
    pub cycle: u64,
    /// What happened.
    pub kind: TraceEventKind,
    /// Cluster shard (0 until stamped by the merge).
    pub shard: u32,
    /// Fleet lane, where the kind has one (see [`TraceEventKind`]).
    pub lane: u32,
    /// Model index into the run's model list.
    pub model: u32,
    /// Pipeline stage, where the kind has one.
    pub stage: u32,
    /// Kind-specific payload (usually an id or a count).
    pub a: u64,
    /// Kind-specific payload (usually a size or a duration).
    pub b: u64,
}

/// The preallocated drop-oldest event ring.
///
/// Constructed once per run at [`TraceConfig::event_capacity`];
/// [`FlightRecorder::record`] never allocates — under overflow the
/// oldest event is overwritten in place and counted in
/// [`FlightRecorder::overwritten`].
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecorder {
    ring: Ring<TraceEvent>,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events, fully allocated
    /// up front.
    pub fn new(capacity: usize) -> Self {
        Self { ring: Ring::new(capacity) }
    }

    /// Records one event (allocation-free; drop-oldest on overflow).
    pub fn record(&mut self, event: TraceEvent) {
        self.ring.push(event);
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The fixed ring capacity.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Events dropped (overwritten) to stay within capacity.
    pub fn overwritten(&self) -> u64 {
        self.ring.overwritten()
    }

    /// Retained events, oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Drains into `(events oldest → newest, overwritten count)`.
    pub(crate) fn into_events(self) -> (Vec<TraceEvent>, u64) {
        let overwritten = self.ring.overwritten();
        (self.ring.iter().copied().collect(), overwritten)
    }
}

/// One fixed-interval metrics sample of a shard engine.
///
/// The sample at boundary `b` reflects the engine after exactly the
/// simulated events with time `< b`, independent of which driver
/// (serial or shard-parallel) ran the shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSample {
    /// The sample boundary (a multiple of the configured interval).
    pub cycle: u64,
    /// Cluster shard (0 until stamped by the merge).
    pub shard: u32,
    /// Requests admitted but not yet sealed into a batch.
    pub queued: u32,
    /// Requests sealed into batches still executing.
    pub in_flight: u32,
    /// `queued + in_flight` — what the autoscaler thresholds.
    pub backlog: u32,
    /// Active lanes (autoscaling shrinks/grows this).
    pub active_lanes: u32,
}

/// One point of a per-model rolling-percentile series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricPoint {
    /// The boundary the window was closed at.
    pub cycle: u64,
    /// Nearest-rank p99 latency (cycles) over the completions in the
    /// window ending at `cycle`.
    pub p99_cycles: u64,
}

/// A per-model windowed-p99 time-series: one point per metrics
/// interval in which at least one request of the model completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSeries {
    /// Model name.
    pub model: String,
    /// Cluster shard (0 until stamped by the merge).
    pub shard: u32,
    /// Window-close points in cycle order.
    pub points: Vec<MetricPoint>,
}

/// A host-side snapshot of the two compile-cache counter deltas at a
/// metrics boundary. **Excluded from [`Trace`] equality**: with
/// cluster-shared caches, parallel shards race on the tables, so the
/// deltas visible at a boundary depend on host interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSample {
    /// The metrics boundary the snapshot was taken at.
    pub cycle: u64,
    /// Cluster shard (0 until stamped by the merge).
    pub shard: u32,
    /// Weight-plan-cache delta since the run started.
    pub weights: CacheStats,
    /// Activation-profile-cache delta since the run started.
    pub acts: CacheStats,
}

/// One accumulated wall-clock span: how much host time `label` cost
/// over the run, and how often it ran. **Excluded from [`Trace`]
/// equality** — wall-clock is never part of a run's simulated
/// identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostSpan {
    /// Span label (e.g. `"execute"`, `"pipeline-calibrate"`).
    pub label: String,
    /// Times the span was entered.
    pub calls: u64,
    /// Total wall-clock nanoseconds across all calls.
    pub nanos: u128,
}

/// A small label-keyed accumulator of [`HostSpan`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HostSpans {
    spans: Vec<HostSpan>,
}

impl HostSpans {
    /// Folds one timed call into the span named `label`.
    pub fn add(&mut self, label: &str, elapsed: Duration) {
        match self.spans.iter_mut().find(|s| s.label == label) {
            Some(span) => {
                span.calls += 1;
                span.nanos += elapsed.as_nanos();
            }
            None => self.spans.push(HostSpan {
                label: label.to_string(),
                calls: 1,
                nanos: elapsed.as_nanos(),
            }),
        }
    }

    /// Folds every span of `other` into `self` (label-wise).
    pub fn merge(&mut self, other: &HostSpans) {
        for span in &other.spans {
            match self.spans.iter_mut().find(|s| s.label == span.label) {
                Some(mine) => {
                    mine.calls += span.calls;
                    mine.nanos += span.nanos;
                }
                None => self.spans.push(span.clone()),
            }
        }
    }

    /// The accumulated spans, in first-use order.
    pub fn spans(&self) -> &[HostSpan] {
        &self.spans
    }
}

/// Everything one run recorded: the event stream, the metrics
/// time-series, and the host-side diagnostics.
///
/// `PartialEq` covers only the **deterministic** halves — config,
/// events, overflow tally, metrics samples, per-model series and model
/// names. Host-side cache samples and wall-clock spans are excluded,
/// exactly like [`crate::PlanCacheActivity`] on the report itself, so
/// trace equality is a statement about the simulated run.
#[derive(Debug, Clone)]
pub struct Trace {
    pub(crate) config: TraceConfig,
    pub(crate) events: Vec<TraceEvent>,
    pub(crate) dropped_events: u64,
    pub(crate) model_names: Vec<String>,
    pub(crate) metrics: Vec<MetricsSample>,
    pub(crate) model_series: Vec<ModelSeries>,
    pub(crate) cache_samples: Vec<CacheSample>,
    pub(crate) host_spans: HostSpans,
}

impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config
            && self.events == other.events
            && self.dropped_events == other.dropped_events
            && self.model_names == other.model_names
            && self.metrics == other.metrics
            && self.model_series == other.model_series
    }
}

impl Trace {
    /// The configuration the trace was recorded under.
    pub fn config(&self) -> TraceConfig {
        self.config
    }

    /// The retained events, in recording order (oldest → newest; for a
    /// merged cluster trace, `(cycle, shard)` order).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events the ring dropped (overwrote) under overflow.
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    /// Model names, indexed by [`TraceEvent::model`].
    pub fn model_names(&self) -> &[String] {
        &self.model_names
    }

    /// The fixed-interval engine samples, in cycle order.
    pub fn metrics(&self) -> &[MetricsSample] {
        &self.metrics
    }

    /// The per-model rolling-p99 series.
    pub fn model_series(&self) -> &[ModelSeries] {
        &self.model_series
    }

    /// Host-side cache counter snapshots (excluded from equality).
    pub fn cache_samples(&self) -> &[CacheSample] {
        &self.cache_samples
    }

    /// Host-side wall-clock spans (excluded from equality).
    pub fn host_spans(&self) -> &[HostSpan] {
        self.host_spans.spans()
    }

    /// Requests carried by retained [`TraceEventKind::BatchCompleted`]
    /// events. Equals the report's served count whenever
    /// [`Trace::dropped_events`] is 0 — the conservation law the CI
    /// artifact check pins.
    pub fn completed_requests(&self) -> u64 {
        self.events.iter().filter(|e| e.kind == TraceEventKind::BatchCompleted).map(|e| e.b).sum()
    }

    /// Retained [`TraceEventKind::RequestDropped`] events — the
    /// report's dropped count whenever no events were overwritten.
    pub fn dropped_requests(&self) -> u64 {
        self.events.iter().filter(|e| e.kind == TraceEventKind::RequestDropped).count() as u64
    }

    fn model_name(&self, index: u32) -> &str {
        self.model_names.get(index as usize).map(String::as_str).unwrap_or("?")
    }

    /// Renders the trace as Chrome `trace_events` JSON — open in
    /// `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
    ///
    /// Mapping: **pid** = shard, **tid** = lane, **ts** = simulated
    /// cycles (not microseconds — the UI's time unit is nominal).
    /// Batches render as `B`/`E` span pairs on their lane track,
    /// pipeline stages as `X` complete events with their service
    /// cycles as duration, drops / deadline misses / stalls /
    /// autoscale decisions as `i` instants, and metrics samples as `C`
    /// counter tracks. All events are emitted in `(ts, pid)` order, so
    /// timestamps are monotone non-decreasing on every track.
    pub fn chrome_trace_json(&self) -> String {
        // (cycle, shard, emission index) keys keep the global emission
        // order deterministic and ts-sorted.
        let mut entries: Vec<(u64, u32, usize, String)> = Vec::new();
        let mut shards: Vec<u32> = Vec::new();
        for (i, e) in self.events.iter().enumerate() {
            if !shards.contains(&e.shard) {
                shards.push(e.shard);
            }
            let model = escape(self.model_name(e.model));
            let body = match e.kind {
                TraceEventKind::BatchSealed => format!(
                    r#"{{"name":"seal/{model}","ph":"i","s":"t","ts":{},"pid":{},"tid":{},"args":{{"batch":{},"requests":{}}}}}"#,
                    e.cycle, e.shard, e.lane, e.a, e.b
                ),
                TraceEventKind::BatchStarted => format!(
                    r#"{{"name":"batch {} {model}","ph":"B","ts":{},"pid":{},"tid":{},"args":{{"batch":{},"requests":{}}}}}"#,
                    e.a, e.cycle, e.shard, e.lane, e.a, e.b
                ),
                TraceEventKind::BatchCompleted => format!(
                    r#"{{"name":"batch {} {model}","ph":"E","ts":{},"pid":{},"tid":{}}}"#,
                    e.a, e.cycle, e.shard, e.lane
                ),
                TraceEventKind::RequestDropped => format!(
                    r#"{{"name":"drop/{model}","ph":"i","s":"t","ts":{},"pid":{},"tid":{},"args":{{"request":{},"queued":{}}}}}"#,
                    e.cycle, e.shard, e.lane, e.a, e.b
                ),
                TraceEventKind::DeadlineMiss => format!(
                    r#"{{"name":"deadline/{model}","ph":"i","s":"t","ts":{},"pid":{},"tid":{},"args":{{"requests":{}}}}}"#,
                    e.cycle, e.shard, e.lane, e.a
                ),
                TraceEventKind::StageDispatch => format!(
                    r#"{{"name":"stage{}/{model}","ph":"X","ts":{},"dur":{},"pid":{},"tid":{},"args":{{"batch":{}}}}}"#,
                    e.stage, e.cycle, e.b, e.shard, e.lane, e.a
                ),
                TraceEventKind::StageStall => format!(
                    r#"{{"name":"stall stage{}/{model}","ph":"i","s":"t","ts":{},"pid":{},"tid":{},"args":{{"batch":{},"stall_cycles":{}}}}}"#,
                    e.stage, e.cycle, e.shard, e.lane, e.a, e.b
                ),
                TraceEventKind::AutoscaleDecision => format!(
                    r#"{{"name":"autoscale {}->{}","ph":"i","s":"p","ts":{},"pid":{},"tid":0,"args":{{"from_lanes":{},"to_lanes":{},"backlog":{}}}}}"#,
                    e.lane, e.stage, e.cycle, e.shard, e.lane, e.stage, e.a
                ),
                TraceEventKind::LaneFailed => format!(
                    r#"{{"name":"lane_failed","ph":"i","s":"t","ts":{},"pid":{},"tid":{},"args":{{"duration":{},"factor":{}}}}}"#,
                    e.cycle, e.shard, e.lane, e.a, e.b
                ),
                TraceEventKind::LaneRecovered => format!(
                    r#"{{"name":"lane_recovered","ph":"i","s":"t","ts":{},"pid":{},"tid":{},"args":{{"duration":{},"factor":{}}}}}"#,
                    e.cycle, e.shard, e.lane, e.a, e.b
                ),
                TraceEventKind::RequestRetried => format!(
                    r#"{{"name":"request_retried/{model}","ph":"i","s":"t","ts":{},"pid":{},"tid":{},"args":{{"request":{},"attempt":{}}}}}"#,
                    e.cycle, e.shard, e.lane, e.a, e.b
                ),
                TraceEventKind::RequestHedged => format!(
                    r#"{{"name":"request_hedged/{model}","ph":"i","s":"t","ts":{},"pid":{},"tid":{},"args":{{"batch":{},"loser_lane":{}}}}}"#,
                    e.cycle, e.shard, e.lane, e.a, e.b
                ),
                TraceEventKind::ShardFailedOver => format!(
                    r#"{{"name":"shard_failed_over/{model}","ph":"i","s":"t","ts":{},"pid":{},"tid":0,"args":{{"request":{}}}}}"#,
                    e.cycle, e.shard, e.a
                ),
            };
            entries.push((e.cycle, e.shard, i, body));
        }
        for (i, s) in self.metrics.iter().enumerate() {
            if !shards.contains(&s.shard) {
                shards.push(s.shard);
            }
            entries.push((
                s.cycle,
                s.shard,
                self.events.len() + i,
                format!(
                    r#"{{"name":"engine","ph":"C","ts":{},"pid":{},"args":{{"queued":{},"in_flight":{},"active_lanes":{}}}}}"#,
                    s.cycle, s.shard, s.queued, s.in_flight, s.active_lanes
                ),
            ));
        }
        entries.sort_by_key(|&(cycle, shard, index, _)| (cycle, shard, index));
        shards.sort_unstable();
        let mut parts: Vec<String> = shards
            .iter()
            .map(|s| {
                format!(
                    r#"{{"name":"process_name","ph":"M","pid":{s},"args":{{"name":"shard {s}"}}}}"#
                )
            })
            .collect();
        parts.extend(entries.into_iter().map(|(_, _, _, body)| body));
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{\"clock\":\"simulated cycles\"}},\"traceEvents\":[\n{}\n]}}\n",
            parts.join(",\n")
        )
    }

    /// Renders the compact metrics JSON: config, event tallies, the
    /// fixed-interval samples, per-model p99 series, cache snapshots
    /// and host spans.
    pub fn metrics_json(&self) -> String {
        let samples: Vec<String> = self
            .metrics
            .iter()
            .map(|s| {
                format!(
                    r#"{{"cycle":{},"shard":{},"queued":{},"in_flight":{},"backlog":{},"active_lanes":{}}}"#,
                    s.cycle, s.shard, s.queued, s.in_flight, s.backlog, s.active_lanes
                )
            })
            .collect();
        let series: Vec<String> = self
            .model_series
            .iter()
            .map(|m| {
                let points: Vec<String> =
                    m.points.iter().map(|p| format!("[{},{}]", p.cycle, p.p99_cycles)).collect();
                format!(
                    r#"{{"model":"{}","shard":{},"points":[{}]}}"#,
                    escape(&m.model),
                    m.shard,
                    points.join(",")
                )
            })
            .collect();
        let cache: Vec<String> = self
            .cache_samples
            .iter()
            .map(|c| {
                format!(
                    r#"{{"cycle":{},"shard":{},"weights":{},"acts":{}}}"#,
                    c.cycle,
                    c.shard,
                    cache_stats_json(&c.weights),
                    cache_stats_json(&c.acts)
                )
            })
            .collect();
        let spans: Vec<String> = self
            .host_spans
            .spans()
            .iter()
            .map(|s| {
                format!(
                    r#"{{"label":"{}","calls":{},"millis":{:.3}}}"#,
                    escape(&s.label),
                    s.calls,
                    s.nanos as f64 / 1e6
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"config\":{{\"event_capacity\":{},\"metrics_interval_cycles\":{}}},\n",
                "\"events_recorded\":{},\"events_overwritten\":{},\n",
                "\"completed_requests\":{},\"dropped_requests\":{},\n",
                "\"samples\":[{}],\n\"model_p99\":[{}],\n\"cache\":[{}],\n\"host_spans\":[{}]}}\n"
            ),
            self.config.event_capacity,
            self.config.metrics_interval_cycles,
            self.events.len(),
            self.dropped_events,
            self.completed_requests(),
            self.dropped_requests(),
            samples.join(","),
            series.join(","),
            cache.join(","),
            spans.join(",")
        )
    }

    /// Merges per-shard traces into one cluster trace: every entry is
    /// stamped with its shard index, then the event stream, metrics
    /// samples and cache snapshots are **stably** sorted by
    /// `(cycle, shard)` — the same merge discipline the cluster uses
    /// for its scale events, so the serial and shard-parallel drivers
    /// produce byte-identical merged traces. Returns `None` for an
    /// empty shard list.
    pub(crate) fn merge_shards(shard_traces: Vec<Trace>) -> Option<Trace> {
        let mut iter = shard_traces.into_iter().enumerate();
        let (_, mut merged) = iter.next()?;
        let stamp = |t: &mut Trace, shard: u32| {
            for e in &mut t.events {
                e.shard = shard;
            }
            for m in &mut t.metrics {
                m.shard = shard;
            }
            for s in &mut t.model_series {
                s.shard = shard;
            }
            for c in &mut t.cache_samples {
                c.shard = shard;
            }
        };
        stamp(&mut merged, 0);
        for (s, mut t) in iter {
            stamp(&mut t, s as u32);
            merged.events.extend(t.events);
            merged.dropped_events += t.dropped_events;
            merged.metrics.extend(t.metrics);
            merged.model_series.extend(t.model_series);
            merged.cache_samples.extend(t.cache_samples);
            merged.host_spans.merge(&t.host_spans);
        }
        // Stable sorts: within a shard the emission order survives.
        merged.events.sort_by_key(|e| (e.cycle, e.shard));
        merged.metrics.sort_by_key(|m| (m.cycle, m.shard));
        merged.cache_samples.sort_by_key(|c| (c.cycle, c.shard));
        Some(merged)
    }
}

fn cache_stats_json(s: &CacheStats) -> String {
    format!(
        r#"{{"hits":{},"misses":{},"bypasses":{},"evictions":{},"hit_rate":{:.4}}}"#,
        s.hits,
        s.misses,
        s.bypasses,
        s.evictions,
        s.hit_rate()
    )
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => vec![' '],
            c => vec![c],
        })
        .collect()
}

/// The finished [`Trace`] memo attached to a report.
///
/// Like the report's latency-histogram memo cell, the cell is
/// **excluded from report
/// equality** (so attaching a recorder changes no byte of any report
/// comparison) and clones start empty.
#[derive(Debug, Default)]
pub struct TraceCell(OnceLock<Trace>);

impl TraceCell {
    /// The recorded trace, if this run had a recorder attached.
    pub fn get(&self) -> Option<&Trace> {
        self.0.get()
    }

    /// Stores the finished trace (once, at report assembly).
    pub(crate) fn set(&self, trace: Trace) {
        let _ = self.0.set(trace);
    }
}

impl Clone for TraceCell {
    /// Clones start empty — a trace describes one concrete run.
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl PartialEq for TraceCell {
    /// Always `true`: the recorder is observability, never part of a
    /// run's simulated identity (see the type docs).
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for TraceCell {}

/// Live recording state owned by one engine while it runs. All
/// mutation goes through the engine's event handlers, which keeps the
/// stream deterministic: every hook fires at a simulated event, never
/// at a driver-dependent host boundary.
#[derive(Debug, Clone)]
pub(crate) struct TraceState {
    cfg: TraceConfig,
    pub(crate) recorder: FlightRecorder,
    metrics: Vec<MetricsSample>,
    next_boundary: u64,
    /// Per-model latency windows for the rolling p99 (reused across
    /// intervals: cleared, never reallocated, once warm).
    windows: Vec<Vec<u64>>,
    points: Vec<Vec<MetricPoint>>,
    cache_samples: Vec<CacheSample>,
    pub(crate) host: HostSpans,
}

impl TraceState {
    pub(crate) fn new(cfg: TraceConfig, model_count: usize) -> Self {
        cfg.validate();
        Self {
            cfg,
            recorder: FlightRecorder::new(cfg.event_capacity),
            metrics: Vec::new(),
            next_boundary: cfg.metrics_interval_cycles,
            windows: vec![Vec::new(); model_count],
            points: vec![Vec::new(); model_count],
            cache_samples: Vec::new(),
            host: HostSpans::default(),
        }
    }

    pub(crate) fn record(&mut self, event: TraceEvent) {
        self.recorder.record(event);
    }

    /// Whether advancing to `now` crosses a metrics boundary — lets
    /// the engine skip the cache-counter reads on the (overwhelmingly
    /// common) events that close no interval.
    pub(crate) fn flush_due(&self, now: u64) -> bool {
        self.next_boundary <= now
    }

    /// Records a dispatched batch's full lifecycle — sealed at
    /// `ready`, started at `start`, completed at `completion` — as
    /// three events, all emitted at dispatch time (every value is
    /// already deterministically known there; the export's stable sort
    /// puts each at its own cycle).
    pub(crate) fn record_batch(
        &mut self,
        (ready, start, completion): (u64, u64, u64),
        lane: u32,
        model: u32,
        batch_id: u64,
        requests: u64,
    ) {
        for (cycle, kind) in [
            (ready, TraceEventKind::BatchSealed),
            (start, TraceEventKind::BatchStarted),
            (completion, TraceEventKind::BatchCompleted),
        ] {
            self.record(TraceEvent {
                cycle,
                kind,
                shard: 0,
                lane,
                model,
                stage: 0,
                a: batch_id,
                b: requests,
            });
        }
    }

    /// Closes every metrics boundary `<= now`. Call at the **top** of
    /// each simulated-event handler, before the event mutates engine
    /// state: the engine counters passed in then reflect exactly the
    /// events with time `< boundary`, whichever driver runs the shard.
    pub(crate) fn flush(
        &mut self,
        now: u64,
        queued: u32,
        in_flight: u32,
        active_lanes: u32,
        cache: Option<(CacheStats, CacheStats)>,
    ) {
        while self.next_boundary <= now {
            let cycle = self.next_boundary;
            self.metrics.push(MetricsSample {
                cycle,
                shard: 0,
                queued,
                in_flight,
                backlog: queued + in_flight,
                active_lanes,
            });
            self.close_windows(cycle);
            if let Some((weights, acts)) = cache {
                let changed = self
                    .cache_samples
                    .last()
                    .is_none_or(|last| last.weights != weights || last.acts != acts);
                if changed {
                    self.cache_samples.push(CacheSample { cycle, shard: 0, weights, acts });
                }
            }
            self.next_boundary += self.cfg.metrics_interval_cycles;
        }
    }

    /// Emits a p99 point for every model whose window is non-empty,
    /// then resets the windows (keeping their capacity).
    fn close_windows(&mut self, cycle: u64) {
        for (model, window) in self.windows.iter_mut().enumerate() {
            if window.is_empty() {
                continue;
            }
            // In-place unstable sort: no allocation in the hot loop.
            window.sort_unstable();
            self.points[model].push(MetricPoint { cycle, p99_cycles: nearest_rank(window, 99.0) });
            window.clear();
        }
    }

    /// Feeds one served-request latency into its model's rolling
    /// window (call **after** flushing the completion's boundary).
    pub(crate) fn observe_latency(&mut self, model: usize, latency_cycles: u64) {
        self.windows[model].push(latency_cycles);
    }

    /// Final flush through the run's makespan, then assembly into the
    /// immutable [`Trace`]. Windows still holding completions at the
    /// makespan itself close at `makespan`.
    pub(crate) fn finish(
        mut self,
        makespan: u64,
        cache: Option<(CacheStats, CacheStats)>,
        model_names: Vec<String>,
    ) -> Trace {
        // The run is over: queues and in-flight work are empty by
        // construction (the engine drains before reporting).
        self.flush(makespan, 0, 0, 0, cache);
        self.close_windows(makespan);
        let cfg = self.cfg;
        let (events, dropped_events) = self.recorder.into_events();
        let model_series = model_names
            .iter()
            .zip(self.points)
            .filter(|(_, points)| !points.is_empty())
            .map(|(name, points)| ModelSeries { model: name.clone(), shard: 0, points })
            .collect();
        Trace {
            config: cfg,
            events,
            dropped_events,
            model_names,
            metrics: self.metrics,
            model_series,
            cache_samples: self.cache_samples,
            host_spans: self.host,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent { cycle, kind, shard: 0, lane: 0, model: 0, stage: 0, a: 1, b: 2 }
    }

    #[test]
    fn recorder_drop_oldest_overflow() {
        let mut rec = FlightRecorder::new(2);
        rec.record(ev(1, TraceEventKind::BatchSealed));
        rec.record(ev(2, TraceEventKind::BatchStarted));
        rec.record(ev(3, TraceEventKind::BatchCompleted));
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.overwritten(), 1);
        let cycles: Vec<u64> = rec.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3]);
    }

    #[test]
    fn flush_emits_every_boundary_up_to_now() {
        let mut tr =
            TraceState::new(TraceConfig { event_capacity: 8, metrics_interval_cycles: 100 }, 1);
        tr.flush(250, 3, 2, 1, None);
        let cycles: Vec<u64> = tr.metrics.iter().map(|s| s.cycle).collect();
        assert_eq!(cycles, vec![100, 200]);
        assert!(tr.metrics.iter().all(|s| s.backlog == 5));
        // Flushing the same horizon again is a no-op.
        tr.flush(250, 9, 9, 9, None);
        assert_eq!(tr.metrics.len(), 2);
    }

    #[test]
    fn windows_close_at_the_first_boundary_after_the_completions() {
        let mut tr =
            TraceState::new(TraceConfig { event_capacity: 8, metrics_interval_cycles: 100 }, 2);
        tr.flush(40, 0, 1, 1, None);
        tr.observe_latency(0, 10);
        tr.observe_latency(0, 30);
        tr.observe_latency(1, 7);
        let trace = tr.finish(150, None, vec!["a".into(), "b".into()]);
        assert_eq!(trace.model_series().len(), 2);
        let a = &trace.model_series()[0];
        assert_eq!((a.model.as_str(), a.points[0].cycle, a.points[0].p99_cycles), ("a", 100, 30));
        let b = &trace.model_series()[1];
        assert_eq!((b.model.as_str(), b.points[0].cycle, b.points[0].p99_cycles), ("b", 100, 7));
    }

    #[test]
    fn chrome_export_is_ts_sorted_and_parseable_shape() {
        let mut tr = TraceState::new(TraceConfig::default(), 1);
        tr.record(ev(500, TraceEventKind::BatchSealed));
        tr.record(ev(700, TraceEventKind::BatchStarted));
        tr.record(ev(900, TraceEventKind::BatchCompleted));
        let trace = tr.finish(1_000, None, vec!["m".into()]);
        let json = trace.chrome_trace_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        let b = json.find("\"ph\":\"B\"").expect("start event");
        let e = json.find("\"ph\":\"E\"").expect("end event");
        assert!(b < e, "B/E pairs stay in ts order");
    }

    #[test]
    fn trace_equality_ignores_host_side_diagnostics() {
        let build = |nanos: u64| {
            let mut tr = TraceState::new(TraceConfig::default(), 1);
            tr.record(ev(10, TraceEventKind::BatchSealed));
            tr.host.add("execute", Duration::from_nanos(nanos));
            tr.finish(100, None, vec!["m".into()])
        };
        let a = build(5);
        let b = build(50_000);
        assert_eq!(a, b, "wall-clock spans must not affect trace equality");
        assert_ne!(a.host_spans()[0].nanos, b.host_spans()[0].nanos);
    }
}
