//! Batching policies: when the scheduler closes a batch.
//!
//! [`BatchPolicy`] is a trait so the dispatch rule can *adapt* to the
//! serving loop: after every batch completes, the engine feeds the
//! policy a [`BatchObservation`], and the policy answers the next
//! [`BatchPolicy::limits_for`] query with (possibly updated) bounds.
//! Two policies ship:
//!
//! * [`FixedPolicy`] — static `max_batch`/`max_wait_cycles`, the PR 1
//!   behaviour. Its limits never move, so open-loop batch formation
//!   stays a pure function of the arrival stream (fleet-size
//!   independent event totals).
//! * [`SloAwarePolicy`] — tracks a window of observed request
//!   latencies and steers the limits toward a p99 target with an
//!   AIMD-style rule: shrink `max_wait`/`max_batch` when the observed
//!   tail approaches the SLO, grow them back toward the configured
//!   ceiling when there is slack. The policy runs either one **global**
//!   class (every model feeds one window and shares one pair of
//!   limits) or **per-model** [`SloClass`]es: each model gets its own
//!   target, ceiling, latency window and AIMD state, so a
//!   latency-critical model can run batch-tight while a throughput
//!   model on the same fleet batches deep. Every adjustment is a
//!   deterministic function of the observation sequence, so a `(seed,
//!   policy, workers)` triple reproduces a run exactly.

use std::fmt;

/// The scheduler's current batch-closure bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchLimits {
    /// Maximum requests per batch.
    pub max_batch: usize,
    /// Maximum cycles the oldest request of a batch may wait before the
    /// batch is dispatched anyway.
    pub max_wait_cycles: u64,
}

impl BatchLimits {
    /// Batch-of-one: every request dispatches immediately (the paper's
    /// batch-1 mobile setting).
    pub fn unbatched() -> Self {
        Self { max_batch: 1, max_wait_cycles: 0 }
    }
}

impl Default for BatchLimits {
    fn default() -> Self {
        Self { max_batch: 8, max_wait_cycles: 100_000 }
    }
}

/// What the serving engine saw when one batch completed. Fed to
/// [`BatchPolicy::observe`] in completion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchObservation {
    /// Model the batch served.
    pub model: usize,
    /// Requests in the batch.
    pub batch_size: usize,
    /// Cycle the batch became ready to dispatch.
    pub ready: u64,
    /// Cycle the batch started executing.
    pub start: u64,
    /// Cycle the batch completed.
    pub completion: u64,
    /// Worst member latency (its arrival to batch completion).
    pub max_latency_cycles: u64,
}

/// When the scheduler closes a batch.
///
/// Implementations must be deterministic: the limits returned may
/// depend only on the sequence of observations fed so far, never on
/// wall clocks or ambient state.
pub trait BatchPolicy: fmt::Debug {
    /// The policy's global bounds (for policies with per-model classes,
    /// the bounds of the first class).
    fn limits(&self) -> BatchLimits;

    /// The bounds the scheduler should apply to `model`'s lane right
    /// now. Policies without per-model state return the global limits.
    fn limits_for(&self, _model: usize) -> BatchLimits {
        self.limits()
    }

    /// Feedback after a batch completes (in completion order). Fixed
    /// policies ignore this.
    fn observe(&mut self, _observation: &BatchObservation) {}

    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// The static policy: constant `max_batch` / `max_wait_cycles`.
///
/// Structurally identical to [`BatchLimits`] (the `From` conversions
/// below are the single source of truth for that correspondence); it
/// exists as its own type so the fleet's scheduler can demand a policy
/// that *provably* never moves. With this policy, open-loop batch
/// formation depends only on the arrival stream, which is what makes
/// [`crate::ServeReport`]'s event totals independent of the fleet size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedPolicy {
    /// Maximum requests per batch.
    pub max_batch: usize,
    /// Maximum cycles the oldest request of a batch may wait before the
    /// batch is dispatched anyway.
    pub max_wait_cycles: u64,
}

impl From<BatchLimits> for FixedPolicy {
    fn from(limits: BatchLimits) -> Self {
        Self { max_batch: limits.max_batch, max_wait_cycles: limits.max_wait_cycles }
    }
}

impl From<FixedPolicy> for BatchLimits {
    fn from(policy: FixedPolicy) -> Self {
        Self { max_batch: policy.max_batch, max_wait_cycles: policy.max_wait_cycles }
    }
}

impl Default for FixedPolicy {
    fn default() -> Self {
        BatchLimits::default().into()
    }
}

impl FixedPolicy {
    /// Batch-of-one: every request dispatches immediately (the paper's
    /// batch-1 mobile setting).
    pub fn unbatched() -> Self {
        BatchLimits::unbatched().into()
    }
}

impl BatchPolicy for FixedPolicy {
    fn limits(&self) -> BatchLimits {
        (*self).into()
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

/// One model's latency SLO: the p99 target its batching window is
/// steered under and the deepest batching the model may ever use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloClass {
    /// Latency target the model's windowed p99 is steered under.
    pub target_p99_cycles: u64,
    /// Ceiling the model's limits may grow back to.
    pub ceiling: BatchLimits,
}

impl SloClass {
    /// A class steering toward `target_p99_cycles` with the default
    /// batching ceiling.
    pub fn new(target_p99_cycles: u64) -> Self {
        Self { target_p99_cycles, ceiling: BatchLimits::default() }
    }

    /// Replaces the batching ceiling.
    pub fn with_ceiling(mut self, ceiling: BatchLimits) -> Self {
        self.ceiling = ceiling;
        self
    }
}

/// The AIMD state of one SLO class: its configuration plus the current
/// limits and the sliding window of observed worst-member latencies.
#[derive(Debug, Clone, PartialEq)]
struct ClassState {
    class: SloClass,
    /// Floor for `max_wait_cycles` under backoff.
    min_wait_cycles: u64,
    /// Current limits.
    current: BatchLimits,
    /// Sliding window of observed worst-member latencies.
    window: Vec<u64>,
    /// Next slot to overwrite once the window is full.
    cursor: usize,
}

impl ClassState {
    fn new(class: SloClass) -> Self {
        assert!(class.target_p99_cycles > 0, "SLO target must be non-zero");
        assert!(class.ceiling.max_batch > 0, "max_batch ceiling must be non-zero");
        // The backoff floor must itself respect the ceiling, or a
        // ceiling below target/64 would make "multiplicative decrease"
        // *raise* the wait bound past the configured cap.
        let min_wait_cycles =
            (class.target_p99_cycles / 64).max(1).min(class.ceiling.max_wait_cycles);
        Self {
            class,
            min_wait_cycles,
            current: BatchLimits {
                max_batch: 1,
                max_wait_cycles: (class.target_p99_cycles / 8)
                    .max(min_wait_cycles)
                    .min(class.ceiling.max_wait_cycles),
            },
            window: Vec::with_capacity(SloAwarePolicy::WINDOW),
            cursor: 0,
        }
    }

    /// Windowed nearest-rank p99 of the observed latencies.
    fn windowed_p99(&self) -> u64 {
        let mut lat = self.window.clone();
        lat.sort_unstable();
        crate::report::nearest_rank(&lat, 99.0)
    }

    fn observe(&mut self, max_latency_cycles: u64) {
        if self.window.len() < SloAwarePolicy::WINDOW {
            self.window.push(max_latency_cycles);
        } else {
            self.window[self.cursor] = max_latency_cycles;
            self.cursor = (self.cursor + 1) % SloAwarePolicy::WINDOW;
        }
        if self.window.len() < SloAwarePolicy::WARMUP {
            return;
        }
        let p99 = self.windowed_p99();
        let target = self.class.target_p99_cycles;
        let ceiling = self.class.ceiling;
        if p99 > target / 5 * 4 {
            // Tail approaches the SLO: multiplicative decrease —
            // dispatch sooner, batch less.
            self.current.max_wait_cycles =
                (self.current.max_wait_cycles / 2).max(self.min_wait_cycles);
            self.current.max_batch = (self.current.max_batch - 1).max(1);
        } else if p99 < target / 5 * 2 {
            // Slack: additive increase toward the ceiling.
            let step = (self.current.max_wait_cycles / 4).max(1);
            self.current.max_wait_cycles =
                (self.current.max_wait_cycles + step).min(ceiling.max_wait_cycles);
            self.current.max_batch = (self.current.max_batch + 1).min(ceiling.max_batch);
        }
    }
}

/// Latency-SLO-aware adaptive policy.
///
/// Each class starts **tight** (batch-of-one, a small fraction of the
/// target as `max_wait`) so no request pays a deep batching window
/// before the policy has evidence, then keeps a sliding window of the
/// most recent observed request latencies (each batch contributes its
/// worst member). After every observation, once the window holds
/// [`SloAwarePolicy::WARMUP`] samples, the windowed p99 is compared
/// against the class target:
///
/// * **tail pressure** (`p99 > 4/5 · target`, i.e. the tail
///   *approaches* the SLO — a p99 exactly at the target is pressure):
///   multiplicative decrease — halve `max_wait_cycles` and drop one off
///   `max_batch` (floors: `min_wait_cycles`, batch 1). Smaller batches
///   dispatch sooner and shed queueing delay at the cost of
///   weight-streaming amortization.
/// * **slack** (`p99 < 2/5 · target`): additive increase — grow
///   `max_wait_cycles` by a quarter (at least 1) and `max_batch` by
///   one, capped at the configured ceiling, recovering batching
///   efficiency when the tail allows it.
///
/// The rule is the classic AIMD shape (as in congestion control):
/// conservative growth, aggressive backoff, converging to the deepest
/// batching window the SLO tolerates.
///
/// Built with [`SloAwarePolicy::new`], the policy runs one **global**
/// class: every model's observations feed one window and every lane
/// sees the same limits (the PR 2 behaviour). Built with
/// [`SloAwarePolicy::per_model`], model `m`'s lane is steered by
/// `classes[m]` alone: its own target, window and AIMD state.
#[derive(Debug, Clone, PartialEq)]
pub struct SloAwarePolicy {
    classes: Vec<ClassState>,
    per_model: bool,
}

impl SloAwarePolicy {
    /// Observations kept in each class's sliding latency window.
    pub const WINDOW: usize = 64;
    /// Observations required in a class before its first adjustment.
    pub const WARMUP: usize = 4;

    /// A policy steering every model toward one global
    /// `target_p99_cycles`, allowed to batch up to `ceiling`.
    ///
    /// # Panics
    ///
    /// Panics if the target is zero or `ceiling.max_batch` is zero.
    pub fn new(target_p99_cycles: u64, ceiling: BatchLimits) -> Self {
        Self {
            classes: vec![ClassState::new(SloClass { target_p99_cycles, ceiling })],
            per_model: false,
        }
    }

    /// A policy with one independent [`SloClass`] per model: model `m`
    /// is steered by `classes[m]` — its own target, ceiling, latency
    /// window and AIMD state. The classes list must match the fleet's
    /// model list.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty, or any class has a zero target or
    /// a zero `max_batch` ceiling.
    pub fn per_model(classes: Vec<SloClass>) -> Self {
        assert!(!classes.is_empty(), "per-model policy needs at least one class");
        Self { classes: classes.into_iter().map(ClassState::new).collect(), per_model: true }
    }

    /// The global latency target (for per-model policies, the first
    /// class's target; see [`SloAwarePolicy::class_target`]).
    pub fn target_p99_cycles(&self) -> u64 {
        self.classes[0].class.target_p99_cycles
    }

    /// The latency target steering `model`'s lane.
    pub fn class_target(&self, model: usize) -> u64 {
        self.classes[self.class_index(model)].class.target_p99_cycles
    }

    fn class_index(&self, model: usize) -> usize {
        if self.per_model {
            assert!(
                model < self.classes.len(),
                "model {model} has no SLO class (policy has {})",
                self.classes.len()
            );
            model
        } else {
            0
        }
    }
}

impl BatchPolicy for SloAwarePolicy {
    fn limits(&self) -> BatchLimits {
        self.classes[0].current
    }

    fn limits_for(&self, model: usize) -> BatchLimits {
        self.classes[self.class_index(model)].current
    }

    fn observe(&mut self, observation: &BatchObservation) {
        let idx = self.class_index(observation.model);
        self.classes[idx].observe(observation.max_latency_cycles);
    }

    fn name(&self) -> &'static str {
        if self.per_model {
            "slo-aware-per-model"
        } else {
            "slo-aware"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(latency: u64) -> BatchObservation {
        obs_for(0, latency)
    }

    fn obs_for(model: usize, latency: u64) -> BatchObservation {
        BatchObservation {
            model,
            batch_size: 1,
            ready: 0,
            start: 0,
            completion: latency,
            max_latency_cycles: latency,
        }
    }

    #[test]
    fn fixed_policy_never_moves() {
        let mut p = FixedPolicy { max_batch: 4, max_wait_cycles: 500 };
        let before = p.limits();
        for latency in [1u64, 1_000_000, 5] {
            p.observe(&obs(latency));
        }
        assert_eq!(p.limits(), before);
        assert_eq!(p.limits_for(3), before, "fixed limits are model-independent");
        assert_eq!(p.name(), "fixed");
    }

    #[test]
    fn slo_policy_starts_tight() {
        let ceiling = BatchLimits { max_batch: 8, max_wait_cycles: 100_000 };
        let p = SloAwarePolicy::new(10_000, ceiling);
        let start = p.limits();
        assert_eq!(start.max_batch, 1, "no speculative batching before evidence");
        assert!(start.max_wait_cycles <= 10_000 / 8);
        assert!(start.max_wait_cycles >= 1);
    }

    #[test]
    fn slo_policy_grows_under_slack_then_backs_off_under_pressure() {
        let ceiling = BatchLimits { max_batch: 8, max_wait_cycles: 100_000 };
        let mut p = SloAwarePolicy::new(10_000, ceiling);
        let start = p.limits();
        // Fast completions: limits must grow (never past the ceiling).
        for _ in 0..(SloAwarePolicy::WINDOW + 64) {
            p.observe(&obs(100));
        }
        let relaxed = p.limits();
        assert!(relaxed.max_wait_cycles > start.max_wait_cycles, "slack must grow the window");
        assert!(relaxed.max_batch > start.max_batch);
        assert_eq!(relaxed.max_batch, ceiling.max_batch, "full slack reaches the ceiling");
        assert_eq!(relaxed.max_wait_cycles, ceiling.max_wait_cycles);
        // The tail approaches the target (within the 4/5 band): back off.
        for _ in 0..SloAwarePolicy::WINDOW {
            p.observe(&obs(9_000));
        }
        let squeezed = p.limits();
        assert!(squeezed.max_wait_cycles < relaxed.max_wait_cycles, "pressure must shrink wait");
        assert!(squeezed.max_batch < relaxed.max_batch, "pressure must shrink batch");
        assert!(squeezed.max_batch >= 1);
    }

    #[test]
    fn slo_policy_floors_never_reach_zero() {
        let mut p = SloAwarePolicy::new(100, BatchLimits { max_batch: 2, max_wait_cycles: 10 });
        for _ in 0..256 {
            p.observe(&obs(1_000_000));
        }
        assert!(p.limits().max_batch >= 1);
        assert!(p.limits().max_wait_cycles >= 1);
    }

    /// Regression: with a ceiling below `target / 64` the backoff floor
    /// used to exceed the ceiling, so "multiplicative decrease" *grew*
    /// `max_wait_cycles` under tail pressure. The limits must never
    /// leave the configured box, in either adjustment direction.
    #[test]
    fn slo_policy_never_exceeds_a_tiny_ceiling() {
        let ceiling = BatchLimits { max_batch: 8, max_wait_cycles: 10 };
        let mut p = SloAwarePolicy::new(1_000_000, ceiling);
        for i in 0..256u64 {
            // Alternate pressure and slack to drive both branches.
            p.observe(&obs(if i % 2 == 0 { 5_000_000 } else { 1 }));
            let limits = p.limits();
            assert!(
                limits.max_wait_cycles <= ceiling.max_wait_cycles,
                "wait {} escaped ceiling {}",
                limits.max_wait_cycles,
                ceiling.max_wait_cycles
            );
            assert!(limits.max_batch <= ceiling.max_batch);
        }
    }

    #[test]
    fn slo_policy_is_deterministic() {
        let mk = || SloAwarePolicy::new(5_000, BatchLimits::default());
        let (mut a, mut b) = (mk(), mk());
        for i in 0..200u64 {
            let latency = (i * 7919) % 20_000;
            a.observe(&obs(latency));
            b.observe(&obs(latency));
        }
        assert_eq!(a, b);
        assert_eq!(a.limits(), b.limits());
    }

    /// AIMD boundary: when the wait floor equals the wait ceiling, the
    /// wait bound is pinned — neither pressure nor slack may move it,
    /// and `max_batch` still walks its own [1, ceiling] box.
    #[test]
    fn aimd_wait_floor_equal_to_ceiling_pins_the_wait_bound() {
        // target/64 = 1_000 >= ceiling wait 40, so min_wait clamps to
        // the ceiling: floor == ceiling == 40.
        let ceiling = BatchLimits { max_batch: 4, max_wait_cycles: 40 };
        let mut p = SloAwarePolicy::new(64_000, ceiling);
        assert_eq!(p.limits().max_wait_cycles, 40, "start clamps into the degenerate box");
        for i in 0..128u64 {
            p.observe(&obs(if i % 2 == 0 { 1_000_000 } else { 1 }));
            assert_eq!(p.limits().max_wait_cycles, 40, "floor == ceiling must pin the wait");
            assert!(p.limits().max_batch >= 1 && p.limits().max_batch <= 4);
        }
    }

    /// AIMD boundary: a single observation is below the warm-up count,
    /// so the limits must not move off their tight start.
    #[test]
    fn aimd_single_sample_window_never_adjusts() {
        let mut p = SloAwarePolicy::new(10_000, BatchLimits::default());
        let start = p.limits();
        p.observe(&obs(1_000_000)); // wild outlier, but only one sample
        assert_eq!(p.limits(), start, "one sample is not evidence");
        // Two more still sit below WARMUP = 4.
        p.observe(&obs(1_000_000));
        p.observe(&obs(1_000_000));
        assert_eq!(p.limits(), start);
        // The fourth completes the warm-up and finally backs off.
        p.observe(&obs(1_000_000));
        assert!(p.limits().max_wait_cycles < start.max_wait_cycles);
    }

    /// AIMD boundary: an observed p99 exactly at the target is
    /// pressure (`p99 > 4/5 · target` holds), so the policy backs off —
    /// running *at* the SLO leaves no headroom.
    #[test]
    fn aimd_p99_exactly_at_target_backs_off() {
        let target = 80_000u64;
        let mut p = SloAwarePolicy::new(target, BatchLimits::default());
        let start = p.limits();
        assert_eq!(start.max_wait_cycles, target / 8);
        for _ in 0..SloAwarePolicy::WARMUP {
            p.observe(&obs(target)); // windowed p99 == target exactly
        }
        let after = p.limits();
        assert_eq!(
            after.max_wait_cycles,
            start.max_wait_cycles / 2,
            "p99 == target must trigger multiplicative decrease"
        );
        assert_eq!(after.max_batch, 1);
    }

    /// Per-model classes adjust independently: pressure on model 0
    /// must not shrink model 1's window, and slack on model 1 must not
    /// grow model 0's.
    #[test]
    fn per_model_classes_have_independent_aimd_state() {
        let classes = vec![
            SloClass::new(10_000),
            SloClass::new(500_000)
                .with_ceiling(BatchLimits { max_batch: 16, max_wait_cycles: 200_000 }),
        ];
        let mut p = SloAwarePolicy::per_model(classes);
        assert_eq!(p.name(), "slo-aware-per-model");
        assert_eq!(p.class_target(0), 10_000);
        assert_eq!(p.class_target(1), 500_000);
        let start0 = p.limits_for(0);
        let start1 = p.limits_for(1);
        // Hammer model 0 with pressure, model 1 with slack.
        for _ in 0..64 {
            p.observe(&obs_for(0, 1_000_000));
            p.observe(&obs_for(1, 100));
        }
        assert!(p.limits_for(0).max_wait_cycles < start0.max_wait_cycles, "model 0 backs off");
        assert_eq!(p.limits_for(0).max_batch, 1);
        assert!(p.limits_for(1).max_wait_cycles > start1.max_wait_cycles, "model 1 grows");
        assert_eq!(p.limits_for(1).max_batch, 16, "model 1 reaches its own ceiling");
    }

    #[test]
    #[should_panic(expected = "no SLO class")]
    fn per_model_policy_rejects_unknown_models() {
        let p = SloAwarePolicy::per_model(vec![SloClass::new(1_000)]);
        let _ = p.limits_for(1);
    }

    #[test]
    fn global_policy_ignores_model_index() {
        let mut p = SloAwarePolicy::new(10_000, BatchLimits::default());
        for m in 0..4 {
            assert_eq!(p.limits_for(m), p.limits(), "global class covers every model");
        }
        // Observations from any model feed the one global window.
        for m in 0..SloAwarePolicy::WARMUP {
            p.observe(&obs_for(m, 1_000_000));
        }
        assert!(p.limits_for(9).max_wait_cycles < 10_000 / 8);
    }
}
