//! Batching policies: when the scheduler closes a batch.
//!
//! [`BatchPolicy`] is a trait so the dispatch rule can *adapt* to the
//! serving loop: after every batch completes, the engine feeds the
//! policy a [`BatchObservation`], and the policy answers the next
//! [`BatchLimits`] query with (possibly updated) bounds. Two policies
//! ship:
//!
//! * [`FixedPolicy`] — static `max_batch`/`max_wait_cycles`, the PR 1
//!   behaviour. Its limits never move, so open-loop batch formation
//!   stays a pure function of the arrival stream (fleet-size
//!   independent event totals).
//! * [`SloAwarePolicy`] — tracks a window of observed request
//!   latencies and steers the limits toward a p99 target with an
//!   AIMD-style rule: shrink `max_wait`/`max_batch` when the observed
//!   tail approaches the SLO, grow them back toward the configured
//!   ceiling when there is slack. Every adjustment is a deterministic
//!   function of the observation sequence, so a `(seed, policy,
//!   workers)` triple reproduces a run exactly.

use std::fmt;

/// The scheduler's current batch-closure bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchLimits {
    /// Maximum requests per batch.
    pub max_batch: usize,
    /// Maximum cycles the oldest request of a batch may wait before the
    /// batch is dispatched anyway.
    pub max_wait_cycles: u64,
}

impl BatchLimits {
    /// Batch-of-one: every request dispatches immediately (the paper's
    /// batch-1 mobile setting).
    pub fn unbatched() -> Self {
        Self { max_batch: 1, max_wait_cycles: 0 }
    }
}

impl Default for BatchLimits {
    fn default() -> Self {
        Self { max_batch: 8, max_wait_cycles: 100_000 }
    }
}

/// What the serving engine saw when one batch completed. Fed to
/// [`BatchPolicy::observe`] in completion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchObservation {
    /// Model the batch served.
    pub model: usize,
    /// Requests in the batch.
    pub batch_size: usize,
    /// Cycle the batch became ready to dispatch.
    pub ready: u64,
    /// Cycle the batch started executing.
    pub start: u64,
    /// Cycle the batch completed.
    pub completion: u64,
    /// Worst member latency (its arrival to batch completion).
    pub max_latency_cycles: u64,
}

/// When the scheduler closes a batch.
///
/// Implementations must be deterministic: the limits returned may
/// depend only on the sequence of observations fed so far, never on
/// wall clocks or ambient state.
pub trait BatchPolicy: fmt::Debug {
    /// The bounds the scheduler should apply right now.
    fn limits(&self) -> BatchLimits;

    /// Feedback after a batch completes (in completion order). Fixed
    /// policies ignore this.
    fn observe(&mut self, _observation: &BatchObservation) {}

    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// The static policy: constant `max_batch` / `max_wait_cycles`.
///
/// Structurally identical to [`BatchLimits`] (the `From` conversions
/// below are the single source of truth for that correspondence); it
/// exists as its own type so the fleet's scheduler can demand a policy
/// that *provably* never moves. With this policy, open-loop batch
/// formation depends only on the arrival stream, which is what makes
/// [`crate::ServeReport`]'s event totals independent of the fleet size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedPolicy {
    /// Maximum requests per batch.
    pub max_batch: usize,
    /// Maximum cycles the oldest request of a batch may wait before the
    /// batch is dispatched anyway.
    pub max_wait_cycles: u64,
}

impl From<BatchLimits> for FixedPolicy {
    fn from(limits: BatchLimits) -> Self {
        Self { max_batch: limits.max_batch, max_wait_cycles: limits.max_wait_cycles }
    }
}

impl From<FixedPolicy> for BatchLimits {
    fn from(policy: FixedPolicy) -> Self {
        Self { max_batch: policy.max_batch, max_wait_cycles: policy.max_wait_cycles }
    }
}

impl Default for FixedPolicy {
    fn default() -> Self {
        BatchLimits::default().into()
    }
}

impl FixedPolicy {
    /// Batch-of-one: every request dispatches immediately (the paper's
    /// batch-1 mobile setting).
    pub fn unbatched() -> Self {
        BatchLimits::unbatched().into()
    }
}

impl BatchPolicy for FixedPolicy {
    fn limits(&self) -> BatchLimits {
        (*self).into()
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

/// Latency-SLO-aware adaptive policy.
///
/// Starts **tight** (batch-of-one, a small fraction of the target as
/// `max_wait`) so no request pays a deep batching window before the
/// policy has evidence, then keeps a sliding window of the most recent
/// observed request latencies (each batch contributes its worst
/// member). After every observation, once the window holds
/// [`SloAwarePolicy::WARMUP`] samples, the windowed p99 is compared
/// against the target:
///
/// * **tail pressure** (`p99 > 4/5 · target`, i.e. the tail
///   *approaches* the SLO): multiplicative decrease — halve
///   `max_wait_cycles` and drop one off `max_batch` (floors:
///   `min_wait_cycles`, batch 1). Smaller batches dispatch sooner and
///   shed queueing delay at the cost of weight-streaming amortization.
/// * **slack** (`p99 < 2/5 · target`): additive increase — grow
///   `max_wait_cycles` by a quarter (at least 1) and `max_batch` by
///   one, capped at the configured ceiling, recovering batching
///   efficiency when the tail allows it.
///
/// The rule is the classic AIMD shape (as in congestion control):
/// conservative growth, aggressive backoff, converging to the deepest
/// batching window the SLO tolerates.
#[derive(Debug, Clone, PartialEq)]
pub struct SloAwarePolicy {
    /// Latency target the windowed p99 is steered under.
    target_p99_cycles: u64,
    /// Ceiling the limits may grow back to.
    ceiling: BatchLimits,
    /// Floor for `max_wait_cycles` under backoff.
    min_wait_cycles: u64,
    /// Current limits.
    current: BatchLimits,
    /// Sliding window of observed worst-member latencies.
    window: Vec<u64>,
    /// Next slot to overwrite once the window is full.
    cursor: usize,
}

impl SloAwarePolicy {
    /// Observations kept in the sliding latency window.
    pub const WINDOW: usize = 64;
    /// Observations required before the first adjustment.
    pub const WARMUP: usize = 4;

    /// A policy steering toward `target_p99_cycles`, allowed to batch
    /// up to `ceiling`. The starting limits are tight (batch-of-one,
    /// an eighth of the target as `max_wait`) and grow only as the
    /// observed tail shows slack.
    ///
    /// # Panics
    ///
    /// Panics if the target is zero or `ceiling.max_batch` is zero.
    pub fn new(target_p99_cycles: u64, ceiling: BatchLimits) -> Self {
        assert!(target_p99_cycles > 0, "SLO target must be non-zero");
        assert!(ceiling.max_batch > 0, "max_batch ceiling must be non-zero");
        // The backoff floor must itself respect the ceiling, or a
        // ceiling below target/64 would make "multiplicative decrease"
        // *raise* the wait bound past the configured cap.
        let min_wait_cycles = (target_p99_cycles / 64).max(1).min(ceiling.max_wait_cycles);
        Self {
            target_p99_cycles,
            ceiling,
            min_wait_cycles,
            current: BatchLimits {
                max_batch: 1,
                max_wait_cycles: (target_p99_cycles / 8)
                    .max(min_wait_cycles)
                    .min(ceiling.max_wait_cycles),
            },
            window: Vec::with_capacity(Self::WINDOW),
            cursor: 0,
        }
    }

    /// The latency target.
    pub fn target_p99_cycles(&self) -> u64 {
        self.target_p99_cycles
    }

    /// Windowed nearest-rank p99 of the observed latencies.
    fn windowed_p99(&self) -> u64 {
        let mut lat = self.window.clone();
        lat.sort_unstable();
        crate::report::nearest_rank(&lat, 99.0)
    }
}

impl BatchPolicy for SloAwarePolicy {
    fn limits(&self) -> BatchLimits {
        self.current
    }

    fn observe(&mut self, observation: &BatchObservation) {
        if self.window.len() < Self::WINDOW {
            self.window.push(observation.max_latency_cycles);
        } else {
            self.window[self.cursor] = observation.max_latency_cycles;
            self.cursor = (self.cursor + 1) % Self::WINDOW;
        }
        if self.window.len() < Self::WARMUP {
            return;
        }
        let p99 = self.windowed_p99();
        if p99 > self.target_p99_cycles / 5 * 4 {
            // Tail approaches the SLO: multiplicative decrease —
            // dispatch sooner, batch less.
            self.current.max_wait_cycles =
                (self.current.max_wait_cycles / 2).max(self.min_wait_cycles);
            self.current.max_batch = (self.current.max_batch - 1).max(1);
        } else if p99 < self.target_p99_cycles / 5 * 2 {
            // Slack: additive increase toward the ceiling.
            let step = (self.current.max_wait_cycles / 4).max(1);
            self.current.max_wait_cycles =
                (self.current.max_wait_cycles + step).min(self.ceiling.max_wait_cycles);
            self.current.max_batch = (self.current.max_batch + 1).min(self.ceiling.max_batch);
        }
    }

    fn name(&self) -> &'static str {
        "slo-aware"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(latency: u64) -> BatchObservation {
        BatchObservation {
            model: 0,
            batch_size: 1,
            ready: 0,
            start: 0,
            completion: latency,
            max_latency_cycles: latency,
        }
    }

    #[test]
    fn fixed_policy_never_moves() {
        let mut p = FixedPolicy { max_batch: 4, max_wait_cycles: 500 };
        let before = p.limits();
        for latency in [1u64, 1_000_000, 5] {
            p.observe(&obs(latency));
        }
        assert_eq!(p.limits(), before);
        assert_eq!(p.name(), "fixed");
    }

    #[test]
    fn slo_policy_starts_tight() {
        let ceiling = BatchLimits { max_batch: 8, max_wait_cycles: 100_000 };
        let p = SloAwarePolicy::new(10_000, ceiling);
        let start = p.limits();
        assert_eq!(start.max_batch, 1, "no speculative batching before evidence");
        assert!(start.max_wait_cycles <= 10_000 / 8);
        assert!(start.max_wait_cycles >= 1);
    }

    #[test]
    fn slo_policy_grows_under_slack_then_backs_off_under_pressure() {
        let ceiling = BatchLimits { max_batch: 8, max_wait_cycles: 100_000 };
        let mut p = SloAwarePolicy::new(10_000, ceiling);
        let start = p.limits();
        // Fast completions: limits must grow (never past the ceiling).
        for _ in 0..(SloAwarePolicy::WINDOW + 64) {
            p.observe(&obs(100));
        }
        let relaxed = p.limits();
        assert!(relaxed.max_wait_cycles > start.max_wait_cycles, "slack must grow the window");
        assert!(relaxed.max_batch > start.max_batch);
        assert_eq!(relaxed.max_batch, ceiling.max_batch, "full slack reaches the ceiling");
        assert_eq!(relaxed.max_wait_cycles, ceiling.max_wait_cycles);
        // The tail approaches the target (within the 4/5 band): back off.
        for _ in 0..SloAwarePolicy::WINDOW {
            p.observe(&obs(9_000));
        }
        let squeezed = p.limits();
        assert!(squeezed.max_wait_cycles < relaxed.max_wait_cycles, "pressure must shrink wait");
        assert!(squeezed.max_batch < relaxed.max_batch, "pressure must shrink batch");
        assert!(squeezed.max_batch >= 1);
    }

    #[test]
    fn slo_policy_floors_never_reach_zero() {
        let mut p = SloAwarePolicy::new(100, BatchLimits { max_batch: 2, max_wait_cycles: 10 });
        for _ in 0..256 {
            p.observe(&obs(1_000_000));
        }
        assert!(p.limits().max_batch >= 1);
        assert!(p.limits().max_wait_cycles >= 1);
    }

    /// Regression: with a ceiling below `target / 64` the backoff floor
    /// used to exceed the ceiling, so "multiplicative decrease" *grew*
    /// `max_wait_cycles` under tail pressure. The limits must never
    /// leave the configured box, in either adjustment direction.
    #[test]
    fn slo_policy_never_exceeds_a_tiny_ceiling() {
        let ceiling = BatchLimits { max_batch: 8, max_wait_cycles: 10 };
        let mut p = SloAwarePolicy::new(1_000_000, ceiling);
        for i in 0..256u64 {
            // Alternate pressure and slack to drive both branches.
            p.observe(&obs(if i % 2 == 0 { 5_000_000 } else { 1 }));
            let limits = p.limits();
            assert!(
                limits.max_wait_cycles <= ceiling.max_wait_cycles,
                "wait {} escaped ceiling {}",
                limits.max_wait_cycles,
                ceiling.max_wait_cycles
            );
            assert!(limits.max_batch <= ceiling.max_batch);
        }
    }

    #[test]
    fn slo_policy_is_deterministic() {
        let mk = || SloAwarePolicy::new(5_000, BatchLimits::default());
        let (mut a, mut b) = (mk(), mk());
        for i in 0..200u64 {
            let latency = (i * 7919) % 20_000;
            a.observe(&obs(latency));
            b.observe(&obs(latency));
        }
        assert_eq!(a, b);
        assert_eq!(a.limits(), b.limits());
    }
}
