//! Batched, multi-accelerator inference **serving** on top of the S2TA
//! simulator.
//!
//! The paper evaluates single inferences on a single accelerator; this
//! crate turns the cycle-accurate core into a throughput/latency
//! engine: an open-loop stream of inference requests is batched per
//! model and dispatched across a fleet of N simulated S2TA instances,
//! with the expensive W-DBB weight compilation shared fleet-wide
//! through the [`s2ta_core::WeightPlanCache`].
//!
//! * [`WorkloadSpec`] / [`Request`] — deterministic seeded open-loop
//!   request generation over the `s2ta-models` zoo (no wall clock, no
//!   OS randomness: a seed fully determines the stream).
//! * [`RequestQueue`] — per-model FIFO lanes.
//! * [`Scheduler`] / [`BatchPolicy`] — groups compatible requests into
//!   batches (size- or timeout-closed) and places them on simulated
//!   worker lanes. Batch formation is fleet-size independent, so
//!   aggregate simulation results are identical for every worker count.
//! * [`Fleet`] — N accelerator clones served by a host thread pool
//!   ([`s2ta_core::pool`]); batches run layer-major so memory-bound
//!   layers pay their weight DMA once per batch.
//! * [`ServeReport`] — throughput, p50/p95/p99 latency, per-worker
//!   utilization, aggregate [`s2ta_sim::EventCounts`] and energy via
//!   `s2ta-energy`.
//!
//! # Example
//!
//! ```
//! use s2ta_core::ArchKind;
//! use s2ta_energy::TechParams;
//! use s2ta_models::lenet5;
//! use s2ta_serve::{Fleet, WorkloadSpec};
//!
//! let models = [lenet5()];
//! let requests = WorkloadSpec::uniform(7, 32, 10_000.0, models.len()).generate();
//! let report = Fleet::new(ArchKind::S2taAw, 4).serve(&models, &requests);
//! assert_eq!(report.outcomes.len(), 32);
//! assert!(report.throughput_ips(&TechParams::tsmc16()) > 0.0);
//! ```
#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod fleet;
mod queue;
mod report;
mod scheduler;
mod workload;

pub use fleet::Fleet;
pub use queue::RequestQueue;
pub use report::{RequestOutcome, ServeReport, WorkerStats};
pub use scheduler::{Batch, BatchPolicy, Placement, Scheduler};
pub use workload::{Request, WorkloadSpec};
