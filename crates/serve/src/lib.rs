//! Batched, multi-accelerator inference **serving** on top of the S2TA
//! simulator.
//!
//! The paper evaluates single inferences on a single accelerator; this
//! crate turns the cycle-accurate core into a throughput/latency
//! engine: a stream of inference requests is batched per model and
//! dispatched across a fleet of simulated accelerator **lanes** —
//! homogeneous clones or a mixed SA/S2TA deployment — with the
//! expensive W-DBB weight compilation shared fleet-wide through the
//! [`s2ta_core::WeightPlanCache`] (keyed by `(arch, model, seed)`).
//!
//! * [`WorkloadSpec`] / [`Request`] — deterministic seeded open-loop
//!   request generation over the `s2ta-models` zoo (no wall clock, no
//!   OS randomness: a seed fully determines the stream).
//! * [`ClosedLoopSpec`] / [`ClosedLoopClient`] — closed-loop client
//!   populations: each client issues its next request only after the
//!   previous one completes, so offered load adapts to capacity.
//! * [`RequestQueue`] — per-model FIFO lanes, optionally bounded for
//!   admission control (tail drop).
//! * [`Scheduler`] — groups compatible requests into batches (size- or
//!   timeout-closed) and places them on simulated worker lanes. Batch
//!   formation under a fixed policy is fleet-size independent, so
//!   aggregate simulation results are identical for every worker count
//!   on a homogeneous fleet.
//! * [`BatchPolicy`] — the closure-rule trait: [`FixedPolicy`] (static
//!   bounds) or [`SloAwarePolicy`] (shrinks/grows `max_wait`/
//!   `max_batch` against an observed-p99 target — one global class, or
//!   one independent [`SloClass`] per model).
//! * [`FleetSpec`] / [`Lane`] / [`Fleet`] — a fleet built from an
//!   ordered list of lanes of any [`s2ta_core::ArchKind`] (e.g.
//!   `FleetSpec::mixed(&[(S2taAw, 2), (SaZvcg, 2)])`), served by a
//!   host thread pool ([`s2ta_core::pool`]); batches run layer-major
//!   so memory-bound layers pay their weight DMA once per batch.
//!   Open-loop ([`Fleet::serve`]), adaptive ([`Fleet::serve_adaptive`])
//!   and closed-loop ([`Fleet::serve_closed_loop`]) client modes.
//! * [`PlacementStrategy`] / [`ServiceEstimator`] — how batches route
//!   to lanes: arch-blind earliest-free (default), or affinity-aware
//!   placement that minimizes predicted completion time from
//!   per-`(arch, model)` service estimates bootstrapped out of the
//!   run's own completed batches. Affinity collapses to earliest-free
//!   on homogeneous fleets, byte-for-byte.
//! * [`ServeReport`] — goodput, drop rate, p50/p95/p99 latency
//!   (overall and per model), per-lane arch/busy/idle/energy breakdown
//!   ([`ServeReport::lane_breakdown`]), aggregate
//!   [`s2ta_sim::EventCounts`] and energy via `s2ta-energy`.
//! * [`Cluster`] / [`RoutingPolicy`] / [`ClusterReport`] — the shard
//!   tier: N independent fleets behind a deterministic router (random
//!   spray, join-shortest-queue, or power-of-two-choices over shard
//!   backlogs), with per-shard lane autoscaling against a diurnal day
//!   curve ([`AutoscalePolicy`], [`DiurnalSpec`], [`ScaleEvent`]) and
//!   global percentiles merged from per-request samples — never
//!   averaged per-shard percentiles.
//! * [`FaultSpec`] / [`FaultConfig`] — deterministic seeded fault
//!   injection (lane crashes, lane slowdowns, shard outages) with
//!   bounded deadline-aware retries ([`RetryPolicy`]), hedged dispatch
//!   ([`HedgePolicy`]), health-aware router failover and degraded-mode
//!   load shedding ([`DegradedMode`]); fault accounting rides every
//!   report as [`FaultStats`], inside report equality.
//!
//! # Example
//!
//! ```
//! use s2ta_core::ArchKind;
//! use s2ta_energy::TechParams;
//! use s2ta_models::lenet5;
//! use s2ta_serve::{Fleet, FleetSpec, PlacementStrategy, WorkloadSpec};
//!
//! let models = [lenet5()];
//! let requests = WorkloadSpec::uniform(7, 32, 10_000.0, models.len()).generate();
//! // A mixed fleet: two S2TA-AW lanes plus one dense-baseline lane,
//! // with affinity-aware batch routing.
//! let spec = FleetSpec::mixed(&[(ArchKind::S2taAw, 2), (ArchKind::SaZvcg, 1)]);
//! let fleet = Fleet::from_spec(spec).with_placement(PlacementStrategy::Affinity);
//! let report = fleet.serve(&models, &requests);
//! assert_eq!(report.outcomes.len(), 32);
//! assert!(report.throughput_ips(&TechParams::tsmc16()) > 0.0);
//! ```
#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod cluster;
mod fault;
mod fleet;
mod pipeline;
mod policy;
mod queue;
mod report;
mod scheduler;
mod timewheel;
mod trace;
mod workload;

pub use cluster::{
    AutoscalePolicy, Cluster, ClusterReport, RoutingPolicy, ScaleEvent, ShardSummary,
};
pub use fault::{
    DegradedMode, FaultConfig, FaultEvent, FaultPlan, FaultSpec, FaultTimeline, HedgePolicy,
    RetryPolicy, RetryQueue, TimelineEvent, WindowEdge,
};
pub use fleet::{Fleet, FleetSpec, Lane};
pub use pipeline::{PipelinePlan, StageAssignment};
pub use policy::{
    BatchLimits, BatchObservation, BatchPolicy, FixedPolicy, SloAwarePolicy, SloClass,
};
pub use queue::RequestQueue;
pub use report::{
    DroppedRequest, FailedRequest, FaultStats, LatencyHistogram, ModelServeStats,
    PipelineStageStats, PlanCacheActivity, RequestOutcome, ServeReport, ServedRequest, WorkerStats,
};
pub use scheduler::{Batch, Formation, Placement, PlacementStrategy, Scheduler, ServiceEstimator};
pub use timewheel::TimerWheel;
pub use trace::{
    CacheSample, FlightRecorder, HostSpan, HostSpans, MetricPoint, MetricsSample, ModelSeries,
    Trace, TraceCell, TraceConfig, TraceEvent, TraceEventKind,
};
pub use workload::{
    ClosedLoopClient, ClosedLoopSpec, DiurnalSpec, RateSegment, Request, WorkloadSpec,
};
