//! The accelerator fleet: N simulated S2TA instances served by a host
//! worker pool.
//!
//! A [`Fleet`] owns one [`Accelerator`] configuration whose clones share
//! a [`s2ta_core::WeightPlanCache`], so every worker reuses the same
//! compiled W-DBB weight plans. Serving a workload has three phases:
//!
//! 1. the [`Scheduler`] folds the arrival stream into batches
//!    (fleet-size independent, see [`crate::scheduler`]);
//! 2. every batch's cycle simulation runs on the host thread pool
//!    ([`s2ta_core::pool::parallel_map`] — `std::thread` + channels,
//!    sized to the machine, independent of the simulated fleet size),
//!    layer-major so a batch pays each layer's weight DMA once and
//!    members after the first run weights-resident;
//! 3. the scheduler places the measured batches onto the N simulated
//!    lanes and the per-request latencies fall out of the placement.
//!
//! Simulated results never depend on host thread timing: batch events
//! are a pure function of the batch, and placement is deterministic.

use crate::report::{RequestOutcome, ServeReport, WorkerStats};
use crate::scheduler::{Batch, BatchPolicy, Scheduler};
use crate::workload::Request;
use s2ta_core::{pool, Accelerator, ArchKind, WeightResidency};
use s2ta_models::ModelSpec;
use s2ta_sim::EventCounts;

/// A pool of N identical simulated accelerators behind one scheduler.
#[derive(Debug, Clone)]
pub struct Fleet {
    accelerator: Accelerator,
    workers: usize,
    scheduler: Scheduler,
    weight_seed: u64,
}

impl Fleet {
    /// A fleet of `workers` preset accelerators of `kind` with the
    /// default batching policy.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(kind: ArchKind, workers: usize) -> Self {
        Self::with_accelerator(Accelerator::preset(kind), workers)
    }

    /// A fleet of `workers` clones of an explicit accelerator.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn with_accelerator(accelerator: Accelerator, workers: usize) -> Self {
        assert!(workers > 0, "a fleet needs at least one worker");
        Self {
            accelerator,
            workers,
            scheduler: Scheduler::new(BatchPolicy::default()),
            weight_seed: 42,
        }
    }

    /// Replaces the batching policy.
    pub fn with_policy(mut self, policy: BatchPolicy) -> Self {
        self.scheduler = Scheduler::new(policy);
        self
    }

    /// Replaces the weight seed (the models' shared parameters).
    pub fn with_weight_seed(mut self, seed: u64) -> Self {
        self.weight_seed = seed;
        self
    }

    /// The fleet's accelerator template.
    pub fn accelerator(&self) -> &Accelerator {
        &self.accelerator
    }

    /// Number of simulated workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Serves a request stream against `models` and reports.
    ///
    /// # Panics
    ///
    /// Panics if a request names a model index outside `models`, or if
    /// arrivals are unsorted.
    pub fn serve(&self, models: &[ModelSpec], requests: &[Request]) -> ServeReport {
        let batches = self.scheduler.form_batches(requests, models.len());

        // Compile each model's weight plan once, before fan-out, so the
        // parallel phase starts with a warm cache instead of racing
        // compiles of the same plan.
        let mut used: Vec<usize> = batches.iter().map(|b| b.model).collect();
        used.sort_unstable();
        used.dedup();
        for &m in &used {
            self.accelerator.plan_model(&models[m], self.weight_seed);
        }

        // Simulate every batch on the host pool (order-preserving, so
        // the result is identical for any host worker count). The host
        // pool is sized to the machine, not to the simulated fleet:
        // only placement below sees the N lanes.
        let host_workers = pool::default_workers().min(batches.len());
        let executions =
            pool::parallel_map(&batches, host_workers, |b| self.execute_batch(models, b));

        // Deterministic placement of the measured batches on the
        // simulated lanes.
        let service: Vec<u64> = executions.iter().map(|e| e.service_cycles).collect();
        let placements = self.scheduler.place(&batches, &service, self.workers);

        let mut outcomes: Vec<RequestOutcome> = Vec::with_capacity(requests.len());
        let mut workers = vec![WorkerStats::default(); self.workers];
        let mut total_events = EventCounts::default();
        let mut makespan = 0u64;
        for (batch, (exec, placement)) in batches.iter().zip(executions.iter().zip(&placements)) {
            total_events += exec.events;
            makespan = makespan.max(placement.completion);
            let lane = &mut workers[placement.worker];
            lane.busy_cycles += exec.service_cycles;
            lane.batches += 1;
            lane.requests += batch.requests.len();
            for r in &batch.requests {
                outcomes.push(RequestOutcome {
                    id: r.id,
                    model: models[batch.model].name.to_string(),
                    arrival: r.arrival,
                    start: placement.start,
                    completion: placement.completion,
                    batch: batch.id,
                    worker: placement.worker,
                });
            }
        }
        outcomes.sort_by_key(|o| o.id);

        ServeReport {
            arch: self.accelerator.config().kind.to_string(),
            outcomes,
            batches: batches.len(),
            workers,
            total_events,
            makespan_cycles: makespan,
        }
    }

    /// Simulates one batch, layer-major: each layer's weights stream
    /// once and stay resident for the rest of the batch, which is where
    /// batching wins on the memory-bound FC/depthwise layers (paper
    /// Sec. 8.3).
    fn execute_batch(&self, models: &[ModelSpec], batch: &Batch) -> BatchExecution {
        let model = &models[batch.model];
        let plan = self.accelerator.plan_model(model, self.weight_seed);
        let mut events = EventCounts::default();
        for (layer, layer_plan) in model.layers.iter().zip(plan.layers()) {
            for (i, request) in batch.requests.iter().enumerate() {
                let residency =
                    if i == 0 { WeightResidency::Streamed } else { WeightResidency::Resident };
                let report = self.accelerator.run_layer_planned(
                    layer_plan,
                    layer,
                    request.act_seed,
                    residency,
                );
                events += report.events;
            }
        }
        BatchExecution { service_cycles: events.cycles, events }
    }
}

/// The measured outcome of simulating one batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BatchExecution {
    service_cycles: u64,
    events: EventCounts,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadSpec;
    use s2ta_models::lenet5;

    fn tiny_workload(n: usize) -> (Vec<ModelSpec>, Vec<Request>) {
        let models = vec![lenet5()];
        let reqs = WorkloadSpec::uniform(11, n, 20_000.0, 1).generate();
        (models, reqs)
    }

    #[test]
    fn serves_every_request_exactly_once() {
        let (models, reqs) = tiny_workload(24);
        let report = Fleet::new(ArchKind::S2taAw, 3).serve(&models, &reqs);
        assert_eq!(report.outcomes.len(), 24);
        for (i, o) in report.outcomes.iter().enumerate() {
            assert_eq!(o.id, i as u64, "outcomes must be dense by id");
            assert!(o.completion > o.arrival);
            assert!(o.worker < 3);
        }
        let served: usize = report.workers.iter().map(|w| w.requests).sum();
        assert_eq!(served, 24);
    }

    #[test]
    fn deterministic_across_runs_and_aggregate_across_fleet_sizes() {
        let (models, reqs) = tiny_workload(16);
        let fleet = Fleet::new(ArchKind::S2taAw, 2);
        let a = fleet.serve(&models, &reqs);
        let b = fleet.serve(&models, &reqs);
        assert_eq!(a, b, "same fleet, same workload, same report");
        let c = Fleet::new(ArchKind::S2taAw, 5).serve(&models, &reqs);
        assert_eq!(a.total_events, c.total_events, "events must not depend on fleet size");
        assert_eq!(a.batches, c.batches);
        assert_eq!(a.outcomes.len(), c.outcomes.len());
    }

    #[test]
    fn more_workers_never_hurt_latency() {
        let (models, reqs) = tiny_workload(32);
        let one = Fleet::new(ArchKind::S2taAw, 1).serve(&models, &reqs);
        let four = Fleet::new(ArchKind::S2taAw, 4).serve(&models, &reqs);
        assert!(four.makespan_cycles <= one.makespan_cycles);
        assert!(four.p99_cycles() <= one.p99_cycles());
    }

    #[test]
    fn batching_beats_unbatched_on_memory_bound_models() {
        // LeNet is FC-heavy; amortizing weight streaming across a batch
        // must reduce total simulated cycles.
        let (models, reqs) = tiny_workload(32);
        let batched = Fleet::new(ArchKind::S2taAw, 2)
            .with_policy(BatchPolicy { max_batch: 8, max_wait_cycles: 1_000_000 })
            .serve(&models, &reqs);
        let unbatched = Fleet::new(ArchKind::S2taAw, 2)
            .with_policy(BatchPolicy::unbatched())
            .serve(&models, &reqs);
        assert!(
            batched.total_events.cycles < unbatched.total_events.cycles,
            "batched {} vs unbatched {} cycles",
            batched.total_events.cycles,
            unbatched.total_events.cycles
        );
        assert_eq!(
            batched.total_events.macs_active, unbatched.total_events.macs_active,
            "batching changes time, not arithmetic"
        );
    }
}
