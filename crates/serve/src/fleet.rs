//! The accelerator fleet: N simulated S2TA instances served by a host
//! worker pool.
//!
//! A [`Fleet`] owns one [`Accelerator`] configuration whose clones share
//! a [`s2ta_core::WeightPlanCache`], so every worker reuses the same
//! compiled W-DBB weight plans. Three client modes are served:
//!
//! * [`Fleet::serve`] — **open loop, fixed policy**: the arrival stream
//!   is folded into batches up front (fleet-size independent, see
//!   [`crate::scheduler`]), every batch's cycle simulation fans out
//!   over the host thread pool ([`s2ta_core::pool::parallel_map`]), and
//!   the batches are then placed on the N simulated lanes.
//! * [`Fleet::serve_adaptive`] — **open loop, adaptive policy**: the
//!   same arrival stream driven through the event-driven engine so a
//!   [`BatchPolicy`] can steer `max_batch`/`max_wait` from observed
//!   completions.
//! * [`Fleet::serve_closed_loop`] — **closed loop**: C concurrent
//!   clients ([`crate::ClosedLoopSpec`]) each issue their next request
//!   only after the previous one completes; arrivals are iterated
//!   per-request in simulated time as a fixed point of the placement.
//!
//! All three modes honor the fleet's admission bound
//! ([`Fleet::with_queue_capacity`]): a request arriving while its model
//! lane is full is tail-dropped and surfaced as
//! [`RequestOutcome::Dropped`].
//!
//! Simulated results never depend on host thread timing: batch events
//! are a pure function of the batch, and both the up-front placement
//! and the event-driven engine are deterministic. The `outcomes` list
//! in the returned [`ServeReport`] is sorted by request id
//! post-placement (it is assembled in batch/dispatch order internally),
//! so `outcomes[i].id() == i` always holds for a dense arrival stream.

use crate::policy::{BatchLimits, BatchObservation, BatchPolicy, FixedPolicy};
use crate::queue::RequestQueue;
use crate::report::{DroppedRequest, RequestOutcome, ServeReport, ServedRequest, WorkerStats};
use crate::scheduler::{Batch, DeadlineHeap, Formation, Scheduler};
use crate::workload::{ClosedLoopClient, ClosedLoopSpec, Request};
use s2ta_core::{pool, Accelerator, ArchKind, WeightResidency};
use s2ta_models::ModelSpec;
use s2ta_sim::EventCounts;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A pool of N identical simulated accelerators behind one scheduler.
#[derive(Debug, Clone)]
pub struct Fleet {
    accelerator: Accelerator,
    workers: usize,
    scheduler: Scheduler,
    weight_seed: u64,
    queue_capacity: Option<usize>,
}

impl Fleet {
    /// A fleet of `workers` preset accelerators of `kind` with the
    /// default batching policy and unbounded admission.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(kind: ArchKind, workers: usize) -> Self {
        Self::with_accelerator(Accelerator::preset(kind), workers)
    }

    /// A fleet of `workers` clones of an explicit accelerator.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn with_accelerator(accelerator: Accelerator, workers: usize) -> Self {
        assert!(workers > 0, "a fleet needs at least one worker");
        Self {
            accelerator,
            workers,
            scheduler: Scheduler::new(FixedPolicy::default()),
            weight_seed: 42,
            queue_capacity: None,
        }
    }

    /// Replaces the fixed batching policy used by [`Fleet::serve`].
    pub fn with_policy(mut self, policy: FixedPolicy) -> Self {
        self.scheduler = Scheduler::new(policy);
        self
    }

    /// Bounds every model lane to `capacity` pending requests: a
    /// request arriving while its lane is full is tail-dropped
    /// (admission control). Applies to every client mode.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity);
        self
    }

    /// Replaces the weight seed (the models' shared parameters).
    pub fn with_weight_seed(mut self, seed: u64) -> Self {
        self.weight_seed = seed;
        self
    }

    /// The fleet's accelerator template.
    pub fn accelerator(&self) -> &Accelerator {
        &self.accelerator
    }

    /// Number of simulated workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The per-lane admission bound, if any.
    pub fn queue_capacity(&self) -> Option<usize> {
        self.queue_capacity
    }

    fn queue(&self, models: usize) -> RequestQueue {
        match self.queue_capacity {
            Some(cap) => RequestQueue::bounded(models, cap),
            None => RequestQueue::new(models),
        }
    }

    /// Serves an open-loop request stream against `models` with the
    /// fleet's fixed policy and reports.
    ///
    /// Batch formation (and admission, if a queue capacity is set)
    /// depends only on the arrival stream, so the batch set, drop set
    /// and aggregate event totals are identical for every fleet size;
    /// batch simulation fans out over the host thread pool.
    ///
    /// # Panics
    ///
    /// Panics if a request names a model index outside `models`, or if
    /// arrivals are unsorted.
    pub fn serve(&self, models: &[ModelSpec], requests: &[Request]) -> ServeReport {
        let Formation { batches, dropped } =
            self.scheduler.form_batches_bounded(requests, models.len(), self.queue_capacity);

        // Compile each model's weight plan once, before fan-out, so the
        // parallel phase starts with a warm cache instead of racing
        // compiles of the same plan.
        let mut used: Vec<usize> = batches.iter().map(|b| b.model).collect();
        used.sort_unstable();
        used.dedup();
        for &m in &used {
            self.accelerator.plan_model(&models[m], self.weight_seed);
        }

        // Simulate every batch on the host pool (order-preserving, so
        // the result is identical for any host worker count). The host
        // pool is sized to the machine, not to the simulated fleet:
        // only placement below sees the N lanes.
        let host_workers = pool::default_workers().min(batches.len());
        let executions =
            pool::parallel_map(&batches, host_workers, |b| self.execute_batch(models, b));

        // Deterministic placement of the measured batches on the
        // simulated lanes.
        let service: Vec<u64> = executions.iter().map(|e| e.service_cycles).collect();
        let placements = self.scheduler.place(&batches, &service, self.workers);

        let mut outcomes: Vec<RequestOutcome> = Vec::with_capacity(requests.len() + dropped.len());
        let mut workers = vec![WorkerStats::default(); self.workers];
        let mut total_events = EventCounts::default();
        let mut makespan = 0u64;
        for (batch, (exec, placement)) in batches.iter().zip(executions.iter().zip(&placements)) {
            total_events += exec.events;
            makespan = makespan.max(placement.completion);
            let lane = &mut workers[placement.worker];
            lane.busy_cycles += exec.service_cycles;
            lane.batches += 1;
            lane.requests += batch.requests.len();
            for r in &batch.requests {
                outcomes.push(RequestOutcome::Served(ServedRequest {
                    id: r.id,
                    model: models[batch.model].name.to_string(),
                    arrival: r.arrival,
                    start: placement.start,
                    completion: placement.completion,
                    batch: batch.id,
                    worker: placement.worker,
                }));
            }
        }
        for r in &dropped {
            outcomes.push(RequestOutcome::Dropped(DroppedRequest {
                id: r.id,
                model: models[r.model].name.to_string(),
                arrival: r.arrival,
            }));
        }
        outcomes.sort_by_key(RequestOutcome::id);

        ServeReport {
            arch: self.accelerator.config().kind.to_string(),
            policy: "fixed".to_string(),
            outcomes,
            batches: batches.len(),
            workers,
            total_events,
            makespan_cycles: makespan,
        }
    }

    /// Serves an open-loop request stream through the event-driven
    /// engine, letting `policy` adapt its batch bounds from observed
    /// completions.
    ///
    /// With a [`FixedPolicy`] matching the fleet's, this produces the
    /// identical report to [`Fleet::serve`] (the engine replays the
    /// same formation and placement decisions in event order); an
    /// adaptive policy such as [`crate::SloAwarePolicy`] trades batch
    /// depth against observed tail latency as the run progresses. The
    /// run is deterministic for a fixed `(stream, policy, workers)`.
    ///
    /// # Panics
    ///
    /// Panics if a request names a model index outside `models`, or if
    /// arrivals are unsorted.
    pub fn serve_adaptive(
        &self,
        models: &[ModelSpec],
        requests: &[Request],
        policy: &mut dyn BatchPolicy,
    ) -> ServeReport {
        let mut arrivals = ArrivalSource::open(requests);
        Engine::new(self, models).run(&mut arrivals, policy)
    }

    /// Serves a closed-loop client population: each of the spec's C
    /// clients issues its next request only after its previous one
    /// completes (or is dropped), plus an exponential think gap.
    /// Arrivals are therefore computed per-request in simulated time as
    /// the engine advances — a deterministic fixed point of the
    /// placement for a fixed `(seed, policy, workers)`.
    ///
    /// # Panics
    ///
    /// Panics if the spec's mix length differs from `models`, or the
    /// spec is invalid (no clients, bad mix, negative think time).
    pub fn serve_closed_loop(
        &self,
        models: &[ModelSpec],
        spec: &ClosedLoopSpec,
        policy: &mut dyn BatchPolicy,
    ) -> ServeReport {
        assert_eq!(spec.mix.len(), models.len(), "closed-loop mix must name every fleet model");
        let mut arrivals = ArrivalSource::closed(spec);
        Engine::new(self, models).run(&mut arrivals, policy)
    }

    /// Simulates one batch, layer-major: each layer's weights stream
    /// once and stay resident for the rest of the batch, which is where
    /// batching wins on the memory-bound FC/depthwise layers (paper
    /// Sec. 8.3).
    fn execute_batch(&self, models: &[ModelSpec], batch: &Batch) -> BatchExecution {
        let model = &models[batch.model];
        let plan = self.accelerator.plan_model(model, self.weight_seed);
        let mut events = EventCounts::default();
        for (layer, layer_plan) in model.layers.iter().zip(plan.layers()) {
            for (i, request) in batch.requests.iter().enumerate() {
                let residency =
                    if i == 0 { WeightResidency::Streamed } else { WeightResidency::Resident };
                let report = self.accelerator.run_layer_planned(
                    layer_plan,
                    layer,
                    request.act_seed,
                    residency,
                );
                events += report.events;
            }
        }
        BatchExecution { service_cycles: events.cycles, events }
    }
}

/// The measured outcome of simulating one batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BatchExecution {
    service_cycles: u64,
    events: EventCounts,
}

/// A batch sealed and dispatched by the event-driven engine.
#[derive(Debug, Clone)]
struct EngineBatch {
    model: usize,
    requests: Vec<Request>,
    ready: u64,
    start: u64,
}

/// Where the engine's next request comes from: a pre-generated sorted
/// open-loop stream, or a closed-loop client population advanced on
/// completions.
enum ArrivalSource<'a> {
    Open {
        stream: &'a [Request],
        next: usize,
    },
    Closed {
        clients: Vec<ClosedLoopClient>,
        /// One staged (issued, not yet arrived) request per client.
        staged: Vec<Option<Request>>,
        /// Staged arrivals ordered by `(arrival, client)` so
        /// simultaneous issues resolve deterministically.
        horizon: BinaryHeap<Reverse<(u64, usize)>>,
        issued: usize,
        budget: usize,
    },
}

impl<'a> ArrivalSource<'a> {
    fn open(stream: &'a [Request]) -> Self {
        Self::Open { stream, next: 0 }
    }

    fn closed(spec: &ClosedLoopSpec) -> Self {
        let mut clients = spec.spawn_clients();
        let budget = spec.requests;
        let mut staged: Vec<Option<Request>> = vec![None; clients.len()];
        let mut horizon = BinaryHeap::new();
        let mut issued = 0usize;
        for (c, client) in clients.iter_mut().enumerate() {
            if issued == budget {
                break;
            }
            // Ids are provisional at issue time; the engine assigns the
            // dense arrival-order id when the request enters the system.
            let r = client.issue(0, 0);
            horizon.push(Reverse((r.arrival, c)));
            staged[c] = Some(r);
            issued += 1;
        }
        Self::Closed { clients, staged, horizon, issued, budget }
    }

    /// Arrival time of the next request, if any.
    fn peek_time(&self) -> Option<u64> {
        match self {
            Self::Open { stream, next } => stream.get(*next).map(|r| r.arrival),
            Self::Closed { horizon, .. } => horizon.peek().map(|Reverse((t, _))| *t),
        }
    }

    /// Takes the next request. Open-loop requests keep their caller
    /// ids; closed-loop requests are assigned the dense arrival-order
    /// id `next_id`. Returns the request and, for closed-loop sources,
    /// the issuing client.
    fn pop(&mut self, next_id: u64) -> (Request, Option<usize>) {
        match self {
            Self::Open { stream, next } => {
                let r = stream[*next];
                *next += 1;
                (r, None)
            }
            Self::Closed { staged, horizon, .. } => {
                let Reverse((_, c)) = horizon.pop().expect("pop follows peek");
                let mut r = staged[c].take().expect("staged request for heap entry");
                r.id = next_id;
                (r, Some(c))
            }
        }
    }

    /// Notifies a closed-loop client that its request finished (served
    /// or dropped) at `now`, staging its next issue if budget remains.
    /// No-op for open-loop sources.
    fn request_finished(&mut self, client: Option<usize>, now: u64) {
        let Some(c) = client else { return };
        let Self::Closed { clients, staged, horizon, issued, budget } = self else {
            return;
        };
        if *issued == *budget {
            return;
        }
        let r = clients[c].issue(now, 0);
        horizon.push(Reverse((r.arrival, c)));
        staged[c] = Some(r);
        *issued += 1;
    }
}

/// The event-driven serving engine: advances simulated time through
/// three event kinds — batch completions, request arrivals, and batch
/// wait-deadline expiries — processed in `(time, kind)` order
/// (completions, then arrivals, then deadlines at equal times, which
/// reproduces the stream-fold path's `deadline < now` boundary: an
/// arrival exactly at a deadline still joins the batch).
struct Engine<'a> {
    fleet: &'a Fleet,
    models: &'a [ModelSpec],
    queue: RequestQueue,
    deadlines: DeadlineHeap,
    /// In-flight batches ordered by `(completion, batch index)`.
    in_flight: BinaryHeap<Reverse<(u64, usize)>>,
    batches: Vec<EngineBatch>,
    free_at: Vec<u64>,
    outcomes: Vec<RequestOutcome>,
    worker_stats: Vec<WorkerStats>,
    total_events: EventCounts,
    makespan: u64,
    /// Issuing client per request id (closed loop only).
    client_of: Vec<Option<usize>>,
    next_id: u64,
}

impl<'a> Engine<'a> {
    fn new(fleet: &'a Fleet, models: &'a [ModelSpec]) -> Self {
        Self {
            fleet,
            models,
            queue: fleet.queue(models.len()),
            deadlines: DeadlineHeap::new(),
            in_flight: BinaryHeap::new(),
            batches: Vec::new(),
            free_at: vec![0u64; fleet.workers],
            outcomes: Vec::new(),
            worker_stats: vec![WorkerStats::default(); fleet.workers],
            total_events: EventCounts::default(),
            makespan: 0,
            client_of: Vec::new(),
            next_id: 0,
        }
    }

    fn run(mut self, arrivals: &mut ArrivalSource, policy: &mut dyn BatchPolicy) -> ServeReport {
        let mut last_arrival = 0u64;
        loop {
            // The next event is the earliest of (completion, arrival,
            // deadline); kind breaks ties so same-cycle events fire in
            // a fixed order.
            let completion = self.in_flight.peek().map(|Reverse((t, _))| (*t, 0u8));
            let arrival = arrivals.peek_time().map(|t| (t, 1u8));
            let deadline = self.deadlines.peek_live(&self.queue).map(|(t, _)| (t, 2u8));
            let Some((_, kind)) = [completion, arrival, deadline].into_iter().flatten().min()
            else {
                break;
            };
            match kind {
                0 => self.on_completion(arrivals, policy),
                1 => {
                    let (r, client) = arrivals.pop(self.next_id);
                    self.next_id += 1;
                    assert!(r.arrival >= last_arrival, "arrival stream must be sorted");
                    last_arrival = r.arrival;
                    self.on_arrival(r, client, arrivals, policy);
                }
                _ => self.on_deadline(policy),
            }
        }
        self.into_report(policy.name())
    }

    fn on_completion(&mut self, arrivals: &mut ArrivalSource, policy: &mut dyn BatchPolicy) {
        let Reverse((t, index)) = self.in_flight.pop().expect("peeked");
        let batch = &self.batches[index];
        let max_latency_cycles = batch.requests.iter().map(|r| t - r.arrival).max().unwrap_or(0);
        policy.observe(&BatchObservation {
            model: batch.model,
            batch_size: batch.requests.len(),
            ready: batch.ready,
            start: batch.start,
            completion: t,
            max_latency_cycles,
        });
        // Closed-loop clients issue their next request now. The map is
        // only populated in closed-loop mode, where engine-assigned ids
        // are dense; open-loop lookups miss and no-op.
        for i in 0..self.batches[index].requests.len() {
            let id = self.batches[index].requests[i].id as usize;
            let client = self.client_of.get(id).copied().flatten();
            arrivals.request_finished(client, t);
        }
    }

    fn on_arrival(
        &mut self,
        request: Request,
        client: Option<usize>,
        arrivals: &mut ArrivalSource,
        policy: &mut dyn BatchPolicy,
    ) {
        if client.is_some() {
            debug_assert_eq!(self.client_of.len() as u64, request.id);
            self.client_of.push(client);
        }
        let limits = policy.limits();
        assert!(limits.max_batch > 0, "max_batch must be non-zero");
        let lane = request.model;
        let was_empty = self.queue.pending(lane) == 0;
        if !self.queue.try_push(request) {
            self.outcomes.push(RequestOutcome::Dropped(DroppedRequest {
                id: request.id,
                model: self.models[lane].name.to_string(),
                arrival: request.arrival,
            }));
            // A drop completes the client's outstanding request
            // immediately; it thinks and retries from the drop time.
            arrivals.request_finished(client, request.arrival);
            return;
        }
        if was_empty {
            self.deadlines.arm(lane, &request, limits.max_wait_cycles);
        }
        // `>=` rather than `==`: an adaptive policy may have shrunk
        // `max_batch` below the lane's backlog, in which case several
        // batches seal back-to-back at this arrival.
        while self.queue.pending(lane) >= limits.max_batch {
            self.seal(lane, request.arrival, limits);
        }
    }

    fn on_deadline(&mut self, policy: &mut dyn BatchPolicy) {
        let (deadline, lane) =
            self.deadlines.peek_live(&self.queue).expect("peeked before dispatch");
        self.deadlines.pop();
        let limits = policy.limits();
        self.seal(lane, deadline, limits);
    }

    /// Seals one batch off `lane` (up to `max_batch` members), arms the
    /// lane's next deadline if requests remain, and dispatches the
    /// batch to the earliest-free simulated worker.
    fn seal(&mut self, lane: usize, ready: u64, limits: BatchLimits) {
        let members = self.queue.pop_batch(lane, limits.max_batch.max(1));
        debug_assert!(!members.is_empty());
        // An adaptive shrink can leave a lane's re-armed deadline in
        // the past relative to later members; a batch is never ready
        // before its newest member arrived.
        let ready = ready.max(members.last().map_or(0, |r| r.arrival));
        if let Some(front) = self.queue.front(lane) {
            let front = *front;
            self.deadlines.arm(lane, &front, limits.max_wait_cycles);
        }

        let batch = Batch { id: self.batches.len(), model: lane, requests: members, ready };
        let exec = self.fleet.execute_batch(self.models, &batch);
        let (worker, &free) =
            self.free_at.iter().enumerate().min_by_key(|&(idx, &t)| (t, idx)).expect("workers > 0");
        let start = free.max(ready);
        let completion = start + exec.service_cycles;
        self.free_at[worker] = completion;
        self.total_events += exec.events;
        self.makespan = self.makespan.max(completion);
        let stats = &mut self.worker_stats[worker];
        stats.busy_cycles += exec.service_cycles;
        stats.batches += 1;
        stats.requests += batch.requests.len();
        for r in &batch.requests {
            self.outcomes.push(RequestOutcome::Served(ServedRequest {
                id: r.id,
                model: self.models[batch.model].name.to_string(),
                arrival: r.arrival,
                start,
                completion,
                batch: batch.id,
                worker,
            }));
        }
        self.in_flight.push(Reverse((completion, batch.id)));
        self.batches.push(EngineBatch {
            model: batch.model,
            requests: batch.requests,
            ready,
            start,
        });
    }

    fn into_report(mut self, policy_name: &str) -> ServeReport {
        self.outcomes.sort_by_key(RequestOutcome::id);
        ServeReport {
            arch: self.fleet.accelerator.config().kind.to_string(),
            policy: policy_name.to_string(),
            outcomes: self.outcomes,
            batches: self.batches.len(),
            workers: self.worker_stats,
            total_events: self.total_events,
            makespan_cycles: self.makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::SloAwarePolicy;
    use crate::workload::WorkloadSpec;
    use s2ta_models::lenet5;

    fn tiny_workload(n: usize) -> (Vec<ModelSpec>, Vec<Request>) {
        let models = vec![lenet5()];
        let reqs = WorkloadSpec::uniform(11, n, 20_000.0, 1).generate();
        (models, reqs)
    }

    #[test]
    fn serves_every_request_exactly_once() {
        let (models, reqs) = tiny_workload(24);
        let report = Fleet::new(ArchKind::S2taAw, 3).serve(&models, &reqs);
        assert_eq!(report.outcomes.len(), 24);
        assert_eq!(report.dropped_count(), 0);
        for (i, o) in report.outcomes.iter().enumerate() {
            assert_eq!(o.id(), i as u64, "outcomes must be dense by id");
            let s = o.served().expect("no drops without a capacity bound");
            assert!(s.completion > s.arrival);
            assert!(s.worker < 3);
        }
        let served: usize = report.workers.iter().map(|w| w.requests).sum();
        assert_eq!(served, 24);
    }

    #[test]
    fn deterministic_across_runs_and_aggregate_across_fleet_sizes() {
        let (models, reqs) = tiny_workload(16);
        let fleet = Fleet::new(ArchKind::S2taAw, 2);
        let a = fleet.serve(&models, &reqs);
        let b = fleet.serve(&models, &reqs);
        assert_eq!(a, b, "same fleet, same workload, same report");
        let c = Fleet::new(ArchKind::S2taAw, 5).serve(&models, &reqs);
        assert_eq!(a.total_events, c.total_events, "events must not depend on fleet size");
        assert_eq!(a.batches, c.batches);
        assert_eq!(a.outcomes.len(), c.outcomes.len());
    }

    #[test]
    fn more_workers_never_hurt_latency() {
        let (models, reqs) = tiny_workload(32);
        let one = Fleet::new(ArchKind::S2taAw, 1).serve(&models, &reqs);
        let four = Fleet::new(ArchKind::S2taAw, 4).serve(&models, &reqs);
        assert!(four.makespan_cycles <= one.makespan_cycles);
        assert!(four.p99_cycles() <= one.p99_cycles());
    }

    #[test]
    fn batching_beats_unbatched_on_memory_bound_models() {
        // LeNet is FC-heavy; amortizing weight streaming across a batch
        // must reduce total simulated cycles.
        let (models, reqs) = tiny_workload(32);
        let batched = Fleet::new(ArchKind::S2taAw, 2)
            .with_policy(FixedPolicy { max_batch: 8, max_wait_cycles: 1_000_000 })
            .serve(&models, &reqs);
        let unbatched = Fleet::new(ArchKind::S2taAw, 2)
            .with_policy(FixedPolicy::unbatched())
            .serve(&models, &reqs);
        assert!(
            batched.total_events.cycles < unbatched.total_events.cycles,
            "batched {} vs unbatched {} cycles",
            batched.total_events.cycles,
            unbatched.total_events.cycles
        );
        assert_eq!(
            batched.total_events.macs_active, unbatched.total_events.macs_active,
            "batching changes time, not arithmetic"
        );
    }

    /// The event-driven engine replays the vectorized open-loop path
    /// exactly when the policy is fixed: same batches, same placement,
    /// same report.
    #[test]
    fn engine_with_fixed_policy_matches_vectorized_serve() {
        let (models, reqs) = tiny_workload(40);
        for workers in [1, 3] {
            let policy = FixedPolicy { max_batch: 4, max_wait_cycles: 30_000 };
            let fleet = Fleet::new(ArchKind::S2taAw, workers).with_policy(policy);
            let vectorized = fleet.serve(&models, &reqs);
            let mut fixed = policy;
            let event_driven = fleet.serve_adaptive(&models, &reqs, &mut fixed);
            assert_eq!(vectorized, event_driven, "workers {workers}");
        }
    }

    #[test]
    fn engine_equivalence_holds_under_admission_bounds() {
        let models = vec![lenet5()];
        // Dense traffic against a lane bound below `max_batch` produces
        // real drops: the lane fills to capacity long before the
        // timeout can close a batch.
        let reqs = WorkloadSpec::uniform(5, 60, 500.0, 1).generate();
        let policy = FixedPolicy { max_batch: 8, max_wait_cycles: 10_000 };
        let fleet = Fleet::new(ArchKind::S2taAw, 2).with_policy(policy).with_queue_capacity(3);
        let vectorized = fleet.serve(&models, &reqs);
        assert!(vectorized.dropped_count() > 0, "workload must overload the bound");
        let mut fixed = policy;
        let event_driven = fleet.serve_adaptive(&models, &reqs, &mut fixed);
        assert_eq!(vectorized, event_driven);
    }

    #[test]
    fn closed_loop_is_deterministic_and_bounded_by_budget() {
        let models = vec![lenet5()];
        let spec = ClosedLoopSpec::uniform(19, 4, 40, 5_000.0, 1);
        let fleet = Fleet::new(ArchKind::S2taAw, 2);
        let mut p1 = FixedPolicy { max_batch: 4, max_wait_cycles: 20_000 };
        let mut p2 = p1;
        let a = fleet.serve_closed_loop(&models, &spec, &mut p1);
        let b = fleet.serve_closed_loop(&models, &spec, &mut p2);
        assert_eq!(a, b, "closed loop must be deterministic for a fixed seed/policy/workers");
        assert_eq!(a.outcomes.len(), 40, "every budgeted request is issued exactly once");
        for (i, o) in a.outcomes.iter().enumerate() {
            assert_eq!(o.id(), i as u64);
        }
    }

    #[test]
    fn closed_loop_keeps_at_most_one_request_in_flight_per_client() {
        let models = vec![lenet5()];
        let clients = 3;
        let spec = ClosedLoopSpec::uniform(23, clients, 30, 1_000.0, 1);
        let mut policy = FixedPolicy::unbatched();
        let report =
            Fleet::new(ArchKind::S2taAw, clients).serve_closed_loop(&models, &spec, &mut policy);
        // With batch-1 dispatch and one worker per client, a client's
        // requests can never overlap: at most `clients` requests are
        // ever concurrently in the system.
        let mut events: Vec<(u64, i64)> = Vec::new();
        for o in report.served_outcomes() {
            events.push((o.arrival, 1));
            events.push((o.completion, -1));
        }
        events.sort_unstable();
        let mut open = 0i64;
        for (_, delta) in events {
            open += delta;
            assert!(open <= clients as i64, "more than one outstanding request per client");
        }
    }

    #[test]
    fn slo_policy_cuts_tail_latency_against_wide_open_fixed_policy() {
        let models = vec![lenet5()];
        let reqs = WorkloadSpec::uniform(31, 48, 8_000.0, 1).generate();
        let fleet = Fleet::new(ArchKind::S2taAw, 2);
        let fixed_wide = FixedPolicy { max_batch: 8, max_wait_cycles: 400_000 };
        let baseline = fleet.clone().with_policy(fixed_wide).serve(&models, &reqs);
        let mut slo =
            SloAwarePolicy::new(60_000, BatchLimits { max_batch: 8, max_wait_cycles: 400_000 });
        let adaptive = fleet.serve_adaptive(&models, &reqs, &mut slo);
        assert!(
            adaptive.p99_cycles() < baseline.p99_cycles(),
            "SLO-aware p99 {} must beat fixed p99 {}",
            adaptive.p99_cycles(),
            baseline.p99_cycles()
        );
    }
}
