//! The accelerator fleet: N simulated accelerator **lanes** — possibly
//! of mixed architectures — served by a host worker pool.
//!
//! A [`Fleet`] is built from a [`FleetSpec`]: an ordered list of lanes,
//! each owning its own [`Accelerator`] of any [`ArchKind`] (e.g.
//! 2×S2TA-AW + 2×SA-ZVCG). Every lane shares one fleet-wide
//! [`s2ta_core::WeightPlanCache`] keyed by `(arch, model, seed)`, so
//! each architecture compiles each model's W-DBB plans exactly once.
//! Three client modes are served:
//!
//! * [`Fleet::serve`] — **open loop, fixed policy**: the arrival stream
//!   is folded into batches up front (fleet-size independent, see
//!   [`crate::scheduler`]), every batch's cycle simulation fans out
//!   over the persistent host executor
//!   ([`s2ta_core::pool::Executor`]), and the batches are then placed
//!   on the N simulated lanes.
//! * [`Fleet::serve_adaptive`] — **open loop, adaptive policy**: the
//!   same arrival stream driven through the event-driven engine so a
//!   [`BatchPolicy`] can steer per-model `max_batch`/`max_wait` from
//!   observed completions.
//! * [`Fleet::serve_closed_loop`] — **closed loop**: C concurrent
//!   clients ([`crate::ClosedLoopSpec`]) each issue their next request
//!   only after the previous one completes; arrivals are iterated
//!   per-request in simulated time as a fixed point of the placement.
//!
//! **Placement** is governed by [`PlacementStrategy`]: the default
//! earliest-free rule is arch-blind, while
//! [`PlacementStrategy::Affinity`] routes each batch to the lane
//! minimizing its predicted completion time using per-`(arch, model)`
//! service estimates ([`crate::ServiceEstimator`]) bootstrapped from
//! the run's own completed batches. On a homogeneous fleet the affinity
//! rule collapses to earliest-free exactly, so enabling it can never
//! change a clone-fleet's results.
//!
//! **Concurrent lane execution**: a batch's service time is a pure
//! function of `(batch, lane architecture)`, so the event-driven engine
//! executes multi-batch bursts *speculatively* on the host pool — when
//! several batches seal at one event, each later placement depends on
//! the earlier batches' measured completions, so every sealed batch
//! simulates on every distinct lane architecture ahead of the (serial,
//! deterministic) placement decisions, which then consume the memoized
//! result of whichever lane they pick. (A single-batch seal resolves
//! its lane first and simulates only that lane's scope — its choice
//! never depends on its own execution.) Parallel execution is
//! byte-identical to the serial engine because the simulations are
//! pure and [`s2ta_core::pool::Executor::map`] is order-preserving;
//! [`Fleet::with_host_parallelism`] pins the host worker count (it can
//! change wall-clock time only, never results).
//!
//! All three modes honor the fleet's admission bound
//! ([`Fleet::with_queue_capacity`]): a request arriving while its model
//! lane is full is tail-dropped and surfaced as
//! [`RequestOutcome::Dropped`].
//!
//! Simulated results never depend on host thread timing: batch events
//! are a pure function of the batch and the executing lane's
//! architecture, and both the up-front placement and the event-driven
//! engine are deterministic. The `outcomes` list in the returned
//! [`ServeReport`] is sorted by request id post-placement (it is
//! assembled in batch/dispatch order internally), so
//! `outcomes[i].id() == i` always holds for a dense arrival stream.

use crate::fault::{FaultConfig, FaultState, FaultTimeline, TimelineEvent, WindowEdge};
use crate::pipeline::PipelinePlan;
use crate::policy::{BatchObservation, BatchPolicy, FixedPolicy};
use crate::queue::RequestQueue;
use crate::report::{
    DroppedRequest, FailedRequest, FaultStats, HistogramCell, ModelServeStats, PipelineStageStats,
    PlanCacheActivity, RequestOutcome, ServeReport, ServedRequest, WorkerStats,
};
use crate::scheduler::{
    affinity_lane, earliest_free_lane, DeadlineHeap, Formation, PlacementStrategy, Scheduler,
    ServiceEstimator,
};
use crate::timewheel::TimerWheel;
use crate::trace::{TraceCell, TraceConfig, TraceEvent, TraceEventKind, TraceState};
use crate::workload::{ClosedLoopClient, ClosedLoopSpec, Request};
use s2ta_core::{
    pool, Accelerator, ActProfileCache, ArchKind, CacheStats, ExecPath, ScratchPool,
    WeightPlanCache, WeightResidency,
};
use s2ta_models::ModelSpec;
use s2ta_sim::EventCounts;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, VecDeque};
use std::time::Instant;

/// One serving lane: a simulated accelerator instance with its own
/// architecture, executing one batch at a time in simulated time.
///
/// Every lane carries a handle to the fleet-shared [`ScratchPool`]:
/// batch execution checks out a per-execution [`s2ta_core::Scratch`]
/// arena, so whichever host worker runs the batch reuses warm buffer
/// capacity instead of allocating (see
/// [`Accelerator::run_stage_events`]).
#[derive(Debug, Clone)]
pub struct Lane {
    accelerator: Accelerator,
    scratch: ScratchPool,
}

impl Lane {
    /// The architecture this lane simulates.
    pub fn arch(&self) -> ArchKind {
        self.accelerator.config().kind
    }

    /// The lane's accelerator.
    pub fn accelerator(&self) -> &Accelerator {
        &self.accelerator
    }

    /// The fleet-shared scratch-arena pool this lane draws from.
    pub(crate) fn scratch(&self) -> &ScratchPool {
        &self.scratch
    }

    /// Simulates one batch on this lane: each layer's weights stream
    /// once and stay resident for the rest of the batch, which is where
    /// batching wins on the memory-bound FC/depthwise layers (paper
    /// Sec. 8.3). The single-stage special case of
    /// [`Lane::execute_stage`].
    fn execute_batch(
        &self,
        model: &ModelSpec,
        requests: &[Request],
        weight_seed: u64,
    ) -> BatchExecution {
        self.execute_stage(model, 0..model.layers.len(), requests, weight_seed, false)
    }

    /// Simulates one batch through a contiguous layer range — one
    /// pipeline stage — on this lane, via [`s2ta_core`]'s `run_stage`.
    ///
    /// The first request streams the stage's weights and every later
    /// request finds them resident (the batching amortization), unless
    /// `warm` is set: a warm stage lane just executed the **same**
    /// stage of the same model, so its weights are still in the weight
    /// SRAM and even the first request skips the weight DMA — the
    /// pinned-stage reuse that layer pipelining exists to harvest.
    /// Event totals at `warm == false` are byte-identical to the
    /// monolithic [`Lane::execute_batch`] restricted to the range.
    fn execute_stage(
        &self,
        model: &ModelSpec,
        layers: std::ops::Range<usize>,
        requests: &[Request],
        weight_seed: u64,
        warm: bool,
    ) -> BatchExecution {
        let plan = self.accelerator.plan_model(model, weight_seed);
        let mut events = EventCounts::default();
        match self.accelerator.exec_path() {
            // The golden oracle / host-throughput baseline: per-layer
            // reports, materialized operands, no arena.
            ExecPath::Reference => {
                for (i, request) in requests.iter().enumerate() {
                    let residency = if i == 0 && !warm {
                        WeightResidency::Streamed
                    } else {
                        WeightResidency::Resident
                    };
                    for report in self.accelerator.run_stage(
                        &plan,
                        model,
                        layers.clone(),
                        request.act_seed,
                        residency,
                    ) {
                        events += report.events;
                    }
                }
            }
            // The serving hot loop: summed events straight from the
            // strip profiles, transient buffers from the shared arena
            // pool — allocation-free once caches and arena are warm.
            ExecPath::Profiled => {
                let mut scratch = self.scratch.checkout();
                for (i, request) in requests.iter().enumerate() {
                    let residency = if i == 0 && !warm {
                        WeightResidency::Streamed
                    } else {
                        WeightResidency::Resident
                    };
                    events += self.accelerator.run_stage_events(
                        &plan,
                        model,
                        layers.clone(),
                        request.act_seed,
                        residency,
                        &mut scratch,
                    );
                }
                self.scratch.restore(scratch);
            }
        }
        BatchExecution { service_cycles: events.cycles, events }
    }
}

/// The composition of a fleet: an ordered list of lanes, each with its
/// own accelerator configuration — homogeneous clone-fleets and mixed
/// SA/S2TA deployments are both just specs.
#[derive(Debug, Clone, Default)]
pub struct FleetSpec {
    accelerators: Vec<Accelerator>,
}

impl FleetSpec {
    /// An empty spec; add lanes with [`FleetSpec::lane`] /
    /// [`FleetSpec::lane_with`].
    pub fn new() -> Self {
        Self::default()
    }

    /// `lanes` preset lanes of one `kind` (the clone-fleet of PR 1).
    pub fn homogeneous(kind: ArchKind, lanes: usize) -> Self {
        Self::mixed(&[(kind, lanes)])
    }

    /// A mixed fleet from `(kind, lanes)` groups, in order: e.g.
    /// `FleetSpec::mixed(&[(ArchKind::S2taAw, 2), (ArchKind::SaZvcg, 2)])`.
    pub fn mixed(groups: &[(ArchKind, usize)]) -> Self {
        let mut spec = Self::new();
        for &(kind, lanes) in groups {
            for _ in 0..lanes {
                spec = spec.lane(kind);
            }
        }
        spec
    }

    /// Appends one preset lane of `kind`.
    pub fn lane(self, kind: ArchKind) -> Self {
        self.lane_with(Accelerator::preset(kind))
    }

    /// Appends one lane with an explicit accelerator configuration.
    pub fn lane_with(mut self, accelerator: Accelerator) -> Self {
        self.accelerators.push(accelerator);
        self
    }

    /// Pins every lane's host-side execution path (default:
    /// [`ExecPath::Profiled`]). Simulated results are byte-identical
    /// either way; [`ExecPath::Reference`] re-materializes operands per
    /// simulation and exists as the golden oracle and the
    /// host-throughput baseline.
    pub fn with_exec_path(mut self, path: ExecPath) -> Self {
        self.accelerators = self.accelerators.into_iter().map(|a| a.with_exec_path(path)).collect();
        self
    }

    /// Number of lanes in the spec.
    pub fn lanes(&self) -> usize {
        self.accelerators.len()
    }

    /// `true` if the spec has no lanes yet.
    pub fn is_empty(&self) -> bool {
        self.accelerators.is_empty()
    }

    /// A compact label: the lane kinds grouped in first-appearance
    /// order (`"2xS2TA-AW + 2xSA-ZVCG"`), or just the kind for a
    /// homogeneous spec (`"S2TA-AW"`).
    pub fn label(&self) -> String {
        arch_label(self.accelerators.iter().map(|a| a.config().kind))
    }
}

/// Groups kinds in first-appearance order; a single kind renders bare
/// so homogeneous fleets keep the PR 1 report label.
fn arch_label(kinds: impl Iterator<Item = ArchKind>) -> String {
    let mut groups: Vec<(ArchKind, usize)> = Vec::new();
    for kind in kinds {
        match groups.iter_mut().find(|g| g.0 == kind) {
            Some(g) => g.1 += 1,
            None => groups.push((kind, 1)),
        }
    }
    match groups.as_slice() {
        [] => "empty".to_string(),
        [(kind, _)] => kind.to_string(),
        _ => groups.iter().map(|(kind, n)| format!("{n}x{kind}")).collect::<Vec<_>>().join(" + "),
    }
}

/// A pool of simulated accelerator lanes behind one scheduler.
#[derive(Debug, Clone)]
pub struct Fleet {
    lanes: Vec<Lane>,
    scheduler: Scheduler,
    weight_seed: u64,
    queue_capacity: Option<usize>,
    placement: PlacementStrategy,
    host_parallelism: Option<usize>,
    /// Stage count for [`PlacementStrategy::Pipelined`] (clamped to
    /// the lane and layer counts at partition time).
    pipeline_stages: usize,
    /// Bounded inter-stage activation queue depth (per pipeline
    /// boundary).
    pipeline_queue_capacity: usize,
    /// When set, serving runs attach a flight recorder + metrics
    /// registry and the report carries a [`crate::Trace`].
    trace: Option<TraceConfig>,
    /// When set, serving runs route through the event-driven engine
    /// with this fault schedule and recovery machinery attached.
    fault: Option<(FaultConfig, FaultTimeline)>,
}

impl Fleet {
    /// A homogeneous fleet of `workers` preset lanes of `kind` with the
    /// default batching policy and unbounded admission.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(kind: ArchKind, workers: usize) -> Self {
        Self::from_spec(FleetSpec::homogeneous(kind, workers))
    }

    /// A homogeneous fleet of `workers` clones of an explicit
    /// accelerator. The clones share the accelerator's **existing**
    /// plan cache (an [`Accelerator`] clone always does), so plans the
    /// caller compiled up front stay warm and plans the fleet compiles
    /// are visible to the caller afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn with_accelerator(accelerator: Accelerator, workers: usize) -> Self {
        assert!(workers > 0, "a fleet needs at least one worker");
        let scratch = ScratchPool::new();
        Self::from_lanes(
            (0..workers)
                .map(|_| Lane { accelerator: accelerator.clone(), scratch: scratch.clone() })
                .collect(),
        )
    }

    /// Builds the fleet a spec describes. Every lane's accelerator is
    /// re-pointed at one fresh **shared** [`WeightPlanCache`] — keyed
    /// by `(arch, model, seed)`, so mixed-architecture lanes coexist in
    /// one memo table and each arch compiles each model exactly once —
    /// and one fresh shared [`ActProfileCache`], so a request's
    /// activation strip profiles compile once fleet-wide and every
    /// re-simulation (speculative scope execution, pipeline stages,
    /// residency variants) replays them.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no lanes.
    pub fn from_spec(spec: FleetSpec) -> Self {
        assert!(!spec.is_empty(), "a fleet needs at least one lane");
        let plans = WeightPlanCache::new();
        let act_profiles = ActProfileCache::new();
        let scratch = ScratchPool::new();
        Self::from_lanes(
            spec.accelerators
                .into_iter()
                .map(|acc| Lane {
                    accelerator: acc
                        .sharing_plans(plans.clone())
                        .sharing_act_profiles(act_profiles.clone()),
                    scratch: scratch.clone(),
                })
                .collect(),
        )
    }

    fn from_lanes(lanes: Vec<Lane>) -> Self {
        Self {
            lanes,
            scheduler: Scheduler::new(FixedPolicy::default()),
            weight_seed: 42,
            queue_capacity: None,
            placement: PlacementStrategy::default(),
            host_parallelism: None,
            pipeline_stages: 2,
            pipeline_queue_capacity: 2,
            trace: None,
            fault: None,
        }
    }

    /// Replaces the fixed batching policy used by [`Fleet::serve`].
    pub fn with_policy(mut self, policy: FixedPolicy) -> Self {
        self.scheduler = Scheduler::new(policy);
        self
    }

    /// Bounds every model lane to `capacity` pending requests: a
    /// request arriving while its lane is full is tail-dropped
    /// (admission control). Applies to every client mode.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity);
        self
    }

    /// Re-points every lane at fresh shared **byte-budgeted** caches:
    /// a [`WeightPlanCache`] bounded to `weight_bytes` and an
    /// [`ActProfileCache`] bounded to `act_bytes`, both evicting
    /// least-recently-used entries past the budget. Evicted entries
    /// recompile byte-identically on next use, so a budget changes
    /// host time and the cache counters — never simulated results.
    pub fn with_cache_budgets(self, weight_bytes: u64, act_bytes: u64) -> Self {
        self.sharing_caches(
            WeightPlanCache::with_byte_budget(weight_bytes),
            ActProfileCache::with_byte_budget(act_bytes),
        )
    }

    /// Re-points every lane at the given shared caches (handles to the
    /// same underlying tables — cloning a cache shares it). Cached
    /// values are pure, so cache topology changes host time and the
    /// counters, never simulated results.
    pub(crate) fn sharing_caches(mut self, plans: WeightPlanCache, acts: ActProfileCache) -> Self {
        self.lanes = self
            .lanes
            .into_iter()
            .map(|l| Lane {
                accelerator: l
                    .accelerator
                    .sharing_plans(plans.clone())
                    .sharing_act_profiles(acts.clone()),
                scratch: l.scratch,
            })
            .collect();
        self
    }

    /// Replaces the weight seed (the models' shared parameters).
    pub fn with_weight_seed(mut self, seed: u64) -> Self {
        self.weight_seed = seed;
        self
    }

    /// Replaces the placement strategy (default: earliest-free).
    pub fn with_placement(mut self, placement: PlacementStrategy) -> Self {
        self.placement = placement;
        self
    }

    /// Enables layer-pipelined execution
    /// ([`PlacementStrategy::Pipelined`]) with `stages` pipeline stages
    /// per model: every model is partitioned into at most `stages`
    /// contiguous layer ranges, each pinned to a distinct lane, and
    /// batches flow through the stage lanes so stage `s` of batch `b`
    /// overlaps stage `s+1` of batch `b-1` (see [`crate::PipelinePlan`]).
    ///
    /// # Panics
    ///
    /// Panics if `stages` is zero.
    pub fn with_pipeline(mut self, stages: usize) -> Self {
        assert!(stages > 0, "a pipeline needs at least one stage");
        self.pipeline_stages = stages;
        self.placement = PlacementStrategy::Pipelined;
        self
    }

    /// Bounds every inter-stage activation queue to `capacity` pending
    /// handoffs (default 2 — double buffering): stage `s` may not begin
    /// batch `b` before stage `s+1` started draining batch
    /// `b - capacity`, so a fast upstream stage stalls instead of
    /// running unboundedly ahead of a slow consumer.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a zero-slot boundary could never
    /// hand anything forward).
    pub fn with_pipeline_queue_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "an inter-stage queue needs at least one slot");
        self.pipeline_queue_capacity = capacity;
        self
    }

    /// The configured pipeline stage count (meaningful under
    /// [`PlacementStrategy::Pipelined`]).
    pub fn pipeline_stages(&self) -> usize {
        self.pipeline_stages
    }

    /// The bounded inter-stage activation queue depth.
    pub fn pipeline_queue_capacity(&self) -> usize {
        self.pipeline_queue_capacity
    }

    /// Pins the **host** worker count used to fan out batch
    /// simulations (default: the machine's parallelism). This knob
    /// changes wall-clock time only — simulated results are
    /// byte-identical for every host worker count.
    pub fn with_host_parallelism(mut self, workers: usize) -> Self {
        self.host_parallelism = Some(workers.max(1));
        self
    }

    /// Attaches an observability trace to every subsequent serving run:
    /// a preallocated drop-oldest flight recorder of typed engine
    /// events plus fixed-interval metrics time-series, surfaced on the
    /// report through [`ServeReport::trace`]. Tracing never changes
    /// simulated results — the traced run routes through the
    /// event-driven engine, which is byte-identical to the vectorized
    /// path for fixed policies.
    ///
    /// # Panics
    ///
    /// Panics if `config.metrics_interval_cycles` is zero.
    pub fn with_trace(mut self, config: TraceConfig) -> Self {
        config.validate();
        self.trace = Some(config);
        self
    }

    /// The attached trace configuration, if tracing is enabled.
    pub fn trace_config(&self) -> Option<TraceConfig> {
        self.trace
    }

    /// Attaches a deterministic fault schedule (plus its recovery
    /// machinery) to every subsequent serving run. The schedule is
    /// expanded against this fleet as a single-shard topology; serving
    /// then routes through the event-driven engine, which cancels
    /// in-flight batches on crashed lanes, retries their requests
    /// under the config's [`crate::RetryPolicy`], applies slowdown
    /// factors, and surfaces everything as [`FaultStats`] on the
    /// report. See [`crate::FaultSpec`].
    pub fn with_faults(self, config: FaultConfig) -> Self {
        let plan = config.spec.schedule(&[self.workers()]);
        let timeline = plan.shard_timeline(0);
        self.with_fault_timeline(config, timeline)
    }

    /// Attaches an already-expanded per-shard fault timeline (the
    /// cluster expands one [`crate::FaultPlan`] and hands each shard
    /// its slice, so every driver sees the identical schedule).
    pub(crate) fn with_fault_timeline(
        mut self,
        config: FaultConfig,
        timeline: FaultTimeline,
    ) -> Self {
        assert_eq!(
            timeline.lanes(),
            self.workers(),
            "fault timeline must cover exactly this fleet's lanes"
        );
        self.fault = Some((config, timeline));
        self
    }

    /// The first lane's accelerator (for a homogeneous fleet, the
    /// template every lane clones).
    pub fn accelerator(&self) -> &Accelerator {
        &self.lanes[0].accelerator
    }

    /// The fleet's lanes, in placement order.
    pub fn lanes(&self) -> &[Lane] {
        &self.lanes
    }

    /// Number of simulated lanes.
    pub fn workers(&self) -> usize {
        self.lanes.len()
    }

    /// The placement strategy batches are routed with.
    pub fn placement(&self) -> PlacementStrategy {
        self.placement
    }

    /// The per-lane admission bound, if any.
    pub fn queue_capacity(&self) -> Option<usize> {
        self.queue_capacity
    }

    /// The configured fixed batching policy (a fresh copy — the
    /// cluster router gives each shard engine its own instance).
    pub(crate) fn fixed_policy(&self) -> FixedPolicy {
        self.scheduler.policy()
    }

    /// The fleet's composition label (see [`FleetSpec::label`]).
    pub fn arch_label(&self) -> String {
        arch_label(self.lanes.iter().map(Lane::arch))
    }

    fn queue(&self, models: usize) -> RequestQueue {
        match self.queue_capacity {
            Some(cap) => RequestQueue::bounded(models, cap),
            None => RequestQueue::new(models),
        }
    }

    /// Groups the lanes into execution scopes: lanes with equal
    /// accelerator configurations produce byte-identical batch
    /// executions, so each batch only ever simulates once per scope.
    fn scopes(&self) -> LaneScopes {
        let mut rep: Vec<usize> = Vec::new();
        let mut of_lane: Vec<usize> = Vec::with_capacity(self.lanes.len());
        for (i, lane) in self.lanes.iter().enumerate() {
            let config = lane.accelerator.config();
            match rep.iter().position(|&r| self.lanes[r].accelerator.config() == config) {
                Some(scope) => of_lane.push(scope),
                None => {
                    rep.push(i);
                    of_lane.push(rep.len() - 1);
                }
            }
        }
        LaneScopes { of_lane, rep }
    }

    /// Simulates every batch of `work` (`(model index, members)`
    /// pairs) on **every** distinct lane scope in one order-preserving
    /// host-pool fan-out — the speculative execution shared by the
    /// vectorized path and the event-driven engine. The result for
    /// batch `b` on lane `l` lives at [`LaneScopes::exec_index`]`(b,
    /// l)`; results are pure, so any host worker count produces the
    /// identical vector.
    fn execute_on_scopes(
        &self,
        scopes: &LaneScopes,
        models: &[ModelSpec],
        work: &[(usize, &[Request])],
    ) -> Vec<BatchExecution> {
        // Compile each used model's weight plan once per scope — dense
        // scopes included, now that dense plans are memoized — before
        // fan-out, so the parallel phase starts with a warm cache
        // instead of racing compiles of the same plan.
        let mut used: Vec<usize> = work.iter().map(|&(model, _)| model).collect();
        used.sort_unstable();
        used.dedup();
        for &rep in &scopes.rep {
            let acc = &self.lanes[rep].accelerator;
            for &m in &used {
                acc.plan_model(&models[m], self.weight_seed);
            }
        }
        // The host pool is sized to the machine, not to the simulated
        // fleet: only placement sees the N lanes. The persistent
        // work-stealing executor serves every burst — no per-burst
        // thread spawns.
        let n_scopes = scopes.count();
        let jobs: Vec<usize> = (0..work.len() * n_scopes).collect();
        pool::Executor::global().map_capped(&jobs, self.host_parallelism, |&j| {
            let (b, s) = (j / n_scopes, j % n_scopes);
            let (model, members) = work[b];
            self.lanes[scopes.rep[s]].execute_batch(&models[model], members, self.weight_seed)
        })
    }

    /// Serves an open-loop request stream against `models` with the
    /// fleet's fixed policy and reports.
    ///
    /// Batch formation (and admission, if a queue capacity is set)
    /// depends only on the arrival stream, so the batch set and drop
    /// set are identical for every fleet size; on a **homogeneous**
    /// fleet the aggregate event totals are fleet-size independent too
    /// (a heterogeneous fleet's totals depend on which lane ran each
    /// batch, by design). Batch simulation fans out over the host
    /// thread pool. With [`PlacementStrategy::Affinity`] the stream is
    /// driven through the event-driven engine instead, so the service
    /// estimates can bootstrap as the run progresses.
    ///
    /// # Panics
    ///
    /// Panics if a request names a model index outside `models`, or if
    /// arrivals are unsorted.
    pub fn serve(&self, models: &[ModelSpec], requests: &[Request]) -> ServeReport {
        if self.placement != PlacementStrategy::EarliestFree
            || self.trace.is_some()
            || self.fault.is_some()
        {
            // Affinity needs the run's own completion feedback and the
            // pipeline needs per-stage scheduling state; the engine
            // replays the same formation decisions in event order, so
            // this is the identical computation with a richer dispatch
            // rule. Traced runs take the engine too: its event handlers
            // are where the flight-recorder hooks live, and its report
            // is byte-identical to this path for fixed policies. Fault
            // injection lives entirely in the engine's event loop.
            let mut policy = self.scheduler.policy();
            return self.serve_adaptive(models, requests, &mut policy);
        }
        let cache_before = self.accelerator().plans().stats();
        let act_cache_before = self.accelerator().act_profiles().stats();
        let Formation { batches, dropped, timeout_sealed } =
            self.scheduler.form_batches_bounded(requests, models.len(), self.queue_capacity);
        let scopes = self.scopes();

        let work: Vec<(usize, &[Request])> =
            batches.iter().map(|b| (b.model, b.requests.as_slice())).collect();
        let executions = self.execute_on_scopes(&scopes, models, &work);
        let exec_of = |batch: usize, lane: usize| executions[scopes.exec_index(batch, lane)];

        // Deterministic earliest-free placement of the measured batches
        // on the simulated lanes, with each lane's own service time.
        let placements = self.scheduler.place_on_lanes(
            &batches,
            |batch, lane| exec_of(batch, lane).service_cycles,
            self.lanes.len(),
        );

        let mut outcomes: Vec<RequestOutcome> = Vec::with_capacity(requests.len() + dropped.len());
        let mut workers: Vec<WorkerStats> =
            self.lanes.iter().map(|l| WorkerStats::new(l.arch())).collect();
        let mut total_events = EventCounts::default();
        let mut makespan = 0u64;
        for (batch, placement) in batches.iter().zip(&placements) {
            let exec = exec_of(batch.id, placement.worker);
            total_events += exec.events;
            makespan = makespan.max(placement.completion);
            let lane = &mut workers[placement.worker];
            lane.busy_cycles += exec.service_cycles;
            lane.batches += 1;
            lane.requests += batch.requests.len();
            lane.events += exec.events;
            for r in &batch.requests {
                outcomes.push(RequestOutcome::Served(ServedRequest {
                    id: r.id,
                    model: models[batch.model].name.to_string(),
                    arrival: r.arrival,
                    start: placement.start,
                    completion: placement.completion,
                    batch: batch.id,
                    worker: placement.worker,
                }));
            }
        }
        for r in &dropped {
            outcomes.push(RequestOutcome::Dropped(DroppedRequest {
                id: r.id,
                model: models[r.model].name.to_string(),
                arrival: r.arrival,
            }));
        }
        outcomes.sort_by_key(RequestOutcome::id);

        // Per-model admission/deadline accounting: a drop charges the
        // dropped request's model; a timeout-sealed batch charges every
        // member as a deadline miss (the batch waited out its full
        // `max_wait` instead of filling).
        let mut per_model: Vec<ModelServeStats> = models
            .iter()
            .map(|m| ModelServeStats {
                model: m.name.to_string(),
                dropped: 0,
                deadline_misses: 0,
                failed: 0,
            })
            .collect();
        for r in &dropped {
            per_model[r.model].dropped += 1;
        }
        for (batch, &timed_out) in batches.iter().zip(&timeout_sealed) {
            if timed_out {
                per_model[batch.model].deadline_misses += batch.requests.len() as u64;
            }
        }

        ServeReport {
            arch: self.arch_label(),
            policy: "fixed".to_string(),
            outcomes,
            batches: batches.len(),
            workers,
            total_events,
            makespan_cycles: makespan,
            pipeline_stages: Vec::new(),
            per_model,
            fault: FaultStats::default(),
            plan_cache: PlanCacheActivity::new(
                self.accelerator().plans().stats().since(cache_before),
                self.accelerator().act_profiles().stats().since(act_cache_before),
            ),
            latency_hist: HistogramCell::default(),
            trace: TraceCell::default(),
        }
    }

    /// Serves an open-loop request stream through the event-driven
    /// engine, letting `policy` adapt its batch bounds from observed
    /// completions.
    ///
    /// With a [`FixedPolicy`] matching the fleet's and earliest-free
    /// placement, this produces the identical report to
    /// [`Fleet::serve`] (the engine replays the same formation and
    /// placement decisions in event order); an adaptive policy such as
    /// [`crate::SloAwarePolicy`] trades batch depth against observed
    /// tail latency as the run progresses. The run is deterministic for
    /// a fixed `(stream, policy, fleet spec, placement)`.
    ///
    /// # Panics
    ///
    /// Panics if a request names a model index outside `models`, or if
    /// arrivals are unsorted.
    pub fn serve_adaptive(
        &self,
        models: &[ModelSpec],
        requests: &[Request],
        policy: &mut dyn BatchPolicy,
    ) -> ServeReport {
        let mut arrivals = ArrivalSource::open(requests);
        Engine::new(self, models).run(&mut arrivals, policy)
    }

    /// Serves a closed-loop client population: each of the spec's C
    /// clients issues its next request only after its previous one
    /// completes (or is dropped), plus an exponential think gap.
    /// Arrivals are therefore computed per-request in simulated time as
    /// the engine advances — a deterministic fixed point of the
    /// placement for a fixed `(seed, policy, fleet spec, placement)`.
    ///
    /// # Panics
    ///
    /// Panics if the spec's mix length differs from `models`, or the
    /// spec is invalid (no clients, bad mix, negative think time).
    pub fn serve_closed_loop(
        &self,
        models: &[ModelSpec],
        spec: &ClosedLoopSpec,
        policy: &mut dyn BatchPolicy,
    ) -> ServeReport {
        assert_eq!(spec.mix.len(), models.len(), "closed-loop mix must name every fleet model");
        let mut arrivals = ArrivalSource::closed(spec);
        Engine::new(self, models).run(&mut arrivals, policy)
    }
}

/// The measured outcome of simulating one batch on one lane scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BatchExecution {
    service_cycles: u64,
    events: EventCounts,
}

/// Lanes grouped by accelerator configuration: `of_lane[l]` is lane
/// `l`'s scope index, `rep[s]` a representative lane of scope `s`.
#[derive(Debug, Clone)]
struct LaneScopes {
    of_lane: Vec<usize>,
    rep: Vec<usize>,
}

impl LaneScopes {
    /// Number of distinct scopes.
    fn count(&self) -> usize {
        self.rep.len()
    }

    /// Index of batch `batch`'s execution on lane `lane` inside a
    /// [`Fleet::execute_on_scopes`] result (scope-minor layout).
    fn exec_index(&self, batch: usize, lane: usize) -> usize {
        batch * self.rep.len() + self.of_lane[lane]
    }
}

/// One stage execution of a pipelined batch: where it ran and what it
/// measured, kept so completions can feed the per-stage estimator.
#[derive(Debug, Clone)]
struct StageExec {
    lane: usize,
    layers: std::ops::Range<usize>,
    service_cycles: u64,
}

/// A batch sealed and dispatched by the event-driven engine.
#[derive(Debug, Clone)]
struct EngineBatch {
    model: usize,
    requests: Vec<Request>,
    ready: u64,
    start: u64,
    /// Lane the batch ran on (the final stage's lane when pipelined).
    lane: usize,
    /// Measured service time on that lane (whole-model), or the
    /// end-to-end execution span when pipelined. Fault-mode batches
    /// store the **effective** service (slowdown factor applied).
    service_cycles: u64,
    /// Per-stage executions (empty for monolithic placement).
    stage_execs: Vec<StageExec>,
    /// Fault mode: the batch's lane crashed before it completed; its
    /// wheel entry is stale and its members were retried or failed.
    cancelled: bool,
}

/// Where the engine's next request comes from: a pre-generated sorted
/// open-loop stream, or a closed-loop client population advanced on
/// completions. (The cluster router drives shard engines with an empty
/// open source and injects routed arrivals itself.)
pub(crate) enum ArrivalSource<'a> {
    Open {
        stream: &'a [Request],
        next: usize,
    },
    Closed {
        clients: Vec<ClosedLoopClient>,
        /// One staged (issued, not yet arrived) request per client.
        staged: Vec<Option<Request>>,
        /// Staged arrivals ordered by `(arrival, client)` so
        /// simultaneous issues resolve deterministically.
        horizon: BinaryHeap<Reverse<(u64, usize)>>,
        issued: usize,
        budget: usize,
    },
}

impl<'a> ArrivalSource<'a> {
    pub(crate) fn open(stream: &'a [Request]) -> Self {
        Self::Open { stream, next: 0 }
    }

    fn closed(spec: &ClosedLoopSpec) -> Self {
        let mut clients = spec.spawn_clients();
        let budget = spec.requests;
        let mut staged: Vec<Option<Request>> = vec![None; clients.len()];
        let mut horizon = BinaryHeap::new();
        let mut issued = 0usize;
        for (c, client) in clients.iter_mut().enumerate() {
            if issued == budget {
                break;
            }
            // Ids are provisional at issue time; the engine assigns the
            // dense arrival-order id when the request enters the system.
            let r = client.issue(0, 0);
            horizon.push(Reverse((r.arrival, c)));
            staged[c] = Some(r);
            issued += 1;
        }
        Self::Closed { clients, staged, horizon, issued, budget }
    }

    /// Arrival time of the next request, if any.
    fn peek_time(&self) -> Option<u64> {
        match self {
            Self::Open { stream, next } => stream.get(*next).map(|r| r.arrival),
            Self::Closed { horizon, .. } => horizon.peek().map(|Reverse((t, _))| *t),
        }
    }

    /// Takes the next request. Open-loop requests keep their caller
    /// ids; closed-loop requests are assigned the dense arrival-order
    /// id `next_id`. Returns the request and, for closed-loop sources,
    /// the issuing client.
    fn pop(&mut self, next_id: u64) -> (Request, Option<usize>) {
        match self {
            Self::Open { stream, next } => {
                let r = stream[*next];
                *next += 1;
                (r, None)
            }
            Self::Closed { staged, horizon, .. } => {
                let Reverse((_, c)) = horizon.pop().expect("pop follows peek");
                let mut r = staged[c].take().expect("staged request for heap entry");
                r.id = next_id;
                (r, Some(c))
            }
        }
    }

    /// Notifies a closed-loop client that its request finished (served
    /// or dropped) at `now`, staging its next issue if budget remains.
    /// No-op for open-loop sources.
    fn request_finished(&mut self, client: Option<usize>, now: u64) {
        let Some(c) = client else { return };
        let Self::Closed { clients, staged, horizon, issued, budget } = self else {
            return;
        };
        if *issued == *budget {
            return;
        }
        let r = clients[c].issue(now, 0);
        horizon.push(Reverse((r.arrival, c)));
        staged[c] = Some(r);
        *issued += 1;
    }
}

/// Event-kind tie-breakers: at equal times, completions fire before
/// arrivals, arrivals before deadlines, deadlines before retry
/// re-admissions, and fault-window edges last — so a batch completing
/// exactly when its lane crashes has completed, and an arrival at a
/// crash instant can still dispatch (and be cancelled by the crash).
const COMPLETION_KIND: u8 = 0;
const ARRIVAL_KIND: u8 = 1;
const DEADLINE_KIND: u8 = 2;
const RETRY_KIND: u8 = 3;
const FAULT_KIND: u8 = 4;

/// The event-driven serving engine: advances simulated time through
/// three event kinds — batch completions, request arrivals, and batch
/// wait-deadline expiries — processed in `(time, kind)` order
/// (completions, then arrivals, then deadlines at equal times, which
/// reproduces the stream-fold path's `deadline < now` boundary: an
/// arrival exactly at a deadline still joins the batch).
///
/// Batches sealed at one event are executed **speculatively**: every
/// sealed batch simulates on every distinct lane scope through the
/// host pool before the serial placement loop picks lanes, so the
/// expensive cycle simulations overlap on host threads while the
/// simulated-time decisions stay exactly serial.
pub(crate) struct Engine<'a> {
    fleet: &'a Fleet,
    models: &'a [ModelSpec],
    scopes: LaneScopes,
    queue: RequestQueue,
    deadlines: DeadlineHeap,
    /// In-flight batches ordered by `(completion, batch index)` — a
    /// hierarchical timer wheel, so a million pending completions cost
    /// O(1) amortized per event instead of a heap rebalance.
    in_flight: TimerWheel<usize>,
    batches: Vec<EngineBatch>,
    free_at: Vec<u64>,
    /// Lanes `0..active_lanes` accept new monolithic batches; the
    /// cluster autoscaler shrinks/grows this against queue depth
    /// (in-flight work on a deactivated lane drains naturally).
    active_lanes: usize,
    /// Cumulative idle cycles per lane (gaps between consecutive
    /// executions on that lane), so pipeline stage stats can attribute
    /// true lane idle — not another model's busy time — as bubbles.
    lane_cum_idle: Vec<u64>,
    /// Latest injected arrival time, to enforce sorted arrival order.
    last_arrival: u64,
    /// Requests sitting in `queue` awaiting batch formation —
    /// incrementally maintained so [`Engine::backlog`] is O(1) (JSQ
    /// probes every shard on every arrival).
    queued: usize,
    /// Requests riding not-yet-completed batches — the in-flight half
    /// of the backlog, maintained at dispatch and completion.
    in_flight_requests: usize,
    outcomes: Vec<RequestOutcome>,
    worker_stats: Vec<WorkerStats>,
    total_events: EventCounts,
    makespan: u64,
    /// Per-`(arch, model)` service estimates, fed by completions.
    estimator: ServiceEstimator,
    /// Issuing client per request id (closed loop only).
    client_of: Vec<Option<usize>>,
    next_id: u64,
    /// Lazily partitioned pipeline plans per model (pipelined mode).
    pipelines: HashMap<usize, PipelinePlan>,
    /// Bounded inter-stage activation queues: `(model, boundary)` ->
    /// recent downstream-stage start times (at most the queue capacity
    /// retained).
    boundary_starts: HashMap<(usize, usize), VecDeque<u64>>,
    /// The `(model, stage)` each lane last executed, for warm-weight
    /// residency on pinned stage lanes.
    last_stage_on_lane: Vec<Option<(usize, usize)>>,
    /// Per-`(model, stage)` occupancy accumulators (pipelined mode).
    stage_stats: BTreeMap<(usize, usize), StageStatsAccum>,
    /// Plan-cache counters at engine start, so the report carries this
    /// run's delta.
    cache_before: CacheStats,
    /// Activation-profile-cache counters at engine start.
    act_cache_before: CacheStats,
    /// Requests tail-dropped per model index.
    dropped_per_model: Vec<u64>,
    /// Requests dispatched in timeout-sealed batches per model index.
    missed_per_model: Vec<u64>,
    /// Flight recorder + metrics registry (attached via
    /// [`Fleet::with_trace`]; `None` compiles every hook down to a
    /// branch). Boxed to keep the untraced engine's footprint flat.
    trace: Option<Box<TraceState>>,
    /// Fault-injection state (attached via [`Fleet::with_faults`]):
    /// the timeline cursor, retry queue, per-lane health table and
    /// accumulating [`FaultStats`]. `None` keeps every fault hook a
    /// single branch on the fault-free path.
    faults: Option<Box<FaultState>>,
}

/// Accumulator behind one [`PipelineStageStats`] row.
#[derive(Debug, Clone, Default)]
struct StageStatsAccum {
    layers: (usize, usize),
    lane: usize,
    batches: usize,
    requests: usize,
    busy_cycles: u64,
    bubble_cycles: u64,
    handoff_cycles: u64,
    /// The stage's lane's cumulative idle at the end of this stage's
    /// latest execution: the baseline the next execution's bubble delta
    /// is measured from. Counting lane *idle* (not wall time since this
    /// stage's last completion) keeps a shared lane's time on another
    /// model's stage out of this stage's bubbles.
    idle_seen: u64,
}

impl<'a> Engine<'a> {
    pub(crate) fn new(fleet: &'a Fleet, models: &'a [ModelSpec]) -> Self {
        assert!(
            fleet.fault.is_none() || fleet.placement != PlacementStrategy::Pipelined,
            "fault injection models monolithic lane execution; pipelined placement is unsupported"
        );
        Self {
            fleet,
            models,
            scopes: fleet.scopes(),
            queue: fleet.queue(models.len()),
            deadlines: DeadlineHeap::new(),
            in_flight: TimerWheel::new(),
            batches: Vec::new(),
            free_at: vec![0u64; fleet.lanes.len()],
            active_lanes: fleet.lanes.len(),
            lane_cum_idle: vec![0u64; fleet.lanes.len()],
            last_arrival: 0,
            queued: 0,
            in_flight_requests: 0,
            outcomes: Vec::new(),
            worker_stats: fleet.lanes.iter().map(|l| WorkerStats::new(l.arch())).collect(),
            total_events: EventCounts::default(),
            makespan: 0,
            estimator: ServiceEstimator::new(),
            client_of: Vec::new(),
            next_id: 0,
            pipelines: HashMap::new(),
            boundary_starts: HashMap::new(),
            last_stage_on_lane: vec![None; fleet.lanes.len()],
            stage_stats: BTreeMap::new(),
            cache_before: fleet.accelerator().plans().stats(),
            act_cache_before: fleet.accelerator().act_profiles().stats(),
            dropped_per_model: vec![0u64; models.len()],
            missed_per_model: vec![0u64; models.len()],
            trace: fleet.trace.map(|cfg| Box::new(TraceState::new(cfg, models.len()))),
            faults: fleet.fault.as_ref().map(|(config, timeline)| {
                Box::new(FaultState::new(config.clone(), timeline.clone(), models.len()))
            }),
        }
    }

    /// Closes every metrics boundary `<= now`, sampling the engine
    /// state each crossed boundary saw. Must run at the **top** of each
    /// simulated-event handler, before the event mutates engine state:
    /// that makes the sample at boundary `b` reflect exactly the events
    /// with `time < b`, independent of which driver (serial cluster,
    /// prerouted, barrier-parallel) delivers the events.
    fn trace_flush(&mut self, now: u64) {
        if !self.trace.as_ref().is_some_and(|tr| tr.flush_due(now)) {
            return;
        }
        let weights = self.fleet.accelerator().plans().stats().since(self.cache_before);
        let acts = self.fleet.accelerator().act_profiles().stats().since(self.act_cache_before);
        let (queued, in_flight) = (self.queued as u32, self.in_flight_requests as u32);
        let active = self.active_lanes as u32;
        if let Some(tr) = self.trace.as_mut() {
            tr.flush(now, queued, in_flight, active, Some((weights, acts)));
        }
    }

    /// Flushes metrics boundaries up to an autoscaler evaluation
    /// instant — called by the cluster driver before it may resize the
    /// active-lane set, so the samples at crossed boundaries see the
    /// pre-decision lane count in every driver.
    pub(crate) fn trace_autoscale_eval(&mut self, time: u64) {
        self.trace_flush(time);
    }

    /// Records an applied autoscale decision (`from` -> `to` active
    /// lanes at `time`, judged against `backlog` queued+in-flight
    /// requests).
    pub(crate) fn trace_autoscale_decision(
        &mut self,
        time: u64,
        from: usize,
        to: usize,
        backlog: usize,
    ) {
        if let Some(tr) = self.trace.as_mut() {
            tr.record(TraceEvent {
                cycle: time,
                kind: TraceEventKind::AutoscaleDecision,
                shard: 0,
                lane: from as u32,
                model: 0,
                stage: to as u32,
                a: backlog as u64,
                b: 0,
            });
        }
    }

    fn run(mut self, arrivals: &mut ArrivalSource, policy: &mut dyn BatchPolicy) -> ServeReport {
        loop {
            // The next event is the earliest of (completion, arrival,
            // deadline); kind breaks ties so same-cycle events fire in
            // a fixed order.
            let internal = self.next_internal_event();
            let arrival = arrivals.peek_time().map(|t| (t, ARRIVAL_KIND));
            let Some((_, kind)) = [internal, arrival].into_iter().flatten().min() else {
                break;
            };
            if kind == ARRIVAL_KIND {
                let (r, client) = arrivals.pop(self.next_id);
                self.inject(r, client, arrivals, policy);
            } else {
                self.step_internal(kind, arrivals, policy);
            }
        }
        self.into_report(policy.name())
    }

    /// The earliest pending internal event as `(time, kind)`:
    /// completions (kind 0), live batch deadlines (kind 2), pending
    /// retry re-admissions (kind 3) and fault-timeline edges (kind 4),
    /// with arrivals (kind 1) slotting between them at equal times.
    fn next_internal_event(&mut self) -> Option<(u64, u8)> {
        let completion = self.in_flight.peek().map(|(t, _)| (t, COMPLETION_KIND));
        let deadline = self.deadlines.peek_live(&self.queue).map(|(t, _)| (t, DEADLINE_KIND));
        let retry =
            self.faults.as_deref().and_then(|f| f.retries.peek_time()).map(|t| (t, RETRY_KIND));
        let fault =
            self.faults.as_deref().and_then(|f| f.next_fault_time()).map(|t| (t, FAULT_KIND));
        [completion, deadline, retry, fault].into_iter().flatten().min()
    }

    /// Processes one internal event previously returned by
    /// [`Engine::next_internal_event`].
    fn step_internal(
        &mut self,
        kind: u8,
        arrivals: &mut ArrivalSource,
        policy: &mut dyn BatchPolicy,
    ) {
        match kind {
            COMPLETION_KIND => self.on_completion(arrivals, policy),
            DEADLINE_KIND => self.on_deadline(policy),
            RETRY_KIND => self.on_retry(arrivals, policy),
            _ => self.on_fault(arrivals),
        }
    }

    /// Injects one externally-routed arrival (the cluster router's
    /// entry point), assigning it the next dense engine id and running
    /// the full admission/batching path.
    pub(crate) fn inject(
        &mut self,
        request: Request,
        client: Option<usize>,
        arrivals: &mut ArrivalSource,
        policy: &mut dyn BatchPolicy,
    ) {
        self.next_id += 1;
        assert!(request.arrival >= self.last_arrival, "arrival stream must be sorted");
        self.last_arrival = request.arrival;
        self.on_arrival(request, client, arrivals, policy);
    }

    /// Advances simulated time through every internal event that
    /// precedes an arrival at `t` in `(time, kind)` order: completions
    /// with time <= `t` and deadlines strictly before `t`. After this,
    /// the engine's queue depths are exactly what an arrival at `t`
    /// would observe — the router's probe point.
    pub(crate) fn advance_to_arrival(
        &mut self,
        t: u64,
        arrivals: &mut ArrivalSource,
        policy: &mut dyn BatchPolicy,
    ) {
        // Host-side wall-clock span only — no metrics flush here: the
        // serial cluster driver advances every shard to every arrival
        // while the prerouted driver advances a shard only to its own,
        // so any simulated-time hook at this boundary would make the
        // trace driver-dependent. Flushes live in the event handlers.
        let t0 = self.trace.is_some().then(Instant::now);
        while let Some((et, kind)) = self.next_internal_event() {
            if (et, kind) >= (t, ARRIVAL_KIND) {
                break;
            }
            self.step_internal(kind, arrivals, policy);
        }
        if let (Some(t0), Some(tr)) = (t0, self.trace.as_mut()) {
            tr.host.add("shard-advance", t0.elapsed());
        }
    }

    /// Drains every remaining internal event (end of the arrival
    /// stream).
    pub(crate) fn drain(&mut self, arrivals: &mut ArrivalSource, policy: &mut dyn BatchPolicy) {
        let t0 = self.trace.is_some().then(Instant::now);
        while let Some((_, kind)) = self.next_internal_event() {
            self.step_internal(kind, arrivals, policy);
        }
        if let (Some(t0), Some(tr)) = (t0, self.trace.as_mut()) {
            tr.host.add("shard-advance", t0.elapsed());
        }
    }

    /// The engine's **backlog**: requests injected but not yet
    /// resolved (queued for batching *plus* riding in-flight batches;
    /// tail-dropped requests resolve at arrival and never count).
    ///
    /// This is what the autoscaler thresholds compare against.
    /// Counting in-flight work matters there: sealed batches leave the
    /// request queues immediately, so queue length alone would make a
    /// shard whose lanes are booked solid for thousands of cycles look
    /// idle and shed lanes it is about to need. (The *router* probes
    /// [`Engine::queued_depth`] instead — see there for why.)
    ///
    /// O(1): both halves are incrementally maintained counters (a
    /// debug assertion cross-checks them against a full recompute from
    /// the queue lanes and the in-flight wheel).
    pub(crate) fn backlog(&self) -> usize {
        debug_assert_eq!(
            self.queued,
            (0..self.models.len()).map(|m| self.queue.pending(m)).sum::<usize>(),
            "queued counter diverged from the request queue"
        );
        debug_assert_eq!(
            self.in_flight_requests,
            self.in_flight
                .iter()
                .filter(|&(_, b)| !self.batches[b].cancelled)
                .map(|(_, b)| self.batches[b].requests.len())
                .sum::<usize>(),
            "in-flight counter diverged from the timer wheel"
        );
        self.queued + self.in_flight_requests
    }

    /// Requests queued for batching but not yet sealed into a batch —
    /// the signal the cluster's routing policies probe (O(1), same
    /// incrementally maintained counter as [`Engine::backlog`]).
    ///
    /// The router deliberately probes the *queued* depth rather than
    /// the full backlog: in-flight batch mass is common-mode across
    /// shards at steady state and drains at fixed, already-committed
    /// times no routing decision can change, so adding it dilutes the
    /// differential signal that join-shortest-queue / power-of-two
    /// actually steer on (measured on the canonical cluster scenario:
    /// probing full backlog erases most of the p2c-vs-random global
    /// p99 win).
    pub(crate) fn queued_depth(&self) -> usize {
        debug_assert_eq!(
            self.queued,
            (0..self.models.len()).map(|m| self.queue.pending(m)).sum::<usize>(),
            "queued counter diverged from the request queue"
        );
        self.queued
    }

    /// Whether any internal event (completion or live deadline) fires
    /// strictly before an arrival at `t` in `(time, kind)` order — the
    /// cluster barrier's fast path: a shard answering `false` needs no
    /// [`Engine::advance_to_arrival`] dispatch at all. Non-mutating on
    /// the completion wheel; stale deadline entries may be discarded,
    /// which never changes simulated state.
    pub(crate) fn has_event_before(&mut self, t: u64) -> bool {
        // (ct, COMPLETION) < (t, ARRIVAL) iff ct <= t;
        // (dt, DEADLINE) < (t, ARRIVAL) iff dt < t — and likewise for
        // retry and fault events (both kinds sort after arrivals).
        if self.in_flight.peek_next_event_cycle().is_some_and(|ct| ct <= t) {
            return true;
        }
        if let Some(f) = self.faults.as_deref() {
            if f.retries.peek_time().is_some_and(|rt| rt < t) {
                return true;
            }
            if f.next_fault_time().is_some_and(|ft| ft < t) {
                return true;
            }
        }
        self.deadlines.peek_live(&self.queue).is_some_and(|(dt, _)| dt < t)
    }

    /// Lanes currently accepting new batches (an `active_lanes`-prefix
    /// of the fleet's lanes).
    pub(crate) fn active_lanes(&self) -> usize {
        self.active_lanes
    }

    /// Resizes the active-lane prefix (the cluster autoscaler's
    /// actuator). Clamped to `1..=lanes`; in-flight work on a
    /// deactivated lane completes normally, the lane just stops
    /// receiving new batches.
    pub(crate) fn set_active_lanes(&mut self, lanes: usize) {
        self.active_lanes = lanes.clamp(1, self.fleet.lanes.len());
    }

    fn on_completion(&mut self, arrivals: &mut ArrivalSource, policy: &mut dyn BatchPolicy) {
        let (t, index) = self.in_flight.pop().expect("peeked");
        // Metrics boundaries close before this completion mutates any
        // counter (popping the wheel changes no sampled state).
        self.trace_flush(t);
        // A crash-cancelled batch's wheel entry is stale: its members
        // were already retried or failed at the crash. Nothing fires.
        if self.batches[index].cancelled {
            return;
        }
        if self.faults.is_some() {
            let backlog = self.queued + self.in_flight_requests;
            let lane = self.batches[index].lane;
            let f = self.faults.as_deref_mut().expect("checked");
            f.update_degraded(t, backlog);
            if let Some(pos) = f.lane_active[lane].iter().position(|&b| b == index) {
                f.lane_active[lane].swap_remove(pos);
            }
            // Outcomes were deferred from dispatch (a crash could
            // still have cancelled the batch); the batch survived, so
            // its requests are served now — trace, makespan and
            // outcome records included.
            self.makespan = self.makespan.max(t);
            let (ready, start, n) = (
                self.batches[index].ready,
                self.batches[index].start,
                self.batches[index].requests.len(),
            );
            let model = self.batches[index].model;
            if let Some(tr) = self.trace.as_mut() {
                tr.record_batch(
                    (ready, start, t),
                    lane as u32,
                    model as u32,
                    index as u64,
                    n as u64,
                );
            }
            for i in 0..n {
                let r = self.batches[index].requests[i];
                self.outcomes.push(RequestOutcome::Served(ServedRequest {
                    id: r.id,
                    model: self.models[model].name.to_string(),
                    arrival: r.arrival,
                    start,
                    completion: t,
                    batch: index,
                    worker: lane,
                }));
            }
        }
        if let Some(tr) = self.trace.as_mut() {
            let batch = &self.batches[index];
            for r in &batch.requests {
                tr.observe_latency(batch.model, t - r.arrival);
            }
        }
        self.in_flight_requests -= self.batches[index].requests.len();
        let batch = &self.batches[index];
        let max_latency_cycles = batch.requests.iter().map(|r| t - r.arrival).max().unwrap_or(0);
        policy.observe(&BatchObservation {
            model: batch.model,
            batch_size: batch.requests.len(),
            ready: batch.ready,
            start: batch.start,
            completion: t,
            max_latency_cycles,
        });
        // The cost models learn from completed batches only — a lane's
        // speed becomes evidence once its batch finishes. Pipelined
        // batches feed the per-stage estimates; monolithic batches the
        // whole-model estimate the affinity rule consumes.
        if batch.stage_execs.is_empty() {
            self.estimator.record(
                self.fleet.lanes[batch.lane].arch(),
                batch.model,
                batch.requests.len(),
                batch.service_cycles,
            );
        } else {
            for exec in &batch.stage_execs {
                self.estimator.record_stage(
                    self.fleet.lanes[exec.lane].arch(),
                    batch.model,
                    &exec.layers,
                    batch.requests.len(),
                    exec.service_cycles,
                );
            }
        }
        // Closed-loop clients issue their next request now. The map is
        // only populated in closed-loop mode, where engine-assigned ids
        // are dense; open-loop lookups miss and no-op.
        for i in 0..self.batches[index].requests.len() {
            let id = self.batches[index].requests[i].id as usize;
            let client = self.client_of.get(id).copied().flatten();
            arrivals.request_finished(client, t);
        }
    }

    fn on_arrival(
        &mut self,
        request: Request,
        client: Option<usize>,
        arrivals: &mut ArrivalSource,
        policy: &mut dyn BatchPolicy,
    ) {
        self.trace_flush(request.arrival);
        if client.is_some() {
            debug_assert_eq!(self.client_of.len() as u64, request.id);
            self.client_of.push(client);
        }
        let lane = request.model;
        if self.faults.is_some() {
            let backlog = self.queued + self.in_flight_requests;
            let f = self.faults.as_deref_mut().expect("checked");
            f.update_degraded(request.arrival, backlog);
            // The attempt table is keyed by request id (dense within a
            // fleet, the shard's slice of the global space in a
            // cluster); size it before any dispatch can consume an
            // attempt.
            let id = request.id as usize;
            if f.attempts.len() <= id {
                f.attempts.resize(id + 1, 0);
            }
            // Degraded mode: with a lane down and the backlog past the
            // threshold, best-effort models are shed at admission so
            // the strict classes keep their latency.
            if f.sheds(lane) {
                f.stats.shed += 1;
                self.dropped_per_model[lane] += 1;
                if let Some(tr) = self.trace.as_mut() {
                    tr.record(TraceEvent {
                        cycle: request.arrival,
                        kind: TraceEventKind::RequestDropped,
                        shard: 0,
                        lane: 0,
                        model: lane as u32,
                        stage: 0,
                        a: request.id,
                        b: self.queued as u64,
                    });
                }
                self.outcomes.push(RequestOutcome::Dropped(DroppedRequest {
                    id: request.id,
                    model: self.models[lane].name.to_string(),
                    arrival: request.arrival,
                }));
                arrivals.request_finished(client, request.arrival);
                return;
            }
        }
        let limits = policy.limits_for(lane);
        assert!(limits.max_batch > 0, "max_batch must be non-zero");
        let was_empty = self.queue.pending(lane) == 0;
        if !self.queue.try_push(request) {
            self.dropped_per_model[lane] += 1;
            if let Some(tr) = self.trace.as_mut() {
                tr.record(TraceEvent {
                    cycle: request.arrival,
                    kind: TraceEventKind::RequestDropped,
                    shard: 0,
                    lane: 0,
                    model: lane as u32,
                    stage: 0,
                    a: request.id,
                    b: self.queued as u64,
                });
            }
            self.outcomes.push(RequestOutcome::Dropped(DroppedRequest {
                id: request.id,
                model: self.models[lane].name.to_string(),
                arrival: request.arrival,
            }));
            // A drop completes the client's outstanding request
            // immediately; it thinks and retries from the drop time.
            arrivals.request_finished(client, request.arrival);
            return;
        }
        self.queued += 1;
        if was_empty {
            self.deadlines.arm(lane, &request, limits.max_wait_cycles, &self.queue);
        }
        // Several batches may seal back-to-back at this arrival when an
        // adaptive policy shrank `max_batch` below the lane's backlog;
        // they dispatch as one burst so their simulations fan out
        // together.
        let sealed = self.queue.pop_full_batches(lane, limits.max_batch);
        if sealed.is_empty() {
            return;
        }
        if let Some(front) = self.queue.front(lane) {
            let front = *front;
            self.deadlines.arm(lane, &front, limits.max_wait_cycles, &self.queue);
        }
        let now = request.arrival;
        let sealed: Vec<(Vec<Request>, u64)> = sealed
            .into_iter()
            .map(|members| {
                // A batch is never ready before its newest member.
                let ready = now.max(members.last().map_or(0, |r| r.arrival));
                (members, ready)
            })
            .collect();
        self.dispatch_burst(lane, sealed);
    }

    fn on_deadline(&mut self, policy: &mut dyn BatchPolicy) {
        let (deadline, lane) =
            self.deadlines.peek_live(&self.queue).expect("peeked before dispatch");
        self.trace_flush(deadline);
        if self.faults.is_some() {
            let backlog = self.queued + self.in_flight_requests;
            self.faults.as_deref_mut().expect("checked").update_degraded(deadline, backlog);
        }
        self.deadlines.pop();
        let limits = policy.limits_for(lane);
        let members = self.queue.pop_batch(lane, limits.max_batch.max(1));
        debug_assert!(!members.is_empty());
        // Every member of a timeout-sealed batch waited out the full
        // `max_wait` — the deadline-miss unit the per-model accounting
        // and the vectorized `close_timed_out` classification share.
        self.missed_per_model[lane] += members.len() as u64;
        if let Some(tr) = self.trace.as_mut() {
            tr.record(TraceEvent {
                cycle: deadline,
                kind: TraceEventKind::DeadlineMiss,
                shard: 0,
                lane: 0,
                model: lane as u32,
                stage: 0,
                a: members.len() as u64,
                b: 0,
            });
        }
        // An adaptive shrink can leave a lane's re-armed deadline in
        // the past relative to later members; a batch is never ready
        // before its newest member arrived.
        let ready = deadline.max(members.last().map_or(0, |r| r.arrival));
        if let Some(front) = self.queue.front(lane) {
            let front = *front;
            self.deadlines.arm(lane, &front, limits.max_wait_cycles, &self.queue);
        }
        self.dispatch_burst(lane, vec![(members, ready)]);
    }

    /// A crash-cancelled request's backoff expired: re-admit it
    /// through the normal batching path (or abandon it as `Failed` if
    /// its model lane is full — retries reserve no capacity).
    fn on_retry(&mut self, arrivals: &mut ArrivalSource, policy: &mut dyn BatchPolicy) {
        let (t, request, attempts) =
            self.faults.as_deref_mut().expect("retry event").retries.pop().expect("peeked");
        self.trace_flush(t);
        {
            let backlog = self.queued + self.in_flight_requests;
            let f = self.faults.as_deref_mut().expect("retry event");
            f.update_degraded(t, backlog);
            f.stats.retries += 1;
        }
        let lane = request.model;
        if let Some(tr) = self.trace.as_mut() {
            tr.record(TraceEvent {
                cycle: t,
                kind: TraceEventKind::RequestRetried,
                shard: 0,
                lane: 0,
                model: lane as u32,
                stage: 0,
                a: request.id,
                b: attempts as u64,
            });
        }
        let limits = policy.limits_for(lane);
        let was_empty = self.queue.pending(lane) == 0;
        if !self.queue.try_push(request) {
            self.fail_request(request, attempts, t, arrivals);
            return;
        }
        self.queued += 1;
        if was_empty {
            // The retried front's original arrival is in the past; its
            // wait budget restarts at the retry instant.
            self.deadlines.arm_at(
                t.saturating_add(limits.max_wait_cycles),
                lane,
                request.id,
                &self.queue,
            );
        }
        let sealed = self.queue.pop_full_batches(lane, limits.max_batch);
        if sealed.is_empty() {
            return;
        }
        if let Some(front) = self.queue.front(lane) {
            let front_id = front.id;
            self.deadlines.arm_at(
                t.saturating_add(limits.max_wait_cycles),
                lane,
                front_id,
                &self.queue,
            );
        }
        // A retry burst is never ready before now (every member
        // arrived — or was re-admitted — at or before `t`).
        let sealed: Vec<(Vec<Request>, u64)> =
            sealed.into_iter().map(|members| (members, t)).collect();
        self.dispatch_burst(lane, sealed);
    }

    /// Abandons `request` as [`RequestOutcome::Failed`] at `now` after
    /// `attempts` consumed dispatch attempts.
    fn fail_request(
        &mut self,
        request: Request,
        attempts: u32,
        now: u64,
        arrivals: &mut ArrivalSource,
    ) {
        {
            let f = self.faults.as_deref_mut().expect("fault mode");
            f.stats.failed += 1;
            f.failed_per_model[request.model] += 1;
        }
        self.outcomes.push(RequestOutcome::Failed(FailedRequest {
            id: request.id,
            model: self.models[request.model].name.to_string(),
            arrival: request.arrival,
            attempts,
        }));
        let client = self.client_of.get(request.id as usize).copied().flatten();
        arrivals.request_finished(client, now);
    }

    /// Processes the next fault-timeline edge: a crash or slowdown
    /// window opening or closing on one lane.
    fn on_fault(&mut self, arrivals: &mut ArrivalSource) {
        let ev = {
            let f = self.faults.as_deref_mut().expect("fault event");
            let ev = f.timeline.events()[f.cursor];
            f.cursor += 1;
            ev
        };
        let t = ev.time;
        self.trace_flush(t);
        let backlog = self.queued + self.in_flight_requests;
        self.faults.as_deref_mut().expect("fault event").update_degraded(t, backlog);
        match ev.edge {
            WindowEdge::CrashStart => self.on_lane_crash(t, ev, arrivals),
            WindowEdge::CrashEnd => self.on_lane_recovery(t, ev),
            WindowEdge::SlowStart => {
                self.faults.as_deref_mut().expect("fault event").stats.slowdowns += 1;
                if let Some(tr) = self.trace.as_mut() {
                    tr.record(TraceEvent {
                        cycle: t,
                        kind: TraceEventKind::LaneFailed,
                        shard: 0,
                        lane: ev.lane as u32,
                        model: 0,
                        stage: 0,
                        a: ev.duration,
                        b: ev.factor,
                    });
                }
            }
            WindowEdge::SlowEnd => {
                if let Some(tr) = self.trace.as_mut() {
                    tr.record(TraceEvent {
                        cycle: t,
                        kind: TraceEventKind::LaneRecovered,
                        shard: 0,
                        lane: ev.lane as u32,
                        model: 0,
                        stage: 0,
                        a: ev.duration,
                        b: ev.factor,
                    });
                }
            }
        }
        // Re-evaluate degraded mode against the post-edge health
        // table: a crash (or recovery) at `t` flips the lane-down
        // condition at `t` itself, not at the next event.
        let backlog = self.queued + self.in_flight_requests;
        self.faults.as_deref_mut().expect("fault event").update_degraded(t, backlog);
    }

    /// A crash window opens on `lane` at `t`: every in-flight batch on
    /// the lane is cancelled — its partially-executed cycles stay
    /// charged, the unexecuted remainder is refunded — and each member
    /// either schedules a retry or fails under the retry policy. The
    /// lane accepts no new work before the window closes (`free_at`
    /// jumps to the recovery time, so placement routes around it).
    fn on_lane_crash(&mut self, t: u64, ev: TimelineEvent, arrivals: &mut ArrivalSource) {
        let lane = ev.lane;
        let cancelled = {
            let f = self.faults.as_deref_mut().expect("crash event");
            f.stats.lane_crashes += 1;
            f.down[lane] = true;
            f.down_count += 1;
            std::mem::take(&mut f.lane_active[lane])
        };
        if let Some(tr) = self.trace.as_mut() {
            tr.record(TraceEvent {
                cycle: t,
                kind: TraceEventKind::LaneFailed,
                shard: 0,
                lane: lane as u32,
                model: 0,
                stage: 0,
                a: ev.duration,
                b: 0,
            });
        }
        // The lane is unusable until the window closes; everything it
        // was running is void, so it frees exactly at recovery.
        self.free_at[lane] = t + ev.duration;
        for index in cancelled {
            self.batches[index].cancelled = true;
            let service = self.batches[index].service_cycles;
            let start = self.batches[index].start;
            let executed = t.saturating_sub(start).min(service);
            self.worker_stats[lane].busy_cycles -= service - executed;
            let members = std::mem::take(&mut self.batches[index].requests);
            self.in_flight_requests -= members.len();
            for r in members {
                let (attempts, retry_at) = {
                    let f = self.faults.as_deref_mut().expect("crash event");
                    let attempts = &mut f.attempts[r.id as usize];
                    *attempts += 1;
                    (*attempts, f.config.retry.next_retry(t, r.arrival, *attempts))
                };
                match retry_at {
                    Some(rt) => self
                        .faults
                        .as_deref_mut()
                        .expect("crash event")
                        .retries
                        .schedule(rt, r, attempts),
                    None => self.fail_request(r, attempts, t, arrivals),
                }
            }
        }
    }

    /// A crash window closes: the lane rejoins the fleet **cold** —
    /// its warm weight/activation residency is gone, so recovery
    /// clears the shared caches and the survivors re-warm them (the
    /// post-recovery miss burst the report's cache activity shows).
    /// Cache counters are host-side observability, excluded from
    /// report equality, so the clear never perturbs byte-identity
    /// across drivers.
    fn on_lane_recovery(&mut self, t: u64, ev: TimelineEvent) {
        let lane = ev.lane;
        {
            let f = self.faults.as_deref_mut().expect("recovery event");
            f.stats.lane_recoveries += 1;
            f.stats.lane_recovery_counts[lane] += 1;
            f.stats.lane_downtime_cycles[lane] += ev.duration;
            f.down[lane] = false;
            f.down_count -= 1;
        }
        if let Some(tr) = self.trace.as_mut() {
            tr.record(TraceEvent {
                cycle: t,
                kind: TraceEventKind::LaneRecovered,
                shard: 0,
                lane: lane as u32,
                model: 0,
                stage: 0,
                a: ev.duration,
                b: 0,
            });
        }
        // The restarted worker loses its compiled-program warmth: the
        // shared plan cache recompiles on the next seal (the cold-
        // recovery cost the report's plan-cache counters expose).
        // Activation profiles are a property of the request stream,
        // not lane-resident state, so they survive the restart.
        self.fleet.accelerator().plans().clear();
        self.last_stage_on_lane[lane] = None;
    }

    /// Records a router failover landing `request` on this shard
    /// (called by the cluster drivers immediately before injecting).
    pub(crate) fn note_failover(&mut self, request: &Request) {
        if let Some(f) = self.faults.as_deref_mut() {
            f.stats.failovers += 1;
        }
        if let Some(tr) = self.trace.as_mut() {
            tr.record(TraceEvent {
                cycle: request.arrival,
                kind: TraceEventKind::ShardFailedOver,
                shard: 0,
                lane: 0,
                model: request.model as u32,
                stage: 0,
                a: request.id,
                b: 0,
            });
        }
    }

    /// Picks the lane a `members`-request batch of `model`, ready at
    /// `ready`, dispatches to under the fleet's placement strategy.
    /// The choice depends only on `free_at`, the estimator, and the
    /// batch metadata — never on the batch's own (not yet known)
    /// execution, which is what makes speculative execution possible.
    fn choose_lane(&self, model: usize, members: usize, ready: u64) -> usize {
        // Only the active-lane prefix receives new batches (the
        // autoscaler's contract); with every lane active — the default
        // — the slices are the full fleet.
        let active = &self.free_at[..self.active_lanes];
        match self.fleet.placement {
            PlacementStrategy::EarliestFree => earliest_free_lane(active),
            PlacementStrategy::Affinity => {
                // Predicted service per lane; lanes without evidence
                // predict zero (optimistic), which makes the rule
                // collapse to earliest-free until the estimator has
                // data — and always on homogeneous fleets, where every
                // lane predicts alike.
                let predicted: Vec<u64> = self.fleet.lanes[..self.active_lanes]
                    .iter()
                    .map(|l| self.estimator.predict(l.arch(), model, members).unwrap_or(0))
                    .collect();
                affinity_lane(active, ready, &predicted)
            }
            // Pipelined batches never choose a single lane: their
            // stages are pinned by the model's PipelinePlan and
            // dispatch_burst routes them before reaching here.
            PlacementStrategy::Pipelined => {
                unreachable!("pipelined dispatch bypasses single-lane choice")
            }
        }
    }

    /// Executes and places a burst of batches sealed off one model
    /// lane at one event.
    ///
    /// A single-batch burst (the common case) resolves its lane first —
    /// the choice never depends on the batch's own execution — and
    /// simulates only that lane's scope. A multi-batch burst executes
    /// **speculatively**: later batches' placements depend on earlier
    /// batches' measured completions, so every batch simulates on every
    /// distinct lane scope in one host-pool fan-out before the serial
    /// placement loop consumes the memoized result of whichever lane it
    /// picks. Either way the result is byte-identical to a serial
    /// engine, because every simulation is a pure function of
    /// `(batch, lane scope)`.
    fn dispatch_burst(&mut self, model: usize, sealed: Vec<(Vec<Request>, u64)>) {
        // Every sealed member moves from the queued half of the
        // backlog to the in-flight half (it stays outstanding until
        // its batch's completion event).
        for (members, _) in &sealed {
            self.queued -= members.len();
            self.in_flight_requests += members.len();
        }
        if self.fleet.placement == PlacementStrategy::Pipelined {
            for (members, ready) in sealed {
                self.dispatch_pipelined(model, members, ready);
            }
            return;
        }
        let fleet = self.fleet;
        let spec = &self.models[model];
        let exec_started = self.trace.is_some().then(Instant::now);
        let speculative = if sealed.len() > 1 {
            let work: Vec<(usize, &[Request])> =
                sealed.iter().map(|(members, _)| (model, members.as_slice())).collect();
            Some(fleet.execute_on_scopes(&self.scopes, self.models, &work))
        } else {
            None
        };

        for (b, (members, ready)) in sealed.into_iter().enumerate() {
            let lane = self.choose_lane(model, members.len(), ready);
            let exec = match &speculative {
                Some(executions) => executions[self.scopes.exec_index(b, lane)],
                None => fleet.lanes[lane].execute_batch(spec, &members, fleet.weight_seed),
            };
            if self.faults.is_some() {
                self.dispatch_faulty(model, b, members, ready, lane, exec, &speculative);
                continue;
            }
            let start = self.free_at[lane].max(ready);
            let completion = start + exec.service_cycles;
            self.lane_cum_idle[lane] += start - self.free_at[lane];
            self.free_at[lane] = completion;
            self.total_events += exec.events;
            self.makespan = self.makespan.max(completion);
            let stats = &mut self.worker_stats[lane];
            stats.busy_cycles += exec.service_cycles;
            stats.batches += 1;
            stats.requests += members.len();
            stats.events += exec.events;
            let batch_id = self.batches.len();
            if let Some(tr) = self.trace.as_mut() {
                tr.record_batch(
                    (ready, start, completion),
                    lane as u32,
                    model as u32,
                    batch_id as u64,
                    members.len() as u64,
                );
            }
            for r in &members {
                self.outcomes.push(RequestOutcome::Served(ServedRequest {
                    id: r.id,
                    model: spec.name.to_string(),
                    arrival: r.arrival,
                    start,
                    completion,
                    batch: batch_id,
                    worker: lane,
                }));
            }
            self.in_flight.push(completion, batch_id);
            self.batches.push(EngineBatch {
                model,
                requests: members,
                ready,
                start,
                lane,
                service_cycles: exec.service_cycles,
                stage_execs: Vec::new(),
                cancelled: false,
            });
        }
        if let (Some(t0), Some(tr)) = (exec_started, self.trace.as_mut()) {
            tr.host.add("batch-execute", t0.elapsed());
        }
    }

    /// Fault-mode dispatch of one sealed batch: the lane's slowdown
    /// factor inflates the measured service time, aged batches may be
    /// **hedged** onto a second lane (the faster copy wins, the
    /// loser's lane time is charged as wasted capacity), and served
    /// outcomes are deferred to the completion event so a lane crash
    /// can still cancel the batch.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_faulty(
        &mut self,
        model: usize,
        burst_index: usize,
        members: Vec<Request>,
        ready: u64,
        lane: usize,
        exec: BatchExecution,
        speculative: &Option<Vec<BatchExecution>>,
    ) {
        let fleet = self.fleet;
        let f = self.faults.as_deref().expect("fault-mode dispatch");
        let slow_service = |l: usize, start: u64, svc: u64| {
            svc.saturating_mul(f.timeline.slow_factor_at(l, start))
        };
        let start = self.free_at[lane].max(ready);
        let service = slow_service(lane, start, exec.service_cycles);
        // Hedge decision: dispatch a duplicate onto the next
        // earliest-free active lane when the batch already queued for
        // longer than `age_factor ×` the learned service estimate.
        let mut primary = (lane, exec, start, service);
        let mut loser: Option<(usize, BatchExecution, u64, u64)> = None;
        if let Some(hedge) = f.config.hedge {
            let age = ready.saturating_sub(members.first().map_or(ready, |r| r.arrival));
            let predicted = self.estimator.predict(fleet.lanes[lane].arch(), model, members.len());
            let aged = predicted.is_some_and(|p| p > 0 && age > hedge.age_factor.saturating_mul(p));
            if aged && self.active_lanes >= 2 {
                let alt = (0..self.active_lanes)
                    .filter(|&l| l != lane)
                    .min_by_key(|&l| (self.free_at[l], l))
                    .expect("two active lanes");
                let alt_exec = match speculative {
                    Some(executions) => executions[self.scopes.exec_index(burst_index, alt)],
                    None => fleet.lanes[alt].execute_batch(
                        &self.models[model],
                        &members,
                        fleet.weight_seed,
                    ),
                };
                let alt_start = self.free_at[alt].max(ready);
                let alt_service = slow_service(alt, alt_start, alt_exec.service_cycles);
                // The faster copy wins (lane index breaks exact ties).
                if (alt_start + alt_service, alt) < (start + service, lane) {
                    loser = Some(primary);
                    primary = (alt, alt_exec, alt_start, alt_service);
                } else {
                    loser = Some((alt, alt_exec, alt_start, alt_service));
                }
            }
        }
        let (lane, exec, start, service) = primary;
        let completion = start + service;
        let batch_id = self.batches.len();
        // Charge the losing copy's lane time as wasted capacity: its
        // lane is busy racing a batch whose result is discarded.
        if let Some((l, l_exec, l_start, l_service)) = loser {
            self.lane_cum_idle[l] += l_start - self.free_at[l];
            self.free_at[l] = l_start + l_service;
            self.total_events += l_exec.events;
            self.worker_stats[l].busy_cycles += l_service;
            self.worker_stats[l].events += l_exec.events;
            let f = self.faults.as_deref_mut().expect("fault-mode dispatch");
            f.stats.hedges += 1;
            if let Some(tr) = self.trace.as_mut() {
                tr.record(TraceEvent {
                    cycle: start,
                    kind: TraceEventKind::RequestHedged,
                    shard: 0,
                    lane: lane as u32,
                    model: model as u32,
                    stage: 0,
                    a: batch_id as u64,
                    b: l as u64,
                });
            }
        }
        self.lane_cum_idle[lane] += start - self.free_at[lane];
        self.free_at[lane] = completion;
        self.total_events += exec.events;
        let stats = &mut self.worker_stats[lane];
        stats.busy_cycles += service;
        stats.batches += 1;
        stats.requests += members.len();
        stats.events += exec.events;
        self.in_flight.push(completion, batch_id);
        self.faults.as_deref_mut().expect("fault-mode dispatch").lane_active[lane].push(batch_id);
        self.batches.push(EngineBatch {
            model,
            requests: members,
            ready,
            start,
            lane,
            service_cycles: service,
            stage_execs: Vec::new(),
            cancelled: false,
        });
    }

    /// The model's pipeline plan, partitioned on first use (the
    /// partition is deterministic, so lazy construction never leaks
    /// host timing into results).
    fn pipeline_plan(&mut self, model: usize) -> PipelinePlan {
        if let Some(plan) = self.pipelines.get(&model) {
            return plan.clone();
        }
        let t0 = self.trace.is_some().then(Instant::now);
        let plan = PipelinePlan::partition(
            &self.fleet.lanes,
            model,
            &self.models[model],
            self.fleet.pipeline_stages,
            self.fleet.weight_seed,
            &mut self.estimator,
            self.fleet.host_parallelism,
        );
        if let (Some(t0), Some(tr)) = (t0, self.trace.as_mut()) {
            tr.host.add("pipeline-calibrate", t0.elapsed());
        }
        self.pipelines.insert(model, plan.clone());
        plan
    }

    /// Executes one sealed batch through its model's layer pipeline:
    /// the batch flows through the pinned stage lanes in order, each
    /// stage starting when its input activations arrive (previous
    /// stage's completion plus the boundary handoff), its lane frees
    /// up, and the bounded inter-stage queue has drained far enough.
    /// Consecutive batches therefore overlap: stage `s` of this batch
    /// runs while stage `s+1` still works on the previous one.
    ///
    /// A stage lane whose immediately-preceding execution was the same
    /// `(model, stage)` runs **warm** — its stage weights are still in
    /// the weight SRAM, so even the batch's first request skips the
    /// weight DMA on memory-bound layers (this is where pinning layers
    /// to lanes beats monolithic rotation on FC/depthwise-heavy
    /// models).
    fn dispatch_pipelined(&mut self, model: usize, members: Vec<Request>, ready: u64) {
        let plan = self.pipeline_plan(model);
        let fleet = self.fleet;
        let spec = &self.models[model];
        let queue_capacity = fleet.pipeline_queue_capacity;
        let batch_id = self.batches.len();
        let exec_started = self.trace.is_some().then(Instant::now);
        let mut stage_execs: Vec<StageExec> = Vec::with_capacity(plan.stages().len());
        let mut stage_starts: Vec<u64> = Vec::with_capacity(plan.stages().len());
        // When the next stage's input becomes available (the batch's
        // `ready` for stage 0, completion + handoff afterwards).
        let mut input_at = ready;
        let mut first_start = ready;
        let mut completion = ready;
        for (s, stage) in plan.stages().iter().enumerate() {
            let lane = stage.lane;
            let warm = self.last_stage_on_lane[lane] == Some((model, s));
            let exec = fleet.lanes[lane].execute_stage(
                spec,
                stage.layers.clone(),
                &members,
                fleet.weight_seed,
                warm,
            );
            let unconstrained = input_at.max(self.free_at[lane]);
            let mut start = unconstrained;
            // Backpressure: the boundary queue ahead holds at most
            // `queue_capacity` undelivered handoffs, so this stage may
            // not begin batch b before the next stage began batch
            // b - capacity.
            if s + 1 < plan.stages().len() {
                if let Some(history) = self.boundary_starts.get(&(model, s)) {
                    if history.len() == queue_capacity {
                        start = start.max(*history.front().expect("non-empty at capacity"));
                    }
                }
            }
            completion = start + exec.service_cycles;
            if let Some(tr) = self.trace.as_mut() {
                if start > unconstrained {
                    tr.record(TraceEvent {
                        cycle: start,
                        kind: TraceEventKind::StageStall,
                        shard: 0,
                        lane: lane as u32,
                        model: model as u32,
                        stage: s as u32,
                        a: batch_id as u64,
                        b: start - unconstrained,
                    });
                }
                tr.record(TraceEvent {
                    cycle: start,
                    kind: TraceEventKind::StageDispatch,
                    shard: 0,
                    lane: lane as u32,
                    model: model as u32,
                    stage: s as u32,
                    a: batch_id as u64,
                    b: exec.service_cycles,
                });
            }
            self.lane_cum_idle[lane] += start - self.free_at[lane];
            self.free_at[lane] = completion;
            self.last_stage_on_lane[lane] = Some((model, s));
            self.total_events += exec.events;
            // Per-lane occupancy: every stage execution counts on its
            // own lane (a pipelined batch touches one lane per stage,
            // so per-lane batch/request tallies sum to more than the
            // fleet totals — see [`WorkerStats::batches`]).
            let lane_stats = &mut self.worker_stats[lane];
            lane_stats.busy_cycles += exec.service_cycles;
            lane_stats.events += exec.events;
            lane_stats.batches += 1;
            lane_stats.requests += members.len();
            let handoff = if s == 0 { 0 } else { plan.handoff_cycles()[s - 1] };
            let stats = self.stage_stats.entry((model, s)).or_insert_with(|| StageStatsAccum {
                layers: (stage.layers.start, stage.layers.end),
                lane,
                ..StageStatsAccum::default()
            });
            stats.batches += 1;
            stats.requests += members.len();
            stats.busy_cycles += exec.service_cycles;
            stats.handoff_cycles += handoff;
            // A stage's bubbles are the cycles its lane sat *idle*
            // between this stage's consecutive executions. On a lane
            // shared with another model's stage, wall time since this
            // stage's last completion would wrongly charge the other
            // stage's busy cycles here; the per-lane idle accumulator
            // excludes them by construction. (On a single-model
            // pipeline the two accountings coincide exactly.)
            if stats.batches > 1 {
                stats.bubble_cycles += self.lane_cum_idle[lane] - stats.idle_seen;
            }
            stats.idle_seen = self.lane_cum_idle[lane];
            if s == 0 {
                first_start = start;
            }
            stage_starts.push(start);
            stage_execs.push(StageExec {
                lane,
                layers: stage.layers.clone(),
                service_cycles: exec.service_cycles,
            });
            input_at =
                completion + if s + 1 < plan.stages().len() { plan.handoff_cycles()[s] } else { 0 };
        }
        // Record this batch's downstream starts into the boundary
        // queues (trimmed to capacity: only the capacity-th most
        // recent start can ever gate a future batch).
        for (s, &start) in stage_starts.iter().enumerate().skip(1) {
            let history = self.boundary_starts.entry((model, s - 1)).or_default();
            history.push_back(start);
            while history.len() > queue_capacity {
                history.pop_front();
            }
        }

        let final_lane = plan.stages().last().expect("a pipeline has stages").lane;
        if let Some(tr) = self.trace.as_mut() {
            tr.record_batch(
                (ready, first_start, completion),
                final_lane as u32,
                model as u32,
                batch_id as u64,
                members.len() as u64,
            );
            if let Some(t0) = exec_started {
                tr.host.add("stage-execute", t0.elapsed());
            }
        }
        self.makespan = self.makespan.max(completion);
        for r in &members {
            self.outcomes.push(RequestOutcome::Served(ServedRequest {
                id: r.id,
                model: spec.name.to_string(),
                arrival: r.arrival,
                start: first_start,
                completion,
                batch: batch_id,
                worker: final_lane,
            }));
        }
        self.in_flight.push(completion, batch_id);
        self.batches.push(EngineBatch {
            model,
            requests: members,
            ready,
            start: first_start,
            lane: final_lane,
            service_cycles: completion - first_start,
            stage_execs,
            cancelled: false,
        });
    }

    pub(crate) fn into_report(mut self, policy_name: &str) -> ServeReport {
        self.outcomes.sort_by_key(RequestOutcome::id);
        let fault_state = self.faults.take();
        let per_model = self
            .models
            .iter()
            .enumerate()
            .map(|(i, m)| ModelServeStats {
                model: m.name.to_string(),
                dropped: self.dropped_per_model[i],
                deadline_misses: self.missed_per_model[i],
                failed: fault_state.as_ref().map_or(0, |f| f.failed_per_model[i]),
            })
            .collect();
        let fault = fault_state.map(|f| f.finish(self.makespan)).unwrap_or_default();
        let trace = TraceCell::default();
        if let Some(tr) = self.trace.take() {
            let weights = self.fleet.accelerator().plans().stats().since(self.cache_before);
            let acts = self.fleet.accelerator().act_profiles().stats().since(self.act_cache_before);
            let names = self.models.iter().map(|m| m.name.to_string()).collect();
            trace.set(tr.finish(self.makespan, Some((weights, acts)), names));
        }
        let pipeline_stages = self
            .stage_stats
            .into_iter()
            .map(|((model, stage), acc)| PipelineStageStats {
                model: self.models[model].name.to_string(),
                stage,
                layers: acc.layers,
                lane: acc.lane,
                arch: self.fleet.lanes[acc.lane].arch(),
                batches: acc.batches,
                requests: acc.requests,
                busy_cycles: acc.busy_cycles,
                bubble_cycles: acc.bubble_cycles,
                handoff_cycles: acc.handoff_cycles,
            })
            .collect();
        ServeReport {
            arch: self.fleet.arch_label(),
            policy: policy_name.to_string(),
            outcomes: self.outcomes,
            batches: self.batches.len(),
            workers: self.worker_stats,
            total_events: self.total_events,
            makespan_cycles: self.makespan,
            pipeline_stages,
            per_model,
            fault,
            plan_cache: PlanCacheActivity::new(
                self.fleet.accelerator().plans().stats().since(self.cache_before),
                self.fleet.accelerator().act_profiles().stats().since(self.act_cache_before),
            ),
            latency_hist: HistogramCell::default(),
            trace,
        }
    }
}

/// The cluster's parallel driver moves whole engines (plus their
/// arrival sources) across executor threads between barriers; keep
/// that a compile-time guarantee rather than an inference accident.
const _: () = {
    const fn assert_send<T: Send>() {}
    #[allow(dead_code)]
    const fn engine_state_is_send() {
        assert_send::<Engine<'_>>();
        assert_send::<ArrivalSource<'_>>();
        assert_send::<FixedPolicy>();
    }
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BatchLimits, SloAwarePolicy};
    use crate::workload::WorkloadSpec;
    use s2ta_models::lenet5;

    fn tiny_workload(n: usize) -> (Vec<ModelSpec>, Vec<Request>) {
        let models = vec![lenet5()];
        let reqs = WorkloadSpec::uniform(11, n, 20_000.0, 1).generate();
        (models, reqs)
    }

    #[test]
    fn serves_every_request_exactly_once() {
        let (models, reqs) = tiny_workload(24);
        let report = Fleet::new(ArchKind::S2taAw, 3).serve(&models, &reqs);
        assert_eq!(report.outcomes.len(), 24);
        assert_eq!(report.dropped_count(), 0);
        for (i, o) in report.outcomes.iter().enumerate() {
            assert_eq!(o.id(), i as u64, "outcomes must be dense by id");
            let s = o.served().expect("no drops without a capacity bound");
            assert!(s.completion > s.arrival);
            assert!(s.worker < 3);
        }
        let served: usize = report.workers.iter().map(|w| w.requests).sum();
        assert_eq!(served, 24);
    }

    #[test]
    fn deterministic_across_runs_and_aggregate_across_fleet_sizes() {
        let (models, reqs) = tiny_workload(16);
        let fleet = Fleet::new(ArchKind::S2taAw, 2);
        let a = fleet.serve(&models, &reqs);
        let b = fleet.serve(&models, &reqs);
        assert_eq!(a, b, "same fleet, same workload, same report");
        let c = Fleet::new(ArchKind::S2taAw, 5).serve(&models, &reqs);
        assert_eq!(a.total_events, c.total_events, "events must not depend on fleet size");
        assert_eq!(a.batches, c.batches);
        assert_eq!(a.outcomes.len(), c.outcomes.len());
    }

    #[test]
    fn more_workers_never_hurt_latency() {
        let (models, reqs) = tiny_workload(32);
        let one = Fleet::new(ArchKind::S2taAw, 1).serve(&models, &reqs);
        let four = Fleet::new(ArchKind::S2taAw, 4).serve(&models, &reqs);
        assert!(four.makespan_cycles <= one.makespan_cycles);
        assert!(four.p99_cycles() <= one.p99_cycles());
    }

    #[test]
    fn batching_beats_unbatched_on_memory_bound_models() {
        // LeNet is FC-heavy; amortizing weight streaming across a batch
        // must reduce total simulated cycles.
        let (models, reqs) = tiny_workload(32);
        let batched = Fleet::new(ArchKind::S2taAw, 2)
            .with_policy(FixedPolicy { max_batch: 8, max_wait_cycles: 1_000_000 })
            .serve(&models, &reqs);
        let unbatched = Fleet::new(ArchKind::S2taAw, 2)
            .with_policy(FixedPolicy::unbatched())
            .serve(&models, &reqs);
        assert!(
            batched.total_events.cycles < unbatched.total_events.cycles,
            "batched {} vs unbatched {} cycles",
            batched.total_events.cycles,
            unbatched.total_events.cycles
        );
        assert_eq!(
            batched.total_events.macs_active, unbatched.total_events.macs_active,
            "batching changes time, not arithmetic"
        );
    }

    /// The event-driven engine replays the vectorized open-loop path
    /// exactly when the policy is fixed: same batches, same placement,
    /// same report.
    #[test]
    fn engine_with_fixed_policy_matches_vectorized_serve() {
        let (models, reqs) = tiny_workload(40);
        for workers in [1, 3] {
            let policy = FixedPolicy { max_batch: 4, max_wait_cycles: 30_000 };
            let fleet = Fleet::new(ArchKind::S2taAw, workers).with_policy(policy);
            let vectorized = fleet.serve(&models, &reqs);
            let mut fixed = policy;
            let event_driven = fleet.serve_adaptive(&models, &reqs, &mut fixed);
            assert_eq!(vectorized, event_driven, "workers {workers}");
        }
    }

    #[test]
    fn engine_equivalence_holds_under_admission_bounds() {
        let models = vec![lenet5()];
        // Dense traffic against a lane bound below `max_batch` produces
        // real drops: the lane fills to capacity long before the
        // timeout can close a batch.
        let reqs = WorkloadSpec::uniform(5, 60, 500.0, 1).generate();
        let policy = FixedPolicy { max_batch: 8, max_wait_cycles: 10_000 };
        let fleet = Fleet::new(ArchKind::S2taAw, 2).with_policy(policy).with_queue_capacity(3);
        let vectorized = fleet.serve(&models, &reqs);
        assert!(vectorized.dropped_count() > 0, "workload must overload the bound");
        let mut fixed = policy;
        let event_driven = fleet.serve_adaptive(&models, &reqs, &mut fixed);
        assert_eq!(vectorized, event_driven);
    }

    /// The admission boundary at capacities 0 and 1, end to end: a
    /// zero-capacity fleet drops everything calmly, and a capacity-1
    /// fleet admits exactly the requests that find their lane empty —
    /// identically in the vectorized path and the engine.
    #[test]
    fn fleet_admission_boundaries_at_capacity_zero_and_one() {
        let (models, reqs) = tiny_workload(20);
        let drop_all = Fleet::new(ArchKind::S2taAw, 2).with_queue_capacity(0).serve(&models, &reqs);
        assert_eq!(drop_all.dropped_count(), 20);
        assert_eq!(drop_all.served_count(), 0);
        assert_eq!(drop_all.batches, 0);
        assert_eq!(drop_all.makespan_cycles, 0);
        assert_eq!(drop_all.p99_cycles(), 0, "drop-only runs report calm percentiles");

        let policy = FixedPolicy { max_batch: 4, max_wait_cycles: 10_000 };
        let one = Fleet::new(ArchKind::S2taAw, 2)
            .with_policy(policy)
            .with_queue_capacity(1)
            .serve(&models, &reqs);
        assert_eq!(one.served_count() + one.dropped_count(), 20);
        assert!(one.served_count() > 0, "capacity 1 still serves the lane-empty arrivals");
        let mut fixed = policy;
        let engine = Fleet::new(ArchKind::S2taAw, 2)
            .with_policy(policy)
            .with_queue_capacity(1)
            .serve_adaptive(&models, &reqs, &mut fixed);
        assert_eq!(one, engine, "capacity-1 admission must agree across paths");
    }

    #[test]
    fn closed_loop_is_deterministic_and_bounded_by_budget() {
        let models = vec![lenet5()];
        let spec = ClosedLoopSpec::uniform(19, 4, 40, 5_000.0, 1);
        let fleet = Fleet::new(ArchKind::S2taAw, 2);
        let mut p1 = FixedPolicy { max_batch: 4, max_wait_cycles: 20_000 };
        let mut p2 = p1;
        let a = fleet.serve_closed_loop(&models, &spec, &mut p1);
        let b = fleet.serve_closed_loop(&models, &spec, &mut p2);
        assert_eq!(a, b, "closed loop must be deterministic for a fixed seed/policy/workers");
        assert_eq!(a.outcomes.len(), 40, "every budgeted request is issued exactly once");
        for (i, o) in a.outcomes.iter().enumerate() {
            assert_eq!(o.id(), i as u64);
        }
    }

    #[test]
    fn closed_loop_keeps_at_most_one_request_in_flight_per_client() {
        let models = vec![lenet5()];
        let clients = 3;
        let spec = ClosedLoopSpec::uniform(23, clients, 30, 1_000.0, 1);
        let mut policy = FixedPolicy::unbatched();
        let report =
            Fleet::new(ArchKind::S2taAw, clients).serve_closed_loop(&models, &spec, &mut policy);
        // With batch-1 dispatch and one worker per client, a client's
        // requests can never overlap: at most `clients` requests are
        // ever concurrently in the system.
        let mut events: Vec<(u64, i64)> = Vec::new();
        for o in report.served_outcomes() {
            events.push((o.arrival, 1));
            events.push((o.completion, -1));
        }
        events.sort_unstable();
        let mut open = 0i64;
        for (_, delta) in events {
            open += delta;
            assert!(open <= clients as i64, "more than one outstanding request per client");
        }
    }

    #[test]
    fn slo_policy_cuts_tail_latency_against_wide_open_fixed_policy() {
        let models = vec![lenet5()];
        let reqs = WorkloadSpec::uniform(31, 48, 8_000.0, 1).generate();
        let fleet = Fleet::new(ArchKind::S2taAw, 2);
        let fixed_wide = FixedPolicy { max_batch: 8, max_wait_cycles: 400_000 };
        let baseline = fleet.clone().with_policy(fixed_wide).serve(&models, &reqs);
        let mut slo =
            SloAwarePolicy::new(60_000, BatchLimits { max_batch: 8, max_wait_cycles: 400_000 });
        let adaptive = fleet.serve_adaptive(&models, &reqs, &mut slo);
        assert!(
            adaptive.p99_cycles() < baseline.p99_cycles(),
            "SLO-aware p99 {} must beat fixed p99 {}",
            adaptive.p99_cycles(),
            baseline.p99_cycles()
        );
    }

    #[test]
    fn fleet_spec_builders_and_labels() {
        let spec = FleetSpec::mixed(&[(ArchKind::S2taAw, 2), (ArchKind::SaZvcg, 2)]);
        assert_eq!(spec.lanes(), 4);
        assert_eq!(spec.label(), "2xS2TA-AW + 2xSA-ZVCG");
        assert_eq!(FleetSpec::homogeneous(ArchKind::S2taW, 3).label(), "S2TA-W");
        let fleet = Fleet::from_spec(spec);
        assert_eq!(fleet.workers(), 4);
        assert_eq!(fleet.arch_label(), "2xS2TA-AW + 2xSA-ZVCG");
        assert_eq!(fleet.lanes()[0].arch(), ArchKind::S2taAw);
        assert_eq!(fleet.lanes()[3].arch(), ArchKind::SaZvcg);
        // Interleaved lanes still group by first appearance.
        let interleaved =
            FleetSpec::new().lane(ArchKind::SaZvcg).lane(ArchKind::S2taAw).lane(ArchKind::SaZvcg);
        assert_eq!(interleaved.label(), "2xSA-ZVCG + 1xS2TA-AW");
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn empty_spec_rejected() {
        let _ = Fleet::from_spec(FleetSpec::new());
    }

    /// An empty request stream must produce a calm empty report — this
    /// pins the host-pool sizing guard (`min(0)` used to be able to
    /// request a zero-worker pool).
    #[test]
    fn empty_request_stream_is_served_calmly() {
        let models = vec![lenet5()];
        let fleet = Fleet::new(ArchKind::S2taAw, 2);
        let report = fleet.serve(&models, &[]);
        assert_eq!(report.outcomes.len(), 0);
        assert_eq!(report.batches, 0);
        assert_eq!(report.makespan_cycles, 0);
        let mut policy = FixedPolicy::default();
        let engine = fleet.serve_adaptive(&models, &[], &mut policy);
        assert_eq!(engine.outcomes.len(), 0);
        assert_eq!(engine.batches, 0);
    }

    /// `with_accelerator` keeps the caller's plan cache: plans compiled
    /// up front stay warm, and the fleet's compilations flow back.
    #[test]
    fn with_accelerator_shares_the_callers_plan_cache() {
        let (models, reqs) = tiny_workload(8);
        let acc = Accelerator::preset(ArchKind::S2taAw);
        // Pre-warm with the fleet's default weight seed (42).
        let prewarmed = acc.plan_model(&models[0], 42);
        let fleet = Fleet::with_accelerator(acc.clone(), 2);
        assert!(
            std::sync::Arc::ptr_eq(
                &prewarmed,
                &fleet.lanes()[0].accelerator().plan_model(&models[0], 42)
            ),
            "lanes must reuse the caller's pre-compiled plan"
        );
        let _ = fleet.with_weight_seed(7).serve(&models, &reqs);
        assert_eq!(
            acc.plans().len(),
            2,
            "the fleet's seed-7 compilation must be visible to the caller"
        );
    }

    /// Mixed-fleet lanes share one plan cache: each DBB architecture
    /// compiles the model exactly once, keyed apart by arch.
    #[test]
    fn mixed_fleet_lanes_share_one_plan_cache() {
        let (models, reqs) = tiny_workload(12);
        let fleet =
            Fleet::from_spec(FleetSpec::mixed(&[(ArchKind::S2taAw, 2), (ArchKind::S2taW, 2)]));
        let _ = fleet.serve(&models, &reqs);
        // Both DBB archs planned lenet5 once each in the shared cache.
        assert_eq!(fleet.lanes()[0].accelerator().plans().len(), 2);
        for lane in fleet.lanes() {
            assert_eq!(
                lane.accelerator().plans().len(),
                2,
                "every lane must see the same shared cache"
            );
        }
    }

    /// Affinity placement on a homogeneous fleet must be byte-identical
    /// to earliest-free: with lane-indistinguishable predictions the
    /// cost model collapses to the same choice.
    #[test]
    fn affinity_collapses_to_earliest_free_on_homogeneous_fleets() {
        let (models, reqs) = tiny_workload(40);
        let policy = FixedPolicy { max_batch: 4, max_wait_cycles: 30_000 };
        for workers in [1usize, 3] {
            let base = Fleet::new(ArchKind::S2taAw, workers).with_policy(policy);
            let ef = base.clone().serve(&models, &reqs);
            let affinity = base.with_placement(PlacementStrategy::Affinity).serve(&models, &reqs);
            assert_eq!(ef, affinity, "workers {workers}");
        }
    }

    /// The host worker count is a wall-clock knob only: any
    /// parallelism level reproduces the serial engine byte-for-byte.
    #[test]
    fn host_parallelism_never_changes_results() {
        let models = vec![lenet5()];
        let reqs = WorkloadSpec::uniform(3, 30, 2_000.0, 1).generate();
        let spec = FleetSpec::mixed(&[(ArchKind::S2taAw, 1), (ArchKind::SaZvcg, 1)]);
        let mk = |host: usize| {
            Fleet::from_spec(spec.clone())
                .with_placement(PlacementStrategy::Affinity)
                .with_host_parallelism(host)
        };
        let serial = mk(1).serve(&models, &reqs);
        let parallel = mk(8).serve(&models, &reqs);
        assert_eq!(serial, parallel, "host pool size must never leak into results");
        assert!(serial.workers.iter().any(|w| w.batches > 0));
    }

    /// A single cold batch through the pipeline produces exactly the
    /// monolithic event totals on a homogeneous fleet: stage splitting
    /// changes *where* layers run, never what is computed. (Mixed
    /// fleets are excluded by design: the same MAC classifies
    /// differently per architecture.)
    #[test]
    fn pipelined_single_batch_is_event_identical_to_monolithic() {
        let models = vec![s2ta_models::deep_convnet()];
        // Four arrivals in a burst, max_batch 4: exactly one batch.
        let reqs = WorkloadSpec::uniform(5, 4, 10.0, 1).generate();
        let policy = FixedPolicy { max_batch: 4, max_wait_cycles: 1_000 };
        let mono = Fleet::new(ArchKind::S2taAw, 4).with_policy(policy).serve(&models, &reqs);
        assert_eq!(mono.batches, 1, "workload must form a single batch");
        for stages in [2usize, 3, 4] {
            let pipe = Fleet::new(ArchKind::S2taAw, 4)
                .with_policy(policy)
                .with_pipeline(stages)
                .serve(&models, &reqs);
            assert_eq!(pipe.batches, 1);
            assert_eq!(
                pipe.total_events, mono.total_events,
                "stages {stages}: a cold pipelined batch must be event-identical"
            );
            assert_eq!(pipe.served_count(), 4);
            // The pipeline pays handoffs, so its single-batch latency
            // can only be >= the monolithic run's.
            assert!(pipe.p99_cycles() >= mono.p99_cycles());
        }
    }

    /// Across many batches, pinned stage lanes keep their stage weights
    /// resident, so a pipelined run *saves* simulated cycles on the
    /// memory-bound layers while performing the identical arithmetic.
    #[test]
    fn pipelined_warm_stages_save_weight_dma_cycles() {
        let models = vec![s2ta_models::deep_convnet()];
        let reqs = WorkloadSpec::uniform(7, 24, 5_000.0, 1).generate();
        let policy = FixedPolicy { max_batch: 4, max_wait_cycles: 20_000 };
        let mono = Fleet::new(ArchKind::S2taAw, 4).with_policy(policy).serve(&models, &reqs);
        let pipe = Fleet::new(ArchKind::S2taAw, 4)
            .with_policy(policy)
            .with_pipeline(4)
            .serve(&models, &reqs);
        assert_eq!(
            pipe.total_events.macs_active, mono.total_events.macs_active,
            "pipelining changes time, not arithmetic"
        );
        assert!(
            pipe.total_events.cycles < mono.total_events.cycles,
            "warm pinned stages must save DMA-clamped cycles: {} vs {}",
            pipe.total_events.cycles,
            mono.total_events.cycles
        );
    }

    #[test]
    fn pipelined_run_is_deterministic_and_reports_stages() {
        let models = vec![s2ta_models::deep_convnet()];
        let reqs = WorkloadSpec::uniform(11, 20, 6_000.0, 1).generate();
        let mk = || {
            Fleet::from_spec(FleetSpec::mixed(&[(ArchKind::S2taAw, 2), (ArchKind::SaZvcg, 2)]))
                .with_policy(FixedPolicy { max_batch: 4, max_wait_cycles: 20_000 })
                .with_pipeline(4)
        };
        let a = mk().serve(&models, &reqs);
        let b = mk().serve(&models, &reqs);
        assert_eq!(a, b, "pipelined serving must be deterministic");
        assert_eq!(a.served_count(), 20);
        for (i, o) in a.outcomes.iter().enumerate() {
            assert_eq!(o.id(), i as u64);
            let s = o.served().expect("no drops");
            assert!(s.completion > s.arrival);
        }
        // Stage breakdown: tiles the model, distinct lanes, every
        // request flowed through every stage.
        let stages = &a.pipeline_stages;
        assert!(!stages.is_empty());
        assert_eq!(stages[0].layers.0, 0);
        assert_eq!(stages.last().unwrap().layers.1, models[0].layers.len());
        for pair in stages.windows(2) {
            assert_eq!(pair[0].layers.1, pair[1].layers.0);
        }
        let mut lanes: Vec<usize> = stages.iter().map(|s| s.lane).collect();
        lanes.sort_unstable();
        lanes.dedup();
        assert_eq!(lanes.len(), stages.len(), "stages must sit on distinct lanes");
        for st in stages {
            assert_eq!(st.requests, 20, "every request flows through stage {}", st.stage);
            assert!(st.busy_cycles > 0);
            assert_eq!(st.model, "Deep-ConvNet");
        }
        assert!(stages.iter().skip(1).all(|s| s.handoff_cycles > 0));
        assert_eq!(stages[0].handoff_cycles, 0, "stage 0 receives no handoff");
        // Lane events must still sum to the totals.
        let summed = a.workers.iter().fold(EventCounts::default(), |acc, w| acc + w.events);
        assert_eq!(summed, a.total_events);
        // The rendered table carries the stage rows.
        let table = a.pipeline_breakdown();
        assert!(table.contains("Deep-ConvNet") && table.contains("stage"), "{table}");
        // Monolithic runs render an empty table.
        assert!(mkmono().serve(&models, &reqs).pipeline_breakdown().is_empty());

        fn mkmono() -> Fleet {
            Fleet::from_spec(FleetSpec::mixed(&[(ArchKind::S2taAw, 2), (ArchKind::SaZvcg, 2)]))
        }
    }

    /// The bounded inter-stage queue is real backpressure: with
    /// capacity 1 an upstream stage may not start batch `b` before the
    /// downstream stage started batch `b-1`, so under a burst starts
    /// (and, when the induced bubble reaches the bottleneck stage,
    /// completions) can only move later — never earlier, and never
    /// change what is computed.
    #[test]
    fn bounded_interstage_queue_applies_backpressure() {
        let models = vec![s2ta_models::deep_convnet()];
        // A dense burst so many batches contend for the pipeline.
        let reqs = WorkloadSpec::uniform(3, 32, 200.0, 1).generate();
        let policy = FixedPolicy { max_batch: 4, max_wait_cycles: 5_000 };
        let mk = |cap: usize| {
            Fleet::new(ArchKind::S2taAw, 4)
                .with_policy(policy)
                .with_pipeline(4)
                .with_pipeline_queue_capacity(cap)
                .serve(&models, &reqs)
        };
        let tight = mk(1);
        let deep = mk(64);
        let starts = |r: &ServeReport| r.served_outcomes().map(|o| o.start).sum::<u64>();
        assert!(
            starts(&tight) > starts(&deep),
            "capacity-1 boundaries must delay upstream starts under a burst"
        );
        for (t, d) in tight.served_outcomes().zip(deep.served_outcomes()) {
            assert!(t.start >= d.start, "backpressure can only delay starts");
            assert!(t.completion >= d.completion, "backpressure can only delay completions");
        }
        assert!(tight.makespan_cycles >= deep.makespan_cycles);
        assert_eq!(tight.total_events, deep.total_events, "buffers change time, not work");
    }

    /// Regression test for the bubble-attribution skew: on a lane
    /// shared by **two models'** pipeline stages, a stage's bubbles
    /// must count only cycles its lane sat idle — not the other
    /// model's busy time on the same lane (wall-clock-since-my-last-
    /// completion accounting charged it here). The physical bound: a
    /// stage's bubbles are a subset of its lane's idle increments, so
    /// no stage can report more bubbles than its lane's idle span.
    /// (Two co-resident stages may both wait through the same idle
    /// gap, so bubbles deliberately do NOT sum to lane idle.)
    #[test]
    fn shared_lane_bubbles_exclude_other_models_busy_time() {
        let models = vec![lenet5(), s2ta_models::deep_convnet()];
        // Dense two-model traffic over a 2-lane pipeline: each model
        // splits into 2 stages, so both models' stages land on both
        // lanes and their executions interleave per lane.
        let reqs = WorkloadSpec::mixed(13, 48, 3_000.0, vec![1.0, 1.0]).generate();
        let report = Fleet::new(ArchKind::S2taAw, 2)
            .with_policy(FixedPolicy { max_batch: 4, max_wait_cycles: 8_000 })
            .with_pipeline(2)
            .serve(&models, &reqs);
        assert_eq!(report.served_count(), 48);
        let mut by_lane: HashMap<usize, Vec<&PipelineStageStats>> = HashMap::new();
        for st in &report.pipeline_stages {
            by_lane.entry(st.lane).or_default().push(st);
        }
        // The scenario must actually share a lane across models, or
        // the test proves nothing.
        assert!(
            by_lane.values().any(|stages| stages.iter().any(|s| s.model != stages[0].model)),
            "no lane is shared across models: {:?}",
            report.pipeline_stages
        );
        for st in &report.pipeline_stages {
            let busy = report.workers[st.lane].busy_cycles;
            let idle = report.makespan_cycles - busy;
            assert!(
                st.bubble_cycles <= idle,
                "{} stage {} on lane {}: bubbles ({}) exceed the lane's idle span \
                 ({idle}) — another model's busy time is being counted as bubbles",
                st.model,
                st.stage,
                st.lane,
                st.bubble_cycles
            );
        }
        // And the accounting is still live: some stage sees real
        // bubbles in this contended scenario.
        assert!(report.pipeline_stages.iter().any(|s| s.bubble_cycles > 0));
    }

    /// The serving report surfaces the fleet plan cache's hit/miss
    /// split: on a mixed fleet each DBB arch compiles each model once
    /// (misses), every later execution hits, and dense lanes bypass.
    #[test]
    fn report_carries_plan_cache_activity() {
        let models = vec![lenet5()];
        let reqs = WorkloadSpec::uniform(9, 16, 5_000.0, 1).generate();
        let fleet =
            Fleet::from_spec(FleetSpec::mixed(&[(ArchKind::S2taAw, 2), (ArchKind::SaZvcg, 2)]));
        let report = fleet.serve(&models, &reqs);
        assert_eq!(report.plan_cache.misses, 1, "one DBB arch, one model, one compile");
        assert!(report.plan_cache.hits > 0, "per-batch executions must hit the memo");
        assert!(report.plan_cache.bypasses > 0, "dense lanes bypass memoization");
        assert!(report.plan_cache.hit_rate() > 0.5);
        // The activation-profile cache: the S2TA-AW and SA-ZVCG design
        // points share (tile_cols, bz), so each (layer, act seed)
        // profiles once and the other scope's execution hits; the cache
        // never bypasses.
        assert!(report.plan_cache.acts.misses > 0, "cold run must compile profiles");
        assert!(report.plan_cache.acts.hits > 0, "the second scope must reuse them");
        assert_eq!(report.plan_cache.acts.bypasses, 0, "every act lookup is memoized");
        // A second run on the same fleet reports its own delta: plans
        // and profiles are already warm, so no new compiles on either
        // cache and the act side goes hits-only (steady state).
        let again = fleet.serve(&models, &reqs);
        assert_eq!(again.plan_cache.misses, 0, "warm cache: the delta has no compiles");
        assert!(again.plan_cache.hits > 0);
        assert_eq!(again.plan_cache.acts.misses, 0, "warm act cache: no new profiles");
        assert!(again.plan_cache.acts.hits > again.plan_cache.acts.misses);
    }

    /// Heterogeneous earliest-free: the vectorized path and the engine
    /// still agree for fixed policies, and per-lane stats reflect each
    /// lane's own architecture.
    #[test]
    fn mixed_fleet_engine_matches_vectorized_serve() {
        let models = vec![lenet5()];
        let reqs = WorkloadSpec::uniform(7, 32, 8_000.0, 1).generate();
        let policy = FixedPolicy { max_batch: 4, max_wait_cycles: 30_000 };
        let fleet =
            Fleet::from_spec(FleetSpec::mixed(&[(ArchKind::S2taAw, 2), (ArchKind::SaZvcg, 1)]))
                .with_policy(policy);
        let vectorized = fleet.serve(&models, &reqs);
        let mut fixed = policy;
        let event_driven = fleet.serve_adaptive(&models, &reqs, &mut fixed);
        assert_eq!(vectorized, event_driven);
        assert_eq!(vectorized.workers[0].arch, ArchKind::S2taAw);
        assert_eq!(vectorized.workers[2].arch, ArchKind::SaZvcg);
        assert_eq!(vectorized.arch, "2xS2TA-AW + 1xSA-ZVCG");
        // Per-lane events must sum to the fleet totals.
        let summed =
            vectorized.workers.iter().fold(EventCounts::default(), |acc, w| acc + w.events);
        assert_eq!(summed, vectorized.total_events);
    }

    use crate::fault::{FaultConfig, FaultSpec, RetryPolicy};

    fn crash_spec(seed: u64, crashes: usize, horizon: u64, mean_down: u64) -> FaultSpec {
        FaultSpec {
            seed,
            lane_crashes: crashes,
            lane_slowdowns: 0,
            shard_outages: 0,
            horizon_cycles: horizon,
            mean_down_cycles: mean_down,
            mean_outage_cycles: 0,
            slowdown_factor: 4,
        }
    }

    /// A quiet fault config (injection armed, nothing scheduled) must
    /// not perturb the simulation: same outcomes, same events, same
    /// makespan as the plain fleet — and all-zero fault accounting.
    #[test]
    fn quiet_fault_config_does_not_perturb_serving() {
        let (models, reqs) = tiny_workload(24);
        let plain = Fleet::new(ArchKind::S2taAw, 2).serve(&models, &reqs);
        let quiet = Fleet::new(ArchKind::S2taAw, 2)
            .with_faults(FaultConfig::protected(FaultSpec::quiet(5)))
            .serve(&models, &reqs);
        assert_eq!(plain.outcomes, quiet.outcomes);
        assert_eq!(plain.total_events, quiet.total_events);
        assert_eq!(plain.makespan_cycles, quiet.makespan_cycles);
        assert_eq!(quiet.fault.lane_crashes, 0);
        assert_eq!(quiet.fault.retries, 0);
        assert_eq!(quiet.fault.failed, 0);
        assert_eq!(quiet.availability(), 1.0);
    }

    /// Crashes under a protected config retry cancelled work: every
    /// request is accounted exactly once (served + dropped + failed),
    /// crashes and retries are visible in the stats, and the whole run
    /// is deterministic.
    #[test]
    fn protected_crashes_retry_and_conserve_requests() {
        let models = vec![lenet5()];
        // Dense single-lane traffic so crash windows reliably intersect
        // in-flight batches.
        let reqs = WorkloadSpec::uniform(11, 60, 2_000.0, 1).generate();
        let base = Fleet::new(ArchKind::S2taAw, 1).serve(&models, &reqs);
        let spec = crash_spec(7, 6, base.makespan_cycles.max(1), base.makespan_cycles / 4 + 1);
        let mut config = FaultConfig::protected(spec);
        config.retry =
            RetryPolicy { max_attempts: 4, backoff_base_cycles: 500, deadline_cycles: 0 };
        let fleet = Fleet::new(ArchKind::S2taAw, 1).with_faults(config);
        let report = fleet.serve(&models, &reqs);
        assert_eq!(
            report.served_count() + report.dropped_count() + report.failed_count(),
            reqs.len(),
            "every request must be served, dropped, or failed exactly once"
        );
        assert!(report.fault.lane_crashes > 0, "the schedule must actually crash the lane");
        assert_eq!(report.fault.lane_recoveries, report.fault.lane_crashes);
        assert!(report.fault.retries > 0, "cancelled in-flight work must be retried");
        assert_eq!(report, fleet.serve(&models, &reqs), "fault runs must be deterministic");
    }

    /// The same schedule without retries (the chaos baseline) must
    /// fail every cancelled request — and availability must drop.
    #[test]
    fn unprotected_crashes_fail_cancelled_requests() {
        let models = vec![lenet5()];
        let reqs = WorkloadSpec::uniform(11, 60, 2_000.0, 1).generate();
        let base = Fleet::new(ArchKind::S2taAw, 1).serve(&models, &reqs);
        let spec = crash_spec(7, 6, base.makespan_cycles.max(1), base.makespan_cycles / 4 + 1);
        let report = Fleet::new(ArchKind::S2taAw, 1)
            .with_faults(FaultConfig::unprotected(spec))
            .serve(&models, &reqs);
        assert!(report.failed_count() > 0, "no retries: cancelled work must fail");
        assert!(report.availability() < 1.0);
        assert_eq!(report.fault.retries, 0);
        assert_eq!(
            report.served_count() + report.dropped_count() + report.failed_count(),
            reqs.len()
        );
    }

    /// Degraded mode sheds only the best-effort class, and only while
    /// a lane is down with the backlog past the threshold: strict
    /// requests are never dropped, every shed lands on the best-effort
    /// model's drop counter, and the run stays deterministic.
    #[test]
    fn degraded_mode_sheds_best_effort_only() {
        use crate::fault::DegradedMode;
        let models = vec![lenet5(), lenet5()];
        let reqs = WorkloadSpec::uniform(17, 120, 1_000.0, 2).generate();
        let base = Fleet::new(ArchKind::S2taAw, 2).serve(&models, &reqs);
        let spec = crash_spec(3, 4, base.makespan_cycles.max(1), base.makespan_cycles / 3 + 1);
        let mut config = FaultConfig::protected(spec);
        config.degraded = Some(DegradedMode { backlog_threshold: 4, best_effort: vec![1] });
        let fleet = Fleet::new(ArchKind::S2taAw, 2).with_faults(config);
        let report = fleet.serve(&models, &reqs);
        assert!(report.fault.shed > 0, "sustained capacity loss must trigger shedding");
        assert_eq!(report.per_model[1].dropped, report.fault.shed, "sheds land on best-effort");
        assert_eq!(report.per_model[0].dropped, 0, "the strict class is never shed");
        assert_eq!(
            report.served_count() + report.dropped_count() + report.failed_count(),
            reqs.len()
        );
        assert_eq!(report, fleet.serve(&models, &reqs), "degraded runs must be deterministic");
    }

    /// Slowdown windows stretch service on the affected lane: total
    /// busy cycles and the tail must not improve, and the slowdown
    /// count must be visible.
    #[test]
    fn slowdowns_inflate_service_without_losing_requests() {
        let models = vec![lenet5()];
        let reqs = WorkloadSpec::uniform(13, 40, 4_000.0, 1).generate();
        let base = Fleet::new(ArchKind::S2taAw, 1).serve(&models, &reqs);
        let spec = FaultSpec {
            seed: 3,
            lane_crashes: 0,
            lane_slowdowns: 4,
            shard_outages: 0,
            horizon_cycles: base.makespan_cycles.max(1),
            mean_down_cycles: base.makespan_cycles / 3 + 1,
            mean_outage_cycles: 0,
            slowdown_factor: 6,
        };
        let report = Fleet::new(ArchKind::S2taAw, 1)
            .with_faults(FaultConfig::protected(spec))
            .serve(&models, &reqs);
        assert!(report.fault.slowdowns > 0);
        assert_eq!(report.served_count(), reqs.len(), "slowdowns delay, never lose");
        assert!(report.makespan_cycles >= base.makespan_cycles);
        assert!(report.p99_cycles() >= base.p99_cycles());
    }

    /// A recovered lane comes back **cold**: the shared plan/profile
    /// caches are cleared at the recovery edge, so a run with a
    /// mid-stream recovery recompiles what a fault-free run compiled
    /// exactly once.
    #[test]
    fn recovery_clears_caches_cold() {
        let models = vec![lenet5()];
        let reqs = WorkloadSpec::uniform(11, 60, 2_000.0, 1).generate();
        let base = Fleet::new(ArchKind::S2taAw, 1).serve(&models, &reqs);
        // Short windows confined to the first half of the run, so a
        // recovery edge fires while batches are still being sealed —
        // the post-recovery seals must recompile.
        let spec = crash_spec(7, 2, base.makespan_cycles / 2 + 1, base.makespan_cycles / 8 + 1);
        let report = Fleet::new(ArchKind::S2taAw, 1)
            .with_faults(FaultConfig::protected(spec))
            .serve(&models, &reqs);
        assert!(report.fault.lane_recoveries > 0, "schedule must include a recovery");
        assert!(
            report.plan_cache.misses > base.plan_cache.misses,
            "post-recovery executions must re-compile evicted plans \
             ({} vs fault-free {})",
            report.plan_cache.misses,
            base.plan_cache.misses
        );
    }

    /// Per-lane MTTR accounting: downtime and recovery counts line up
    /// with the expanded schedule's own windows.
    #[test]
    fn fault_stats_mttr_matches_schedule() {
        let models = vec![lenet5()];
        let reqs = WorkloadSpec::uniform(11, 60, 2_000.0, 1).generate();
        let base = Fleet::new(ArchKind::S2taAw, 1).serve(&models, &reqs);
        let spec = crash_spec(7, 6, base.makespan_cycles.max(1), base.makespan_cycles / 4 + 1);
        let report = Fleet::new(ArchKind::S2taAw, 1)
            .with_faults(FaultConfig::protected(spec.clone()))
            .serve(&models, &reqs);
        // The final drain fires every scheduled edge, so recoveries and
        // downtime must match the expanded plan's windows exactly.
        let plan = spec.schedule(&[1]);
        let windows = plan.shard_timeline(0).lane_down_windows(0).to_vec();
        assert!(!windows.is_empty());
        assert_eq!(report.fault.lane_recovery_counts[0] as usize, windows.len());
        let downtime: u64 = windows.iter().map(|&(start, end)| end - start).sum();
        assert_eq!(report.fault.lane_downtime_cycles[0], downtime);
        assert_eq!(report.fault.lane_mttr_cycles(0), Some(downtime / windows.len() as u64));
    }

    /// Hedged dispatch duplicates aged batches onto a second lane:
    /// with a quiet schedule and an aggressive age threshold under
    /// queue-building traffic, hedges fire, every request is still
    /// served exactly once, and the loser copies' lane time shows up
    /// as extra busy cycles — all deterministically.
    #[test]
    fn hedging_duplicates_aged_batches_without_losing_requests() {
        use crate::fault::HedgePolicy;
        let models = vec![lenet5()];
        // Sparse arrivals under a large batch cap: batches seal by
        // timeout, so each carries a queueing age of the full batching
        // window — well past the learned service estimate.
        let reqs = WorkloadSpec::uniform(13, 80, 12_000.0, 1).generate();
        let policy = FixedPolicy { max_batch: 8, max_wait_cycles: 30_000 };
        let plain = Fleet::new(ArchKind::S2taAw, 2).with_policy(policy).serve(&models, &reqs);
        let mut config = FaultConfig::protected(FaultSpec::quiet(5));
        config.hedge = Some(HedgePolicy { age_factor: 1 });
        let hedge = || {
            Fleet::new(ArchKind::S2taAw, 2)
                .with_policy(policy)
                .with_faults(config.clone())
                .serve(&models, &reqs)
        };
        let report = hedge();
        assert!(report.fault.hedges > 0, "aged batches must hedge");
        assert_eq!(report.served_count(), reqs.len(), "hedging must not lose requests");
        assert_eq!(report.fault.failed, 0);
        let busy = |r: &ServeReport| -> u64 { r.workers.iter().map(|w| w.busy_cycles).sum() };
        assert!(busy(&report) > busy(&plain), "losing copies must be charged as wasted lane time");
        assert_eq!(report, hedge(), "hedged serving must be deterministic");
    }
}
