//! The batching scheduler: groups compatible requests into batches and
//! places batches onto simulated-time worker lanes.
//!
//! Scheduling is split into two deterministic stages so that *what* is
//! computed never depends on *where* it runs:
//!
//! 1. **Batch formation** ([`Scheduler::form_batches`]) folds the
//!    arrival stream through a [`RequestQueue`], closing a batch when it
//!    reaches [`BatchPolicy::max_batch`] requests or when its oldest
//!    member has waited [`BatchPolicy::max_wait_cycles`]. Formation
//!    depends only on the arrival stream — never on worker availability
//!    — so the batch set (and therefore every simulated event count) is
//!    identical for every fleet size.
//! 2. **Placement** ([`Scheduler::place`]) assigns the formed batches,
//!    in ready order, to the earliest-free worker lane (lowest index on
//!    ties). Given the per-batch service times this reproduces the
//!    latency/throughput behaviour of an N-worker fleet exactly, while
//!    the actual cycle simulation runs on a host thread pool in any
//!    order.

use crate::queue::RequestQueue;
use crate::workload::Request;

/// When the scheduler closes a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Maximum requests per batch.
    pub max_batch: usize,
    /// Maximum cycles the oldest request of a batch may wait before the
    /// batch is dispatched anyway.
    pub max_wait_cycles: u64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self { max_batch: 8, max_wait_cycles: 100_000 }
    }
}

impl BatchPolicy {
    /// Batch-of-one: every request dispatches immediately (the paper's
    /// batch-1 mobile setting).
    pub fn unbatched() -> Self {
        Self { max_batch: 1, max_wait_cycles: 0 }
    }
}

/// A group of same-model requests dispatched together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// Dense id in dispatch order.
    pub id: usize,
    /// Model index every member shares.
    pub model: usize,
    /// Members in arrival order.
    pub requests: Vec<Request>,
    /// Cycle at which the batch became ready to dispatch.
    pub ready: u64,
}

/// A batch placed on a worker lane in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The batch this placement is for (index into the batch list).
    pub batch: usize,
    /// Worker lane the batch ran on.
    pub worker: usize,
    /// Cycle the batch started executing.
    pub start: u64,
    /// Cycle the batch finished.
    pub completion: u64,
}

/// The deterministic batching scheduler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Scheduler {
    policy: BatchPolicy,
}

impl Scheduler {
    /// A scheduler with the given policy.
    pub fn new(policy: BatchPolicy) -> Self {
        Self { policy }
    }

    /// The batching policy.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Folds a sorted arrival stream into batches.
    ///
    /// Every request appears in exactly one batch; batches hold one
    /// model's requests in arrival order; no batch exceeds
    /// `max_batch` members; and a batch's `ready` time never exceeds
    /// its first member's arrival plus `max_wait_cycles`.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero, a request names a model `>=
    /// models`, or arrivals are not sorted.
    pub fn form_batches(&self, requests: &[Request], models: usize) -> Vec<Batch> {
        assert!(self.policy.max_batch > 0, "max_batch must be non-zero");
        let mut queue = RequestQueue::new(models);
        let mut batches: Vec<Batch> = Vec::new();
        let mut last_arrival = 0u64;
        for r in requests {
            assert!(r.arrival >= last_arrival, "arrival stream must be sorted");
            last_arrival = r.arrival;
            // Lazily close any open batch whose oldest member timed out
            // before this arrival. Only r's own lane can be affected by
            // the push below, but timeouts on other lanes must also
            // fire in time order to keep batch ids chronological.
            self.close_timed_out(&mut queue, r.arrival, &mut batches);
            queue.push(*r);
            let lane = r.model;
            if queue.pending(lane) == self.policy.max_batch {
                let members = queue.pop_batch(lane, self.policy.max_batch);
                batches.push(Self::sealed(batches.len(), lane, members, r.arrival));
            }
        }
        // End of stream: remaining open batches dispatch at their
        // timeout (no later arrival can extend them).
        self.close_timed_out(&mut queue, u64::MAX, &mut batches);
        batches
    }

    /// Closes every open batch whose oldest member would exceed its
    /// wait bound at time `now`, in timeout order.
    fn close_timed_out(&self, queue: &mut RequestQueue, now: u64, batches: &mut Vec<Batch>) {
        loop {
            // Earliest deadline first, ties broken by model index so
            // closure order is deterministic.
            let next = (0..queue.models())
                .filter_map(|m| {
                    queue
                        .front(m)
                        .map(|r| (r.arrival.saturating_add(self.policy.max_wait_cycles), m))
                })
                .min();
            match next {
                Some((deadline, model)) if deadline < now || now == u64::MAX => {
                    let members = queue.pop_batch(model, self.policy.max_batch);
                    batches.push(Self::sealed(batches.len(), model, members, deadline));
                }
                _ => return,
            }
        }
    }

    fn sealed(id: usize, model: usize, requests: Vec<Request>, ready: u64) -> Batch {
        debug_assert!(!requests.is_empty());
        Batch { id, model, requests, ready }
    }

    /// Places batches onto `workers` simulated lanes: batches dispatch
    /// in ready order (ties by id) to the earliest-free lane (ties to
    /// the lowest index). `service_cycles[i]` is batch `i`'s execution
    /// time.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or `service_cycles` is shorter than
    /// the batch list.
    pub fn place(
        &self,
        batches: &[Batch],
        service_cycles: &[u64],
        workers: usize,
    ) -> Vec<Placement> {
        assert!(workers > 0, "a fleet needs at least one worker");
        assert!(service_cycles.len() >= batches.len(), "missing service times");
        let mut order: Vec<usize> = (0..batches.len()).collect();
        order.sort_by_key(|&i| (batches[i].ready, batches[i].id));
        let mut free_at = vec![0u64; workers];
        let mut placements =
            vec![Placement { batch: 0, worker: 0, start: 0, completion: 0 }; batches.len()];
        for i in order {
            let (worker, &free) =
                free_at.iter().enumerate().min_by_key(|&(idx, &t)| (t, idx)).expect("workers > 0");
            let start = free.max(batches[i].ready);
            let completion = start + service_cycles[i];
            free_at[worker] = completion;
            placements[i] = Placement { batch: i, worker, start, completion };
        }
        placements
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, model: usize, arrival: u64) -> Request {
        Request { id, model, arrival, act_seed: id }
    }

    fn ids(b: &Batch) -> Vec<u64> {
        b.requests.iter().map(|r| r.id).collect()
    }

    #[test]
    fn size_closure() {
        let s = Scheduler::new(BatchPolicy { max_batch: 2, max_wait_cycles: 1_000_000 });
        let reqs: Vec<Request> = (0..5).map(|i| req(i, 0, i * 10)).collect();
        let batches = s.form_batches(&reqs, 1);
        assert_eq!(batches.len(), 3);
        assert_eq!(ids(&batches[0]), vec![0, 1]);
        assert_eq!(batches[0].ready, 10, "ready at the arrival that filled the batch");
        assert_eq!(ids(&batches[1]), vec![2, 3]);
        // The trailing singleton dispatches at its timeout.
        assert_eq!(ids(&batches[2]), vec![4]);
        assert_eq!(batches[2].ready, 40 + 1_000_000);
    }

    #[test]
    fn timeout_closure_bounds_waiting() {
        let s = Scheduler::new(BatchPolicy { max_batch: 8, max_wait_cycles: 100 });
        let reqs = vec![req(0, 0, 0), req(1, 0, 50), req(2, 0, 200), req(3, 0, 220)];
        let batches = s.form_batches(&reqs, 1);
        assert_eq!(batches.len(), 2);
        assert_eq!(ids(&batches[0]), vec![0, 1]);
        assert_eq!(batches[0].ready, 100, "oldest member waited exactly max_wait");
        assert_eq!(ids(&batches[1]), vec![2, 3]);
        assert_eq!(batches[1].ready, 300);
    }

    #[test]
    fn batches_never_mix_models_and_lose_nothing() {
        let s = Scheduler::new(BatchPolicy { max_batch: 3, max_wait_cycles: 500 });
        let reqs: Vec<Request> = (0..40).map(|i| req(i, (i % 3) as usize, i * 37)).collect();
        let batches = s.form_batches(&reqs, 3);
        let mut seen: Vec<u64> = Vec::new();
        for b in &batches {
            assert!(!b.requests.is_empty());
            assert!(b.requests.len() <= 3);
            for r in &b.requests {
                assert_eq!(r.model, b.model, "mixed-model batch");
                assert!(b.ready <= r.arrival + 500, "request waited past the bound");
                seen.push(r.id);
            }
            let first = b.requests[0];
            assert!(b.ready >= first.arrival);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..40).collect::<Vec<_>>(), "dropped or duplicated requests");
    }

    #[test]
    fn fifo_within_and_across_batches_per_model() {
        let s = Scheduler::new(BatchPolicy { max_batch: 4, max_wait_cycles: 100 });
        let reqs: Vec<Request> = (0..30).map(|i| req(i, (i % 2) as usize, i * 9)).collect();
        let batches = s.form_batches(&reqs, 2);
        for model in 0..2 {
            let order: Vec<u64> =
                batches.iter().filter(|b| b.model == model).flat_map(ids).collect();
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(order, sorted, "model {model} not FIFO");
        }
    }

    #[test]
    fn placement_is_earliest_free_worker() {
        let s = Scheduler::new(BatchPolicy::default());
        let batches: Vec<Batch> = (0..4)
            .map(|i| Batch { id: i, model: 0, requests: vec![req(i as u64, 0, 0)], ready: 0 })
            .collect();
        let placements = s.place(&batches, &[100, 100, 10, 10], 2);
        // Batches 0 and 1 occupy both workers; batch 2 waits for the
        // first free worker (worker 0 at cycle 100 — ties go low).
        assert_eq!(placements[0].worker, 0);
        assert_eq!(placements[1].worker, 1);
        assert_eq!(placements[2].start, 100);
        assert_eq!(placements[3].start, 100);
        assert_eq!(placements[2].completion, 110);
        // Lanes never overlap.
        for w in 0..2 {
            let mut spans: Vec<(u64, u64)> = placements
                .iter()
                .filter(|p| p.worker == w)
                .map(|p| (p.start, p.completion))
                .collect();
            spans.sort_unstable();
            for pair in spans.windows(2) {
                assert!(pair[0].1 <= pair[1].0, "worker {w} overlapped");
            }
        }
    }

    #[test]
    fn placement_respects_ready_times() {
        let s = Scheduler::new(BatchPolicy::default());
        let batches: Vec<Batch> = (0..3)
            .map(|i| Batch {
                id: i,
                model: 0,
                requests: vec![req(i as u64, 0, 0)],
                ready: 1000 * i as u64,
            })
            .collect();
        let placements = s.place(&batches, &[10, 10, 10], 4);
        for (p, b) in placements.iter().zip(&batches) {
            assert!(p.start >= b.ready);
        }
    }
}
