//! The batching scheduler: groups compatible requests into batches and
//! places batches onto simulated-time worker lanes.
//!
//! Scheduling is split into two deterministic stages so that *what* is
//! computed never depends on *where* it runs:
//!
//! 1. **Batch formation** ([`Scheduler::form_batches`]) folds the
//!    arrival stream through a [`RequestQueue`], closing a batch when it
//!    reaches [`BatchLimits::max_batch`] requests or when its oldest
//!    member has waited [`BatchLimits::max_wait_cycles`]. Formation
//!    depends only on the arrival stream — never on worker availability
//!    — so the batch set (and therefore every simulated event count) is
//!    identical for every fleet size.
//! 2. **Placement** ([`Scheduler::place`] /
//!    [`Scheduler::place_on_lanes`]) assigns the formed batches, in
//!    ready order, to the earliest-free worker lane (lowest index on
//!    ties); `place_on_lanes` additionally lets the service time depend
//!    on the lane, which is what a heterogeneous (mixed-architecture)
//!    fleet needs. Given the per-batch service times this reproduces
//!    the latency/throughput behaviour of an N-lane fleet exactly,
//!    while the actual cycle simulation runs on a host thread pool in
//!    any order. The *affinity* dispatch rule
//!    ([`PlacementStrategy::Affinity`], backed by a per-`(arch, model)`
//!    [`ServiceEstimator`]) lives in the event-driven engine, which
//!    learns service estimates as the run progresses.
//!
//! Timeout closure is tracked with a deadline-ordered min-heap
//! ([`DeadlineHeap`]) instead of scanning every model lane per arrival:
//! each lane's *front* request defines its deadline, entries are pushed
//! when a lane front changes and invalidated lazily on pop, so an
//! arrival costs O(log models) amortized instead of O(models).
//!
//! **Deadline boundary semantics:** a batch closes only when its
//! deadline is *strictly* before the current time (`deadline < now`).
//! A request arriving exactly at the deadline of its lane's open batch
//! still joins that batch; the batch closes (at `ready == deadline`)
//! the moment any strictly later event is processed.
//!
//! The adaptive serving engine ([`crate::Fleet::serve_closed_loop`])
//! re-queries a [`crate::BatchPolicy`] for fresh limits as it runs;
//! this module's stream-fold path deliberately takes a fixed
//! [`BatchLimits`] so the independence property above is structural.

use crate::policy::{BatchLimits, FixedPolicy};
use crate::queue::RequestQueue;
use crate::timewheel::TimerWheel;
use crate::workload::Request;
use s2ta_core::ArchKind;
use std::collections::HashMap;
use std::ops::Range;

/// A group of same-model requests dispatched together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// Dense id in dispatch order.
    pub id: usize,
    /// Model index every member shares.
    pub model: usize,
    /// Members in arrival order.
    pub requests: Vec<Request>,
    /// Cycle at which the batch became ready to dispatch.
    pub ready: u64,
}

/// A batch placed on a worker lane in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The batch this placement is for (index into the batch list).
    pub batch: usize,
    /// Worker lane the batch ran on.
    pub worker: usize,
    /// Cycle the batch started executing.
    pub start: u64,
    /// Cycle the batch finished.
    pub completion: u64,
}

/// Deadline-ordered min-heap over lane fronts.
///
/// An entry `(deadline, model, front_id)` is pushed whenever a lane
/// gains a new front request. Entries are invalidated lazily: a popped
/// entry whose `front_id` no longer matches the lane's current front is
/// stale (the front already left in an earlier batch) and is discarded.
/// At most one entry per lane is live at any time, and each request
/// pushes at most one entry over its lifetime, so the heap stays
/// O(pending) with O(log models) amortized cost per arrival.
#[derive(Debug, Clone, Default)]
pub(crate) struct DeadlineHeap {
    /// Deadline-ordered timer wheel keyed by `(model, front_id)` — the
    /// same `(deadline, model, front_id)` pop order as the binary heap
    /// it replaced, at O(1) amortized per event.
    wheel: TimerWheel<(usize, u64)>,
    /// Compaction staging buffer; persistent so steady-state compaction
    /// allocates nothing once grown to its high-water mark.
    scratch: Vec<(u64, (usize, u64))>,
}

impl DeadlineHeap {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Records `model`'s new front request and its wait deadline.
    pub(crate) fn arm(
        &mut self,
        model: usize,
        front: &Request,
        max_wait_cycles: u64,
        queue: &RequestQueue,
    ) {
        let deadline = front.arrival.saturating_add(max_wait_cycles);
        self.arm_at(deadline, model, front.id, queue);
    }

    /// Records `model`'s new front request by id with an explicit
    /// deadline — used when the wait budget anchors to the re-queue
    /// instant of a retried request rather than its original arrival.
    pub(crate) fn arm_at(
        &mut self,
        deadline: u64,
        model: usize,
        front_id: u64,
        queue: &RequestQueue,
    ) {
        self.wheel.push(deadline, (model, front_id));
        self.maybe_compact(queue);
    }

    /// Rebuilds the wheel from its live entries once stale ones
    /// dominate. Lazy invalidation keeps the wheel O(pending) only
    /// while each request arms at most once; retry and timeout churn
    /// re-arms the same lane's front repeatedly, which would otherwise
    /// grow the wheel O(events processed). At most one entry per lane
    /// is live (matches the lane's current front), so live ≤ models and
    /// a `4 × models` bound means stale entries outnumber live at least
    /// 3:1 before a rebuild. The wheel pops in exact `(deadline, key)`
    /// order even for past deadlines, so popping everything and
    /// re-pushing the surviving subset preserves the exact pop order —
    /// compaction is behaviourally invisible.
    fn maybe_compact(&mut self, queue: &RequestQueue) {
        let live_bound = queue.models().max(1);
        if self.wheel.len() < 64 || self.wheel.len() <= 4 * live_bound {
            return;
        }
        self.scratch.clear();
        while let Some((deadline, key)) = self.wheel.pop() {
            let (model, front_id) = key;
            if queue.front(model).is_some_and(|front| front.id == front_id) {
                self.scratch.push((deadline, key));
            }
        }
        for &(deadline, key) in &self.scratch {
            self.wheel.push(deadline, key);
        }
    }

    /// Number of entries (live + stale) currently held.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.wheel.len()
    }

    /// The earliest live `(deadline, model)` pair, discarding stale
    /// entries against the queue's current lane fronts.
    pub(crate) fn peek_live(&mut self, queue: &RequestQueue) -> Option<(u64, usize)> {
        while let Some((deadline, (model, front_id))) = self.wheel.peek() {
            match queue.front(model) {
                Some(front) if front.id == front_id => return Some((deadline, model)),
                _ => {
                    self.wheel.pop();
                }
            }
        }
        None
    }

    /// Drops the current top entry (after a `peek_live` hit was acted
    /// on).
    pub(crate) fn pop(&mut self) {
        self.wheel.pop();
    }
}

/// How the fleet routes a sealed batch onto a lane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Dispatch to the lane that frees up first (lowest index on ties)
    /// — arch-blind, the PR 1 behaviour and the default.
    #[default]
    EarliestFree,
    /// Dispatch to the lane minimizing the *predicted completion time*
    /// `max(free, ready) + estimated service`, where the estimate comes
    /// from a per-`(arch, model)` [`ServiceEstimator`] bootstrapped
    /// from the run's own completed batches. Lanes whose `(arch,
    /// model)` pair has no estimate yet predict zero service
    /// (optimistic), which both explores unknown lanes and makes the
    /// rule collapse to earliest-free before any evidence exists — and
    /// **always** collapse to earliest-free on homogeneous fleets,
    /// where every lane predicts the same service.
    Affinity,
    /// Layer-pipelined execution (SCNN-style stage dataflow): every
    /// model is partitioned into contiguous layer **stages** by a
    /// [`crate::PipelinePlan`], each stage is pinned to a distinct
    /// lane, and a batch flows through the stage lanes in order — so
    /// stage `s` of batch `b` overlaps stage `s+1` of batch `b-1`, and
    /// a deep model no longer serializes a whole lane per batch.
    /// Configure with [`crate::Fleet::with_pipeline`].
    Pipelined,
}

/// The layer scope of a service estimate: a whole model, or one
/// contiguous layer range of it (a pipeline stage).
type StageKey = (usize, usize);

/// Sentinel stage key for whole-model estimates.
const WHOLE_MODEL: StageKey = (0, usize::MAX);

/// Per-`(arch, model, stage)` service-cycle estimates, bootstrapped
/// from the batches a serving run has executed. Whole-model estimates
/// (the affinity cost model) and per-stage estimates (the pipeline
/// partitioner and its lane assignment) live in one table, keyed apart
/// by the stage's layer range.
///
/// The estimate is the running mean of observed service cycles *per
/// request* on that architecture for that scope, scaled by the
/// candidate batch size. Integer arithmetic keeps predictions exactly
/// reproducible for a fixed observation sequence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceEstimator {
    /// `(arch, model, stage) -> (requests observed, service cycles
    /// observed)`.
    stats: HashMap<(ArchKind, usize, StageKey), (u64, u64)>,
}

impl ServiceEstimator {
    /// An empty estimator (every prediction is `None`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one executed whole-model batch: `requests` requests of
    /// `model` took `service_cycles` on an `arch` lane.
    pub fn record(&mut self, arch: ArchKind, model: usize, requests: usize, service_cycles: u64) {
        self.record_key(arch, model, WHOLE_MODEL, requests, service_cycles);
    }

    /// Records one executed **stage**: `requests` requests of `model`'s
    /// layers `stage` took `service_cycles` on an `arch` lane.
    pub fn record_stage(
        &mut self,
        arch: ArchKind,
        model: usize,
        stage: &Range<usize>,
        requests: usize,
        service_cycles: u64,
    ) {
        self.record_key(arch, model, (stage.start, stage.end), requests, service_cycles);
    }

    fn record_key(
        &mut self,
        arch: ArchKind,
        model: usize,
        stage: StageKey,
        requests: usize,
        service_cycles: u64,
    ) {
        let entry = self.stats.entry((arch, model, stage)).or_insert((0, 0));
        entry.0 += requests as u64;
        entry.1 += service_cycles;
    }

    /// Predicted service cycles of a `batch_size`-request whole-model
    /// batch of `model` on an `arch` lane, or `None` before any batch
    /// of that `(arch, model)` pair has executed.
    pub fn predict(&self, arch: ArchKind, model: usize, batch_size: usize) -> Option<u64> {
        self.predict_key(arch, model, WHOLE_MODEL, batch_size)
    }

    /// Predicted service cycles of a `batch_size`-request batch of
    /// `model`'s layers `stage` on an `arch` lane, or `None` before any
    /// execution of that exact `(arch, model, stage)` scope.
    pub fn predict_stage(
        &self,
        arch: ArchKind,
        model: usize,
        stage: &Range<usize>,
        batch_size: usize,
    ) -> Option<u64> {
        self.predict_key(arch, model, (stage.start, stage.end), batch_size)
    }

    fn predict_key(
        &self,
        arch: ArchKind,
        model: usize,
        stage: StageKey,
        batch_size: usize,
    ) -> Option<u64> {
        let &(requests, cycles) = self.stats.get(&(arch, model, stage))?;
        if requests == 0 {
            return None;
        }
        Some((cycles as u128 * batch_size as u128 / requests as u128) as u64)
    }

    /// Number of `(arch, model, stage)` scopes with at least one
    /// observation.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// `true` before the first observation.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }
}

/// The earliest-free lane: minimum `free_at`, ties to the lowest index.
///
/// # Panics
///
/// Panics if `free_at` is empty.
pub(crate) fn earliest_free_lane(free_at: &[u64]) -> usize {
    free_at
        .iter()
        .enumerate()
        .min_by_key(|&(idx, &t)| (t, idx))
        .expect("a fleet needs at least one lane")
        .0
}

/// The affinity choice: minimum predicted completion `max(free, ready)
/// + predicted_service[lane]`, ties broken by `free_at` then index.
///
/// The tie-break order matters: when every lane predicts the same
/// service (a homogeneous fleet, or no estimates yet), the choice
/// reduces exactly to [`earliest_free_lane`] — predicted completions
/// tie whenever the batch's `ready` dominates, and the `free_at`
/// tie-break then picks the same lane the earliest-free rule would.
pub(crate) fn affinity_lane(free_at: &[u64], ready: u64, predicted_service: &[u64]) -> usize {
    debug_assert_eq!(free_at.len(), predicted_service.len());
    free_at
        .iter()
        .zip(predicted_service)
        .enumerate()
        .min_by_key(|&(idx, (&free, &svc))| (free.max(ready).saturating_add(svc), free, idx))
        .expect("a fleet needs at least one lane")
        .0
}

/// The deterministic batching scheduler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Scheduler {
    policy: FixedPolicy,
}

/// Everything open-loop batch formation produced: the sealed batches
/// plus the requests refused at admission (empty for unbounded queues).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Formation {
    /// Sealed batches in dispatch order.
    pub batches: Vec<Batch>,
    /// Requests tail-dropped because their lane was at capacity, in
    /// arrival order.
    pub dropped: Vec<Request>,
    /// `timeout_sealed[i]` is whether `batches[i]` was sealed by its
    /// wait deadline expiring (a deadline miss for every member)
    /// rather than by reaching `max_batch`. Parallel to `batches`.
    pub timeout_sealed: Vec<bool>,
}

impl Scheduler {
    /// A scheduler with the given fixed policy.
    pub fn new(policy: FixedPolicy) -> Self {
        Self { policy }
    }

    /// The batching policy.
    pub fn policy(&self) -> FixedPolicy {
        self.policy
    }

    /// The policy's closure bounds.
    fn limits(&self) -> BatchLimits {
        self.policy.into()
    }

    /// Folds a sorted arrival stream into batches (unbounded lanes —
    /// every request is admitted).
    ///
    /// Every request appears in exactly one batch; batches hold one
    /// model's requests in arrival order; no batch exceeds
    /// `max_batch` members; and a batch's `ready` time never exceeds
    /// its first member's arrival plus `max_wait_cycles`.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero, a request names a model `>=
    /// models`, or arrivals are not sorted.
    pub fn form_batches(&self, requests: &[Request], models: usize) -> Vec<Batch> {
        let formation = self.form_batches_bounded(requests, models, None);
        debug_assert!(formation.dropped.is_empty(), "unbounded lanes cannot drop");
        formation.batches
    }

    /// Folds a sorted arrival stream into batches with optional
    /// per-lane admission bounds: a request arriving while its model's
    /// lane already holds `capacity` pending requests is tail-dropped
    /// instead of queued.
    ///
    /// Drop decisions depend only on the arrival stream and the closure
    /// history — never on worker availability — so bounded formation is
    /// exactly as fleet-size independent as the unbounded path.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Scheduler::form_batches`].
    pub fn form_batches_bounded(
        &self,
        requests: &[Request],
        models: usize,
        capacity: Option<usize>,
    ) -> Formation {
        let limits = self.limits();
        assert!(limits.max_batch > 0, "max_batch must be non-zero");
        let mut queue = match capacity {
            Some(cap) => RequestQueue::bounded(models, cap),
            None => RequestQueue::new(models),
        };
        let mut deadlines = DeadlineHeap::new();
        let mut batches: Vec<Batch> = Vec::new();
        let mut timeout_sealed: Vec<bool> = Vec::new();
        let mut dropped: Vec<Request> = Vec::new();
        let mut last_arrival = 0u64;
        for r in requests {
            assert!(r.arrival >= last_arrival, "arrival stream must be sorted");
            last_arrival = r.arrival;
            // Lazily close any open batch whose oldest member timed out
            // before this arrival. Only r's own lane can be affected by
            // the push below, but timeouts on other lanes must also
            // fire in time order to keep batch ids chronological.
            self.close_timed_out(
                &mut queue,
                r.arrival,
                &mut batches,
                &mut timeout_sealed,
                &mut deadlines,
            );
            let lane = r.model;
            let was_empty = queue.pending(lane) == 0;
            if !queue.try_push(*r) {
                dropped.push(*r);
                continue;
            }
            if was_empty {
                deadlines.arm(lane, r, limits.max_wait_cycles, &queue);
            }
            if queue.pending(lane) == limits.max_batch {
                let members = queue.pop_batch(lane, limits.max_batch);
                batches.push(Self::sealed(batches.len(), lane, members, r.arrival));
                timeout_sealed.push(false);
            }
        }
        // End of stream: remaining open batches dispatch at their
        // timeout (no later arrival can extend them).
        self.close_timed_out(
            &mut queue,
            u64::MAX,
            &mut batches,
            &mut timeout_sealed,
            &mut deadlines,
        );
        Formation { batches, dropped, timeout_sealed }
    }

    /// Closes every open batch whose oldest member would exceed its
    /// wait bound at time `now` (strictly: `deadline < now`; an arrival
    /// exactly at the deadline still joins), in deadline order with
    /// ties broken by model index. Every batch sealed here is a
    /// timeout seal (its members all missed the wait deadline).
    fn close_timed_out(
        &self,
        queue: &mut RequestQueue,
        now: u64,
        batches: &mut Vec<Batch>,
        timeout_sealed: &mut Vec<bool>,
        deadlines: &mut DeadlineHeap,
    ) {
        let limits = self.limits();
        while let Some((deadline, model)) = deadlines.peek_live(queue) {
            if deadline < now || now == u64::MAX {
                deadlines.pop();
                let members = queue.pop_batch(model, limits.max_batch);
                batches.push(Self::sealed(batches.len(), model, members, deadline));
                timeout_sealed.push(true);
                if let Some(front) = queue.front(model) {
                    let front = *front;
                    deadlines.arm(model, &front, limits.max_wait_cycles, queue);
                }
            } else {
                return;
            }
        }
    }

    fn sealed(id: usize, model: usize, requests: Vec<Request>, ready: u64) -> Batch {
        debug_assert!(!requests.is_empty());
        Batch { id, model, requests, ready }
    }

    /// Places batches onto `workers` **identical** simulated lanes:
    /// batches dispatch in ready order (ties by id) to the
    /// earliest-free lane (ties to the lowest index).
    /// `service_cycles[i]` is batch `i`'s execution time, the same on
    /// every lane. The heterogeneous generalization is
    /// [`Scheduler::place_on_lanes`], of which this is the
    /// lane-independent special case.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or `service_cycles` is shorter than
    /// the batch list.
    pub fn place(
        &self,
        batches: &[Batch],
        service_cycles: &[u64],
        workers: usize,
    ) -> Vec<Placement> {
        assert!(service_cycles.len() >= batches.len(), "missing service times");
        self.place_on_lanes(batches, |batch, _lane| service_cycles[batch], workers)
    }

    /// Places batches onto `lanes` simulated lanes whose service time
    /// may differ per lane (a heterogeneous fleet): batches dispatch in
    /// ready order (ties by id) to the earliest-free lane (ties to the
    /// lowest index), and `service_cycles(batch, lane)` answers how
    /// long `batch` runs on the chosen lane.
    ///
    /// The dispatch rule stays arch-blind (earliest-free); only the
    /// *measured* service time depends on the lane. Affinity-aware
    /// routing lives in the event-driven engine, which can grow its
    /// estimates as the run progresses.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn place_on_lanes(
        &self,
        batches: &[Batch],
        service_cycles: impl Fn(usize, usize) -> u64,
        lanes: usize,
    ) -> Vec<Placement> {
        assert!(lanes > 0, "a fleet needs at least one worker");
        let mut order: Vec<usize> = (0..batches.len()).collect();
        order.sort_by_key(|&i| (batches[i].ready, batches[i].id));
        let mut free_at = vec![0u64; lanes];
        let mut placements =
            vec![Placement { batch: 0, worker: 0, start: 0, completion: 0 }; batches.len()];
        for i in order {
            let worker = earliest_free_lane(&free_at);
            let start = free_at[worker].max(batches[i].ready);
            let completion = start + service_cycles(i, worker);
            free_at[worker] = completion;
            placements[i] = Placement { batch: i, worker, start, completion };
        }
        placements
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadSpec;

    fn req(id: u64, model: usize, arrival: u64) -> Request {
        Request { id, model, arrival, act_seed: id }
    }

    fn ids(b: &Batch) -> Vec<u64> {
        b.requests.iter().map(|r| r.id).collect()
    }

    /// The pre-heap O(models)-scan implementation, kept verbatim as the
    /// reference the heap path must match byte-for-byte.
    fn form_batches_reference(s: &Scheduler, requests: &[Request], models: usize) -> Vec<Batch> {
        let policy = s.policy();
        assert!(policy.max_batch > 0, "max_batch must be non-zero");
        let mut queue = RequestQueue::new(models);
        let mut batches: Vec<Batch> = Vec::new();
        let close_timed_out = |queue: &mut RequestQueue, now: u64, batches: &mut Vec<Batch>| loop {
            let next = (0..queue.models())
                .filter_map(|m| {
                    queue.front(m).map(|r| (r.arrival.saturating_add(policy.max_wait_cycles), m))
                })
                .min();
            match next {
                Some((deadline, model)) if deadline < now || now == u64::MAX => {
                    let members = queue.pop_batch(model, policy.max_batch);
                    batches.push(Scheduler::sealed(batches.len(), model, members, deadline));
                }
                _ => return,
            }
        };
        let mut last_arrival = 0u64;
        for r in requests {
            assert!(r.arrival >= last_arrival, "arrival stream must be sorted");
            last_arrival = r.arrival;
            close_timed_out(&mut queue, r.arrival, &mut batches);
            queue.push(*r);
            let lane = r.model;
            if queue.pending(lane) == policy.max_batch {
                let members = queue.pop_batch(lane, policy.max_batch);
                batches.push(Scheduler::sealed(batches.len(), lane, members, r.arrival));
            }
        }
        close_timed_out(&mut queue, u64::MAX, &mut batches);
        batches
    }

    #[test]
    fn heap_path_is_byte_identical_to_scan_reference() {
        for seed in 0..20u64 {
            let models = 1 + (seed as usize % 4);
            let reqs = WorkloadSpec::uniform(seed, 400, 700.0, models).generate();
            for (max_batch, max_wait) in [(1, 0), (3, 500), (8, 5_000), (4, u64::MAX)] {
                let s = Scheduler::new(FixedPolicy { max_batch, max_wait_cycles: max_wait });
                assert_eq!(
                    s.form_batches(&reqs, models),
                    form_batches_reference(&s, &reqs, models),
                    "seed {seed}, max_batch {max_batch}, max_wait {max_wait}"
                );
            }
        }
    }

    /// A retry/timeout storm re-arms the same lane's front thousands of
    /// times; lazy invalidation alone would let the wheel grow
    /// O(events). Compaction must pin it O(live) — bounded by a small
    /// constant times the model count — without changing what
    /// `peek_live` reports.
    #[test]
    fn deadline_heap_compacts_under_rearm_churn() {
        let models = 3;
        let mut queue = RequestQueue::new(models);
        let mut heap = DeadlineHeap::new();
        for m in 0..models {
            queue.push(req(m as u64, m, 10));
        }
        for round in 0..10_000u64 {
            let m = (round % models as u64) as usize;
            // Retire the lane's current front and replace it: each
            // replacement arms a fresh entry while the retired front's
            // entry goes stale only lazily — exactly the churn a retry
            // storm produces.
            queue.pop_batch(m, 1);
            let next = req(models as u64 + round, m, 10 + round);
            queue.push(next);
            heap.arm(m, &next, 100, &queue);
        }
        assert!(
            heap.len() <= 64.max(4 * models),
            "wheel grew to {} entries across the storm; compaction must \
             keep it O(live)",
            heap.len()
        );
        // The storm must not have disturbed liveness: every lane's
        // current front is still discoverable in deadline order.
        let (_, model) = heap.peek_live(&queue).expect("live fronts remain");
        assert!(model < models);
    }

    #[test]
    fn size_closure() {
        let s = Scheduler::new(FixedPolicy { max_batch: 2, max_wait_cycles: 1_000_000 });
        let reqs: Vec<Request> = (0..5).map(|i| req(i, 0, i * 10)).collect();
        let batches = s.form_batches(&reqs, 1);
        assert_eq!(batches.len(), 3);
        assert_eq!(ids(&batches[0]), vec![0, 1]);
        assert_eq!(batches[0].ready, 10, "ready at the arrival that filled the batch");
        assert_eq!(ids(&batches[1]), vec![2, 3]);
        // The trailing singleton dispatches at its timeout.
        assert_eq!(ids(&batches[2]), vec![4]);
        assert_eq!(batches[2].ready, 40 + 1_000_000);
    }

    #[test]
    fn timeout_closure_bounds_waiting() {
        let s = Scheduler::new(FixedPolicy { max_batch: 8, max_wait_cycles: 100 });
        let reqs = vec![req(0, 0, 0), req(1, 0, 50), req(2, 0, 200), req(3, 0, 220)];
        let batches = s.form_batches(&reqs, 1);
        assert_eq!(batches.len(), 2);
        assert_eq!(ids(&batches[0]), vec![0, 1]);
        assert_eq!(batches[0].ready, 100, "oldest member waited exactly max_wait");
        assert_eq!(ids(&batches[1]), vec![2, 3]);
        assert_eq!(batches[1].ready, 300);
    }

    /// Pins the `deadline < now` boundary: an arrival *exactly at* the
    /// open batch's deadline joins it; one cycle later it does not.
    #[test]
    fn arrival_exactly_at_deadline_joins_the_batch() {
        let s = Scheduler::new(FixedPolicy { max_batch: 8, max_wait_cycles: 100 });
        // Second request lands exactly at 0 + 100.
        let at = s.form_batches(&[req(0, 0, 0), req(1, 0, 100)], 1);
        assert_eq!(at.len(), 1, "deadline == now must not close the batch early");
        assert_eq!(ids(&at[0]), vec![0, 1]);
        assert_eq!(at[0].ready, 100, "joined batch still seals at the deadline");

        // One cycle past the deadline: the batch has already closed.
        let past = s.form_batches(&[req(0, 0, 0), req(1, 0, 101)], 1);
        assert_eq!(past.len(), 2, "deadline < now must close the batch");
        assert_eq!(ids(&past[0]), vec![0]);
        assert_eq!(past[0].ready, 100);
        assert_eq!(ids(&past[1]), vec![1]);
    }

    /// A cross-lane arrival strictly after another lane's deadline
    /// seals that lane's batch first, keeping batch ids chronological.
    #[test]
    fn cross_lane_timeouts_fire_in_deadline_order() {
        let s = Scheduler::new(FixedPolicy { max_batch: 8, max_wait_cycles: 10 });
        let reqs = vec![req(0, 0, 0), req(1, 1, 5), req(2, 2, 100)];
        let batches = s.form_batches(&reqs, 3);
        assert_eq!(batches.len(), 3);
        assert_eq!((batches[0].model, batches[0].ready), (0, 10));
        assert_eq!((batches[1].model, batches[1].ready), (1, 15));
        assert_eq!((batches[2].model, batches[2].ready), (2, 110));
    }

    #[test]
    fn batches_never_mix_models_and_lose_nothing() {
        let s = Scheduler::new(FixedPolicy { max_batch: 3, max_wait_cycles: 500 });
        let reqs: Vec<Request> = (0..40).map(|i| req(i, (i % 3) as usize, i * 37)).collect();
        let batches = s.form_batches(&reqs, 3);
        let mut seen: Vec<u64> = Vec::new();
        for b in &batches {
            assert!(!b.requests.is_empty());
            assert!(b.requests.len() <= 3);
            for r in &b.requests {
                assert_eq!(r.model, b.model, "mixed-model batch");
                assert!(b.ready <= r.arrival + 500, "request waited past the bound");
                seen.push(r.id);
            }
            let first = b.requests[0];
            assert!(b.ready >= first.arrival);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..40).collect::<Vec<_>>(), "dropped or duplicated requests");
    }

    #[test]
    fn fifo_within_and_across_batches_per_model() {
        let s = Scheduler::new(FixedPolicy { max_batch: 4, max_wait_cycles: 100 });
        let reqs: Vec<Request> = (0..30).map(|i| req(i, (i % 2) as usize, i * 9)).collect();
        let batches = s.form_batches(&reqs, 2);
        for model in 0..2 {
            let order: Vec<u64> =
                batches.iter().filter(|b| b.model == model).flat_map(ids).collect();
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(order, sorted, "model {model} not FIFO");
        }
    }

    #[test]
    fn bounded_formation_tail_drops_and_reopens() {
        let s = Scheduler::new(FixedPolicy { max_batch: 4, max_wait_cycles: 1_000 });
        // Five rapid arrivals against a lane capacity of 2: the first
        // two queue, the next three drop, until the size/timeout
        // closure drains the lane.
        let reqs: Vec<Request> = (0..5).map(|i| req(i, 0, i)).collect();
        let Formation { batches, dropped, .. } = s.form_batches_bounded(&reqs, 1, Some(2));
        let dropped_ids: Vec<u64> = dropped.iter().map(|r| r.id).collect();
        assert_eq!(dropped_ids, vec![2, 3, 4], "tail drop must refuse the newest arrivals");
        assert_eq!(batches.len(), 1);
        assert_eq!(ids(&batches[0]), vec![0, 1]);
        // Admitted + dropped partition the stream.
        let admitted: usize = batches.iter().map(|b| b.requests.len()).sum();
        assert_eq!(admitted + dropped.len(), reqs.len());
    }

    #[test]
    fn unbounded_capacity_matches_plain_formation() {
        let reqs = WorkloadSpec::uniform(13, 200, 300.0, 2).generate();
        let s = Scheduler::new(FixedPolicy { max_batch: 4, max_wait_cycles: 2_000 });
        let bounded = s.form_batches_bounded(&reqs, 2, Some(usize::MAX));
        assert!(bounded.dropped.is_empty());
        assert_eq!(bounded.batches, s.form_batches(&reqs, 2));
    }

    #[test]
    fn placement_is_earliest_free_worker() {
        let s = Scheduler::new(FixedPolicy::default());
        let batches: Vec<Batch> = (0..4)
            .map(|i| Batch { id: i, model: 0, requests: vec![req(i as u64, 0, 0)], ready: 0 })
            .collect();
        let placements = s.place(&batches, &[100, 100, 10, 10], 2);
        // Batches 0 and 1 occupy both workers; batch 2 waits for the
        // first free worker (worker 0 at cycle 100 — ties go low).
        assert_eq!(placements[0].worker, 0);
        assert_eq!(placements[1].worker, 1);
        assert_eq!(placements[2].start, 100);
        assert_eq!(placements[3].start, 100);
        assert_eq!(placements[2].completion, 110);
        // Lanes never overlap.
        for w in 0..2 {
            let mut spans: Vec<(u64, u64)> = placements
                .iter()
                .filter(|p| p.worker == w)
                .map(|p| (p.start, p.completion))
                .collect();
            spans.sort_unstable();
            for pair in spans.windows(2) {
                assert!(pair[0].1 <= pair[1].0, "worker {w} overlapped");
            }
        }
    }

    #[test]
    fn place_on_lanes_uses_per_lane_service_times() {
        let s = Scheduler::default();
        let batches: Vec<Batch> = (0..2)
            .map(|i| Batch { id: i, model: 0, requests: vec![req(i as u64, 0, 0)], ready: 0 })
            .collect();
        // Lane 0 is 10x slower: dispatch stays earliest-free (batch 0
        // -> lane 0, batch 1 -> lane 1) but the completions reflect
        // each lane's own speed.
        let svc = |_batch: usize, lane: usize| if lane == 0 { 1_000 } else { 100 };
        let p = s.place_on_lanes(&batches, svc, 2);
        assert_eq!((p[0].worker, p[0].completion), (0, 1_000));
        assert_eq!((p[1].worker, p[1].completion), (1, 100));
    }

    #[test]
    fn estimator_predicts_mean_per_request_scaled_by_batch_size() {
        let mut e = ServiceEstimator::new();
        assert!(e.is_empty());
        assert_eq!(e.predict(ArchKind::S2taAw, 0, 4), None, "no evidence, no estimate");
        e.record(ArchKind::S2taAw, 0, 2, 2_000);
        e.record(ArchKind::S2taAw, 0, 4, 4_600);
        // Mean per request = 6600 / 6 = 1100.
        assert_eq!(e.predict(ArchKind::S2taAw, 0, 3), Some(3_300));
        assert_eq!(e.predict(ArchKind::S2taAw, 1, 3), None, "models do not share estimates");
        assert_eq!(e.predict(ArchKind::SaZvcg, 0, 3), None, "archs do not share estimates");
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn estimator_keys_stages_apart_from_whole_models() {
        let mut e = ServiceEstimator::new();
        e.record(ArchKind::S2taAw, 0, 2, 2_000);
        e.record_stage(ArchKind::S2taAw, 0, &(0..3), 2, 400);
        e.record_stage(ArchKind::S2taAw, 0, &(3..5), 2, 1_600);
        assert_eq!(e.len(), 3, "whole-model and stage scopes are distinct keys");
        assert_eq!(e.predict(ArchKind::S2taAw, 0, 1), Some(1_000));
        assert_eq!(e.predict_stage(ArchKind::S2taAw, 0, &(0..3), 1), Some(200));
        assert_eq!(e.predict_stage(ArchKind::S2taAw, 0, &(3..5), 4), Some(3_200));
        assert_eq!(
            e.predict_stage(ArchKind::S2taAw, 0, &(0..5), 1),
            None,
            "an unobserved range has no estimate, even if sub-ranges do"
        );
        assert_eq!(e.predict_stage(ArchKind::SaZvcg, 0, &(0..3), 1), None);
    }

    #[test]
    fn affinity_lane_reduces_to_earliest_free_on_equal_predictions() {
        // Exhaustive tie-break check over a few free/ready shapes: with
        // lane-independent predictions, affinity must pick exactly the
        // earliest-free lane.
        for free_at in [vec![0, 0, 0], vec![10, 5, 20], vec![7, 7, 3], vec![100, 2, 2]] {
            for ready in [0u64, 4, 50, 1_000] {
                for svc in [0u64, 123] {
                    let pred = vec![svc; free_at.len()];
                    assert_eq!(
                        affinity_lane(&free_at, ready, &pred),
                        earliest_free_lane(&free_at),
                        "free {free_at:?} ready {ready} svc {svc}"
                    );
                }
            }
        }
    }

    #[test]
    fn affinity_lane_prefers_the_faster_lane_even_when_busy() {
        // Lane 0 frees at 100 but is predicted 10x faster than lane 1
        // (free now): completion 100+50=150 vs 0+500=500.
        assert_eq!(affinity_lane(&[100, 0], 0, &[50, 500]), 0);
        // If the fast lane is backed up far enough, the slow lane wins.
        assert_eq!(affinity_lane(&[600, 0], 0, &[50, 500]), 1);
    }

    #[test]
    fn placement_respects_ready_times() {
        let s = Scheduler::new(FixedPolicy::default());
        let batches: Vec<Batch> = (0..3)
            .map(|i| Batch {
                id: i,
                model: 0,
                requests: vec![req(i as u64, 0, 0)],
                ready: 1000 * i as u64,
            })
            .collect();
        let placements = s.place(&batches, &[10, 10, 10], 4);
        for (p, b) in placements.iter().zip(&batches) {
            assert!(p.start >= b.ready);
        }
    }
}
