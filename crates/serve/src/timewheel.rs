//! A hierarchical timer wheel: the event engine's priority queue for
//! simulated timestamps, scaling to millions of pending events.
//!
//! [`TimerWheel`] replaces `BinaryHeap<Reverse<(u64, K)>>` in the
//! serving engine with the classic calendar-queue structure (Varghese
//! & Lauck, SOSP'87): `LEVELS` wheels of 64 slots each, level `l`
//! covering spans of `64^l` cycles, with a `u64` occupancy bitmap per
//! level so finding the next non-empty slot is a couple of
//! trailing-zero counts instead of a heap rebalance. Insertions and
//! pops are O(1) amortized in the common near-future case, against
//! O(log n) for a binary heap over every pending completion.
//!
//! The wheel is **order-exact** with the heap it replaces: entries pop
//! in strictly ascending `(time, key)` order, with `K: Ord` breaking
//! ties exactly as the tuple ordering did. Two details make that
//! exactness hold:
//!
//! * A slot drains through a small **due heap**, so same-time entries
//!   leave in key order even when they were inserted out of order.
//! * Insertions at or before the cursor (an adaptive policy arming a
//!   deadline in the past, or a zero-latency completion) bypass the
//!   wheel and go straight to the due heap, which keeps them ordered
//!   against the already-due entries instead of clamping them forward.
//!
//! The cursor only ever advances to the time of an entry actually
//! popped, so the wheel never "skips" simulated time on its own.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Bits per level: 64 slots.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Levels needed to cover the full `u64` timestamp range.
const LEVELS: usize = 11;

/// A hierarchical timer wheel over `(time, key)` entries, popping in
/// ascending `(time, key)` order — a drop-in, order-exact replacement
/// for `BinaryHeap<Reverse<(u64, K)>>` in the event engine.
#[derive(Debug, Clone)]
pub struct TimerWheel<K: Ord + Copy> {
    /// `slots[level][slot]`: pending entries, unordered within a slot.
    slots: Vec<Vec<Vec<(u64, K)>>>,
    /// Per-level occupancy bitmap: bit `s` set iff `slots[level][s]`
    /// is non-empty.
    occupied: [u64; LEVELS],
    /// Entries at or before `cursor`, ready to pop in `(time, key)`
    /// order.
    due: BinaryHeap<Reverse<(u64, K)>>,
    /// The wheel's notion of "now": every wheel entry is strictly
    /// after it, every due entry at or before it.
    cursor: u64,
    len: usize,
}

impl<K: Ord + Copy> Default for TimerWheel<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Copy> TimerWheel<K> {
    /// An empty wheel with its cursor at time zero.
    pub fn new() -> Self {
        Self {
            slots: vec![vec![Vec::new(); SLOTS]; LEVELS],
            occupied: [0; LEVELS],
            due: BinaryHeap::new(),
            cursor: 0,
            len: 0,
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `key` at `time`. Times at or before the latest popped
    /// time are allowed and pop next in exact `(time, key)` order.
    pub fn push(&mut self, time: u64, key: K) {
        self.len += 1;
        if time <= self.cursor {
            self.due.push(Reverse((time, key)));
        } else {
            let (level, slot) = self.locate(time);
            self.slots[level][slot].push((time, key));
            self.occupied[level] |= 1 << slot;
        }
    }

    /// The earliest pending `(time, key)`, without removing it.
    pub fn peek(&mut self) -> Option<(u64, K)> {
        self.make_due();
        self.due.peek().map(|Reverse(entry)| *entry)
    }

    /// Removes and returns the earliest pending `(time, key)`.
    pub fn pop(&mut self) -> Option<(u64, K)> {
        self.make_due();
        let Reverse(entry) = self.due.pop()?;
        self.len -= 1;
        Some(entry)
    }

    /// The earliest pending time, **without mutating the wheel**: the
    /// cheap probe behind the cluster barrier's fast path, where most
    /// shards have no event before the next arrival and must be
    /// skippable without cascading any slots.
    ///
    /// Exactness: every due entry is at or before the cursor and every
    /// wheel entry strictly after it, so a non-empty due heap already
    /// holds the global minimum. Otherwise the scan mirrors
    /// [`TimerWheel::make_due`] — the lowest level with an occupied
    /// slot ahead of the cursor holds the nearest times, and within
    /// that first slot the minimum entry time is the answer (at level
    /// 0 all entries in a slot share one time).
    pub fn peek_next_event_cycle(&self) -> Option<u64> {
        if let Some(Reverse((time, _))) = self.due.peek() {
            return Some(*time);
        }
        for level in 0..LEVELS {
            let pos = (self.cursor >> (SLOT_BITS * level as u32)) as usize & (SLOTS - 1);
            let ahead = self.occupied[level] & !((1u64 << pos) | ((1u64 << pos) - 1));
            if ahead != 0 {
                let slot = ahead.trailing_zeros() as usize;
                let min = self.slots[level][slot]
                    .iter()
                    .map(|&(time, _)| time)
                    .min()
                    .expect("occupancy bit set on an empty slot");
                return Some(min);
            }
        }
        None
    }

    /// All pending `(time, key)` entries in unspecified order — a
    /// diagnostics iterator for debug cross-checks (e.g. recomputing
    /// the engine's in-flight request counter).
    pub fn iter(&self) -> impl Iterator<Item = (u64, K)> + '_ {
        self.due
            .iter()
            .map(|Reverse(entry)| *entry)
            .chain(self.slots.iter().flatten().flatten().copied())
    }

    /// The wheel level and slot a strictly-future `time` hashes to:
    /// the lowest level whose span, anchored at the cursor, still
    /// contains it.
    fn locate(&self, time: u64) -> (usize, usize) {
        debug_assert!(time > self.cursor);
        for level in 0..LEVELS {
            let shift = SLOT_BITS * (level as u32 + 1);
            let same_window = shift >= u64::BITS || (time >> shift) == (self.cursor >> shift);
            if same_window {
                let slot = (time >> (SLOT_BITS * level as u32)) as usize & (SLOTS - 1);
                return (level, slot);
            }
        }
        unreachable!("LEVELS covers the full u64 range")
    }

    /// Ensures the global minimum entry (if any) sits in the due heap,
    /// advancing the cursor and cascading coarse slots as needed.
    fn make_due(&mut self) {
        while self.due.is_empty() {
            // Find the lowest level with an occupied slot strictly
            // after the cursor's own position; lower levels hold
            // strictly nearer times, so the first hit is the minimum.
            let mut found = None;
            for level in 0..LEVELS {
                let pos = (self.cursor >> (SLOT_BITS * level as u32)) as usize & (SLOTS - 1);
                // The cursor's own slot is always empty at every level
                // (drained on arrival), so only strictly-later slots
                // within the current window matter.
                let ahead = self.occupied[level] & !((1u64 << pos) | ((1u64 << pos) - 1));
                if ahead != 0 {
                    found = Some((level, ahead.trailing_zeros() as usize));
                    break;
                }
            }
            let Some((level, slot)) = found else {
                return; // wheel fully empty
            };
            let entries = std::mem::take(&mut self.slots[level][slot]);
            self.occupied[level] &= !(1u64 << slot);
            if level == 0 {
                // Exact-time slot: everything in it shares one time;
                // the due heap orders the keys.
                let base = self.cursor & !(SLOTS as u64 - 1);
                self.cursor = base + slot as u64;
                self.due.extend(entries.into_iter().map(Reverse));
            } else {
                // Coarse slot: advance the cursor to the slot's base
                // and cascade its entries into finer levels (an entry
                // landing exactly on the base becomes due).
                let span = SLOT_BITS * level as u32;
                // At the top level the window mask covers the whole
                // u64 range; the shift would overflow, so special-case
                // it to zero.
                let window = if span + SLOT_BITS >= u64::BITS {
                    0
                } else {
                    self.cursor & !((1u64 << (span + SLOT_BITS)) - 1)
                };
                self.cursor = window | ((slot as u64) << span);
                for (time, key) in entries {
                    if time <= self.cursor {
                        self.due.push(Reverse((time, key)));
                    } else {
                        let (l, s) = self.locate(time);
                        self.slots[l][s].push((time, key));
                        self.occupied[l] |= 1 << s;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// A cheap deterministic generator (the workload LCG's constants).
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            self.0 ^ (self.0 >> 32)
        }
    }

    /// Drains interleaved push/pop traffic through both queues and
    /// demands identical pop sequences.
    fn exact_match(seed: u64, ops: usize, spread: u64) {
        let mut wheel = TimerWheel::new();
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        let mut rng = Lcg(seed);
        let mut now = 0u64;
        for i in 0..ops {
            if !rng.next().is_multiple_of(3) || heap.is_empty() {
                // Push around "now": mostly future, sometimes at or
                // before now (stale deadlines).
                let t = now.saturating_add(rng.next() % spread).saturating_sub(spread / 8);
                wheel.push(t, i);
                heap.push(Reverse((t, i)));
            } else {
                let a = wheel.pop();
                let b = heap.pop().map(|Reverse(e)| e);
                assert_eq!(a, b, "pop #{i} diverged");
                if let Some((t, _)) = a {
                    now = now.max(t);
                }
            }
            assert_eq!(wheel.len(), heap.len());
            assert_eq!(wheel.peek(), heap.peek().map(|Reverse(e)| *e));
        }
        while let Some(Reverse(e)) = heap.pop() {
            assert_eq!(wheel.pop(), Some(e));
        }
        assert!(wheel.is_empty());
        assert_eq!(wheel.pop(), None);
        assert_eq!(wheel.peek(), None);
    }

    #[test]
    fn matches_binary_heap_near_future() {
        exact_match(1, 4_000, 200);
    }

    #[test]
    fn matches_binary_heap_far_future() {
        // Spreads past one level-0 window force cascades.
        exact_match(2, 2_000, 1 << 20);
    }

    #[test]
    fn matches_binary_heap_huge_spread() {
        // Multi-level cascades, including > 2^32 jumps.
        exact_match(3, 1_000, 1 << 40);
    }

    #[test]
    fn matches_binary_heap_top_level_spread() {
        // Times above bit 60 land in the top wheel level, where the
        // cascade's window mask covers the whole u64 range (regression:
        // the mask shift overflowed here).
        exact_match(4, 500, 1 << 62);
    }

    #[test]
    fn extreme_times_cascade_through_every_level() {
        let mut wheel = TimerWheel::new();
        wheel.push(u64::MAX, 0usize);
        wheel.push(1, 1);
        wheel.push(u64::MAX - 1, 2);
        wheel.push(1 << 63, 3);
        assert_eq!(wheel.pop(), Some((1, 1)));
        assert_eq!(wheel.pop(), Some((1 << 63, 3)));
        assert_eq!(wheel.pop(), Some((u64::MAX - 1, 2)));
        assert_eq!(wheel.pop(), Some((u64::MAX, 0)));
        assert!(wheel.is_empty());
    }

    #[test]
    fn same_time_entries_pop_in_key_order() {
        let mut wheel = TimerWheel::new();
        for key in [5usize, 1, 9, 3] {
            wheel.push(100, key);
        }
        // Interleave a pop with a late same-time insertion.
        assert_eq!(wheel.pop(), Some((100, 1)));
        wheel.push(100, 0);
        assert_eq!(wheel.pop(), Some((100, 0)));
        assert_eq!(wheel.pop(), Some((100, 3)));
        assert_eq!(wheel.pop(), Some((100, 5)));
        assert_eq!(wheel.pop(), Some((100, 9)));
        assert!(wheel.is_empty());
    }

    #[test]
    fn past_insertions_order_against_due_entries() {
        let mut wheel = TimerWheel::new();
        wheel.push(1_000, 1usize);
        assert_eq!(wheel.pop(), Some((1_000, 1)));
        // The cursor sits at 1_000 now; a stale deadline armed earlier
        // must still pop before a later one.
        wheel.push(500, 2);
        wheel.push(1_500, 3);
        wheel.push(900, 4);
        assert_eq!(wheel.pop(), Some((500, 2)));
        assert_eq!(wheel.pop(), Some((900, 4)));
        assert_eq!(wheel.pop(), Some((1_500, 3)));
    }

    #[test]
    fn tuple_keys_break_ties_lexicographically() {
        // The deadline heap's (model, front id) payload.
        let mut wheel: TimerWheel<(usize, u64)> = TimerWheel::new();
        wheel.push(70, (1, 9));
        wheel.push(70, (0, 12));
        wheel.push(70, (1, 2));
        wheel.push(60, (7, 7));
        assert_eq!(wheel.pop(), Some((60, (7, 7))));
        assert_eq!(wheel.pop(), Some((70, (0, 12))));
        assert_eq!(wheel.pop(), Some((70, (1, 2))));
        assert_eq!(wheel.pop(), Some((70, (1, 9))));
    }

    #[test]
    fn million_entry_drain_is_sorted() {
        let mut wheel = TimerWheel::new();
        let mut rng = Lcg(9);
        let n = 1_000_000usize;
        for key in 0..n {
            wheel.push(rng.next() % (1 << 34), key);
        }
        assert_eq!(wheel.len(), n);
        let mut last = (0u64, 0usize);
        let mut popped = 0usize;
        while let Some(e) = wheel.pop() {
            assert!(e >= last, "out of order: {e:?} after {last:?}");
            last = e;
            popped += 1;
        }
        assert_eq!(popped, n);
    }
}
