//! Open-loop workload generation: a deterministic stream of inference
//! requests.
//!
//! The generator is **open loop** (arrivals do not depend on service
//! progress, the standard serving-benchmark methodology) and fully
//! deterministic: a seeded 64-bit LCG drives exponential interarrival
//! gaps and the model mix, so a `(seed, spec)` pair always produces the
//! identical request stream — no wall clocks, no OS randomness.

use std::fmt;

/// One inference request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Unique, dense id in arrival order (`0..n`).
    pub id: u64,
    /// Index of the requested model in the fleet's model list.
    pub model: usize,
    /// Arrival time in accelerator cycles since stream start.
    pub arrival: u64,
    /// Seed for this request's activation inputs (each request is a
    /// distinct inference input; weights are shared per model).
    pub act_seed: u64,
}

/// A splittable deterministic random stream (64-bit LCG, high bits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Lcg {
    state: u64,
}

impl Lcg {
    pub(crate) fn new(seed: u64) -> Self {
        // Offset the seed so seed 0 does not start in a low-entropy
        // state.
        Self { state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15) }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        // Knuth's MMIX multiplier; the low bits of an LCG are weak, so
        // outputs fold the high half in.
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.state ^ (self.state >> 32)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Specification of an open-loop request stream.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Seed for the whole stream.
    pub seed: u64,
    /// Number of requests to generate.
    pub requests: usize,
    /// Mean interarrival gap in cycles (exponentially distributed, i.e.
    /// Poisson arrivals).
    pub mean_interarrival_cycles: f64,
    /// Relative traffic weight per model (must match the fleet's model
    /// list length; need not be normalized).
    pub mix: Vec<f64>,
}

impl WorkloadSpec {
    /// A uniform mix over `models` models.
    pub fn uniform(
        seed: u64,
        requests: usize,
        mean_interarrival_cycles: f64,
        models: usize,
    ) -> Self {
        Self { seed, requests, mean_interarrival_cycles, mix: vec![1.0; models] }
    }

    /// Generates the request stream (sorted by arrival, ids dense in
    /// arrival order).
    ///
    /// # Panics
    ///
    /// Panics if the mix is empty, has non-finite/negative weights or
    /// sums to zero, or if `mean_interarrival_cycles` is negative.
    pub fn generate(&self) -> Vec<Request> {
        assert!(!self.mix.is_empty(), "workload mix must name at least one model");
        assert!(
            self.mix.iter().all(|w| w.is_finite() && *w >= 0.0),
            "mix weights must be finite and non-negative"
        );
        let total: f64 = self.mix.iter().sum();
        assert!(total > 0.0, "mix weights must not all be zero");
        assert!(self.mean_interarrival_cycles >= 0.0, "mean interarrival must be non-negative");

        let mut rng = Lcg::new(self.seed);
        let mut now = 0u64;
        (0..self.requests as u64)
            .map(|id| {
                // Exponential gap: -mean * ln(1 - U). U < 1 so the log
                // argument is in (0, 1].
                let gap = -self.mean_interarrival_cycles * (1.0 - rng.next_f64()).ln();
                now = now.saturating_add(gap as u64);
                let mut pick = rng.next_f64() * total;
                let mut model = self.mix.len() - 1;
                for (i, w) in self.mix.iter().enumerate() {
                    if pick < *w {
                        model = i;
                        break;
                    }
                    pick -= w;
                }
                Request { id, model, arrival: now, act_seed: rng.next_u64() }
            })
            .collect()
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} requests over {} models, mean gap {:.0} cycles, seed {}",
            self.requests,
            self.mix.len(),
            self.mean_interarrival_cycles,
            self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::uniform(9, 500, 1000.0, 3);
        assert_eq!(spec.generate(), spec.generate());
        let other = WorkloadSpec::uniform(10, 500, 1000.0, 3);
        assert_ne!(spec.generate(), other.generate());
    }

    #[test]
    fn arrivals_are_sorted_with_dense_ids() {
        let reqs = WorkloadSpec::uniform(1, 300, 500.0, 2).generate();
        assert_eq!(reqs.len(), 300);
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert!(r.model < 2);
            if i > 0 {
                assert!(r.arrival >= reqs[i - 1].arrival, "arrivals must be non-decreasing");
            }
        }
    }

    #[test]
    fn mean_gap_tracks_spec() {
        let mean = 2_000.0;
        let reqs = WorkloadSpec::uniform(3, 4_000, mean, 1).generate();
        let span = reqs.last().expect("non-empty").arrival as f64;
        let measured = span / (reqs.len() - 1) as f64;
        assert!(
            (measured - mean).abs() < mean * 0.1,
            "measured mean gap {measured:.0} vs spec {mean:.0}"
        );
    }

    #[test]
    fn mix_weights_steer_traffic() {
        let spec = WorkloadSpec {
            seed: 5,
            requests: 4_000,
            mean_interarrival_cycles: 100.0,
            mix: vec![3.0, 1.0],
        };
        let reqs = spec.generate();
        let m0 = reqs.iter().filter(|r| r.model == 0).count() as f64 / reqs.len() as f64;
        assert!((m0 - 0.75).abs() < 0.05, "model 0 share {m0:.3}, expected ~0.75");
    }

    #[test]
    fn act_seeds_differ_between_requests() {
        let reqs = WorkloadSpec::uniform(2, 100, 100.0, 1).generate();
        let mut seeds: Vec<u64> = reqs.iter().map(|r| r.act_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), reqs.len(), "per-request input seeds must be distinct");
    }

    #[test]
    #[should_panic(expected = "mix weights")]
    fn zero_mix_rejected() {
        WorkloadSpec { seed: 0, requests: 1, mean_interarrival_cycles: 1.0, mix: vec![0.0] }
            .generate();
    }
}
