//! Workload generation: deterministic streams of inference requests in
//! open-loop and closed-loop client modes.
//!
//! * **Open loop** ([`WorkloadSpec`]) — arrivals do not depend on
//!   service progress (the standard serving-benchmark methodology): a
//!   seeded 64-bit LCG drives exponential interarrival gaps and the
//!   model mix, so a `(seed, spec)` pair always produces the identical
//!   request stream — no wall clocks, no OS randomness.
//! * **Closed loop** ([`ClosedLoopSpec`] / [`ClosedLoopClient`]) — each
//!   of C concurrent clients issues its next request only after its
//!   previous one completes (plus an exponential think gap). Arrivals
//!   are therefore a fixed point of the placement: the serving engine
//!   iterates them per-request in simulated time, and the stream stays
//!   deterministic for a fixed `(seed, policy, workers)` triple.

use std::fmt;

/// One inference request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Unique, dense id in arrival order (`0..n`).
    pub id: u64,
    /// Index of the requested model in the fleet's model list.
    pub model: usize,
    /// Arrival time in accelerator cycles since stream start.
    pub arrival: u64,
    /// Seed for this request's activation inputs (each request is a
    /// distinct inference input; weights are shared per model).
    pub act_seed: u64,
}

/// A splittable deterministic random stream (64-bit LCG, high bits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Lcg {
    state: u64,
}

impl Lcg {
    pub(crate) fn new(seed: u64) -> Self {
        // Offset the seed so seed 0 does not start in a low-entropy
        // state.
        Self { state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15) }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        // Knuth's MMIX multiplier; the low bits of an LCG are weak, so
        // outputs fold the high half in.
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.state ^ (self.state >> 32)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Validated traffic mix shared by the open- and closed-loop
/// generators: relative weights plus the index of the last model with
/// positive weight, so floating-point exhaustion in sampling can never
/// route traffic to a zero-weight model.
#[derive(Debug, Clone, PartialEq)]
struct Mix {
    weights: Vec<f64>,
    total: f64,
    last_positive: usize,
}

impl Mix {
    fn validate(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "workload mix must name at least one model");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "mix weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "mix weights must not all be zero");
        let last_positive =
            weights.iter().rposition(|w| *w > 0.0).expect("total > 0 implies a positive weight");
        Self { weights: weights.to_vec(), total, last_positive }
    }

    /// Samples a model index proportional to the weights. The fallback
    /// when floating-point error exhausts `pick` past the end is the
    /// last *positive-weight* model, so zero-weight models never
    /// receive traffic.
    fn sample(&self, rng: &mut Lcg) -> usize {
        let mut pick = rng.next_f64() * self.total;
        for (i, w) in self.weights.iter().enumerate().take(self.last_positive) {
            if pick < *w {
                return i;
            }
            pick -= w;
        }
        self.last_positive
    }
}

/// Exponential interarrival sampler that carries the fractional part of
/// every gap forward instead of flooring it, so the realized mean gap
/// tracks the spec even when the mean is well below one cycle.
#[derive(Debug, Clone, PartialEq)]
struct GapSampler {
    mean: f64,
    carry: f64,
}

impl GapSampler {
    fn new(mean: f64) -> Self {
        assert!(mean >= 0.0 && mean.is_finite(), "mean gap must be finite and non-negative");
        Self { mean, carry: 0.0 }
    }

    /// The next whole-cycle gap. Exponentially distributed with the
    /// configured mean; the sub-cycle remainder accumulates into the
    /// next draw rather than being truncated away.
    fn next_gap(&mut self, rng: &mut Lcg) -> u64 {
        // Exponential gap: -mean * ln(1 - U). U < 1 so the log argument
        // is in (0, 1].
        let gap = -self.mean * (1.0 - rng.next_f64()).ln() + self.carry;
        let whole = gap.floor();
        self.carry = gap - whole;
        whole as u64
    }
}

/// Specification of an open-loop request stream.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Seed for the whole stream.
    pub seed: u64,
    /// Number of requests to generate.
    pub requests: usize,
    /// Mean interarrival gap in cycles (exponentially distributed, i.e.
    /// Poisson arrivals).
    pub mean_interarrival_cycles: f64,
    /// Relative traffic weight per model (must match the fleet's model
    /// list length; need not be normalized).
    pub mix: Vec<f64>,
}

impl WorkloadSpec {
    /// A uniform mix over `models` models.
    pub fn uniform(
        seed: u64,
        requests: usize,
        mean_interarrival_cycles: f64,
        models: usize,
    ) -> Self {
        Self { seed, requests, mean_interarrival_cycles, mix: vec![1.0; models] }
    }

    /// An explicitly weighted mix (e.g. `[2.0, 1.0]`: the first model
    /// gets two thirds of the traffic). Weights need not be
    /// normalized; validation happens in [`WorkloadSpec::generate`].
    pub fn mixed(seed: u64, requests: usize, mean_interarrival_cycles: f64, mix: Vec<f64>) -> Self {
        Self { seed, requests, mean_interarrival_cycles, mix }
    }

    /// Generates the request stream (sorted by arrival, ids dense in
    /// arrival order).
    ///
    /// # Panics
    ///
    /// Panics if the mix is empty, has non-finite/negative weights or
    /// sums to zero, or if `mean_interarrival_cycles` is negative.
    pub fn generate(&self) -> Vec<Request> {
        let mix = Mix::validate(&self.mix);
        let mut gaps = GapSampler::new(self.mean_interarrival_cycles);
        let mut rng = Lcg::new(self.seed);
        let mut now = 0u64;
        (0..self.requests as u64)
            .map(|id| {
                now = now.saturating_add(gaps.next_gap(&mut rng));
                let model = mix.sample(&mut rng);
                Request { id, model, arrival: now, act_seed: rng.next_u64() }
            })
            .collect()
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} requests over {} models, mean gap {:.0} cycles, seed {}",
            self.requests,
            self.mix.len(),
            self.mean_interarrival_cycles,
            self.seed
        )
    }
}

/// One constant-rate span of a diurnal (piecewise-rate) arrival
/// profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateSegment {
    /// Segment length in cycles.
    pub duration_cycles: u64,
    /// Mean interarrival gap during the segment (exponentially
    /// distributed, i.e. Poisson within the segment).
    pub mean_interarrival_cycles: f64,
}

/// Specification of an open-loop stream whose arrival rate follows a
/// repeating piecewise-constant profile — the diurnal load curve of a
/// production service: off-peak valleys, ramp hours, a peak plateau,
/// and back, cycling for as long as the stream runs.
///
/// Each request's interarrival gap is drawn exponentially with the
/// mean of the segment the *current* time falls in, with the same
/// sub-cycle carry accumulator the stationary generator uses, so
/// realized rates track the profile segment by segment.
///
/// `act_seed_pool` optionally bounds the distinct activation seeds:
/// with a pool of `k`, every request draws its input from `k` fixed
/// seeds instead of a fresh one, which is what keeps a multi-million
/// request run inside a bounded [`s2ta_core::ActProfileCache`] —
/// production traffic re-sees the same inputs, it does not invent a
/// new tensor per request.
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalSpec {
    /// Seed for the whole stream.
    pub seed: u64,
    /// Number of requests to generate.
    pub requests: usize,
    /// The repeating rate profile, in order; the period is the sum of
    /// the segment durations.
    pub segments: Vec<RateSegment>,
    /// Relative traffic weight per model (need not be normalized).
    pub mix: Vec<f64>,
    /// Distinct activation seeds to draw from (`0` = a fresh seed per
    /// request, like [`WorkloadSpec`]).
    pub act_seed_pool: usize,
}

impl DiurnalSpec {
    /// The profile period: one full cycle through the segments.
    pub fn period_cycles(&self) -> u64 {
        self.segments.iter().map(|s| s.duration_cycles).sum()
    }

    /// The mean interarrival gap in force at cycle `now`.
    fn mean_at(&self, now: u64, period: u64) -> f64 {
        let mut offset = now % period;
        for s in &self.segments {
            if offset < s.duration_cycles {
                return s.mean_interarrival_cycles;
            }
            offset -= s.duration_cycles;
        }
        unreachable!("offset < period = sum of durations")
    }

    /// Generates the request stream (sorted by arrival, ids dense in
    /// arrival order).
    ///
    /// # Panics
    ///
    /// Panics if there are no segments, a segment has zero duration or
    /// a non-finite/negative mean, or the mix is invalid.
    pub fn generate(&self) -> Vec<Request> {
        assert!(!self.segments.is_empty(), "a diurnal profile needs at least one segment");
        for s in &self.segments {
            assert!(s.duration_cycles > 0, "segment durations must be positive");
            assert!(
                s.mean_interarrival_cycles.is_finite() && s.mean_interarrival_cycles >= 0.0,
                "segment mean gaps must be finite and non-negative"
            );
        }
        let mix = Mix::validate(&self.mix);
        let period = self.period_cycles();
        // The bounded activation-seed pool, derived from a split
        // stream so pool membership does not perturb arrival draws.
        let pool: Vec<u64> = {
            let mut sub = Lcg::new(self.seed ^ 0x517c_c1b7_2722_0a95);
            (0..self.act_seed_pool).map(|_| sub.next_u64()).collect()
        };
        let mut rng = Lcg::new(self.seed);
        let mut now = 0u64;
        let mut carry = 0.0f64;
        (0..self.requests as u64)
            .map(|id| {
                let mean = self.mean_at(now, period);
                let gap = -mean * (1.0 - rng.next_f64()).ln() + carry;
                let whole = gap.floor();
                carry = gap - whole;
                now = now.saturating_add(whole as u64);
                let model = mix.sample(&mut rng);
                let draw = rng.next_u64();
                let act_seed =
                    if pool.is_empty() { draw } else { pool[(draw % pool.len() as u64) as usize] };
                Request { id, model, arrival: now, act_seed }
            })
            .collect()
    }
}

impl fmt::Display for DiurnalSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let gaps: Vec<String> =
            self.segments.iter().map(|s| format!("{:.0}", s.mean_interarrival_cycles)).collect();
        write!(
            f,
            "{} requests over {} models, diurnal gaps [{}] over a {}-cycle period, seed {}",
            self.requests,
            self.mix.len(),
            gaps.join("/"),
            self.period_cycles(),
            self.seed
        )
    }
}

/// Specification of a closed-loop client population.
///
/// C concurrent clients each keep exactly one request outstanding:
/// after a request completes (or is dropped at admission), the client
/// thinks for an exponential gap and issues the next one. The offered
/// load therefore adapts to service capacity instead of piling up
/// unboundedly — the defining property of closed-loop benchmarking.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedLoopSpec {
    /// Seed for the whole population (each client derives its own
    /// stream from it).
    pub seed: u64,
    /// Number of concurrent clients.
    pub clients: usize,
    /// Total requests issued across all clients before the run drains.
    pub requests: usize,
    /// Mean think gap in cycles between a completion and the client's
    /// next issue (exponentially distributed).
    pub mean_think_cycles: f64,
    /// Relative traffic weight per model (need not be normalized).
    pub mix: Vec<f64>,
}

impl ClosedLoopSpec {
    /// A uniform mix over `models` models.
    pub fn uniform(
        seed: u64,
        clients: usize,
        requests: usize,
        mean_think_cycles: f64,
        models: usize,
    ) -> Self {
        Self { seed, clients, requests, mean_think_cycles, mix: vec![1.0; models] }
    }

    /// The client population, each with an independent deterministic
    /// stream derived from the spec seed.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no clients, an invalid mix, or a negative
    /// think time.
    pub fn spawn_clients(&self) -> Vec<ClosedLoopClient> {
        assert!(self.clients > 0, "a closed-loop population needs at least one client");
        let mix = Mix::validate(&self.mix);
        (0..self.clients as u64)
            .map(|c| ClosedLoopClient {
                // Splitmix-style spacing keeps sibling streams
                // decorrelated even for adjacent client indices.
                rng: Lcg::new(self.seed ^ c.wrapping_mul(0xa076_1d64_78bd_642f)),
                gaps: GapSampler::new(self.mean_think_cycles),
                mix: mix.clone(),
            })
            .collect()
    }
}

impl fmt::Display for ClosedLoopSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} closed-loop clients, {} requests over {} models, mean think {:.0} cycles, seed {}",
            self.clients,
            self.requests,
            self.mix.len(),
            self.mean_think_cycles,
            self.seed
        )
    }
}

/// One closed-loop client: a deterministic request source that the
/// serving engine advances each time the client's previous request
/// finishes.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedLoopClient {
    rng: Lcg,
    gaps: GapSampler,
    mix: Mix,
}

impl ClosedLoopClient {
    /// Issues the client's next request: called by the engine with the
    /// completion (or drop) time of the previous request and the dense
    /// id to assign. The request arrives one think gap later.
    pub fn issue(&mut self, previous_done: u64, id: u64) -> Request {
        let arrival = previous_done.saturating_add(self.gaps.next_gap(&mut self.rng));
        let model = self.mix.sample(&mut self.rng);
        Request { id, model, arrival, act_seed: self.rng.next_u64() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::uniform(9, 500, 1000.0, 3);
        assert_eq!(spec.generate(), spec.generate());
        let other = WorkloadSpec::uniform(10, 500, 1000.0, 3);
        assert_ne!(spec.generate(), other.generate());
    }

    #[test]
    fn arrivals_are_sorted_with_dense_ids() {
        let reqs = WorkloadSpec::uniform(1, 300, 500.0, 2).generate();
        assert_eq!(reqs.len(), 300);
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert!(r.model < 2);
            if i > 0 {
                assert!(r.arrival >= reqs[i - 1].arrival, "arrivals must be non-decreasing");
            }
        }
    }

    #[test]
    fn mean_gap_tracks_spec() {
        let mean = 2_000.0;
        let reqs = WorkloadSpec::uniform(3, 4_000, mean, 1).generate();
        let span = reqs.last().expect("non-empty").arrival as f64;
        let measured = span / (reqs.len() - 1) as f64;
        assert!(
            (measured - mean).abs() < mean * 0.1,
            "measured mean gap {measured:.0} vs spec {mean:.0}"
        );
    }

    /// Regression: `gap as u64` used to floor every draw, which biased
    /// the realized mean below spec and collapsed sub-cycle means to
    /// all-zero gaps. The carry accumulator must keep the realized mean
    /// on spec even when the mean is far below one cycle.
    #[test]
    fn sub_cycle_mean_gap_is_not_truncated_to_zero() {
        for mean in [0.25, 0.7, 1.3] {
            let n = 20_000;
            let reqs = WorkloadSpec::uniform(17, n, mean, 1).generate();
            let span = reqs.last().expect("non-empty").arrival as f64;
            let measured = span / (n - 1) as f64;
            assert!(
                (measured - mean).abs() < mean * 0.05,
                "mean {mean}: measured {measured:.4} drifted off spec"
            );
            assert!(span > 0.0, "mean {mean}: all arrivals collapsed to cycle 0");
        }
    }

    /// Regression: flooring each gap independently lost up to one cycle
    /// per request, so large streams drifted several percent below the
    /// spec mean. With the carry the loss is bounded by one cycle total.
    #[test]
    fn realized_mean_has_no_systematic_floor_bias() {
        let mean = 3.5;
        let n = 50_000;
        let reqs = WorkloadSpec::uniform(23, n, mean, 1).generate();
        let span = reqs.last().expect("non-empty").arrival as f64;
        let measured = span / (n - 1) as f64;
        // An exponential mean estimate over n samples has stderr
        // mean/sqrt(n) ~ 0.016 here; the old floor bias was ~0.5 — two
        // orders of magnitude larger than the tolerance below.
        assert!(
            (measured - mean).abs() < mean * 0.02,
            "measured {measured:.4} vs spec {mean} (floor bias?)"
        );
    }

    #[test]
    fn mix_weights_steer_traffic() {
        let spec = WorkloadSpec::mixed(5, 4_000, 100.0, vec![3.0, 1.0]);
        let reqs = spec.generate();
        let m0 = reqs.iter().filter(|r| r.model == 0).count() as f64 / reqs.len() as f64;
        assert!((m0 - 0.75).abs() < 0.05, "model 0 share {m0:.3}, expected ~0.75");
    }

    /// Regression: the sampling fallback used to be `mix.len() - 1`,
    /// which could route a request to a *zero-weight* trailing model
    /// when floating-point error exhausted `pick` past the last
    /// positive weight.
    #[test]
    fn zero_weight_models_never_receive_traffic() {
        let spec = WorkloadSpec {
            seed: 99,
            requests: 50_000,
            mean_interarrival_cycles: 10.0,
            mix: vec![0.0, 1.0, 0.3, 0.0, 0.0],
        };
        for r in spec.generate() {
            assert!(
                spec.mix[r.model] > 0.0,
                "request {} routed to zero-weight model {}",
                r.id,
                r.model
            );
        }
        // Same property on the closed-loop sampler.
        let spec = ClosedLoopSpec {
            seed: 99,
            clients: 4,
            requests: 0,
            mean_think_cycles: 10.0,
            mix: vec![1.0, 0.0],
        };
        for mut client in spec.spawn_clients() {
            for i in 0..5_000 {
                let r = client.issue(i * 10, i);
                assert!(spec.mix[r.model] > 0.0, "closed-loop routed to zero-weight model");
            }
        }
    }

    #[test]
    fn act_seeds_differ_between_requests() {
        let reqs = WorkloadSpec::uniform(2, 100, 100.0, 1).generate();
        let mut seeds: Vec<u64> = reqs.iter().map(|r| r.act_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), reqs.len(), "per-request input seeds must be distinct");
    }

    #[test]
    #[should_panic(expected = "mix weights")]
    fn zero_mix_rejected() {
        WorkloadSpec { seed: 0, requests: 1, mean_interarrival_cycles: 1.0, mix: vec![0.0] }
            .generate();
    }

    #[test]
    fn closed_loop_clients_are_deterministic_and_decorrelated() {
        let spec = ClosedLoopSpec::uniform(7, 3, 100, 500.0, 2);
        let mut a = spec.spawn_clients();
        let mut b = spec.spawn_clients();
        for (ca, cb) in a.iter_mut().zip(b.iter_mut()) {
            for i in 0..50 {
                assert_eq!(ca.issue(i * 100, i), cb.issue(i * 100, i));
            }
        }
        // Distinct clients must not mirror each other's streams.
        let mut c = spec.spawn_clients();
        let (first, second) = (c[0].issue(0, 0), c[1].issue(0, 0));
        assert_ne!(first.act_seed, second.act_seed, "sibling clients share a stream");
    }

    /// A two-segment day: peak (short gaps) then valley (long gaps).
    fn diurnal(seed: u64, requests: usize, pool: usize) -> DiurnalSpec {
        DiurnalSpec {
            seed,
            requests,
            segments: vec![
                RateSegment { duration_cycles: 50_000, mean_interarrival_cycles: 50.0 },
                RateSegment { duration_cycles: 50_000, mean_interarrival_cycles: 1_000.0 },
            ],
            mix: vec![1.0, 1.0],
            act_seed_pool: pool,
        }
    }

    #[test]
    fn diurnal_generation_is_deterministic_sorted_and_dense() {
        let spec = diurnal(21, 2_000, 64);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a, b, "same spec must yield byte-identical streams");
        for (i, r) in a.iter().enumerate() {
            assert_eq!(r.id, i as u64, "ids must be dense in arrival order");
            if i > 0 {
                assert!(r.arrival >= a[i - 1].arrival, "arrivals must be sorted");
            }
            assert!(r.model < 2);
        }
    }

    #[test]
    fn diurnal_peak_segments_receive_more_arrivals() {
        let spec = diurnal(22, 20_000, 0);
        let period = spec.period_cycles();
        let reqs = spec.generate();
        let (mut peak, mut valley) = (0usize, 0usize);
        for r in &reqs {
            if r.arrival % period < 50_000 {
                peak += 1;
            } else {
                valley += 1;
            }
        }
        // 20x rate ratio over equal spans: the peak half of each period
        // must dominate decisively (~95% of traffic in expectation).
        assert!(
            peak > valley * 5,
            "peak half got {peak} arrivals vs valley {valley}; profile is not steering rate"
        );
    }

    #[test]
    fn diurnal_act_seed_pool_bounds_distinct_inputs() {
        let pool = 16usize;
        let reqs = diurnal(23, 5_000, pool).generate();
        let mut seeds: Vec<u64> = reqs.iter().map(|r| r.act_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert!(seeds.len() <= pool, "{} distinct seeds exceed the pool of {pool}", seeds.len());
        // 5_000 draws over 16 slots: every slot should be exercised.
        assert_eq!(seeds.len(), pool, "a busy stream should touch the whole pool");
        // Pool of zero behaves like the stationary generator: fresh
        // seeds per request.
        let fresh = diurnal(23, 500, 0).generate();
        let mut fresh_seeds: Vec<u64> = fresh.iter().map(|r| r.act_seed).collect();
        fresh_seeds.sort_unstable();
        fresh_seeds.dedup();
        assert_eq!(fresh_seeds.len(), 500);
    }

    #[test]
    fn diurnal_pool_membership_does_not_perturb_arrivals() {
        // The pool is drawn from a split seed stream, so changing its
        // size must leave arrival times and model routing untouched.
        let a = diurnal(24, 1_000, 8).generate();
        let b = diurnal(24, 1_000, 512).generate();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.id, x.model, x.arrival), (y.id, y.model, y.arrival));
        }
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn diurnal_empty_profile_rejected() {
        DiurnalSpec { seed: 0, requests: 1, segments: vec![], mix: vec![1.0], act_seed_pool: 0 }
            .generate();
    }

    #[test]
    #[should_panic(expected = "durations must be positive")]
    fn diurnal_zero_duration_segment_rejected() {
        DiurnalSpec {
            seed: 0,
            requests: 1,
            segments: vec![RateSegment { duration_cycles: 0, mean_interarrival_cycles: 1.0 }],
            mix: vec![1.0],
            act_seed_pool: 0,
        }
        .generate();
    }

    #[test]
    fn closed_loop_think_time_tracks_spec() {
        let mean = 700.0;
        let spec = ClosedLoopSpec::uniform(11, 1, 0, mean, 1);
        let mut client = spec.spawn_clients().remove(0);
        let n = 10_000u64;
        let mut total = 0u64;
        for i in 0..n {
            // Issue from a fixed completion time so the gap is exactly
            // the think time.
            total += client.issue(0, i).arrival;
        }
        let measured = total as f64 / n as f64;
        assert!(
            (measured - mean).abs() < mean * 0.05,
            "measured think {measured:.1} vs spec {mean:.1}"
        );
    }
}
