//! CNN workload definitions for the S2TA evaluation (paper Sec. 8).
//!
//! The paper evaluates AlexNet, VGG-16, MobileNetV1 and ResNet-50V1
//! (plus LeNet-5 and I-BERT in the accuracy study). This crate encodes
//! their layer tables as [`ModelSpec`]s, together with per-layer
//! sparsity profiles:
//!
//! * **Weight sparsity** — ~50% after 4/8 W-DBB pruning for all layers
//!   except the first (the paper excludes layer 1 from pruning,
//!   Table 3 note 2).
//! * **Activation sparsity** — a ReLU-induced ramp from nearly dense in
//!   early layers to ~80% zero in late layers, matching the paper's
//!   observation that "per-layer tuned activation DBB ranges from 8/8
//!   (dense) in early layers down to 2/8 towards the end" (Sec. 5.2).
//!
//! Real pre-trained tensors are not available offline, so layers
//! generate **synthetic operands** with the profiled sparsity from a
//! deterministic seed ([`LayerSpec::gen_weights`] /
//! [`LayerSpec::gen_acts`]); performance and energy depend only on the
//! sparsity statistics, which the profiles preserve (DESIGN.md Sec. 5).
//!
//! # Example
//!
//! ```
//! use s2ta_models::{alexnet, mobilenet_v1};
//!
//! let m = alexnet();
//! assert_eq!(m.conv_layers().count(), 5);
//! // MobileNet is dominated by point-wise layers.
//! assert!(mobilenet_v1().total_macs() < m.total_macs() * 2);
//! ```
#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod spec;
mod zoo;

pub use spec::{LayerSpec, ModelSpec, SparsityProfile};
pub use zoo::{
    alexnet, cifar10_convnet, deep_convnet, ibert_encoder_fc, lenet5, mobilenet_v1, resnet50_v1,
    vgg16,
};
