//! Layer and model specifications.

use rand::rngs::StdRng;
use rand::SeedableRng;
use s2ta_dbb::dap::{LayerNnz, MAX_DAP_STAGES};
use s2ta_tensor::sparsity::SparseSpec;
use s2ta_tensor::{GemmShape, LayerKind, Matrix};
use std::fmt;

/// One layer of a CNN workload, already lowered to its GEMM form.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSpec {
    /// Layer name (e.g. `"conv2"`).
    pub name: String,
    /// Layer kind (conv / depthwise / fully-connected).
    pub kind: LayerKind,
    /// The GEMM the layer lowers to (`M` = output channels, `K` =
    /// reduction, `N` = output pixels; depthwise layers are modelled as
    /// an `M = channels, K = R*S` GEMM with the same MAC count).
    pub gemm: GemmShape,
    /// Fraction of zero weights after pruning.
    pub weight_sparsity: f64,
    /// Fraction of zero input activations (ReLU-induced).
    pub act_sparsity: f64,
}

impl LayerSpec {
    /// Creates a layer spec.
    ///
    /// # Panics
    ///
    /// Panics if a sparsity is outside `[0, 1]`.
    pub fn new(
        name: impl Into<String>,
        kind: LayerKind,
        gemm: GemmShape,
        weight_sparsity: f64,
        act_sparsity: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&weight_sparsity), "weight sparsity out of range");
        assert!((0.0..=1.0).contains(&act_sparsity), "act sparsity out of range");
        Self { name: name.into(), kind, gemm, weight_sparsity, act_sparsity }
    }

    /// Total MAC operations of the layer.
    pub fn macs(&self) -> u64 {
        self.gemm.macs()
    }

    /// Generates the layer's synthetic weight matrix (`M x K`) with the
    /// profiled sparsity. Deterministic in `(layer, seed)`.
    pub fn gen_weights(&self, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed ^ self.name_hash() ^ 0x5745_4947);
        SparseSpec::random(self.weight_sparsity).matrix(self.gemm.m, self.gemm.k, &mut rng)
    }

    /// Generates the layer's synthetic input activation matrix (`K x N`)
    /// with the profiled sparsity. Deterministic in `(layer, seed)`.
    pub fn gen_acts(&self, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed ^ self.name_hash() ^ 0x4143_5453);
        SparseSpec::random(self.act_sparsity).matrix(self.gemm.k, self.gemm.n, &mut rng)
    }

    /// [`LayerSpec::gen_acts`] into recycled storage: bit-identical to
    /// `gen_acts(seed)` but backed by `buf` (a previous matrix's
    /// `into_data`), so a warm per-lane arena regenerates activations
    /// without allocating.
    pub fn gen_acts_into(&self, seed: u64, buf: Vec<i8>) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed ^ self.name_hash() ^ 0x4143_5453);
        SparseSpec::random(self.act_sparsity).matrix_into(self.gemm.k, self.gemm.n, &mut rng, buf)
    }

    fn name_hash(&self) -> u64 {
        // FNV-1a over the name: stable, dependency-free.
        self.name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
        })
    }

    /// The per-layer A-DBB density the paper's tuning would assign
    /// (Sec. 5.2): the expected non-zeros per BZ=8 block rounded up,
    /// clamped to the 5-stage DAP cap — above it the layer runs dense.
    /// The first (image-input) layer is dense by construction.
    pub fn suggested_adbb(&self) -> LayerNnz {
        let expected = 8.0 * (1.0 - self.act_sparsity);
        // DAP-aware fine-tuning tolerates pruning at the *expected*
        // block density (rounded), not the worst case — the paper's
        // per-layer tuned AlexNet averages 3.9/8.
        let nnz = (expected.round() as usize).max(1);
        if nnz > MAX_DAP_STAGES {
            LayerNnz::Dense
        } else {
            LayerNnz::Prune(nnz)
        }
    }

    /// Whether an output-stationary systolic accelerator is memory-bound
    /// on this layer (paper Sec. 8.3: FC and depthwise layers at batch 1).
    pub fn is_memory_bound(&self) -> bool {
        matches!(self.kind, LayerKind::FullyConnected | LayerKind::Depthwise)
    }
}

impl fmt::Display for LayerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {} (w {:.0}%, a {:.0}% zero)",
            self.name,
            self.kind,
            self.gemm,
            self.weight_sparsity * 100.0,
            self.act_sparsity * 100.0
        )
    }
}

/// A whole network: an ordered list of layers.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// Model name (e.g. `"AlexNet"`).
    pub name: &'static str,
    /// Layers in execution order.
    pub layers: Vec<LayerSpec>,
}

impl ModelSpec {
    /// Total MACs over all layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(LayerSpec::macs).sum()
    }

    /// Total MACs over convolution layers only (the paper's "Conv only"
    /// rows in Table 4).
    pub fn conv_macs(&self) -> u64 {
        self.conv_layers().map(LayerSpec::macs).sum()
    }

    /// Iterator over the convolution layers (excluding FC/depthwise).
    pub fn conv_layers(&self) -> impl Iterator<Item = &LayerSpec> {
        self.layers.iter().filter(|l| l.kind == LayerKind::Conv)
    }
}

impl fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} layers, {:.2} GMAC)",
            self.name,
            self.layers.len(),
            self.total_macs() as f64 / 1e9
        )
    }
}

/// The sparsity ramp used to profile a network's layers.
///
/// Mirrors the paper's qualitative description: the image-input layer is
/// nearly dense; ReLU sparsity grows with depth towards ~80%; pruned
/// weights sit at ~50% everywhere except the unpruned first layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsityProfile {
    /// Activation sparsity of the first layer's input (image).
    pub first_act: f64,
    /// Activation sparsity at depth fraction 0 (after the first ReLU).
    pub early_act: f64,
    /// Activation sparsity at depth fraction 1 (deepest layers).
    pub late_act: f64,
    /// Weight sparsity of the (unpruned) first layer.
    pub first_weight: f64,
    /// Weight sparsity of pruned layers (4/8 W-DBB -> ~50%).
    pub pruned_weight: f64,
}

impl Default for SparsityProfile {
    fn default() -> Self {
        Self {
            first_act: 0.05,
            early_act: 0.50,
            late_act: 0.80,
            first_weight: 0.10,
            pruned_weight: 0.52,
        }
    }
}

impl SparsityProfile {
    /// Sparsities `(weight, act)` for layer `idx` of `count`.
    pub fn layer(&self, idx: usize, count: usize) -> (f64, f64) {
        if idx == 0 {
            return (self.first_weight, self.first_act);
        }
        let frac = if count <= 2 { 1.0 } else { (idx - 1) as f64 / (count - 2).max(1) as f64 };
        let act = self.early_act + (self.late_act - self.early_act) * frac;
        (self.pruned_weight, act)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(ws: f64, asp: f64) -> LayerSpec {
        LayerSpec::new("t", LayerKind::Conv, GemmShape::new(8, 64, 16), ws, asp)
    }

    #[test]
    fn generation_is_deterministic_and_profiled() {
        let l = layer(0.5, 0.7);
        let w1 = l.gen_weights(9);
        let w2 = l.gen_weights(9);
        assert_eq!(w1, w2);
        assert!((w1.sparsity() - 0.5).abs() < 0.1);
        let a = l.gen_acts(9);
        assert!((a.sparsity() - 0.7).abs() < 0.1);
        // Different streams for weights vs acts.
        assert_ne!(w1.data()[..16], a.data()[..16]);
    }

    #[test]
    fn adbb_suggestion_follows_sparsity() {
        assert_eq!(layer(0.5, 0.05).suggested_adbb(), LayerNnz::Dense); // 7.6 -> dense
        assert_eq!(layer(0.5, 0.5).suggested_adbb(), LayerNnz::Prune(4));
        assert_eq!(layer(0.5, 0.75).suggested_adbb(), LayerNnz::Prune(2));
        assert_eq!(layer(0.5, 0.99).suggested_adbb(), LayerNnz::Prune(1));
    }

    #[test]
    fn profile_ramps_monotonically() {
        let p = SparsityProfile::default();
        let n = 10;
        let mut prev = 0.0;
        for i in 1..n {
            let (w, a) = p.layer(i, n);
            assert!((w - p.pruned_weight).abs() < 1e-12);
            assert!(a >= prev, "ramp must be non-decreasing");
            prev = a;
        }
        let (w0, a0) = p.layer(0, n);
        assert_eq!((w0, a0), (p.first_weight, p.first_act));
    }

    #[test]
    fn memory_bound_classification() {
        let fc =
            LayerSpec::new("fc", LayerKind::FullyConnected, GemmShape::new(10, 10, 1), 0.5, 0.5);
        assert!(fc.is_memory_bound());
        assert!(!layer(0.5, 0.5).is_memory_bound());
    }

    #[test]
    fn display_includes_shape() {
        let l = layer(0.5, 0.5);
        assert!(l.to_string().contains("8x64x16"));
    }
}
