//! The model zoo: layer tables of the paper's benchmark networks.

use crate::{LayerSpec, ModelSpec, SparsityProfile};
use s2ta_tensor::{ConvShape, GemmShape, LayerKind};

/// Helper: builds conv layer specs from `(name, shape)` pairs with a
/// sparsity profile applied in depth order, then appends extras.
fn build(
    name: &'static str,
    convs: Vec<(String, LayerKind, GemmShape)>,
    profile: SparsityProfile,
) -> ModelSpec {
    let count = convs.len();
    let layers = convs
        .into_iter()
        .enumerate()
        .map(|(i, (lname, kind, gemm))| {
            let (w, a) = profile.layer(i, count);
            LayerSpec::new(lname, kind, gemm, w, a)
        })
        .collect();
    ModelSpec { name, layers }
}

fn conv(name: &str, s: ConvShape) -> (String, LayerKind, GemmShape) {
    (name.to_string(), LayerKind::Conv, s.gemm())
}

fn fc(name: &str, inf: usize, outf: usize) -> (String, LayerKind, GemmShape) {
    (name.to_string(), LayerKind::FullyConnected, GemmShape::new(outf, inf, 1))
}

/// Depthwise conv modelled as an `M=channels, K=R*S` GEMM with the same
/// MAC count (see `LayerSpec::gemm` docs).
fn dw(name: &str, channels: usize, hw: usize, stride: usize) -> (String, LayerKind, GemmShape) {
    let out = hw / stride;
    (name.to_string(), LayerKind::Depthwise, GemmShape::new(channels, 9, out * out))
}

/// AlexNet (ImageNet, 227x227 input): 5 conv + 3 FC layers
/// (~0.72 GMAC conv). The paper's Fig. 12 per-layer study uses exactly
/// these conv layers.
pub fn alexnet() -> ModelSpec {
    let convs = vec![
        conv("conv1", ConvShape::new(96, 3, 227, 227, 11, 11, 4, 0)),
        conv("conv2", ConvShape::new(256, 96, 27, 27, 5, 5, 1, 2)),
        conv("conv3", ConvShape::new(384, 256, 13, 13, 3, 3, 1, 1)),
        conv("conv4", ConvShape::new(384, 384, 13, 13, 3, 3, 1, 1)),
        conv("conv5", ConvShape::new(256, 384, 13, 13, 3, 3, 1, 1)),
        fc("fc6", 256 * 6 * 6, 4096),
        fc("fc7", 4096, 4096),
        fc("fc8", 4096, 1000),
    ];
    build("AlexNet", convs, SparsityProfile::default())
}

/// VGG-16 (ImageNet, 224x224): 13 conv + 3 FC (~15.3 GMAC conv).
pub fn vgg16() -> ModelSpec {
    let mut layers = Vec::new();
    let stages: [(usize, usize, usize); 5] =
        [(2, 64, 224), (2, 128, 112), (3, 256, 56), (3, 512, 28), (3, 512, 14)];
    let mut in_ch = 3;
    for (si, (reps, ch, hw)) in stages.iter().enumerate() {
        for r in 0..*reps {
            let name = format!("conv{}_{}", si + 1, r + 1);
            let shape = ConvShape::new(*ch, in_ch, *hw, *hw, 3, 3, 1, 1);
            layers.push((name, LayerKind::Conv, shape.gemm()));
            in_ch = *ch;
        }
    }
    layers.push(fc("fc6", 512 * 7 * 7, 4096));
    layers.push(fc("fc7", 4096, 4096));
    layers.push(fc("fc8", 4096, 1000));
    build("VGG16", layers, SparsityProfile::default())
}

/// MobileNetV1 1.0-224: the standard conv followed by 13
/// depthwise-separable pairs and the classifier (~0.57 GMAC).
pub fn mobilenet_v1() -> ModelSpec {
    let mut layers = Vec::new();
    layers.push(conv("conv1", ConvShape::new(32, 3, 224, 224, 3, 3, 2, 1)));
    // (in_ch, out_ch, spatial_in, dw_stride) per separable block.
    let blocks: [(usize, usize, usize, usize); 13] = [
        (32, 64, 112, 1),
        (64, 128, 112, 2),
        (128, 128, 56, 1),
        (128, 256, 56, 2),
        (256, 256, 28, 1),
        (256, 512, 28, 2),
        (512, 512, 14, 1),
        (512, 512, 14, 1),
        (512, 512, 14, 1),
        (512, 512, 14, 1),
        (512, 512, 14, 1),
        (512, 1024, 14, 2),
        (1024, 1024, 7, 1),
    ];
    for (bi, (ic, oc, hw, stride)) in blocks.iter().enumerate() {
        layers.push(dw(&format!("dw{}", bi + 1), *ic, *hw, *stride));
        let pw_hw = hw / stride;
        layers.push(conv(
            &format!("pw{}", bi + 1),
            ConvShape::new(*oc, *ic, pw_hw, pw_hw, 1, 1, 1, 0),
        ));
    }
    layers.push(fc("fc", 1024, 1000));
    build("MobileNetV1", layers, SparsityProfile::default())
}

/// ResNet-50 V1 (ImageNet, 224x224): conv1 + 16 bottleneck blocks with
/// projection shortcuts (~3.9 GMAC).
pub fn resnet50_v1() -> ModelSpec {
    let mut layers = Vec::new();
    layers.push(conv("conv1", ConvShape::new(64, 3, 224, 224, 7, 7, 2, 3)));
    // (stage, blocks, mid_ch, out_ch, spatial).
    let stages: [(usize, usize, usize, usize, usize); 4] =
        [(2, 3, 64, 256, 56), (3, 4, 128, 512, 28), (4, 6, 256, 1024, 14), (5, 3, 512, 2048, 7)];
    let mut in_ch = 64;
    for (stage, blocks, mid, out, hw) in stages {
        for b in 0..blocks {
            let p = format!("res{stage}{}", (b'a' + b as u8) as char);
            layers.push(conv(&format!("{p}_1x1a"), ConvShape::new(mid, in_ch, hw, hw, 1, 1, 1, 0)));
            layers.push(conv(&format!("{p}_3x3"), ConvShape::new(mid, mid, hw, hw, 3, 3, 1, 1)));
            layers.push(conv(&format!("{p}_1x1b"), ConvShape::new(out, mid, hw, hw, 1, 1, 1, 0)));
            if b == 0 {
                layers.push(conv(
                    &format!("{p}_proj"),
                    ConvShape::new(out, in_ch, hw, hw, 1, 1, 1, 0),
                ));
            }
            in_ch = out;
        }
    }
    layers.push(fc("fc", 2048, 1000));
    build("ResNet50V1", layers, SparsityProfile::default())
}

/// LeNet-5 (MNIST, 32x32): the small model of the accuracy study
/// (Table 3).
pub fn lenet5() -> ModelSpec {
    let layers = vec![
        conv("conv1", ConvShape::new(6, 1, 32, 32, 5, 5, 1, 0)),
        conv("conv2", ConvShape::new(16, 6, 14, 14, 5, 5, 1, 0)),
        fc("fc3", 400, 120),
        fc("fc4", 120, 84),
        fc("fc5", 84, 10),
    ];
    build("LeNet-5", layers, SparsityProfile::default())
}

/// A compact CIFAR-10 convnet (~5.7 MMAC): three 3x3 conv stages and a
/// classifier head.
///
/// Not part of the paper's evaluation — it exists as a light,
/// structurally conventional workload for serving and scheduling
/// experiments (`s2ta-serve`), where hundreds of requests must simulate
/// in seconds.
pub fn cifar10_convnet() -> ModelSpec {
    let layers = vec![
        conv("conv1", ConvShape::new(32, 3, 32, 32, 3, 3, 1, 1)),
        conv("conv2", ConvShape::new(32, 32, 16, 16, 3, 3, 1, 1)),
        conv("conv3", ConvShape::new(64, 32, 8, 8, 3, 3, 1, 1)),
        fc("fc4", 64 * 4 * 4, 10),
    ];
    build("CIFAR10-ConvNet", layers, SparsityProfile::default())
}

/// A deep, narrow convnet (~23 MMAC over 14 layers): six 3x3 conv
/// stages interleaved with two depthwise-separable blocks and a
/// two-layer classifier head.
///
/// Not part of the paper's evaluation — it is the serving subsystem's
/// **deep** workload: enough layers that stage partitioning
/// (`s2ta-serve`'s layer pipeline) is meaningful, memory-bound
/// depthwise/FC layers sprinkled through the body so pinned-stage
/// weight residency pays off, yet light enough that hundreds of
/// requests simulate in seconds.
pub fn deep_convnet() -> ModelSpec {
    let layers = vec![
        conv("conv1", ConvShape::new(16, 3, 32, 32, 3, 3, 1, 1)),
        conv("conv2", ConvShape::new(32, 16, 32, 32, 3, 3, 1, 1)),
        conv("conv3", ConvShape::new(32, 32, 16, 16, 3, 3, 1, 1)),
        conv("conv4", ConvShape::new(64, 32, 16, 16, 3, 3, 1, 1)),
        conv("conv5", ConvShape::new(64, 64, 8, 8, 3, 3, 1, 1)),
        conv("conv6", ConvShape::new(64, 64, 8, 8, 3, 3, 1, 1)),
        dw("dw7", 64, 8, 1),
        conv("pw7", ConvShape::new(128, 64, 8, 8, 1, 1, 1, 0)),
        conv("conv8", ConvShape::new(128, 128, 4, 4, 3, 3, 1, 1)),
        conv("conv9", ConvShape::new(128, 128, 4, 4, 3, 3, 1, 1)),
        dw("dw10", 128, 4, 1),
        conv("pw10", ConvShape::new(256, 128, 4, 4, 1, 1, 1, 0)),
        fc("fc11", 256 * 2 * 2, 256),
        fc("fc12", 256, 10),
    ];
    build("Deep-ConvNet", layers, SparsityProfile::default())
}

/// The I-BERT base encoder FC sub-layers (FC1 768->3072, FC2 3072->768)
/// over a sequence of `seq_len` tokens — the layers the paper prunes
/// with A/W-DBB (Table 3 note 4).
pub fn ibert_encoder_fc(seq_len: usize) -> ModelSpec {
    assert!(seq_len > 0, "sequence length must be non-zero");
    let mut layers = Vec::new();
    for l in 0..12 {
        layers.push((
            format!("enc{l}_fc1"),
            LayerKind::FullyConnected,
            GemmShape::new(3072, 768, seq_len),
        ));
        layers.push((
            format!("enc{l}_fc2"),
            LayerKind::FullyConnected,
            GemmShape::new(768, 3072, seq_len),
        ));
    }
    build("I-BERT-FC", layers, SparsityProfile::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_conv_macs_match_published() {
        // Published AlexNet conv MACs ~= 0.66-0.72 G (ungrouped conv2/4/5).
        let m = alexnet();
        let g = m.conv_macs() as f64 / 1e9;
        assert!((0.6..1.2).contains(&g), "AlexNet conv GMACs {g:.3} outside expected band");
        assert_eq!(m.conv_layers().count(), 5);
    }

    #[test]
    fn vgg16_is_an_order_of_magnitude_bigger() {
        let v = vgg16().conv_macs() as f64 / 1e9;
        assert!((14.0..16.5).contains(&v), "VGG16 conv GMACs {v:.2}");
    }

    #[test]
    fn mobilenet_macs_published() {
        // MobileNetV1 1.0-224 ~0.57 GMAC total.
        let m = mobilenet_v1().total_macs() as f64 / 1e9;
        assert!((0.5..0.65).contains(&m), "MobileNet GMACs {m:.3}");
    }

    #[test]
    fn resnet50_macs_published() {
        // ResNet-50 ~3.8-4.1 GMAC.
        let r = resnet50_v1().total_macs() as f64 / 1e9;
        assert!((3.5..4.3).contains(&r), "ResNet50 GMACs {r:.2}");
    }

    #[test]
    fn layer_counts() {
        assert_eq!(alexnet().layers.len(), 8);
        assert_eq!(vgg16().layers.len(), 16);
        assert_eq!(mobilenet_v1().layers.len(), 1 + 13 * 2 + 1);
        assert_eq!(lenet5().layers.len(), 5);
        assert_eq!(ibert_encoder_fc(128).layers.len(), 24);
        // ResNet50: 1 + 16 blocks * 3 + 4 projections + 1 fc = 54.
        assert_eq!(resnet50_v1().layers.len(), 54);
    }

    #[test]
    fn cifar_convnet_is_light() {
        let m = cifar10_convnet();
        let mmacs = m.total_macs() as f64 / 1e6;
        assert!((4.0..8.0).contains(&mmacs), "CIFAR convnet MMACs {mmacs:.2}");
        assert_eq!(m.conv_layers().count(), 3);
        assert_eq!(m.layers.len(), 4);
    }

    #[test]
    fn deep_convnet_is_deep_but_light() {
        let m = deep_convnet();
        assert_eq!(m.layers.len(), 14);
        let mmacs = m.total_macs() as f64 / 1e6;
        assert!((15.0..35.0).contains(&mmacs), "Deep-ConvNet MMACs {mmacs:.2}");
        // Memory-bound layers sit in the body, not just the head — the
        // property pinned-stage residency exploits.
        let bound: Vec<usize> = m
            .layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_memory_bound())
            .map(|(i, _)| i)
            .collect();
        assert!(bound.len() >= 4, "needs several memory-bound layers: {bound:?}");
        assert!(bound.iter().any(|&i| i > 2 && i < m.layers.len() - 2), "{bound:?}");
    }

    #[test]
    fn depth_sparsity_ramp_applies() {
        let m = vgg16();
        let first = &m.layers[1];
        let last_conv = &m.layers[12];
        assert!(last_conv.act_sparsity > first.act_sparsity);
    }

    #[test]
    fn alexnet_conv1_gemm_shape() {
        let m = alexnet();
        assert_eq!(m.layers[0].gemm, GemmShape::new(96, 363, 3025));
    }

    #[test]
    fn display_summary() {
        assert!(alexnet().to_string().contains("AlexNet"));
    }
}
