//! Component-wise area estimation (paper Table 2, Table 4).
//!
//! Area constants are calibrated against Table 2's S2TA-AW breakdown:
//! 512 KB weight SRAM = 0.54 mm2 and 2 MB activation SRAM = 2.16 mm2
//! give ~1.05e-3 mm2/KB; a Cortex-M33 plus its 64 KB control store is
//! ~0.075 mm2; the 2048-MAC datapath with its registers lands at
//! ~0.7 mm2. The same constants then predict the Table 4 area ordering
//! (SA-SMT > SA-ZVCG ~ S2TA-AW > S2TA-W).

/// Hardware inventory of one accelerator configuration — the inputs to
/// the area model. Buffer capacities are per-design (see
/// `s2ta_core::buffers` for the Table 1 formulas).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwSpec {
    /// INT8 MAC units.
    pub macs: u64,
    /// Total operand/accumulator flip-flop capacity in bytes.
    pub ff_bytes: u64,
    /// Total staging FIFO capacity in bytes (SMT only).
    pub fifo_bytes: u64,
    /// Total DBB mux ways (e.g. 2048 MACs x 4-way = 8192).
    pub mux_ways: u64,
    /// Weight buffer SRAM in KB.
    pub weight_sram_kb: f64,
    /// Activation buffer SRAM in KB.
    pub act_sram_kb: f64,
    /// MCU count (each with its 64 KB control store).
    pub mcus: u64,
    /// DAP comparators (BZ-1 per stage x stages x units; 0 if no DAP).
    pub dap_comparators: u64,
}

/// Per-component area constants, mm2, 16nm. For 65nm multiply by
/// [`AreaParams::NODE_SCALE_65NM`] (the paper's Table 4 shows roughly a
/// 6x logic-area gap between its 16nm and 65nm implementations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaParams {
    /// One INT8 MAC (multiplier + adder + local wiring).
    pub a_mac_mm2: f64,
    /// One flip-flop byte (registers, accumulators).
    pub a_ff_byte_mm2: f64,
    /// One FIFO byte (denser than discrete FFs).
    pub a_fifo_byte_mm2: f64,
    /// One mux way.
    pub a_mux_way_mm2: f64,
    /// One KB of large single-ported SRAM.
    pub a_sram_kb_mm2: f64,
    /// One Cortex-M33 with 64 KB control store.
    pub a_mcu_mm2: f64,
    /// One DAP comparator.
    pub a_dap_comparator_mm2: f64,
}

impl AreaParams {
    /// Logic/SRAM area scale from 16nm to 65nm.
    pub const NODE_SCALE_65NM: f64 = 6.0;

    /// Calibrated 16nm constants.
    pub fn tsmc16() -> Self {
        Self {
            a_mac_mm2: 1.0e-4,
            a_ff_byte_mm2: 3.5e-5,
            a_fifo_byte_mm2: 1.2e-5,
            a_mux_way_mm2: 2.5e-6,
            a_sram_kb_mm2: 1.05e-3,
            a_mcu_mm2: 0.075,
            a_dap_comparator_mm2: 2.2e-5,
        }
    }

    /// 65nm constants (16nm scaled by [`Self::NODE_SCALE_65NM`]).
    pub fn tsmc65() -> Self {
        let b = Self::tsmc16();
        let s = Self::NODE_SCALE_65NM;
        Self {
            a_mac_mm2: b.a_mac_mm2 * s,
            a_ff_byte_mm2: b.a_ff_byte_mm2 * s,
            a_fifo_byte_mm2: b.a_fifo_byte_mm2 * s,
            a_mux_way_mm2: b.a_mux_way_mm2 * s,
            a_sram_kb_mm2: b.a_sram_kb_mm2 * s,
            a_mcu_mm2: b.a_mcu_mm2 * s,
            a_dap_comparator_mm2: b.a_dap_comparator_mm2 * s,
        }
    }
}

/// Component-wise area, mm2.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AreaBreakdown {
    /// MAC datapath + flip-flop buffers + FIFOs + muxes.
    pub datapath_mm2: f64,
    /// Weight buffer SRAM.
    pub weight_sram_mm2: f64,
    /// Activation buffer SRAM.
    pub act_sram_mm2: f64,
    /// MCU cluster (cores + control stores).
    pub mcu_mm2: f64,
    /// DAP array.
    pub dap_mm2: f64,
}

impl AreaBreakdown {
    /// Estimates the area of `spec` under `params`.
    pub fn of(spec: &HwSpec, params: &AreaParams) -> Self {
        Self {
            datapath_mm2: spec.macs as f64 * params.a_mac_mm2
                + spec.ff_bytes as f64 * params.a_ff_byte_mm2
                + spec.fifo_bytes as f64 * params.a_fifo_byte_mm2
                + spec.mux_ways as f64 * params.a_mux_way_mm2,
            weight_sram_mm2: spec.weight_sram_kb * params.a_sram_kb_mm2,
            act_sram_mm2: spec.act_sram_kb * params.a_sram_kb_mm2,
            mcu_mm2: spec.mcus as f64 * params.a_mcu_mm2,
            dap_mm2: spec.dap_comparators as f64 * params.a_dap_comparator_mm2,
        }
    }

    /// Total area in mm2.
    pub fn total_mm2(&self) -> f64 {
        self.datapath_mm2 + self.weight_sram_mm2 + self.act_sram_mm2 + self.mcu_mm2 + self.dap_mm2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The S2TA-AW spec corresponding to Table 2.
    fn s2ta_aw_spec() -> HwSpec {
        HwSpec {
            macs: 2048,
            // ~4.75 B per MAC (Table 1: 0.75 operand + 4 accumulator).
            ff_bytes: 2048 * 4 + 2048, // 4B acc per MAC + ~1B staged operands
            fifo_bytes: 0,
            mux_ways: 2048 * 4,
            weight_sram_kb: 512.0,
            act_sram_kb: 2048.0,
            mcus: 4,
            // 64 DAP units x 5 stages x 7 comparators.
            dap_comparators: 64 * 5 * 7,
        }
    }

    #[test]
    fn table2_shape_reproduced() {
        let a = AreaBreakdown::of(&s2ta_aw_spec(), &AreaParams::tsmc16());
        // Table 2: total 3.77 mm2; AB 2.16 (57%); WB 0.54 (14%);
        // datapath ~0.72 (19%); MCU 0.30 (8%); DAP 0.05 (1.3%).
        assert!((a.act_sram_mm2 - 2.16).abs() < 0.1, "AB {:.2}", a.act_sram_mm2);
        assert!((a.weight_sram_mm2 - 0.54).abs() < 0.05, "WB {:.2}", a.weight_sram_mm2);
        assert!((a.mcu_mm2 - 0.30).abs() < 0.05, "MCU {:.2}", a.mcu_mm2);
        assert!(a.dap_mm2 > 0.02 && a.dap_mm2 < 0.08, "DAP {:.3}", a.dap_mm2);
        assert!(a.datapath_mm2 > 0.4 && a.datapath_mm2 < 1.0, "dp {:.2}", a.datapath_mm2);
        let total = a.total_mm2();
        assert!((total - 3.77).abs() / 3.77 < 0.15, "total {total:.2}");
        // SRAM dominates the floorplan (paper: 71.6% combined).
        assert!((a.act_sram_mm2 + a.weight_sram_mm2) / total > 0.6);
    }

    #[test]
    fn node_scale() {
        let spec = s2ta_aw_spec();
        let a16 = AreaBreakdown::of(&spec, &AreaParams::tsmc16());
        let a65 = AreaBreakdown::of(&spec, &AreaParams::tsmc65());
        assert!((a65.total_mm2() / a16.total_mm2() - AreaParams::NODE_SCALE_65NM).abs() < 1e-9);
    }

    #[test]
    fn fifo_area_is_additive() {
        let mut spec = s2ta_aw_spec();
        let base = AreaBreakdown::of(&spec, &AreaParams::tsmc16()).total_mm2();
        spec.fifo_bytes = 2048 * 16;
        let with_fifo = AreaBreakdown::of(&spec, &AreaParams::tsmc16()).total_mm2();
        assert!(with_fifo > base);
    }
}
