//! Analytic energy models of the published unstructured-sparse
//! comparators: SparTen (45nm) and Eyeriss-v2 (65nm).
//!
//! The paper compares against these accelerators using their *published*
//! PPA (Sec. 7: "The PPA metrics for SparTen and Eyeriss-v2 are directly
//! from the papers") — it does not re-implement them. We do one step
//! better: behavioural models whose energy is driven by the actual
//! sparse operand statistics of each layer, with per-architecture cost
//! terms that encode *why* each design wins or loses:
//!
//! * Both pay a full-rate cost per **non-zero product** whose per-MAC
//!   energy includes their large per-PE buffers (Table 1: ~1 KB/MAC for
//!   SparTen vs 6 B for a systolic array).
//! * Both pay an index-processing cost per **potential pair** (bitmask
//!   AND + prefix-sum for SparTen's inner join; CSC walking for
//!   Eyeriss-v2) — cheap per bit, but charged even where everything is
//!   zero.
//! * SparTen's outer-product result **scatter** pays a read-modify-write
//!   into a distributed accumulator buffer per output.
//!
//! The net effect reproduces Fig. 12's shape: SparTen looks great on
//! very sparse layers (conv3-5 of AlexNet) and poor on dense ones
//! (conv1-2); Eyeriss-v2 is flatter but uniformly costlier.

/// Sparse operand statistics of one layer — the model inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerStats {
    /// Total (dense) MAC positions `M*K*N`.
    pub macs: u64,
    /// Non-zero products (both operands non-zero).
    pub nonzero_products: u64,
    /// Weight elements (dense count `M*K`).
    pub weight_elems: u64,
    /// Non-zero weights.
    pub weight_nnz: u64,
    /// Activation elements (dense count `K*N`).
    pub act_elems: u64,
    /// Non-zero activations.
    pub act_nnz: u64,
    /// Output elements `M*N`.
    pub outputs: u64,
}

/// Cost terms of an unstructured-sparse accelerator model (picojoules).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComparatorModel {
    /// Human-readable name (e.g. `"SparTen (45nm)"`).
    pub name: &'static str,
    /// Energy per non-zero product: MAC + the per-PE operand buffering
    /// that unstructured gather/scatter requires.
    pub e_product_pj: f64,
    /// Energy per potential pair position: index/bitmask processing.
    pub e_pair_index_pj: f64,
    /// Energy per output element: result scatter / accumulation network.
    pub e_output_pj: f64,
    /// Energy per compressed operand byte of SRAM traffic.
    pub e_sram_byte_pj: f64,
}

impl ComparatorModel {
    /// SparTen in its published 45nm node.
    ///
    /// High per-product cost (864 B operand buffers per PE, Table 1) and
    /// a strong output-scatter term, but tiny index cost — so it excels
    /// exactly where almost everything is zero.
    pub fn sparten45() -> Self {
        Self {
            name: "SparTen (45nm)",
            e_product_pj: 13.0,
            e_pair_index_pj: 0.6,
            e_output_pj: 30.0,
            e_sram_byte_pj: 20.0,
        }
    }

    /// Eyeriss-v2 in its published 65nm node.
    ///
    /// Moderate everything: hierarchical-mesh delivery and CSC decoding
    /// put a higher floor under each product and pair, making the curve
    /// flatter across sparsity but uniformly high.
    pub fn eyeriss_v2_65() -> Self {
        Self {
            name: "Eyeriss v2 (65nm)",
            e_product_pj: 14.0,
            e_pair_index_pj: 2.4,
            e_output_pj: 20.0,
            e_sram_byte_pj: 25.0,
        }
    }

    /// Energy of one layer under this model, picojoules.
    pub fn layer_energy_pj(&self, s: &LayerStats) -> f64 {
        let sram_bytes =
            (s.weight_nnz + s.weight_elems / 8 + s.act_nnz + s.act_elems / 8 + s.outputs) as f64;
        s.nonzero_products as f64 * self.e_product_pj
            + s.macs as f64 * self.e_pair_index_pj
            + s.outputs as f64 * self.e_output_pj
            + sram_bytes * self.e_sram_byte_pj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(macs: u64, product_density: f64) -> LayerStats {
        LayerStats {
            macs,
            nonzero_products: (macs as f64 * product_density) as u64,
            weight_elems: macs / 100,
            weight_nnz: (macs as f64 / 100.0 * product_density.sqrt()) as u64,
            act_elems: macs / 100,
            act_nnz: (macs as f64 / 100.0 * product_density.sqrt()) as u64,
            outputs: macs / 1000,
        }
    }

    #[test]
    fn sparser_layers_cost_less() {
        let m = ComparatorModel::sparten45();
        let dense = m.layer_energy_pj(&stats(1_000_000, 0.9));
        let sparse = m.layer_energy_pj(&stats(1_000_000, 0.05));
        assert!(sparse < dense * 0.3, "sparse {sparse:.0} vs dense {dense:.0}");
    }

    #[test]
    fn sparten_beats_eyeriss_at_high_sparsity_and_loses_at_low() {
        // Fig. 12: SparTen only wins on very sparse layers.
        let sp = ComparatorModel::sparten45();
        let ey = ComparatorModel::eyeriss_v2_65();
        let sparse = stats(10_000_000, 0.04);
        let dense = stats(10_000_000, 0.85);
        assert!(sp.layer_energy_pj(&sparse) < ey.layer_energy_pj(&sparse));
        // On dense layers both are expensive; SparTen's product+scatter
        // terms keep it in the same league (no crossover needed, just
        // the sparse-side win).
        assert!(sp.layer_energy_pj(&dense) > 0.5 * ey.layer_energy_pj(&dense));
    }

    #[test]
    fn energy_scales_with_macs() {
        let m = ComparatorModel::eyeriss_v2_65();
        let small = m.layer_energy_pj(&stats(1_000_000, 0.3));
        let large = m.layer_energy_pj(&stats(10_000_000, 0.3));
        assert!((large / small - 10.0).abs() < 0.5);
    }
}
