//! Technology parameters: per-event energy constants.
//!
//! # Calibration
//!
//! The 16nm constants are chosen so that the model reproduces the
//! paper's published component shapes (the reproduction target — see
//! DESIGN.md Sec. 5):
//!
//! * **Fig. 1** — dense INT8 SA on a typical conv with ~50% sparsity:
//!   SRAM ~21%, PE-array buffers ~49%, MAC datapath ~20%,
//!   activation-function post-processing ~10%. The headline insight —
//!   the INT8 MAC is *cheap* relative to the registers and SRAM feeding
//!   it — is what every constant ratio below encodes.
//! * **Table 2** — S2TA-AW 8x4x4_8x8 at 4 TOPS: datapath+buffers ~59%,
//!   weight SRAM ~13%, activation SRAM ~17%, MCUs ~9%, DAP ~2%.
//! * **Fig. 3 / Fig. 10** — SA-SMT's staging FIFOs push its energy
//!   ~40-50% *above* SA-ZVCG despite its speedup.
//!
//! Individual values are also sanity-checked against public INT8
//! energy-per-op surveys (an INT8 MAC in 16nm is a fraction of a pJ; an
//! SRAM byte costs several times a MAC; a Cortex-M33 at 3.9 uW/MHz
//! spends tens of pJ per post-processed element).
//!
//! The 65nm node scales dynamic energy by ~8x and halves the clock
//! (paper Sec. 7 uses 1 GHz at 16nm, 500 MHz at 65nm); this reproduces
//! the ~10x energy-per-inference gap between the paper's Table 4 16nm
//! and 65nm sections.

use std::fmt;

/// Process node selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technology {
    /// TSMC 16nm FinFET, 1 GHz (the paper's primary node).
    Tsmc16,
    /// TSMC 65nm, 500 MHz (for the SparTen / Eyeriss-v2 comparison).
    Tsmc65,
}

impl fmt::Display for Technology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Technology::Tsmc16 => write!(f, "16nm"),
            Technology::Tsmc65 => write!(f, "65nm"),
        }
    }
}

/// Per-event energy constants for one technology node (all picojoules).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechParams {
    /// The node these constants describe.
    pub node: Technology,
    /// Clock frequency in Hz (constrained at synthesis: 1 GHz @16nm,
    /// 500 MHz @65nm, paper Sec. 7).
    pub clock_hz: f64,
    /// INT8 MAC with both operands non-zero (full switching).
    pub e_mac_active_pj: f64,
    /// INT8 MAC issued with a zero operand, not gated (reduced toggling).
    pub e_mac_idle_pj: f64,
    /// Clock-gated MAC (residual clock-tree energy).
    pub e_mac_gated_pj: f64,
    /// One operand byte latched through a pipeline register.
    pub e_reg_byte_pj: f64,
    /// One 4-byte accumulator read-modify-write.
    pub e_acc_update_pj: f64,
    /// One byte pushed or popped through a staging FIFO (SMT).
    pub e_fifo_byte_pj: f64,
    /// One DBB mux select (4:1/8:1; averaged).
    pub e_mux_select_pj: f64,
    /// One byte read from the 512 KB weight buffer SRAM.
    pub e_weight_sram_byte_pj: f64,
    /// One byte read or written at the 2 MB activation buffer SRAM.
    pub e_act_sram_byte_pj: f64,
    /// One DAP magnitude-maxpool stage (BZ-1 comparators + control).
    pub e_dap_stage_pj: f64,
    /// MCU post-processing of one output element (activation function,
    /// scaling, requantization on the Cortex-M33 cluster).
    pub e_mcu_element_pj: f64,
}

impl TechParams {
    /// The calibrated 16nm FinFET parameters.
    pub fn tsmc16() -> Self {
        Self {
            node: Technology::Tsmc16,
            clock_hz: 1.0e9,
            e_mac_active_pj: 0.28,
            e_mac_idle_pj: 0.075,
            e_mac_gated_pj: 0.01,
            e_reg_byte_pj: 0.11,
            e_acc_update_pj: 0.13,
            e_fifo_byte_pj: 0.28,
            e_mux_select_pj: 0.006,
            e_weight_sram_byte_pj: 2.0,
            e_act_sram_byte_pj: 3.2,
            e_dap_stage_pj: 1.5,
            e_mcu_element_pj: 20.0,
        }
    }

    /// The 65nm parameters: 16nm energies scaled by 8x, 500 MHz clock.
    pub fn tsmc65() -> Self {
        let base = Self::tsmc16();
        const SCALE: f64 = 8.0;
        Self {
            node: Technology::Tsmc65,
            clock_hz: 0.5e9,
            e_mac_active_pj: base.e_mac_active_pj * SCALE,
            e_mac_idle_pj: base.e_mac_idle_pj * SCALE,
            e_mac_gated_pj: base.e_mac_gated_pj * SCALE,
            e_reg_byte_pj: base.e_reg_byte_pj * SCALE,
            e_acc_update_pj: base.e_acc_update_pj * SCALE,
            e_fifo_byte_pj: base.e_fifo_byte_pj * SCALE,
            e_mux_select_pj: base.e_mux_select_pj * SCALE,
            e_weight_sram_byte_pj: base.e_weight_sram_byte_pj * SCALE,
            e_act_sram_byte_pj: base.e_act_sram_byte_pj * SCALE,
            e_dap_stage_pj: base.e_dap_stage_pj * SCALE,
            e_mcu_element_pj: base.e_mcu_element_pj * SCALE,
        }
    }

    /// Parameters for a node.
    pub fn for_node(node: Technology) -> Self {
        match node {
            Technology::Tsmc16 => Self::tsmc16(),
            Technology::Tsmc65 => Self::tsmc65(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int8_reality_buffers_cost_more_than_macs() {
        // The paper's core premise (Fig. 1): moving/storing a MAC's
        // operands costs more than the MAC itself.
        let p = TechParams::tsmc16();
        let per_mac_buffers = 2.0 * p.e_reg_byte_pj + p.e_acc_update_pj;
        assert!(per_mac_buffers > p.e_mac_active_pj);
        // And SRAM per byte dwarfs a register per byte.
        assert!(p.e_act_sram_byte_pj > 10.0 * p.e_reg_byte_pj);
    }

    #[test]
    fn node_scaling() {
        let p16 = TechParams::tsmc16();
        let p65 = TechParams::tsmc65();
        assert_eq!(p65.e_mac_active_pj, 8.0 * p16.e_mac_active_pj);
        assert_eq!(p65.clock_hz, 0.5e9);
        assert_eq!(TechParams::for_node(Technology::Tsmc65), p65);
        assert_eq!(Technology::Tsmc16.to_string(), "16nm");
    }

    #[test]
    fn gating_orders() {
        let p = TechParams::tsmc16();
        assert!(p.e_mac_active_pj > p.e_mac_idle_pj);
        assert!(p.e_mac_idle_pj > p.e_mac_gated_pj);
    }
}
