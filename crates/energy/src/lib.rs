//! Energy, power and area models for the S2TA reproduction.
//!
//! The paper obtains PPA from a full 16nm/65nm EDA flow with annotated
//! switching (Sec. 7). We substitute an **event-based model**: the
//! simulator (`s2ta-sim`) counts microarchitectural events, and this
//! crate converts them to joules and square millimetres with
//! per-technology constants ([`TechParams`]). The constants are
//! *calibrated* so the published component breakdowns emerge — Fig. 1
//! (dense SA: buffers dominate, MAC datapath only ~20%) and Table 2
//! (S2TA-AW design point) — which preserves every relative conclusion
//! the paper draws. Absolute joules are model outputs, not silicon
//! measurements.
//!
//! * [`TechParams`] — per-event energies, 16nm and 65nm.
//! * [`EnergyBreakdown`] — component-wise energy of a run, plus derived
//!   power/efficiency ([`EnergyBreakdown::of`]).
//! * [`area`] — component-wise area from a hardware spec.
//! * [`comparators`] — analytic SparTen / Eyeriss-v2 energy models for
//!   the cross-accelerator comparisons (Fig. 12, Table 4).
//!
//! # Example
//!
//! ```
//! use s2ta_energy::{EnergyBreakdown, TechParams};
//! use s2ta_sim::EventCounts;
//!
//! let events = EventCounts {
//!     cycles: 1000,
//!     macs_active: 500_000,
//!     macs_gated: 500_000,
//!     operand_reg_bytes: 2_000_000,
//!     acc_updates: 500_000,
//!     ..Default::default()
//! };
//! let e = EnergyBreakdown::of(&events, &TechParams::tsmc16());
//! assert!(e.total_pj() > 0.0);
//! assert!(e.pe_buffers_pj > e.mac_datapath_pj); // INT8 reality: buffers dominate
//! ```
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod area;
pub mod comparators;
mod model;
mod tech;

pub use model::EnergyBreakdown;
pub use tech::{TechParams, Technology};
