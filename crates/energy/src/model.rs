//! Event counts -> component-wise energy.

use crate::TechParams;
use s2ta_sim::EventCounts;
use std::fmt;
use std::ops::{Add, AddAssign};

/// Component-wise energy of one run, in picojoules.
///
/// The components mirror the paper's breakdowns (Fig. 1, Fig. 10,
/// Table 2): MAC datapath, PE-array buffers (pipeline registers,
/// accumulators, staging FIFOs, muxes), the two SRAMs, DAP, and the MCU
/// post-processing cluster.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Multiplier/adder switching energy.
    pub mac_datapath_pj: f64,
    /// Operand pipeline registers + accumulators + FIFOs + muxes.
    pub pe_buffers_pj: f64,
    /// Weight buffer SRAM traffic.
    pub weight_sram_pj: f64,
    /// Activation buffer SRAM traffic.
    pub act_sram_pj: f64,
    /// DAP maxpool cascade.
    pub dap_pj: f64,
    /// MCU (activation functions, pooling, scaling, requantization).
    pub mcu_pj: f64,
    /// Cycles the run took (carried through for power derivation).
    pub cycles: u64,
    /// Clock frequency used for power derivation (Hz).
    pub clock_hz: f64,
}

impl EnergyBreakdown {
    /// Converts event counts to energy under `tech`.
    pub fn of(events: &EventCounts, tech: &TechParams) -> Self {
        let mac_datapath_pj = events.macs_active as f64 * tech.e_mac_active_pj
            + events.macs_idle as f64 * tech.e_mac_idle_pj
            + events.macs_gated as f64 * tech.e_mac_gated_pj;
        let pe_buffers_pj = events.operand_reg_bytes as f64 * tech.e_reg_byte_pj
            + events.acc_updates as f64 * tech.e_acc_update_pj
            + events.fifo_bytes as f64 * tech.e_fifo_byte_pj
            + events.mux_selects as f64 * tech.e_mux_select_pj;
        let weight_sram_pj = events.weight_sram_bytes as f64 * tech.e_weight_sram_byte_pj;
        let act_sram_pj = (events.act_sram_read_bytes + events.act_sram_write_bytes) as f64
            * tech.e_act_sram_byte_pj;
        let dap_pj = events.dap_stages as f64 * tech.e_dap_stage_pj;
        let mcu_pj = events.mcu_elements as f64 * tech.e_mcu_element_pj;
        Self {
            mac_datapath_pj,
            pe_buffers_pj,
            weight_sram_pj,
            act_sram_pj,
            dap_pj,
            mcu_pj,
            cycles: events.cycles,
            clock_hz: tech.clock_hz,
        }
    }

    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.mac_datapath_pj
            + self.pe_buffers_pj
            + self.weight_sram_pj
            + self.act_sram_pj
            + self.dap_pj
            + self.mcu_pj
    }

    /// Total energy in microjoules (the unit of the paper's Fig. 12).
    pub fn total_uj(&self) -> f64 {
        self.total_pj() * 1e-6
    }

    /// Run time in seconds at the model's clock.
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / self.clock_hz
    }

    /// Average power in milliwatts over the run.
    pub fn avg_power_mw(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.total_pj() * 1e-12 / self.seconds() * 1e3
    }

    /// Fraction of the total contributed by each component, in the order
    /// `[mac, buffers, weight_sram, act_sram, dap, mcu]`.
    pub fn shares(&self) -> [f64; 6] {
        let t = self.total_pj();
        if t == 0.0 {
            return [0.0; 6];
        }
        [
            self.mac_datapath_pj / t,
            self.pe_buffers_pj / t,
            self.weight_sram_pj / t,
            self.act_sram_pj / t,
            self.dap_pj / t,
            self.mcu_pj / t,
        ]
    }

    /// Combined SRAM share (Fig. 1 groups both SRAMs).
    pub fn sram_pj(&self) -> f64 {
        self.weight_sram_pj + self.act_sram_pj
    }
}

impl Add for EnergyBreakdown {
    type Output = Self;

    fn add(mut self, rhs: Self) -> Self {
        self += rhs;
        self
    }
}

impl AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: Self) {
        self.mac_datapath_pj += rhs.mac_datapath_pj;
        self.pe_buffers_pj += rhs.pe_buffers_pj;
        self.weight_sram_pj += rhs.weight_sram_pj;
        self.act_sram_pj += rhs.act_sram_pj;
        self.dap_pj += rhs.dap_pj;
        self.mcu_pj += rhs.mcu_pj;
        self.cycles += rhs.cycles;
        if self.clock_hz == 0.0 {
            self.clock_hz = rhs.clock_hz;
        }
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.shares();
        write!(
            f,
            "{:.1} uJ (mac {:.0}% | buffers {:.0}% | wSRAM {:.0}% | aSRAM {:.0}% | dap {:.1}% | mcu {:.0}%)",
            self.total_uj(),
            s[0] * 100.0,
            s[1] * 100.0,
            s[2] * 100.0,
            s[3] * 100.0,
            s[4] * 100.0,
            s[5] * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Technology;

    fn sample_events() -> EventCounts {
        EventCounts {
            cycles: 1_000,
            macs_active: 10_000,
            macs_idle: 5_000,
            macs_gated: 5_000,
            operand_reg_bytes: 40_000,
            acc_updates: 15_000,
            fifo_bytes: 0,
            mux_selects: 0,
            weight_sram_bytes: 2_000,
            act_sram_read_bytes: 3_000,
            act_sram_write_bytes: 500,
            dap_stages: 100,
            dap_comparisons: 700,
            mcu_elements: 500,
        }
    }

    #[test]
    fn components_sum_to_total() {
        let e = EnergyBreakdown::of(&sample_events(), &TechParams::tsmc16());
        let sum: f64 = [
            e.mac_datapath_pj,
            e.pe_buffers_pj,
            e.weight_sram_pj,
            e.act_sram_pj,
            e.dap_pj,
            e.mcu_pj,
        ]
        .iter()
        .sum();
        assert!((sum - e.total_pj()).abs() < 1e-9);
        let shares: f64 = e.shares().iter().sum();
        assert!((shares - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_is_energy_over_time() {
        let e = EnergyBreakdown::of(&sample_events(), &TechParams::tsmc16());
        // 1000 cycles at 1 GHz = 1 us.
        assert!((e.seconds() - 1e-6).abs() < 1e-18);
        let expect_mw = e.total_pj() * 1e-12 / 1e-6 * 1e3;
        assert!((e.avg_power_mw() - expect_mw).abs() < 1e-9);
    }

    #[test]
    fn node_scaling_flows_through() {
        let ev = sample_events();
        let e16 = EnergyBreakdown::of(&ev, &TechParams::tsmc16());
        let e65 = EnergyBreakdown::of(&ev, &TechParams::for_node(Technology::Tsmc65));
        assert!((e65.total_pj() / e16.total_pj() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn addition_accumulates() {
        let e = EnergyBreakdown::of(&sample_events(), &TechParams::tsmc16());
        let two = e + e;
        assert!((two.total_pj() - 2.0 * e.total_pj()).abs() < 1e-9);
        assert_eq!(two.cycles, 2 * e.cycles);
    }

    #[test]
    fn display_mentions_components() {
        let e = EnergyBreakdown::of(&sample_events(), &TechParams::tsmc16());
        let s = e.to_string();
        assert!(s.contains("buffers") && s.contains("mcu"));
    }
}
