//! Register-by-register output-stationary systolic simulation.
//!
//! This is the validation machine: a literal model of the classic
//! weight-left / activation-top output-stationary array. Weights of row
//! `i` enter the west edge delayed by `i` cycles; activations of column
//! `j` enter the north edge delayed by `j`; PE `(i, j)` therefore sees
//! the operand pair for reduction index `p` at cycle `p + i + j` and
//! accumulates in place. It exists to *prove* the closed-form cycle
//! count (`K + m + n - 2`) and the functional equivalence that the
//! tile-level runners rely on.

use crate::{ArrayGeometry, EventCounts, GemmRun};
use s2ta_tensor::{AccMatrix, Matrix};

#[derive(Debug, Clone, Copy, Default)]
struct Operand {
    value: i8,
    valid: bool,
}

/// Runs `W (m x K) * A (K x n)` through a register-level simulation of an
/// `m x n` scalar output-stationary array.
///
/// Returns the exact product and event counts; `events.cycles` is the
/// measured (not computed) cycle count.
///
/// # Panics
///
/// Panics if `w.rows() > geom.tile_rows()`, `a.cols() > geom.tile_cols()`,
/// the inner dimensions disagree, or the geometry is not scalar.
pub fn run(geom: &ArrayGeometry, zvcg: bool, w: &Matrix, a: &Matrix) -> GemmRun {
    assert_eq!((geom.a, geom.b, geom.c), (1, 1, 1), "cycle-exact model is scalar only");
    assert!(w.rows() <= geom.m, "weight rows exceed array height");
    assert!(a.cols() <= geom.n, "activation cols exceed array width");
    assert_eq!(w.cols(), a.rows(), "GEMM inner dims mismatch");

    let (rows, cols, k) = (w.rows(), a.cols(), w.cols());
    let mut acc = AccMatrix::zeros(rows, cols);
    let mut w_regs = vec![vec![Operand::default(); cols]; rows];
    let mut a_regs = vec![vec![Operand::default(); cols]; rows];
    let mut events = EventCounts::new();

    let mut cycle: u64 = 0;
    let mut last_compute: u64 = 0;
    loop {
        // Drain condition: all inputs consumed and pipeline empty.
        let last_feed = k + rows.max(cols); // generous upper bound on feeding
        let pipeline_busy =
            w_regs.iter().flatten().any(|o| o.valid) || a_regs.iter().flatten().any(|o| o.valid);
        if cycle as usize >= last_feed && !pipeline_busy {
            break;
        }

        // Shift east/south (reverse order so we read pre-shift values).
        for regs in w_regs.iter_mut() {
            for j in (1..cols).rev() {
                regs[j] = regs[j - 1];
            }
        }
        for i in (1..rows).rev() {
            let (above, below) = a_regs.split_at_mut(i);
            below[0].copy_from_slice(&above[i - 1]);
        }
        // Feed edges: row i gets w[i][t - i]; column j gets a[t - j][j].
        for (i, regs) in w_regs.iter_mut().enumerate() {
            let t = cycle as i64 - i as i64;
            regs[0] = if t >= 0 && (t as usize) < k {
                Operand { value: w.get(i, t as usize), valid: true }
            } else {
                Operand::default()
            };
        }
        for (j, slot) in a_regs[0].iter_mut().enumerate() {
            let t = cycle as i64 - j as i64;
            *slot = if t >= 0 && (t as usize) < k {
                Operand { value: a.get(t as usize, j), valid: true }
            } else {
                Operand::default()
            };
        }
        // Compute.
        for i in 0..rows {
            for j in 0..cols {
                let (wo, ao) = (w_regs[i][j], a_regs[i][j]);
                if wo.valid {
                    events.operand_reg_bytes += 1;
                }
                if ao.valid {
                    events.operand_reg_bytes += 1;
                }
                if wo.valid && ao.valid {
                    last_compute = cycle;
                    let product_nonzero = wo.value != 0 && ao.value != 0;
                    if product_nonzero {
                        events.macs_active += 1;
                        events.acc_updates += 1;
                        let cur = acc.get(i, j);
                        acc.set(i, j, cur + wo.value as i32 * ao.value as i32);
                    } else if zvcg {
                        events.macs_gated += 1;
                    } else {
                        events.macs_idle += 1;
                        events.acc_updates += 1;
                    }
                }
            }
        }
        cycle += 1;
    }
    // Latency = first-feed to last-compute, inclusive; the trailing flush
    // iteration that merely empties the registers is not a compute cycle.
    events.cycles = last_compute + 1;
    GemmRun { result: acc, events }
}

/// The closed-form cycle count the tile-level runners use for a full
/// (non-clipped) scalar tile: `K + m + n - 2` compute cycles.
pub fn closed_form_cycles(k: usize, rows: usize, cols: usize) -> u64 {
    (k + rows + cols - 2) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use s2ta_tensor::gemm_ref;
    use s2ta_tensor::sparsity::SparseSpec;

    #[test]
    fn computes_exact_gemm() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = SparseSpec::random(0.4).matrix(4, 9, &mut rng);
        let a = SparseSpec::random(0.4).matrix(9, 5, &mut rng);
        let run = run(&ArrayGeometry::scalar(4, 5), false, &w, &a);
        assert_eq!(run.result, gemm_ref(&w, &a));
    }

    #[test]
    fn measured_cycles_match_closed_form() {
        let mut rng = StdRng::seed_from_u64(2);
        for (m, k, n) in [(1, 1, 1), (2, 5, 3), (4, 16, 4), (8, 7, 2)] {
            let w = SparseSpec::dense().matrix(m, k, &mut rng);
            let a = SparseSpec::dense().matrix(k, n, &mut rng);
            let r = run(&ArrayGeometry::scalar(m, n), false, &w, &a);
            assert_eq!(r.events.cycles, closed_form_cycles(k, m, n), "mismatch for {m}x{k}x{n}");
        }
    }

    #[test]
    fn zvcg_gates_zero_products() {
        let w = Matrix::from_vec(1, 4, vec![1, 0, 2, 0]);
        let a = Matrix::from_vec(4, 1, vec![0, 5, 3, 0]);
        let plain = run(&ArrayGeometry::scalar(1, 1), false, &w, &a);
        let gated = run(&ArrayGeometry::scalar(1, 1), true, &w, &a);
        assert_eq!(plain.result, gated.result);
        assert_eq!(plain.events.macs_idle, 3);
        assert_eq!(gated.events.macs_gated, 3);
        assert_eq!(plain.events.macs_active, 1);
        // ZVCG also gates the accumulator write.
        assert_eq!(gated.events.acc_updates, 1);
        assert_eq!(plain.events.acc_updates, 4);
    }

    #[test]
    fn all_issued_macs_accounted() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = SparseSpec::random(0.5).matrix(3, 8, &mut rng);
        let a = SparseSpec::random(0.5).matrix(8, 3, &mut rng);
        let r = run(&ArrayGeometry::scalar(3, 3), false, &w, &a);
        assert_eq!(r.events.macs_issued(), 3 * 8 * 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_matches_reference_and_formula(
            m in 1usize..6,
            k in 1usize..20,
            n in 1usize..6,
            seed in any::<u64>(),
            zvcg in any::<bool>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let w = SparseSpec::random(0.5).matrix(m, k, &mut rng);
            let a = SparseSpec::random(0.5).matrix(k, n, &mut rng);
            let r = run(&ArrayGeometry::scalar(m, n), zvcg, &w, &a);
            prop_assert_eq!(&r.result, &gemm_ref(&w, &a));
            prop_assert_eq!(r.events.cycles, closed_form_cycles(k, m, n));
        }
    }
}
