//! Tensor PE (TPE) datapaths: `S2TA-W` (DP4M8 dot-product) and the
//! time-unrolled `S2TA-AW` (DP1M4 outer-product) — paper Sec. 4-6.
//!
//! Both consume DBB-compressed operands and compute the exact INT8 GEMM
//! of the (pruned) matrices through the mask/mux logic of Fig. 6c/6e:
//!
//! * **W-DBB (DP4M8)** — each dot-product unit holds the `B` compressed
//!   weight values of one block; per cycle the `M8` muxes steer the
//!   activation element at each weight's position into its MAC. One
//!   weight block (`BZ` reduction positions) completes per cycle — `2x`
//!   throughput for 4/8 weights — with a dense fall-back of
//!   `BZ/B` cycles per block.
//! * **A/W-DBB time-unrolled (DP1M4)** — the activation block's stored
//!   elements are serialized one per cycle; the `M4` mux selects the
//!   weight whose position matches, firing the single MAC when the
//!   weight mask hits and clock-gating otherwise. Cycles per block equal
//!   the layer's activation NNZ — variable density at constant
//!   utilization (Sec. 5.2).

use crate::profile::{active_macs, ColStripProfile, RowStripProfile};
use crate::{ArrayGeometry, EventCounts, GemmRun};
use s2ta_dbb::{BlockAxis, DbbMatrix};
use s2ta_tensor::{AccMatrix, Matrix};

/// Cycles the DP`B`M`BZ` dot-product datapath spends per weight block:
/// one for genuinely bounded blocks, `ceil(BZ/B)` for the dense
/// fall-back (paper Sec. 4).
fn wdbb_cycles_per_block(geom: &ArrayGeometry, w: &DbbMatrix) -> u64 {
    if w.config().is_dense() {
        geom.bz.div_ceil(geom.b) as u64
    } else {
        1
    }
}

fn check_wdbb(geom: &ArrayGeometry, w: &DbbMatrix) {
    assert_eq!(w.axis(), BlockAxis::Rows, "weights must be row-blocked");
    assert_eq!(w.config().bz(), geom.bz, "weight block size must match array");
    assert!(
        w.config().nnz() <= geom.b || w.config().is_dense(),
        "weight NNZ {} exceeds hardware slots {} (and is not the dense fall-back)",
        w.config().nnz(),
        geom.b
    );
}

/// Shared SRAM/MCU accounting. `w_bytes`/`a_bytes` are the per-pass
/// operand footprints (compressed where applicable); `write_ratio`
/// scales the output write traffic (S2TA-AW writes activations back in
/// compressed DBB form after DAP — Fig. 7a places DAP on the store
/// path; we proxy the next layer's density with the current one's).
pub(crate) fn sram_events(
    geom: &ArrayGeometry,
    rows: usize,
    cols: usize,
    w_bytes: usize,
    a_bytes: usize,
    write_ratio: f64,
) -> EventCounts {
    let walk = geom.tile_walk(rows, cols);
    let outputs = (rows * cols) as u64;
    EventCounts {
        weight_sram_bytes: (w_bytes * walk.col_strips()) as u64,
        act_sram_read_bytes: (a_bytes * walk.row_strips()) as u64,
        act_sram_write_bytes: (outputs as f64 * write_ratio).round() as u64,
        mcu_elements: outputs,
        ..EventCounts::default()
    }
}

/// Operand pipeline-register traffic for one tile of a TPE array.
///
/// Weight blocks hop east across the active TPE columns; activation
/// streams hop south across the active TPE rows. This is the data-reuse
/// win of the TPE (Sec. 6.1): bytes-per-MAC shrink by `1/(A*...)`
/// because each operand arriving at a TPE feeds `A*C` (or `A*C*B`) MACs.
pub(crate) fn operand_reg_bytes(
    geom: &ArrayGeometry,
    rows_eff: usize,
    cols_eff: usize,
    w_tile_bytes: u64,
    a_tile_bytes: u64,
) -> u64 {
    let active_tpe_cols = cols_eff.div_ceil(geom.a) as u64;
    let active_tpe_rows = rows_eff.div_ceil(geom.c) as u64;
    w_tile_bytes * active_tpe_cols + a_tile_bytes * active_tpe_rows
}

/// Runs `S2TA-W`: 4/8 W-DBB weights against **dense** activations on a
/// dot-product TPE array, functionally (through the mask/mux logic).
///
/// # Panics
///
/// Panics if the weight blocking does not match the geometry or the
/// dims disagree.
pub fn run_wdbb(geom: &ArrayGeometry, w: &DbbMatrix, a: &Matrix) -> GemmRun {
    check_wdbb(geom, w);
    let (m_rows, k) = w.shape();
    assert_eq!(k, a.rows(), "GEMM inner dims mismatch");
    let bz = geom.bz;
    let blocks_k = k.div_ceil(bz);
    let cpb = wdbb_cycles_per_block(geom, w);

    let mut acc = AccMatrix::zeros(m_rows, a.cols());
    let mut events = sram_events(geom, m_rows, a.cols(), w.storage_bytes(), a.len(), 1.0);

    for (rows, cols) in geom.tile_walk(m_rows, a.cols()) {
        events.cycles += blocks_k as u64 * cpb + geom.skew_cycles();
        let (re, ce) = (rows.len(), cols.len());
        for i in rows.clone() {
            let wvec = &w.vectors()[i];
            for (bi, block) in wvec.blocks().iter().enumerate() {
                // Issue: B MAC slots per block-cycle per output.
                let issued_per_output = geom.b as u64 * cpb;
                for j in cols.clone() {
                    let mut active_here = 0u64;
                    for (pos, wv) in block.nonzeros() {
                        let p = bi * bz + pos;
                        if p >= k {
                            continue; // tail padding past the real K
                        }
                        let av = a.get(p, j);
                        if av != 0 {
                            active_here += 1;
                            let cur = acc.get(i, j);
                            acc.set(i, j, cur + wv as i32 * av as i32);
                        }
                    }
                    events.macs_active += active_here;
                    events.macs_gated += issued_per_output - active_here;
                }
            }
            // One adder-tree accumulator update per DP unit per block-cycle.
            events.acc_updates += blocks_k as u64 * cpb * ce as u64;
        }
        let issued = re as u64 * ce as u64 * blocks_k as u64 * geom.b as u64 * cpb;
        events.mux_selects += issued;
        let w_tile_bytes = (re * blocks_k * w.config().block_bytes()) as u64;
        let a_tile_bytes = (ce * k) as u64;
        events.operand_reg_bytes += operand_reg_bytes(geom, re, ce, w_tile_bytes, a_tile_bytes);
    }
    GemmRun { result: acc, events }
}

/// Event-only fast path for `S2TA-W`; identical counts to [`run_wdbb`].
pub fn run_wdbb_perf(geom: &ArrayGeometry, w: &DbbMatrix, a: &Matrix) -> EventCounts {
    // Profile the compressed weights straight from their block masks —
    // no `decompress()` scratch matrix in the perf path.
    let wp = RowStripProfile::of_dbb(w, geom.tile_rows());
    let ap = ColStripProfile::new(a, geom.tile_cols());
    run_wdbb_perf_profiled(geom, w, a.cols(), &wp, &ap)
}

/// Matrix-free event path for `S2TA-W`: identical counts to
/// [`run_wdbb`] / [`run_wdbb_perf`], computed from precompiled strip
/// profiles without touching the dense activation matrix. `wp` must
/// profile `w.decompress()` at `geom.tile_rows()` strips, `ap` the
/// dense `k x n_cols` activation at `geom.tile_cols()` strips.
///
/// # Panics
///
/// Panics if the weight blocking does not match the geometry or the
/// profiles do not cover the stated dimensions.
pub fn run_wdbb_perf_profiled(
    geom: &ArrayGeometry,
    w: &DbbMatrix,
    n_cols: usize,
    wp: &RowStripProfile,
    ap: &ColStripProfile,
) -> EventCounts {
    let mut events = EventCounts::new();
    run_wdbb_perf_profiled_into(geom, w, n_cols, wp, ap, &mut events);
    events
}

/// [`run_wdbb_perf_profiled`] accumulating into a caller-owned tally —
/// the allocation-free form for hot loops that sum events across layers
/// and requests without materializing intermediate counts.
///
/// # Panics
///
/// Same contract as [`run_wdbb_perf_profiled`].
pub fn run_wdbb_perf_profiled_into(
    geom: &ArrayGeometry,
    w: &DbbMatrix,
    n_cols: usize,
    wp: &RowStripProfile,
    ap: &ColStripProfile,
    events: &mut EventCounts,
) {
    check_wdbb(geom, w);
    let (m_rows, k) = w.shape();
    let blocks_k = k.div_ceil(geom.bz);
    let cpb = wdbb_cycles_per_block(geom, w);
    let walk = geom.tile_walk(m_rows, n_cols);
    assert_eq!(wp.strips(), walk.row_strips(), "weight profile strip count mismatch");
    assert_eq!(ap.strips(), walk.col_strips(), "activation profile strip count mismatch");
    assert_eq!(wp.strip(0).len(), k, "weight profile reduction length mismatch");
    assert_eq!(ap.strip(0).len(), k, "activation profile reduction length mismatch");

    *events += sram_events(geom, m_rows, n_cols, w.storage_bytes(), k * n_cols, 1.0);
    for rs in 0..walk.row_strips() {
        let re = (m_rows - rs * geom.tile_rows()).min(geom.tile_rows());
        for cs in 0..walk.col_strips() {
            let ce = (n_cols - cs * geom.tile_cols()).min(geom.tile_cols());
            events.cycles += blocks_k as u64 * cpb + geom.skew_cycles();
            let active = active_macs(wp.strip(rs), ap.strip(cs));
            let issued = (re * ce * blocks_k * geom.b) as u64 * cpb;
            events.macs_active += active;
            events.macs_gated += issued - active;
            events.acc_updates += (re * ce * blocks_k) as u64 * cpb;
            events.mux_selects += issued;
            let w_tile_bytes = (re * blocks_k * w.config().block_bytes()) as u64;
            let a_tile_bytes = (ce * k) as u64;
            events.operand_reg_bytes += operand_reg_bytes(geom, re, ce, w_tile_bytes, a_tile_bytes);
        }
    }
}

fn check_aw(geom: &ArrayGeometry, w: &DbbMatrix, a: &DbbMatrix) {
    check_wdbb(geom, w);
    assert_eq!(a.axis(), BlockAxis::Cols, "activations must be column-blocked");
    assert_eq!(a.config().bz(), geom.bz, "activation block size must match array");
    assert_eq!(w.shape().1, a.shape().0, "GEMM inner dims mismatch");
}

/// Runs time-unrolled `S2TA-AW`: joint A/W-DBB on a DP1M4 outer-product
/// TPE array. Cycles per activation block equal the stored NNZ
/// (`a.config().nnz()`, or `BZ` for the dense fall-back).
///
/// # Panics
///
/// Panics if the blockings do not match the geometry or dims disagree.
pub fn run_aw(geom: &ArrayGeometry, w: &DbbMatrix, a: &DbbMatrix) -> GemmRun {
    check_aw(geom, w, a);
    let (m_rows, k) = w.shape();
    let n_cols = a.shape().1;
    let bz = geom.bz;
    let blocks_k = k.div_ceil(bz);
    // Cycles per block: one per stored activation slot, doubled when the
    // weight block is dense (8 values through 4 mux slots = two passes).
    let wpasses = if w.config().is_dense() { geom.bz.div_ceil(geom.b) as u64 } else { 1 };
    let serial = a.config().nnz() as u64 * wpasses;

    let mut acc = AccMatrix::zeros(m_rows, n_cols);
    let write_ratio = a.config().block_bytes() as f64 / a.config().bz() as f64;
    let mut events =
        sram_events(geom, m_rows, n_cols, w.storage_bytes(), a.storage_bytes(), write_ratio);

    for (rows, cols) in geom.tile_walk(m_rows, n_cols) {
        events.cycles += blocks_k as u64 * serial + geom.skew_cycles();
        let (re, ce) = (rows.len(), cols.len());
        for i in rows.clone() {
            let wvec = &w.vectors()[i];
            for j in cols.clone() {
                let avec = &a.vectors()[j];
                for (bi, ablock) in avec.blocks().iter().enumerate() {
                    let wblock = &wvec.blocks()[bi];
                    // Serialize the stored activation slots: each is one
                    // issue cycle of the DP1M4 unit.
                    let mut active_here = 0u64;
                    for (pos, av) in ablock.nonzeros() {
                        // The M4 mux resolves the weight at this position.
                        let wv = wblock.value_at(pos);
                        if wv != 0 {
                            active_here += 1;
                            let cur = acc.get(i, j);
                            acc.set(i, j, cur + wv as i32 * av as i32);
                        }
                    }
                    events.macs_active += active_here;
                    events.macs_gated += serial - active_here;
                    events.acc_updates += active_here;
                }
            }
        }
        let issued = (re * ce * blocks_k) as u64 * serial;
        events.mux_selects += issued;
        let w_tile_bytes = (re * blocks_k * w.config().block_bytes()) as u64;
        let a_tile_bytes = (ce * blocks_k * a.config().block_bytes()) as u64;
        events.operand_reg_bytes += operand_reg_bytes(geom, re, ce, w_tile_bytes, a_tile_bytes);
    }
    GemmRun { result: acc, events }
}

/// Event-only fast path for `S2TA-AW`; identical counts to [`run_aw`].
pub fn run_aw_perf(geom: &ArrayGeometry, w: &DbbMatrix, a: &DbbMatrix) -> EventCounts {
    check_aw(geom, w, a);
    // Both operands are profiled straight from their block masks — no
    // `decompress()` scratch matrices in the perf path.
    let wp = RowStripProfile::of_dbb(w, geom.tile_rows());
    let ap = ColStripProfile::of_dbb(a, geom.tile_cols());
    run_aw_perf_profiled(geom, w, a.shape().1, a.config(), &wp, &ap)
}

/// Matrix-free event path for `S2TA-AW`: identical counts to [`run_aw`]
/// / [`run_aw_perf`], computed without ever materializing (or
/// decompressing) the A-DBB activation matrix. The activation operand
/// is described by its column count, its DBB configuration (which fixes
/// the per-block serialization and the compressed storage footprint:
/// every column carries `ceil(k / bz)` blocks of
/// `config.block_bytes()`), and the post-DAP column-strip profile `ap`
/// at `geom.tile_cols()` strips (derivable straight from the dense
/// activation via `s2ta_dbb::dap::dap_col_profile`). `wp` must profile
/// `w.decompress()` at `geom.tile_rows()` strips.
///
/// # Panics
///
/// Panics if the blockings do not match the geometry or the profiles
/// do not cover the stated dimensions.
pub fn run_aw_perf_profiled(
    geom: &ArrayGeometry,
    w: &DbbMatrix,
    n_cols: usize,
    a_config: s2ta_dbb::DbbConfig,
    wp: &RowStripProfile,
    ap: &ColStripProfile,
) -> EventCounts {
    let mut events = EventCounts::new();
    run_aw_perf_profiled_into(geom, w, n_cols, a_config, wp, ap, &mut events);
    events
}

/// [`run_aw_perf_profiled`] accumulating into a caller-owned tally —
/// the allocation-free form for hot loops.
///
/// # Panics
///
/// Same contract as [`run_aw_perf_profiled`].
pub fn run_aw_perf_profiled_into(
    geom: &ArrayGeometry,
    w: &DbbMatrix,
    n_cols: usize,
    a_config: s2ta_dbb::DbbConfig,
    wp: &RowStripProfile,
    ap: &ColStripProfile,
    events: &mut EventCounts,
) {
    check_wdbb(geom, w);
    assert_eq!(a_config.bz(), geom.bz, "activation block size must match array");
    let (m_rows, k) = w.shape();
    let blocks_k = k.div_ceil(geom.bz);
    let wpasses = if w.config().is_dense() { geom.bz.div_ceil(geom.b) as u64 } else { 1 };
    let serial = a_config.nnz() as u64 * wpasses;
    let walk = geom.tile_walk(m_rows, n_cols);
    assert_eq!(wp.strips(), walk.row_strips(), "weight profile strip count mismatch");
    assert_eq!(ap.strips(), walk.col_strips(), "activation profile strip count mismatch");
    assert_eq!(wp.strip(0).len(), k, "weight profile reduction length mismatch");
    assert_eq!(ap.strip(0).len(), k, "activation profile reduction length mismatch");

    let a_storage_bytes = n_cols * blocks_k * a_config.block_bytes();
    let write_ratio = a_config.block_bytes() as f64 / a_config.bz() as f64;
    *events += sram_events(geom, m_rows, n_cols, w.storage_bytes(), a_storage_bytes, write_ratio);
    for rs in 0..walk.row_strips() {
        let re = (m_rows - rs * geom.tile_rows()).min(geom.tile_rows());
        for cs in 0..walk.col_strips() {
            let ce = (n_cols - cs * geom.tile_cols()).min(geom.tile_cols());
            events.cycles += blocks_k as u64 * serial + geom.skew_cycles();
            let active = active_macs(wp.strip(rs), ap.strip(cs));
            let issued = (re * ce * blocks_k) as u64 * serial;
            events.macs_active += active;
            events.macs_gated += issued - active;
            events.acc_updates += active;
            events.mux_selects += issued;
            let w_tile_bytes = (re * blocks_k * w.config().block_bytes()) as u64;
            let a_tile_bytes = (ce * blocks_k * a_config.block_bytes()) as u64;
            events.operand_reg_bytes += operand_reg_bytes(geom, re, ce, w_tile_bytes, a_tile_bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use s2ta_dbb::dap::{dap_matrix, LayerNnz};
    use s2ta_dbb::{prune, DbbConfig};
    use s2ta_tensor::gemm_ref;
    use s2ta_tensor::sparsity::SparseSpec;

    fn small_geom() -> ArrayGeometry {
        ArrayGeometry::new(2, 4, 2, 2, 2, 8)
    }

    fn pruned_weights(m: usize, k: usize, seed: u64) -> (DbbMatrix, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let raw = SparseSpec::random(0.3).matrix(m, k, &mut rng);
        let dbb = prune::prune_and_compress(&raw, DbbConfig::new(4, 8));
        let dense = dbb.decompress();
        (dbb, dense)
    }

    #[test]
    fn wdbb_matches_reference_on_pruned_weights() {
        let (wdbb, wdense) = pruned_weights(6, 24, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let a = SparseSpec::random(0.5).matrix(24, 9, &mut rng);
        let run = run_wdbb(&small_geom(), &wdbb, &a);
        assert_eq!(run.result, gemm_ref(&wdense, &a));
    }

    #[test]
    fn wdbb_is_2x_faster_than_dense_blocks() {
        let (wdbb, wdense) = pruned_weights(4, 256, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let a = SparseSpec::dense().matrix(256, 4, &mut rng);
        let g = small_geom();
        let sparse = run_wdbb(&g, &wdbb, &a);
        let dense_blocks =
            s2ta_dbb::DbbMatrix::compress(&wdense, BlockAxis::Rows, DbbConfig::dense(8)).unwrap();
        let dense = run_wdbb(&g, &dense_blocks, &a);
        assert_eq!(sparse.result, dense.result);
        let speed = dense.events.cycles as f64 / sparse.events.cycles as f64;
        assert!(speed > 1.8, "expected ~2x from 4/8 W-DBB, got {speed:.2}");
    }

    #[test]
    fn aw_matches_reference_on_jointly_pruned_operands() {
        let (wdbb, wdense) = pruned_weights(5, 40, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let araw = SparseSpec::random(0.4).matrix(40, 7, &mut rng);
        let (adbb, _) = dap_matrix(&araw, 8, LayerNnz::Prune(3));
        let adense = adbb.decompress();
        let run = run_aw(&small_geom(), &wdbb, &adbb);
        assert_eq!(run.result, gemm_ref(&wdense, &adense));
    }

    #[test]
    fn aw_speedup_scales_with_activation_nnz() {
        // Paper Fig. 9d: speedup = BZ / NNZ_a, independent of weights.
        let (wdbb, _) = pruned_weights(4, 512, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let araw = SparseSpec::random(0.2).matrix(512, 4, &mut rng);
        let g = small_geom();
        let mut cycles = Vec::new();
        for nnz in [1, 2, 4] {
            let (adbb, _) = dap_matrix(&araw, 8, LayerNnz::Prune(nnz));
            cycles.push(run_aw(&g, &wdbb, &adbb).events.cycles);
        }
        let (adense, _) = dap_matrix(&araw, 8, LayerNnz::Dense);
        let dense_cycles = run_aw(&g, &wdbb, &adense).events.cycles as f64;
        // Skew is small relative to 8 blocks; allow 15% tolerance.
        for (i, nnz) in [1u64, 2, 4].iter().enumerate() {
            let expected = 8.0 / *nnz as f64;
            let got = dense_cycles / cycles[i] as f64;
            assert!(
                (got - expected).abs() / expected < 0.15,
                "nnz {nnz}: expected ~{expected}x, got {got:.2}x"
            );
        }
    }

    #[test]
    fn aw_weight_sparsity_gates_but_does_not_speed_up() {
        let mut rng = StdRng::seed_from_u64(9);
        let w_sparse_raw = SparseSpec::random(0.8).matrix(4, 32, &mut rng);
        let w_dense_raw = SparseSpec::random(0.0).matrix(4, 32, &mut rng);
        let araw = SparseSpec::random(0.5).matrix(32, 4, &mut rng);
        let (adbb, _) = dap_matrix(&araw, 8, LayerNnz::Prune(4));
        let g = small_geom();
        let cfg = DbbConfig::new(4, 8);
        let r_sparse = run_aw(&g, &prune::prune_and_compress(&w_sparse_raw, cfg), &adbb);
        let r_dense = run_aw(&g, &prune::prune_and_compress(&w_dense_raw, cfg), &adbb);
        assert_eq!(r_sparse.events.cycles, r_dense.events.cycles);
        assert!(r_sparse.events.macs_gated > r_dense.events.macs_gated);
    }

    #[test]
    fn perf_paths_match_functional() {
        let (wdbb, _) = pruned_weights(10, 48, 10);
        let mut rng = StdRng::seed_from_u64(11);
        let a = SparseSpec::random(0.6).matrix(48, 13, &mut rng);
        let g = small_geom();
        assert_eq!(run_wdbb(&g, &wdbb, &a).events, run_wdbb_perf(&g, &wdbb, &a));
        let (adbb, _) = dap_matrix(&a, 8, LayerNnz::Prune(2));
        assert_eq!(run_aw(&g, &wdbb, &adbb).events, run_aw_perf(&g, &wdbb, &adbb));
    }

    #[test]
    fn compressed_weight_sram_traffic_is_reduced() {
        let (wdbb, wdense) = pruned_weights(8, 64, 12);
        let mut rng = StdRng::seed_from_u64(13);
        // 4 output columns = a single column strip: weights read once.
        let a = SparseSpec::dense().matrix(64, 4, &mut rng);
        let g = small_geom();
        let sparse_run = run_wdbb(&g, &wdbb, &a);
        // 4/8 blocks: 5 bytes per 8 -> 37.5% reduction (paper Sec. 4).
        let expected = (wdense.len() as f64 * 5.0 / 8.0) as u64;
        assert_eq!(sparse_run.events.weight_sram_bytes, expected);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_aw_functional_equals_reference(
            m in 1usize..8,
            kb in 1usize..6,
            n in 1usize..8,
            wsp in 0.0f64..0.9,
            asp in 0.0f64..0.9,
            annz in 1usize..=5,
            seed in any::<u64>(),
        ) {
            let k = kb * 8;
            let mut rng = StdRng::seed_from_u64(seed);
            let wraw = SparseSpec::random(wsp).matrix(m, k, &mut rng);
            let araw = SparseSpec::random(asp).matrix(k, n, &mut rng);
            let wdbb = prune::prune_and_compress(&wraw, DbbConfig::new(4, 8));
            let (adbb, _) = dap_matrix(&araw, 8, LayerNnz::Prune(annz));
            let g = small_geom();
            let run = run_aw(&g, &wdbb, &adbb);
            prop_assert_eq!(&run.result, &gemm_ref(&wdbb.decompress(), &adbb.decompress()));
            prop_assert_eq!(run.events, run_aw_perf(&g, &wdbb, &adbb));
        }
    }
}
