//! SMT-SA: a systolic array exploiting unstructured sparsity with
//! operand staging FIFOs (our INT8 re-implementation of Shomron et al.,
//! used as the `SA-SMT` baseline — paper Sec. 2.2, 7, Fig. 2a).
//!
//! Each scalar PE receives `T` operand pairs per delivery (T independent,
//! interleaved reduction streams). Pairs with a zero operand are
//! discarded at the input; non-zero pairs are pushed into a depth-`Q`
//! FIFO that a single MAC drains at one pair per cycle. Delivery is
//! lockstep across the array: if **any** PE's FIFO cannot accept its
//! incoming pairs, the whole array stalls for a cycle (backpressure).
//! This is the load-imbalance cost of unstructured sparsity that DBB
//! designs avoid — the FIFOs buy speedup but their push/pop energy
//! (`fifo_bytes`) makes SMT *less* energy-efficient than `SA-ZVCG`
//! (paper Fig. 3, Fig. 10).

use crate::profile::{active_macs, ColStripProfile, RowStripProfile};
use crate::{ArrayGeometry, EventCounts, GemmRun};
use s2ta_tensor::{AccMatrix, Matrix};

/// SMT configuration: thread count and FIFO depth.
///
/// The paper evaluates `T2Q2` and `T2Q4`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SmtConfig {
    /// Operand pairs delivered per PE per delivery step.
    pub threads: usize,
    /// FIFO capacity in operand pairs.
    pub queue_depth: usize,
}

impl SmtConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`, `queue_depth == 0`, or
    /// `threads > queue_depth` (delivery to an empty FIFO must fit,
    /// otherwise the array deadlocks).
    pub fn new(threads: usize, queue_depth: usize) -> Self {
        assert!(threads > 0 && queue_depth > 0, "SMT parameters must be non-zero");
        assert!(
            threads <= queue_depth,
            "threads {threads} exceed queue depth {queue_depth}: deadlock"
        );
        Self { threads, queue_depth }
    }

    /// The paper's `T2Q2` variant.
    pub fn t2q2() -> Self {
        Self::new(2, 2)
    }

    /// The paper's `T2Q4` variant.
    pub fn t2q4() -> Self {
        Self::new(2, 4)
    }
}

impl std::fmt::Display for SmtConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}Q{}", self.threads, self.queue_depth)
    }
}

/// Reusable backing storage for [`TileTiming::simulate`], so the
/// sampled-timing loop allocates nothing in steady state: `arrivals`
/// and `queues` keep their capacity across tiles, columns and calls.
/// Contents are overwritten per use and never carry information
/// between tiles.
#[derive(Debug, Default)]
pub struct SmtScratch {
    arrivals: Vec<u8>,
    queues: Vec<u32>,
}

impl SmtScratch {
    /// A fresh, empty scratch (buffers grow to steady size on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Total capacity currently retained, in bytes — diagnostic only.
    pub fn retained_bytes(&self) -> usize {
        self.arrivals.capacity() + 4 * self.queues.capacity()
    }
}

/// Per-tile simulation state: FIFO occupancy only (values are resolved
/// functionally outside the timing loop — FIFO order does not change the
/// accumulated sum).
struct TileTiming<'m> {
    cfg: SmtConfig,
    w: &'m Matrix,
    a: &'m Matrix,
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
}

impl TileTiming<'_> {
    /// Simulates the delivery/drain dynamics, returning
    /// `(cycles, total_pushes)`.
    ///
    /// Backpressure is modelled **per column**: activations flow down a
    /// column, so a full FIFO anywhere in the column stalls that
    /// column's feed (lockstep within the column), while the FIFOs
    /// decouple columns from each other; the tile latency is the
    /// completion time of the slowest column. A deeper queue (`T2Q4`)
    /// absorbs arrival bursts that stall the column under `T2Q2`,
    /// reproducing the paper's Fig. 3 speedup gap.
    fn simulate(&self, scratch: &mut SmtScratch) -> (u64, u64) {
        let k = self.w.cols();
        let t = self.cfg.threads;
        let q_cap = self.cfg.queue_depth as u32;
        let steps = k.div_ceil(t);
        let nrows = self.rows.len();
        let mut pushes: u64 = 0;
        let mut worst: u64 = 0;
        // arrivals[step * nrows + row] for the current column.
        let arrivals = &mut scratch.arrivals;
        arrivals.clear();
        arrivals.resize(steps * nrows, 0);
        let queues = &mut scratch.queues;

        for j in self.cols.clone() {
            arrivals.fill(0);
            for (ri, i) in self.rows.clone().enumerate() {
                let wrow = self.w.row(i);
                for (p, &wv) in wrow.iter().enumerate() {
                    if wv != 0 && self.a.get(p, j) != 0 {
                        arrivals[(p / t) * nrows + ri] += 1;
                        pushes += 1;
                    }
                }
            }
            queues.clear();
            queues.resize(nrows, 0);
            let mut cycles: u64 = 0;
            let mut step = 0usize;
            while step < steps || queues.iter().any(|&q| q > 0) {
                cycles += 1;
                for q in queues.iter_mut() {
                    *q = q.saturating_sub(1);
                }
                if step < steps {
                    let base = step * nrows;
                    let fits = queues
                        .iter()
                        .zip(&arrivals[base..base + nrows])
                        .all(|(&q, &inc)| q + inc as u32 <= q_cap);
                    if fits {
                        for (q, &inc) in queues.iter_mut().zip(&arrivals[base..base + nrows]) {
                            *q += inc as u32;
                        }
                        step += 1;
                    }
                }
            }
            worst = worst.max(cycles);
        }
        (worst, pushes)
    }
}

/// Runs the GEMM on an SMT-SA: functional result plus simulated timing
/// (FIFO backpressure included).
///
/// # Panics
///
/// Panics if the geometry is not scalar or the dims disagree.
pub fn run(geom: &ArrayGeometry, cfg: SmtConfig, w: &Matrix, a: &Matrix) -> GemmRun {
    run_inner(geom, cfg, w, a, usize::MAX)
}

/// Like [`run`] but simulates the FIFO timing of at most `sample_tiles`
/// tiles, extrapolating the mean simulated cycles-per-tile to the rest.
/// All non-timing events stay exact. Use for full-model sweeps where
/// simulating every tile is wasteful.
///
/// # Panics
///
/// Panics if `sample_tiles == 0`, the geometry is not scalar, or dims
/// disagree.
pub fn run_sampled(
    geom: &ArrayGeometry,
    cfg: SmtConfig,
    w: &Matrix,
    a: &Matrix,
    sample_tiles: usize,
) -> GemmRun {
    assert!(sample_tiles > 0, "must sample at least one tile");
    run_inner(geom, cfg, w, a, sample_tiles)
}

/// Events-only fast path for the SMT-SA: identical [`EventCounts`] to
/// [`run_sampled`] (asserted by tests), with the non-timing counts
/// taken from precompiled strip profiles instead of the functional
/// accumulation loop. `wp` must profile `w` at `geom.tile_rows()`
/// strips, `ap` must profile `a` at `geom.tile_cols()` strips.
///
/// Unlike the DBB datapaths, the SMT FIFO *timing* is inherently
/// position-dependent (backpressure follows the joint non-zero layout
/// of both operands, not their per-strip counts), so the sampled tiles
/// still simulate against the dense matrices; the profiles remove the
/// `O(M*K*N)` functional pass that dominated [`run_sampled`] on the
/// events-only path.
///
/// # Panics
///
/// Panics if `sample_tiles == 0`, the geometry is not scalar, dims
/// disagree, or the profiles do not cover the operands.
pub fn run_sampled_profiled(
    geom: &ArrayGeometry,
    cfg: SmtConfig,
    w: &Matrix,
    a: &Matrix,
    sample_tiles: usize,
    wp: &RowStripProfile,
    ap: &ColStripProfile,
) -> EventCounts {
    let mut events = EventCounts::new();
    run_sampled_profiled_into(
        geom,
        cfg,
        w,
        a,
        sample_tiles,
        wp,
        ap,
        &mut events,
        &mut SmtScratch::new(),
    );
    events
}

/// [`run_sampled_profiled`] accumulating into a caller-owned tally and
/// simulating tile timing out of a caller-owned [`SmtScratch`] — the
/// allocation-free form for hot loops.
///
/// # Panics
///
/// Same contract as [`run_sampled_profiled`].
#[allow(clippy::too_many_arguments)]
pub fn run_sampled_profiled_into(
    geom: &ArrayGeometry,
    cfg: SmtConfig,
    w: &Matrix,
    a: &Matrix,
    sample_tiles: usize,
    wp: &RowStripProfile,
    ap: &ColStripProfile,
    events: &mut EventCounts,
    scratch: &mut SmtScratch,
) {
    assert!(sample_tiles > 0, "must sample at least one tile");
    assert_eq!((geom.a, geom.b, geom.c), (1, 1, 1), "SMT runner is scalar only");
    assert_eq!(w.cols(), a.rows(), "GEMM inner dims mismatch");
    let k = w.cols();
    let walk = geom.tile_walk(w.rows(), a.cols());
    let (total_tiles, col_strips) = (walk.tiles(), walk.col_strips());
    assert_eq!(wp.strips(), walk.row_strips(), "weight profile strip count mismatch");
    assert_eq!(ap.strips(), col_strips, "activation profile strip count mismatch");
    assert_eq!(wp.strip(0).len(), k, "weight profile reduction length mismatch");
    assert_eq!(ap.strip(0).len(), k, "activation profile reduction length mismatch");
    let outputs = (w.rows() * a.cols()) as u64;
    *events += EventCounts {
        weight_sram_bytes: (w.len() * walk.col_strips()) as u64,
        act_sram_read_bytes: (a.len() * walk.row_strips()) as u64,
        act_sram_write_bytes: outputs,
        mcu_elements: outputs,
        ..EventCounts::default()
    };

    let mut simulated_cycles: u64 = 0;
    let mut simulated = 0usize;
    for (ti, (rows, cols)) in geom.tile_walk(w.rows(), a.cols()).enumerate() {
        let active = active_macs(wp.strip(ti / col_strips), ap.strip(ti % col_strips));
        events.macs_active += active;
        events.acc_updates += active;
        events.fifo_bytes += 4 * active;
        events.operand_reg_bytes += 2 * (rows.len() * k * cols.len()) as u64;
        if ti < sample_tiles {
            let timing = TileTiming { cfg, w, a, rows, cols };
            let (cycles, pushes) = timing.simulate(scratch);
            debug_assert_eq!(pushes, active);
            simulated_cycles += cycles + geom.skew_cycles();
            simulated += 1;
        }
    }
    events.cycles += extrapolate_cycles(simulated_cycles, simulated, total_tiles);
}

/// Total-cycle estimate from `simulated` tiles' summed latency: exact
/// when every tile was simulated, mean-extrapolated otherwise. Shared
/// by the functional and profiled paths so their rounding is identical.
fn extrapolate_cycles(simulated_cycles: u64, simulated: usize, total_tiles: usize) -> u64 {
    if simulated == total_tiles {
        simulated_cycles
    } else {
        let mean = simulated_cycles as f64 / simulated as f64;
        (mean * total_tiles as f64).round() as u64
    }
}

fn run_inner(
    geom: &ArrayGeometry,
    cfg: SmtConfig,
    w: &Matrix,
    a: &Matrix,
    sample_tiles: usize,
) -> GemmRun {
    assert_eq!((geom.a, geom.b, geom.c), (1, 1, 1), "SMT runner is scalar only");
    assert_eq!(w.cols(), a.rows(), "GEMM inner dims mismatch");
    let k = w.cols();
    let mut acc = AccMatrix::zeros(w.rows(), a.cols());
    let walk = geom.tile_walk(w.rows(), a.cols());
    let total_tiles = walk.tiles();
    let outputs = (w.rows() * a.cols()) as u64;
    let mut events = EventCounts {
        weight_sram_bytes: (w.len() * walk.col_strips()) as u64,
        act_sram_read_bytes: (a.len() * walk.row_strips()) as u64,
        act_sram_write_bytes: outputs,
        mcu_elements: outputs,
        ..EventCounts::default()
    };

    let mut simulated_cycles: u64 = 0;
    let mut simulated = 0usize;
    let mut scratch = SmtScratch::new();
    for (ti, (rows, cols)) in geom.tile_walk(w.rows(), a.cols()).enumerate() {
        // Functional accumulation + exact non-timing events.
        let mut active: u64 = 0;
        for i in rows.clone() {
            let wrow = w.row(i);
            for j in cols.clone() {
                let mut sum = 0i32;
                for (p, &wv) in wrow.iter().enumerate() {
                    let av = a.get(p, j);
                    if wv != 0 && av != 0 {
                        sum += wv as i32 * av as i32;
                        active += 1;
                    }
                }
                acc.set(i, j, sum);
            }
        }
        events.macs_active += active;
        events.acc_updates += active;
        // Push + pop of a 2-byte pair each: 4 bytes per queued pair.
        events.fifo_bytes += 4 * active;
        // Operands still stream through the full array fabric.
        events.operand_reg_bytes += 2 * (rows.len() * k * cols.len()) as u64;

        if ti < sample_tiles {
            let timing = TileTiming { cfg, w, a, rows, cols };
            let (cycles, pushes) = timing.simulate(&mut scratch);
            debug_assert_eq!(pushes, active);
            simulated_cycles += cycles + geom.skew_cycles();
            simulated += 1;
        }
    }
    events.cycles = extrapolate_cycles(simulated_cycles, simulated, total_tiles);
    GemmRun { result: acc, events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use s2ta_tensor::gemm_ref;
    use s2ta_tensor::sparsity::SparseSpec;

    fn pair(m: usize, k: usize, n: usize, sp: f64, seed: u64) -> (Matrix, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        (
            SparseSpec::random(sp).matrix(m, k, &mut rng),
            SparseSpec::random(sp).matrix(k, n, &mut rng),
        )
    }

    #[test]
    fn computes_exact_gemm() {
        let (w, a) = pair(6, 40, 6, 0.5, 1);
        let r = run(&ArrayGeometry::scalar(4, 4), SmtConfig::t2q2(), &w, &a);
        assert_eq!(r.result, gemm_ref(&w, &a));
    }

    #[test]
    fn sparse_streams_give_speedup_over_dense() {
        let g = ArrayGeometry::scalar(8, 8);
        let (wd, ad) = pair(8, 256, 8, 0.0, 2);
        let (ws, asp) = pair(8, 256, 8, 0.5, 3);
        let dense = run(&g, SmtConfig::t2q2(), &wd, &ad);
        let sparse = run(&g, SmtConfig::t2q2(), &ws, &asp);
        let speedup = dense.events.cycles as f64 / sparse.events.cycles as f64;
        assert!(
            speedup > 1.3 && speedup <= 2.05,
            "50/50 sparsity with T2 should give 1.3-2x, got {speedup:.2}"
        );
    }

    #[test]
    fn deeper_queue_is_not_slower() {
        let g = ArrayGeometry::scalar(8, 8);
        let (w, a) = pair(8, 256, 8, 0.5, 4);
        let q2 = run(&g, SmtConfig::t2q2(), &w, &a);
        let q4 = run(&g, SmtConfig::t2q4(), &w, &a);
        assert!(q4.events.cycles <= q2.events.cycles);
        assert_eq!(q2.result, q4.result);
    }

    #[test]
    fn dense_throughput_matches_plain_sa() {
        // With fully dense operands every delivered pair is queued and the
        // MAC is the bottleneck: cycles ~= K per tile, like the dense SA.
        let g = ArrayGeometry::scalar(4, 4);
        let (w, a) = pair(4, 128, 4, 0.0, 5);
        let smt = run(&g, SmtConfig::t2q4(), &w, &a);
        let k = 128u64;
        assert!(
            smt.events.cycles >= k && smt.events.cycles <= k + 20,
            "dense SMT should be MAC-bound at ~K cycles, got {}",
            smt.events.cycles
        );
    }

    #[test]
    fn fifo_traffic_tracks_nonzero_products() {
        let (w, a) = pair(4, 64, 4, 0.5, 6);
        let r = run(&ArrayGeometry::scalar(4, 4), SmtConfig::t2q2(), &w, &a);
        assert_eq!(r.events.fifo_bytes, 4 * r.events.macs_active);
    }

    #[test]
    fn sampled_timing_is_close_to_full() {
        let (w, a) = pair(16, 96, 16, 0.5, 7);
        let g = ArrayGeometry::scalar(4, 4);
        let full = run(&g, SmtConfig::t2q2(), &w, &a);
        let sampled = run_sampled(&g, SmtConfig::t2q2(), &w, &a, 3);
        assert_eq!(full.result, sampled.result);
        let err = (full.events.cycles as f64 - sampled.events.cycles as f64).abs()
            / full.events.cycles as f64;
        assert!(err < 0.15, "sampled timing off by {:.1}%", err * 100.0);
    }

    #[test]
    fn profiled_events_match_sampled() {
        let g = ArrayGeometry::scalar(4, 4);
        let (w, a) = pair(16, 96, 16, 0.5, 9);
        let wp = RowStripProfile::new(&w, g.tile_rows());
        let ap = ColStripProfile::new(&a, g.tile_cols());
        for (cfg, sample) in
            [(SmtConfig::t2q2(), 1), (SmtConfig::t2q2(), 3), (SmtConfig::t2q4(), usize::MAX)]
        {
            let full = run_inner(&g, cfg, &w, &a, sample).events;
            let profiled = run_sampled_profiled(&g, cfg, &w, &a, sample, &wp, &ap);
            assert_eq!(full, profiled, "{cfg} sample={sample}");
        }
    }

    #[test]
    fn config_display_and_validation() {
        assert_eq!(SmtConfig::t2q2().to_string(), "T2Q2");
        assert_eq!(SmtConfig::t2q4().to_string(), "T2Q4");
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn overdelivery_config_rejected() {
        let _ = SmtConfig::new(4, 2);
    }
}
