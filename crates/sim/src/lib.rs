//! Cycle-level simulation of the S2TA accelerator family.
//!
//! This crate models the four systolic architectures the paper evaluates
//! (Sec. 7 "Baselines"), all normalized to 2048 INT8 hardware MACs:
//!
//! | Architecture | Datapath | Paper reference |
//! |---|---|---|
//! | `SA` / `SA-ZVCG` | scalar 1x1x1_32x64 output-stationary array, optional zero-value clock gating | Fig. 6a/6b |
//! | `SA-SMT` | scalar array + T-thread operand staging FIFOs (unstructured sparsity) | Fig. 2a, [Shomron et al.] |
//! | `S2TA-W` | 4x4x4_4x8 TPE array of DP4M8 dot-product units (4/8 W-DBB, dense activations) | Fig. 6c |
//! | `S2TA-AW` | 8x4x4_8x8 TPE array of time-unrolled DP1M4 units (joint A/W-DBB) | Fig. 6e, Fig. 7c |
//!
//! Every datapath is **functional**: it computes the actual INT8 GEMM
//! through its own mux/serialization logic and is asserted bit-exact
//! against [`s2ta_tensor::gemm_ref`]. Alongside the result, each run
//! produces [`EventCounts`] — the microarchitectural event tally the
//! energy model (`s2ta-energy`) converts to joules.
//!
//! Two fidelity levels are cross-validated: [`cycle_exact`] moves data
//! register-by-register (small arrays, used to validate the skew
//! formulas), while the tile-level runners in [`systolic`], [`tpe`] and
//! [`smt`] use the closed-form cycle maths plus exact per-operand event
//! counting, scaling to full CNN layers.
//!
//! # Example
//!
//! ```
//! use s2ta_sim::{ArrayGeometry, systolic};
//! use s2ta_tensor::{gemm_ref, Matrix};
//!
//! let w = Matrix::from_vec(2, 4, vec![1, 0, -2, 3, 4, 5, 0, 0]);
//! let a = Matrix::from_vec(4, 3, vec![1, 2, 3, 0, 1, 0, 2, 2, 2, 1, 1, 1]);
//! let geom = ArrayGeometry::scalar(2, 2);
//! let run = systolic::run(&geom, true, &w, &a); // ZVCG enabled
//! assert_eq!(run.result, gemm_ref(&w, &a));
//! assert!(run.events.macs_gated > 0); // zero operands were gated
//! ```
#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod events;
mod geometry;

pub mod cycle_exact;
pub mod profile;
pub mod smt;
pub mod systolic;
pub mod tpe;
pub mod tpe_exact;
pub mod tpe_wa;

pub use events::EventCounts;
pub use geometry::{ArrayGeometry, TileWalk};
pub use profile::{ColStripProfile, RowStripProfile};

use s2ta_tensor::AccMatrix;

/// The outcome of running one GEMM through a simulated datapath.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GemmRun {
    /// The computed output (bit-exact INT8 GEMM with i32 accumulation).
    pub result: AccMatrix,
    /// Microarchitectural event counts for the run.
    pub events: EventCounts,
}
