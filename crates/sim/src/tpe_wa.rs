//! The dual time-unrolled variant: **variable weight DBB, fixed
//! activation DBB** (paper Sec. 8.4, footnote 2: "S2TA time-unrolled
//! architecture can also be implemented to support variable weight DBB
//! sparsity and fixed activation DBB sparsity").
//!
//! Here the *weight* block's stored elements serialize one per cycle
//! through the single MAC, and the 4:1 mux resolves the **activation**
//! at each weight's position from a fixed-NNZ compressed activation
//! block. Cycles per block equal the weight NNZ, so speedup scales with
//! weight sparsity (1x..8x) while activations are pinned at a fixed
//! ratio — the mirror image of `S2TA-AW`. Useful for workloads with
//! aggressive weight pruning but stubborn activations (e.g. transformer
//! FC layers, whose GELU activations are denser than ReLU CNN maps).

use crate::profile::{active_macs, ColStripProfile, RowStripProfile};
use crate::{ArrayGeometry, EventCounts, GemmRun};
use s2ta_dbb::{BlockAxis, DbbMatrix};
use s2ta_tensor::AccMatrix;

fn check(geom: &ArrayGeometry, w: &DbbMatrix, a: &DbbMatrix) {
    assert_eq!(w.axis(), BlockAxis::Rows, "weights must be row-blocked");
    assert_eq!(a.axis(), BlockAxis::Cols, "activations must be column-blocked");
    assert_eq!(w.config().bz(), geom.bz, "weight block size must match array");
    assert_eq!(a.config().bz(), geom.bz, "activation block size must match array");
    assert!(
        a.config().nnz() <= geom.b || a.config().is_dense(),
        "activation NNZ {} exceeds the {} mux slots (and is not the dense fall-back)",
        a.config().nnz(),
        geom.b
    );
    assert_eq!(w.shape().1, a.shape().0, "GEMM inner dims mismatch");
}

/// Runs the weight-unrolled variant functionally: serialize each weight
/// block's stored slots; mux-select the activation at each position.
///
/// # Panics
///
/// Panics if blocking does not match the geometry or dims disagree.
pub fn run_wa(geom: &ArrayGeometry, w: &DbbMatrix, a: &DbbMatrix) -> GemmRun {
    check(geom, w, a);
    let (m_rows, k) = w.shape();
    let n_cols = a.shape().1;
    let blocks_k = k.div_ceil(geom.bz);
    // Dense activations need two mux passes (same argument as the
    // dense-weight fall-back of the A/W variant).
    let apasses = if a.config().is_dense() { geom.bz.div_ceil(geom.b) as u64 } else { 1 };
    let serial = w.config().nnz() as u64 * apasses;

    let mut acc = AccMatrix::zeros(m_rows, n_cols);
    let write_ratio = a.config().block_bytes() as f64 / a.config().bz() as f64;
    let mut events = crate::tpe::sram_events(
        geom,
        m_rows,
        n_cols,
        w.storage_bytes(),
        a.storage_bytes(),
        write_ratio,
    );

    for (rows, cols) in geom.tile_walk(m_rows, n_cols) {
        events.cycles += blocks_k as u64 * serial + geom.skew_cycles();
        let (re, ce) = (rows.len(), cols.len());
        for i in rows.clone() {
            let wvec = &w.vectors()[i];
            for j in cols.clone() {
                let avec = &a.vectors()[j];
                for (bi, wblock) in wvec.blocks().iter().enumerate() {
                    let ablock = &avec.blocks()[bi];
                    let mut active_here = 0u64;
                    for (pos, wv) in wblock.nonzeros() {
                        let av = ablock.value_at(pos);
                        if av != 0 {
                            active_here += 1;
                            let cur = acc.get(i, j);
                            acc.set(i, j, cur + wv as i32 * av as i32);
                        }
                    }
                    events.macs_active += active_here;
                    events.macs_gated += serial - active_here;
                    events.acc_updates += active_here;
                }
            }
        }
        let issued = (re * ce * blocks_k) as u64 * serial;
        events.mux_selects += issued;
        let w_tile_bytes = (re * blocks_k * w.config().block_bytes()) as u64;
        let a_tile_bytes = (ce * blocks_k * a.config().block_bytes()) as u64;
        events.operand_reg_bytes +=
            crate::tpe::operand_reg_bytes(geom, re, ce, w_tile_bytes, a_tile_bytes);
    }
    GemmRun { result: acc, events }
}

/// Event-only fast path; identical counts to [`run_wa`].
pub fn run_wa_perf(geom: &ArrayGeometry, w: &DbbMatrix, a: &DbbMatrix) -> EventCounts {
    check(geom, w, a);
    let (m_rows, k) = w.shape();
    let n_cols = a.shape().1;
    let blocks_k = k.div_ceil(geom.bz);
    let apasses = if a.config().is_dense() { geom.bz.div_ceil(geom.b) as u64 } else { 1 };
    let serial = w.config().nnz() as u64 * apasses;
    let dense_w = w.decompress();
    let dense_a = a.decompress();
    let wp = RowStripProfile::new(&dense_w, geom.tile_rows());
    let ap = ColStripProfile::new(&dense_a, geom.tile_cols());

    let write_ratio = a.config().block_bytes() as f64 / a.config().bz() as f64;
    let mut events = crate::tpe::sram_events(
        geom,
        m_rows,
        n_cols,
        w.storage_bytes(),
        a.storage_bytes(),
        write_ratio,
    );
    let walk = geom.tile_walk(m_rows, n_cols);
    for rs in 0..walk.row_strips() {
        let re = (m_rows - rs * geom.tile_rows()).min(geom.tile_rows());
        for cs in 0..walk.col_strips() {
            let ce = (n_cols - cs * geom.tile_cols()).min(geom.tile_cols());
            events.cycles += blocks_k as u64 * serial + geom.skew_cycles();
            let active = active_macs(wp.strip(rs), ap.strip(cs));
            let issued = (re * ce * blocks_k) as u64 * serial;
            events.macs_active += active;
            events.macs_gated += issued - active;
            events.acc_updates += active;
            events.mux_selects += issued;
            let w_tile_bytes = (re * blocks_k * w.config().block_bytes()) as u64;
            let a_tile_bytes = (ce * blocks_k * a.config().block_bytes()) as u64;
            events.operand_reg_bytes +=
                crate::tpe::operand_reg_bytes(geom, re, ce, w_tile_bytes, a_tile_bytes);
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use s2ta_dbb::dap::{dap_matrix, LayerNnz};
    use s2ta_dbb::{prune, DbbConfig, DbbMatrix};
    use s2ta_tensor::gemm_ref;
    use s2ta_tensor::sparsity::SparseSpec;

    fn geom() -> ArrayGeometry {
        ArrayGeometry::new(2, 4, 2, 2, 2, 8)
    }

    fn weights(m: usize, k: usize, nnz: usize, seed: u64) -> DbbMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let raw = SparseSpec::random(0.2).matrix(m, k, &mut rng);
        let pruned = prune::prune_matrix(&raw, BlockAxis::Rows, DbbConfig::new(nnz, 8));
        DbbMatrix::compress(&pruned, BlockAxis::Rows, DbbConfig::new(nnz, 8)).expect("pruned")
    }

    fn acts(k: usize, n: usize, nnz: usize, seed: u64) -> DbbMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let raw = SparseSpec::random(0.3).matrix(k, n, &mut rng);
        dap_matrix(&raw, 8, LayerNnz::Prune(nnz)).0
    }

    #[test]
    fn matches_reference() {
        let w = weights(5, 40, 3, 1);
        let a = acts(40, 7, 4, 2);
        let run = run_wa(&geom(), &w, &a);
        assert_eq!(run.result, gemm_ref(&w.decompress(), &a.decompress()));
    }

    #[test]
    fn speedup_scales_with_weight_nnz() {
        // The mirror of Fig. 9d: cycles track the *weight* NNZ.
        let a = acts(512, 4, 4, 3);
        let g = geom();
        let c1 = run_wa(&g, &weights(4, 512, 1, 4), &a).events.cycles as f64;
        let c4 = run_wa(&g, &weights(4, 512, 4, 4), &a).events.cycles as f64;
        assert!((c4 / c1 - 4.0).abs() < 0.2, "got {:.2}", c4 / c1);
    }

    #[test]
    fn activation_sparsity_gates_but_does_not_speed_up() {
        let g = geom();
        let w = weights(4, 64, 4, 5);
        let sparse_a = acts(64, 4, 2, 6);
        // Pad sparse acts to the fixed 4/8 hardware ratio: recompress at 4/8.
        let sparse_a44 =
            DbbMatrix::compress(&sparse_a.decompress(), BlockAxis::Cols, DbbConfig::new(4, 8))
                .expect("2 nz fits 4/8");
        let dense_a = acts(64, 4, 4, 7);
        let r_sparse = run_wa(&g, &w, &sparse_a44);
        let r_dense = run_wa(&g, &w, &dense_a);
        assert_eq!(r_sparse.events.cycles, r_dense.events.cycles);
        assert!(r_sparse.events.macs_gated > r_dense.events.macs_gated);
    }

    #[test]
    fn perf_matches_functional() {
        let w = weights(9, 48, 2, 8);
        let a = acts(48, 11, 3, 9);
        let g = geom();
        assert_eq!(run_wa(&g, &w, &a).events, run_wa_perf(&g, &w, &a));
    }

    #[test]
    fn dense_activation_fallback_double_pumps() {
        let g = geom();
        let w = weights(4, 64, 4, 10);
        let a_dense = {
            let mut rng = StdRng::seed_from_u64(11);
            let raw = SparseSpec::dense().matrix(64, 4, &mut rng);
            DbbMatrix::compress(&raw, BlockAxis::Cols, DbbConfig::dense(8)).expect("dense")
        };
        let a_48 = acts(64, 4, 4, 12);
        let dense_cycles = run_wa(&g, &w, &a_dense).events.cycles;
        let bounded_cycles = run_wa(&g, &w, &a_48).events.cycles;
        assert_eq!(dense_cycles, bounded_cycles * 2 - g.skew_cycles());
    }
}
