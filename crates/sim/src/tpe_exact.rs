//! Cycle-accurate single-TPE model of the time-unrolled DP1M4 datapath
//! (Fig. 7c) — the validation machine for [`crate::tpe::run_aw`]'s
//! closed-form cycle maths, mirroring what [`crate::cycle_exact`] does
//! for the scalar array.
//!
//! One TPE holds `A` activation lanes and `C` staged weight blocks
//! (an `A x C` grid of single-MAC units). Each block period:
//!
//! 1. the `C` weight blocks (values + masks) load into staging;
//! 2. for `serial` cycles, every activation lane presents one stored
//!    slot — a value and its 3-bit block position — and each unit's 4:1
//!    mux resolves the staged weight at that position, firing the MAC
//!    when the weight mask hits and clock-gating otherwise.
//!
//! The model steps registers cycle by cycle and checks that the
//! accumulators equal the exact dot products and that the measured
//! cycle count equals `blocks * serial`.

use crate::{ArrayGeometry, EventCounts};
use s2ta_dbb::DbbVector;
use s2ta_tensor::AccMatrix;

/// The result of running one TPE to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TpeRun {
    /// `A x C` accumulator grid: `acc[(lane_a, lane_c)]`.
    pub acc: AccMatrix,
    /// Measured events (cycles, MAC classification, mux selects).
    pub events: EventCounts,
}

/// Runs one time-unrolled TPE over `a_lanes` activation vectors and
/// `c_lanes` weight vectors (all sharing the same reduction length and
/// block size).
///
/// # Panics
///
/// Panics if lane counts don't match the geometry, vectors disagree in
/// block count or block size, or the activation config exceeds the
/// weight slot count in non-dense mode.
pub fn run_tpe(geom: &ArrayGeometry, w_lanes: &[DbbVector], a_lanes: &[DbbVector]) -> TpeRun {
    assert_eq!(w_lanes.len(), geom.c, "expected {} weight lanes", geom.c);
    assert_eq!(a_lanes.len(), geom.a, "expected {} activation lanes", geom.a);
    let blocks = a_lanes[0].blocks().len();
    for v in w_lanes.iter().chain(a_lanes) {
        assert_eq!(v.blocks().len(), blocks, "lane block counts disagree");
        assert_eq!(v.config().bz(), geom.bz, "lane block size mismatch");
    }
    let serial = a_lanes[0].config().nnz();

    let mut acc = AccMatrix::zeros(geom.a, geom.c);
    let mut events = EventCounts::new();

    for bi in 0..blocks {
        // Stage the C weight blocks (operand registers load once per
        // block period).
        let staged: Vec<_> = w_lanes.iter().map(|w| &w.blocks()[bi]).collect();
        // Serialize the activation slots: one register-step per cycle.
        for slot in 0..serial {
            events.cycles += 1;
            for (ai, alane) in a_lanes.iter().enumerate() {
                let ablock = &alane.blocks()[bi];
                // Slot `slot` of the compressed storage: a (pos, value)
                // pair when the mask has that many bits, or padding.
                let entry = ablock.nonzeros().nth(slot);
                for (ci, wblock) in staged.iter().enumerate() {
                    events.mux_selects += 1;
                    match entry {
                        Some((pos, av)) => {
                            let wv = wblock.value_at(pos);
                            if wv != 0 {
                                events.macs_active += 1;
                                events.acc_updates += 1;
                                let cur = acc.get(ai, ci);
                                acc.set(ai, ci, cur + wv as i32 * av as i32);
                            } else {
                                events.macs_gated += 1;
                            }
                        }
                        None => events.macs_gated += 1, // padded slot
                    }
                }
            }
        }
    }
    TpeRun { acc, events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use s2ta_dbb::dap::dap_block;
    use s2ta_dbb::{prune, DbbConfig};
    use s2ta_tensor::sparsity::SparseSpec;

    fn geom() -> ArrayGeometry {
        ArrayGeometry::new(2, 4, 2, 1, 1, 8)
    }

    fn wdbb_vec(k: usize, sp: f64, rng: &mut StdRng) -> DbbVector {
        let m = SparseSpec::random(sp).matrix(1, k, rng);
        let mut data = m.data().to_vec();
        prune::prune_vector(&mut data, DbbConfig::new(4, 8));
        DbbVector::compress(&data, DbbConfig::new(4, 8)).expect("pruned")
    }

    fn adbb_vec(k: usize, sp: f64, nnz: usize, rng: &mut StdRng) -> DbbVector {
        let m = SparseSpec::random(sp).matrix(1, k, rng);
        let mut data = m.data().to_vec();
        for chunk in data.chunks_mut(8) {
            dap_block(chunk, nnz);
        }
        DbbVector::compress(&data, DbbConfig::new(nnz, 8)).expect("dap'd")
    }

    fn dot(a: &DbbVector, b: &DbbVector) -> i32 {
        a.decompress().iter().zip(b.decompress().iter()).map(|(&x, &y)| x as i32 * y as i32).sum()
    }

    #[test]
    fn accumulators_equal_dot_products() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = geom();
        let w: Vec<_> = (0..2).map(|_| wdbb_vec(32, 0.3, &mut rng)).collect();
        let a: Vec<_> = (0..2).map(|_| adbb_vec(32, 0.4, 3, &mut rng)).collect();
        let run = run_tpe(&g, &w, &a);
        for (ai, av) in a.iter().enumerate() {
            for (ci, wv) in w.iter().enumerate() {
                assert_eq!(run.acc.get(ai, ci), dot(av, wv), "acc[{ai}][{ci}]");
            }
        }
    }

    #[test]
    fn measured_cycles_equal_blocks_times_serial() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = geom();
        for nnz in 1..=5usize {
            let w: Vec<_> = (0..2).map(|_| wdbb_vec(64, 0.5, &mut rng)).collect();
            let a: Vec<_> = (0..2).map(|_| adbb_vec(64, 0.5, nnz, &mut rng)).collect();
            let run = run_tpe(&g, &w, &a);
            assert_eq!(run.events.cycles, (64 / 8 * nnz) as u64, "nnz={nnz}");
        }
    }

    #[test]
    fn every_issue_slot_is_classified() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = geom();
        let w: Vec<_> = (0..2).map(|_| wdbb_vec(24, 0.6, &mut rng)).collect();
        let a: Vec<_> = (0..2).map(|_| adbb_vec(24, 0.6, 2, &mut rng)).collect();
        let run = run_tpe(&g, &w, &a);
        // issued = cycles * A * C; every one active or gated.
        assert_eq!(run.events.macs_issued(), run.events.cycles * 4);
        assert_eq!(run.events.mux_selects, run.events.macs_issued());
    }

    #[test]
    fn agrees_with_tile_level_runner() {
        // One 2x4x2 TPE == a 1x1 grid of TPEs in the tile-level model:
        // same MAC classification on the same operands.
        use s2ta_dbb::{BlockAxis, DbbMatrix};
        let mut rng = StdRng::seed_from_u64(4);
        let k = 40;
        let wm = {
            let raw = SparseSpec::random(0.4).matrix(2, k, &mut rng);
            prune::prune_matrix(&raw, BlockAxis::Rows, DbbConfig::new(4, 8))
        };
        let am = {
            let raw = SparseSpec::random(0.5).matrix(k, 2, &mut rng);
            let mut cols = raw.clone();
            for c in 0..2 {
                let mut col: Vec<i8> = (0..k).map(|r| raw.get(r, c)).collect();
                for chunk in col.chunks_mut(8) {
                    dap_block(chunk, 3);
                }
                for (r, v) in col.into_iter().enumerate() {
                    cols.set(r, c, v);
                }
            }
            cols
        };
        let wdbb = DbbMatrix::compress(&wm, BlockAxis::Rows, DbbConfig::new(4, 8)).expect("ok");
        let adbb = DbbMatrix::compress(&am, BlockAxis::Cols, DbbConfig::new(3, 8)).expect("ok");

        let g = geom();
        let exact = run_tpe(
            &g,
            &[wdbb.vectors()[0].clone(), wdbb.vectors()[1].clone()],
            &[adbb.vectors()[0].clone(), adbb.vectors()[1].clone()],
        );
        let tile = crate::tpe::run_aw(&g, &wdbb, &adbb);
        // Same MAC classification and accumulators (transposed layout:
        // exact is [a][c], tile result is [row=c][col=a]).
        assert_eq!(exact.events.macs_active, tile.events.macs_active);
        for ci in 0..2 {
            for ai in 0..2 {
                assert_eq!(exact.acc.get(ai, ci), tile.result.get(ci, ai));
            }
        }
        // Tile-level adds skew; compute cycles match otherwise.
        assert_eq!(exact.events.cycles + g.skew_cycles(), tile.events.cycles);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_tpe_exact_dot_products(
            kb in 1usize..6,
            wsp in 0.0f64..0.9,
            asp in 0.0f64..0.9,
            nnz in 1usize..=5,
            seed in any::<u64>(),
        ) {
            let k = kb * 8;
            let mut rng = StdRng::seed_from_u64(seed);
            let g = geom();
            let w: Vec<_> = (0..2).map(|_| wdbb_vec(k, wsp, &mut rng)).collect();
            let a: Vec<_> = (0..2).map(|_| adbb_vec(k, asp, nnz, &mut rng)).collect();
            let run = run_tpe(&g, &w, &a);
            for (ai, av) in a.iter().enumerate() {
                for (ci, wv) in w.iter().enumerate() {
                    prop_assert_eq!(run.acc.get(ai, ci), dot(av, wv));
                }
            }
            prop_assert_eq!(run.events.cycles, (kb * nnz) as u64);
        }
    }
}
