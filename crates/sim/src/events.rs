//! Microarchitectural event counts — the interface to the energy model.

use std::ops::{Add, AddAssign};

/// Counts of the energy-relevant events of one simulated run.
///
/// The energy model (`s2ta-energy`) multiplies each count by a
/// per-technology energy constant; the split mirrors the component
/// breakdown the paper reports (Fig. 1, Fig. 10, Table 2): MAC datapath,
/// PE-array buffers (operand pipeline registers, accumulators, staging
/// FIFOs), SRAM, DAP and the MCU post-processing cluster.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// Total array cycles, including pipeline fill/drain skew.
    pub cycles: u64,
    /// MACs executed with both operands non-zero (full switching energy).
    pub macs_active: u64,
    /// MACs issued with a zero operand on an **ungated** datapath (dense
    /// SA): reduced, but non-zero, switching energy.
    pub macs_idle: u64,
    /// MACs clock-gated away (ZVCG or DBB mask gating): residual clock
    /// energy only.
    pub macs_gated: u64,
    /// Operand bytes latched through PE/TPE pipeline registers (each hop
    /// of each operand byte counts once).
    pub operand_reg_bytes: u64,
    /// Accumulator read-modify-write updates (4-byte registers).
    pub acc_updates: u64,
    /// Bytes pushed into + popped from operand staging FIFOs (SMT only).
    pub fifo_bytes: u64,
    /// DBB mux select operations (8:1 for DP4M8, 4:1 for DP1M4).
    pub mux_selects: u64,
    /// Bytes read from the weight buffer SRAM.
    pub weight_sram_bytes: u64,
    /// Bytes read from the activation buffer SRAM.
    pub act_sram_read_bytes: u64,
    /// Bytes written to the activation buffer SRAM (layer outputs).
    pub act_sram_write_bytes: u64,
    /// DAP magnitude-maxpool stages evaluated.
    pub dap_stages: u64,
    /// DAP comparator operations.
    pub dap_comparisons: u64,
    /// Output elements post-processed by the MCU cluster (activation
    /// function, scaling, requantization).
    pub mcu_elements: u64,
}

impl EventCounts {
    /// An all-zero tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total MACs issued to the datapath (active + idle + gated).
    pub fn macs_issued(&self) -> u64 {
        self.macs_active + self.macs_idle + self.macs_gated
    }

    /// Fraction of issued MACs that did useful (non-zero) work.
    pub fn mac_utilization(&self) -> f64 {
        let issued = self.macs_issued();
        if issued == 0 {
            0.0
        } else {
            self.macs_active as f64 / issued as f64
        }
    }

    /// Total SRAM traffic in bytes.
    pub fn sram_bytes(&self) -> u64 {
        self.weight_sram_bytes + self.act_sram_read_bytes + self.act_sram_write_bytes
    }
}

impl Add for EventCounts {
    type Output = Self;

    fn add(mut self, rhs: Self) -> Self {
        self += rhs;
        self
    }
}

impl AddAssign for EventCounts {
    fn add_assign(&mut self, rhs: Self) {
        self.cycles += rhs.cycles;
        self.macs_active += rhs.macs_active;
        self.macs_idle += rhs.macs_idle;
        self.macs_gated += rhs.macs_gated;
        self.operand_reg_bytes += rhs.operand_reg_bytes;
        self.acc_updates += rhs.acc_updates;
        self.fifo_bytes += rhs.fifo_bytes;
        self.mux_selects += rhs.mux_selects;
        self.weight_sram_bytes += rhs.weight_sram_bytes;
        self.act_sram_read_bytes += rhs.act_sram_read_bytes;
        self.act_sram_write_bytes += rhs.act_sram_write_bytes;
        self.dap_stages += rhs.dap_stages;
        self.dap_comparisons += rhs.dap_comparisons;
        self.mcu_elements += rhs.mcu_elements;
    }
}

impl std::iter::Sum for EventCounts {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::default(), |acc, x| acc + x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_componentwise() {
        let a = EventCounts { cycles: 1, macs_active: 2, ..Default::default() };
        let b = EventCounts { cycles: 10, macs_gated: 5, ..Default::default() };
        let c = a + b;
        assert_eq!(c.cycles, 11);
        assert_eq!(c.macs_active, 2);
        assert_eq!(c.macs_gated, 5);
        assert_eq!(c.macs_issued(), 7);
    }

    #[test]
    fn utilization_bounds() {
        let e = EventCounts { macs_active: 3, macs_gated: 1, ..Default::default() };
        assert!((e.mac_utilization() - 0.75).abs() < 1e-12);
        assert_eq!(EventCounts::new().mac_utilization(), 0.0);
    }

    #[test]
    fn sum_iterator() {
        let parts = vec![
            EventCounts { cycles: 1, ..Default::default() },
            EventCounts { cycles: 2, ..Default::default() },
        ];
        let total: EventCounts = parts.into_iter().sum();
        assert_eq!(total.cycles, 3);
    }
}
