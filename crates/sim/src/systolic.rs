//! Tile-level dense / ZVCG scalar systolic array (paper's `SA`, `SA-ZVCG`).
//!
//! Functionally identical to [`crate::cycle_exact`] (asserted by tests)
//! but organized tile-by-tile with closed-form cycle counts, so whole CNN
//! layers are tractable. [`run`] computes the product and events with the
//! full loop; [`run_perf`] produces identical events in `O(K)` per tile
//! using non-zero profiles, for full-model sweeps.

use crate::profile::{active_macs, ColStripProfile, RowStripProfile};
use crate::{cycle_exact, ArrayGeometry, EventCounts, GemmRun};
use s2ta_tensor::{AccMatrix, Matrix};

fn check_inputs(geom: &ArrayGeometry, w: &Matrix, a: &Matrix) {
    assert_eq!((geom.a, geom.b, geom.c), (1, 1, 1), "systolic runner is scalar only");
    assert_eq!(w.cols(), a.rows(), "GEMM inner dims mismatch");
}

/// SRAM traffic shared by the scalar variants: dense weights re-read once
/// per column strip, dense activations once per row strip, 1-byte
/// requantized outputs written once, every output post-processed by MCU.
fn sram_events(geom: &ArrayGeometry, rows: usize, k: usize, cols: usize) -> EventCounts {
    let walk = geom.tile_walk(rows, cols);
    let outputs = (rows * cols) as u64;
    EventCounts {
        weight_sram_bytes: (rows * k * walk.col_strips()) as u64,
        act_sram_read_bytes: (k * cols * walk.row_strips()) as u64,
        act_sram_write_bytes: outputs,
        mcu_elements: outputs,
        ..EventCounts::default()
    }
}

/// Runs the GEMM functionally (loop-based) on a dense scalar array.
///
/// With `zvcg`, zero-operand MACs and their accumulator updates are
/// clock-gated (no throughput change — paper Sec. 2.1); without it they
/// are issued as idle MACs.
///
/// # Panics
///
/// Panics if the geometry is not scalar or the dims mismatch.
pub fn run(geom: &ArrayGeometry, zvcg: bool, w: &Matrix, a: &Matrix) -> GemmRun {
    check_inputs(geom, w, a);
    let k = w.cols();
    let mut acc = AccMatrix::zeros(w.rows(), a.cols());
    let mut events = sram_events(geom, w.rows(), k, a.cols());

    for (rows, cols) in geom.tile_walk(w.rows(), a.cols()) {
        events.cycles += cycle_exact::closed_form_cycles(k, geom.m, geom.n);
        for i in rows.clone() {
            for p in 0..k {
                let wv = w.get(i, p);
                for j in cols.clone() {
                    let av = a.get(p, j);
                    if wv != 0 && av != 0 {
                        events.macs_active += 1;
                        events.acc_updates += 1;
                        let cur = acc.get(i, j);
                        acc.set(i, j, cur + wv as i32 * av as i32);
                    } else if zvcg {
                        events.macs_gated += 1;
                    } else {
                        events.macs_idle += 1;
                        events.acc_updates += 1;
                    }
                }
            }
        }
        // Each operand byte is latched once per PE it traverses: weights
        // cross the tile's active columns, activations its active rows.
        let (re, ce) = (rows.len() as u64, cols.len() as u64);
        events.operand_reg_bytes += re * k as u64 * ce + k as u64 * ce * re;
    }
    GemmRun { result: acc, events }
}

/// Event-only fast path: identical [`EventCounts`] to [`run`] (asserted
/// by tests), computed from per-strip non-zero profiles.
///
/// # Panics
///
/// Panics if the geometry is not scalar or the dims mismatch.
pub fn run_perf(geom: &ArrayGeometry, zvcg: bool, w: &Matrix, a: &Matrix) -> EventCounts {
    check_inputs(geom, w, a);
    let wp = RowStripProfile::new(w, geom.tile_rows());
    let ap = ColStripProfile::new(a, geom.tile_cols());
    run_perf_profiled(geom, zvcg, w.rows(), w.cols(), a.cols(), &wp, &ap)
}

/// Matrix-free event path: identical [`EventCounts`] to [`run`] and
/// [`run_perf`], computed from **precompiled** per-strip profiles plus
/// the GEMM dimensions alone. `wp` must profile the `m_rows x k` weight
/// matrix at `geom.tile_rows()` strips, `ap` the `k x n_cols` activation
/// matrix at `geom.tile_cols()` strips.
///
/// # Panics
///
/// Panics if the geometry is not scalar or the profiles do not cover
/// the stated dimensions.
pub fn run_perf_profiled(
    geom: &ArrayGeometry,
    zvcg: bool,
    m_rows: usize,
    k: usize,
    n_cols: usize,
    wp: &RowStripProfile,
    ap: &ColStripProfile,
) -> EventCounts {
    let mut events = EventCounts::new();
    run_perf_profiled_into(geom, zvcg, m_rows, k, n_cols, wp, ap, &mut events);
    events
}

/// [`run_perf_profiled`] accumulating into a caller-owned tally — the
/// allocation-free form for hot loops.
///
/// # Panics
///
/// Same contract as [`run_perf_profiled`].
#[allow(clippy::too_many_arguments)]
pub fn run_perf_profiled_into(
    geom: &ArrayGeometry,
    zvcg: bool,
    m_rows: usize,
    k: usize,
    n_cols: usize,
    wp: &RowStripProfile,
    ap: &ColStripProfile,
    events: &mut EventCounts,
) {
    assert_eq!((geom.a, geom.b, geom.c), (1, 1, 1), "systolic runner is scalar only");
    let walk = geom.tile_walk(m_rows, n_cols);
    let (row_strips, col_strips) = (walk.row_strips(), walk.col_strips());
    assert_eq!(wp.strips(), row_strips, "weight profile strip count mismatch");
    assert_eq!(ap.strips(), col_strips, "activation profile strip count mismatch");
    assert_eq!(wp.strip(0).len(), k, "weight profile reduction length mismatch");
    assert_eq!(ap.strip(0).len(), k, "activation profile reduction length mismatch");
    *events += sram_events(geom, m_rows, k, n_cols);

    for rs in 0..row_strips {
        let rows = (m_rows - rs * geom.tile_rows()).min(geom.tile_rows()) as u64;
        for cs in 0..col_strips {
            let cols = (n_cols - cs * geom.tile_cols()).min(geom.tile_cols()) as u64;
            events.cycles += cycle_exact::closed_form_cycles(k, geom.m, geom.n);
            let active = active_macs(wp.strip(rs), ap.strip(cs));
            let issued = rows * k as u64 * cols;
            events.macs_active += active;
            if zvcg {
                events.macs_gated += issued - active;
                events.acc_updates += active;
            } else {
                events.macs_idle += issued - active;
                events.acc_updates += issued;
            }
            events.operand_reg_bytes += 2 * issued;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use s2ta_tensor::gemm_ref;
    use s2ta_tensor::sparsity::SparseSpec;

    fn random_pair(m: usize, k: usize, n: usize, sp: f64, seed: u64) -> (Matrix, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        (
            SparseSpec::random(sp).matrix(m, k, &mut rng),
            SparseSpec::random(sp).matrix(k, n, &mut rng),
        )
    }

    #[test]
    fn matches_reference_gemm() {
        let (w, a) = random_pair(10, 24, 14, 0.5, 1);
        let r = run(&ArrayGeometry::scalar(4, 5), false, &w, &a);
        assert_eq!(r.result, gemm_ref(&w, &a));
    }

    #[test]
    fn tiled_cycles_accumulate() {
        let (w, a) = random_pair(8, 16, 8, 0.0, 2);
        let g = ArrayGeometry::scalar(4, 4);
        let r = run(&g, false, &w, &a);
        // 2x2 tiles, each K + 4 + 4 - 2 = 22 cycles.
        assert_eq!(r.events.cycles, 4 * 22);
    }

    #[test]
    fn zvcg_does_not_change_cycles_or_result() {
        let (w, a) = random_pair(6, 32, 6, 0.6, 3);
        let g = ArrayGeometry::scalar(4, 4);
        let dense = run(&g, false, &w, &a);
        let zvcg = run(&g, true, &w, &a);
        assert_eq!(dense.result, zvcg.result);
        assert_eq!(dense.events.cycles, zvcg.events.cycles);
        assert_eq!(dense.events.macs_active, zvcg.events.macs_active);
        assert_eq!(dense.events.macs_idle, zvcg.events.macs_gated);
    }

    #[test]
    fn perf_path_matches_functional_events() {
        for (sp, seed) in [(0.0, 4), (0.5, 5), (0.8, 6)] {
            let (w, a) = random_pair(9, 20, 11, sp, seed);
            let g = ArrayGeometry::scalar(4, 4);
            for zvcg in [false, true] {
                let slow = run(&g, zvcg, &w, &a).events;
                let fast = run_perf(&g, zvcg, &w, &a);
                assert_eq!(slow, fast, "sp={sp} zvcg={zvcg}");
            }
        }
    }

    #[test]
    fn matches_cycle_exact_on_single_tile() {
        let (w, a) = random_pair(3, 12, 4, 0.5, 7);
        let g = ArrayGeometry::scalar(3, 4);
        let tile_level = run(&g, true, &w, &a);
        let reg_level = cycle_exact::run(&g, true, &w, &a);
        assert_eq!(tile_level.result, reg_level.result);
        assert_eq!(tile_level.events.cycles, reg_level.events.cycles);
        assert_eq!(tile_level.events.macs_active, reg_level.events.macs_active);
        assert_eq!(tile_level.events.macs_gated, reg_level.events.macs_gated);
        assert_eq!(tile_level.events.acc_updates, reg_level.events.acc_updates);
    }

    #[test]
    fn sram_traffic_scales_with_strips() {
        let (w, a) = random_pair(8, 8, 16, 0.0, 8);
        let g = ArrayGeometry::scalar(4, 4);
        let r = run(&g, false, &w, &a);
        // 2 row strips, 4 col strips.
        assert_eq!(r.events.weight_sram_bytes, (8 * 8 * 4) as u64);
        assert_eq!(r.events.act_sram_read_bytes, (8 * 16 * 2) as u64);
        assert_eq!(r.events.act_sram_write_bytes, (8 * 16) as u64);
        assert_eq!(r.events.mcu_elements, (8 * 16) as u64);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_perf_equals_functional(
            m in 1usize..12,
            k in 1usize..24,
            n in 1usize..12,
            sp in 0.0f64..0.95,
            seed in any::<u64>(),
            zvcg in any::<bool>(),
        ) {
            let (w, a) = random_pair(m, k, n, sp, seed);
            let g = ArrayGeometry::scalar(3, 4);
            prop_assert_eq!(run(&g, zvcg, &w, &a).events, run_perf(&g, zvcg, &w, &a));
        }
    }
}
