//! Array geometry: the `A x B x C _ M x N` TPE configuration space.

use std::fmt;

/// Geometry of a (tensor) systolic array, in the paper's
/// `A x B x C _ M x N` notation (Sec. 6.1, Sec. 7):
///
/// * `m x n` — the TPE grid.
/// * `a` — activation blocks consumed per TPE per block-step.
/// * `b` — NNZ of the weight DBB block (hardware weight slots per unit).
/// * `c` — weight blocks consumed per TPE per block-step.
/// * `bz` — DBB block size (8 throughout the paper).
///
/// The scalar PE of a classic systolic array is the degenerate
/// `1x1x1` TPE ([`ArrayGeometry::scalar`]).
///
/// An output-stationary mapping gives each TPE an `a x c` grid of
/// accumulator groups, so one array pass covers an output tile of
/// `(m*c) x (n*a)` elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayGeometry {
    /// TPE grid rows.
    pub m: usize,
    /// TPE grid columns.
    pub n: usize,
    /// Activation blocks per TPE per block-step.
    pub a: usize,
    /// Weight DBB NNZ (MAC/mux slots per dot-product unit).
    pub b: usize,
    /// Weight blocks per TPE per block-step.
    pub c: usize,
    /// DBB block size.
    pub bz: usize,
}

impl ArrayGeometry {
    /// Creates a geometry; validates all dimensions are non-zero and
    /// `b <= bz <= 16`.
    ///
    /// # Panics
    ///
    /// Panics on a zero dimension or `b > bz` or `bz > 16`.
    pub fn new(a: usize, b: usize, c: usize, m: usize, n: usize, bz: usize) -> Self {
        assert!(
            a > 0 && b > 0 && c > 0 && m > 0 && n > 0 && bz > 0,
            "geometry dimensions must be non-zero"
        );
        assert!(b <= bz, "weight NNZ {b} exceeds block size {bz}");
        assert!(bz <= 16, "block size {bz} exceeds supported maximum 16");
        Self { m, n, a, b, c, bz }
    }

    /// A scalar-PE array (`1x1x1_m x n`), the classic systolic array.
    pub fn scalar(m: usize, n: usize) -> Self {
        Self::new(1, 1, 1, m, n, 8)
    }

    /// The paper's `SA` / `SA-ZVCG` / `SA-SMT` baseline: 32x64 scalar
    /// PEs = 2048 MACs (Sec. 7).
    pub fn sa_baseline() -> Self {
        Self::scalar(32, 64)
    }

    /// The paper's `S2TA-W` design point: `4x4x4_4x8` dot-product TPEs
    /// (DP4M8), 2048 MACs (Sec. 7, Table 1 footnote 2).
    pub fn s2ta_w() -> Self {
        Self::new(4, 4, 4, 4, 8, 8)
    }

    /// The paper's optimal `S2TA-AW` design point: time-unrolled
    /// `8x4x4_8x8` outer-product TPEs (DP1M4), 2048 MACs (Sec. 7).
    pub fn s2ta_aw() -> Self {
        Self::new(8, 4, 4, 8, 8, 8)
    }

    /// Output-tile rows covered per array pass (`m * c` output channels).
    pub fn tile_rows(&self) -> usize {
        self.m * self.c
    }

    /// Output-tile columns covered per array pass (`n * a` output pixels).
    pub fn tile_cols(&self) -> usize {
        self.n * self.a
    }

    /// Physical MAC units for a **dot-product** datapath (DP`b`M`bz`):
    /// each of the `a*c` units per TPE holds `b` MACs.
    pub fn macs_dot_product(&self) -> usize {
        self.m * self.n * self.a * self.c * self.b
    }

    /// Physical MAC units for a **scalar or time-unrolled** datapath:
    /// one MAC per accumulator group.
    pub fn macs_scalar(&self) -> usize {
        self.m * self.n * self.a * self.c
    }

    /// Pipeline fill + drain skew cycles for one tile pass: operands hop
    /// through `m` TPE rows and `n` TPE columns.
    pub fn skew_cycles(&self) -> u64 {
        (self.m + self.n - 2) as u64
    }

    /// Tiling of an `rows x cols` output matrix onto this array.
    pub fn tile_walk(&self, rows: usize, cols: usize) -> TileWalk {
        TileWalk::new(rows, cols, self.tile_rows(), self.tile_cols())
    }
}

impl fmt::Display for ArrayGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}_{}x{}", self.a, self.b, self.c, self.m, self.n)
    }
}

/// Iterator over the output tiles of a GEMM mapped onto an array.
///
/// Yields `(row_range, col_range)` covering the `rows x cols` output in
/// row-major tile order; edge tiles are smaller but still occupy a full
/// array pass (the idle accumulators issue no MACs).
#[derive(Debug, Clone)]
pub struct TileWalk {
    rows: usize,
    cols: usize,
    tile_rows: usize,
    tile_cols: usize,
    next: usize,
}

impl TileWalk {
    fn new(rows: usize, cols: usize, tile_rows: usize, tile_cols: usize) -> Self {
        Self { rows, cols, tile_rows, tile_cols, next: 0 }
    }

    /// Number of row strips.
    pub fn row_strips(&self) -> usize {
        self.rows.div_ceil(self.tile_rows)
    }

    /// Number of column strips.
    pub fn col_strips(&self) -> usize {
        self.cols.div_ceil(self.tile_cols)
    }

    /// Total number of tiles.
    pub fn tiles(&self) -> usize {
        self.row_strips() * self.col_strips()
    }
}

impl Iterator for TileWalk {
    type Item = (std::ops::Range<usize>, std::ops::Range<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.tiles() {
            return None;
        }
        let cs = self.col_strips();
        let (ri, ci) = (self.next / cs, self.next % cs);
        self.next += 1;
        let r0 = ri * self.tile_rows;
        let c0 = ci * self.tile_cols;
        Some((r0..(r0 + self.tile_rows).min(self.rows), c0..(c0 + self.tile_cols).min(self.cols)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_design_points_have_2048_macs() {
        assert_eq!(ArrayGeometry::sa_baseline().macs_scalar(), 2048);
        assert_eq!(ArrayGeometry::s2ta_w().macs_dot_product(), 2048);
        assert_eq!(ArrayGeometry::s2ta_aw().macs_scalar(), 2048);
    }

    #[test]
    fn tile_dims_match_paper() {
        // SA covers 32x64 outputs; S2TA-AW covers (8*4)x(8*8) = 32x64;
        // S2TA-W covers (4*4)x(8*4) = 16x32.
        let sa = ArrayGeometry::sa_baseline();
        assert_eq!((sa.tile_rows(), sa.tile_cols()), (32, 64));
        let aw = ArrayGeometry::s2ta_aw();
        assert_eq!((aw.tile_rows(), aw.tile_cols()), (32, 64));
        let w = ArrayGeometry::s2ta_w();
        assert_eq!((w.tile_rows(), w.tile_cols()), (16, 32));
    }

    #[test]
    fn display_notation() {
        assert_eq!(ArrayGeometry::s2ta_aw().to_string(), "8x4x4_8x8");
        assert_eq!(ArrayGeometry::scalar(32, 64).to_string(), "1x1x1_32x64");
    }

    #[test]
    fn tile_walk_covers_everything_once() {
        let g = ArrayGeometry::scalar(4, 4);
        let walk = g.tile_walk(10, 7);
        assert_eq!(walk.tiles(), 3 * 2);
        let mut covered = vec![vec![0u32; 7]; 10];
        for (rr, cc) in g.tile_walk(10, 7) {
            for r in rr.clone() {
                for c in cc.clone() {
                    covered[r][c] += 1;
                }
            }
        }
        assert!(covered.iter().flatten().all(|&c| c == 1));
    }

    #[test]
    fn edge_tiles_are_clipped() {
        let g = ArrayGeometry::scalar(8, 8);
        let last = g.tile_walk(10, 10).last().unwrap();
        assert_eq!(last, (8..10, 8..10));
    }

    #[test]
    #[should_panic(expected = "exceeds block size")]
    fn b_bounded_by_bz() {
        let _ = ArrayGeometry::new(1, 9, 1, 1, 1, 8);
    }
}
