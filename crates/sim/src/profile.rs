//! Per-strip non-zero profiles: the fast path for MAC activity counting.
//!
//! For an output-stationary mapping, the MAC at `(i, p, j)` does useful
//! work iff `W[i,p] != 0 && A[p,j] != 0`. Summing over an output tile,
//! the active-MAC count at reduction position `p` factorizes into
//! `nnzW(tile_rows, p) * nnzA(p, tile_cols)`. Precomputing those counts
//! per row/column strip makes whole-layer event counting `O(K)` per tile
//! instead of `O(rows * K * cols)` — exact, not an approximation (tests
//! in `systolic`/`tpe` assert equality against the looped functional
//! runs).
//!
//! The profile types are **public operands**: because a profile is a
//! pure function of its matrix and strip width, a caller can build it
//! once (e.g. bake the weight profile into a compiled layer plan, or
//! memoize the activation profile per `(layer, act seed)`) and replay
//! the events-only datapaths ([`crate::systolic::run_perf_profiled`],
//! [`crate::tpe::run_wdbb_perf_profiled`],
//! [`crate::tpe::run_aw_perf_profiled`],
//! [`crate::smt::run_sampled_profiled`]) without ever re-materializing
//! the dense matrices.

use s2ta_tensor::Matrix;

/// Per-reduction-position non-zero counts for each row strip of a weight
/// matrix (`M x K`, rows are output channels).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowStripProfile {
    /// `counts[strip][p]` = non-zero weights among the strip's rows at
    /// reduction position `p`.
    counts: Vec<Vec<u32>>,
}

impl RowStripProfile {
    /// Profiles `w` with `strip_rows` rows per strip.
    ///
    /// # Panics
    ///
    /// Panics if `strip_rows` is zero.
    pub fn new(w: &Matrix, strip_rows: usize) -> Self {
        assert!(strip_rows > 0, "strip height must be non-zero");
        let strips = w.rows().div_ceil(strip_rows);
        let mut counts = vec![vec![0u32; w.cols()]; strips];
        for r in 0..w.rows() {
            let strip = r / strip_rows;
            let row = w.row(r);
            for (p, &v) in row.iter().enumerate() {
                if v != 0 {
                    counts[strip][p] += 1;
                }
            }
        }
        Self { counts }
    }

    /// The per-position non-zero counts of strip `s`.
    pub fn strip(&self, s: usize) -> &[u32] {
        &self.counts[s]
    }

    /// Number of row strips.
    pub fn strips(&self) -> usize {
        self.counts.len()
    }
}

/// Per-reduction-position non-zero counts for each column strip of an
/// activation matrix (`K x N`, columns are output pixels).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColStripProfile {
    counts: Vec<Vec<u32>>,
}

impl ColStripProfile {
    /// Profiles `a` with `strip_cols` columns per strip.
    ///
    /// # Panics
    ///
    /// Panics if `strip_cols` is zero.
    pub fn new(a: &Matrix, strip_cols: usize) -> Self {
        assert!(strip_cols > 0, "strip width must be non-zero");
        let strips = a.cols().div_ceil(strip_cols);
        let mut counts = vec![vec![0u32; a.rows()]; strips];
        // `p` indexes the transposed layout (counts[strip][row]), so an
        // iterator over `counts` cannot replace the row index.
        #[allow(clippy::needless_range_loop)]
        for p in 0..a.rows() {
            let row = a.row(p);
            for (c, &v) in row.iter().enumerate() {
                if v != 0 {
                    counts[c / strip_cols][p] += 1;
                }
            }
        }
        Self { counts }
    }

    /// Builds a profile from raw `counts[strip][p]` tallies — the escape
    /// hatch for producers (e.g. `s2ta_dbb::dap::dap_col_profile`) that
    /// derive the counts without materializing the profiled matrix.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is empty or its strips have unequal lengths.
    pub fn from_counts(counts: Vec<Vec<u32>>) -> Self {
        assert!(!counts.is_empty(), "a profile needs at least one strip");
        let k = counts[0].len();
        assert!(counts.iter().all(|s| s.len() == k), "strips must share the reduction length");
        Self { counts }
    }

    /// The per-position non-zero counts of strip `s`.
    pub fn strip(&self, s: usize) -> &[u32] {
        &self.counts[s]
    }

    /// Number of column strips.
    pub fn strips(&self) -> usize {
        self.counts.len()
    }
}

/// Active MACs for one tile: `sum_p nnzW[p] * nnzA[p]`.
pub fn active_macs(w_strip: &[u32], a_strip: &[u32]) -> u64 {
    debug_assert_eq!(w_strip.len(), a_strip.len());
    w_strip.iter().zip(a_strip).map(|(&nw, &na)| nw as u64 * na as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_count_nonzeros_per_strip() {
        // W: 3 rows, strips of 2 -> strips {0,1},{2}.
        let w = Matrix::from_vec(3, 2, vec![1, 0, 0, 2, 3, 4]);
        let p = RowStripProfile::new(&w, 2);
        assert_eq!(p.strips(), 2);
        assert_eq!(p.strip(0), &[1, 1]);
        assert_eq!(p.strip(1), &[1, 1]);

        let a = Matrix::from_vec(2, 3, vec![1, 0, 2, 0, 0, 3]);
        let c = ColStripProfile::new(&a, 2);
        assert_eq!(c.strips(), 2);
        assert_eq!(c.strip(0), &[1, 0]);
        assert_eq!(c.strip(1), &[1, 1]);
    }

    #[test]
    fn from_counts_roundtrips_new() {
        let a = Matrix::from_vec(2, 3, vec![1, 0, 2, 0, 0, 3]);
        let direct = ColStripProfile::new(&a, 2);
        let raw = ColStripProfile::from_counts(vec![vec![1, 0], vec![1, 1]]);
        assert_eq!(direct, raw);
    }

    #[test]
    #[should_panic(expected = "share the reduction length")]
    fn from_counts_rejects_ragged_strips() {
        let _ = ColStripProfile::from_counts(vec![vec![1, 0], vec![1]]);
    }

    #[test]
    fn active_macs_factorization_matches_bruteforce() {
        let w = Matrix::from_vec(2, 4, vec![1, 0, 5, 0, 0, 2, 5, 0]);
        let a = Matrix::from_vec(4, 3, vec![1, 1, 0, 0, 2, 0, 3, 0, 0, 4, 4, 4]);
        let wp = RowStripProfile::new(&w, 2);
        let ap = ColStripProfile::new(&a, 3);
        let fast = active_macs(wp.strip(0), ap.strip(0));
        let mut slow = 0u64;
        for i in 0..2 {
            for p in 0..4 {
                for j in 0..3 {
                    if w.get(i, p) != 0 && a.get(p, j) != 0 {
                        slow += 1;
                    }
                }
            }
        }
        assert_eq!(fast, slow);
    }
}
