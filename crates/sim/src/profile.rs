//! Per-strip non-zero profiles: the fast path for MAC activity counting.
//!
//! For an output-stationary mapping, the MAC at `(i, p, j)` does useful
//! work iff `W[i,p] != 0 && A[p,j] != 0`. Summing over an output tile,
//! the active-MAC count at reduction position `p` factorizes into
//! `nnzW(tile_rows, p) * nnzA(p, tile_cols)`. Precomputing those counts
//! per row/column strip makes whole-layer event counting `O(K)` per tile
//! instead of `O(rows * K * cols)` — exact, not an approximation (tests
//! in `systolic`/`tpe` assert equality against the looped functional
//! runs).
//!
//! Both profile types store their counts **structure-of-arrays**: all
//! strips live in a single flat `Vec<u32>` of `strips * k` entries, strip
//! `s` occupying `counts[s*k .. (s+1)*k]`. One contiguous buffer instead
//! of a `Vec<Vec<u32>>` means one allocation per profile, cache-linear
//! strip walks, and inner loops over `strip(s)` that the compiler can
//! vectorize (the slices are plain `&[u32]` with unit stride).
//!
//! The profile types are **public operands**: because a profile is a
//! pure function of its matrix and strip width, a caller can build it
//! once (e.g. bake the weight profile into a compiled layer plan, or
//! memoize the activation profile per `(layer, act seed)`) and replay
//! the events-only datapaths ([`crate::systolic::run_perf_profiled`],
//! [`crate::tpe::run_wdbb_perf_profiled`],
//! [`crate::tpe::run_aw_perf_profiled`],
//! [`crate::smt::run_sampled_profiled`]) without ever re-materializing
//! the dense matrices. [`RowStripProfile::of_dbb`] goes one step
//! further: it profiles a compressed weight matrix straight from its
//! block masks, so even the *profiling* step materializes nothing.

use s2ta_dbb::{BlockAxis, DbbMatrix};
use s2ta_tensor::Matrix;

/// Per-reduction-position non-zero counts for each row strip of a weight
/// matrix (`M x K`, rows are output channels).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowStripProfile {
    /// Flat SoA tallies: `counts[s*k + p]` = non-zero weights among strip
    /// `s`'s rows at reduction position `p`.
    counts: Vec<u32>,
    strips: usize,
    k: usize,
}

impl RowStripProfile {
    /// Profiles `w` with `strip_rows` rows per strip.
    ///
    /// # Panics
    ///
    /// Panics if `strip_rows` is zero.
    pub fn new(w: &Matrix, strip_rows: usize) -> Self {
        assert!(strip_rows > 0, "strip height must be non-zero");
        let strips = w.rows().div_ceil(strip_rows);
        let k = w.cols();
        let mut counts = vec![0u32; strips * k];
        for r in 0..w.rows() {
            let base = (r / strip_rows) * k;
            let row = w.row(r);
            let strip = &mut counts[base..base + k];
            for (slot, &v) in strip.iter_mut().zip(row) {
                *slot += (v != 0) as u32;
            }
        }
        Self { counts, strips, k }
    }

    /// Profiles a row-blocked compressed weight matrix directly from its
    /// block masks — exact (`DbbBlock` masks mark only genuine
    /// non-zeros, even under the dense config), and allocation-free
    /// beyond the output buffer: no decompression, no scratch.
    ///
    /// # Panics
    ///
    /// Panics if `w` is column-blocked or `strip_rows` is zero.
    pub fn of_dbb(w: &DbbMatrix, strip_rows: usize) -> Self {
        assert!(strip_rows > 0, "strip height must be non-zero");
        assert!(matches!(w.axis(), BlockAxis::Rows), "weight profiles need a row-blocked matrix");
        let (rows, k) = w.shape();
        let strips = rows.div_ceil(strip_rows);
        let bz = w.config().bz();
        let mut counts = vec![0u32; strips * k];
        for (r, vector) in w.vectors().iter().enumerate() {
            let base = (r / strip_rows) * k;
            let strip = &mut counts[base..base + k];
            for (bi, block) in vector.blocks().iter().enumerate() {
                let mut mask = block.mask();
                while mask != 0 {
                    let p = bi * bz + mask.trailing_zeros() as usize;
                    // Tail blocks are zero-padded past `k`; padding never
                    // sets mask bits, but guard anyway.
                    if p < k {
                        strip[p] += 1;
                    }
                    mask &= mask - 1;
                }
            }
        }
        Self { counts, strips, k }
    }

    /// Rebuilds a profile from its flat SoA parts (the inverse of
    /// [`RowStripProfile::flat`]).
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != strips * k` or `strips` is zero.
    pub fn from_flat(counts: Vec<u32>, strips: usize, k: usize) -> Self {
        assert!(strips > 0, "a profile needs at least one strip");
        assert_eq!(counts.len(), strips * k, "flat profile shape mismatch");
        Self { counts, strips, k }
    }

    /// The per-position non-zero counts of strip `s`.
    pub fn strip(&self, s: usize) -> &[u32] {
        &self.counts[s * self.k..(s + 1) * self.k]
    }

    /// Number of row strips.
    pub fn strips(&self) -> usize {
        self.strips
    }

    /// The whole SoA buffer, strip-major: `flat()[s*k + p]`.
    pub fn flat(&self) -> &[u32] {
        &self.counts
    }
}

/// Per-reduction-position non-zero counts for each column strip of an
/// activation matrix (`K x N`, columns are output pixels).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColStripProfile {
    /// Flat SoA tallies, same layout as [`RowStripProfile::flat`].
    counts: Vec<u32>,
    strips: usize,
    k: usize,
}

impl ColStripProfile {
    /// Profiles `a` with `strip_cols` columns per strip.
    ///
    /// # Panics
    ///
    /// Panics if `strip_cols` is zero.
    pub fn new(a: &Matrix, strip_cols: usize) -> Self {
        assert!(strip_cols > 0, "strip width must be non-zero");
        let strips = a.cols().div_ceil(strip_cols);
        let k = a.rows();
        let mut counts = vec![0u32; strips * k];
        for p in 0..k {
            let row = a.row(p);
            for (c, &v) in row.iter().enumerate() {
                counts[(c / strip_cols) * k + p] += (v != 0) as u32;
            }
        }
        Self { counts, strips, k }
    }

    /// Builds a profile from raw `counts[strip][p]` tallies — the escape
    /// hatch for producers (e.g. `s2ta_dbb::dap::dap_col_profile`) that
    /// derive the counts without materializing the profiled matrix.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is empty or its strips have unequal lengths.
    pub fn from_counts(counts: Vec<Vec<u32>>) -> Self {
        assert!(!counts.is_empty(), "a profile needs at least one strip");
        let k = counts[0].len();
        assert!(counts.iter().all(|s| s.len() == k), "strips must share the reduction length");
        let strips = counts.len();
        let mut flat = Vec::with_capacity(strips * k);
        for strip in counts {
            flat.extend_from_slice(&strip);
        }
        Self { counts: flat, strips, k }
    }

    /// Profiles a column-blocked compressed activation matrix directly
    /// from its block masks — the A-DBB analogue of
    /// [`RowStripProfile::of_dbb`]: exact and decompression-free.
    ///
    /// # Panics
    ///
    /// Panics if `a` is row-blocked or `strip_cols` is zero.
    pub fn of_dbb(a: &DbbMatrix, strip_cols: usize) -> Self {
        assert!(strip_cols > 0, "strip width must be non-zero");
        assert!(
            matches!(a.axis(), BlockAxis::Cols),
            "activation profiles need a column-blocked matrix"
        );
        let (k, cols) = a.shape();
        let strips = cols.div_ceil(strip_cols);
        let bz = a.config().bz();
        let mut counts = vec![0u32; strips * k];
        for (c, vector) in a.vectors().iter().enumerate() {
            let base = (c / strip_cols) * k;
            let strip = &mut counts[base..base + k];
            for (bi, block) in vector.blocks().iter().enumerate() {
                let mut mask = block.mask();
                while mask != 0 {
                    let p = bi * bz + mask.trailing_zeros() as usize;
                    if p < k {
                        strip[p] += 1;
                    }
                    mask &= mask - 1;
                }
            }
        }
        Self { counts, strips, k }
    }

    /// Rebuilds a profile from its flat SoA parts (the inverse of
    /// [`ColStripProfile::flat`]) — the allocation-free producer path:
    /// tally straight into a `strips * k` buffer, then wrap it.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != strips * k` or `strips` is zero.
    pub fn from_flat(counts: Vec<u32>, strips: usize, k: usize) -> Self {
        assert!(strips > 0, "a profile needs at least one strip");
        assert_eq!(counts.len(), strips * k, "flat profile shape mismatch");
        Self { counts, strips, k }
    }

    /// The per-position non-zero counts of strip `s`.
    pub fn strip(&self, s: usize) -> &[u32] {
        &self.counts[s * self.k..(s + 1) * self.k]
    }

    /// Number of column strips.
    pub fn strips(&self) -> usize {
        self.strips
    }

    /// The whole SoA buffer, strip-major: `flat()[s*k + p]`.
    pub fn flat(&self) -> &[u32] {
        &self.counts
    }
}

/// Active MACs for one tile: `sum_p nnzW[p] * nnzA[p]`.
pub fn active_macs(w_strip: &[u32], a_strip: &[u32]) -> u64 {
    debug_assert_eq!(w_strip.len(), a_strip.len());
    w_strip.iter().zip(a_strip).map(|(&nw, &na)| nw as u64 * na as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2ta_dbb::DbbConfig;

    #[test]
    fn profiles_count_nonzeros_per_strip() {
        // W: 3 rows, strips of 2 -> strips {0,1},{2}.
        let w = Matrix::from_vec(3, 2, vec![1, 0, 0, 2, 3, 4]);
        let p = RowStripProfile::new(&w, 2);
        assert_eq!(p.strips(), 2);
        assert_eq!(p.strip(0), &[1, 1]);
        assert_eq!(p.strip(1), &[1, 1]);
        assert_eq!(p.flat(), &[1, 1, 1, 1]);

        let a = Matrix::from_vec(2, 3, vec![1, 0, 2, 0, 0, 3]);
        let c = ColStripProfile::new(&a, 2);
        assert_eq!(c.strips(), 2);
        assert_eq!(c.strip(0), &[1, 0]);
        assert_eq!(c.strip(1), &[1, 1]);
    }

    #[test]
    fn from_counts_roundtrips_new() {
        let a = Matrix::from_vec(2, 3, vec![1, 0, 2, 0, 0, 3]);
        let direct = ColStripProfile::new(&a, 2);
        let raw = ColStripProfile::from_counts(vec![vec![1, 0], vec![1, 1]]);
        assert_eq!(direct, raw);
        let flat = ColStripProfile::from_flat(vec![1, 0, 1, 1], 2, 2);
        assert_eq!(direct, flat);
    }

    #[test]
    #[should_panic(expected = "share the reduction length")]
    fn from_counts_rejects_ragged_strips() {
        let _ = ColStripProfile::from_counts(vec![vec![1, 0], vec![1]]);
    }

    #[test]
    fn of_dbb_matches_dense_profile() {
        // 5x11: non-multiple of both strip height and block size, so the
        // mask walk must handle short tail blocks and a short last strip.
        let data: Vec<i8> =
            (0..55u8).map(|i| if i % 3 == 0 { 0 } else { (i % 120) as i8 }).collect();
        let m = Matrix::from_vec(5, 11, data);
        let dm = DbbMatrix::compress(&m, BlockAxis::Rows, DbbConfig::dense(4)).unwrap();
        for strip_rows in [1, 2, 4, 5, 7] {
            assert_eq!(
                RowStripProfile::of_dbb(&dm, strip_rows),
                RowStripProfile::new(&m, strip_rows),
                "strip_rows={strip_rows}"
            );
        }
    }

    #[test]
    fn col_of_dbb_matches_dense_profile() {
        let data: Vec<i8> =
            (0..77u8).map(|i| if i % 4 == 0 { 0 } else { (i % 120) as i8 }).collect();
        let m = Matrix::from_vec(7, 11, data);
        let dm = DbbMatrix::compress(&m, BlockAxis::Cols, DbbConfig::dense(4)).unwrap();
        for strip_cols in [1, 3, 4, 11, 16] {
            assert_eq!(
                ColStripProfile::of_dbb(&dm, strip_cols),
                ColStripProfile::new(&m, strip_cols),
                "strip_cols={strip_cols}"
            );
        }
    }

    #[test]
    fn active_macs_factorization_matches_bruteforce() {
        let w = Matrix::from_vec(2, 4, vec![1, 0, 5, 0, 0, 2, 5, 0]);
        let a = Matrix::from_vec(4, 3, vec![1, 1, 0, 0, 2, 0, 3, 0, 0, 4, 4, 4]);
        let wp = RowStripProfile::new(&w, 2);
        let ap = ColStripProfile::new(&a, 3);
        let fast = active_macs(wp.strip(0), ap.strip(0));
        let mut slow = 0u64;
        for i in 0..2 {
            for p in 0..4 {
                for j in 0..3 {
                    if w.get(i, p) != 0 && a.get(p, j) != 0 {
                        slow += 1;
                    }
                }
            }
        }
        assert_eq!(fast, slow);
    }
}
