//! Density Bound Block (DBB) structured sparsity.
//!
//! DBB (paper Sec. 3.1, Fig. 4-5) tiles a tensor along the channel /
//! reduction dimension into blocks of `BZ` elements and bounds the number
//! of non-zeros per block to `NNZ`. A compressed block stores exactly
//! `NNZ` values (zero-padded when the block is sparser than the bound)
//! plus a `BZ`-bit positional mask. Because the *maximum* per-block
//! workload is known at design time, the exploiting hardware needs only a
//! mux per MAC — no gather FIFOs, no scattered accumulators.
//!
//! This crate implements:
//!
//! * [`DbbConfig`] — the `NNZ/BZ` ratio (e.g. 4/8).
//! * [`DbbBlock`] / [`DbbVector`] / [`DbbMatrix`] — compressed containers
//!   with bit-exact round-tripping and storage-byte accounting (used for
//!   SRAM bandwidth in the energy model).
//! * [`prune`] — W-DBB magnitude pruning of weight matrices (offline,
//!   paper Sec. 4 / 8.1).
//! * [`dap`] — Dynamic Activation Pruning (paper Sec. 5.1 / 6.2): the
//!   software Top-NNZ reference and a stage-by-stage model of the
//!   cascaded magnitude-maxpool hardware (Fig. 8), asserted equivalent.
//!
//! # Example
//!
//! ```
//! use s2ta_dbb::{DbbConfig, DbbVector};
//!
//! let cfg = DbbConfig::new(4, 8); // 4/8 DBB, as used throughout the paper
//! let data: Vec<i8> = vec![0, 9, 0, 4, 3, 0, 5, 0, 1, 0, 0, 0, 0, 0, 0, 2];
//! let v = DbbVector::compress(&data, cfg).expect("data satisfies 4/8");
//! assert_eq!(v.decompress(), data);
//! // 2 blocks * (4 value bytes + 1 mask byte) = 10 bytes vs 16 dense.
//! assert_eq!(v.storage_bytes(), 10);
//! ```
#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod block;
mod config;
mod matrix;
mod tensor;

pub mod dap;
pub mod prune;

pub use block::DbbBlock;
pub use config::{DbbConfig, DbbError};
pub use matrix::{BlockAxis, DbbMatrix, DbbVector};
pub use tensor::{prune_and_compress_tensor, DbbTensor4};
