//! W-DBB weight pruning: in-block magnitude pruning (paper Sec. 4, 8.1).
//!
//! Weight sparsity is static, so the DBB bound is enforced offline:
//! within every block, only the `NNZ` largest-magnitude elements are kept.
//! The paper prunes *progressively* during fine-tuning ("typically runs
//! for 20-50 epochs, progressively pruning small-magnitude weights") —
//! the progressive schedule lives in `s2ta-nn`; this module provides the
//! per-block Top-NNZ primitive for both `i8` (deployment) and the
//! magnitude-selection helper shared with the trainer.

use crate::{BlockAxis, DbbConfig, DbbMatrix};
use s2ta_tensor::Matrix;

/// Returns the indices of the `keep` largest-magnitude elements of
/// `block`, ties broken toward the lower index (matching the deterministic
/// comparator-tree order of the DAP hardware, Fig. 8).
///
/// The returned indices are in ascending order.
pub fn top_magnitude_indices(block: &[f64], keep: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..block.len()).collect();
    // Sort by descending magnitude, ascending index on ties.
    order.sort_by(|&a, &b| {
        block[b]
            .abs()
            .partial_cmp(&block[a].abs())
            .expect("magnitudes must be comparable (no NaN)")
            .then(a.cmp(&b))
    });
    let mut kept: Vec<usize> = order.into_iter().take(keep).collect();
    kept.sort_unstable();
    kept
}

/// Prunes a dense `i8` reduction vector to satisfy `config`, keeping the
/// largest-magnitude `NNZ` elements of each `BZ` block and zeroing the
/// rest. Blocks already satisfying the bound are untouched.
pub fn prune_vector(data: &mut [i8], config: DbbConfig) {
    let bz = config.bz();
    for chunk in data.chunks_mut(bz) {
        let nnz = chunk.iter().filter(|&&v| v != 0).count();
        if nnz <= config.nnz() {
            continue;
        }
        let mags: Vec<f64> = chunk.iter().map(|&v| (v as f64).abs()).collect();
        let keep = top_magnitude_indices(&mags, config.nnz());
        let mut keep_iter = keep.iter().peekable();
        for (i, v) in chunk.iter_mut().enumerate() {
            if keep_iter.peek() == Some(&&i) {
                keep_iter.next();
            } else {
                *v = 0;
            }
        }
    }
}

/// Prunes a matrix along `axis` to satisfy `config`, returning the pruned
/// dense matrix. The result is guaranteed to compress without error.
pub fn prune_matrix(m: &Matrix, axis: BlockAxis, config: DbbConfig) -> Matrix {
    let mut out = m.clone();
    match axis {
        BlockAxis::Rows => {
            let cols = out.cols();
            for r in 0..out.rows() {
                let start = r * cols;
                prune_vector(&mut out.data_mut()[start..start + cols], config);
            }
        }
        BlockAxis::Cols => {
            for c in 0..out.cols() {
                let mut col: Vec<i8> = (0..out.rows()).map(|r| out.get(r, c)).collect();
                prune_vector(&mut col, config);
                for (r, v) in col.into_iter().enumerate() {
                    out.set(r, c, v);
                }
            }
        }
    }
    out
}

/// Prunes and compresses a weight matrix in one step (rows = reduction
/// vectors, the weight orientation).
pub fn prune_and_compress(m: &Matrix, config: DbbConfig) -> DbbMatrix {
    let pruned = prune_matrix(m, BlockAxis::Rows, config);
    DbbMatrix::compress(&pruned, BlockAxis::Rows, config)
        .expect("pruned matrix satisfies its own bound")
}

/// Fraction of the L1 weight magnitude preserved by pruning `m` (rows) to
/// `config` — the quality proxy used to pick per-model W-DBB ratios.
pub fn magnitude_retention(m: &Matrix, axis: BlockAxis, config: DbbConfig) -> f64 {
    let total: f64 = m.data().iter().map(|&v| (v as f64).abs()).sum();
    if total == 0.0 {
        return 1.0;
    }
    let pruned = prune_matrix(m, axis, config);
    let kept: f64 = pruned.data().iter().map(|&v| (v as f64).abs()).sum();
    kept / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use s2ta_tensor::sparsity::SparseSpec;

    #[test]
    fn keeps_largest_magnitudes() {
        let mut v = [1i8, -8, 3, 7, -2, 6, 0, 5];
        prune_vector(&mut v, DbbConfig::new(4, 8));
        assert_eq!(v, [0, -8, 0, 7, 0, 6, 0, 5]);
    }

    #[test]
    fn already_satisfying_block_untouched() {
        let mut v = [0i8, 9, 0, 0, 0, -3, 0, 0];
        let orig = v;
        prune_vector(&mut v, DbbConfig::new(4, 8));
        assert_eq!(v, orig);
    }

    #[test]
    fn tie_break_prefers_lower_index() {
        let mut v = [5i8, 5, 5, 5, 5, 5, 5, 5];
        prune_vector(&mut v, DbbConfig::new(2, 8));
        assert_eq!(v, [5, 5, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn pruned_matrix_compresses_cleanly() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = SparseSpec::random(0.2).matrix(16, 40, &mut rng);
        let dm = prune_and_compress(&m, DbbConfig::new(4, 8));
        // Every block satisfies the bound by construction.
        assert_eq!(dm.decompress().rows(), 16);
    }

    #[test]
    fn retention_is_one_for_satisfying_data() {
        let m = Matrix::from_vec(1, 8, vec![1, 0, 2, 0, 3, 0, 4, 0]);
        let r = magnitude_retention(&m, BlockAxis::Rows, DbbConfig::new(4, 8));
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn retention_decreases_with_tighter_bound() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = SparseSpec::dense().matrix(8, 64, &mut rng);
        let r4 = magnitude_retention(&m, BlockAxis::Rows, DbbConfig::new(4, 8));
        let r2 = magnitude_retention(&m, BlockAxis::Rows, DbbConfig::new(2, 8));
        let r1 = magnitude_retention(&m, BlockAxis::Rows, DbbConfig::new(1, 8));
        assert!(r4 > r2 && r2 > r1, "retention {r4} {r2} {r1}");
    }

    proptest! {
        #[test]
        fn prop_pruned_satisfies_bound(
            data in prop::collection::vec(any::<i8>(), 8..96),
            nnz in 1usize..=8,
        ) {
            let cfg = DbbConfig::new(nnz, 8);
            let mut v = data;
            prune_vector(&mut v, cfg);
            for chunk in v.chunks(8) {
                prop_assert!(chunk.iter().filter(|&&x| x != 0).count() <= nnz);
            }
        }

        #[test]
        fn prop_pruning_is_idempotent(
            data in prop::collection::vec(any::<i8>(), 8..64),
            nnz in 1usize..=8,
        ) {
            let cfg = DbbConfig::new(nnz, 8);
            let mut once = data;
            prune_vector(&mut once, cfg);
            let mut twice = once.clone();
            prune_vector(&mut twice, cfg);
            prop_assert_eq!(once, twice);
        }

        #[test]
        fn prop_kept_values_are_subset(
            data in prop::collection::vec(any::<i8>(), 8..64),
            nnz in 1usize..=8,
        ) {
            let cfg = DbbConfig::new(nnz, 8);
            let mut pruned = data.clone();
            prune_vector(&mut pruned, cfg);
            for (orig, kept) in data.iter().zip(&pruned) {
                prop_assert!(*kept == 0 || kept == orig);
            }
        }
    }
}
