//! DBB configuration: the `NNZ/BZ` density bound.

use std::error::Error;
use std::fmt;

/// Maximum supported block size (mask fits a `u16`).
pub const MAX_BZ: usize = 16;

/// A Density Bound Block configuration: at most `nnz` non-zeros per block
/// of `bz` elements, written `NNZ/BZ` (the paper's notation, e.g. `4/8`).
///
/// `nnz == bz` is the dense configuration (the paper's "8/8" fall-back for
/// unpruned layers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DbbConfig {
    nnz: usize,
    bz: usize,
}

impl DbbConfig {
    /// Creates an `nnz/bz` configuration.
    ///
    /// # Panics
    ///
    /// Panics if `nnz == 0`, `nnz > bz`, or `bz > 16`.
    pub fn new(nnz: usize, bz: usize) -> Self {
        assert!(nnz > 0, "NNZ must be positive");
        assert!(nnz <= bz, "NNZ {nnz} exceeds block size {bz}");
        assert!(bz <= MAX_BZ, "block size {bz} exceeds max {MAX_BZ}");
        Self { nnz, bz }
    }

    /// The paper's default weight configuration, 4/8 (Sec. 8.1: "4/8 DBB
    /// density level is a good compromise").
    pub fn w_default() -> Self {
        Self::new(4, 8)
    }

    /// Dense `bz/bz` configuration.
    pub fn dense(bz: usize) -> Self {
        Self::new(bz, bz)
    }

    /// Maximum non-zeros per block.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Block size.
    pub fn bz(&self) -> usize {
        self.bz
    }

    /// Whether this is the dense (no-bound) configuration.
    pub fn is_dense(&self) -> bool {
        self.nnz == self.bz
    }

    /// Density as a fraction: `nnz / bz`.
    pub fn density(&self) -> f64 {
        self.nnz as f64 / self.bz as f64
    }

    /// Sparsity bound as a fraction: `1 - nnz/bz`.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.density()
    }

    /// Bytes to store one compressed block: `nnz` value bytes plus
    /// `ceil(bz / 8)` mask bytes. Dense blocks store no mask.
    pub fn block_bytes(&self) -> usize {
        if self.is_dense() {
            self.bz
        } else {
            self.nnz + self.bz.div_ceil(8)
        }
    }

    /// Compression ratio versus dense storage (e.g. 4/8 -> 8/5 = 1.6x).
    pub fn compression_ratio(&self) -> f64 {
        self.bz as f64 / self.block_bytes() as f64
    }
}

impl fmt::Display for DbbConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.nnz, self.bz)
    }
}

/// Errors produced when data violates a DBB bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbbError {
    /// A block contained more non-zeros than the configured bound allows.
    BoundExceeded {
        /// Index of the offending block.
        block: usize,
        /// Non-zeros found in the block.
        found: usize,
        /// The configured bound.
        bound: usize,
    },
}

impl fmt::Display for DbbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbbError::BoundExceeded { block, found, bound } => {
                write!(f, "block {block} has {found} non-zeros, exceeding the DBB bound of {bound}")
            }
        }
    }
}

impl Error for DbbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_display() {
        assert_eq!(DbbConfig::new(4, 8).to_string(), "4/8");
        assert_eq!(DbbConfig::dense(8).to_string(), "8/8");
    }

    #[test]
    fn storage_accounting() {
        // 4/8: 4 values + 1 mask byte = 5 bytes; dense: 8 bytes, no mask.
        assert_eq!(DbbConfig::new(4, 8).block_bytes(), 5);
        assert_eq!(DbbConfig::dense(8).block_bytes(), 8);
        assert_eq!(DbbConfig::new(2, 16).block_bytes(), 4);
        // 4/8 weight bandwidth reduction: 37.5% (paper Sec. 4).
        let reduction = 1.0 - 5.0 / 8.0;
        assert!((DbbConfig::new(4, 8).compression_ratio() - 1.0 / (1.0 - reduction)).abs() < 1e-12);
    }

    #[test]
    fn density_and_sparsity() {
        let c = DbbConfig::new(2, 8);
        assert!((c.density() - 0.25).abs() < 1e-12);
        assert!((c.sparsity() - 0.75).abs() < 1e-12);
        assert!(!c.is_dense());
        assert!(DbbConfig::dense(4).is_dense());
    }

    #[test]
    #[should_panic(expected = "exceeds block size")]
    fn nnz_bounded_by_bz() {
        let _ = DbbConfig::new(9, 8);
    }

    #[test]
    fn error_display() {
        let e = DbbError::BoundExceeded { block: 3, found: 6, bound: 4 };
        assert!(e.to_string().contains("block 3"));
    }
}
