//! DBB compression of 4-D tensors along the channel dimension.
//!
//! Fig. 5 of the paper blocks tensors along the channel dimension — "a
//! common strategy to avoid all the elements in any single channel
//! falling into the same block" — so each spatial position's channel
//! fiber is an independent sequence of DBB blocks. This is the storage
//! format of the activation buffer; the GEMM-side [`crate::DbbMatrix`]
//! is its im2col view.

use crate::{DbbConfig, DbbError, DbbVector};
use s2ta_tensor::Tensor4;

/// A 4-D tensor whose channel fibers are DBB-compressed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbbTensor4 {
    fibers: Vec<DbbVector>,
    dims: [usize; 4],
    config: DbbConfig,
}

impl DbbTensor4 {
    /// Compresses `t` along the channel dimension: one [`DbbVector`] per
    /// `(n, h, w)` position.
    ///
    /// # Errors
    ///
    /// Returns the first DBB bound violation (block index is local to
    /// its fiber).
    pub fn compress(t: &Tensor4, config: DbbConfig) -> Result<Self, DbbError> {
        let [n, c, h, w] = t.dims();
        let mut fibers = Vec::with_capacity(n * h * w);
        let mut fiber = vec![0i8; c];
        for ni in 0..n {
            for hi in 0..h {
                for wi in 0..w {
                    for (ci, slot) in fiber.iter_mut().enumerate() {
                        *slot = t.get(ni, ci, hi, wi);
                    }
                    fibers.push(DbbVector::compress(&fiber, config)?);
                }
            }
        }
        Ok(Self { fibers, dims: t.dims(), config })
    }

    /// Original tensor dims.
    pub fn dims(&self) -> [usize; 4] {
        self.dims
    }

    /// The shared configuration.
    pub fn config(&self) -> DbbConfig {
        self.config
    }

    /// The compressed channel fiber at `(n, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    pub fn fiber(&self, n: usize, h: usize, w: usize) -> &DbbVector {
        let [_, _, hd, wd] = self.dims;
        assert!(n < self.dims[0] && h < hd && w < wd, "fiber position out of bounds");
        &self.fibers[(n * hd + h) * wd + w]
    }

    /// Expands back to the dense tensor.
    pub fn decompress(&self) -> Tensor4 {
        let [n, c, h, w] = self.dims;
        let mut t = Tensor4::zeros(self.dims);
        for ni in 0..n {
            for hi in 0..h {
                for wi in 0..w {
                    let dense = self.fiber(ni, hi, wi).decompress();
                    for (ci, &v) in dense.iter().enumerate().take(c) {
                        t.set(ni, ci, hi, wi, v);
                    }
                }
            }
        }
        t
    }

    /// Total compressed storage in bytes (the AB footprint).
    pub fn storage_bytes(&self) -> usize {
        self.fibers.iter().map(DbbVector::storage_bytes).sum()
    }

    /// Dense storage the compression replaces.
    pub fn dense_bytes(&self) -> usize {
        self.dims.iter().product()
    }
}

/// Prunes a tensor's channel fibers to satisfy `config` (Top-NNZ
/// magnitude per block) and compresses — the offline W-DBB path for
/// weight tensors stored in NCHW.
pub fn prune_and_compress_tensor(t: &Tensor4, config: DbbConfig) -> DbbTensor4 {
    let [n, c, h, w] = t.dims();
    let mut pruned = t.clone();
    let mut fiber = vec![0i8; c];
    for ni in 0..n {
        for hi in 0..h {
            for wi in 0..w {
                for (ci, slot) in fiber.iter_mut().enumerate() {
                    *slot = pruned.get(ni, ci, hi, wi);
                }
                crate::prune::prune_vector(&mut fiber, config);
                for (ci, &v) in fiber.iter().enumerate() {
                    pruned.set(ni, ci, hi, wi, v);
                }
            }
        }
    }
    DbbTensor4::compress(&pruned, config).expect("pruned tensor satisfies its own bound")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use s2ta_tensor::sparsity::SparseSpec;

    #[test]
    fn roundtrip_dense_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = SparseSpec::random(0.5).tensor([2, 12, 3, 4], &mut rng);
        let c = DbbTensor4::compress(&t, DbbConfig::dense(8)).expect("dense bound");
        assert_eq!(c.decompress(), t);
        assert_eq!(c.dims(), [2, 12, 3, 4]);
    }

    #[test]
    fn channel_blocking_is_per_position() {
        // A tensor that is 4/8-satisfiable per channel fiber but would
        // violate the bound if blocked spatially: each channel constant.
        let mut t = Tensor4::zeros([1, 8, 2, 2]);
        for ci in 0..4 {
            for hi in 0..2 {
                for wi in 0..2 {
                    t.set(0, ci, hi, wi, 1);
                }
            }
        }
        let c = DbbTensor4::compress(&t, DbbConfig::new(4, 8)).expect("4 nz per fiber");
        assert_eq!(c.decompress(), t);
        assert_eq!(c.fiber(0, 1, 1).nnz(), 4);
    }

    #[test]
    fn violation_reported() {
        let t = Tensor4::filled([1, 8, 1, 1], 3);
        let err = DbbTensor4::compress(&t, DbbConfig::new(4, 8)).unwrap_err();
        assert!(matches!(err, DbbError::BoundExceeded { found: 8, bound: 4, .. }));
    }

    #[test]
    fn storage_accounting() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = SparseSpec::random(0.6).tensor([1, 16, 4, 4], &mut rng);
        let pruned = prune_and_compress_tensor(&t, DbbConfig::new(4, 8));
        // 16 positions x 2 blocks x 5 bytes.
        assert_eq!(pruned.storage_bytes(), 16 * 2 * 5);
        assert_eq!(pruned.dense_bytes(), 256);
    }

    #[test]
    fn pruning_keeps_top_magnitudes_per_fiber() {
        let mut t = Tensor4::zeros([1, 8, 1, 1]);
        for ci in 0..8 {
            t.set(0, ci, 0, 0, (ci as i8 + 1) * if ci % 2 == 0 { 1 } else { -1 });
        }
        let pruned = prune_and_compress_tensor(&t, DbbConfig::new(4, 8)).decompress();
        // Magnitudes 1..8: keep 5,6,7,8 (channels 4..8).
        for ci in 0..4 {
            assert_eq!(pruned.get(0, ci, 0, 0), 0);
        }
        for ci in 4..8 {
            assert_ne!(pruned.get(0, ci, 0, 0), 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_prune_compress_roundtrip(
            c in 1usize..20,
            hw in 1usize..4,
            sp in 0.0f64..0.9,
            nnz in 1usize..=8,
            seed in any::<u64>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let t = SparseSpec::random(sp).tensor([1, c, hw, hw], &mut rng);
            let cfg = DbbConfig::new(nnz, 8);
            let compressed = prune_and_compress_tensor(&t, cfg);
            let dense = compressed.decompress();
            // Every fiber block satisfies the bound.
            for hi in 0..hw {
                for wi in 0..hw {
                    let fiber: Vec<i8> = (0..c).map(|ci| dense.get(0, ci, hi, wi)).collect();
                    for chunk in fiber.chunks(8) {
                        prop_assert!(chunk.iter().filter(|&&v| v != 0).count() <= nnz);
                    }
                }
            }
            // Kept values are a subset of the originals.
            for (orig, kept) in t.data().iter().zip(dense.data()) {
                prop_assert!(*kept == 0 || kept == orig);
            }
        }
    }
}
