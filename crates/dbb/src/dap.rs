//! Dynamic Activation Pruning (paper Sec. 5.1, 6.2, Fig. 8).
//!
//! Activations are computed at runtime, so their DBB bound must be
//! enforced *online*: DAP keeps the Top-NNZ largest-magnitude elements of
//! each activation block. The hardware is a cascade of magnitude-maxpool
//! stages — each stage finds the largest remaining magnitude with `BZ-1`
//! comparators and removes it from consideration — capped at **5 stages**
//! (Sec. 6.2: higher NNZ "would usually not lead to significant
//! efficiency gains"); layers needing more run dense.
//!
//! This module provides:
//!
//! * [`dap_block`] — the software Top-NNZ reference.
//! * [`DapUnit`] — a stage-by-stage model of the cascaded-maxpool
//!   hardware, producing identical selections plus the per-stage event
//!   counts consumed by the energy model.
//! * [`LayerNnz`] / [`choose_layer_nnz`] — the per-layer variable density
//!   selection (Sec. 5.2: per-layer tuned A-DBB from 8/8 down to 2/8).

use crate::{BlockAxis, DbbConfig, DbbMatrix};
use s2ta_tensor::Matrix;

/// Maximum number of cascaded maxpool stages the DAP hardware implements.
pub const MAX_DAP_STAGES: usize = 5;

/// Software reference for DAP on one block: keeps the `nnz`
/// largest-magnitude elements (ties to the lower index), zeroes the rest.
pub fn dap_block(block: &mut [i8], nnz: usize) {
    let found = block.iter().filter(|&&v| v != 0).count();
    if found <= nnz {
        return;
    }
    let mags: Vec<f64> = block.iter().map(|&v| (v as f64).abs()).collect();
    let keep = crate::prune::top_magnitude_indices(&mags, nnz);
    let mut keep_iter = keep.iter().peekable();
    for (i, v) in block.iter_mut().enumerate() {
        if keep_iter.peek() == Some(&&i) {
            keep_iter.next();
        } else {
            *v = 0;
        }
    }
}

/// Event counts from one hardware DAP invocation, for energy accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DapEvents {
    /// Maxpool stages that actually evaluated (≤ `MAX_DAP_STAGES`).
    pub stages: u64,
    /// Binary magnitude comparisons performed (`BZ - 1` per stage).
    pub comparisons: u64,
}

/// A model of the cascaded magnitude-maxpool DAP hardware (Fig. 8).
///
/// Functionally identical to [`dap_block`] (asserted by tests and
/// property tests) but structured as the hardware is: one maxpool stage
/// per kept element, each scanning the not-yet-selected positions.
#[derive(Debug, Clone, Copy)]
pub struct DapUnit {
    bz: usize,
}

impl DapUnit {
    /// Creates a DAP unit for blocks of `bz` elements.
    ///
    /// # Panics
    ///
    /// Panics if `bz` is 0 or exceeds 16.
    pub fn new(bz: usize) -> Self {
        assert!(bz > 0 && bz <= crate::config::MAX_BZ, "unsupported block size {bz}");
        Self { bz }
    }

    /// Runs the cascade on `block`, keeping at most `nnz` elements and
    /// returning the positional mask plus event counts.
    ///
    /// # Panics
    ///
    /// Panics if `nnz > MAX_DAP_STAGES` (the hardware physically has 5
    /// stages; callers wanting denser output must bypass DAP), or if
    /// `block.len() != bz`.
    pub fn prune(&self, block: &mut [i8], nnz: usize) -> (u16, DapEvents) {
        assert_eq!(block.len(), self.bz, "block length must equal BZ");
        assert!(
            nnz <= MAX_DAP_STAGES,
            "DAP hardware has {MAX_DAP_STAGES} stages; nnz {nnz} requires bypass"
        );
        let mut selected: u16 = 0;
        let mut events = DapEvents::default();
        for _stage in 0..nnz {
            // One magnitude maxpool over the not-yet-selected elements.
            let mut best: Option<(usize, i32)> = None;
            for (i, &v) in block.iter().enumerate() {
                if selected & (1 << i) != 0 {
                    continue;
                }
                let mag = (v as i32).abs();
                match best {
                    // Strict '>' keeps the earliest index on ties, matching
                    // the comparator tree's left-to-right priority.
                    Some((_, bm)) if mag <= bm => {}
                    _ => best = Some((i, mag)),
                }
            }
            events.stages += 1;
            events.comparisons += (self.bz - 1) as u64;
            match best {
                Some((i, mag)) if mag > 0 => selected |= 1 << i,
                // All remaining elements are zero: later stages would
                // select zeros; stop early (the hardware bypasses unused
                // stages, Sec. 6.2).
                _ => break,
            }
        }
        for (i, v) in block.iter_mut().enumerate() {
            if selected & (1 << i) == 0 {
                *v = 0;
            }
        }
        (selected, events)
    }
}

/// The A-DBB density decision for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerNnz {
    /// Prune activations to `nnz` per block via DAP (1..=5).
    Prune(usize),
    /// Run the layer with dense activations (DAP bypassed) — used when
    /// the layer needs more than 5/8 density to preserve accuracy.
    Dense,
}

impl LayerNnz {
    /// Cycles the time-unrolled datapath spends per activation block for
    /// this density (paper Sec. 5.2: one element per cycle; dense = BZ).
    pub fn cycles_per_block(&self, bz: usize) -> usize {
        match self {
            LayerNnz::Prune(n) => *n,
            LayerNnz::Dense => bz,
        }
    }

    /// The effective NNZ bound (BZ when dense).
    pub fn bound(&self, bz: usize) -> usize {
        match self {
            LayerNnz::Prune(n) => *n,
            LayerNnz::Dense => bz,
        }
    }
}

/// Chooses the per-layer activation NNZ: the smallest `nnz <= 5` whose
/// Top-NNZ pruning retains at least `coverage` of the layer's L1
/// activation magnitude; falls back to [`LayerNnz::Dense`] if even 5/8
/// retains less.
///
/// This mirrors the paper's per-layer tuning (Sec. 5.2: optimal A-DBB
/// "ranges from 8/8 (dense) in early layers down to 2/8 towards the
/// end"): early layers have dense, high-information activations and get
/// large NNZ; late ReLU-sparse layers prune aggressively.
///
/// # Panics
///
/// Panics unless `0.0 < coverage <= 1.0`.
pub fn choose_layer_nnz(activations: &Matrix, bz: usize, coverage: f64) -> LayerNnz {
    assert!(coverage > 0.0 && coverage <= 1.0, "coverage must be in (0,1]");
    let total: f64 = activations.data().iter().map(|&v| (v as f64).abs()).sum();
    if total == 0.0 {
        return LayerNnz::Prune(1);
    }
    for nnz in 1..=MAX_DAP_STAGES {
        let kept = retained_magnitude(activations, bz, nnz);
        if kept / total >= coverage {
            return LayerNnz::Prune(nnz);
        }
    }
    LayerNnz::Dense
}

fn retained_magnitude(m: &Matrix, bz: usize, nnz: usize) -> f64 {
    let mut kept = 0.0;
    for c in 0..m.cols() {
        let mut r = 0;
        while r < m.rows() {
            let end = (r + bz).min(m.rows());
            let mut mags: Vec<f64> = (r..end).map(|i| (m.get(i, c) as f64).abs()).collect();
            mags.sort_by(|a, b| b.partial_cmp(a).expect("no NaN"));
            kept += mags.iter().take(nnz).sum::<f64>();
            r = end;
        }
    }
    kept
}

/// Applies DAP to an entire im2col activation matrix (columns are
/// reduction vectors) and compresses the result, returning the compressed
/// matrix and aggregate hardware events.
///
/// For [`LayerNnz::Dense`] the matrix is compressed with the dense `bz/bz`
/// bound (no pruning, no DAP events). Bounds of `1..=5` run through the
/// hardware DAP cascade; bounds **above** the 5-stage cap cannot be
/// runtime-pruned (Sec. 6.2), so they are enforced in software here —
/// representing activations already bounded by DAP-aware *training* —
/// and contribute no DAP hardware events.
pub fn dap_matrix(m: &Matrix, bz: usize, nnz: LayerNnz) -> (DbbMatrix, DapEvents) {
    let mut out = m.clone();
    let mut events = DapEvents::default();
    let config = match nnz {
        LayerNnz::Dense => DbbConfig::dense(bz),
        LayerNnz::Prune(n) if n >= bz => DbbConfig::dense(bz),
        LayerNnz::Prune(n) => {
            let unit = (n <= MAX_DAP_STAGES).then(|| DapUnit::new(bz));
            let mut block = vec![0i8; bz];
            for c in 0..out.cols() {
                let mut r = 0;
                while r < out.rows() {
                    let end = (r + bz).min(out.rows());
                    block.fill(0);
                    for (bi, row) in (r..end).enumerate() {
                        block[bi] = out.get(row, c);
                    }
                    if let Some(unit) = &unit {
                        let (_, ev) = unit.prune(&mut block, n);
                        events.stages += ev.stages;
                        events.comparisons += ev.comparisons;
                    } else {
                        dap_block(&mut block, n);
                    }
                    for (bi, row) in (r..end).enumerate() {
                        out.set(row, c, block[bi]);
                    }
                    r = end;
                }
            }
            DbbConfig::new(n, bz)
        }
    };
    let compressed = DbbMatrix::compress(&out, BlockAxis::Cols, config)
        .expect("DAP output satisfies its own bound");
    (compressed, events)
}

/// The column-strip non-zero profile of a DAP-pruned activation matrix,
/// derived **without materializing** the pruned matrix or its
/// compressed form — the operand the matrix-free `S2TA-AW` event path
/// (`s2ta_sim::tpe::run_aw_perf_profiled`) consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DapColProfile {
    /// Flat strip-major SoA tallies: `counts[s*k + p]` = surviving
    /// non-zeros among strip `s`'s columns at reduction position `p`,
    /// for column strips of the requested width (`k` = `m.rows()`).
    /// Identical to profiling `dap_matrix(m, bz, nnz).0.decompress()`
    /// (asserted by tests); the layout matches
    /// `s2ta_sim::profile::ColStripProfile::from_flat`.
    pub counts: Vec<u32>,
    /// Number of column strips.
    pub strips: usize,
    /// Reduction length (`m.rows()`).
    pub k: usize,
    /// Aggregate DAP hardware events, identical to [`dap_matrix`]'s.
    pub events: DapEvents,
    /// The compression configuration [`dap_matrix`] would choose for
    /// this `(bz, nnz)` (dense for [`LayerNnz::Dense`] and for bounds
    /// at or above `bz`).
    pub config: DbbConfig,
}

impl DapColProfile {
    /// The per-position tallies of strip `s`.
    pub fn strip(&self, s: usize) -> &[u32] {
        &self.counts[s * self.k..(s + 1) * self.k]
    }
}

/// Runs the DAP decision of [`dap_matrix`] over `m` but keeps only the
/// per-column-strip non-zero counts of the surviving elements (plus the
/// hardware events), skipping the pruned-matrix materialization and
/// compression entirely. For each strip `s` of `strip_cols` columns,
/// `counts[s*k + p]` equals the number of columns in the strip whose
/// post-DAP element at reduction position `p` is non-zero — exactly the
/// column-strip profile of `dap_matrix(m, bz, nnz).0.decompress()`.
///
/// # Panics
///
/// Panics if `strip_cols` is zero.
pub fn dap_col_profile(m: &Matrix, bz: usize, nnz: LayerNnz, strip_cols: usize) -> DapColProfile {
    dap_col_profile_with(m, bz, nnz, strip_cols, &mut Vec::new())
}

/// [`dap_col_profile`] with a caller-owned block scratch buffer: the
/// only transient the profile derivation needs. A lane that keeps the
/// buffer in its arena re-derives profiles (on activation-cache misses)
/// with zero scratch allocation; the returned profile's `counts` vector
/// is the output, not scratch, and is always freshly allocated because
/// it outlives the call inside the activation profile cache.
///
/// # Panics
///
/// Panics if `strip_cols` is zero.
pub fn dap_col_profile_with(
    m: &Matrix,
    bz: usize,
    nnz: LayerNnz,
    strip_cols: usize,
    block: &mut Vec<i8>,
) -> DapColProfile {
    assert!(strip_cols > 0, "strip width must be non-zero");
    let strips = m.cols().div_ceil(strip_cols);
    let k = m.rows();
    let mut counts = vec![0u32; strips * k];
    let mut events = DapEvents::default();
    let config = match nnz {
        // Dense (or a bound at/above BZ): nothing is pruned, the
        // profile is the raw matrix's.
        LayerNnz::Dense => DbbConfig::dense(bz),
        LayerNnz::Prune(n) if n >= bz => DbbConfig::dense(bz),
        LayerNnz::Prune(n) => {
            let unit = (n <= MAX_DAP_STAGES).then(|| DapUnit::new(bz));
            block.resize(bz, 0);
            let block = &mut block[..bz];
            for c in 0..m.cols() {
                let base = (c / strip_cols) * k;
                let strip = &mut counts[base..base + k];
                let mut r = 0;
                while r < k {
                    let end = (r + bz).min(k);
                    block.fill(0);
                    for (bi, row) in (r..end).enumerate() {
                        block[bi] = m.get(row, c);
                    }
                    if let Some(unit) = &unit {
                        let (_, ev) = unit.prune(block, n);
                        events.stages += ev.stages;
                        events.comparisons += ev.comparisons;
                    } else {
                        dap_block(block, n);
                    }
                    for (bi, row) in (r..end).enumerate() {
                        if block[bi] != 0 {
                            strip[row] += 1;
                        }
                    }
                    r = end;
                }
            }
            return DapColProfile { counts, strips, k, events, config: DbbConfig::new(n, bz) };
        }
    };
    for c in 0..m.cols() {
        let base = (c / strip_cols) * k;
        let strip = &mut counts[base..base + k];
        for (r, slot) in strip.iter_mut().enumerate() {
            if m.get(r, c) != 0 {
                *slot += 1;
            }
        }
    }
    DapColProfile { counts, strips, k, events, config }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use s2ta_tensor::sparsity::SparseSpec;

    #[test]
    fn software_dap_keeps_top_magnitudes() {
        let mut b = [0i8, 4, 1, 5, 2, 6, -1, -7];
        dap_block(&mut b, 4);
        // Top-4 magnitudes: -7, 6, 5, 4.
        assert_eq!(b, [0, 4, 0, 5, 0, 6, 0, -7]);
    }

    #[test]
    fn hardware_matches_software() {
        let unit = DapUnit::new(8);
        let mut rng = StdRng::seed_from_u64(2);
        for nnz in 1..=5usize {
            for _ in 0..200 {
                let m = SparseSpec::random(0.4).matrix(1, 8, &mut rng);
                let mut hw: Vec<i8> = m.data().to_vec();
                let mut sw = hw.clone();
                unit.prune(&mut hw, nnz);
                dap_block(&mut sw, nnz);
                assert_eq!(hw, sw, "nnz={nnz}");
            }
        }
    }

    #[test]
    fn hardware_mask_matches_survivors() {
        let unit = DapUnit::new(8);
        let mut b = [0i8, 4, 1, 5, 2, 6, -1, -7];
        let (mask, events) = unit.prune(&mut b, 4);
        assert_eq!(mask, (1 << 1) | (1 << 3) | (1 << 5) | (1 << 7));
        assert_eq!(events.stages, 4);
        assert_eq!(events.comparisons, 4 * 7);
    }

    #[test]
    fn cascade_stops_early_on_zeros() {
        let unit = DapUnit::new(8);
        let mut b = [0i8, 0, 3, 0, 0, 0, 0, 0];
        let (mask, events) = unit.prune(&mut b, 5);
        assert_eq!(mask, 1 << 2);
        // One productive stage plus the stage that found only zeros.
        assert_eq!(events.stages, 2);
    }

    #[test]
    #[should_panic(expected = "stages")]
    fn nnz_above_stage_cap_rejected() {
        let unit = DapUnit::new(8);
        let mut b = [0i8; 8];
        let _ = unit.prune(&mut b, 6);
    }

    #[test]
    fn layer_nnz_cycles() {
        assert_eq!(LayerNnz::Prune(3).cycles_per_block(8), 3);
        assert_eq!(LayerNnz::Dense.cycles_per_block(8), 8);
        assert_eq!(LayerNnz::Prune(2).bound(8), 2);
        assert_eq!(LayerNnz::Dense.bound(8), 8);
    }

    #[test]
    fn sparse_layers_get_small_nnz() {
        let mut rng = StdRng::seed_from_u64(9);
        let sparse = SparseSpec::random(0.85).matrix(64, 64, &mut rng);
        let dense = SparseSpec::random(0.05).matrix(64, 64, &mut rng);
        let n_sparse = choose_layer_nnz(&sparse, 8, 0.98);
        let n_dense = choose_layer_nnz(&dense, 8, 0.98);
        match (n_sparse, n_dense) {
            (LayerNnz::Prune(a), LayerNnz::Dense) => assert!(a <= 3, "sparse nnz {a}"),
            (LayerNnz::Prune(a), LayerNnz::Prune(b)) => {
                assert!(a < b, "sparse {a} should need fewer than dense {b}")
            }
            other => panic!("unexpected choices {other:?}"),
        }
    }

    #[test]
    fn dap_matrix_satisfies_bound_and_counts_events() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = SparseSpec::random(0.3).matrix(16, 10, &mut rng);
        let (dm, events) = dap_matrix(&m, 8, LayerNnz::Prune(3));
        assert_eq!(dm.config(), DbbConfig::new(3, 8));
        // 10 columns x 2 blocks each = 20 blocks, each ran >= 1 stage.
        assert!(events.stages >= 20);
        // Every decompressed column block has <= 3 non-zeros.
        let dec = dm.decompress();
        for c in 0..dec.cols() {
            for blk in 0..2 {
                let nnz = (blk * 8..(blk + 1) * 8).filter(|&r| dec.get(r, c) != 0).count();
                assert!(nnz <= 3);
            }
        }
    }

    #[test]
    fn dap_matrix_dense_is_lossless() {
        let mut rng = StdRng::seed_from_u64(6);
        let m = SparseSpec::random(0.5).matrix(24, 6, &mut rng);
        let (dm, events) = dap_matrix(&m, 8, LayerNnz::Dense);
        assert_eq!(dm.decompress(), m);
        assert_eq!(events, DapEvents::default());
    }

    /// Reference: profile of the materialized post-DAP matrix, as the
    /// dense path computes it (dap_matrix -> decompress -> count per
    /// column strip).
    fn materialized_profile(
        m: &Matrix,
        bz: usize,
        nnz: LayerNnz,
        strip_cols: usize,
    ) -> (Vec<u32>, DapEvents) {
        let (dm, events) = dap_matrix(m, bz, nnz);
        let dense = dm.decompress();
        let strips = dense.cols().div_ceil(strip_cols);
        let k = dense.rows();
        let mut counts = vec![0u32; strips * k];
        for c in 0..dense.cols() {
            let base = (c / strip_cols) * k;
            let strip = &mut counts[base..base + k];
            for (r, slot) in strip.iter_mut().enumerate() {
                if dense.get(r, c) != 0 {
                    *slot += 1;
                }
            }
        }
        (counts, events)
    }

    #[test]
    fn col_profile_matches_materialize_then_profile() {
        let mut rng = StdRng::seed_from_u64(11);
        // Includes a tail row block (rows 19 not a multiple of 8) and a
        // tail column strip (10 cols over strips of 4).
        let m = SparseSpec::random(0.4).matrix(19, 10, &mut rng);
        for nnz in [
            LayerNnz::Dense,
            LayerNnz::Prune(1),
            LayerNnz::Prune(3),
            LayerNnz::Prune(5),
            LayerNnz::Prune(7), // software-enforced (above the 5-stage cap)
            LayerNnz::Prune(8), // at BZ: dense fall-back
        ] {
            let direct = dap_col_profile(&m, 8, nnz, 4);
            let (counts, events) = materialized_profile(&m, 8, nnz, 4);
            assert_eq!(direct.counts, counts, "{nnz:?}");
            assert_eq!(direct.events, events, "{nnz:?}");
        }
    }

    #[test]
    fn col_profile_config_matches_dap_matrix() {
        let mut rng = StdRng::seed_from_u64(12);
        let m = SparseSpec::random(0.3).matrix(16, 6, &mut rng);
        for nnz in [LayerNnz::Dense, LayerNnz::Prune(2), LayerNnz::Prune(8)] {
            let direct = dap_col_profile(&m, 8, nnz, 8);
            assert_eq!(direct.config, dap_matrix(&m, 8, nnz).0.config(), "{nnz:?}");
        }
    }

    proptest! {
        #[test]
        fn prop_dap_col_profile_equals_materialized(
            rows in 1usize..24,
            cols in 1usize..12,
            sp in 0.0f64..0.95,
            nnz in 1usize..=8,
            strip_cols in 1usize..8,
            seed in any::<u64>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = SparseSpec::random(sp).matrix(rows, cols, &mut rng);
            let direct = dap_col_profile(&m, 8, LayerNnz::Prune(nnz), strip_cols);
            let (counts, events) = materialized_profile(&m, 8, LayerNnz::Prune(nnz), strip_cols);
            prop_assert_eq!(&direct.counts, &counts);
            prop_assert_eq!(direct.events, events);
        }

        #[test]
        fn prop_hw_sw_equivalence(
            data in prop::collection::vec(any::<i8>(), 8),
            nnz in 1usize..=5,
        ) {
            let unit = DapUnit::new(8);
            let mut hw = data.clone();
            let mut sw = data;
            unit.prune(&mut hw, nnz);
            dap_block(&mut sw, nnz);
            prop_assert_eq!(hw, sw);
        }

        #[test]
        fn prop_dap_never_increases_magnitude(
            data in prop::collection::vec(any::<i8>(), 8),
            nnz in 1usize..=5,
        ) {
            let mut pruned = data.clone();
            dap_block(&mut pruned, nnz);
            let before: i64 = data.iter().map(|&v| (v as i64).abs()).sum();
            let after: i64 = pruned.iter().map(|&v| (v as i64).abs()).sum();
            prop_assert!(after <= before);
            prop_assert!(pruned.iter().filter(|&&v| v != 0).count() <= nnz);
        }
    }
}
