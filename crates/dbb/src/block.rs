//! A single compressed DBB block: values plus positional bitmask (Fig. 5).

use crate::{DbbConfig, DbbError};

/// One compressed DBB block.
///
/// Stores exactly `config.nnz()` value bytes — zero-padded at the tail if
/// the source block had fewer non-zeros — and a `BZ`-bit positional mask
/// whose set bits mark the expanded positions of the stored values, in
/// ascending position order. This mirrors the hardware storage layout, so
/// [`DbbBlock::storage_bytes`] is exactly the SRAM footprint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DbbBlock {
    values: Vec<i8>,
    mask: u16,
    config: DbbConfig,
}

impl DbbBlock {
    /// Compresses one expanded block of exactly `config.bz()` elements.
    ///
    /// # Errors
    ///
    /// Returns [`DbbError::BoundExceeded`] (with `block == 0`) if the data
    /// has more non-zeros than `config.nnz()`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != config.bz()`.
    pub fn compress(data: &[i8], config: DbbConfig) -> Result<Self, DbbError> {
        assert_eq!(data.len(), config.bz(), "block data must be exactly BZ elements");
        let nnz_found = data.iter().filter(|&&v| v != 0).count();
        if nnz_found > config.nnz() {
            return Err(DbbError::BoundExceeded {
                block: 0,
                found: nnz_found,
                bound: config.nnz(),
            });
        }
        let mut values = Vec::with_capacity(config.nnz());
        let mut mask = 0u16;
        for (i, &v) in data.iter().enumerate() {
            if v != 0 {
                values.push(v);
                mask |= 1 << i;
            }
        }
        values.resize(config.nnz(), 0);
        Ok(Self { values, mask, config })
    }

    /// The stored (compressed) values, length exactly `config.nnz()`.
    pub fn values(&self) -> &[i8] {
        &self.values
    }

    /// The positional bitmask `M`: bit `i` set iff expanded position `i`
    /// holds a non-zero.
    pub fn mask(&self) -> u16 {
        self.mask
    }

    /// The block's configuration.
    pub fn config(&self) -> DbbConfig {
        self.config
    }

    /// Number of genuinely non-zero values stored (mask population count).
    pub fn nnz(&self) -> usize {
        self.mask.count_ones() as usize
    }

    /// Expands back to the dense `BZ`-element block.
    pub fn decompress(&self) -> Vec<i8> {
        let mut out = vec![0i8; self.config.bz()];
        let mut vi = 0;
        for (i, slot) in out.iter_mut().enumerate() {
            if self.mask & (1 << i) != 0 {
                *slot = self.values[vi];
                vi += 1;
            }
        }
        out
    }

    /// The value at expanded position `pos`, resolved through the mask —
    /// what the hardware's `M`-controlled mux (Fig. 6c/6e) steers to a MAC.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= config.bz()`.
    pub fn value_at(&self, pos: usize) -> i8 {
        assert!(pos < self.config.bz(), "position {pos} out of block");
        if self.mask & (1 << pos) == 0 {
            0
        } else {
            // Index into compressed storage = number of set mask bits
            // below `pos` (the mux select logic).
            let below = (self.mask & ((1 << pos) - 1)).count_ones() as usize;
            self.values[below]
        }
    }

    /// Iterator over `(expanded_position, value)` of the stored non-zeros,
    /// in ascending position order — the serialization order of the
    /// time-unrolled datapath (Fig. 6e).
    pub fn nonzeros(&self) -> impl Iterator<Item = (usize, i8)> + '_ {
        let bz = self.config.bz();
        (0..bz).filter_map(move |i| {
            if self.mask & (1 << i) != 0 {
                Some((i, self.value_at(i)))
            } else {
                None
            }
        })
    }

    /// Storage footprint in bytes: `NNZ` values + mask bytes.
    pub fn storage_bytes(&self) -> usize {
        self.config.block_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg48() -> DbbConfig {
        DbbConfig::new(4, 8)
    }

    #[test]
    fn paper_fig5_example() {
        // Fig. 5: a 4/8 block keeps the non-zeros and a bitmask.
        let data = [0, 9, 0, 4, 3, 0, 5, 0];
        let b = DbbBlock::compress(&data, cfg48()).unwrap();
        assert_eq!(b.values(), &[9, 4, 3, 5]);
        assert_eq!(b.mask(), 0b0101_1010);
        assert_eq!(b.decompress(), data);
        assert_eq!(b.nnz(), 4);
        assert_eq!(b.storage_bytes(), 5);
    }

    #[test]
    fn underfull_block_zero_pads() {
        let data = [0, 0, -3, 0, 0, 0, 0, 0];
        let b = DbbBlock::compress(&data, cfg48()).unwrap();
        assert_eq!(b.values(), &[-3, 0, 0, 0]);
        assert_eq!(b.nnz(), 1);
        assert_eq!(b.decompress(), data);
    }

    #[test]
    fn bound_violation_detected() {
        let data = [1, 2, 3, 4, 5, 0, 0, 0];
        let err = DbbBlock::compress(&data, cfg48()).unwrap_err();
        assert_eq!(err, DbbError::BoundExceeded { block: 0, found: 5, bound: 4 });
    }

    #[test]
    fn value_at_mux_semantics() {
        let data = [0, 9, 0, 4, 3, 0, 5, 0];
        let b = DbbBlock::compress(&data, cfg48()).unwrap();
        for (i, &expect) in data.iter().enumerate() {
            assert_eq!(b.value_at(i), expect, "position {i}");
        }
    }

    #[test]
    fn nonzeros_in_position_order() {
        let data = [0, 9, 0, 4, 3, 0, 5, 0];
        let b = DbbBlock::compress(&data, cfg48()).unwrap();
        let nz: Vec<_> = b.nonzeros().collect();
        assert_eq!(nz, vec![(1, 9), (3, 4), (4, 3), (6, 5)]);
    }

    #[test]
    fn dense_config_roundtrip() {
        let data = [1, 2, 3, 4, 5, 6, 7, 8];
        let b = DbbBlock::compress(&data, DbbConfig::dense(8)).unwrap();
        assert_eq!(b.decompress(), data);
        assert_eq!(b.storage_bytes(), 8);
    }

    #[test]
    fn all_zero_block() {
        let data = [0i8; 8];
        let b = DbbBlock::compress(&data, cfg48()).unwrap();
        assert_eq!(b.nnz(), 0);
        assert_eq!(b.mask(), 0);
        assert_eq!(b.decompress(), data);
        assert!(b.nonzeros().next().is_none());
    }
}
