//! Compressed DBB vectors and matrices.

use crate::{DbbBlock, DbbConfig, DbbError};
use s2ta_tensor::Matrix;

/// A reduction vector compressed as a sequence of DBB blocks.
///
/// The final block is zero-padded when the vector length is not a multiple
/// of `BZ` (the hardware reads a whole block regardless).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbbVector {
    blocks: Vec<DbbBlock>,
    len: usize,
    config: DbbConfig,
}

impl DbbVector {
    /// Compresses a dense reduction vector.
    ///
    /// # Errors
    ///
    /// Returns [`DbbError::BoundExceeded`] naming the first offending
    /// block if any block has more than `config.nnz()` non-zeros.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn compress(data: &[i8], config: DbbConfig) -> Result<Self, DbbError> {
        assert!(!data.is_empty(), "cannot compress an empty vector");
        let bz = config.bz();
        let mut blocks = Vec::with_capacity(data.len().div_ceil(bz));
        let mut buf = vec![0i8; bz];
        for (bi, chunk) in data.chunks(bz).enumerate() {
            buf.fill(0);
            buf[..chunk.len()].copy_from_slice(chunk);
            let block = DbbBlock::compress(&buf, config).map_err(|e| match e {
                DbbError::BoundExceeded { found, bound, .. } => {
                    DbbError::BoundExceeded { block: bi, found, bound }
                }
            })?;
            blocks.push(block);
        }
        Ok(Self { blocks, len: data.len(), config })
    }

    /// The compressed blocks, in reduction order.
    pub fn blocks(&self) -> &[DbbBlock] {
        &self.blocks
    }

    /// Length of the original (expanded) vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the original vector was empty (never — compression rejects it).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configuration all blocks share.
    pub fn config(&self) -> DbbConfig {
        self.config
    }

    /// Expands back to the dense vector (original length, padding dropped).
    pub fn decompress(&self) -> Vec<i8> {
        let mut out = Vec::with_capacity(self.blocks.len() * self.config.bz());
        for b in &self.blocks {
            out.extend_from_slice(&b.decompress());
        }
        out.truncate(self.len);
        out
    }

    /// Total compressed storage in bytes (values + masks).
    pub fn storage_bytes(&self) -> usize {
        self.blocks.len() * self.config.block_bytes()
    }

    /// Total non-zeros actually stored.
    pub fn nnz(&self) -> usize {
        self.blocks.iter().map(|b| b.nnz()).sum()
    }
}

/// How a matrix maps to reduction vectors for DBB blocking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockAxis {
    /// Each row is a reduction vector (weight matrices: `M x K`).
    Rows,
    /// Each column is a reduction vector (im2col activations: `K x N`).
    Cols,
}

/// A matrix whose reduction vectors are DBB-compressed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbbMatrix {
    vectors: Vec<DbbVector>,
    axis: BlockAxis,
    rows: usize,
    cols: usize,
    config: DbbConfig,
}

impl DbbMatrix {
    /// Compresses `m` along `axis`.
    ///
    /// # Errors
    ///
    /// Returns the first DBB bound violation encountered.
    pub fn compress(m: &Matrix, axis: BlockAxis, config: DbbConfig) -> Result<Self, DbbError> {
        let vectors = match axis {
            BlockAxis::Rows => (0..m.rows())
                .map(|r| DbbVector::compress(m.row(r), config))
                .collect::<Result<Vec<_>, _>>()?,
            BlockAxis::Cols => (0..m.cols())
                .map(|c| {
                    let col: Vec<i8> = (0..m.rows()).map(|r| m.get(r, c)).collect();
                    DbbVector::compress(&col, config)
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        Ok(Self { vectors, axis, rows: m.rows(), cols: m.cols(), config })
    }

    /// The compressed reduction vectors (rows or columns, per `axis`).
    pub fn vectors(&self) -> &[DbbVector] {
        &self.vectors
    }

    /// Blocking orientation.
    pub fn axis(&self) -> BlockAxis {
        self.axis
    }

    /// The shared configuration.
    pub fn config(&self) -> DbbConfig {
        self.config
    }

    /// Original matrix shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Expands back to the dense matrix.
    pub fn decompress(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        match self.axis {
            BlockAxis::Rows => {
                for (r, v) in self.vectors.iter().enumerate() {
                    for (c, val) in v.decompress().into_iter().enumerate() {
                        m.set(r, c, val);
                    }
                }
            }
            BlockAxis::Cols => {
                for (c, v) in self.vectors.iter().enumerate() {
                    for (r, val) in v.decompress().into_iter().enumerate() {
                        m.set(r, c, val);
                    }
                }
            }
        }
        m
    }

    /// Total compressed storage in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.vectors.iter().map(DbbVector::storage_bytes).sum()
    }

    /// Dense storage the compression replaces, in bytes.
    pub fn dense_bytes(&self) -> usize {
        self.rows * self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use s2ta_tensor::sparsity::SparseSpec;

    #[test]
    fn vector_roundtrip_with_tail_padding() {
        let cfg = DbbConfig::new(4, 8);
        let data: Vec<i8> = vec![1, 0, 0, 2, 0, 0, 0, 3, 4, 0, 5]; // len 11
        let v = DbbVector::compress(&data, cfg).unwrap();
        assert_eq!(v.blocks().len(), 2);
        assert_eq!(v.decompress(), data);
        assert_eq!(v.nnz(), 5);
        assert_eq!(v.storage_bytes(), 10);
    }

    #[test]
    fn vector_violation_names_block() {
        let cfg = DbbConfig::new(2, 8);
        let mut data = vec![0i8; 16];
        data[8..12].copy_from_slice(&[1, 2, 3, 0]);
        let err = DbbVector::compress(&data, cfg).unwrap_err();
        assert_eq!(err, DbbError::BoundExceeded { block: 1, found: 3, bound: 2 });
    }

    #[test]
    fn matrix_roundtrip_both_axes() {
        let mut rng = rand::rngs::mock::StepRng::new(12345, 98765);
        let m = SparseSpec::random(0.6).matrix(12, 20, &mut rng);
        let cfg = DbbConfig::dense(8); // dense bound always satisfiable
        for axis in [BlockAxis::Rows, BlockAxis::Cols] {
            let dm = DbbMatrix::compress(&m, axis, cfg).unwrap();
            assert_eq!(dm.decompress(), m);
            assert_eq!(dm.shape(), (12, 20));
        }
    }

    #[test]
    fn compression_saves_bytes() {
        // 4/8-satisfying matrix: alternate zero / non-zero.
        let data: Vec<i8> = (0..64).map(|i| if i % 2 == 0 { 0 } else { 1 }).collect();
        let m = Matrix::from_vec(8, 8, data);
        let dm = DbbMatrix::compress(&m, BlockAxis::Rows, DbbConfig::new(4, 8)).unwrap();
        assert_eq!(dm.storage_bytes(), 8 * 5);
        assert_eq!(dm.dense_bytes(), 64);
    }

    proptest! {
        #[test]
        fn prop_vector_roundtrip_dense_bound(data in prop::collection::vec(any::<i8>(), 1..120)) {
            // With the dense bound every vector compresses and round-trips.
            let v = DbbVector::compress(&data, DbbConfig::dense(8)).unwrap();
            prop_assert_eq!(v.decompress(), data);
        }

        #[test]
        fn prop_storage_never_exceeds_dense_plus_mask(
            data in prop::collection::vec(any::<i8>(), 1..120),
            nnz in 1usize..8,
        ) {
            let cfg = DbbConfig::new(nnz, 8);
            if let Ok(v) = DbbVector::compress(&data, cfg) {
                let blocks = data.len().div_ceil(8);
                prop_assert_eq!(v.storage_bytes(), blocks * (nnz + 1));
                prop_assert!(v.nnz() <= blocks * nnz);
            }
        }
    }
}
