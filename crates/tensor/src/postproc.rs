//! Post-GEMM processing — the work the paper assigns to the Cortex-M33
//! MCU cluster (Sec. 6.3): requantization of `i32` accumulators back to
//! `i8`, activation functions, and pooling.
//!
//! These run between accelerator layers in the functional inference
//! pipeline (`s2ta_core::infer`), so the whole multi-layer forward pass
//! is bit-exactly defined.

use crate::{AccMatrix, Matrix};

/// Fixed-point requantization parameters: `out = clamp(round(acc * m / 2^s))`.
///
/// The multiplier/shift pair is the standard integer-only requantization
/// used by INT8 deployments (a positive multiplier below `2^15` and a
/// right-shift).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Requant {
    /// Fixed-point multiplier (positive).
    pub multiplier: i32,
    /// Right shift (0..=31).
    pub shift: u32,
}

impl Requant {
    /// Creates requantization parameters.
    ///
    /// # Panics
    ///
    /// Panics if `multiplier <= 0` or `shift > 31`.
    pub fn new(multiplier: i32, shift: u32) -> Self {
        assert!(multiplier > 0, "requant multiplier must be positive");
        assert!(shift <= 31, "requant shift out of range");
        Self { multiplier, shift }
    }

    /// Chooses parameters that map the maximum absolute accumulator value
    /// of `acc` to 127 (per-tensor symmetric), with a 15-bit multiplier.
    pub fn fit(acc: &AccMatrix) -> Self {
        let max = acc.data().iter().map(|&v| (v as i64).abs()).max().unwrap_or(0);
        if max == 0 {
            return Self::new(1, 0);
        }
        // Find scale = 127/max as multiplier/2^shift with multiplier in
        // [2^14, 2^15).
        let scale = 127.0 / max as f64;
        let mut shift = 0u32;
        let mut m = scale;
        while m < (1 << 14) as f64 && shift < 31 {
            m *= 2.0;
            shift += 1;
        }
        Self::new((m.round() as i32).clamp(1, (1 << 15) - 1), shift)
    }

    /// Requantizes one accumulator value (round-half-away, saturating).
    #[inline]
    pub fn apply(&self, acc: i32) -> i8 {
        let prod = acc as i64 * self.multiplier as i64;
        let half = 1i64 << self.shift >> 1;
        // Round the magnitude (arithmetic >> on negatives floors toward
        // -inf, which would bias negative values down by one).
        let rounded_mag = (prod.abs() + half) >> self.shift;
        let rounded = if prod < 0 { -rounded_mag } else { rounded_mag };
        rounded.clamp(-127, 127) as i8
    }
}

/// ReLU then requantize an accumulator matrix into an `i8` matrix — the
/// standard between-layer step (negative accumulators become exactly 0,
/// feeding the next layer's activation sparsity).
pub fn relu_requant(acc: &AccMatrix, rq: Requant) -> Matrix {
    let data = acc.data().iter().map(|&v| if v <= 0 { 0 } else { rq.apply(v) }).collect();
    Matrix::from_vec(acc.rows(), acc.cols(), data)
}

/// Requantize without an activation function (e.g. the logits layer).
pub fn requant(acc: &AccMatrix, rq: Requant) -> Matrix {
    let data = acc.data().iter().map(|&v| rq.apply(v)).collect();
    Matrix::from_vec(acc.rows(), acc.cols(), data)
}

/// 2x2 max-pool with stride 2 over a `channels x (h*w)` activation
/// matrix laid out row-per-channel (the layout the inference pipeline
/// uses between conv layers). Odd trailing rows/columns are dropped,
/// as in classic LeNet/AlexNet pooling.
///
/// # Panics
///
/// Panics if `m.cols() != h * w` or the pooled size would be zero.
pub fn maxpool2x2(m: &Matrix, h: usize, w: usize) -> (Matrix, usize, usize) {
    assert_eq!(m.cols(), h * w, "spatial dims do not match matrix width");
    let (oh, ow) = (h / 2, w / 2);
    assert!(oh > 0 && ow > 0, "pooling would produce an empty map");
    let mut out = Matrix::zeros(m.rows(), oh * ow);
    for c in 0..m.rows() {
        let row = m.row(c);
        for y in 0..oh {
            for x in 0..ow {
                let mut best = i8::MIN;
                for dy in 0..2 {
                    for dx in 0..2 {
                        best = best.max(row[(y * 2 + dy) * w + (x * 2 + dx)]);
                    }
                }
                out.set(c, y * ow + x, best);
            }
        }
    }
    (out, oh, ow)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requant_maps_max_to_127() {
        let acc = AccMatrix::from_vec(1, 3, vec![1000, -500, 250]);
        let rq = Requant::fit(&acc);
        let out = requant(&acc, rq);
        assert_eq!(out.get(0, 0), 127);
        assert!(out.get(0, 1) < 0);
        // Proportionality within rounding.
        assert!((out.get(0, 2) as i32 - 32).abs() <= 1);
    }

    #[test]
    fn relu_zeroes_negatives() {
        let acc = AccMatrix::from_vec(1, 4, vec![-3, 0, 5, 900]);
        let out = relu_requant(&acc, Requant::fit(&acc));
        assert_eq!(out.get(0, 0), 0);
        assert_eq!(out.get(0, 1), 0);
        assert!(out.get(0, 2) >= 0);
        assert_eq!(out.get(0, 3), 127);
    }

    #[test]
    fn all_zero_accumulators_are_stable() {
        let acc = AccMatrix::zeros(2, 2);
        let rq = Requant::fit(&acc);
        assert_eq!(requant(&acc, rq).data(), &[0, 0, 0, 0]);
    }

    #[test]
    fn rounding_is_symmetric() {
        let rq = Requant::new(1 << 14, 15); // x 0.5
        assert_eq!(rq.apply(3), 2); // 1.5 rounds away from zero
        assert_eq!(rq.apply(-3), -2);
        assert_eq!(rq.apply(2), 1);
        assert_eq!(rq.apply(-2), -1);
    }

    #[test]
    fn maxpool_known_case() {
        // 1 channel, 4x4 ramp.
        let m = Matrix::from_vec(1, 16, (0..16).map(|v| v as i8).collect());
        let (p, oh, ow) = maxpool2x2(&m, 4, 4);
        assert_eq!((oh, ow), (2, 2));
        assert_eq!(p.data(), &[5, 7, 13, 15]);
    }

    #[test]
    fn maxpool_drops_odd_tail() {
        let m = Matrix::from_vec(1, 15, (0..15).map(|v| v as i8).collect());
        let (p, oh, ow) = maxpool2x2(&m, 5, 3);
        assert_eq!((oh, ow), (2, 1));
        assert_eq!(p.len(), 2);
    }

    #[test]
    #[should_panic(expected = "spatial dims")]
    fn maxpool_checks_dims() {
        let m = Matrix::zeros(1, 10);
        let _ = maxpool2x2(&m, 4, 4);
    }
}
