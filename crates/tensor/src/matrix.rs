//! Row-major operand (`i8`) and accumulator (`i32`) matrices.

use std::fmt;

macro_rules! matrix_impl {
    ($(#[$doc:meta])* $name:ident, $elem:ty) => {
        $(#[$doc])*
        #[derive(Clone, PartialEq, Eq, Hash)]
        pub struct $name {
            rows: usize,
            cols: usize,
            data: Vec<$elem>,
        }

        impl $name {
            /// Creates a zero-filled `rows x cols` matrix.
            ///
            /// # Panics
            ///
            /// Panics if either dimension is zero.
            pub fn zeros(rows: usize, cols: usize) -> Self {
                assert!(rows > 0 && cols > 0, "matrix dims must be non-zero");
                Self { rows, cols, data: vec![0; rows * cols] }
            }

            /// Builds a matrix from row-major data.
            ///
            /// # Panics
            ///
            /// Panics if `data.len() != rows * cols` or a dimension is zero.
            pub fn from_vec(rows: usize, cols: usize, data: Vec<$elem>) -> Self {
                assert!(rows > 0 && cols > 0, "matrix dims must be non-zero");
                assert_eq!(data.len(), rows * cols, "data length mismatch");
                Self { rows, cols, data }
            }

            /// Number of rows.
            pub fn rows(&self) -> usize {
                self.rows
            }

            /// Number of columns.
            pub fn cols(&self) -> usize {
                self.cols
            }

            /// Total number of elements.
            pub fn len(&self) -> usize {
                self.data.len()
            }

            /// Whether the matrix is empty (never: dims are non-zero).
            pub fn is_empty(&self) -> bool {
                self.data.is_empty()
            }

            /// Row-major flat data.
            pub fn data(&self) -> &[$elem] {
                &self.data
            }

            /// Mutable row-major flat data.
            pub fn data_mut(&mut self) -> &mut [$elem] {
                &mut self.data
            }

            /// Consumes the matrix, returning its row-major backing
            /// vector — lets arenas recycle the storage of a matrix
            /// they produced (pair with `from_vec` to rebuild).
            pub fn into_data(self) -> Vec<$elem> {
                self.data
            }

            /// Element at `(r, c)`.
            #[inline]
            pub fn get(&self, r: usize, c: usize) -> $elem {
                debug_assert!(r < self.rows && c < self.cols);
                self.data[r * self.cols + c]
            }

            /// Sets the element at `(r, c)`.
            #[inline]
            pub fn set(&mut self, r: usize, c: usize, v: $elem) {
                debug_assert!(r < self.rows && c < self.cols);
                self.data[r * self.cols + c] = v;
            }

            /// A borrowed view of row `r`.
            #[inline]
            pub fn row(&self, r: usize) -> &[$elem] {
                debug_assert!(r < self.rows);
                &self.data[r * self.cols..(r + 1) * self.cols]
            }

            /// Number of zero elements.
            pub fn count_zeros(&self) -> usize {
                self.data.iter().filter(|&&v| v == 0).count()
            }

            /// Fraction of zero elements in `[0, 1]`.
            pub fn sparsity(&self) -> f64 {
                self.count_zeros() as f64 / self.len() as f64
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(
                    f,
                    concat!(stringify!($name), "[{}x{}, {:.1}% zero]"),
                    self.rows,
                    self.cols,
                    self.sparsity() * 100.0
                )
            }
        }
    };
}

matrix_impl!(
    /// A dense row-major `i8` operand matrix.
    ///
    /// Weights are `M x K` (row per output channel), im2col activations are
    /// `K x N` (column per output pixel); `K` is the reduction dimension
    /// with the input channel innermost so DBB blocks are contiguous.
    Matrix,
    i8
);

matrix_impl!(
    /// A dense row-major `i32` accumulator matrix (GEMM output).
    ///
    /// INT8 x INT8 products accumulate exactly in `i32` for all practical
    /// reduction depths, matching the 4-byte accumulators of the paper's
    /// PEs (Table 1).
    AccMatrix,
    i32
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_roundtrip() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, -5);
        assert_eq!(m.get(1, 2), -5);
        assert_eq!(m.row(1), &[0, 0, -5]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.len(), 6);
    }

    #[test]
    fn acc_matrix_holds_i32() {
        let mut a = AccMatrix::zeros(1, 1);
        a.set(0, 0, 1 << 30);
        assert_eq!(a.get(0, 0), 1 << 30);
    }

    #[test]
    fn sparsity_fraction() {
        let m = Matrix::from_vec(2, 2, vec![0, 3, 0, 0]);
        assert!((m.sparsity() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_vec_checks_len() {
        let _ = Matrix::from_vec(2, 2, vec![1]);
    }

    #[test]
    fn debug_nonempty() {
        assert!(!format!("{:?}", Matrix::zeros(1, 1)).is_empty());
        assert!(!format!("{:?}", AccMatrix::zeros(1, 1)).is_empty());
    }
}
