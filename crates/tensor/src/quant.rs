//! Post-training `f32` to `i8` quantization.
//!
//! The paper evaluates INT8 models exclusively ("INT8 ... is the most
//! widely used" for mobile deployment, Sec. 1). The training substrate
//! (`s2ta-nn`) trains in `f32` and quantizes weights/activations with the
//! symmetric per-tensor scheme implemented here before handing tensors to
//! the accelerator.

/// Symmetric per-tensor quantization parameters: `real = scale * int8`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Scale factor (strictly positive).
    pub scale: f32,
}

impl QuantParams {
    /// Chooses the scale that maps the maximum-magnitude value of `data`
    /// to 127 (symmetric, zero-point 0). An all-zero input gets scale 1.
    pub fn fit(data: &[f32]) -> Self {
        let max = data.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let scale = if max > 0.0 { max / 127.0 } else { 1.0 };
        Self { scale }
    }

    /// Quantizes one value with round-to-nearest and saturation.
    #[inline]
    pub fn quantize(&self, v: f32) -> i8 {
        let q = (v / self.scale).round();
        q.clamp(-127.0, 127.0) as i8
    }

    /// Dequantizes one value.
    #[inline]
    pub fn dequantize(&self, q: i8) -> f32 {
        q as f32 * self.scale
    }

    /// Quantizes a slice.
    pub fn quantize_all(&self, data: &[f32]) -> Vec<i8> {
        data.iter().map(|&v| self.quantize(v)).collect()
    }
}

/// Quantizes `data` with a freshly fitted scale, returning the int data
/// and the parameters.
pub fn quantize_tensor(data: &[f32]) -> (Vec<i8>, QuantParams) {
    let params = QuantParams::fit(data);
    (params.quantize_all(data), params)
}

/// Root-mean-square quantization error of round-tripping `data`.
pub fn quant_rmse(data: &[f32], params: QuantParams) -> f32 {
    if data.is_empty() {
        return 0.0;
    }
    let sum: f32 = data
        .iter()
        .map(|&v| {
            let e = v - params.dequantize(params.quantize(v));
            e * e
        })
        .sum();
    (sum / data.len() as f32).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_maps_to_127() {
        let data = [0.5f32, -2.0, 1.0];
        let (q, p) = quantize_tensor(&data);
        assert_eq!(q[1], -127);
        assert!((p.dequantize(q[1]) - (-2.0)).abs() < 1e-6);
    }

    #[test]
    fn zeros_survive() {
        let data = [0.0f32, 1.0, 0.0];
        let (q, _) = quantize_tensor(&data);
        assert_eq!(q[0], 0);
        assert_eq!(q[2], 0);
    }

    #[test]
    fn all_zero_input_is_stable() {
        let (q, p) = quantize_tensor(&[0.0f32; 4]);
        assert_eq!(q, vec![0i8; 4]);
        assert_eq!(p.scale, 1.0);
    }

    #[test]
    fn saturation_clamps() {
        let p = QuantParams { scale: 0.01 };
        assert_eq!(p.quantize(1e9), 127);
        assert_eq!(p.quantize(-1e9), -127);
    }

    #[test]
    fn rmse_is_small_relative_to_scale() {
        let data: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.37).sin()).collect();
        let p = QuantParams::fit(&data);
        // Round-to-nearest error is bounded by scale/2 per element.
        assert!(quant_rmse(&data, p) <= p.scale * 0.5);
        assert_eq!(quant_rmse(&[], p), 0.0);
    }
}
