//! Sparsity statistics and deterministic synthetic sparse data generation.
//!
//! The paper's microbenchmarks (Sec. 8.2) sweep weight/activation sparsity
//! on synthetic layers; full-model runs use per-layer activation sparsity
//! profiles. Both need reproducible sparse tensors with controlled zero
//! fractions — random (unstructured) zeros for the baselines, and
//! DBB-prunable distributions for S2TA (the DBB pruning itself lives in
//! `s2ta-dbb`).

use crate::{Matrix, Tensor4};
use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// A specification for generating synthetic sparse INT8 data.
///
/// Values are drawn uniformly from `[-127, 127] \ {0}` and then zeroed
/// independently with probability `sparsity` (unstructured/random sparsity,
/// as produced by ReLU activations and unstructured pruning).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseSpec {
    sparsity: f64,
}

impl SparseSpec {
    /// Random (unstructured) sparsity with the given zero fraction.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= sparsity <= 1.0`.
    pub fn random(sparsity: f64) -> Self {
        assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0,1], got {sparsity}");
        Self { sparsity }
    }

    /// Fully dense data (no zeros).
    pub fn dense() -> Self {
        Self::random(0.0)
    }

    /// The configured zero fraction.
    pub fn sparsity(&self) -> f64 {
        self.sparsity
    }

    /// Generates a tensor with this sparsity.
    pub fn tensor<R: Rng>(&self, dims: [usize; 4], rng: &mut R) -> Tensor4 {
        let len = dims.iter().product();
        Tensor4::from_vec(dims, self.values(len, rng))
    }

    /// Generates a matrix with this sparsity.
    pub fn matrix<R: Rng>(&self, rows: usize, cols: usize, rng: &mut R) -> Matrix {
        Matrix::from_vec(rows, cols, self.values(rows * cols, rng))
    }

    /// Generates a matrix with this sparsity into recycled storage:
    /// `buf` (typically a previous matrix's
    /// [`Matrix::into_data`]) backs the result, so a warm buffer of
    /// sufficient capacity makes the generation allocation-free. Draw
    /// order is identical to [`SparseSpec::matrix`], so the same RNG
    /// state yields a bit-identical matrix.
    pub fn matrix_into<R: Rng>(
        &self,
        rows: usize,
        cols: usize,
        rng: &mut R,
        mut buf: Vec<i8>,
    ) -> Matrix {
        buf.clear();
        self.values_into(rows * cols, rng, &mut buf);
        Matrix::from_vec(rows, cols, buf)
    }

    fn values<R: Rng>(&self, len: usize, rng: &mut R) -> Vec<i8> {
        let mut out = Vec::with_capacity(len);
        self.values_into(len, rng, &mut out);
        out
    }

    fn values_into<R: Rng>(&self, len: usize, rng: &mut R, out: &mut Vec<i8>) {
        let dist = Uniform::new_inclusive(-127i8, 127i8);
        out.extend((0..len).map(|_| {
            if rng.gen_bool(self.sparsity) {
                0
            } else {
                // Re-draw zeros so "non-zero" positions are truly
                // non-zero and the realized sparsity tracks the spec.
                loop {
                    let v = dist.sample(rng);
                    if v != 0 {
                        break v;
                    }
                }
            }
        }));
    }
}

/// Density statistics of a channel-blocked tensor: for each block of `bz`
/// consecutive reduction elements, how many are non-zero.
///
/// This is the quantity DBB bounds; the histogram drives the analytic
/// cycle model for time-unrolled execution (cycles per block = NNZ).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockDensity {
    /// `histogram[i]` = number of blocks with exactly `i` non-zeros.
    pub histogram: Vec<u64>,
    /// Block size the histogram was computed for.
    pub bz: usize,
}

impl BlockDensity {
    /// Computes the per-block non-zero histogram of a matrix whose rows are
    /// reduction vectors (length padded up to a multiple of `bz` with
    /// zeros, matching the hardware's zero-padded final block).
    ///
    /// # Panics
    ///
    /// Panics if `bz == 0`.
    pub fn of_rows(m: &Matrix, bz: usize) -> Self {
        assert!(bz > 0, "block size must be non-zero");
        let mut histogram = vec![0u64; bz + 1];
        for r in 0..m.rows() {
            let row = m.row(r);
            for chunk in row.chunks(bz) {
                let nnz = chunk.iter().filter(|&&v| v != 0).count();
                histogram[nnz] += 1;
            }
        }
        Self { histogram, bz }
    }

    /// Computes the histogram over columns (each column is a reduction
    /// vector), the orientation of im2col activation matrices.
    ///
    /// # Panics
    ///
    /// Panics if `bz == 0`.
    pub fn of_cols(m: &Matrix, bz: usize) -> Self {
        assert!(bz > 0, "block size must be non-zero");
        let mut histogram = vec![0u64; bz + 1];
        for c in 0..m.cols() {
            let mut r = 0;
            while r < m.rows() {
                let end = (r + bz).min(m.rows());
                let nnz = (r..end).filter(|&i| m.get(i, c) != 0).count();
                histogram[nnz] += 1;
                r = end;
            }
        }
        Self { histogram, bz }
    }

    /// Total number of blocks.
    pub fn blocks(&self) -> u64 {
        self.histogram.iter().sum()
    }

    /// Mean non-zeros per block.
    pub fn mean_nnz(&self) -> f64 {
        let total: u64 =
            self.histogram.iter().enumerate().map(|(nnz, &count)| nnz as u64 * count).sum();
        total as f64 / self.blocks() as f64
    }

    /// Fraction of blocks whose NNZ exceeds `bound` — i.e. the blocks DAP
    /// would have to prune to satisfy a `bound/bz` DBB constraint.
    pub fn violation_rate(&self, bound: usize) -> f64 {
        let over: u64 = self.histogram.iter().skip(bound + 1).sum();
        over as f64 / self.blocks() as f64
    }
}

/// Summary sparsity statistics for an operand matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsityStats {
    /// Fraction of zero elements.
    pub zero_fraction: f64,
    /// Total elements.
    pub elements: usize,
}

impl SparsityStats {
    /// Computes stats for a matrix.
    pub fn of(m: &Matrix) -> Self {
        Self { zero_fraction: m.sparsity(), elements: m.len() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn realized_sparsity_tracks_spec() {
        let mut rng = StdRng::seed_from_u64(42);
        for target in [0.0, 0.25, 0.5, 0.8] {
            let m = SparseSpec::random(target).matrix(64, 256, &mut rng);
            assert!((m.sparsity() - target).abs() < 0.02, "target {target}, got {}", m.sparsity());
        }
    }

    #[test]
    fn dense_spec_has_no_zeros() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = SparseSpec::dense().matrix(16, 16, &mut rng);
        assert_eq!(m.count_zeros(), 0);
    }

    #[test]
    fn block_density_row_histogram() {
        // Row of 8 with 3 non-zeros + row of 8 with 8 non-zeros.
        let mut data = vec![0i8; 8];
        data[0] = 1;
        data[3] = 2;
        data[7] = -1;
        data.extend_from_slice(&[1; 8]);
        let m = Matrix::from_vec(2, 8, data);
        let d = BlockDensity::of_rows(&m, 8);
        assert_eq!(d.blocks(), 2);
        assert_eq!(d.histogram[3], 1);
        assert_eq!(d.histogram[8], 1);
        assert!((d.mean_nnz() - 5.5).abs() < 1e-12);
        assert!((d.violation_rate(4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn block_density_cols_partial_final_block() {
        // 10 rows, bz 8 -> blocks of 8 and 2 per column.
        let m = Matrix::from_vec(10, 1, vec![1, 0, 0, 0, 0, 0, 0, 0, 1, 1]);
        let d = BlockDensity::of_cols(&m, 8);
        assert_eq!(d.blocks(), 2);
        assert_eq!(d.histogram[1], 1); // first block: one non-zero
        assert_eq!(d.histogram[2], 1); // tail block: two non-zeros
    }

    #[test]
    fn mean_nnz_of_random_matches_density() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = SparseSpec::random(0.5).matrix(128, 128, &mut rng);
        let d = BlockDensity::of_cols(&m, 8);
        assert!((d.mean_nnz() - 4.0).abs() < 0.2, "mean {}", d.mean_nnz());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SparseSpec::random(0.5).matrix(8, 8, &mut StdRng::seed_from_u64(9));
        let b = SparseSpec::random(0.5).matrix(8, 8, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
