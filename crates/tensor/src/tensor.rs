//! Dense NCHW `i8` tensors.

use std::fmt;

/// A dense 4-D `i8` tensor in NCHW layout.
///
/// This is deliberately a plain, validated container: the simulator and the
/// DBB compressor index it directly, and all views are explicit copies so
/// there is never a question of aliasing when the simulated datapath is
/// cross-checked against the reference kernels.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Tensor4 {
    dims: [usize; 4],
    data: Vec<i8>,
}

impl Tensor4 {
    /// Creates a zero-filled tensor with dims `[n, c, h, w]`.
    ///
    /// # Panics
    ///
    /// Panics if any dim is zero.
    pub fn zeros(dims: [usize; 4]) -> Self {
        Self::filled(dims, 0)
    }

    /// Creates a tensor with every element set to `value`.
    ///
    /// # Panics
    ///
    /// Panics if any dim is zero.
    pub fn filled(dims: [usize; 4], value: i8) -> Self {
        assert!(dims.iter().all(|&d| d > 0), "tensor dims must be non-zero: {dims:?}");
        let len = dims.iter().product();
        Self { dims, data: vec![value; len] }
    }

    /// Builds a tensor from existing data (row-major NCHW).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `dims`, or any
    /// dim is zero.
    pub fn from_vec(dims: [usize; 4], data: Vec<i8>) -> Self {
        assert!(dims.iter().all(|&d| d > 0), "tensor dims must be non-zero: {dims:?}");
        let len: usize = dims.iter().product();
        assert_eq!(data.len(), len, "data length {} != dims product {len}", data.len());
        Self { dims, data }
    }

    /// The tensor dims `[n, c, h, w]`.
    pub fn dims(&self) -> [usize; 4] {
        self.dims
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never true: dims are non-zero).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat element access in NCHW order.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Mutable flat element access in NCHW order.
    pub fn data_mut(&mut self) -> &mut [i8] {
        &mut self.data
    }

    #[inline]
    fn index(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(
            n < self.dims[0] && c < self.dims[1] && h < self.dims[2] && w < self.dims[3],
            "index ({n},{c},{h},{w}) out of bounds for {:?}",
            self.dims
        );
        ((n * self.dims[1] + c) * self.dims[2] + h) * self.dims[3] + w
    }

    /// Element at `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds, with a clear message) if out of bounds.
    #[inline]
    pub fn get(&self, n: usize, c: usize, h: usize, w: usize) -> i8 {
        self.data[self.index(n, c, h, w)]
    }

    /// Element at `(n, c, h, w)` treating out-of-bounds spatial positions
    /// as zero padding. Channel/batch indices must still be in range.
    #[inline]
    pub fn get_padded(&self, n: usize, c: usize, h: isize, w: isize) -> i8 {
        if h < 0 || w < 0 || h as usize >= self.dims[2] || w as usize >= self.dims[3] {
            0
        } else {
            self.get(n, c, h as usize, w as usize)
        }
    }

    /// Sets the element at `(n, c, h, w)`.
    #[inline]
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, v: i8) {
        let i = self.index(n, c, h, w);
        self.data[i] = v;
    }

    /// Number of zero-valued elements.
    pub fn count_zeros(&self) -> usize {
        self.data.iter().filter(|&&v| v == 0).count()
    }

    /// Fraction of elements that are zero, in `[0, 1]`.
    pub fn sparsity(&self) -> f64 {
        self.count_zeros() as f64 / self.len() as f64
    }
}

impl fmt::Debug for Tensor4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor4[{}x{}x{}x{}, {:.1}% zero]",
            self.dims[0],
            self.dims[1],
            self.dims[2],
            self.dims[3],
            self.sparsity() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_set_get() {
        let mut t = Tensor4::zeros([2, 3, 4, 5]);
        t.set(1, 2, 3, 4, -7);
        assert_eq!(t.get(1, 2, 3, 4), -7);
        assert_eq!(t.get(0, 0, 0, 0), 0);
        assert_eq!(t.len(), 2 * 3 * 4 * 5);
        assert!(!t.is_empty());
    }

    #[test]
    fn padded_reads_return_zero() {
        let t = Tensor4::filled([1, 1, 2, 2], 9);
        assert_eq!(t.get_padded(0, 0, -1, 0), 0);
        assert_eq!(t.get_padded(0, 0, 0, 2), 0);
        assert_eq!(t.get_padded(0, 0, 1, 1), 9);
    }

    #[test]
    fn sparsity_counts() {
        let t = Tensor4::from_vec([1, 1, 2, 2], vec![0, 1, 0, 2]);
        assert_eq!(t.count_zeros(), 2);
        assert!((t.sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_length_checked() {
        let _ = Tensor4::from_vec([1, 1, 2, 2], vec![1, 2, 3]);
    }

    #[test]
    fn debug_is_nonempty() {
        let t = Tensor4::zeros([1, 1, 1, 1]);
        assert!(!format!("{t:?}").is_empty());
    }
}
