//! INT8 tensor substrate for the S2TA reproduction.
//!
//! S2TA ([Liu et al., HPCA 2022](https://arxiv.org/abs/2107.07983)) is an
//! INT8 mobile CNN accelerator. Everything in the paper's evaluation is
//! ultimately a quantized GEMM: convolutions are lowered with im2col, and
//! the systolic array consumes the resulting operand matrices. This crate
//! provides that substrate:
//!
//! * [`Tensor4`] — a dense NCHW `i8` activation/weight tensor.
//! * [`Matrix`] — a dense row-major `i8` operand matrix, and [`AccMatrix`]
//!   for `i32` accumulator outputs.
//! * [`ConvShape`] / [`GemmShape`] — layer geometry and its GEMM lowering.
//! * [`im2col`] — convolution to GEMM lowering (the mapping used by the
//!   simulated accelerator and by the reference kernels).
//! * [`gemm_ref`] / [`conv_ref`] — golden reference kernels that every
//!   simulated datapath is asserted against, bit-exactly.
//! * [`quant`] — `f32` to `i8` post-training quantization helpers used by
//!   the training substrate (`s2ta-nn`).
//! * [`sparsity`] — sparsity statistics plus deterministic synthetic sparse
//!   tensor generators used by the microbenchmarks (paper Sec. 8.2).
//!
//! # Example
//!
//! ```
//! use s2ta_tensor::{ConvShape, Tensor4, im2col, conv_ref, gemm_ref};
//!
//! let shape = ConvShape::new(8, 4, 6, 6, 3, 3, 1, 1); // K=8,C=4,H=W=6,3x3,s1,p1
//! let w = Tensor4::filled(shape.weight_dims(), 1);
//! let x = Tensor4::filled(shape.input_dims(), 2);
//! // Reference convolution and the im2col-lowered GEMM agree bit-exactly.
//! let direct = conv_ref(&shape, &w, &x);
//! let (wm, xm) = (shape.weights_as_matrix(&w), im2col(&shape, &x));
//! let lowered = gemm_ref(&wm, &xm);
//! assert_eq!(direct.data(), lowered.data());
//! ```
#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod matrix;
mod reference;
mod shape;
mod tensor;

pub mod postproc;
pub mod quant;
pub mod sparsity;

pub use matrix::{AccMatrix, Matrix};
pub use reference::{conv_ref, gemm_ref, im2col};
pub use shape::{ConvShape, GemmShape, LayerKind};
pub use tensor::Tensor4;
