//! Layer geometry: convolution shapes and their GEMM lowering.

use std::fmt;

/// The kind of a CNN layer, as it matters to an accelerator mapping.
///
/// Depthwise and fully-connected layers are memory-bound on systolic
/// accelerators (paper Sec. 8.3); the runner uses the kind to pick the
/// right reuse maths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Standard (dense) convolution, including 1x1 point-wise.
    Conv,
    /// Depthwise convolution: one filter per input channel, no channel
    /// reduction, hence no channel-dimension DBB blocking.
    Depthwise,
    /// Fully-connected (matrix-vector at batch 1).
    FullyConnected,
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerKind::Conv => write!(f, "conv"),
            LayerKind::Depthwise => write!(f, "dw"),
            LayerKind::FullyConnected => write!(f, "fc"),
        }
    }
}

/// Geometry of a convolution layer (square kernels/strides, NCHW).
///
/// `K` output channels, `C` input channels, `H x W` input spatial size,
/// `R x S` kernel, stride and symmetric zero padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvShape {
    /// Output channels (number of filters).
    pub k: usize,
    /// Input channels.
    pub c: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Kernel height.
    pub r: usize,
    /// Kernel width.
    pub s: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl ConvShape {
    /// Creates a convolution shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, or if the kernel (minus padding)
    /// does not fit in the input.
    #[allow(clippy::too_many_arguments)] // K,C,H,W,R,S,stride,pad is the conv vocabulary
    pub fn new(
        k: usize,
        c: usize,
        h: usize,
        w: usize,
        r: usize,
        s: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        assert!(
            k > 0 && c > 0 && h > 0 && w > 0 && r > 0 && s > 0 && stride > 0,
            "conv dimensions must be non-zero"
        );
        assert!(
            h + 2 * pad >= r && w + 2 * pad >= s,
            "kernel {r}x{s} does not fit input {h}x{w} with pad {pad}"
        );
        Self { k, c, h, w, r, s, stride, pad }
    }

    /// Output height after convolution.
    pub fn out_h(&self) -> usize {
        (self.h + 2 * self.pad - self.r) / self.stride + 1
    }

    /// Output width after convolution.
    pub fn out_w(&self) -> usize {
        (self.w + 2 * self.pad - self.s) / self.stride + 1
    }

    /// Weight tensor dims as `[K, C, R, S]`.
    pub fn weight_dims(&self) -> [usize; 4] {
        [self.k, self.c, self.r, self.s]
    }

    /// Input tensor dims as `[1, C, H, W]` (batch 1 — mobile inference).
    pub fn input_dims(&self) -> [usize; 4] {
        [1, self.c, self.h, self.w]
    }

    /// Output tensor dims as `[1, K, out_h, out_w]`.
    pub fn output_dims(&self) -> [usize; 4] {
        [1, self.k, self.out_h(), self.out_w()]
    }

    /// The GEMM this convolution lowers to via im2col:
    /// `[K x (C*R*S)] * [(C*R*S) x (outH*outW)]`.
    pub fn gemm(&self) -> GemmShape {
        GemmShape { m: self.k, k: self.c * self.r * self.s, n: self.out_h() * self.out_w() }
    }

    /// Total multiply-accumulate operations for one inference of this layer.
    pub fn macs(&self) -> u64 {
        let g = self.gemm();
        g.m as u64 * g.k as u64 * g.n as u64
    }

    /// Lowers the `[K,C,R,S]` weight tensor to the `K x (C*R*S)` GEMM
    /// operand matrix. The reduction dimension is ordered `(r, s, c)` with
    /// **channel innermost**, so that DBB blocks (which the paper forms
    /// along the channel dimension, Fig. 5) are contiguous runs of the
    /// GEMM reduction axis.
    ///
    /// # Panics
    ///
    /// Panics if `w` does not have dims `[K, C, R, S]`.
    pub fn weights_as_matrix(&self, w: &crate::Tensor4) -> crate::Matrix {
        assert_eq!(w.dims(), self.weight_dims(), "weight tensor dims mismatch");
        let g = self.gemm();
        let mut m = crate::Matrix::zeros(g.m, g.k);
        for ko in 0..self.k {
            for r in 0..self.r {
                for s in 0..self.s {
                    for c in 0..self.c {
                        let col = (r * self.s + s) * self.c + c;
                        m.set(ko, col, w.get(ko, c, r, s));
                    }
                }
            }
        }
        m
    }
}

impl fmt::Display for ConvShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "K{}xC{}x{}x{} k{}x{} s{} p{}",
            self.k, self.c, self.h, self.w, self.r, self.s, self.stride, self.pad
        )
    }
}

/// Dimensions of a GEMM `C[m x n] = A[m x k] * B[k x n]`.
///
/// In the accelerator mapping, `m` indexes output channels, `k` is the
/// reduction dimension (`C*R*S`, channel innermost) and `n` indexes output
/// pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Rows of A / C (output channels).
    pub m: usize,
    /// Reduction dimension (shared).
    pub k: usize,
    /// Columns of B / C (output pixels).
    pub n: usize,
}

impl GemmShape {
    /// Creates a GEMM shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(m: usize, k: usize, n: usize) -> Self {
        assert!(m > 0 && k > 0 && n > 0, "GEMM dims must be non-zero");
        Self { m, k, n }
    }

    /// Total MAC operations.
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.k as u64 * self.n as u64
    }
}

impl fmt::Display for GemmShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.m, self.k, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_output_dims() {
        // AlexNet conv1: 96 filters, 3 channels, 227x227, 11x11, stride 4.
        let c1 = ConvShape::new(96, 3, 227, 227, 11, 11, 4, 0);
        assert_eq!(c1.out_h(), 55);
        assert_eq!(c1.out_w(), 55);
        assert_eq!(c1.gemm(), GemmShape::new(96, 3 * 11 * 11, 55 * 55));
    }

    #[test]
    fn same_padding_preserves_spatial() {
        let s = ConvShape::new(64, 64, 56, 56, 3, 3, 1, 1);
        assert_eq!(s.out_h(), 56);
        assert_eq!(s.out_w(), 56);
    }

    #[test]
    fn macs_match_gemm() {
        let s = ConvShape::new(16, 8, 10, 10, 3, 3, 1, 1);
        assert_eq!(s.macs(), s.gemm().macs());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dim_rejected() {
        let _ = ConvShape::new(0, 1, 4, 4, 1, 1, 1, 0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_kernel_rejected() {
        let _ = ConvShape::new(1, 1, 2, 2, 5, 5, 1, 0);
    }

    #[test]
    fn display_forms() {
        let s = ConvShape::new(16, 8, 10, 12, 3, 3, 2, 1);
        assert_eq!(s.to_string(), "K16xC8x10x12 k3x3 s2 p1");
        assert_eq!(GemmShape::new(1, 2, 3).to_string(), "1x2x3");
        assert_eq!(LayerKind::Depthwise.to_string(), "dw");
    }
}
