//! Golden reference kernels: im2col lowering, GEMM and direct convolution.
//!
//! Every simulated datapath in `s2ta-sim` is asserted bit-exact against
//! these kernels; they are intentionally straightforward.

use crate::{AccMatrix, ConvShape, Matrix, Tensor4};

/// Lowers the input activation tensor of `shape` to the `(C*R*S) x N`
/// im2col matrix, with the reduction axis ordered `(r, s, c)` — channel
/// innermost — to match [`ConvShape::weights_as_matrix`]. Out-of-bounds
/// taps read as zero (padding).
///
/// # Panics
///
/// Panics if `x` does not have dims `[1, C, H, W]`.
pub fn im2col(shape: &ConvShape, x: &Tensor4) -> Matrix {
    assert_eq!(x.dims(), shape.input_dims(), "input tensor dims mismatch");
    let g = shape.gemm();
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let mut m = Matrix::zeros(g.k, g.n);
    for r in 0..shape.r {
        for s in 0..shape.s {
            for c in 0..shape.c {
                let row = (r * shape.s + s) * shape.c + c;
                for y in 0..oh {
                    for xx in 0..ow {
                        let ih = (y * shape.stride + r) as isize - shape.pad as isize;
                        let iw = (xx * shape.stride + s) as isize - shape.pad as isize;
                        let v = x.get_padded(0, c, ih, iw);
                        m.set(row, y * ow + xx, v);
                    }
                }
            }
        }
    }
    m
}

/// Reference INT8 GEMM: `C[m x n] = A[m x k] * B[k x n]` with exact `i32`
/// accumulation.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
pub fn gemm_ref(a: &Matrix, b: &Matrix) -> AccMatrix {
    assert_eq!(a.cols(), b.rows(), "GEMM inner dims mismatch: {} vs {}", a.cols(), b.rows());
    let (m, n) = (a.rows(), b.cols());
    let mut c = AccMatrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        for (p, &ab) in arow.iter().enumerate() {
            let av = ab as i32;
            if av == 0 {
                continue;
            }
            let brow = b.row(p);
            for (j, &bb) in brow.iter().enumerate() {
                let cur = c.get(i, j);
                c.set(i, j, cur + av * bb as i32);
            }
        }
    }
    c
}

/// Reference direct convolution (batch 1), returning the `K x (outH*outW)`
/// accumulator matrix — the same layout `gemm_ref` produces for the
/// im2col-lowered operands, so the two can be compared directly.
///
/// # Panics
///
/// Panics if `w` or `x` dims do not match `shape`.
pub fn conv_ref(shape: &ConvShape, w: &Tensor4, x: &Tensor4) -> AccMatrix {
    assert_eq!(w.dims(), shape.weight_dims(), "weight dims mismatch");
    assert_eq!(x.dims(), shape.input_dims(), "input dims mismatch");
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let mut out = AccMatrix::zeros(shape.k, oh * ow);
    for ko in 0..shape.k {
        for y in 0..oh {
            for xx in 0..ow {
                let mut acc: i32 = 0;
                for c in 0..shape.c {
                    for r in 0..shape.r {
                        for s in 0..shape.s {
                            let ih = (y * shape.stride + r) as isize - shape.pad as isize;
                            let iw = (xx * shape.stride + s) as isize - shape.pad as isize;
                            let xv = x.get_padded(0, c, ih, iw) as i32;
                            let wv = w.get(ko, c, r, s) as i32;
                            acc += xv * wv;
                        }
                    }
                }
                out.set(ko, y * ow + xx, acc);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparsity::SparseSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gemm_identity() {
        // A * I == A.
        let a = Matrix::from_vec(2, 2, vec![1, 2, 3, 4]);
        let i = Matrix::from_vec(2, 2, vec![1, 0, 0, 1]);
        let c = gemm_ref(&a, &i);
        assert_eq!(c.data(), &[1, 2, 3, 4]);
    }

    #[test]
    fn gemm_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1, -2, 3, 0, 5, -1]);
        let b = Matrix::from_vec(3, 2, vec![2, 0, 1, 1, -1, 4]);
        let c = gemm_ref(&a, &b);
        // Row 0: [1*2-2*1-3*1, -2*1+3*4] = [-3, 10]
        assert_eq!(c.get(0, 0), -3);
        assert_eq!(c.get(0, 1), 10);
        assert_eq!(c.get(1, 0), 6);
        assert_eq!(c.get(1, 1), 1);
    }

    #[test]
    fn im2col_matches_direct_conv() {
        let mut rng = StdRng::seed_from_u64(7);
        for (shape, wsp, asp) in [
            (ConvShape::new(4, 8, 6, 6, 3, 3, 1, 1), 0.5, 0.5),
            (ConvShape::new(3, 5, 7, 5, 3, 3, 2, 1), 0.0, 0.3),
            (ConvShape::new(2, 16, 4, 4, 1, 1, 1, 0), 0.8, 0.0),
            (ConvShape::new(5, 3, 9, 9, 5, 5, 2, 2), 0.25, 0.6),
        ] {
            let w = SparseSpec::random(wsp).tensor(shape.weight_dims(), &mut rng);
            let x = SparseSpec::random(asp).tensor(shape.input_dims(), &mut rng);
            let direct = conv_ref(&shape, &w, &x);
            let lowered = gemm_ref(&shape.weights_as_matrix(&w), &im2col(&shape, &x));
            assert_eq!(direct, lowered, "mismatch for {shape}");
        }
    }

    #[test]
    #[should_panic(expected = "inner dims mismatch")]
    fn gemm_dims_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        let _ = gemm_ref(&a, &b);
    }
}
