//! Shared helpers for the per-table / per-figure bench targets.
//!
//! Each bench binary regenerates one table or figure of the paper's
//! evaluation (Sec. 8) and prints it in a comparable layout; run them
//! all with `cargo bench --workspace`. Absolute joules/mm2 are model
//! outputs — the reproduction target is the *shape*: orderings, ratios
//! and crossovers (see EXPERIMENTS.md for paper-vs-measured).

use s2ta_core::{Accelerator, ArchKind, ModelReport};
use s2ta_energy::comparators::LayerStats;
use s2ta_models::ModelSpec;
use s2ta_tensor::Matrix;

/// The master seed all benches share, for reproducible output.
pub const SEED: u64 = 42;

/// Prints the standard bench header.
pub fn header(id: &str, title: &str) {
    println!();
    println!("================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

/// Runs a model's **convolution layers** on every evaluated
/// architecture, returning `(arch, report)` pairs. (The paper's Fig. 11
/// and Fig. 12 are convolution-only.)
pub fn conv_reports(model: &ModelSpec, archs: &[ArchKind]) -> Vec<(ArchKind, ModelReport)> {
    archs.iter().map(|&k| (k, Accelerator::preset(k).run_model_conv_only(model, SEED))).collect()
}

/// Runs a model's full layer list on every evaluated architecture.
pub fn full_reports(model: &ModelSpec, archs: &[ArchKind]) -> Vec<(ArchKind, ModelReport)> {
    archs.iter().map(|&k| (k, Accelerator::preset(k).run_model(model, SEED))).collect()
}

/// Computes the [`LayerStats`] the comparator models need from a
/// layer's actual operand matrices.
pub fn layer_stats(w: &Matrix, a: &Matrix) -> LayerStats {
    let w_nnz = (w.len() - w.count_zeros()) as u64;
    let a_nnz = (a.len() - a.count_zeros()) as u64;
    // Non-zero products via the factorization sum_p nnzW(p) * nnzA(p).
    let mut products: u64 = 0;
    for p in 0..w.cols() {
        let nw = (0..w.rows()).filter(|&r| w.get(r, p) != 0).count() as u64;
        let na = a.row(p).iter().filter(|&&v| v != 0).count() as u64;
        products += nw * na;
    }
    LayerStats {
        macs: (w.rows() * w.cols() * a.cols()) as u64,
        nonzero_products: products,
        weight_elems: w.len() as u64,
        weight_nnz: w_nnz,
        act_elems: a.len() as u64,
        act_nnz: a_nnz,
        outputs: (w.rows() * a.cols()) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2ta_tensor::Matrix;

    #[test]
    fn layer_stats_counts() {
        let w = Matrix::from_vec(2, 2, vec![1, 0, 2, 3]);
        let a = Matrix::from_vec(2, 2, vec![1, 1, 0, 4]);
        let s = layer_stats(&w, &a);
        assert_eq!(s.macs, 8);
        assert_eq!(s.weight_nnz, 3);
        assert_eq!(s.act_nnz, 3);
        // products: p0: nw=2,na=2 -> 4; p1: nw=1,na=1 -> 1.
        assert_eq!(s.nonzero_products, 5);
        assert_eq!(s.outputs, 4);
    }
}
